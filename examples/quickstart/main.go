// Quickstart: run one kernel (the corner turn) on every machine model
// and print the Table 3 row with speedups — the minimal use of the
// public study API.
package main

import (
	"fmt"
	"log"
	"os"

	"sigkern/internal/core"
	"sigkern/internal/machines"
	"sigkern/internal/report"
)

func main() {
	// The paper's workload: 1024x1024x4-byte corner turn, the 73-band
	// CSLC, and the 1608-element beam steer.
	workload := core.PaperWorkload()

	fmt.Println("corner turn on every machine (1024 x 1024 x 32-bit):")
	var rows [][]string
	var baseline core.Result
	for _, m := range machines.All() {
		r, err := m.RunCornerTurn(workload.CornerTurn)
		if err != nil {
			log.Fatalf("%s: %v", m.Name(), err)
		}
		if m.Name() == machines.Baseline {
			baseline = r
		}
		rows = append(rows, []string{
			m.Name(),
			report.KCycles(r.Cycles),
			fmt.Sprintf("%.2f", r.OpsPerCycle()),
			fmt.Sprintf("%.3f ms", r.TimeMS(m.Params().ClockMHz)),
		})
	}
	// Append the cycle speedup over the AltiVec baseline.
	for i, m := range machines.All() {
		s := float64(baseline.Cycles) / parseKCyclesRow(rows[i])
		rows[i] = append(rows[i], report.Speedup(s)+"x")
		_ = m
	}
	err := report.Table(os.Stdout, "",
		[]string{"Machine", "kcycles", "words/cycle", "time", "vs AltiVec"}, rows)
	if err != nil {
		log.Fatal(err)
	}
}

// parseKCyclesRow recovers the cycle count from the rendered row; the
// quickstart favours showing the report API over threading extra state.
func parseKCyclesRow(row []string) float64 {
	var k float64
	fmt.Sscanf(row[1], "%f", &k)
	return k * 1e3
}
