// Pipeline example: the "actual signal processing pipeline" the paper
// sketches in Section 4.4 — a poly-phase filter bank channelizes the
// wideband input, beam steering computes the phase commands, and a
// per-beam equalization stage applies them — run functionally end to
// end, with the Imagine timing model showing how pipelining changes the
// beam-steering kernel from memory-bound to compute-bound.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"os"

	"sigkern/internal/imagine"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/equalize"
	"sigkern/internal/kernels/pfb"
	"sigkern/internal/kernels/testsig"
	"sigkern/internal/machines"
	"sigkern/internal/report"
)

func main() {
	// Stage 1: channelize a two-tone wideband input.
	chanBank, err := pfb.New(pfb.DefaultSpec())
	if err != nil {
		log.Fatal(err)
	}
	const n = 64 * 64
	x := make([]complex128, n)
	f1, f2 := 9.0/64.0, 33.0/64.0
	for i := range x {
		a1 := 2 * math.Pi * f1 * float64(i)
		a2 := 2 * math.Pi * f2 * float64(i)
		x[i] = complex(math.Cos(a1), math.Sin(a1)) +
			complex(0.5*math.Cos(a2), 0.5*math.Sin(a2))
	}
	frames, err := chanBank.Process(x)
	if err != nil {
		log.Fatal(err)
	}
	mid := frames[len(frames)/2]
	bank9 := chanBank.ChannelOf(f1)
	fmt.Printf("stage 1 (poly-phase filter bank): %d frames x %d channels\n", len(frames), len(mid))
	fmt.Printf("  tone 1 -> channel %d (|X| = %.2f), tone 2 -> channel %d (|X| = %.2f)\n\n",
		bank9, cmplx.Abs(mid[bank9]),
		chanBank.ChannelOf(f2), cmplx.Abs(mid[chanBank.ChannelOf(f2)]))

	// Stage 2: beam steering computes the phase commands per element.
	spec := beamsteer.PaperSpec()
	tables := testsig.NewBeamTables(spec.Elements, spec.Directions, spec.Dwells, 7)
	phases, err := beamsteer.Steer(spec, tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 2 (beam steering): %d phase commands per interval\n\n", spec.Outputs())

	// Stage 3: per-beam equalization — each beam's FIR inverts its test
	// channel, then the beam-steering phase command rotates the output.
	eqSpec := equalize.Spec{Beams: spec.Directions, Taps: 16}
	rho := []float64{0.4, -0.3, 0.2, -0.1}
	bank, err := equalize.NewBank(eqSpec, rho)
	if err != nil {
		log.Fatal(err)
	}
	scale := 2 * math.Pi / float64(int32(1)<<20)
	// Feed channel 9's time series (one sample per frame) through beam
	// 0's channel and equalizer.
	series := make([]complex128, len(frames))
	for f := range frames {
		series[f] = frames[f][bank9]
	}
	distorted := equalize.Channel(rho[0], series)
	cmd := phases[0][0][0]
	eq, err := bank.Apply(0, distorted, cmd, scale)
	if err != nil {
		log.Fatal(err)
	}
	res := equalize.ResidualPower(series, eq, cmd, scale)
	var sig float64
	for _, v := range series {
		sig += cmplx.Abs(v) * cmplx.Abs(v)
	}
	sig /= float64(len(series))
	fmt.Printf("stage 3 (per-beam equalization): residual %.2e vs signal power %.3f (%.0f dB down)\n\n",
		res, sig, 10*math.Log10(sig/res))

	// Timing: the Section 4.4 point — inside the pipeline, beam steering
	// stops being memory-bound on Imagine.
	m := imagine.New(imagine.DefaultConfig())
	isolated, err := m.RunBeamSteering(spec)
	if err != nil {
		log.Fatal(err)
	}
	srf, err := m.RunBeamSteeringSRFTables(spec)
	if err != nil {
		log.Fatal(err)
	}
	piped, err := m.RunBeamSteeringPipelined(spec)
	if err != nil {
		log.Fatal(err)
	}
	rows := [][]string{
		{"isolated (tables from DRAM)", report.KCycles(isolated.Cycles),
			fmt.Sprintf("%.0f%%", 100*isolated.Breakdown.Fraction("memory"))},
		{"tables resident in SRF", report.KCycles(srf.Cycles),
			fmt.Sprintf("%.0f%%", 100*srf.Breakdown.Fraction("memory"))},
		{"pipelined (SRF to SRF)", report.KCycles(piped.Cycles),
			fmt.Sprintf("%.0f%%", 100*piped.Breakdown.Fraction("memory"))},
	}
	if err := report.Table(os.Stdout,
		"Imagine beam steering: isolated kernel vs in-pipeline (paper Section 4.4)",
		[]string{"Mode", "kcycles", "memory share"}, rows); err != nil {
		log.Fatal(err)
	}
	_ = machines.Baseline
}
