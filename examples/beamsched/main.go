// Beam-schedule example: drive the beam-steering kernel the way a radar
// scheduler would — a revisit schedule of dwells, each steering the
// 1608-element array toward several targets — and compare how the four
// machines keep up as the schedule densifies.
package main

import (
	"fmt"
	"log"
	"os"

	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/testsig"
	"sigkern/internal/machines"
	"sigkern/internal/report"
)

func main() {
	base := beamsteer.PaperSpec()

	// Show the functional output for one dwell: the phase commands the
	// array would receive.
	tables := testsig.NewBeamTables(base.Elements, base.Directions, base.Dwells, 7)
	out, err := beamsteer.Steer(base, tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dwell 0, beam 0: phase commands for elements 0..7: %v\n", out[0][0][:8])
	fmt.Printf("dwell 0, beam 1: phase commands for elements 0..7: %v\n\n", out[0][1][:8])

	// Densify the schedule: more beams per dwell (tracking more targets).
	fmt.Println("interval cycles (10^3) as the schedule densifies (beams per dwell):")
	headers := []string{"Beams/dwell"}
	ms := machines.All()
	for _, m := range ms {
		headers = append(headers, m.Name())
	}
	var rows [][]string
	for _, beams := range []int{1, 2, 4, 8, 16} {
		spec := base
		spec.Directions = beams
		row := []string{fmt.Sprintf("%d", beams)}
		for _, m := range ms {
			r, err := m.RunBeamSteering(spec)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, report.KCycles(r.Cycles))
		}
		rows = append(rows, row)
	}
	if err := report.Table(os.Stdout, "", headers, rows); err != nil {
		log.Fatal(err)
	}

	// Wall-clock view at the densest point: the paper's Figure 9 story —
	// research chips win even at one third the clock rate.
	fmt.Println("\nwall-clock per interval at 16 beams/dwell:")
	spec := base
	spec.Directions = 16
	var wrows [][]string
	for _, m := range ms {
		r, err := m.RunBeamSteering(spec)
		if err != nil {
			log.Fatal(err)
		}
		wrows = append(wrows, []string{
			m.Name(),
			fmt.Sprintf("%.0f MHz", m.Params().ClockMHz),
			fmt.Sprintf("%.3f ms", r.TimeMS(m.Params().ClockMHz)),
		})
	}
	if err := report.Table(os.Stdout, "", []string{"Machine", "clock", "time"}, wrows); err != nil {
		log.Fatal(err)
	}
}
