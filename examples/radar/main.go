// Radar example: the full coherent side-lobe canceller chain as a radar
// engineer would use it — synthesize a jammed scene, estimate the
// adaptive weights, cancel, measure the cancellation depth, and then ask
// each architecture model what the timed pipeline costs per processing
// interval (i.e., whether it sustains the radar's real-time budget).
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"sigkern/internal/core"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/testsig"
	"sigkern/internal/machines"
	"sigkern/internal/report"
)

func main() {
	spec := cslc.PaperSpec(fft.MixedRadix42)

	// A strong jammer 40 dB above a weak target, as seen through the
	// main and auxiliary channels.
	scene := testsig.DefaultScene(spec.Samples)
	channels := scene.Channels(spec.MainChannels)
	fmt.Printf("scene: target %.3f amp at f=%.3f, jammer %.1f amp at f=%.3f, %d samples x %d channels\n",
		scene.TargetAmp, scene.TargetFreq, scene.JammerAmp, scene.JammerFreq,
		spec.Samples, spec.Channels())

	// Adaptive weights from the sub-band ensemble.
	weights, err := cslc.EstimateWeights(spec, channels)
	if err != nil {
		log.Fatal(err)
	}

	// Cancel, and compare against the uncancelled pipeline.
	cancelled, err := cslc.Run(spec, channels, weights)
	if err != nil {
		log.Fatal(err)
	}
	passthrough, err := cslc.Run(spec, channels, cslc.NewWeights(spec))
	if err != nil {
		log.Fatal(err)
	}
	for m := 0; m < spec.MainChannels; m++ {
		before := cslc.TotalPower(passthrough.Cancelled[m])
		after := cslc.TotalPower(cancelled.Cancelled[m])
		fmt.Printf("main channel %d: output power %.4f -> %.6f (%.1f dB of cancellation)\n",
			m, before, after, 10*math.Log10(before/after))
	}

	// What does the timed pipeline cost on each machine?
	fmt.Println("\nCSLC processing-interval cost per machine:")
	var rows [][]string
	for _, m := range machines.All() {
		r, err := m.RunCSLC(spec)
		if err != nil {
			log.Fatal(err)
		}
		ms := r.TimeMS(m.Params().ClockMHz)
		// An 8K-sample interval at, say, 10 MHz complex sample rate is
		// 0.82 ms of data: can the machine keep up?
		budget := 8192.0 / 10e6 * 1e3
		verdict := "real time"
		if ms > budget {
			verdict = fmt.Sprintf("%.1fx too slow", ms/budget)
		}
		rows = append(rows, []string{
			m.Name(), report.KCycles(r.Cycles), fmt.Sprintf("%.3f ms", ms), verdict,
		})
	}
	err = report.Table(os.Stdout, "",
		[]string{"Machine", "kcycles", "time", "10 MHz stream"}, rows)
	if err != nil {
		log.Fatal(err)
	}
	_ = core.CSLC
}
