// Package journal is an append-only write-ahead log for the simulation
// service: length-prefixed, CRC32C-framed records in rotated segment
// files, with a configurable fsync policy and snapshot-based
// compaction. It is the durability substrate under internal/svc — the
// service journals every job lifecycle transition and replays the log
// on startup, so accepted work and computed results survive a crash or
// a deploy restart.
//
// Recovery is conservative and total: a torn or corrupted frame is
// detected by its checksum (or an impossible length), the segment is
// truncated at the first bad byte, the loss is counted and surfaced in
// Stats — never a panic, never a silently wrong replay. Records before
// the bad frame are intact by construction (each frame carries its own
// CRC), so the only data at risk is the unsynced tail the fsync policy
// chose to leave in flight.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Frame layout: a fixed header of payload length and payload CRC32C
// (both little-endian uint32) followed by the payload bytes. Empty
// payloads are rejected at encode and treated as corruption at decode,
// so a run of zero bytes (a preallocated or torn region) can never
// parse as an endless stream of valid empty records.
const (
	headerSize = 8
	// MaxFrame bounds one record's payload; a decoded length above it
	// is corruption, not a request to allocate.
	MaxFrame = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrTruncated means the buffer ends mid-frame (the
// expected shape of a crash-torn tail); ErrCorrupt means the bytes
// cannot be a frame (zero or oversized length, checksum mismatch).
var (
	ErrTruncated = errors.New("journal: truncated frame")
	ErrCorrupt   = errors.New("journal: corrupt frame")
	ErrClosed    = errors.New("journal: closed")
)

// EncodeFrame wraps payload in the on-disk frame format.
func EncodeFrame(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("%w: payload %d exceeds %d", ErrCorrupt, len(payload), MaxFrame)
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf, nil
}

// DecodeFrame reads one frame from the front of data, returning the
// payload and the remaining bytes. It never panics and never reads
// past len(data): arbitrary input yields either a valid record or
// ErrTruncated/ErrCorrupt.
func DecodeFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < headerSize {
		return nil, data, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n == 0 || n > MaxFrame {
		return nil, data, fmt.Errorf("%w: impossible length %d", ErrCorrupt, n)
	}
	if uint64(len(data)-headerSize) < uint64(n) {
		return nil, data, ErrTruncated
	}
	want := binary.LittleEndian.Uint32(data[4:8])
	payload = data[headerSize : headerSize+int(n)]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, data, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, data[headerSize+int(n):], nil
}

// SyncPolicy selects when appends are made durable.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every append: nothing acknowledged is
	// ever lost, at one fsync of latency per record.
	SyncAlways SyncPolicy = "always"
	// SyncInterval fsyncs dirty segments from a background ticker
	// (Options.SyncInterval); a crash loses at most one interval.
	SyncInterval SyncPolicy = "interval"
	// SyncNever leaves durability to the OS page cache (still synced
	// on rotation, compaction, and Close).
	SyncNever SyncPolicy = "never"
)

// ParseSyncPolicy validates a policy name (the -fsync flag).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncInterval, SyncNever:
		return SyncPolicy(s), nil
	case "":
		return SyncAlways, nil
	}
	return "", fmt.Errorf("journal: unknown sync policy %q (want always, interval, or never)", s)
}

// Options configures Open. Only Dir is required.
type Options struct {
	// Dir is the journal directory (created if missing): segment files
	// wal-<seq>.log plus at most one snapshot file.
	Dir string
	// Sync is the fsync policy; empty means SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the flush period for SyncInterval; <= 0 means
	// 100ms.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment once it grows past this
	// size; <= 0 means 4 MiB.
	SegmentBytes int64
}

// Stats is a point-in-time view of the journal's durability state.
type Stats struct {
	// Appended and Synced count records written and records known
	// durable; Lag is their difference (the crash-loss window).
	Appended uint64 `json:"appended"`
	Synced   uint64 `json:"synced"`
	Lag      uint64 `json:"lag"`
	// LastSyncAgeSeconds is the time since the last successful fsync
	// (0 before the first).
	LastSyncAgeSeconds float64 `json:"last_sync_age_seconds"`
	// Truncations and TruncatedBytes count torn/corrupt tails cut off
	// during recovery (carried from Open) plus any detected later.
	Truncations    uint64 `json:"truncations"`
	TruncatedBytes uint64 `json:"truncated_bytes"`
	// Segments is the number of live segment files; ActiveSegment its
	// highest sequence number.
	Segments      int    `json:"segments"`
	ActiveSegment uint64 `json:"active_segment"`
}

// RecoveryStats describes what Open found on disk.
type RecoveryStats struct {
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// SnapshotCorrupt is true when a snapshot file existed but failed
	// its checksum; recovery then falls back to replaying every
	// surviving segment rather than trusting damaged state.
	SnapshotCorrupt bool `json:"snapshot_corrupt,omitempty"`
	SegmentsRead    int  `json:"segments_read"`
	RecordsReplayed int  `json:"records_replayed"`
	// Truncations/TruncatedBytes count bad frames found during replay;
	// each truncation cut one segment at the first bad byte.
	Truncations    uint64 `json:"truncations"`
	TruncatedBytes uint64 `json:"truncated_bytes"`
}

// Recovery is everything Open replayed: the latest snapshot payload
// (nil when none), the records appended after it, in order, and the
// stats describing how cleanly the disk state parsed.
type Recovery struct {
	Snapshot []byte
	Records  [][]byte
	Stats    RecoveryStats
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	opts Options

	mu       sync.Mutex
	f        *os.File
	seg      uint64 // active segment sequence
	segBytes int64
	segCount int
	appended uint64
	synced   uint64
	lastSync time.Time
	truncs   uint64
	truncB   uint64
	dirty    bool
	closed   bool

	stopc chan struct{}
	donec chan struct{}
}

const snapshotFile = "snapshot"

func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016x.log", seq) }

func parseSegmentName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "wal-%016x.log", &seq); n != 1 || err != nil {
		return 0, false
	}
	return seq, true
}

// readSnapshot loads the newest valid snapshot in dir into rec and
// returns the highest segment sequence it covers. A decodable snapshot
// fills rec.Snapshot; a damaged one sets SnapshotCorrupt (recovery then
// falls back to the surviving segments — never trust a bad checksum).
func readSnapshot(dir string, rec *Recovery) (covers uint64, err error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("journal: read snapshot: %w", err)
	}
	if payload, _, derr := DecodeFrame(data); derr == nil && len(payload) >= 8 {
		covers = binary.BigEndian.Uint64(payload[:8])
		rec.Snapshot = append([]byte(nil), payload[8:]...)
		rec.Stats.SnapshotLoaded = true
	} else {
		// The snapshot is written atomically (fsync + rename), so a
		// bad one means external damage.
		rec.Stats.SnapshotCorrupt = true
	}
	return covers, nil
}

// listSegments returns the segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: read dir: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scanRecords decodes frames from the front of data into rec until the
// data ends or a torn/corrupt frame stops the scan (counted, with the
// remainder reported as truncated). It returns the byte offset of the
// first undecodable byte — the length of the valid prefix.
func scanRecords(data []byte, rec *Recovery) (validLen int) {
	off := 0
	rest := data
	for len(rest) > 0 {
		payload, next, derr := DecodeFrame(rest)
		if derr != nil {
			rec.Stats.Truncations++
			rec.Stats.TruncatedBytes += uint64(len(rest))
			return off
		}
		rec.Records = append(rec.Records, append([]byte(nil), payload...))
		rec.Stats.RecordsReplayed++
		off += headerSize + len(payload)
		rest = next
	}
	return off
}

// Open opens (creating if needed) the journal in opts.Dir and replays
// it: the newest valid snapshot, then every record in the segments
// appended after it. Torn or corrupted tails are truncated at the
// first bad frame and counted in the returned Recovery — Open only
// fails on real I/O errors, never on damaged content.
func Open(opts Options) (*Journal, *Recovery, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("journal: Options.Dir is required")
	}
	if opts.Sync == "" {
		opts.Sync = SyncAlways
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 100 * time.Millisecond
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: create dir: %w", err)
	}

	rec := &Recovery{}
	// Segments <= covers are folded into the snapshot.
	covers, err := readSnapshot(opts.Dir, rec)
	if err != nil {
		return nil, nil, err
	}

	seqs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, nil, err
	}

	j := &Journal{opts: opts}
	for _, seq := range seqs {
		path := filepath.Join(opts.Dir, segmentName(seq))
		if seq <= covers {
			// Already folded into the snapshot; a leftover from a crash
			// between snapshot commit and segment removal.
			_ = os.Remove(path)
			continue
		}
		if err := j.replaySegment(path, rec); err != nil {
			return nil, nil, err
		}
		rec.Stats.SegmentsRead++
		j.segCount++
		j.seg = seq
	}
	j.truncs = rec.Stats.Truncations
	j.truncB = rec.Stats.TruncatedBytes

	if j.seg == 0 {
		j.seg = covers + 1
	}
	f, err := os.OpenFile(filepath.Join(opts.Dir, segmentName(j.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: stat segment: %w", err)
	}
	j.f = f
	j.segBytes = st.Size()
	if j.segCount == 0 {
		j.segCount = 1
		if err := syncDir(opts.Dir); err != nil {
			f.Close()
			return nil, nil, err
		}
	}

	if opts.Sync == SyncInterval {
		j.stopc = make(chan struct{})
		j.donec = make(chan struct{})
		go j.syncLoop()
	}
	return j, rec, nil
}

// replaySegment appends the segment's valid records to rec, truncating
// the file at the first torn or corrupted frame.
func (j *Journal) replaySegment(path string, rec *Recovery) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: read segment: %w", err)
	}
	before := rec.Stats.Truncations
	off := scanRecords(data, rec)
	if rec.Stats.Truncations > before {
		if terr := os.Truncate(path, int64(off)); terr != nil {
			return fmt.Errorf("journal: truncate %s after bad frame: %w", path, terr)
		}
	}
	return nil
}

// Export reads the journal in dir without opening it for appends: the
// newest valid snapshot plus every decodable record in the segments
// after it, exactly as Open would replay them — but strictly read-only.
// Torn or corrupt tails are counted in the returned stats and left
// untouched on disk, and no segment is created, truncated, or removed:
// the owning process may be dead only temporarily, and its own restart
// must find its log exactly as the crash left it.
//
// This is the extraction half of cluster rebalance: a gateway exports a
// departed shard's WAL and replays the recovered jobs into the shard's
// hash-ring successors.
func Export(dir string) (*Recovery, error) {
	if dir == "" {
		return nil, errors.New("journal: export dir is required")
	}
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("journal: export: %w", err)
	}
	rec := &Recovery{}
	covers, err := readSnapshot(dir, rec)
	if err != nil {
		return nil, err
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, seq := range seqs {
		if seq <= covers {
			continue // folded into the snapshot
		}
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			return nil, fmt.Errorf("journal: read segment: %w", err)
		}
		scanRecords(data, rec)
		rec.Stats.SegmentsRead++
	}
	return rec, nil
}

// Append writes one record. With SyncAlways it returns only once the
// record is fsynced; other policies return after the OS write.
func (j *Journal) Append(payload []byte) error {
	frame, err := EncodeFrame(payload)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.appended++
	j.segBytes += int64(len(frame))
	j.dirty = true
	if j.opts.Sync == SyncAlways {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if j.segBytes >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// AppendBatch writes a group of records as one commit: every frame is
// encoded first (an invalid record fails the whole group before any
// byte lands), then all frames go to the OS in a single write and —
// under SyncAlways — a single fsync covers the group. This is the
// group-commit half that amortizes the per-record durability cost
// across a batch: one disk round-trip instead of len(payloads).
func (j *Journal) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	var group []byte
	for _, payload := range payloads {
		frame, err := EncodeFrame(payload)
		if err != nil {
			return err
		}
		group = append(group, frame...)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, err := j.f.Write(group); err != nil {
		return fmt.Errorf("journal: append batch: %w", err)
	}
	j.appended += uint64(len(payloads))
	j.segBytes += int64(len(group))
	j.dirty = true
	if j.opts.Sync == SyncAlways {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if j.segBytes >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// AppendDefer writes one record without fsyncing, regardless of the
// sync policy: the caller owns the Sync() that makes a run of deferred
// appends durable — the amortized-fsync half of group commit. A crash
// before that Sync can lose the record; deferred callers accept this
// because the records they defer are reconstructible (the service
// replays a batch member from its group-accepted record and re-runs the
// deterministic simulation).
func (j *Journal) AppendDefer(payload []byte) error {
	frame, err := EncodeFrame(payload)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.appended++
	j.segBytes += int64(len(frame))
	j.dirty = true
	if j.segBytes >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Sync fsyncs the active segment, making every appended record durable.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.synced = j.appended
	j.lastSync = time.Now()
	j.dirty = false
	return nil
}

// rotateLocked seals the active segment (fsync, regardless of policy)
// and starts the next one.
func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	j.seg++
	f, err := os.OpenFile(filepath.Join(j.opts.Dir, segmentName(j.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.f = f
	j.segBytes = 0
	j.segCount++
	return syncDir(j.opts.Dir)
}

// Compact makes snapshot the new recovery baseline: every record
// appended so far is superseded by it. The snapshot is committed
// atomically (temp file, fsync, rename, directory fsync) before any
// segment is deleted, so a crash at any point leaves either the old
// log or the new snapshot — never neither.
func (j *Journal) Compact(snapshot []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	covers := j.seg

	payload := make([]byte, 8+len(snapshot))
	binary.BigEndian.PutUint64(payload[:8], covers)
	copy(payload[8:], snapshot)
	frame, err := EncodeFrame(payload)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(j.opts.Dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("journal: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(j.opts.Dir, snapshotFile)); err != nil {
		return fmt.Errorf("journal: commit snapshot: %w", err)
	}
	if err := syncDir(j.opts.Dir); err != nil {
		return err
	}

	// The snapshot is durable; the segments it covers are now garbage.
	if entries, err := os.ReadDir(j.opts.Dir); err == nil {
		for _, e := range entries {
			if seq, ok := parseSegmentName(e.Name()); ok && seq <= covers {
				_ = os.Remove(filepath.Join(j.opts.Dir, e.Name()))
			}
		}
	}
	j.seg = covers + 1
	f, err := os.OpenFile(filepath.Join(j.opts.Dir, segmentName(j.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.f = f
	j.segBytes = 0
	j.segCount = 1
	return syncDir(j.opts.Dir)
}

// Stats returns the journal's durability counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Stats{
		Appended:       j.appended,
		Synced:         j.synced,
		Lag:            j.appended - j.synced,
		Truncations:    j.truncs,
		TruncatedBytes: j.truncB,
		Segments:       j.segCount,
		ActiveSegment:  j.seg,
	}
	if !j.lastSync.IsZero() {
		s.LastSyncAgeSeconds = time.Since(j.lastSync).Seconds()
	}
	return s
}

// Close fsyncs and closes the journal. Further appends fail with
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	stop := j.stopc
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-j.donec
	}
	return err
}

// syncLoop is the SyncInterval flusher.
func (j *Journal) syncLoop() {
	defer close(j.donec)
	tick := time.NewTicker(j.opts.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			j.mu.Lock()
			if !j.closed {
				_ = j.syncLocked()
			}
			j.mu.Unlock()
		case <-j.stopc:
			return
		}
	}
}

// syncDir fsyncs a directory so renames and file creations in it
// survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}
