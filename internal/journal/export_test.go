package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestExportReadsWithoutMutating: Export sees exactly what Open would
// replay — snapshot plus post-snapshot records — while leaving every
// byte on disk untouched, including a torn tail that Open would
// truncate.
func TestExportReadsWithoutMutating(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	appendAll(t, j, "pre-1", "pre-2")
	if err := j.Compact([]byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "post-1", "post-2", "post-3")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: half a frame of garbage, the shape of a crash
	// mid-write.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xBA, 0xD0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	damaged, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}

	rec, err := Export(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Stats.SnapshotLoaded || string(rec.Snapshot) != "snapshot-state" {
		t.Fatalf("export missed the snapshot: %+v", rec.Stats)
	}
	got := recordStrings(rec)
	want := []string{"post-1", "post-2", "post-3"}
	if len(got) != len(want) {
		t.Fatalf("exported %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if rec.Stats.Truncations != 1 || rec.Stats.TruncatedBytes != 2 {
		t.Fatalf("torn tail not surfaced: %+v", rec.Stats)
	}

	// Read-only means read-only: the damaged segment is byte-identical
	// after the export, so the dead shard's own restart still finds the
	// log exactly as the crash left it.
	after, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(damaged, after) {
		t.Fatal("Export mutated a segment file")
	}

	// And Open (the owner's restart) still recovers the same records.
	_, rec2 := mustOpen(t, Options{Dir: dir})
	if len(recordStrings(rec2)) != len(want) || rec2.Stats.Truncations != 1 {
		t.Fatalf("owner restart after export diverged: %v %+v", recordStrings(rec2), rec2.Stats)
	}
}

// TestExportMissingDir: exporting a directory that does not exist is an
// error, not an empty recovery — a gateway pointing at the wrong path
// must hear about it rather than silently rebalancing nothing.
func TestExportMissingDir(t *testing.T) {
	if _, err := Export(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Export of a missing dir succeeded")
	}
	if _, err := Export(""); err == nil {
		t.Fatal("Export of an empty dir path succeeded")
	}
}
