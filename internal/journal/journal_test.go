package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, opts Options) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return j, rec
}

func appendAll(t *testing.T, j *Journal, records ...string) {
	t.Helper()
	for _, r := range records {
		if err := j.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
}

func recordStrings(rec *Recovery) []string {
	out := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		out[i] = string(r)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := mustOpen(t, Options{Dir: dir})
	if rec.Stats.RecordsReplayed != 0 || rec.Snapshot != nil {
		t.Fatalf("fresh journal recovered %+v", rec.Stats)
	}
	appendAll(t, j, "one", "two", "three")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec = mustOpen(t, Options{Dir: dir})
	got := recordStrings(rec)
	want := []string{"one", "two", "three"}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if rec.Stats.Truncations != 0 {
		t.Fatalf("clean log reported truncations: %+v", rec.Stats)
	}
}

// TestTornTailTruncated simulates a crash mid-append: a partial frame
// at the segment tail must be cut off and counted, with every earlier
// record intact.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	appendAll(t, j, "alpha", "beta")
	j.Close()

	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half a header: the classic torn write.
	if _, err := f.Write([]byte{0x10, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rec := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if got := recordStrings(rec); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("replayed %v", got)
	}
	if rec.Stats.Truncations != 1 || rec.Stats.TruncatedBytes != 3 {
		t.Fatalf("truncation not counted: %+v", rec.Stats)
	}
	// The file itself was repaired: a third open sees a clean log.
	if err := j2.Append([]byte("gamma")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rec = mustOpen(t, Options{Dir: dir})
	if got := recordStrings(rec); len(got) != 3 || got[2] != "gamma" || rec.Stats.Truncations != 0 {
		t.Fatalf("after repair: %v %+v", got, rec.Stats)
	}
}

// TestCorruptFrameTruncated flips payload bytes mid-log: replay keeps
// the records before the damage and cuts everything after.
func TestCorruptFrameTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	appendAll(t, j, "keep-me", "damage-me", "after")
	j.Close()

	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the second record's payload.
	idx := bytes.Index(data, []byte("damage-me"))
	if idx < 0 {
		t.Fatal("payload not found")
	}
	data[idx] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if got := recordStrings(rec); len(got) != 1 || got[0] != "keep-me" {
		t.Fatalf("replayed %v, want just keep-me", got)
	}
	if rec.Stats.Truncations != 1 || rec.Stats.TruncatedBytes == 0 {
		t.Fatalf("corruption not counted: %+v", rec.Stats)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		appendAll(t, j, fmt.Sprintf("record-%02d", i))
	}
	st := j.Stats()
	if st.Segments < 2 {
		t.Fatalf("no rotation after 20 records over a 64-byte segment cap: %+v", st)
	}
	j.Close()

	j2, rec := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	defer j2.Close()
	if got := recordStrings(rec); len(got) != 20 || got[0] != "record-00" || got[19] != "record-19" {
		t.Fatalf("replay across segments: %d records", len(got))
	}
}

func TestCompactionSnapshotAndReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		appendAll(t, j, fmt.Sprintf("old-%d", i))
	}
	if err := j.Compact([]byte("STATE-AT-COMPACTION")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "new-0", "new-1")
	j.Close()

	j2, rec := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	defer j2.Close()
	if !rec.Stats.SnapshotLoaded || string(rec.Snapshot) != "STATE-AT-COMPACTION" {
		t.Fatalf("snapshot: loaded=%v %q", rec.Stats.SnapshotLoaded, rec.Snapshot)
	}
	if got := recordStrings(rec); len(got) != 2 || got[0] != "new-0" || got[1] != "new-1" {
		t.Fatalf("post-snapshot records: %v", got)
	}
	// Compaction removed the covered segments from disk.
	entries, _ := os.ReadDir(dir)
	segs := 0
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			segs++
		}
	}
	if segs != 1 {
		t.Fatalf("%d segments left after compaction, want 1", segs)
	}
}

// TestCorruptSnapshotFallsBack damages the snapshot file: recovery
// must flag it and still replay the surviving segments, never panic or
// silently serve bad state.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	appendAll(t, j, "pre-compact")
	if err := j.Compact([]byte("good-state")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "post-compact")
	j.Close()

	snap := filepath.Join(dir, snapshotFile)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if !rec.Stats.SnapshotCorrupt || rec.Stats.SnapshotLoaded {
		t.Fatalf("corrupt snapshot not flagged: %+v", rec.Stats)
	}
	if got := recordStrings(rec); len(got) != 1 || got[0] != "post-compact" {
		t.Fatalf("fallback replay: %v", got)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		j, _ := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncAlways})
		defer j.Close()
		appendAll(t, j, "r")
		if st := j.Stats(); st.Lag != 0 || st.Synced != 1 {
			t.Fatalf("always policy left lag: %+v", st)
		}
	})
	t.Run("never", func(t *testing.T) {
		j, _ := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncNever})
		defer j.Close()
		appendAll(t, j, "r1", "r2")
		if st := j.Stats(); st.Lag != 2 {
			t.Fatalf("never policy lag = %d, want 2", st.Lag)
		}
		if err := j.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := j.Stats(); st.Lag != 0 {
			t.Fatalf("explicit Sync left lag: %+v", st)
		}
	})
	t.Run("interval", func(t *testing.T) {
		j, _ := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncInterval, SyncInterval: 5 * time.Millisecond})
		defer j.Close()
		appendAll(t, j, "r")
		deadline := time.Now().Add(2 * time.Second)
		for j.Stats().Lag != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("interval syncer never flushed: %+v", j.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}

func TestClosedJournalRejectsAppends(t *testing.T) {
	j, _ := mustOpen(t, Options{Dir: t.TempDir()})
	j.Close()
	if err := j.Append([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, ok := range []string{"", "always", "interval", "never"} {
		if _, err := ParseSyncPolicy(ok); err != nil {
			t.Fatalf("%q: %v", ok, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestFrameRejectsEmptyAndOversized(t *testing.T) {
	if _, err := EncodeFrame(nil); err == nil {
		t.Fatal("empty payload encoded")
	}
	// A run of zeros must not decode as valid empty records.
	if _, _, err := DecodeFrame(make([]byte, 64)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero run decoded: %v", err)
	}
	if _, _, err := DecodeFrame([]byte{1, 2}); !errors.Is(err, ErrTruncated) {
		t.Fatal("short buffer not ErrTruncated")
	}
}

func TestAppendBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	var group [][]byte
	for i := 0; i < 10; i++ {
		group = append(group, []byte(fmt.Sprintf("member-%d", i)))
	}
	if err := j.AppendBatch(group); err != nil {
		t.Fatal(err)
	}
	// One commit covers the whole group: every record durable, no lag.
	if st := j.Stats(); st.Appended != 10 || st.Synced != 10 || st.Lag != 0 {
		t.Fatalf("group commit stats: %+v", st)
	}
	// An empty group is a no-op, not an error.
	if err := j.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	got := recordStrings(rec)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i, r := range got {
		if want := fmt.Sprintf("member-%d", i); r != want {
			t.Fatalf("record %d = %q, want %q", i, r, want)
		}
	}
}

func TestAppendBatchRejectsWholeGroupOnBadRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	// A bad member (empty payload) anywhere fails the group before any
	// byte lands: all-or-nothing framing, no partial groups on disk.
	err := j.AppendBatch([][]byte{[]byte("ok-1"), nil, []byte("ok-2")})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad member error = %v, want ErrCorrupt", err)
	}
	if st := j.Stats(); st.Appended != 0 {
		t.Fatalf("partial group appended: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if len(rec.Records) != 0 {
		t.Fatalf("replayed %d records from rejected group", len(rec.Records))
	}
}

func TestAppendBatchRotatesOnceAfterGroup(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 64})
	var group [][]byte
	for i := 0; i < 8; i++ {
		group = append(group, []byte(fmt.Sprintf("rotating-member-%02d", i)))
	}
	if err := j.AppendBatch(group); err != nil {
		t.Fatal(err)
	}
	// The group lands contiguously in one segment; rotation happens
	// after the commit, not between members.
	if st := j.Stats(); st.Segments != 2 {
		t.Fatalf("segments = %d, want 2 (one full, one fresh): %+v", st.Segments, st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if len(rec.Records) != 8 {
		t.Fatalf("replayed %d records, want 8", len(rec.Records))
	}
}

func TestAppendDeferCallerOwnsSync(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	// Deferred appends skip the per-record fsync even under SyncAlways:
	// the caller amortizes durability across the run with one Sync.
	for i := 0; i < 5; i++ {
		if err := j.AppendDefer([]byte(fmt.Sprintf("deferred-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Lag != 5 {
		t.Fatalf("deferred lag = %d, want 5: %+v", st.Lag, st)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Lag != 0 || st.Synced != 5 {
		t.Fatalf("post-sync stats: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if len(rec.Records) != 5 {
		t.Fatalf("replayed %d records, want 5", len(rec.Records))
	}
}
