package journal

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame feeds the frame decoder arbitrary bytes: it must
// return an error or a valid record, never panic, and never read past
// the input. Valid decodes must be exact round-trips of EncodeFrame.
func FuzzDecodeFrame(f *testing.F) {
	good, _ := EncodeFrame([]byte("seed-record"))
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, 64))                            // zero run: must not decode
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // oversized length
	f.Add(good[:len(good)-2])                          // torn tail
	two := append(append([]byte(nil), good...), good...)
	f.Add(two)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Scan like segment replay does: decode frames until the first
		// error. Every step must consume at least a header's worth and
		// never over-read.
		rest := data
		for {
			payload, next, err := DecodeFrame(rest)
			if err != nil {
				if payload != nil {
					t.Fatalf("error %v with non-nil payload", err)
				}
				break
			}
			if len(payload) == 0 {
				t.Fatal("decoded an empty record")
			}
			consumed := len(rest) - len(next)
			if consumed != headerSize+len(payload) {
				t.Fatalf("consumed %d bytes for a %d-byte payload", consumed, len(payload))
			}
			if consumed <= 0 || len(next) > len(rest) {
				t.Fatal("scan did not advance")
			}
			// A decoded record must re-encode to exactly the bytes that
			// produced it.
			frame, eerr := EncodeFrame(payload)
			if eerr != nil {
				t.Fatalf("valid decode does not re-encode: %v", eerr)
			}
			if !bytes.Equal(frame, rest[:consumed]) {
				t.Fatal("decode/encode round-trip mismatch")
			}
			rest = next
		}
	})
}
