package perfmodel

import (
	"testing"

	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
)

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	want := map[string][3]float64{
		"PPC":     {1, 1, 2},
		"AltiVec": {4, 1, 5},
		"VIRAM":   {8, 2, 8},
		"Imagine": {16, 2, 48},
		"Raw":     {16, 16, 16},
	}
	for _, r := range rows {
		w, ok := want[r.Machine]
		if !ok {
			t.Fatalf("unexpected machine %q", r.Machine)
		}
		if r.OnChipRW != w[0] || r.OffChipRW != w[1] || r.Compute != w[2] {
			t.Fatalf("%s: got %v/%v/%v, want %v", r.Machine, r.OnChipRW, r.OffChipRW, r.Compute, w)
		}
	}
	// The baselines run their kernels against off-chip memory and have
	// no special strided or integer paths.
	for _, name := range []string{"PPC", "AltiVec"} {
		r, err := ForMachine(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.KernelMemoryOnChip || r.StridedRW != 0 || r.IntCompute != 0 {
			t.Fatalf("%s: unexpected research-architecture fields %+v", name, r)
		}
	}
}

func TestTable1Shared(t *testing.T) {
	// The table is hoisted to package level: repeated calls hand out the
	// same backing array instead of allocating.
	a, b := Table1(), Table1()
	if &a[0] != &b[0] {
		t.Fatal("Table1 allocated a fresh slice")
	}
	if n := testing.AllocsPerRun(100, func() { _, _ = ForMachine("VIRAM") }); n != 0 {
		t.Fatalf("ForMachine allocates %v per call", n)
	}
}

func TestForMachine(t *testing.T) {
	if _, err := ForMachine("VIRAM"); err != nil {
		t.Fatal(err)
	}
	if _, err := ForMachine("G5"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestExpectedCornerTurn(t *testing.T) {
	spec := cornerturn.PaperSpec() // 1M elements, 2M word transfers
	viram, _ := ForMachine("VIRAM")
	imagine, _ := ForMachine("Imagine")
	raw, _ := ForMachine("Raw")
	// VIRAM: 2M words at 8/cycle on-chip = 262,144 cycles (the paper:
	// measured is "about half of what would have been expected").
	if got := ExpectedCornerTurn(viram, spec); got != 2*1024*1024/8 {
		t.Fatalf("VIRAM expected = %d, want 262144", got)
	}
	// Imagine: 2M words at 2/cycle off-chip = 1,048,576 cycles.
	if got := ExpectedCornerTurn(imagine, spec); got != 2*1024*1024/2 {
		t.Fatalf("Imagine expected = %d, want 1048576", got)
	}
	// Raw: issue-bound at 16 instructions/cycle = 131,072 cycles.
	if got := ExpectedCornerTurn(raw, spec); got != 2*1024*1024/16 {
		t.Fatalf("Raw expected = %d, want 131072", got)
	}
}

func TestExpectedCornerTurnStrided(t *testing.T) {
	spec := cornerturn.PaperSpec()
	viram, _ := ForMachine("VIRAM")
	// Strided reads at 4/cycle + sequential writes at 8/cycle.
	want := uint64(1024*1024/4 + 1024*1024/8)
	if got := ExpectedCornerTurnStrided(viram, spec); got != want {
		t.Fatalf("VIRAM strided expected = %d, want %d", got, want)
	}
	// Machines without a strided limit fall back to the plain bound.
	raw, _ := ForMachine("Raw")
	if got := ExpectedCornerTurnStrided(raw, spec); got != ExpectedCornerTurn(raw, spec) {
		t.Fatal("Raw strided bound should equal plain bound")
	}
}

func TestExpectedCSLCOrdering(t *testing.T) {
	spec := cslc.PaperSpec(fft.MixedRadix42)
	var prev uint64
	// Higher compute throughput gives a lower bound: Imagine < Raw < VIRAM.
	for i, name := range []string{"Imagine", "Raw", "VIRAM"} {
		tp, _ := ForMachine(name)
		got, err := ExpectedCSLC(tp, spec)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && got <= prev {
			t.Fatalf("%s bound %d not above previous %d", name, got, prev)
		}
		prev = got
	}
}

func TestExpectedBeamSteering(t *testing.T) {
	spec := beamsteer.PaperSpec()
	viram, _ := ForMachine("VIRAM")
	// Memory-bound: 3 words x 51,456 outputs at 8 words/cycle.
	want := uint64(3 * 51456 / 8)
	if got := ExpectedBeamSteering(viram, spec); got != want {
		t.Fatalf("VIRAM beam steering bound = %d, want %d", got, want)
	}
	// Raw: compute-bound (6 ops at 16/cycle > 3 words at 16/cycle).
	raw, _ := ForMachine("Raw")
	if got := ExpectedBeamSteering(raw, spec); got != uint64(6*51456/16) {
		t.Fatalf("Raw beam steering bound = %d", got)
	}
}

func TestTable4(t *testing.T) {
	spec := cornerturn.PaperSpec()
	measured := map[string]uint64{"VIRAM": 554_000, "Imagine": 1_439_000, "Raw": 146_000}
	rows, err := Table4(spec, measured)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Measured == 0 || r.Expected == 0 {
			t.Fatalf("row %+v has zeros", r)
		}
		if r.Ratio() < 1 {
			t.Fatalf("%s: measured beat the peak model (ratio %.2f)", r.Machine, r.Ratio())
		}
	}
	// A partial study reconstructs its slice of the table, in Table 1
	// machine order.
	partial, err := Table4(spec, map[string]uint64{"Raw": 150_000, "PPC": 28_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) != 2 || partial[0].Machine != "PPC" || partial[1].Machine != "Raw" {
		t.Fatalf("partial rows %+v", partial)
	}
	// Machines without a Table 1 row, and empty measurements, are errors.
	if _, err := Table4(spec, map[string]uint64{"G5": 1}); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := Table4(spec, nil); err == nil {
		t.Fatal("empty measurements accepted")
	}
}
