// Package perfmodel implements the paper's Section 2.5 analytic
// performance models: peak-throughput bounds per machine (Table 1) and
// the expected kernel execution times derived from them (Table 4, which
// the paper presents for the corner turn). "We model computation and
// memory bandwidth. Memory latency is not modeled since these
// architectures can generally hide memory latency on the kernels used in
// this study."
package perfmodel

import (
	"fmt"

	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/sim"
)

// Throughput is one machine's Table 1 row, in 32-bit words per cycle.
type Throughput struct {
	Machine string
	// OnChipRW is the nearest-memory bandwidth (on-chip DRAM for VIRAM,
	// SRF for Imagine, tile caches for Raw).
	OnChipRW float64
	// OffChipRW is the off-chip DRAM bandwidth (for VIRAM this is the
	// DMA path off chip; its kernels run from on-chip DRAM).
	OffChipRW float64
	// Compute is the peak 32-bit operations per cycle.
	Compute float64
	// IntCompute is the peak integer-operation rate where it differs
	// from Compute (VIRAM's second vector unit executes integer but not
	// FP operations, doubling integer throughput); 0 means same.
	IntCompute float64
	// StridedRW is the strided/indexed bandwidth where it differs from
	// OnChipRW (VIRAM's four address generators); 0 means same as
	// OnChipRW.
	StridedRW float64
	// KernelMemoryOnChip records whether this study's kernels stress the
	// on-chip (true) or off-chip (false) memory system.
	KernelMemoryOnChip bool
}

// table1 is the package-level immutable Table 1, extended with the two
// conventional PPC baselines so every study machine has a row (the paper
// prints only the research architectures; the G4 rows are derived from
// the simulator's own configuration — see EXPERIMENTS.md):
//
//   - PPC: one load/store port moving one 32-bit word per cycle on- and
//     off-chip (the PPC DRAM model transfers one sequential word per
//     cycle), and a 2-wide issue window bounding ops at 2 per cycle.
//   - AltiVec: the same single load/store port moves one 128-bit vector
//     (4 words) per cycle from cache, the off-chip path is unchanged,
//     and peak compute is the 4 vector lanes plus the scalar FPU —
//     5 ops/cycle, matching Table 2's 5 GFLOPS at 1 GHz.
//
// The Raw off-chip figure is 16 (sixteen single-word-per-cycle
// peripheral ports); the available scan of the paper prints "28", which
// is inconsistent with the port description, so the port-derived value
// is used here (see EXPERIMENTS.md).
//
// Callers must not mutate the returned rows; Table1 hands out the shared
// slice so the estimate hot path never allocates.
var table1 = []Throughput{
	{Machine: "PPC", OnChipRW: 1, OffChipRW: 1, Compute: 2},
	{Machine: "AltiVec", OnChipRW: 4, OffChipRW: 1, Compute: 5},
	{Machine: "VIRAM", OnChipRW: 8, OffChipRW: 2, Compute: 8, IntCompute: 16, StridedRW: 4, KernelMemoryOnChip: true},
	{Machine: "Imagine", OnChipRW: 16, OffChipRW: 2, Compute: 48},
	{Machine: "Raw", OnChipRW: 16, OffChipRW: 16, Compute: 16},
}

// table1Index maps machine name to its table1 position for O(1)
// ForMachine lookups on the estimate hot path.
var table1Index = func() map[string]int {
	idx := make(map[string]int, len(table1))
	for i, t := range table1 {
		idx[t.Machine] = i
	}
	return idx
}()

// Table1 returns the paper's Table 1 rows (plus the derived PPC
// baseline rows), in the paper's machine order. The slice is shared and
// must be treated as read-only.
func Table1() []Throughput { return table1 }

// ForMachine returns the Table 1 row for a machine name.
func ForMachine(name string) (Throughput, error) {
	if i, ok := table1Index[name]; ok {
		return table1[i], nil
	}
	return Throughput{}, fmt.Errorf("perfmodel: no Table 1 row for %q", name)
}

// KernelBandwidth returns the bandwidth this study's kernels actually
// stress: the on-chip array for VIRAM, the off-chip interface for
// everything else.
func (t Throughput) KernelBandwidth() float64 {
	if t.KernelMemoryOnChip {
		return t.OnChipRW
	}
	return t.OffChipRW
}

// IntRate returns the peak integer-operation rate: IntCompute where it
// differs from Compute, Compute otherwise.
func (t Throughput) IntRate() float64 {
	if t.IntCompute != 0 {
		return t.IntCompute
	}
	return t.Compute
}

// kernelBandwidth is the historical unexported spelling, kept so the
// Expected* formulas below read as in the paper.
func (t Throughput) kernelBandwidth() float64 { return t.KernelBandwidth() }

// ExpectedCornerTurn returns the Section 2.5 bound for the corner turn:
// total words moved divided by the relevant memory bandwidth, with the
// issue-rate bound for Raw-style machines where every word costs a load
// and a store instruction.
func ExpectedCornerTurn(t Throughput, spec cornerturn.Spec) uint64 {
	words := 2 * spec.Words() // one read + one write per element
	mem := sim.CeilDiv(words, uint64(t.kernelBandwidth()))
	// Raw: two instructions per word on 16 single-issue tiles is also a
	// bound; for Imagine/VIRAM the compute bound is negligible here.
	compute := sim.CeilDiv(words, uint64(t.Compute))
	if compute > mem {
		return compute
	}
	return mem
}

// ExpectedCornerTurnStrided refines the bound with the strided-access
// limit (VIRAM reads columns through four address generators).
func ExpectedCornerTurnStrided(t Throughput, spec cornerturn.Spec) uint64 {
	if t.StridedRW == 0 {
		return ExpectedCornerTurn(t, spec)
	}
	reads := sim.CeilDiv(spec.Words(), uint64(t.StridedRW))
	writes := sim.CeilDiv(spec.Words(), uint64(t.kernelBandwidth()))
	return reads + writes
}

// ExpectedCSLC returns the compute bound for the CSLC: total real
// operations divided by peak compute throughput (the kernel's working
// set fits on chip everywhere, so memory is not the binding constraint).
func ExpectedCSLC(t Throughput, spec cslc.Spec) (uint64, error) {
	counts, err := spec.TotalCounts()
	if err != nil {
		return 0, err
	}
	return sim.CeilDiv(counts.Flops(), uint64(t.Compute)), nil
}

// ExpectedBeamSteering returns max(memory, compute) for beam steering:
// three words and six integer operations per output.
func ExpectedBeamSteering(t Throughput, spec beamsteer.Spec) uint64 {
	mem := sim.CeilDiv(spec.Outputs()*spec.MemPerOutput(), uint64(t.kernelBandwidth()))
	intRate := t.IntCompute
	if intRate == 0 {
		intRate = t.Compute
	}
	comp := sim.CeilDiv(spec.Outputs()*spec.OpsPerOutput(), uint64(intRate))
	if comp > mem {
		return comp
	}
	return mem
}

// Table4Row is one line of the reconstructed Table 4: the model's
// expected corner-turn cycles next to the simulator's measurement.
type Table4Row struct {
	Machine  string
	Expected uint64 // peak-bandwidth bound
	Strided  uint64 // bound refined by the strided-access limit
	Measured uint64
}

// Ratio returns measured/expected (how far the implementation landed
// from the peak model; the paper reports VIRAM at "about half of what
// would have been expected").
func (r Table4Row) Ratio() float64 {
	if r.Expected == 0 {
		return 0
	}
	return float64(r.Measured) / float64(r.Expected)
}

// Table4 assembles the reconstruction from measured results. Rows come
// out in Table 1 machine order for exactly the machines present in
// measured, so partial studies (e.g. the three research chips alone)
// reconstruct their slice of the table; a measurement for a machine
// without a Table 1 row is an error.
func Table4(spec cornerturn.Spec, measured map[string]uint64) ([]Table4Row, error) {
	if len(measured) == 0 {
		return nil, fmt.Errorf("perfmodel: no measured corner-turn cycles")
	}
	var rows []Table4Row
	for _, t := range Table1() {
		m, ok := measured[t.Machine]
		if !ok {
			continue
		}
		rows = append(rows, Table4Row{
			Machine:  t.Machine,
			Expected: ExpectedCornerTurn(t, spec),
			Strided:  ExpectedCornerTurnStrided(t, spec),
			Measured: m,
		})
	}
	if len(rows) != len(measured) {
		for name := range measured {
			if _, err := ForMachine(name); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}
