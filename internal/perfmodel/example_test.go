package perfmodel_test

import (
	"fmt"

	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/perfmodel"
)

// Example reproduces the Section 2.5 reasoning for the corner turn: the
// peak-bandwidth bounds the paper compares its measurements against.
func Example() {
	spec := cornerturn.PaperSpec()
	for _, name := range []string{"VIRAM", "Imagine", "Raw"} {
		t, err := perfmodel.ForMachine(name)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: peak-model corner turn = %dk cycles\n",
			name, perfmodel.ExpectedCornerTurn(t, spec)/1000)
	}
	// Output:
	// VIRAM: peak-model corner turn = 262k cycles
	// Imagine: peak-model corner turn = 1048k cycles
	// Raw: peak-model corner turn = 131k cycles
}
