package svc

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sigkern/internal/obs"
)

// latencyWindow bounds the ring buffers behind the latency quantiles: a
// rolling window of the most recent terminal jobs.
const latencyWindow = 1024

// execQuantileTTL bounds how stale the cached executed-job p50/p99
// served to Retry-After and the budget fast-reject may get before a
// reader recomputes them.
const execQuantileTTL = time.Second

// latRing is a fixed-capacity ring of latency samples. Not
// self-locking; Metrics guards both rings with one small mutex that is
// never shared with the counter hot path.
type latRing struct {
	buf  []time.Duration
	next int
}

func (r *latRing) add(d time.Duration) {
	if len(r.buf) < latencyWindow {
		r.buf = append(r.buf, d)
	} else {
		r.buf[r.next] = d
	}
	r.next = (r.next + 1) % latencyWindow
}

// sortedCopy returns the window's samples, sorted ascending.
func (r *latRing) sortedCopy() []time.Duration {
	out := make([]time.Duration, len(r.buf))
	copy(out, r.buf)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Metrics is the service's in-process metrics registry: job lifecycle
// counters, cache effectiveness, total simulated cycles served, rolling
// latency windows for quantiles, and per-(machine, kernel) labeled
// series for every Table 3 cell. All methods are safe for concurrent
// use. Counters are atomics, so the hot path (every queued job, every
// cache hit) never contends with Snapshot sorting the latency window.
type Metrics struct {
	queued       atomic.Uint64
	running      atomic.Int64
	done         atomic.Uint64
	failed       atomic.Uint64
	timeouts     atomic.Uint64
	panics       atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	coalescedJbs atomic.Uint64
	cyclesServed atomic.Uint64
	retries      atomic.Uint64
	determinism  atomic.Uint64
	shed         atomic.Uint64
	shedBatch    atomic.Uint64
	breakerDrops atomic.Uint64
	journalErrs  atomic.Uint64
	estimates    atomic.Uint64
	modelDrift   atomic.Uint64
	// Overload-robustness counters: admissions refused because the
	// remaining deadline budget could not cover the drain estimate,
	// queued tasks dropped at worker pickup because their budget ran
	// out, estimate answers served because the brownout controller was
	// engaged, and the controller's current verdict (gauge).
	budgetDrops  atomic.Uint64
	expiredDrops atomic.Uint64
	brownoutJobs atomic.Uint64
	brownoutOn   atomic.Bool
	// Batch fast-path counters: accepted groups and their member
	// cells, plus the machine-reuse ledger — executions served by a
	// per-worker cached instance, fresh constructions, sampled
	// fresh-instance verifications, and cache evictions (abandoned or
	// failed attempts, determinism trips).
	batchGroups   atomic.Uint64
	batchCells    atomic.Uint64
	batchCancels  atomic.Uint64
	machineReuses atomic.Uint64
	machineBuilds atomic.Uint64
	reuseChecks   atomic.Uint64
	machineEvicts atomic.Uint64

	// latMu guards the two rolling windows only. all holds every
	// terminal job (cache hits included) and feeds the reported
	// quantiles; exec holds only jobs that actually ran a simulator and
	// feeds the Retry-After drain estimate — µs-scale cache hits in the
	// drain math would collapse the estimate exactly when the queue is
	// full of real work.
	latMu sync.Mutex
	all   latRing
	exec  latRing

	// Cached executed-job p50/p99, refreshed together at most once per
	// execQuantileTTL: Retry-After (p50) and the deadline-budget
	// fast-reject (p99) are computed precisely under overload, where
	// sorting 1024 samples per shed response is the last thing the
	// server needs.
	execP50Nanos atomic.Int64
	execP99Nanos atomic.Int64
	execQStamp   atomic.Int64 // unix nanos of the refresh that owns the values

	// Labeled per-cell series, exposed in the Prometheus format.
	reg            *obs.Registry
	vecDone        *obs.CounterVec
	vecFailed      *obs.CounterVec
	vecCacheHits   *obs.CounterVec
	vecCacheMisses *obs.CounterVec
	vecCoalesced   *obs.CounterVec
	vecRetries     *obs.CounterVec
	vecDeterminism *obs.CounterVec
	vecEstimates   *obs.CounterVec
	vecModelDrift  *obs.CounterVec
	vecModelError  *obs.GaugeVec
	vecExecLatency *obs.HistogramVec
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	m := &Metrics{reg: obs.NewRegistry()}
	m.vecDone = m.reg.NewCounterVec("simserved_cell_jobs_done_total",
		"Jobs finished successfully, per (machine, kernel) cell.")
	m.vecFailed = m.reg.NewCounterVec("simserved_cell_jobs_failed_total",
		"Jobs finished in error, per (machine, kernel) cell.")
	m.vecCacheHits = m.reg.NewCounterVec("simserved_cell_cache_hits_total",
		"Jobs answered from the memo table, per (machine, kernel) cell.")
	m.vecCacheMisses = m.reg.NewCounterVec("simserved_cell_cache_misses_total",
		"Memo probes that missed, per (machine, kernel) cell.")
	m.vecCoalesced = m.reg.NewCounterVec("simserved_cell_jobs_coalesced_total",
		"Submissions attached to an identical in-flight execution, per (machine, kernel) cell.")
	m.vecRetries = m.reg.NewCounterVec("simserved_cell_retries_total",
		"Transient-failure re-executions, per (machine, kernel) cell.")
	m.vecDeterminism = m.reg.NewCounterVec("simserved_cell_determinism_violations_total",
		"Determinism-guard trips, per (machine, kernel) cell.")
	m.vecEstimates = m.reg.NewCounterVec("simserved_cell_estimates_total",
		"Estimate-tier jobs answered from the analytic roofline model, per (machine, kernel) cell.")
	m.vecModelDrift = m.reg.NewCounterVec("simserved_cell_model_drift_total",
		"Simulated results outside the analytic model's error envelope, per (machine, kernel) cell.")
	m.vecModelError = m.reg.NewGaugeVec("simserved_cell_model_error_ratio",
		"Latest simulated-cycles over analytic-bound ratio, per (machine, kernel) cell.")
	m.vecExecLatency = m.reg.NewHistogramVec("simserved_cell_exec_latency_seconds",
		"Executed-job latency (queue to finish, cache hits excluded), per (machine, kernel) cell.", nil)
	return m
}

// Registry returns the labeled per-cell series for exposition.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

func (m *Metrics) jobQueued() { m.queued.Add(1) }

func (m *Metrics) jobStarted() { m.running.Add(1) }

// jobFinished records a terminal transition. started is false for jobs
// that never ran (cache hits, rejected submissions after queueing);
// only started jobs enter the executed-latency window behind the
// Retry-After drain estimate.
func (m *Metrics) jobFinished(cell obs.Labels, started, ok, timedOut, panicked bool, latency time.Duration) {
	if started {
		m.running.Add(-1)
	}
	if ok {
		m.done.Add(1)
		m.vecDone.With(cell).Inc()
	} else {
		m.failed.Add(1)
		m.vecFailed.With(cell).Inc()
	}
	if timedOut {
		m.timeouts.Add(1)
	}
	if panicked {
		m.panics.Add(1)
	}
	m.latMu.Lock()
	m.all.add(latency)
	if started {
		m.exec.add(latency)
	}
	m.latMu.Unlock()
	if started && !cell.IsZero() {
		m.vecExecLatency.With(cell).Observe(latency)
	}
}

func (m *Metrics) cacheHit(cell obs.Labels, cycles uint64) {
	m.cacheHits.Add(1)
	m.cyclesServed.Add(cycles)
	m.vecCacheHits.With(cell).Inc()
}

func (m *Metrics) cacheMiss(cell obs.Labels) {
	m.cacheMisses.Add(1)
	m.vecCacheMisses.With(cell).Inc()
}

// jobCoalesced records a submission that attached to an identical
// in-flight execution instead of running the simulator again.
func (m *Metrics) jobCoalesced(cell obs.Labels) {
	m.coalescedJbs.Add(1)
	m.vecCoalesced.With(cell).Inc()
}

func (m *Metrics) cyclesRun(cycles uint64) { m.cyclesServed.Add(cycles) }

// jobRetried records n transient-failure re-executions of one job.
func (m *Metrics) jobRetried(cell obs.Labels, n uint64) {
	m.retries.Add(n)
	m.vecRetries.With(cell).Add(n)
}

// determinismViolation records the determinism guard tripping.
func (m *Metrics) determinismViolation(cell obs.Labels) {
	m.determinism.Add(1)
	m.vecDeterminism.With(cell).Inc()
}

// loadShed records an admission rejected because its priority class's
// queue was full (or, for batch, because interactive traffic had
// claimed the remaining capacity).
func (m *Metrics) loadShed(pr Priority) {
	m.shed.Add(1)
	if pr == PriorityBatch {
		m.shedBatch.Add(1)
	}
}

// budgetRejected records an admission refused because the remaining
// deadline budget was below the drain estimate.
func (m *Metrics) budgetRejected() { m.budgetDrops.Add(1) }

// expiredDropped records a queued task dropped at worker pickup because
// its deadline budget ran out while it waited.
func (m *Metrics) expiredDropped() { m.expiredDrops.Add(1) }

// brownoutServed records one degraded (estimate-tier) answer served
// because the brownout controller was engaged.
func (m *Metrics) brownoutServed() { m.brownoutJobs.Add(1) }

// setBrownoutActive publishes the controller's verdict as a gauge.
func (m *Metrics) setBrownoutActive(v bool) { m.brownoutOn.Store(v) }

// BrownoutActive returns the last published brownout verdict.
func (m *Metrics) BrownoutActive() bool { return m.brownoutOn.Load() }

// batchAccepted records one admitted batch group and its cell count.
func (m *Metrics) batchAccepted(cells int) {
	m.batchGroups.Add(1)
	m.batchCells.Add(uint64(cells))
}

// batchCancelled records one batch group cancelled mid-flight (client
// disconnect or explicit BatchRun.Cancel).
func (m *Metrics) batchCancelled() {
	m.batchCancels.Add(1)
}

// machineReused records an execution served by a per-worker cached
// machine instance (rewound, not reconstructed).
func (m *Metrics) machineReused() { m.machineReuses.Add(1) }

// machineBuilt records a fresh machine-instance construction on the
// reuse path (cache miss, non-Resettable machine, or quarantine).
func (m *Metrics) machineBuilt() { m.machineBuilds.Add(1) }

// reuseChecked records one sampled fresh-instance verification of a
// reused-instance result.
func (m *Metrics) reuseChecked() { m.reuseChecks.Add(1) }

// machineEvicted records a worker dropping a cached instance whose
// state is no longer trustworthy.
func (m *Metrics) machineEvicted() { m.machineEvicts.Add(1) }

// breakerRejected records an admission rejected by an open breaker.
func (m *Metrics) breakerRejected() { m.breakerDrops.Add(1) }

// journalAppendError records a lifecycle transition the durability
// journal failed to persist.
func (m *Metrics) journalAppendError() { m.journalErrs.Add(1) }

// estimateServed records one estimate-tier answer.
func (m *Metrics) estimateServed(cell obs.Labels) {
	m.estimates.Add(1)
	m.vecEstimates.With(cell).Inc()
}

// modelObserved publishes one simulated-vs-model comparison: the cell's
// error-ratio gauge is always updated; a ratio outside the envelope
// additionally fires the drift alert counters. Simulator drift from its
// own analytic lower bound is a correctness alarm, not noise.
func (m *Metrics) modelObserved(cell obs.Labels, ratio float64, within bool) {
	m.vecModelError.With(cell).Set(ratio)
	if !within {
		m.modelDrift.Add(1)
		m.vecModelDrift.With(cell).Inc()
	}
}

// ModelDriftAlerts returns the drift-alert count — a single atomic
// read, for tests and health probes.
func (m *Metrics) ModelDriftAlerts() uint64 { return m.modelDrift.Load() }

// JournalAppendErrors returns the journal append-error count — a
// single atomic read, for callers (health checks) that do not need the
// full quantile-sorting Snapshot.
func (m *Metrics) JournalAppendErrors() uint64 { return m.journalErrs.Load() }

// ExecP50 returns the rolling executed-job p50 latency from a cached
// value refreshed at most once per second — the cheap read Retry-After
// computation uses on every shed response, instead of copying and
// sorting the full window under load.
func (m *Metrics) ExecP50() time.Duration {
	m.refreshExecQuantiles()
	return time.Duration(m.execP50Nanos.Load())
}

// ExecP99 returns the rolling executed-job p99 latency from the same
// cached refresh as ExecP50 — the drain-estimate input for the
// deadline-budget fast-reject and the brownout controller.
func (m *Metrics) ExecP99() time.Duration {
	m.refreshExecQuantiles()
	return time.Duration(m.execP99Nanos.Load())
}

// refreshExecQuantiles recomputes the cached executed-job p50/p99 when
// the TTL has lapsed. One refresher wins the CAS; everyone else serves
// the (at worst one-TTL-stale) cached values without touching the
// window.
func (m *Metrics) refreshExecQuantiles() {
	now := time.Now().UnixNano()
	stamp := m.execQStamp.Load()
	if stamp != 0 && now-stamp < int64(execQuantileTTL) {
		return
	}
	if !m.execQStamp.CompareAndSwap(stamp, now) {
		return
	}
	m.latMu.Lock()
	window := m.exec.sortedCopy()
	m.latMu.Unlock()
	m.execP50Nanos.Store(int64(quantile(window, 0.50)))
	m.execP99Nanos.Store(int64(quantile(window, 0.99)))
}

// invalidateExecQuantiles forces the next ExecP50/ExecP99 call to
// recompute — test hook, so refresh behavior is observable without
// sleeping out the TTL.
func (m *Metrics) invalidateExecQuantiles() { m.execQStamp.Store(0) }

// Snapshot is a point-in-time copy of every metric.
type Snapshot struct {
	Queued       uint64  `json:"jobs_queued"`
	Running      uint64  `json:"jobs_running"`
	Done         uint64  `json:"jobs_done"`
	Failed       uint64  `json:"jobs_failed"`
	Timeouts     uint64  `json:"jobs_timeout"`
	Panics       uint64  `json:"jobs_panicked"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Coalesced counts submissions that attached to an identical
	// in-flight execution (singleflight) instead of running again.
	Coalesced    uint64 `json:"jobs_coalesced"`
	CyclesServed uint64 `json:"simulated_cycles_served"`
	// Retries counts transient-failure re-executions; Determinism
	// counts guard trips (results disagreeing with the memoized spec
	// hash); Shed and BreakerRejected count admissions refused by the
	// full queue and by open circuit breakers.
	Retries     uint64 `json:"retries"`
	Determinism uint64 `json:"determinism_violations"`
	// Shed counts every refused admission; ShedBatch the batch-class
	// subset (saturation sheds batch first, so under mixed overload
	// ShedBatch should dominate).
	Shed            uint64 `json:"jobs_shed"`
	ShedBatch       uint64 `json:"jobs_shed_batch"`
	BreakerRejected uint64 `json:"breaker_rejected"`
	// BudgetRejected counts admissions refused because the remaining
	// deadline budget was below the drain estimate; ExpiredDropped
	// counts queued jobs dropped at worker pickup after their budget
	// ran out (neither ever occupied a worker slot).
	BudgetRejected uint64 `json:"budget_rejected"`
	ExpiredDropped uint64 `json:"expired_jobs_dropped"`
	// BrownoutServed counts degraded estimate answers served while the
	// ?tier=auto controller was engaged; BrownoutActive is its current
	// verdict.
	BrownoutServed uint64 `json:"brownout_served"`
	BrownoutActive bool   `json:"brownout_active"`
	// BatchGroups/BatchCells count accepted /v1/batch groups and their
	// member cells; MachineReuses/MachineBuilds are the per-worker
	// instance-cache ledger (reused vs freshly constructed);
	// ReuseChecks counts sampled fresh-instance verifications and
	// MachineEvictions cache entries dropped as untrustworthy.
	BatchGroups      uint64 `json:"batch_groups"`
	BatchCells       uint64 `json:"batch_cells"`
	BatchCancels     uint64 `json:"batch_cancels"`
	MachineReuses    uint64 `json:"machine_reuses"`
	MachineBuilds    uint64 `json:"machine_builds"`
	ReuseChecks      uint64 `json:"reuse_checks"`
	MachineEvictions uint64 `json:"machine_evictions"`
	// JournalAppendErrors counts job lifecycle transitions the
	// durability journal failed to persist (disk trouble; the health
	// endpoint degrades while it is non-zero).
	JournalAppendErrors uint64 `json:"journal_append_errors"`
	// Estimates counts estimate-tier answers (analytic roofline, no
	// simulator run); ModelDrift counts simulated results that landed
	// outside the analytic model's error envelope.
	Estimates  uint64 `json:"estimates_served"`
	ModelDrift uint64 `json:"model_drift_alerts"`
	// P50 and P99 are latency quantiles over the most recent terminal
	// jobs (a rolling window, cache hits included), in seconds.
	P50Seconds float64 `json:"latency_p50_seconds"`
	P99Seconds float64 `json:"latency_p99_seconds"`
	Samples    int     `json:"latency_samples"`
	// ExecP50Seconds/ExecP99Seconds are the same quantiles over
	// executed jobs only (the window behind the Retry-After drain
	// estimate); cache hits and coalesced completions are excluded.
	ExecP50Seconds float64 `json:"exec_latency_p50_seconds"`
	ExecP99Seconds float64 `json:"exec_latency_p99_seconds"`
	ExecSamples    int     `json:"exec_latency_samples"`
}

// Snapshot returns a copy of the registry. Counters are read
// atomically — concurrent updates may land between reads, but each
// value is itself consistent and monotone.
func (m *Metrics) Snapshot() Snapshot {
	running := m.running.Load()
	if running < 0 {
		running = 0
	}
	s := Snapshot{
		Queued:       m.queued.Load(),
		Running:      uint64(running),
		Done:         m.done.Load(),
		Failed:       m.failed.Load(),
		Timeouts:     m.timeouts.Load(),
		Panics:       m.panics.Load(),
		CacheHits:    m.cacheHits.Load(),
		CacheMisses:  m.cacheMisses.Load(),
		Coalesced:    m.coalescedJbs.Load(),
		CyclesServed: m.cyclesServed.Load(),

		Retries:         m.retries.Load(),
		Determinism:     m.determinism.Load(),
		Shed:            m.shed.Load(),
		ShedBatch:       m.shedBatch.Load(),
		BreakerRejected: m.breakerDrops.Load(),
		BudgetRejected:  m.budgetDrops.Load(),
		ExpiredDropped:  m.expiredDrops.Load(),
		BrownoutServed:  m.brownoutJobs.Load(),
		BrownoutActive:  m.brownoutOn.Load(),

		BatchGroups:      m.batchGroups.Load(),
		BatchCells:       m.batchCells.Load(),
		BatchCancels:     m.batchCancels.Load(),
		MachineReuses:    m.machineReuses.Load(),
		MachineBuilds:    m.machineBuilds.Load(),
		ReuseChecks:      m.reuseChecks.Load(),
		MachineEvictions: m.machineEvicts.Load(),

		JournalAppendErrors: m.journalErrs.Load(),

		Estimates:  m.estimates.Load(),
		ModelDrift: m.modelDrift.Load(),
	}
	if probes := s.CacheHits + s.CacheMisses; probes > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(probes)
	}
	m.latMu.Lock()
	all := m.all.sortedCopy()
	exec := m.exec.sortedCopy()
	m.latMu.Unlock()
	s.Samples = len(all)
	if len(all) > 0 {
		s.P50Seconds = quantile(all, 0.50).Seconds()
		s.P99Seconds = quantile(all, 0.99).Seconds()
	}
	s.ExecSamples = len(exec)
	if len(exec) > 0 {
		s.ExecP50Seconds = quantile(exec, 0.50).Seconds()
		s.ExecP99Seconds = quantile(exec, 0.99).Seconds()
	}
	return s
}

// quantile returns the q-th quantile of sorted (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// metricDesc describes one unlabeled metric for both text formats.
type metricDesc struct {
	name  string
	typ   string // counter or gauge
	help  string
	value string
}

// describe lists every unlabeled metric in stable order.
func (s Snapshot) describe() []metricDesc {
	return []metricDesc{
		{"simserved_jobs_queued_total", "counter", "Jobs accepted onto the pool queue.", fmt.Sprintf("%d", s.Queued)},
		{"simserved_jobs_running", "gauge", "Jobs currently executing on a worker.", fmt.Sprintf("%d", s.Running)},
		{"simserved_jobs_done_total", "counter", "Jobs finished successfully.", fmt.Sprintf("%d", s.Done)},
		{"simserved_jobs_failed_total", "counter", "Jobs finished in error.", fmt.Sprintf("%d", s.Failed)},
		{"simserved_jobs_timeout_total", "counter", "Jobs that hit the per-job deadline.", fmt.Sprintf("%d", s.Timeouts)},
		{"simserved_jobs_panicked_total", "counter", "Jobs whose simulator panicked (isolated).", fmt.Sprintf("%d", s.Panics)},
		{"simserved_cache_hits_total", "counter", "Jobs answered from the memo table.", fmt.Sprintf("%d", s.CacheHits)},
		{"simserved_cache_misses_total", "counter", "Memo probes that missed.", fmt.Sprintf("%d", s.CacheMisses)},
		{"simserved_cache_hit_rate", "gauge", "Memo hit fraction over all probes.", fmt.Sprintf("%.4f", s.CacheHitRate)},
		{"simserved_jobs_coalesced_total", "counter", "Submissions attached to an identical in-flight execution.", fmt.Sprintf("%d", s.Coalesced)},
		{"simserved_simulated_cycles_served_total", "counter", "Simulated machine cycles served (run or cached).", fmt.Sprintf("%d", s.CyclesServed)},
		{"simserved_retries_total", "counter", "Transient-failure re-executions.", fmt.Sprintf("%d", s.Retries)},
		{"simserved_determinism_violations_total", "counter", "Determinism-guard trips.", fmt.Sprintf("%d", s.Determinism)},
		{"simserved_jobs_shed_total", "counter", "Admissions refused because the queue was full.", fmt.Sprintf("%d", s.Shed)},
		{"simserved_jobs_shed_batch_total", "counter", "Batch-priority admissions shed (saturation sheds batch first).", fmt.Sprintf("%d", s.ShedBatch)},
		{"simserved_breaker_rejected_total", "counter", "Admissions refused by an open circuit breaker.", fmt.Sprintf("%d", s.BreakerRejected)},
		{"simserved_budget_rejected_total", "counter", "Admissions refused because the remaining deadline budget was below the drain estimate.", fmt.Sprintf("%d", s.BudgetRejected)},
		{"simserved_expired_jobs_dropped_total", "counter", "Queued jobs dropped at worker pickup after their deadline budget ran out.", fmt.Sprintf("%d", s.ExpiredDropped)},
		{"simserved_brownout_served_total", "counter", "Degraded estimate-tier answers served while browned out.", fmt.Sprintf("%d", s.BrownoutServed)},
		{"simserved_brownout_active", "gauge", "Whether the ?tier=auto brownout controller is engaged (1) or not (0).", boolToMetric(s.BrownoutActive)},
		{"simserved_batch_groups_total", "counter", "Accepted batch groups.", fmt.Sprintf("%d", s.BatchGroups)},
		{"simserved_batch_cells_total", "counter", "Member cells across accepted batch groups.", fmt.Sprintf("%d", s.BatchCells)},
		{"simserved_batch_cancels_total", "counter", "Batch groups cancelled mid-flight.", fmt.Sprintf("%d", s.BatchCancels)},
		{"simserved_machine_reuses_total", "counter", "Executions served by a per-worker cached machine instance.", fmt.Sprintf("%d", s.MachineReuses)},
		{"simserved_machine_builds_total", "counter", "Fresh machine-instance constructions on the reuse path.", fmt.Sprintf("%d", s.MachineBuilds)},
		{"simserved_reuse_checks_total", "counter", "Sampled fresh-instance verifications of reused-instance results.", fmt.Sprintf("%d", s.ReuseChecks)},
		{"simserved_machine_evictions_total", "counter", "Cached machine instances dropped as untrustworthy.", fmt.Sprintf("%d", s.MachineEvictions)},
		{"simserved_journal_append_errors_total", "counter", "Lifecycle transitions the durability journal failed to persist.", fmt.Sprintf("%d", s.JournalAppendErrors)},
		{"simserved_estimates_served_total", "counter", "Estimate-tier jobs answered from the analytic roofline model.", fmt.Sprintf("%d", s.Estimates)},
		{"simserved_model_drift_alerts_total", "counter", "Simulated results outside the analytic model's error envelope.", fmt.Sprintf("%d", s.ModelDrift)},
		{"simserved_job_latency_p50_seconds", "gauge", "p50 latency over the rolling terminal-job window (cache hits included).", fmt.Sprintf("%.6f", s.P50Seconds)},
		{"simserved_job_latency_p99_seconds", "gauge", "p99 latency over the rolling terminal-job window (cache hits included).", fmt.Sprintf("%.6f", s.P99Seconds)},
		{"simserved_job_latency_samples", "gauge", "Samples in the rolling terminal-job window.", fmt.Sprintf("%d", s.Samples)},
		{"simserved_exec_latency_p50_seconds", "gauge", "p50 latency over executed jobs only (the Retry-After drain estimate).", fmt.Sprintf("%.6f", s.ExecP50Seconds)},
		{"simserved_exec_latency_p99_seconds", "gauge", "p99 latency over executed jobs only.", fmt.Sprintf("%.6f", s.ExecP99Seconds)},
		{"simserved_exec_latency_samples", "gauge", "Samples in the executed-job window.", fmt.Sprintf("%d", s.ExecSamples)},
	}
}

func boolToMetric(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// WriteText renders the snapshot in the flat `name value` text format
// of the /metrics endpoint.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, d := range s.describe() {
		if _, err := fmt.Fprintf(w, "%s %s\n", d.name, d.value); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the full registry — the unlabeled snapshot
// totals plus every per-(machine, kernel) labeled series — in the
// Prometheus text exposition format (HELP/TYPE comments, escaped
// labels, histogram buckets).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	for _, d := range s.describe() {
		if err := obs.WritePromHeader(w, d.name, d.help, d.typ); err != nil {
			return err
		}
		if err := obs.WritePromSample(w, d.name, obs.Labels{}, "", "", d.value); err != nil {
			return err
		}
	}
	// Priority-labeled shed: one family, one series per admission class,
	// so a dashboard can show "who is being refused" directly.
	const shedByPriority = "simserved_jobs_shed_by_priority_total"
	if err := obs.WritePromHeader(w, shedByPriority,
		"Admissions refused under saturation, per priority class.", "counter"); err != nil {
		return err
	}
	if err := obs.WritePromSampleKV(w, shedByPriority,
		fmt.Sprintf("%d", s.Shed-s.ShedBatch), "priority", string(PriorityInteractive)); err != nil {
		return err
	}
	if err := obs.WritePromSampleKV(w, shedByPriority,
		fmt.Sprintf("%d", s.ShedBatch), "priority", string(PriorityBatch)); err != nil {
		return err
	}
	return m.reg.WritePrometheus(w)
}
