package svc

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyWindow bounds the ring buffer behind the latency quantiles: a
// rolling window of the most recent terminal jobs.
const latencyWindow = 1024

// Metrics is the service's in-process metrics registry: job lifecycle
// counters, cache effectiveness, total simulated cycles served, and a
// rolling latency window for quantiles. All methods are safe for
// concurrent use.
type Metrics struct {
	mu           sync.Mutex
	queued       uint64
	running      uint64
	done         uint64
	failed       uint64
	timeouts     uint64
	panics       uint64
	cacheHits    uint64
	cacheMisses  uint64
	coalescedJbs uint64
	cyclesServed uint64
	retries      uint64
	determinism  uint64
	shed         uint64
	breakerDrops uint64
	journalErrs  uint64
	latencies    []time.Duration
	next         int
	filled       bool
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{latencies: make([]time.Duration, 0, latencyWindow)}
}

func (m *Metrics) jobQueued() {
	m.mu.Lock()
	m.queued++
	m.mu.Unlock()
}

func (m *Metrics) jobStarted() {
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
}

// jobFinished records a terminal transition. started is false for jobs
// that never ran (cache hits, rejected submissions after queueing).
func (m *Metrics) jobFinished(started, ok, timedOut, panicked bool, latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if started && m.running > 0 {
		m.running--
	}
	if ok {
		m.done++
	} else {
		m.failed++
	}
	if timedOut {
		m.timeouts++
	}
	if panicked {
		m.panics++
	}
	if len(m.latencies) < latencyWindow {
		m.latencies = append(m.latencies, latency)
	} else {
		m.latencies[m.next] = latency
		m.filled = true
	}
	m.next = (m.next + 1) % latencyWindow
}

func (m *Metrics) cacheHit(cycles uint64) {
	m.mu.Lock()
	m.cacheHits++
	m.cyclesServed += cycles
	m.mu.Unlock()
}

func (m *Metrics) cacheMiss() {
	m.mu.Lock()
	m.cacheMisses++
	m.mu.Unlock()
}

// jobCoalesced records a submission that attached to an identical
// in-flight execution instead of running the simulator again.
func (m *Metrics) jobCoalesced() {
	m.mu.Lock()
	m.coalescedJbs++
	m.mu.Unlock()
}

func (m *Metrics) cyclesRun(cycles uint64) {
	m.mu.Lock()
	m.cyclesServed += cycles
	m.mu.Unlock()
}

// jobRetried records n transient-failure re-executions of one job.
func (m *Metrics) jobRetried(n uint64) {
	m.mu.Lock()
	m.retries += n
	m.mu.Unlock()
}

// determinismViolation records the determinism guard tripping.
func (m *Metrics) determinismViolation() {
	m.mu.Lock()
	m.determinism++
	m.mu.Unlock()
}

// loadShed records an admission rejected because the queue was full.
func (m *Metrics) loadShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// breakerRejected records an admission rejected by an open breaker.
func (m *Metrics) breakerRejected() {
	m.mu.Lock()
	m.breakerDrops++
	m.mu.Unlock()
}

// journalAppendError records a lifecycle transition the durability
// journal failed to persist.
func (m *Metrics) journalAppendError() {
	m.mu.Lock()
	m.journalErrs++
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of every metric.
type Snapshot struct {
	Queued       uint64  `json:"jobs_queued"`
	Running      uint64  `json:"jobs_running"`
	Done         uint64  `json:"jobs_done"`
	Failed       uint64  `json:"jobs_failed"`
	Timeouts     uint64  `json:"jobs_timeout"`
	Panics       uint64  `json:"jobs_panicked"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Coalesced counts submissions that attached to an identical
	// in-flight execution (singleflight) instead of running again.
	Coalesced    uint64 `json:"jobs_coalesced"`
	CyclesServed uint64 `json:"simulated_cycles_served"`
	// Retries counts transient-failure re-executions; Determinism
	// counts guard trips (results disagreeing with the memoized spec
	// hash); Shed and BreakerRejected count admissions refused by the
	// full queue and by open circuit breakers.
	Retries         uint64 `json:"retries"`
	Determinism     uint64 `json:"determinism_violations"`
	Shed            uint64 `json:"jobs_shed"`
	BreakerRejected uint64 `json:"breaker_rejected"`
	// JournalAppendErrors counts job lifecycle transitions the
	// durability journal failed to persist (disk trouble; the health
	// endpoint degrades while it is non-zero).
	JournalAppendErrors uint64 `json:"journal_append_errors"`
	// P50 and P99 are latency quantiles over the most recent terminal
	// jobs (a rolling window), in seconds.
	P50Seconds float64 `json:"latency_p50_seconds"`
	P99Seconds float64 `json:"latency_p99_seconds"`
	Samples    int     `json:"latency_samples"`
}

// Snapshot returns a consistent copy of the registry.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Queued:       m.queued,
		Running:      m.running,
		Done:         m.done,
		Failed:       m.failed,
		Timeouts:     m.timeouts,
		Panics:       m.panics,
		CacheHits:    m.cacheHits,
		CacheMisses:  m.cacheMisses,
		Coalesced:    m.coalescedJbs,
		CyclesServed: m.cyclesServed,

		Retries:         m.retries,
		Determinism:     m.determinism,
		Shed:            m.shed,
		BreakerRejected: m.breakerDrops,

		JournalAppendErrors: m.journalErrs,
	}
	if probes := m.cacheHits + m.cacheMisses; probes > 0 {
		s.CacheHitRate = float64(m.cacheHits) / float64(probes)
	}
	window := make([]time.Duration, len(m.latencies))
	copy(window, m.latencies)
	s.Samples = len(window)
	if len(window) > 0 {
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		s.P50Seconds = quantile(window, 0.50).Seconds()
		s.P99Seconds = quantile(window, 0.99).Seconds()
	}
	return s
}

// quantile returns the q-th quantile of sorted (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteText renders the snapshot in the flat `name value` text format
// of the /metrics endpoint.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := []struct {
		name  string
		value string
	}{
		{"simserved_jobs_queued_total", fmt.Sprintf("%d", s.Queued)},
		{"simserved_jobs_running", fmt.Sprintf("%d", s.Running)},
		{"simserved_jobs_done_total", fmt.Sprintf("%d", s.Done)},
		{"simserved_jobs_failed_total", fmt.Sprintf("%d", s.Failed)},
		{"simserved_jobs_timeout_total", fmt.Sprintf("%d", s.Timeouts)},
		{"simserved_jobs_panicked_total", fmt.Sprintf("%d", s.Panics)},
		{"simserved_cache_hits_total", fmt.Sprintf("%d", s.CacheHits)},
		{"simserved_cache_misses_total", fmt.Sprintf("%d", s.CacheMisses)},
		{"simserved_cache_hit_rate", fmt.Sprintf("%.4f", s.CacheHitRate)},
		{"simserved_jobs_coalesced_total", fmt.Sprintf("%d", s.Coalesced)},
		{"simserved_simulated_cycles_served_total", fmt.Sprintf("%d", s.CyclesServed)},
		{"simserved_retries_total", fmt.Sprintf("%d", s.Retries)},
		{"simserved_determinism_violations_total", fmt.Sprintf("%d", s.Determinism)},
		{"simserved_jobs_shed_total", fmt.Sprintf("%d", s.Shed)},
		{"simserved_breaker_rejected_total", fmt.Sprintf("%d", s.BreakerRejected)},
		{"simserved_journal_append_errors_total", fmt.Sprintf("%d", s.JournalAppendErrors)},
		{"simserved_job_latency_p50_seconds", fmt.Sprintf("%.6f", s.P50Seconds)},
		{"simserved_job_latency_p99_seconds", fmt.Sprintf("%.6f", s.P99Seconds)},
		{"simserved_job_latency_samples", fmt.Sprintf("%d", s.Samples)},
	}
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %s\n", l.name, l.value); err != nil {
			return err
		}
	}
	return nil
}
