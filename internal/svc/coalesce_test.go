package svc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/faults"
	"sigkern/internal/machines"
)

// TestPoolCoalescing submits many tasks sharing one MemoKey while the
// first is still executing: exactly one backend execution must run, and
// every submission must receive its (bit-identical) result.
func TestPoolCoalescing(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 2, JobTimeout: time.Minute, Faults: faults.New(1)})
	defer p.Close()

	release := make(chan struct{})
	var execs atomic.Int64
	task := Task{
		Label:   "coalesce",
		MemoKey: "k",
		Run: func(ctx context.Context) (core.Result, error) {
			execs.Add(1)
			<-release
			return core.Result{Cycles: 42, Verified: true}, nil
		},
	}
	lead, err := p.Submit(task)
	if err != nil {
		t.Fatal(err)
	}
	<-lead.started

	const followers = 15
	futs := make([]*Future, followers)
	for i := range futs {
		f, err := p.Submit(task)
		if err != nil {
			t.Fatal(err)
		}
		if f != lead {
			t.Fatal("follower got its own execution instead of attaching to the flight")
		}
		futs[i] = f
	}
	close(release)

	for _, f := range append(futs, lead) {
		r, err := f.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != 42 {
			t.Fatalf("cycles = %d, want 42", r.Cycles)
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("backend executions = %d, want 1", n)
	}
	if snap := p.Metrics().Snapshot(); snap.Coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", snap.Coalesced, followers)
	}
}

// TestPoolCoalescingWaiterCancel proves a waiter abandoning a coalesced
// flight cancels only its own Wait: the shared execution keeps running
// and the remaining waiters still get the result.
func TestPoolCoalescingWaiterCancel(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, JobTimeout: time.Minute, Faults: faults.New(1)})
	defer p.Close()

	release := make(chan struct{})
	task := Task{
		Label:   "cancel",
		MemoKey: "k",
		Run: func(ctx context.Context) (core.Result, error) {
			<-release
			return core.Result{Cycles: 7, Verified: true}, nil
		},
	}
	lead, err := p.Submit(task)
	if err != nil {
		t.Fatal(err)
	}
	<-lead.started
	follower, err := p.Submit(task)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, werr := follower.Wait(ctx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", werr)
	}

	close(release)
	r, err := lead.Wait(context.Background())
	if err != nil {
		t.Fatalf("surviving waiter poisoned: %v", err)
	}
	if r.Cycles != 7 {
		t.Fatalf("cycles = %d, want 7", r.Cycles)
	}
	// The abandoned waiter can still read the completed flight later.
	if r2, err := follower.Wait(context.Background()); err != nil || r2.Cycles != 7 {
		t.Fatalf("late re-wait: %d/%v", r2.Cycles, err)
	}
}

// TestPoolCoalescingShedUnregisters proves a shed TrySubmit does not
// leave a dead flight behind: the same key submitted again afterwards
// runs fresh instead of waiting on work that never executed.
func TestPoolCoalescingShedUnregisters(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 1, JobTimeout: time.Minute, Faults: faults.New(1)})
	defer p.Close()

	block := make(chan struct{})
	filler, err := p.Submit(Task{Label: "filler", Run: func(ctx context.Context) (core.Result, error) {
		<-block
		return core.Result{}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-filler.started
	if _, err := p.Submit(Task{Label: "queued", Run: func(ctx context.Context) (core.Result, error) {
		return core.Result{}, nil
	}}); err != nil {
		t.Fatal(err)
	}

	var execs atomic.Int64
	task := Task{
		Label:   "shed-then-run",
		MemoKey: "k",
		Run: func(ctx context.Context) (core.Result, error) {
			execs.Add(1)
			return core.Result{Cycles: 3, Verified: true}, nil
		},
	}
	if _, err := p.TrySubmit(task); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want shed, got %v", err)
	}
	close(block)

	fut, err := p.Submit(task)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := fut.Wait(context.Background()); err != nil || r.Cycles != 3 {
		t.Fatalf("post-shed run: %d/%v", r.Cycles, err)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
}

// TestServiceCoalescingChaos drives coalescing end to end through the
// service with fault injection armed: N concurrent submissions of one
// identical spec produce exactly one backend execution (the machine
// factory runs once), every waiter gets bit-identical cycles, and one
// waiter cancelling doesn't poison the rest.
func TestServiceCoalescingChaos(t *testing.T) {
	hold := make(chan struct{})
	var factoryCalls atomic.Int64
	s := NewService(Options{
		Pool: PoolOptions{Workers: 2, JobTimeout: time.Minute, Faults: chaosRegistry(t, 42)},
		Factory: func(name string) (core.Machine, error) {
			factoryCalls.Add(1)
			<-hold
			return machines.ByName(name)
		},
	})
	defer s.Close()

	spec := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}
	leader, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	const followers = 11
	ids := make([]string, followers)
	var wg sync.WaitGroup
	var submitErr atomic.Value
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := s.Submit(spec)
			if err != nil {
				submitErr.Store(err)
				return
			}
			ids[i] = job.ID
		}(i)
	}
	wg.Wait()
	if err, _ := submitErr.Load().(error); err != nil {
		t.Fatal(err)
	}

	// One waiter gives up before the execution is even released.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, werr := s.Wait(cancelled, ids[0]); !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", werr)
	}

	close(hold)
	want, err := s.Wait(context.Background(), leader.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want.Result == nil || !want.State.Terminal() {
		t.Fatalf("leader not terminal: %+v", want)
	}
	for _, id := range ids {
		job, err := s.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if job.Result == nil || job.Result.Cycles != want.Result.Cycles {
			t.Fatalf("waiter %s diverged: %+v vs %d cycles", id, job.Result, want.Result.Cycles)
		}
	}

	if n := factoryCalls.Load(); n != 1 {
		t.Fatalf("backend executions = %d, want exactly 1", n)
	}
	snap := s.Metrics().Snapshot()
	if snap.Coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", snap.Coalesced, followers)
	}
	if got := snap.Queued - snap.CacheHits; got != 1 {
		t.Fatalf("queued executions = %d, want 1", got)
	}
}
