package svc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/obs"
)

// smallWorkload returns a workload small enough to simulate in
// milliseconds, for service-level tests that run real machines.
func smallWorkload() core.Workload {
	return core.Workload{
		CornerTurn: cornerturn.Spec{Rows: 64, Cols: 64, BlockSize: 16},
		CSLC:       cslc.Spec{MainChannels: 1, AuxChannels: 1, Samples: 256, SubBands: 3, FFTSize: 64, Radix: fft.Radix4},
		Beam:       beamsteer.Spec{Elements: 64, Directions: 2, Dwells: 2, ShiftBits: 2, Rounding: 2},
	}
}

func okTask(cycles uint64) func(context.Context) (core.Result, error) {
	return func(context.Context) (core.Result, error) {
		return core.Result{Cycles: cycles, Verified: true}, nil
	}
}

// TestPoolConcurrentSubmitters hammers one pool from many goroutines;
// run under -race this is the subsystem's data-race check.
func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 8, JobTimeout: time.Minute})
	defer p.Close()
	if p.Workers() != 8 {
		t.Fatalf("workers = %d, want 8", p.Workers())
	}

	const submitters = 16
	const perSubmitter = 8
	var ran atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, submitters*perSubmitter)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				fut, err := p.Submit(Task{
					Label: fmt.Sprintf("s%d-%d", i, j),
					Run: func(context.Context) (core.Result, error) {
						ran.Add(1)
						return core.Result{Cycles: 7, Verified: true}, nil
					},
				})
				if err != nil {
					errs <- err
					continue
				}
				if _, err := fut.Wait(context.Background()); err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := ran.Load(); got != submitters*perSubmitter {
		t.Fatalf("ran %d tasks, want %d", got, submitters*perSubmitter)
	}
	snap := p.Metrics().Snapshot()
	if snap.Done != submitters*perSubmitter || snap.Failed != 0 || snap.Running != 0 {
		t.Fatalf("metrics after drain: %+v", snap)
	}
	if snap.CyclesServed != 7*submitters*perSubmitter {
		t.Fatalf("cycles served %d", snap.CyclesServed)
	}
}

func TestPoolTimeout(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 2, JobTimeout: 30 * time.Millisecond})
	defer p.Close()
	release := make(chan struct{})
	fut, err := p.Submit(Task{
		Label: "slow",
		Run: func(ctx context.Context) (core.Result, error) {
			<-release // longer than the deadline
			return core.Result{Verified: true}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := fut.Wait(context.Background())
	close(release)
	if !errors.Is(werr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", werr)
	}
	snap := p.Metrics().Snapshot()
	if snap.Timeouts != 1 || snap.Failed != 1 {
		t.Fatalf("timeout metrics: %+v", snap)
	}
	// The worker slot is free again: a fast job still completes.
	fut2, err := p.Submit(Task{Label: "fast", Run: okTask(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 2})
	defer p.Close()
	fut, err := p.Submit(Task{
		Label: "boom",
		Run: func(context.Context) (core.Result, error) {
			panic("simulated simulator bug")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := fut.Wait(context.Background())
	if werr == nil || !strings.Contains(werr.Error(), "panicked") {
		t.Fatalf("err = %v, want panic report", werr)
	}
	snap := p.Metrics().Snapshot()
	if snap.Panics != 1 || snap.Failed != 1 {
		t.Fatalf("panic metrics: %+v", snap)
	}
	// The pool survived: later tasks run normally.
	fut2, err := p.Submit(Task{Label: "after", Run: okTask(2)})
	if err != nil {
		t.Fatal(err)
	}
	if r, err := fut2.Wait(context.Background()); err != nil || r.Cycles != 2 {
		t.Fatalf("after panic: %v %v", r, err)
	}
}

func TestPoolMemoization(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 4})
	defer p.Close()
	var runs atomic.Int32
	task := Task{
		Label:   "memoized",
		MemoKey: "key-1",
		Run: func(context.Context) (core.Result, error) {
			runs.Add(1)
			return core.Result{Cycles: 42, Verified: true}, nil
		},
	}
	first, err := p.Submit(task)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := first.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Submit(task)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := second.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("task ran %d times, want 1", runs.Load())
	}
	if !second.FromCache() || first.FromCache() {
		t.Fatalf("cache flags: first=%v second=%v", first.FromCache(), second.FromCache())
	}
	if r1.Cycles != r2.Cycles {
		t.Fatalf("cycles differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
	if hr := p.MemoHitRate(); hr != 0.5 {
		t.Fatalf("memo hit rate %v, want 0.5", hr)
	}
}

func TestPoolClose(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1})
	fut, err := p.Submit(Task{Label: "pre-close", Run: okTask(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Submit(Task{Label: "post-close", Run: okTask(1)}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close: %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestJobSpecNormalizeAndHash(t *testing.T) {
	spec := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Workload == nil {
		t.Fatal("normalize did not fill the paper workload")
	}
	h1, err := norm.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// An explicit paper workload hashes identically to an omitted one.
	w := core.PaperWorkload()
	norm2, err := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := norm2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hashes differ: %s vs %s", h1, h2)
	}
	// A different kernel hashes differently.
	norm3, _ := JobSpec{Machine: "VIRAM", Kernel: core.CSLC}.Normalize()
	if h3, _ := norm3.Hash(); h3 == h1 {
		t.Fatal("different kernels, same hash")
	}

	for _, bad := range []JobSpec{
		{Machine: "Cray-1", Kernel: core.CornerTurn},
		{Machine: "VIRAM", Kernel: "sort"},
		{Machine: "VIRAM", Kernel: core.MatMul}, // extension kernel: not a study job
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("spec %+v validated", bad)
		}
	}
}

// TestServiceCacheHitDeterminism runs the same real simulation twice:
// the second submission must be served from cache with identical cycles.
func TestServiceCacheHitDeterminism(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 8, JobTimeout: time.Minute}})
	defer s.Close()
	w := smallWorkload()
	spec := JobSpec{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w}

	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done1, err := s.Wait(context.Background(), first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done1.State != Done || done1.Result == nil {
		t.Fatalf("first job: %+v", done1)
	}
	if done1.FromCache {
		t.Fatal("first run served from cache")
	}

	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done2, err := s.Wait(context.Background(), second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !done2.FromCache {
		t.Fatal("second run not served from cache")
	}
	if done2.Result == nil || done2.Result.Cycles != done1.Result.Cycles {
		t.Fatalf("cache broke determinism: %v vs %v", done1.Result, done2.Result)
	}
	if done1.Hash != done2.Hash {
		t.Fatalf("same spec, different hashes: %s vs %s", done1.Hash, done2.Hash)
	}
	snap := s.Metrics().Snapshot()
	if snap.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1: %+v", snap.CacheHits, snap)
	}
}

func TestServiceConcurrentSubmitters(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 8, JobTimeout: time.Minute}})
	defer s.Close()
	w := smallWorkload()
	specs := []JobSpec{
		{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w},
		{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "Imagine", Kernel: core.BeamSteering, Workload: &w},
		{Machine: "Raw", Kernel: core.CornerTurn, Workload: &w},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(specs)*4)
	for g := 0; g < 4; g++ {
		for _, spec := range specs {
			wg.Add(1)
			go func(spec JobSpec) {
				defer wg.Done()
				job, err := s.Submit(spec)
				if err != nil {
					errs <- err
					return
				}
				final, err := s.Wait(context.Background(), job.ID)
				if err != nil {
					errs <- err
					return
				}
				if final.State != Done {
					errs <- fmt.Errorf("job %s: state %s (%s)", final.ID, final.State, final.Error)
				}
			}(spec)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(s.Jobs()); got != len(specs)*4 {
		t.Fatalf("%d jobs tracked, want %d", got, len(specs)*4)
	}
}

func TestMetricsQuantiles(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 100; i++ {
		m.jobFinished(obs.Labels{}, false, true, false, false, time.Duration(i)*time.Millisecond)
	}
	snap := m.Snapshot()
	if snap.Samples != 100 {
		t.Fatalf("samples = %d", snap.Samples)
	}
	if snap.P50Seconds < 0.045 || snap.P50Seconds > 0.055 {
		t.Fatalf("p50 = %v", snap.P50Seconds)
	}
	if snap.P99Seconds < 0.095 || snap.P99Seconds > 0.100 {
		t.Fatalf("p99 = %v", snap.P99Seconds)
	}
	var sb strings.Builder
	if err := snap.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"simserved_jobs_done_total 100",
		"simserved_job_latency_p50_seconds",
		"simserved_cache_hit_rate",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics text missing %q:\n%s", want, sb.String())
		}
	}
}
