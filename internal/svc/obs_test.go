package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/obs"
)

// TestQuantileEdgeCases locks down the nearest-rank quantile on the
// degenerate windows where an off-by-one is easiest: empty, one sample,
// two samples, and exact-boundary q values.
func TestQuantileEdgeCases(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"empty", nil, 0.5, 0},
		{"n=1 q=0", []time.Duration{ms(7)}, 0, ms(7)},
		{"n=1 q=0.5", []time.Duration{ms(7)}, 0.5, ms(7)},
		{"n=1 q=1", []time.Duration{ms(7)}, 1, ms(7)},
		{"n=2 q=0", []time.Duration{ms(1), ms(9)}, 0, ms(1)},
		{"n=2 q=0.49", []time.Duration{ms(1), ms(9)}, 0.49, ms(1)},
		{"n=2 q=0.5", []time.Duration{ms(1), ms(9)}, 0.5, ms(9)}, // rounds up
		{"n=2 q=1", []time.Duration{ms(1), ms(9)}, 1, ms(9)},
		{"n=3 q=0.5", []time.Duration{ms(1), ms(5), ms(9)}, 0.5, ms(5)},
		{"n=4 q=1 clamps", []time.Duration{ms(1), ms(2), ms(3), ms(4)}, 1, ms(4)},
		{"q>1 clamps", []time.Duration{ms(1), ms(2)}, 2, ms(2)},
		{"q<0 clamps", []time.Duration{ms(1), ms(2)}, -1, ms(1)},
	}
	for _, tc := range cases {
		if got := quantile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: quantile(%v, %v) = %v, want %v", tc.name, tc.sorted, tc.q, got, tc.want)
		}
	}
}

// TestExecWindowExcludesCacheHits is the Retry-After regression test:
// a flood of µs-scale cache-hit completions must not collapse the
// executed-job p50 that prices the drain estimate, even though it does
// (correctly) dominate the all-jobs window.
func TestExecWindowExcludesCacheHits(t *testing.T) {
	m := NewMetrics()
	// 10 real executions at 2s each...
	for i := 0; i < 10; i++ {
		m.jobFinished(obs.Labels{}, true, true, false, false, 2*time.Second)
	}
	// ...drowned by 500 cache hits finishing in 5µs.
	for i := 0; i < 500; i++ {
		m.jobFinished(obs.Labels{}, false, true, false, false, 5*time.Microsecond)
	}
	snap := m.Snapshot()
	if snap.P50Seconds > 0.001 {
		t.Fatalf("all-jobs p50 = %v, expected µs-scale (cache hits dominate)", snap.P50Seconds)
	}
	if snap.ExecP50Seconds < 1.9 || snap.ExecP50Seconds > 2.1 {
		t.Fatalf("exec p50 = %v, want ~2s (cache hits must not collapse it)", snap.ExecP50Seconds)
	}
	if snap.ExecSamples != 10 || snap.Samples != 510 {
		t.Fatalf("samples: exec=%d all=%d", snap.ExecSamples, snap.Samples)
	}
	m.invalidateExecQuantiles()
	if p50 := m.ExecP50(); p50 < 1900*time.Millisecond || p50 > 2100*time.Millisecond {
		t.Fatalf("ExecP50() = %v, want ~2s", p50)
	}
}

// TestRetryAfterSurvivesCacheHitFlood drives the estimate end to end
// through Service.retryAfter: with slow executions on record, the
// backoff a shed client is told must reflect execution latency, not the
// cache-hit noise.
func TestRetryAfterSurvivesCacheHitFlood(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 1, JobTimeout: time.Minute}})
	defer s.Close()
	m := s.Metrics()
	for i := 0; i < 8; i++ {
		m.jobFinished(obs.Labels{}, true, true, false, false, 3*time.Second)
	}
	for i := 0; i < 400; i++ {
		m.jobFinished(obs.Labels{}, false, true, false, false, 2*time.Microsecond)
	}
	m.invalidateExecQuantiles()
	// With an empty queue the floor is 1s either way; what must hold is
	// the p50 behind the estimate.
	if ra := s.retryAfter(PriorityInteractive); ra < time.Second {
		t.Fatalf("retryAfter = %v, floor is 1s", ra)
	}
	if p50 := m.ExecP50(); p50 < 2900*time.Millisecond {
		t.Fatalf("drain-estimate p50 = %v, collapsed by cache hits", p50)
	}
}

// TestExecP50Cached proves the shed path serves a cached value inside
// the TTL (no per-request window sort) and picks up new samples after
// an explicit invalidation.
func TestExecP50Cached(t *testing.T) {
	m := NewMetrics()
	m.jobFinished(obs.Labels{}, true, true, false, false, time.Second)
	first := m.ExecP50()
	if first != time.Second {
		t.Fatalf("first ExecP50 = %v", first)
	}
	// New, much slower samples land; within the TTL the cached value
	// still answers.
	for i := 0; i < 50; i++ {
		m.jobFinished(obs.Labels{}, true, true, false, false, 30*time.Second)
	}
	if got := m.ExecP50(); got != first {
		t.Fatalf("ExecP50 inside TTL = %v, want cached %v", got, first)
	}
	m.invalidateExecQuantiles()
	if got := m.ExecP50(); got != 30*time.Second {
		t.Fatalf("ExecP50 after invalidation = %v, want 30s", got)
	}
}

// TestMetricsConcurrentSnapshot hammers every hot-path recorder while
// Snapshot, WriteText, WritePrometheus, and ExecP50 run concurrently —
// the -race acceptance check for the atomic counter conversion.
func TestMetricsConcurrentSnapshot(t *testing.T) {
	m := NewMetrics()
	cell := obs.Labels{Machine: "VIRAM", Kernel: "corner-turn"}
	const writers, perWriter = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				m.jobQueued()
				m.jobStarted()
				m.cacheMiss(cell)
				m.jobFinished(cell, true, true, false, false, time.Duration(i)*time.Microsecond)
				m.cacheHit(cell, 100)
				m.jobCoalesced(cell)
				m.jobRetried(cell, 1)
				m.cyclesRun(10)
				m.loadShed(PriorityInteractive)
			}
		}()
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 100; i++ {
			snap := m.Snapshot()
			if err := snap.WriteText(io.Discard); err != nil {
				t.Error(err)
				return
			}
			if err := m.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			_ = m.ExecP50()
			m.invalidateExecQuantiles()
		}
	}()
	wg.Wait()
	<-readerDone

	snap := m.Snapshot()
	want := uint64(writers * perWriter)
	if snap.Done != want || snap.Queued != want || snap.CacheHits != want ||
		snap.Coalesced != want || snap.Retries != want || snap.Shed != want {
		t.Fatalf("lost updates: %+v (want %d everywhere)", snap, want)
	}
	if snap.Running != 0 {
		t.Fatalf("running gauge = %d after all jobs finished", snap.Running)
	}
}

// TestMetricsWritePrometheus checks the full exposition: unlabeled
// snapshot totals with HELP/TYPE headers plus the per-cell labeled
// series and latency histogram.
func TestMetricsWritePrometheus(t *testing.T) {
	m := NewMetrics()
	viramCT := obs.Labels{Machine: "VIRAM", Kernel: "corner-turn"}
	imagineCS := obs.Labels{Machine: "Imagine", Kernel: "cslc"}
	m.jobFinished(viramCT, true, true, false, false, 120*time.Millisecond)
	m.jobFinished(viramCT, true, true, false, false, 80*time.Millisecond)
	m.jobFinished(imagineCS, true, false, false, false, 10*time.Millisecond)
	m.cacheHit(viramCT, 12345)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP simserved_jobs_done_total Jobs finished successfully.\n# TYPE simserved_jobs_done_total counter\nsimserved_jobs_done_total 2",
		"simserved_jobs_failed_total 1",
		"# TYPE simserved_cell_jobs_done_total counter",
		`simserved_cell_jobs_done_total{machine="VIRAM",kernel="corner-turn"} 2`,
		`simserved_cell_jobs_failed_total{machine="Imagine",kernel="cslc"} 1`,
		`simserved_cell_cache_hits_total{machine="VIRAM",kernel="corner-turn"} 1`,
		"# TYPE simserved_cell_exec_latency_seconds histogram",
		`simserved_cell_exec_latency_seconds_bucket{machine="VIRAM",kernel="corner-turn",le="0.1"} 1`,
		`simserved_cell_exec_latency_seconds_bucket{machine="VIRAM",kernel="corner-turn",le="+Inf"} 2`,
		`simserved_cell_exec_latency_seconds_count{machine="VIRAM",kernel="corner-turn"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

// TestHTTPMetricsFormats exercises the format switch on GET /metrics:
// flat text (default), Prometheus exposition, JSON, and a 400 on junk.
func TestHTTPMetricsFormats(t *testing.T) {
	s, srv := newTestServer(t)
	w := smallWorkload()
	spec := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}

	get := func(format string) (*http.Response, string) {
		t.Helper()
		url := srv.URL + "/metrics"
		if format != "" {
			url += "?format=" + format
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	if _, body := get(""); !strings.Contains(body, "simserved_jobs_done_total 1") {
		t.Fatalf("flat text:\n%s", body)
	}

	resp, body := get("prometheus")
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prometheus Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE simserved_jobs_done_total counter",
		`simserved_cell_jobs_done_total{machine="VIRAM",kernel="corner-turn"} 1`,
		`simserved_cell_exec_latency_seconds_bucket{machine="VIRAM",kernel="corner-turn",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, body)
		}
	}
	// Scrape-parseability: every line is a comment or `sample value`.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if len(strings.Split(line, " ")) != 2 {
			t.Errorf("unparseable sample line %q", line)
		}
	}

	resp, body = get("json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("json format: %v\n%s", err, body)
	}
	if snap.Done != 1 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("json snapshot: %+v, ct=%q", snap, resp.Header.Get("Content-Type"))
	}

	if resp, _ := get("xml"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d", resp.StatusCode)
	}
}

// TestHTTPRequestIDEchoed checks the middleware end to end on a real
// route: a client-supplied X-Request-Id comes back verbatim, and an
// absent one is generated.
func TestHTTPRequestIDEchoed(t *testing.T) {
	_, srv := newTestServer(t)
	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "trace-me-42" {
		t.Fatalf("echoed ID = %q", got)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got == "" {
		t.Fatal("no generated request ID")
	}
}

// eventNames flattens a trace for assertions.
func eventNames(events []obs.Event) []string {
	names := make([]string, len(events))
	for i, e := range events {
		names[i] = e.Name
	}
	return names
}

func wantEvents(t *testing.T, got []obs.Event, want ...string) {
	t.Helper()
	names := eventNames(got)
	if len(names) != len(want) {
		t.Fatalf("trace = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("trace = %v, want %v", names, want)
		}
	}
}

// TestHTTPJobTrace covers the live-trace endpoint: an executed job
// shows the full accepted→queued→started→done span list in order, a
// cache-hit job shows done without started, and unknown IDs 404.
func TestHTTPJobTrace(t *testing.T) {
	s, srv := newTestServer(t)
	w := smallWorkload()
	spec := JobSpec{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w}
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}

	var tr TraceResponse
	resp := getJSON(t, srv.URL+"/v1/jobs/"+job.ID+"/trace", &tr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if tr.ID != job.ID || tr.State != Done {
		t.Fatalf("trace response: %+v", tr)
	}
	wantEvents(t, tr.Events, obs.EventAccepted, obs.EventQueued, obs.EventStarted, obs.EventDone)
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time.Before(tr.Events[i-1].Time) {
			t.Fatalf("events out of order: %+v", tr.Events)
		}
	}

	// A second submission of the same spec is a memo hit: its trace ends
	// in done with the cache-hit note and never shows started.
	hit, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), hit.ID); err != nil {
		t.Fatal(err)
	}
	getJSON(t, srv.URL+"/v1/jobs/"+hit.ID+"/trace", &tr)
	wantEvents(t, tr.Events, obs.EventAccepted, obs.EventQueued, obs.EventDone)
	if last := tr.Events[len(tr.Events)-1]; last.Note != "cache hit" {
		t.Fatalf("cache-hit note = %q", last.Note)
	}

	resp = getJSON(t, srv.URL+"/v1/jobs/nope/trace", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: status %d", resp.StatusCode)
	}
}

// TestTraceSurvivesCrashReplay reopens a crashed durable service and
// asserts a terminal job's trace is reconstructed from the raw journal
// log: the replayed events mirror the journaled lifecycle transitions.
func TestTraceSurvivesCrashReplay(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, durableOpts())
	w := smallWorkload()
	job, err := s.Submit(JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	crash(s)

	s2 := openDurable(t, dir, durableOpts())
	defer s2.Close()
	events, state, ok := s2.JobTrace(job.ID)
	if !ok || state != Done {
		t.Fatalf("replayed trace: ok=%v state=%v", ok, state)
	}
	wantEvents(t, events, obs.EventAccepted, obs.EventQueued, obs.EventStarted, obs.EventDone)

	// And over HTTP, same as a live job.
	srv := httptest.NewServer(s2.Handler())
	defer srv.Close()
	var tr TraceResponse
	resp := getJSON(t, srv.URL+"/v1/jobs/"+job.ID+"/trace", &tr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	wantEvents(t, tr.Events, obs.EventAccepted, obs.EventQueued, obs.EventStarted, obs.EventDone)
}

// TestTraceSurvivesSnapshotReplay drains a durable service gracefully
// (snapshot + compact) and reopens it: traces come back through the
// snapshot path rather than raw-log replay.
func TestTraceSurvivesSnapshotReplay(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, durableOpts())
	w := smallWorkload()
	job, err := s.Submit(JobSpec{Machine: "Imagine", Kernel: core.BeamSteering, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	s.Close() // graceful: snapshots and compacts

	s2 := openDurable(t, dir, durableOpts())
	defer s2.Close()
	events, state, ok := s2.JobTrace(job.ID)
	if !ok || state != Done {
		t.Fatalf("snapshot-replayed trace: ok=%v state=%v", ok, state)
	}
	wantEvents(t, events, obs.EventAccepted, obs.EventQueued, obs.EventStarted, obs.EventDone)
}
