package svc

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/faults"
	"sigkern/internal/machines"
	"sigkern/internal/resilience"
)

// chaosRegistry arms 20% transient errors plus latency spikes at the
// execute fault point, seeded for reproducibility.
func chaosRegistry(t *testing.T, seed uint64) *faults.Registry {
	t.Helper()
	reg := faults.New(seed)
	for _, f := range []faults.Fault{
		{Point: FaultPointExecute, Kind: faults.Transient, Probability: 0.2},
		{Point: FaultPointExecute, Kind: faults.Latency, Probability: 0.1, Delay: time.Millisecond},
	} {
		if err := reg.Arm(f); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// studyCycles flattens a study into machine/kernel -> cycles.
func studyCycles(sr *core.StudyResults) map[string]uint64 {
	out := make(map[string]uint64)
	for _, name := range sr.MachineNames() {
		for _, k := range core.Kernels() {
			if r, ok := sr.Result(name, k); ok {
				out[name+"/"+string(k)] = r.Cycles
			}
		}
	}
	return out
}

// TestChaosStudyBitIdentical is the acceptance check for the resilience
// layer: with fault injection at a 20% transient error rate (fixed
// seed), a full study completes via retries and every cycle count is
// bit-identical to a fault-free run.
func TestChaosStudyBitIdentical(t *testing.T) {
	w := smallWorkload()
	names := []string{"PPC", "AltiVec", "VIRAM", "Imagine", "Raw"}

	clean := NewPool(PoolOptions{Workers: 4, JobTimeout: time.Minute, Faults: faults.New(1)})
	defer clean.Close()
	want, err := RunStudyParallel(context.Background(), clean, nil, names, w)
	if err != nil {
		t.Fatal(err)
	}

	reg := chaosRegistry(t, 42)
	// Generous attempt budget: at 20% injection, 8 attempts make a
	// whole-job failure a ~1e-6 event, so the test cannot flake on an
	// unlucky draw interleaving.
	chaotic := NewPool(PoolOptions{
		Workers:    4,
		JobTimeout: time.Minute,
		Retry:      resilience.RetryPolicy{MaxAttempts: 8, BaseDelay: 100 * time.Microsecond},
		Faults:     reg,
	})
	defer chaotic.Close()
	got, err := RunStudyParallel(context.Background(), chaotic, nil, names, w)
	if err != nil {
		t.Fatalf("chaotic study failed (retries should absorb 20%% transients): %v", err)
	}

	if !reflect.DeepEqual(studyCycles(want), studyCycles(got)) {
		t.Fatalf("cycle counts differ under chaos:\nclean:   %v\nchaotic: %v",
			studyCycles(want), studyCycles(got))
	}
	if _, fired := reg.Counter(FaultPointExecute, faults.Transient); fired == 0 {
		t.Fatal("chaos run injected no transient faults; the test proved nothing")
	}
	if snap := chaotic.Metrics().Snapshot(); snap.Retries == 0 {
		t.Fatalf("no retries recorded despite injected faults: %+v", snap)
	}
}

func TestPoolRetriesTransientTaskErrors(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, JobTimeout: time.Minute, Faults: faults.New(1)})
	defer p.Close()
	var calls atomic.Int32
	fut, err := p.Submit(Task{
		Label: "flaky",
		Run: func(context.Context) (core.Result, error) {
			if calls.Add(1) < 3 {
				return core.Result{}, resilience.MarkTransient(errors.New("transient wobble"))
			}
			return core.Result{Cycles: 11, Verified: true}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, werr := fut.Wait(context.Background())
	if werr != nil || r.Cycles != 11 {
		t.Fatalf("result %v err %v", r, werr)
	}
	if calls.Load() != 3 {
		t.Fatalf("ran %d times, want 3", calls.Load())
	}
	if snap := p.Metrics().Snapshot(); snap.Retries != 2 || snap.Done != 1 || snap.Failed != 0 {
		t.Fatalf("metrics: %+v", snap)
	}
}

func TestPoolDoesNotRetryPermanentErrors(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, JobTimeout: time.Minute, Faults: faults.New(1)})
	defer p.Close()
	var calls atomic.Int32
	perm := errors.New("invalid configuration")
	fut, err := p.Submit(Task{
		Label: "broken",
		Run: func(context.Context) (core.Result, error) {
			calls.Add(1)
			return core.Result{}, perm
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := fut.Wait(context.Background()); !errors.Is(werr, perm) {
		t.Fatalf("err = %v", werr)
	}
	if calls.Load() != 1 {
		t.Fatalf("permanent error retried %d times", calls.Load())
	}
}

// TestDeterminismGuardOnReexecution proves a result disagreeing with
// the memoized cycle count for its spec hash is a hard error.
func TestDeterminismGuardOnReexecution(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, JobTimeout: time.Minute, Faults: faults.New(1)})
	defer p.Close()
	seed, err := p.Submit(Task{Label: "seed", MemoKey: "k3", Run: okTask(500)})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := seed.Wait(context.Background()); werr != nil {
		t.Fatal(werr)
	}
	if p.memo == nil {
		t.Fatal("memo disabled")
	}
	// Corrupt the stored entry, then force a re-execution of the same
	// spec (the Submit fast path would serve the hit, so drive the
	// worker path directly): the fresh run's 500 cycles disagree with
	// the memoized 501, and the guard must refuse to serve either.
	p.memo.Put("k3", core.Result{Cycles: 501, Verified: true})
	fut := &Future{done: make(chan struct{}), started: make(chan struct{})}
	p.execute(poolItem{task: Task{Label: "reexec", MemoKey: "k3", Run: okTask(500)}, fut: fut}, newWorkerState())
	if _, werr := fut.Wait(context.Background()); !errors.Is(werr, ErrDeterminism) {
		t.Fatalf("err = %v, want ErrDeterminism", werr)
	}
	if snap := p.Metrics().Snapshot(); snap.Determinism == 0 {
		t.Fatalf("guard trip not metered: %+v", snap)
	}
}

// TestDeterminismGuardOnCorruptedMemoRead proves a damaged cache read
// (injected memo corruption) is served as a hard error, never as a
// silently wrong cycle count.
func TestDeterminismGuardOnCorruptedMemoRead(t *testing.T) {
	reg := faults.New(7)
	if err := reg.Arm(faults.Fault{Point: FaultPointMemoGet, Kind: faults.Corrupt, Probability: 1}); err != nil {
		t.Fatal(err)
	}
	p := NewPool(PoolOptions{Workers: 1, JobTimeout: time.Minute, Faults: reg})
	defer p.Close()

	seed, err := p.Submit(Task{Label: "seed", MemoKey: "k", Run: okTask(42)})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := seed.Wait(context.Background()); werr != nil {
		t.Fatal(werr)
	}
	hit, err := p.Submit(Task{Label: "hit", MemoKey: "k", Run: okTask(42)})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := hit.Wait(context.Background()); !errors.Is(werr, ErrDeterminism) {
		t.Fatalf("corrupted memo read served: err = %v, want ErrDeterminism", werr)
	}
	if snap := p.Metrics().Snapshot(); snap.Determinism != 1 {
		t.Fatalf("metrics: %+v", snap)
	}
}

func TestTrySubmitShedsWhenSaturated(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 1, JobTimeout: time.Minute, Faults: faults.New(1)})
	defer p.Close()
	release := make(chan struct{})
	slow := func(context.Context) (core.Result, error) {
		<-release
		return core.Result{Cycles: 1, Verified: true}, nil
	}
	// One running, one queued: the pool is then saturated. Wait for the
	// worker to pick the first task up before filling the queue slot.
	first, err := p.TrySubmit(Task{Label: "slow0", Run: slow})
	if err != nil {
		t.Fatal(err)
	}
	<-first.started
	second, err := p.TrySubmit(Task{Label: "slow1", Run: slow})
	if err != nil {
		t.Fatalf("queue-slot submit: %v", err)
	}
	futs := []*Future{first, second}
	if _, err := p.TrySubmit(Task{Label: "shed-me", Run: slow}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated TrySubmit: %v, want ErrOverloaded", err)
	}
	if snap := p.Metrics().Snapshot(); snap.Shed != 1 {
		t.Fatalf("shed not metered: %+v", snap)
	}
	close(release)
	for _, f := range futs {
		if _, err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServiceBreakerOpensAndRecovers(t *testing.T) {
	boom := errors.New("backend down")
	var failing atomic.Bool
	failing.Store(true)
	factory := func(name string) (core.Machine, error) {
		if failing.Load() {
			return nil, resilience.MarkTransient(boom)
		}
		return nil, boom // unreachable in this test once flipped
	}
	clk := time.Unix(0, 0)
	var now atomic.Pointer[time.Time]
	now.Store(&clk)
	s := NewService(Options{
		Pool:    PoolOptions{Workers: 2, JobTimeout: time.Second, Retry: resilience.RetryPolicy{MaxAttempts: 1}, Faults: faults.New(1)},
		Factory: factory,
		Breaker: resilience.BreakerConfig{
			FailureThreshold: 2,
			OpenInterval:     time.Hour,
			Now:              func() time.Time { return *now.Load() },
		},
	})
	defer s.Close()
	w := smallWorkload()
	spec := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}

	// Two failures trip the VIRAM breaker.
	for i := 0; i < 2; i++ {
		job, err := s.Admit(spec)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		final, err := s.Wait(context.Background(), job.ID)
		if err != nil || final.State != Failed {
			t.Fatalf("job %d: %+v err %v", i, final, err)
		}
	}
	if st := s.Breakers().Get("VIRAM").State(); st != resilience.Open {
		t.Fatalf("VIRAM breaker %s, want open", st)
	}
	if _, err := s.Admit(spec); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("open breaker admitted: %v", err)
	}
	// Other machines are unaffected.
	if _, err := s.Admit(JobSpec{Machine: "Raw", Kernel: core.CornerTurn, Workload: &w}); err != nil {
		t.Fatalf("Raw admission: %v", err)
	}
	// Health reports the open breaker and degrades.
	h := s.Healthz()
	if !h.Degraded || h.Breakers["VIRAM"] != resilience.Open {
		t.Fatalf("health: %+v", h)
	}
	// After the open interval, the half-open breaker admits a probe.
	failing.Store(false)
	later := now.Load().Add(2 * time.Hour)
	now.Store(&later)
	if _, err := s.Admit(spec); err != nil {
		t.Fatalf("probe not admitted after interval: %v", err)
	}
}

// breakerTestService builds a service whose factory fails while failing
// is set and whose breaker trips on one failure, with a manually
// advanced clock.
func breakerTestService(pool PoolOptions, failing *atomic.Bool, now *atomic.Pointer[time.Time]) *Service {
	boom := errors.New("backend down")
	return NewService(Options{
		Pool: pool,
		Factory: func(name string) (core.Machine, error) {
			if failing.Load() {
				return nil, boom
			}
			return machines.ByName(name)
		},
		Breaker: resilience.BreakerConfig{
			FailureThreshold: 1,
			OpenInterval:     time.Hour,
			Now:              func() time.Time { return *now.Load() },
		},
	})
}

// TestBreakerShedProbeDoesNotWedge is the probe-slot-leak regression
// test: a job admitted while the breaker is half-open but shed by a
// saturated queue never reaches the backend, so its probe slot must be
// released — otherwise the breaker rejects all traffic for that
// machine until process restart.
func TestBreakerShedProbeDoesNotWedge(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	clk := time.Unix(0, 0)
	var now atomic.Pointer[time.Time]
	now.Store(&clk)
	s := breakerTestService(PoolOptions{
		Workers: 1, QueueDepth: 1, JobTimeout: time.Minute,
		Retry:  resilience.RetryPolicy{MaxAttempts: 1},
		Faults: faults.New(1),
	}, &failing, &now)
	defer s.Close()
	w := smallWorkload()
	spec := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}

	// One failure trips the breaker open.
	job, err := s.Admit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if final, werr := s.Wait(context.Background(), job.ID); werr != nil || final.State != Failed {
		t.Fatalf("trip job: %+v err %v", final, werr)
	}
	if st := s.Breakers().Get("VIRAM").State(); st != resilience.Open {
		t.Fatalf("breaker %s, want open", st)
	}

	// Saturate the pool: one job running, one holding the queue slot.
	release := make(chan struct{})
	slow := func(context.Context) (core.Result, error) {
		<-release
		return core.Result{Cycles: 1, Verified: true}, nil
	}
	first, err := s.Pool().TrySubmit(Task{Label: "slow0", Run: slow})
	if err != nil {
		t.Fatal(err)
	}
	<-first.started
	second, err := s.Pool().TrySubmit(Task{Label: "slow1", Run: slow})
	if err != nil {
		t.Fatal(err)
	}

	// Past the open interval the breaker admits one probe — which the
	// saturated queue sheds.
	failing.Store(false)
	later := now.Load().Add(2 * time.Hour)
	now.Store(&later)
	if _, err := s.Admit(spec); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated admit: %v, want ErrOverloaded", err)
	}

	close(release)
	for _, f := range []*Future{first, second} {
		if _, err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// The shed must have released the probe slot: the next admission is
	// the real probe, not an ErrBreakerOpen from a leaked slot.
	job, err = s.Admit(spec)
	if err != nil {
		t.Fatalf("probe after shed rejected: %v", err)
	}
	if final, werr := s.Wait(context.Background(), job.ID); werr != nil || final.State != Done {
		t.Fatalf("probe job: %+v err %v", final, werr)
	}
	if st := s.Breakers().Get("VIRAM").State(); st != resilience.Closed {
		t.Fatalf("breaker %s after good probe, want closed", st)
	}
}

// TestBreakerCacheHitProbeDoesNotWedge: a half-open probe answered from
// the memo table never exercised the backend, so it must release its
// probe slot without deciding the circuit — not reclose it on no
// evidence, and not leak the slot.
func TestBreakerCacheHitProbeDoesNotWedge(t *testing.T) {
	var failing atomic.Bool
	clk := time.Unix(0, 0)
	var now atomic.Pointer[time.Time]
	now.Store(&clk)
	s := breakerTestService(PoolOptions{
		Workers: 2, JobTimeout: time.Minute,
		Retry:  resilience.RetryPolicy{MaxAttempts: 1},
		Faults: faults.New(1),
	}, &failing, &now)
	defer s.Close()
	w := smallWorkload()
	warm := JobSpec{Machine: "VIRAM", Kernel: core.BeamSteering, Workload: &w}
	fresh := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}

	// Warm the memo with a healthy run (blocking Submit skips the breaker).
	job, err := s.Submit(warm)
	if err != nil {
		t.Fatal(err)
	}
	if final, werr := s.Wait(context.Background(), job.ID); werr != nil || final.State != Done {
		t.Fatalf("warm job: %+v err %v", final, werr)
	}

	// Trip the breaker with a failing run of a non-memoized spec.
	failing.Store(true)
	job, err = s.Admit(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if final, werr := s.Wait(context.Background(), job.ID); werr != nil || final.State != Failed {
		t.Fatalf("trip job: %+v err %v", final, werr)
	}
	if st := s.Breakers().Get("VIRAM").State(); st != resilience.Open {
		t.Fatalf("breaker %s, want open", st)
	}
	failing.Store(false)
	later := now.Load().Add(2 * time.Hour)
	now.Store(&later)

	// The probe is answered from the memo: served fine, but the circuit
	// stays half-open because the backend was never exercised.
	job, err = s.Admit(warm)
	if err != nil {
		t.Fatalf("cache-hit probe rejected: %v", err)
	}
	final, werr := s.Wait(context.Background(), job.ID)
	if werr != nil || final.State != Done || !final.FromCache {
		t.Fatalf("cache-hit probe: %+v err %v", final, werr)
	}
	if st := s.Breakers().Get("VIRAM").State(); st != resilience.HalfOpen {
		t.Fatalf("breaker %s after cache-hit probe, want half-open", st)
	}

	// The slot came back: a real probe is admitted and recloses.
	job, err = s.Admit(fresh)
	if err != nil {
		t.Fatalf("probe after cache hit rejected: %v", err)
	}
	if final, werr := s.Wait(context.Background(), job.ID); werr != nil || final.State != Done {
		t.Fatalf("real probe: %+v err %v", final, werr)
	}
	if st := s.Breakers().Get("VIRAM").State(); st != resilience.Closed {
		t.Fatalf("breaker %s after good probe, want closed", st)
	}
}

// TestPoolCloseReleasesGoroutines proves shutdown leaks nothing: every
// future resolves, a post-Close Submit fails fast, and the worker
// goroutines exit.
func TestPoolCloseReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(PoolOptions{Workers: 4, QueueDepth: 8, JobTimeout: time.Minute, Faults: faults.New(1)})
	var futs []*Future
	for i := 0; i < 8; i++ {
		fut, err := p.Submit(Task{Label: fmt.Sprintf("t%d", i), Run: okTask(uint64(i + 1))})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	p.Close()
	if _, err := p.Submit(Task{Label: "post-close", Run: okTask(1)}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close: %v, want ErrPoolClosed", err)
	}
	// Every future resolves — completed, or failed with pool-closed for
	// tasks still queued at Close. None may hang.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, f := range futs {
		if _, err := f.Wait(ctx); err != nil && !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("future after close: %v", err)
		}
	}
	// The workers (and any abandoned task goroutines) exit; poll because
	// goroutine teardown is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before the pool", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFutureWaitRacesPoolShutdown hammers Wait against a concurrent
// Close; under -race this is the shutdown path's data-race check. Every
// Wait must return — with a result or ErrPoolClosed, never a hang.
func TestFutureWaitRacesPoolShutdown(t *testing.T) {
	for round := 0; round < 25; round++ {
		p := NewPool(PoolOptions{Workers: 2, QueueDepth: 2, JobTimeout: time.Minute, Faults: faults.New(1)})
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			fut, err := p.TrySubmit(Task{Label: fmt.Sprintf("r%d-t%d", round, i), Run: okTask(uint64(i + 1))})
			if err != nil {
				if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrPoolClosed) {
					t.Fatalf("submit: %v", err)
				}
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := fut.Wait(context.Background()); err != nil && !errors.Is(err, ErrPoolClosed) {
					t.Errorf("wait during shutdown: %v", err)
				}
			}()
		}
		p.Close()
		wg.Wait()
	}
}

func TestServiceWaitDistinguishesEvictedJobs(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 2, JobTimeout: time.Minute, Faults: faults.New(1)}, MaxJobs: 2})
	defer s.Close()
	w := smallWorkload()
	var ids []string
	// Submit three distinct terminal jobs; MaxJobs 2 evicts the oldest.
	for _, spec := range []JobSpec{
		{Machine: "PPC", Kernel: core.BeamSteering, Workload: &w},
		{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w},
	} {
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), job.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	job, err := s.Submit(JobSpec{Machine: "VIRAM", Kernel: core.BeamSteering, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	// The first job should now be evicted.
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("oldest job still tracked past MaxJobs")
	}
	_, werr := s.Wait(context.Background(), ids[0])
	if !errors.Is(werr, ErrJobEvicted) {
		t.Fatalf("evicted job Wait: %v, want ErrJobEvicted", werr)
	}
	// A never-issued ID is still a plain unknown-job error.
	_, werr = s.Wait(context.Background(), "j999999-deadbeef")
	if werr == nil || errors.Is(werr, ErrJobEvicted) {
		t.Fatalf("unknown job Wait: %v", werr)
	}
}
