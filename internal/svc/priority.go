package svc

import "fmt"

// Priority is a job's admission class. Interactive work — a user
// waiting on a response — drains first and sheds last; batch work
// (sweeps, studies) fills the spare capacity and is the first thing
// refused when the service saturates.
type Priority string

// The two admission classes of POST /v1/jobs?priority=.
const (
	PriorityInteractive Priority = "interactive"
	PriorityBatch       Priority = "batch"
)

// ParsePriority maps the ?priority= query value onto a Priority. Empty
// means interactive, the pre-priority behavior: an unannotated client
// is assumed to be a user waiting.
func ParsePriority(v string) (Priority, error) {
	switch Priority(v) {
	case "", PriorityInteractive:
		return PriorityInteractive, nil
	case PriorityBatch:
		return PriorityBatch, nil
	}
	return "", fmt.Errorf("svc: unknown priority %q (want %q or %q)", v, PriorityBatch, PriorityInteractive)
}
