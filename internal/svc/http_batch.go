package svc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sigkern/internal/resilience"
)

// maxBatchBodyBytes bounds POST /v1/batch bodies — generous enough for
// a full MaxBatchCells NDJSON batch with explicit workloads, small
// enough that a runaway client cannot buffer the process out of memory.
// Oversized bodies are 413, like oversized cell counts.
const maxBatchBodyBytes = 16 << 20

// ndjsonContentType marks newline-delimited JSON streams: the batch
// request body (one JobSpec per line) and the batch response (one
// completed cell per line, in completion order).
const ndjsonContentType = "application/x-ndjson"

// batchLine is one NDJSON request line: a JobSpec plus an optional
// explicit index echoed back in the cell's result line. Clients that
// omit it get the 0-based line position; the cluster gateway sets it to
// preserve a client's numbering while splitting one batch across
// shards.
type batchLine struct {
	JobSpec
	Index *int `json:"index,omitempty"`
}

// BatchSummary is the final NDJSON line of a batch response, after
// every cell line.
type BatchSummary struct {
	Done      bool `json:"done"`
	Cells     int  `json:"cells"`
	Failed    int  `json:"failed"`
	FromCache int  `json:"from_cache"`
}

// handleBatch serves POST /v1/batch: the whole group is parsed and
// admitted as one unit, then results stream back as NDJSON in
// completion order, each line a job snapshot tagged with its cell
// index. See Handler for the wire contract.
func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	prParam := r.URL.Query().Get("priority")
	priority, err := ParsePriority(prParam)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ParamError{
			Error:     err.Error(),
			Parameter: "priority",
			Value:     prParam,
			Want:      []string{string(PriorityBatch), string(PriorityInteractive)},
		})
		return
	}
	budgetHdr := r.Header.Get("X-Deadline-Budget")
	budget, err := resilience.ParseTimeout(budgetHdr, maxRequestTimeout)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ParamError{
			Error:     err.Error(),
			Parameter: "X-Deadline-Budget",
			Value:     budgetHdr,
			Want:      []string{"a Go duration, e.g. 5s or 500ms, at most " + maxRequestTimeout.String()},
		})
		return
	}

	specs, indices, ok := s.readBatchBody(w, r)
	if !ok {
		return
	}

	run, err := s.SubmitBatch(r.Context(), specs, BatchOptions{Priority: priority, Budget: budget})
	if err != nil {
		var bse *BatchSpecError
		switch {
		case errors.As(err, &bse):
			// Point the client at the offending NDJSON line (or grid
			// cell): the 0-based spec index maps 1:1 onto parsed lines.
			writeJSON(w, http.StatusBadRequest, ParamError{
				Error:     err.Error(),
				Parameter: "line",
				Value:     strconv.Itoa(bse.Index + 1),
				Want:      []string{"a valid JobSpec per line"},
			})
		case errors.Is(err, ErrBatchTooLarge):
			writeError(w, httpError{http.StatusRequestEntityTooLarge, err.Error()})
		case errors.Is(err, ErrBatchEmpty):
			writeError(w, httpError{http.StatusBadRequest, err.Error()})
		case errors.Is(err, ErrBudgetExhausted):
			setRetryAfter(w, s.retryAfter(priority))
			writeError(w, httpError{http.StatusGatewayTimeout, err.Error()})
		case errors.Is(err, resilience.ErrBreakerOpen):
			setRetryAfter(w, time.Second)
			writeError(w, httpError{http.StatusServiceUnavailable, err.Error()})
		default:
			writeError(w, err) // durability or pool closed: 503
		}
		return
	}

	// Stream cells as they complete. A client that disconnects
	// mid-stream cancels only cells that have not started (dropped at
	// worker pickup); running cells finish and are journaled, so the
	// work already paid for is never discarded.
	stopCancel := context.AfterFunc(r.Context(), run.Cancel)
	defer stopCancel()
	w.Header().Set("Content-Type", ndjsonContentType)
	w.Header().Set("X-Batch-Cells", strconv.Itoa(len(specs)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out before the first cell completes: streaming
		// clients need the 200 to start reading, and a client gating its
		// own workload on it would otherwise deadlock against us.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	summary := BatchSummary{Cells: len(specs)}
	for br := range run.Results() {
		if br.State == Failed {
			summary.Failed++
		}
		if br.FromCache {
			summary.FromCache++
		}
		br.Index = indices[br.Index]
		_ = enc.Encode(br)
		if flusher != nil {
			flusher.Flush()
		}
	}
	summary.Done = true
	_ = enc.Encode(summary)
	if flusher != nil {
		flusher.Flush()
	}
}

// readBatchBody parses a batch request body into specs plus the
// client-visible index of each cell. Content-Type application/json is
// the compact grid-expansion form (BatchGrid); anything else is NDJSON,
// one JobSpec per line. On failure it writes the error response (400
// with the 1-based line number, or 413 past the body cap) and reports
// ok=false.
func (s *Service) readBatchBody(w http.ResponseWriter, r *http.Request) (specs []JobSpec, indices []int, ok bool) {
	body := http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		var grid BatchGrid
		if err := dec.Decode(&grid); err != nil {
			if isBodyTooLarge(err) {
				writeError(w, httpError{http.StatusRequestEntityTooLarge,
					"batch body exceeds " + strconv.Itoa(maxBatchBodyBytes) + " bytes"})
				return nil, nil, false
			}
			writeError(w, httpError{http.StatusBadRequest, "bad batch grid: " + err.Error()})
			return nil, nil, false
		}
		specs = grid.Expand()
		indices = make([]int, len(specs))
		for i := range indices {
			indices[i] = i
		}
		return specs, indices, true
	}

	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), maxBodyBytes)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var bl batchLine
		if err := dec.Decode(&bl); err != nil {
			writeJSON(w, http.StatusBadRequest, ParamError{
				Error:     "bad batch line: " + err.Error(),
				Parameter: "line",
				Value:     strconv.Itoa(line),
				Want:      []string{"one JobSpec JSON object per line, optional \"index\" field"},
			})
			return nil, nil, false
		}
		idx := len(specs)
		if bl.Index != nil {
			idx = *bl.Index
		}
		specs = append(specs, bl.JobSpec)
		indices = append(indices, idx)
	}
	if err := sc.Err(); err != nil {
		if isBodyTooLarge(err) {
			writeError(w, httpError{http.StatusRequestEntityTooLarge,
				"batch body exceeds " + strconv.Itoa(maxBatchBodyBytes) + " bytes"})
			return nil, nil, false
		}
		writeJSON(w, http.StatusBadRequest, ParamError{
			Error:     "bad batch line: " + err.Error(),
			Parameter: "line",
			Value:     strconv.Itoa(line + 1),
			Want:      []string{"one JobSpec JSON object per line, at most " + strconv.Itoa(maxBodyBytes) + " bytes each"},
		})
		return nil, nil, false
	}
	return specs, indices, true
}

// isBodyTooLarge reports whether err came from the MaxBytesReader cap.
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}
