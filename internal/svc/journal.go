package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/journal"
	"sigkern/internal/obs"
)

// ErrDurability is returned by Submit/Admit when the service is
// durable but the journal cannot persist the acceptance: accepting
// work that would silently vanish in a crash defeats the point, so
// the job is refused (503 upstairs) instead.
var ErrDurability = errors.New("svc: durability journal unavailable")

// eventType names one journaled job lifecycle transition.
type eventType string

const (
	eventAccepted eventType = "accepted"
	eventStarted  eventType = "started"
	eventDone     eventType = "done"
	eventFailed   eventType = "failed"
	// eventAborted marks a job accepted and journaled but shed before
	// any work happened (saturated queue): replay must forget it, the
	// client was told 429.
	eventAborted eventType = "aborted"
	eventEvicted eventType = "evicted"
	// eventBatch records one accepted batch group in a single CRC32C
	// frame: every member job's identity and spec, plus the sequence
	// counter after the group. One record — and one fsync — covers the
	// whole group's acceptance, and replay restores every member under
	// its original ID.
	eventBatch eventType = "batch_accepted"
)

// batchMember is one member job inside an eventBatch record.
type batchMember struct {
	ID   string  `json:"id"`
	Hash string  `json:"hash"`
	Spec JobSpec `json:"spec"`
}

// jobEvent is the JSON payload of one write-ahead-log record.
type jobEvent struct {
	Type eventType `json:"type"`
	ID   string    `json:"id"`
	// Seq is the service's ID counter at acceptance, so a restart
	// never reissues a live job ID.
	Seq       uint64       `json:"seq,omitempty"`
	IdemKey   string       `json:"idem,omitempty"`
	Hash      string       `json:"hash,omitempty"`
	Spec      *JobSpec     `json:"spec,omitempty"`
	Result    *core.Result `json:"result,omitempty"`
	FromCache bool         `json:"from_cache,omitempty"`
	Error     string       `json:"error,omitempty"`
	// Batch carries an eventBatch record's member jobs.
	Batch []batchMember `json:"batch,omitempty"`
	Time  time.Time     `json:"time"`
}

// serviceSnapshot is the compaction baseline serialized into the
// journal's snapshot file: the registry in submission order, the
// bounded eviction memory, and the memo table, at one instant.
type serviceSnapshot struct {
	Seq     uint64                 `json:"seq"`
	Jobs    []Job                  `json:"jobs"`
	Evicted []string               `json:"evicted,omitempty"`
	Memo    map[string]core.Result `json:"memo,omitempty"`
}

// ReplayStats describes what a durable service restored at startup.
type ReplayStats struct {
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// SnapshotCorrupt means a snapshot existed but failed its checksum
	// or decode; recovery proceeded from the raw log instead.
	SnapshotCorrupt bool `json:"snapshot_corrupt,omitempty"`
	SegmentsRead    int  `json:"segments_read"`
	RecordsApplied  int  `json:"records_applied"`
	// BadRecords counts undecodable or unknown-typed records — skipped
	// and surfaced, never fatal and never guessed at.
	BadRecords int `json:"bad_records,omitempty"`
	// JobsRestored jobs re-entered the registry; ResultsRestored
	// terminal cycle counts were seeded back into the memo table;
	// Requeued jobs were accepted before the crash but never reached a
	// terminal state and are running again.
	JobsRestored    int `json:"jobs_restored"`
	ResultsRestored int `json:"results_restored"`
	Requeued        int `json:"requeued"`
	// Conflicts counts replayed results that disagreed with an
	// already-seeded cycle count for the same spec hash — corruption
	// surfaced by the determinism guard, first writer wins.
	Conflicts int `json:"conflicts,omitempty"`
	// Truncations/TruncatedBytes carry the journal's torn-tail
	// recovery counts (frames cut at the first bad byte).
	Truncations    uint64 `json:"truncations"`
	TruncatedBytes uint64 `json:"truncated_bytes,omitempty"`
}

// OpenDurable opens (or creates) the write-ahead journal described by
// jopts, replays it into a fresh service — terminal results back into
// the memo table, accepted-but-unfinished jobs re-enqueued — and
// returns the service with every subsequent lifecycle transition
// journaled. Close drains the pool, folds the final state into a
// snapshot, and compacts the journal, so a clean restart replays the
// snapshot instead of the whole log.
func OpenDurable(opts Options, jopts journal.Options) (*Service, error) {
	j, rec, err := journal.Open(jopts)
	if err != nil {
		return nil, err
	}
	s := NewService(opts)
	s.journal = j
	s.replayRecovery(rec)
	return s, nil
}

// Journal returns the service's write-ahead log (nil when the service
// is not durable).
func (s *Service) Journal() *journal.Journal { return s.journal }

// ReplayStats returns what the service restored at startup (zero for
// a non-durable service).
func (s *Service) ReplayStats() ReplayStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replay
}

// Checkpoint folds the service's current state into a journal
// snapshot and compacts the log. A no-op without a journal.
func (s *Service) Checkpoint() error {
	if s.journal == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(s.snapshotLocked())
	if err != nil {
		return fmt.Errorf("svc: marshal snapshot: %w", err)
	}
	return s.journal.Compact(data)
}

// snapshotLocked captures the compaction baseline. Jobs whose failure
// was the previous shutdown itself (interrupted) are persisted as
// still queued: the next process re-enqueues them instead of
// replaying a failure the client never caused.
func (s *Service) snapshotLocked() serviceSnapshot {
	snap := serviceSnapshot{Seq: s.seq, Memo: s.pool.MemoEntries()}
	for _, id := range s.order {
		cp := *s.jobs[id]
		if cp.interrupted {
			cp.State = Queued
			cp.Error = ""
			cp.Result = nil
			cp.FromCache = false
			cp.Started, cp.Finished = time.Time{}, time.Time{}
			cp.interrupted = false
		}
		snap.Jobs = append(snap.Jobs, cp)
	}
	snap.Evicted = append([]string(nil), s.evictedOrder...)
	return snap
}

// replayRecovery adopts the journal's recovered state into a fresh
// service: foldRecovery does the pure reconstruction (snapshot first,
// then the log records appended after it — shared with the cluster
// rebalance path), then the fold's registry is installed, its memo
// seeded into the pool, and everything non-terminal re-enqueued. It
// never fails — bad records are counted and skipped, conflicting
// results are refused by the determinism guard and counted.
func (s *Service) replayRecovery(rec *journal.Recovery) {
	f := foldRecovery(rec)
	st := f.stats
	s.mu.Lock()
	s.seq = f.seq
	for _, id := range f.order {
		s.jobs[id] = f.jobs[id]
	}
	s.order = append(s.order, f.order...)
	for k, id := range f.idem {
		s.idem[k] = id
	}
	for _, id := range f.evictedOrder {
		s.evicted[id] = true
	}
	s.evictedOrder = append(s.evictedOrder, f.evictedOrder...)
	// At startup the pool memo is empty, so seeding the folded results
	// can only conflict if the memo itself is corrupt — counted anyway.
	for _, k := range f.memoOrder {
		if !s.pool.SeedMemo(k, f.memo[k]) {
			st.Conflicts++
		}
	}
	// Everything accepted but never finished runs again. State resets
	// to Queued here (under the lock) so a concurrent observer never
	// sees a Running job with no worker behind it.
	type requeue struct {
		id   string
		spec JobSpec
		hash string
	}
	var rq []requeue
	for _, id := range s.order {
		j := s.jobs[id]
		if !j.State.Terminal() {
			j.State = Queued
			j.Started = time.Time{}
			j.Trace = append(j.Trace, obs.Event{Name: obs.EventRequeued, Time: time.Now(), Note: "journal replay"})
			rq = append(rq, requeue{id: j.ID, spec: j.Spec, hash: j.Hash})
		}
	}
	s.mu.Unlock()
	for _, r := range rq {
		if err := s.enqueue(r.id, r.spec, r.hash); err != nil {
			s.finish(r.id, core.Result{}, false, err)
			continue
		}
		st.Requeued++
	}
	s.mu.Lock()
	s.replay = st
	s.mu.Unlock()
}

// enqueue puts an already-registered job back onto the pool — the
// replay path for jobs accepted before a crash. Blocking submission:
// at startup the queue is empty and backpressure is the right answer.
func (s *Service) enqueue(id string, spec JobSpec, hash string) error {
	task := Task{
		Label:   fmt.Sprintf("%s/%s", spec.Machine, spec.Kernel),
		MemoKey: hash,
		Cell:    obs.Labels{Machine: spec.Machine, Kernel: string(spec.Kernel)},
		OnRetry: func(attempt int, err error) {
			s.traceEvent(id, obs.EventRetried, fmt.Sprintf("attempt %d: %v", attempt, err))
		},
		Run: func(context.Context) (core.Result, error) {
			s.markRunning(id)
			// The journaled spec carries its config override, so replay
			// re-runs it on the same hardware parameters it was accepted
			// with — never the process default.
			return runSpec(s.factoryFor(spec), spec)
		},
	}
	fut, err := s.pool.Submit(task)
	if err != nil {
		return err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		res, werr := fut.Wait(context.Background())
		s.finish(id, res, fut.FromCache(), werr)
	}()
	return nil
}

// journalAcceptedLocked makes a job's acceptance durable before the
// client hears about it. Unlike later transitions, a failure here
// refuses the job: a durable service must not accept work it cannot
// promise to remember.
func (s *Service) journalAcceptedLocked(j *Job) error {
	if s.journal == nil {
		return nil
	}
	ev := jobEvent{
		Type:    eventAccepted,
		ID:      j.ID,
		Seq:     s.seq,
		IdemKey: j.IdemKey,
		Hash:    j.Hash,
		Spec:    &j.Spec,
		Time:    j.Submitted,
	}
	if err := s.appendEvent(ev); err != nil {
		s.Metrics().journalAppendError()
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}

// journalBatchAcceptedLocked makes a whole batch group's acceptance
// durable in one CRC32C frame — one append and one fsync for N member
// jobs, against N for the single-job path. Like journalAcceptedLocked,
// a failure here refuses the batch: a durable service must not accept
// work it cannot promise to remember.
func (s *Service) journalBatchAcceptedLocked(members []*Job) error {
	if s.journal == nil || len(members) == 0 {
		return nil
	}
	ev := jobEvent{Type: eventBatch, Seq: s.seq, Time: time.Now()}
	for _, j := range members {
		ev.Batch = append(ev.Batch, batchMember{ID: j.ID, Hash: j.Hash, Spec: j.Spec})
	}
	if err := s.appendEvent(ev); err != nil {
		s.Metrics().journalAppendError()
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}

// journalEventLocked appends a post-acceptance transition. Failures
// are counted (and degrade /healthz) but do not fail the job: the
// in-memory state is still correct and still served.
//
// Members of a batch group (groupCommit) append without an immediate
// fsync: the batch driver syncs the journal every few completions and
// at group end, amortizing the durability cost across the group's
// transitions. A crash inside that window loses only the unsynced
// transitions — replay then re-runs those members from the group's
// accepted record, and the deterministic simulators reproduce the same
// cycle counts.
func (s *Service) journalEventLocked(t eventType, j *Job) {
	if s.journal == nil {
		return
	}
	ev := jobEvent{Type: t, ID: j.ID, Time: time.Now()}
	switch t {
	case eventDone:
		ev.Hash = j.Hash
		ev.Result = j.Result
		ev.FromCache = j.FromCache
	case eventFailed:
		ev.Error = j.Error
	}
	var err error
	if j.groupCommit {
		err = s.appendEventDefer(ev)
	} else {
		err = s.appendEvent(ev)
	}
	if err != nil {
		s.Metrics().journalAppendError()
	}
}

func (s *Service) appendEvent(ev jobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	return s.journal.Append(data)
}

// appendEventDefer writes without fsync; the batch driver owns the
// group's Sync.
func (s *Service) appendEventDefer(ev jobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	return s.journal.AppendDefer(data)
}
