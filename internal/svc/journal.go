package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/journal"
	"sigkern/internal/obs"
)

// ErrDurability is returned by Submit/Admit when the service is
// durable but the journal cannot persist the acceptance: accepting
// work that would silently vanish in a crash defeats the point, so
// the job is refused (503 upstairs) instead.
var ErrDurability = errors.New("svc: durability journal unavailable")

// eventType names one journaled job lifecycle transition.
type eventType string

const (
	eventAccepted eventType = "accepted"
	eventStarted  eventType = "started"
	eventDone     eventType = "done"
	eventFailed   eventType = "failed"
	// eventAborted marks a job accepted and journaled but shed before
	// any work happened (saturated queue): replay must forget it, the
	// client was told 429.
	eventAborted eventType = "aborted"
	eventEvicted eventType = "evicted"
)

// jobEvent is the JSON payload of one write-ahead-log record.
type jobEvent struct {
	Type eventType `json:"type"`
	ID   string    `json:"id"`
	// Seq is the service's ID counter at acceptance, so a restart
	// never reissues a live job ID.
	Seq       uint64       `json:"seq,omitempty"`
	IdemKey   string       `json:"idem,omitempty"`
	Hash      string       `json:"hash,omitempty"`
	Spec      *JobSpec     `json:"spec,omitempty"`
	Result    *core.Result `json:"result,omitempty"`
	FromCache bool         `json:"from_cache,omitempty"`
	Error     string       `json:"error,omitempty"`
	Time      time.Time    `json:"time"`
}

// serviceSnapshot is the compaction baseline serialized into the
// journal's snapshot file: the registry in submission order, the
// bounded eviction memory, and the memo table, at one instant.
type serviceSnapshot struct {
	Seq     uint64                 `json:"seq"`
	Jobs    []Job                  `json:"jobs"`
	Evicted []string               `json:"evicted,omitempty"`
	Memo    map[string]core.Result `json:"memo,omitempty"`
}

// ReplayStats describes what a durable service restored at startup.
type ReplayStats struct {
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// SnapshotCorrupt means a snapshot existed but failed its checksum
	// or decode; recovery proceeded from the raw log instead.
	SnapshotCorrupt bool `json:"snapshot_corrupt,omitempty"`
	SegmentsRead    int  `json:"segments_read"`
	RecordsApplied  int  `json:"records_applied"`
	// BadRecords counts undecodable or unknown-typed records — skipped
	// and surfaced, never fatal and never guessed at.
	BadRecords int `json:"bad_records,omitempty"`
	// JobsRestored jobs re-entered the registry; ResultsRestored
	// terminal cycle counts were seeded back into the memo table;
	// Requeued jobs were accepted before the crash but never reached a
	// terminal state and are running again.
	JobsRestored    int `json:"jobs_restored"`
	ResultsRestored int `json:"results_restored"`
	Requeued        int `json:"requeued"`
	// Conflicts counts replayed results that disagreed with an
	// already-seeded cycle count for the same spec hash — corruption
	// surfaced by the determinism guard, first writer wins.
	Conflicts int `json:"conflicts,omitempty"`
	// Truncations/TruncatedBytes carry the journal's torn-tail
	// recovery counts (frames cut at the first bad byte).
	Truncations    uint64 `json:"truncations"`
	TruncatedBytes uint64 `json:"truncated_bytes,omitempty"`
}

// OpenDurable opens (or creates) the write-ahead journal described by
// jopts, replays it into a fresh service — terminal results back into
// the memo table, accepted-but-unfinished jobs re-enqueued — and
// returns the service with every subsequent lifecycle transition
// journaled. Close drains the pool, folds the final state into a
// snapshot, and compacts the journal, so a clean restart replays the
// snapshot instead of the whole log.
func OpenDurable(opts Options, jopts journal.Options) (*Service, error) {
	j, rec, err := journal.Open(jopts)
	if err != nil {
		return nil, err
	}
	s := NewService(opts)
	s.journal = j
	s.replayRecovery(rec)
	return s, nil
}

// Journal returns the service's write-ahead log (nil when the service
// is not durable).
func (s *Service) Journal() *journal.Journal { return s.journal }

// ReplayStats returns what the service restored at startup (zero for
// a non-durable service).
func (s *Service) ReplayStats() ReplayStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replay
}

// Checkpoint folds the service's current state into a journal
// snapshot and compacts the log. A no-op without a journal.
func (s *Service) Checkpoint() error {
	if s.journal == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(s.snapshotLocked())
	if err != nil {
		return fmt.Errorf("svc: marshal snapshot: %w", err)
	}
	return s.journal.Compact(data)
}

// snapshotLocked captures the compaction baseline. Jobs whose failure
// was the previous shutdown itself (interrupted) are persisted as
// still queued: the next process re-enqueues them instead of
// replaying a failure the client never caused.
func (s *Service) snapshotLocked() serviceSnapshot {
	snap := serviceSnapshot{Seq: s.seq, Memo: s.pool.MemoEntries()}
	for _, id := range s.order {
		cp := *s.jobs[id]
		if cp.interrupted {
			cp.State = Queued
			cp.Error = ""
			cp.Result = nil
			cp.FromCache = false
			cp.Started, cp.Finished = time.Time{}, time.Time{}
			cp.interrupted = false
		}
		snap.Jobs = append(snap.Jobs, cp)
	}
	snap.Evicted = append([]string(nil), s.evictedOrder...)
	return snap
}

// replayRecovery applies the journal's recovered state to a fresh
// service: snapshot first, then the log records appended after it,
// then re-enqueue of everything non-terminal. It never fails — bad
// records are counted and skipped, conflicting results are refused by
// the determinism-guarded memo seed and counted.
func (s *Service) replayRecovery(rec *journal.Recovery) {
	st := ReplayStats{
		SnapshotLoaded:  rec.Stats.SnapshotLoaded,
		SnapshotCorrupt: rec.Stats.SnapshotCorrupt,
		SegmentsRead:    rec.Stats.SegmentsRead,
		Truncations:     rec.Stats.Truncations,
		TruncatedBytes:  rec.Stats.TruncatedBytes,
	}
	s.mu.Lock()
	if rec.Snapshot != nil {
		var snap serviceSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			st.SnapshotLoaded = false
			st.SnapshotCorrupt = true
		} else {
			s.seq = snap.Seq
			for i := range snap.Jobs {
				cp := snap.Jobs[i]
				s.jobs[cp.ID] = &cp
				s.order = append(s.order, cp.ID)
				if cp.IdemKey != "" {
					s.idem[cp.IdemKey] = cp.ID
				}
				st.JobsRestored++
			}
			for _, id := range snap.Evicted {
				s.evicted[id] = true
				s.evictedOrder = append(s.evictedOrder, id)
			}
			for k, r := range snap.Memo {
				if s.pool.SeedMemo(k, r) {
					st.ResultsRestored++
				} else {
					st.Conflicts++
				}
			}
		}
	}
	for _, raw := range rec.Records {
		var ev jobEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			st.BadRecords++
			continue
		}
		s.applyEventLocked(ev, &st)
	}
	// Everything accepted but never finished runs again. State resets
	// to Queued here (under the lock) so a concurrent observer never
	// sees a Running job with no worker behind it.
	type requeue struct {
		id   string
		spec JobSpec
		hash string
	}
	var rq []requeue
	for _, id := range s.order {
		j := s.jobs[id]
		if !j.State.Terminal() {
			j.State = Queued
			j.Started = time.Time{}
			j.Trace = append(j.Trace, obs.Event{Name: obs.EventRequeued, Time: time.Now(), Note: "journal replay"})
			rq = append(rq, requeue{id: j.ID, spec: j.Spec, hash: j.Hash})
		}
	}
	s.mu.Unlock()
	for _, r := range rq {
		if err := s.enqueue(r.id, r.spec, r.hash); err != nil {
			s.finish(r.id, core.Result{}, false, err)
			continue
		}
		st.Requeued++
	}
	s.mu.Lock()
	s.replay = st
	s.mu.Unlock()
}

// applyEventLocked folds one log record into the registry.
func (s *Service) applyEventLocked(ev jobEvent, st *ReplayStats) {
	st.RecordsApplied++
	switch ev.Type {
	case eventAccepted:
		if ev.ID == "" || ev.Spec == nil {
			st.BadRecords++
			return
		}
		if _, exists := s.jobs[ev.ID]; exists {
			return // duplicate append (e.g. replayed twice); first wins
		}
		if ev.Seq > s.seq {
			s.seq = ev.Seq
		}
		j := &Job{
			ID:        ev.ID,
			Spec:      *ev.Spec,
			Hash:      ev.Hash,
			IdemKey:   ev.IdemKey,
			State:     Queued,
			Submitted: ev.Time,
			// Log-record replay reconstructs the lifecycle trace from
			// the journaled transitions (acceptance implies queueing:
			// both were durable before the client heard about the job).
			Trace: []obs.Event{
				{Name: obs.EventAccepted, Time: ev.Time},
				{Name: obs.EventQueued, Time: ev.Time},
			},
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if j.IdemKey != "" {
			s.idem[j.IdemKey] = j.ID
		}
		st.JobsRestored++
	case eventStarted:
		if j, ok := s.jobs[ev.ID]; ok && !j.State.Terminal() {
			j.State = Running
			j.Started = ev.Time
			j.Trace = append(j.Trace, obs.Event{Name: obs.EventStarted, Time: ev.Time})
		}
	case eventDone:
		if ev.Result == nil {
			st.BadRecords++
			return
		}
		// Seed the memo even when the job itself is unknown (its
		// acceptance may sit behind a truncated frame): the cycle
		// count is still good and still saves a re-simulation.
		if ev.Hash != "" {
			if s.pool.SeedMemo(ev.Hash, *ev.Result) {
				st.ResultsRestored++
			} else {
				st.Conflicts++
			}
		}
		if j, ok := s.jobs[ev.ID]; ok && !j.State.Terminal() {
			j.State = Done
			j.Result = ev.Result
			j.FromCache = ev.FromCache
			j.Finished = ev.Time
			note := ""
			if ev.FromCache {
				note = "cache hit"
			}
			j.Trace = append(j.Trace, obs.Event{Name: obs.EventDone, Time: ev.Time, Note: note})
		}
	case eventFailed:
		if j, ok := s.jobs[ev.ID]; ok && !j.State.Terminal() {
			j.State = Failed
			j.Error = ev.Error
			j.Finished = ev.Time
			j.Trace = append(j.Trace, obs.Event{Name: obs.EventFailed, Time: ev.Time, Note: ev.Error})
		}
	case eventAborted:
		if j, ok := s.jobs[ev.ID]; ok {
			delete(s.jobs, ev.ID)
			if j.IdemKey != "" && s.idem[j.IdemKey] == ev.ID {
				delete(s.idem, j.IdemKey)
			}
			s.removeFromOrderLocked(ev.ID)
		}
	case eventEvicted:
		if j, ok := s.jobs[ev.ID]; ok {
			delete(s.jobs, ev.ID)
			if j.IdemKey != "" && s.idem[j.IdemKey] == ev.ID {
				delete(s.idem, j.IdemKey)
			}
			s.removeFromOrderLocked(ev.ID)
			s.evicted[ev.ID] = true
			s.evictedOrder = append(s.evictedOrder, ev.ID)
		}
	default:
		st.BadRecords++
	}
}

// enqueue puts an already-registered job back onto the pool — the
// replay path for jobs accepted before a crash. Blocking submission:
// at startup the queue is empty and backpressure is the right answer.
func (s *Service) enqueue(id string, spec JobSpec, hash string) error {
	task := Task{
		Label:   fmt.Sprintf("%s/%s", spec.Machine, spec.Kernel),
		MemoKey: hash,
		Cell:    obs.Labels{Machine: spec.Machine, Kernel: string(spec.Kernel)},
		OnRetry: func(attempt int, err error) {
			s.traceEvent(id, obs.EventRetried, fmt.Sprintf("attempt %d: %v", attempt, err))
		},
		Run: func(context.Context) (core.Result, error) {
			s.markRunning(id)
			return runSpec(s.factory, spec)
		},
	}
	fut, err := s.pool.Submit(task)
	if err != nil {
		return err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		res, werr := fut.Wait(context.Background())
		s.finish(id, res, fut.FromCache(), werr)
	}()
	return nil
}

// journalAcceptedLocked makes a job's acceptance durable before the
// client hears about it. Unlike later transitions, a failure here
// refuses the job: a durable service must not accept work it cannot
// promise to remember.
func (s *Service) journalAcceptedLocked(j *Job) error {
	if s.journal == nil {
		return nil
	}
	ev := jobEvent{
		Type:    eventAccepted,
		ID:      j.ID,
		Seq:     s.seq,
		IdemKey: j.IdemKey,
		Hash:    j.Hash,
		Spec:    &j.Spec,
		Time:    j.Submitted,
	}
	if err := s.appendEvent(ev); err != nil {
		s.Metrics().journalAppendError()
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}

// journalEventLocked appends a post-acceptance transition. Failures
// are counted (and degrade /healthz) but do not fail the job: the
// in-memory state is still correct and still served.
func (s *Service) journalEventLocked(t eventType, j *Job) {
	if s.journal == nil {
		return
	}
	ev := jobEvent{Type: t, ID: j.ID, Time: time.Now()}
	switch t {
	case eventDone:
		ev.Hash = j.Hash
		ev.Result = j.Result
		ev.FromCache = j.FromCache
	case eventFailed:
		ev.Error = j.Error
	}
	if err := s.appendEvent(ev); err != nil {
		s.Metrics().journalAppendError()
	}
}

func (s *Service) appendEvent(ev jobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	return s.journal.Append(data)
}
