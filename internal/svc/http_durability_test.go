package svc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/journal"
)

// TestHTTPListPagination walks GET /v1/jobs with ?limit=/?after=
// cursors: pages preserve submission order, concatenate to the full
// set, and the last page omits next_after.
func TestHTTPListPagination(t *testing.T) {
	s, srv := newTestServer(t)
	w := smallWorkload()
	var ids []string
	for _, spec := range []JobSpec{
		{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "AltiVec", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "PPC", Kernel: core.BeamSteering, Workload: &w},
		{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w},
	} {
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}

	var walked []string
	after := ""
	for page := 0; ; page++ {
		if page > 3 {
			t.Fatal("pagination does not terminate")
		}
		url := srv.URL + "/v1/jobs?limit=2"
		if after != "" {
			url += "&after=" + after
		}
		var pl JobListPage
		if resp := getJSON(t, url, &pl); resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d: %d", page, resp.StatusCode)
		}
		if pl.Total != len(ids) || pl.Count != len(pl.Jobs) || pl.Count > 2 {
			t.Fatalf("page %d shape: %+v", page, pl)
		}
		for _, j := range pl.Jobs {
			walked = append(walked, j.ID)
		}
		if pl.NextAfter == "" {
			break
		}
		after = pl.NextAfter
	}
	if len(walked) != len(ids) {
		t.Fatalf("walked %d jobs, want %d", len(walked), len(ids))
	}
	for i, id := range ids {
		if walked[i] != id {
			t.Fatalf("position %d: got %s, want %s (submission order)", i, walked[i], id)
		}
	}

	for _, q := range []string{"limit=0", "limit=-3", "limit=bogus", "after=never-issued"} {
		resp, err := http.Get(srv.URL + "/v1/jobs?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s: %d, want 400", q, resp.StatusCode)
		}
	}

	// An oversized limit is capped, not rejected.
	var pl JobListPage
	if resp := getJSON(t, srv.URL+"/v1/jobs?limit=99999", &pl); resp.StatusCode != http.StatusOK {
		t.Fatalf("capped limit: %d", resp.StatusCode)
	}
	if pl.Count != len(ids) || pl.NextAfter != "" {
		t.Fatalf("capped-limit page: %+v", pl)
	}
}

// TestHTTPIdempotencyKeyHeader pins the wire contract: the same
// Idempotency-Key returns the original job with an explicit
// Idempotency-Replayed marker, so a client retrying a timed-out POST
// cannot double-submit.
func TestHTTPIdempotencyKeyHeader(t *testing.T) {
	_, srv := newTestServer(t)
	w := smallWorkload()
	body, _ := json.Marshal(JobSpec{Machine: "PPC", Kernel: core.BeamSteering, Workload: &w})

	post := func() (*http.Response, Job) {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "retry-abc123")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var job Job
		_ = json.NewDecoder(resp.Body).Decode(&job)
		return resp, job
	}

	resp, first := post()
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("Idempotency-Replayed") != "" {
		t.Fatalf("first submit: %d replayed=%q", resp.StatusCode, resp.Header.Get("Idempotency-Replayed"))
	}
	resp, second := post()
	if resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("retry not marked replayed: %v", resp.Header)
	}
	if second.ID != first.ID {
		t.Fatalf("retry created job %s, want original %s", second.ID, first.ID)
	}
}

// TestHTTPHealthzJournalSection: a durable daemon's /healthz carries
// the journal block (sync stats + replay report); a memory-only one
// omits it.
func TestHTTPHealthzJournalSection(t *testing.T) {
	s, err := OpenDurable(Options{Pool: PoolOptions{Workers: 2, JobTimeout: time.Minute}},
		journal.Options{Dir: t.TempDir(), Sync: journal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer func() {
		srv.Close()
		s.Close()
	}()

	w := smallWorkload()
	job, err := s.Submit(JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(t.Context(), job.ID); err != nil {
		t.Fatal(err)
	}

	var h Health
	if resp := getJSON(t, srv.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("durable healthz: %d", resp.StatusCode)
	}
	if h.Journal == nil {
		t.Fatal("durable healthz missing journal section")
	}
	// accepted + started + done at minimum, all fsynced under SyncAlways.
	if h.Journal.Appended < 3 || h.Journal.Lag != 0 || h.Journal.AppendErrors != 0 {
		t.Fatalf("journal health: %+v", h.Journal)
	}

	s2, srv2 := newTestServer(t)
	_ = s2
	var h2 Health
	if resp := getJSON(t, srv2.URL+"/healthz", &h2); resp.StatusCode != http.StatusOK {
		t.Fatalf("memory-only healthz: %d", resp.StatusCode)
	}
	if h2.Journal != nil {
		t.Fatalf("memory-only healthz has journal section: %+v", h2.Journal)
	}
}
