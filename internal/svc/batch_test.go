// Batch/grid fast-path tests: group admission, NDJSON streaming, the
// error paths (malformed lines, partial failure, disconnect, size
// caps), and group-commit replay.
package svc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/journal"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/machines"
)

func TestBatchGridExpand(t *testing.T) {
	w := smallWorkload()
	grid := BatchGrid{Machines: []string{"VIRAM", "Raw"}, Kernels: []core.KernelID{core.CornerTurn}, Workloads: []*core.Workload{&w}}
	specs := grid.Expand()
	if len(specs) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(specs))
	}
	if specs[0].Machine != "VIRAM" || specs[1].Machine != "Raw" {
		t.Fatalf("row-major order broken: %+v", specs)
	}
	// Defaults: all five machines x all three kernels x paper workload.
	if n := len(BatchGrid{}.Expand()); n != 15 {
		t.Fatalf("default grid expanded %d cells, want 15", n)
	}
}

// TestSubmitBatchMatchesSequential is the bit-identity acceptance
// check at the service layer: a batch grid's cycle counts must equal
// fresh sequential runs exactly.
func TestSubmitBatchMatchesSequential(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 8, JobTimeout: time.Minute}})
	defer s.Close()
	w := smallWorkload()
	specs := BatchGrid{Workloads: []*core.Workload{&w}}.Expand()

	run, err := s.SubmitBatch(context.Background(), specs, BatchOptions{Priority: PriorityBatch})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Jobs()) != len(specs) {
		t.Fatalf("accepted %d members, want %d", len(run.Jobs()), len(specs))
	}
	got := make(map[int]Job)
	for br := range run.Results() {
		got[br.Index] = br.Job
	}
	if len(got) != len(specs) {
		t.Fatalf("streamed %d results, want %d", len(got), len(specs))
	}
	for i, spec := range specs {
		j, ok := got[i]
		if !ok {
			t.Fatalf("cell %d never completed", i)
		}
		if j.State != Done || j.Result == nil {
			t.Fatalf("cell %d: state %s error %q", i, j.State, j.Error)
		}
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := runSpec(machines.ByName, norm)
		if err != nil {
			t.Fatal(err)
		}
		if j.Result.Cycles != ref.Cycles {
			t.Fatalf("cell %d (%s/%s): batch %d cycles, fresh %d",
				i, spec.Machine, spec.Kernel, j.Result.Cycles, ref.Cycles)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.BatchGroups != 1 || snap.BatchCells != uint64(len(specs)) {
		t.Fatalf("batch metrics: %+v", snap)
	}
}

// TestSubmitBatchSpecErrorIndex pins the index-carrying validation
// error the HTTP layer maps to a line number.
func TestSubmitBatchSpecErrorIndex(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 1}})
	defer s.Close()
	specs := []JobSpec{
		{Machine: "VIRAM", Kernel: core.CornerTurn},
		{Machine: "Pentium", Kernel: core.CornerTurn},
	}
	_, err := s.SubmitBatch(context.Background(), specs, BatchOptions{})
	var bse *BatchSpecError
	if !errors.As(err, &bse) {
		t.Fatalf("error = %v, want BatchSpecError", err)
	}
	if bse.Index != 1 {
		t.Fatalf("index = %d, want 1", bse.Index)
	}
	if _, err := s.SubmitBatch(context.Background(), nil, BatchOptions{}); !errors.Is(err, ErrBatchEmpty) {
		t.Fatalf("empty batch error = %v", err)
	}
	if _, err := s.SubmitBatch(context.Background(), make([]JobSpec, MaxBatchCells+1), BatchOptions{}); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversize batch error = %v", err)
	}
}

// postNDJSON posts an NDJSON body to /v1/batch and returns the
// response; the caller owns resp.Body.
func postNDJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readBatchStream decodes every NDJSON line of a batch response into
// cell lines plus the final summary.
func readBatchStream(t *testing.T, body io.Reader) (cells []BatchResult, sum BatchSummary) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	sawSummary := false
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if sawSummary {
			t.Fatalf("line after summary: %s", raw)
		}
		var probe struct {
			ID   string `json:"id"`
			Done bool   `json:"done"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", raw, err)
		}
		if probe.ID == "" && probe.Done {
			if err := json.Unmarshal(raw, &sum); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		var br BatchResult
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("bad cell line %q: %v", raw, err)
		}
		cells = append(cells, br)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return cells, sum
}

// TestHTTPBatchGridForm posts the compact grid form and checks the
// streamed cells cover the grid with correct, bit-identical results.
func TestHTTPBatchGridForm(t *testing.T) {
	_, srv := newTestServer(t)
	w := smallWorkload()
	body, err := json.Marshal(BatchGrid{Machines: []string{"VIRAM", "Raw"}, Workloads: []*core.Workload{&w}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/batch?priority=batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	cells, sum := readBatchStream(t, resp.Body)
	if len(cells) != 6 || sum.Cells != 6 || sum.Failed != 0 {
		t.Fatalf("cells %d, summary %+v", len(cells), sum)
	}
	seen := map[int]bool{}
	for _, c := range cells {
		if seen[c.Index] {
			t.Fatalf("index %d streamed twice", c.Index)
		}
		seen[c.Index] = true
		if c.State != Done || c.Result == nil {
			t.Fatalf("cell %d: %s %q", c.Index, c.State, c.Error)
		}
		norm, err := c.Spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := runSpec(machines.ByName, norm)
		if err != nil {
			t.Fatal(err)
		}
		if c.Result.Cycles != ref.Cycles {
			t.Fatalf("cell %d: %d cycles, fresh %d", c.Index, c.Result.Cycles, ref.Cycles)
		}
	}
}

// TestHTTPBatchNDJSONIndexRemap submits NDJSON lines with explicit
// index fields (the gateway's split protocol) and expects them echoed.
func TestHTTPBatchNDJSONIndexRemap(t *testing.T) {
	_, srv := newTestServer(t)
	w := smallWorkload()
	wj, _ := json.Marshal(&w)
	body := fmt.Sprintf(`{"machine":"VIRAM","kernel":"corner-turn","workload":%s,"index":40}
{"machine":"Raw","kernel":"corner-turn","workload":%s,"index":7}
`, wj, wj)
	resp := postNDJSON(t, srv.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	cells, sum := readBatchStream(t, resp.Body)
	if len(cells) != 2 || sum.Cells != 2 {
		t.Fatalf("cells %d, summary %+v", len(cells), sum)
	}
	want := map[int]string{40: "VIRAM", 7: "Raw"}
	for _, c := range cells {
		machine, ok := want[c.Index]
		if !ok {
			t.Fatalf("unexpected index %d", c.Index)
		}
		if c.Spec.Machine != machine {
			t.Fatalf("index %d: machine %s, want %s", c.Index, c.Spec.Machine, machine)
		}
		delete(want, c.Index)
	}
}

// TestHTTPBatchMalformedLine pins the structured 400: the ParamError
// names the offending 1-based line.
func TestHTTPBatchMalformedLine(t *testing.T) {
	_, srv := newTestServer(t)
	body := `{"machine":"VIRAM","kernel":"corner-turn"}
{"machine": oops}
{"machine":"Raw","kernel":"corner-turn"}
`
	resp := postNDJSON(t, srv.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var pe ParamError
	if err := json.NewDecoder(resp.Body).Decode(&pe); err != nil {
		t.Fatal(err)
	}
	if pe.Parameter != "line" || pe.Value != "2" {
		t.Fatalf("ParamError = %+v, want line 2", pe)
	}

	// An invalid spec (parse-clean, semantically wrong) also points at
	// its line.
	resp2 := postNDJSON(t, srv.URL, `{"machine":"VIRAM","kernel":"corner-turn"}
{"machine":"Pentium","kernel":"corner-turn"}
`)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp2.StatusCode)
	}
	var pe2 ParamError
	if err := json.NewDecoder(resp2.Body).Decode(&pe2); err != nil {
		t.Fatal(err)
	}
	if pe2.Parameter != "line" || pe2.Value != "2" {
		t.Fatalf("ParamError = %+v, want line 2", pe2)
	}
}

// TestHTTPBatchOversized pins the documented cap: more than
// MaxBatchCells cells is 413, before any admission work.
func TestHTTPBatchOversized(t *testing.T) {
	_, srv := newTestServer(t)
	var sb strings.Builder
	for i := 0; i <= MaxBatchCells; i++ {
		sb.WriteString(`{"machine":"VIRAM","kernel":"corner-turn"}` + "\n")
	}
	resp := postNDJSON(t, srv.URL, sb.String())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestHTTPBatchPartialFailure: one cell's machine factory fails
// terminally while its siblings succeed — the stream must carry the
// failed cell as a failed line, not poison the group.
func TestHTTPBatchPartialFailure(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 4, JobTimeout: time.Minute}, Factory: func(name string) (core.Machine, error) {
		if name == "Raw" {
			return nil, fmt.Errorf("injected: no %s backend", name)
		}
		return machines.ByName(name)
	}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Close()

	w := smallWorkload()
	body, _ := json.Marshal(BatchGrid{
		Machines:  []string{"VIRAM", "Raw", "Imagine"},
		Kernels:   []core.KernelID{core.CornerTurn},
		Workloads: []*core.Workload{&w},
	})
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	cells, sum := readBatchStream(t, resp.Body)
	if len(cells) != 3 || sum.Cells != 3 {
		t.Fatalf("cells %d, summary %+v", len(cells), sum)
	}
	if sum.Failed != 1 {
		t.Fatalf("summary.Failed = %d, want 1", sum.Failed)
	}
	for _, c := range cells {
		if c.Spec.Machine == "Raw" {
			if c.State != Failed || !strings.Contains(c.Error, "injected") {
				t.Fatalf("Raw cell: state %s error %q", c.State, c.Error)
			}
			continue
		}
		if c.State != Done || c.Result == nil {
			t.Fatalf("%s cell: state %s error %q", c.Spec.Machine, c.State, c.Error)
		}
	}
}

// gateMachine blocks each kernel run until the gate channel is closed
// (or yields), serializing batch progress so cancellation tests can
// catch cells still queued.
type gateMachine struct {
	leakyMachine
	gate <-chan struct{}
}

func (m *gateMachine) run() (core.Result, error) {
	<-m.gate
	return core.Result{Cycles: 100, Verified: true}, nil
}

func (m *gateMachine) RunCornerTurn(cornerturn.Spec) (core.Result, error)  { return m.run() }
func (m *gateMachine) RunCSLC(cslc.Spec) (core.Result, error)              { return m.run() }
func (m *gateMachine) RunBeamSteering(beamsteer.Spec) (core.Result, error) { return m.run() }

// distinctSpecs returns n valid specs with distinct hashes (so neither
// the memo nor coalescing collapses them).
func distinctSpecs(n int) []JobSpec {
	specs := make([]JobSpec, n)
	for i := range specs {
		w := smallWorkload()
		w.CornerTurn.Rows = 16 << uint(i%3)
		w.CornerTurn.Cols = 16 * (i + 1)
		specs[i] = JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}
	}
	return specs
}

// TestBatchCancelDropsOnlyUnstarted: cancelling a running group fails
// queued cells with context.Canceled at pickup while started cells
// complete normally.
func TestBatchCancelDropsOnlyUnstarted(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	s := NewService(Options{Pool: PoolOptions{Workers: 1, JobTimeout: time.Minute}, Factory: func(name string) (core.Machine, error) {
		started <- struct{}{}
		return &gateMachine{gate: gate}, nil
	}})
	defer s.Close()

	run, err := s.SubmitBatch(context.Background(), distinctSpecs(6), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the single worker to start cell one, then cancel the
	// group and release the gate.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("no cell ever started")
	}
	run.Cancel()
	close(gate)

	var done, cancelled int
	for br := range run.Results() {
		switch {
		case br.State == Done:
			done++
		case br.State == Failed && strings.Contains(br.Error, context.Canceled.Error()):
			cancelled++
		default:
			t.Fatalf("cell %d: state %s error %q", br.Index, br.State, br.Error)
		}
	}
	if done == 0 {
		t.Fatal("the started cell did not complete")
	}
	if cancelled == 0 {
		t.Fatal("no queued cell was cancelled")
	}
	if done+cancelled != 6 {
		t.Fatalf("done %d + cancelled %d != 6", done, cancelled)
	}
}

// TestHTTPBatchClientDisconnect wires the same property through the
// handler: closing the response mid-stream cancels the group's
// unstarted cells, and every member still reaches a terminal state.
func TestHTTPBatchClientDisconnect(t *testing.T) {
	gate := make(chan struct{}, 64)
	var gateOnce sync.Once
	s := NewService(Options{Pool: PoolOptions{Workers: 1, JobTimeout: time.Minute}, Factory: func(name string) (core.Machine, error) {
		return &gateMachine{gate: gate}, nil
	}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Close()

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, spec := range distinctSpecs(6) {
		if err := enc.Encode(spec); err != nil {
			t.Fatal(err)
		}
	}
	resp := postNDJSON(t, srv.URL, buf.String())
	// Let exactly one cell through, read its line, then hang up. The
	// single worker is now parked inside cell two's kernel run.
	gate <- struct{}{}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("first stream line: %v", err)
	}
	resp.Body.Close()
	// The server notices the dropped connection asynchronously; wait for
	// the handler's AfterFunc to cancel the group before releasing the
	// gate, so queued cells are deterministically dropped at pickup
	// instead of racing the worker to completion.
	cancelSeen := time.Now().Add(10 * time.Second)
	for s.Metrics().Snapshot().BatchCancels == 0 {
		if time.Now().After(cancelSeen) {
			t.Fatal("disconnect never cancelled the batch")
		}
		time.Sleep(2 * time.Millisecond)
	}
	gateOnce.Do(func() {
		for i := 0; i < 16; i++ {
			gate <- struct{}{}
		}
	})

	deadline := time.Now().Add(10 * time.Second)
	for {
		jobs := s.Jobs()
		terminal, done, cancelled := 0, 0, 0
		for _, j := range jobs {
			if j.State.Terminal() {
				terminal++
			}
			if j.State == Done {
				done++
			}
			if j.State == Failed && strings.Contains(j.Error, context.Canceled.Error()) {
				cancelled++
			}
		}
		if len(jobs) == 6 && terminal == 6 {
			if done == 0 {
				t.Fatal("no cell completed before the disconnect")
			}
			if cancelled == 0 {
				t.Fatal("disconnect cancelled nothing")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("members never reached terminal states: %d/%d terminal", terminal, len(jobs))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchGroupCommitReplay: a durable service journals one group
// record per accepted batch; reopening the journal restores every
// member under its original ID with its result.
func TestBatchGroupCommitReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(Options{Pool: PoolOptions{Workers: 4, JobTimeout: time.Minute}}, journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w := smallWorkload()
	specs := BatchGrid{Machines: []string{"VIRAM", "Raw"}, Workloads: []*core.Workload{&w}}.Expand()
	run, err := s.SubmitBatch(context.Background(), specs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]uint64) // id -> cycles
	for br := range run.Results() {
		if br.State != Done || br.Result == nil {
			t.Fatalf("cell %d: %s %q", br.Index, br.State, br.Error)
		}
		want[br.ID] = br.Result.Cycles
	}
	s.Close()

	s2, err := OpenDurable(Options{Pool: PoolOptions{Workers: 4, JobTimeout: time.Minute}}, journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.ReplayStats().JobsRestored; got < len(specs) {
		t.Fatalf("restored %d jobs, want >= %d", got, len(specs))
	}
	for id, cycles := range want {
		j, ok := s2.Job(id)
		if !ok {
			t.Fatalf("member %s lost across restart", id)
		}
		if j.State != Done || j.Result == nil || j.Result.Cycles != cycles {
			t.Fatalf("member %s replayed as %s/%v, want Done/%d", id, j.State, j.Result, cycles)
		}
	}
}

// TestBatchReplayReRunsNonTerminalMembers simulates the crash window:
// a group's acceptance record is durable but its members never reached
// a terminal record. The journal holds only the eventBatch frame — no
// clean shutdown, no snapshot — and replay must restore the members as
// queued and re-run them to the same deterministic answers.
func TestBatchReplayReRunsNonTerminalMembers(t *testing.T) {
	dir := t.TempDir()
	w := smallWorkload()
	specs := []JobSpec{
		{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "Raw", Kernel: core.BeamSteering, Workload: &w},
	}
	// Write the group acceptance straight into a raw journal and walk
	// away — the exact on-disk state after a crash mid-batch.
	j, _, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ev := jobEvent{Type: eventBatch, Seq: uint64(len(specs)), Time: time.Now()}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		hash, err := norm.Hash()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = fmt.Sprintf("j%06d-%s", i+1, hash[:8])
		ev.Batch = append(ev.Batch, batchMember{ID: ids[i], Hash: hash, Spec: norm})
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDurable(Options{Pool: PoolOptions{Workers: 2, JobTimeout: time.Minute}}, journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, id := range ids {
		j, err := s2.Wait(ctx, id)
		if err != nil {
			t.Fatalf("member %s: %v", id, err)
		}
		if j.State != Done || j.Result == nil {
			t.Fatalf("member %s re-ran to %s %q", id, j.State, j.Error)
		}
		norm, _ := specs[i].Normalize()
		ref, err := runSpec(machines.ByName, norm)
		if err != nil {
			t.Fatal(err)
		}
		if j.Result.Cycles != ref.Cycles {
			t.Fatalf("member %s: replayed run %d cycles, fresh %d", id, j.Result.Cycles, ref.Cycles)
		}
	}
}
