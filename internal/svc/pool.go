package svc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sigkern/internal/cache"
	"sigkern/internal/core"
	"sigkern/internal/faults"
	"sigkern/internal/obs"
	"sigkern/internal/resilience"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("svc: pool closed")

// ErrTimeout wraps per-job deadline expiries so callers can classify
// them (errors.Is(err, ErrTimeout)).
var ErrTimeout = errors.New("svc: job timed out")

// ErrOverloaded is returned by TrySubmit when every worker is busy and
// the queue is full — the load-shedding signal the HTTP layer turns
// into 429 + Retry-After.
var ErrOverloaded = errors.New("svc: overloaded, job shed")

// ErrBudgetExhausted marks work refused — or dropped at worker pickup —
// because the request's remaining deadline budget cannot cover it: the
// client's deadline would expire before the answer could exist, so
// running the job would burn a worker slot for a response nobody is
// waiting for. The HTTP layer serves it as 504 + Retry-After.
var ErrBudgetExhausted = errors.New("svc: deadline budget exhausted")

// ErrDeterminism marks the determinism guard tripping: a simulation
// result disagreed with the memoized result for the same spec hash.
// The simulators are bit-exact, so this is always corruption (an
// injected fault, a memory error, a bug) and is served as a hard error,
// never a silently wrong cycle count.
var ErrDeterminism = errors.New("svc: determinism violation")

// Fault points the pool consults (see internal/faults).
const (
	// FaultPointExecute fires at the start of every execution attempt:
	// transient errors here are absorbed by the retry policy, latency
	// models a slow backend, panics exercise panic isolation.
	FaultPointExecute = "pool.execute"
	// FaultPointMemoGet fires on memo reads: a Corrupt fault damages
	// the served copy, which the determinism guard must catch.
	FaultPointMemoGet = "memo.get"
)

// Task is one unit of work for the pool: a label for diagnostics, an
// optional memoization key, and the function to run. Run receives a
// context that is cancelled on pool shutdown or per-task timeout;
// simulator runs cannot be interrupted mid-flight, so on timeout the
// pool abandons the task (its goroutine finishes in the background and
// the result is discarded) and reports ErrTimeout.
type Task struct {
	Label string
	// MemoKey enables result memoization when non-empty: a hit skips
	// Run entirely, and a successful Run is stored under the key.
	MemoKey string
	// Cell identifies the (machine, kernel) Table 3 cell this task
	// belongs to; per-cell labeled metrics are recorded under it. The
	// zero value records into the unlabeled totals only.
	Cell obs.Labels
	// OnRetry, when set, is called before each re-execution of a task
	// whose previous attempt failed transiently, with the 1-based
	// attempt number about to run and the error that caused the retry.
	// Called from the worker goroutine; must be safe for that.
	OnRetry func(attempt int, err error)
	// Priority selects the admission queue. The zero value is
	// PriorityInteractive: interactive tasks drain first and shed last;
	// batch tasks (PriorityBatch) wait in a second queue that workers
	// only service when no interactive work is pending, and are the
	// first shed under saturation.
	Priority Priority
	// Expires, when non-zero, is the task's deadline-budget expiry: a
	// task still queued past it is failed with ErrBudgetExhausted at
	// worker pickup instead of occupying a slot, and a running task's
	// context deadline is clamped to it.
	Expires time.Time
	Run     func(ctx context.Context) (core.Result, error)
}

// Future is the pending result of a submitted task.
type Future struct {
	done chan struct{}
	res  core.Result
	err  error
	// fromCache is true when the result came from the memo table.
	fromCache bool
	// elapsed is the wall-clock execution time (0 for cache hits and
	// never-run tasks).
	elapsed time.Duration
	// started is closed when a worker picks the task up.
	started chan struct{}
}

// Wait blocks until the task finishes or ctx is cancelled.
func (f *Future) Wait(ctx context.Context) (core.Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	}
}

// FromCache reports whether the result was served from the memo table.
// Valid only after Wait returns.
func (f *Future) FromCache() bool { return f.fromCache }

// Elapsed returns the wall-clock time the task spent executing (zero
// for cache hits and tasks that never ran). Valid only after Wait
// returns.
func (f *Future) Elapsed() time.Duration { return f.elapsed }

// PoolOptions configures a Pool. The zero value is usable: GOMAXPROCS
// workers, a 2-minute per-job timeout, a 1024-entry memo table, and the
// default retry policy over transient-classified errors.
type PoolOptions struct {
	// Workers is the number of concurrent job slots.
	Workers int
	// JobTimeout bounds one job's execution including retries; <= 0
	// means 2 minutes.
	JobTimeout time.Duration
	// QueueDepth is the number of tasks that can wait for a worker
	// before Submit blocks (backpressure) and TrySubmit sheds; <= 0
	// means 256.
	QueueDepth int
	// MemoCapacity is the memo table size; < 0 disables memoization.
	MemoCapacity int
	// Metrics receives lifecycle events; nil allocates a private one.
	Metrics *Metrics
	// Retry governs re-execution of attempts that fail with an error
	// classified transient (resilience.IsTransient). The zero value is
	// resilience.DefaultRetry; set MaxAttempts to 1 to disable.
	Retry resilience.RetryPolicy
	// Faults is the fault-injection registry the pool consults; nil
	// means faults.Default() (armed from SIGKERN_FAULTS, usually off).
	Faults *faults.Registry
}

// Pool is a bounded worker pool running simulation tasks with per-job
// timeouts, panic isolation, transient-error retry, and optional result
// memoization guarded for determinism. It is safe for concurrent use.
type Pool struct {
	opts PoolOptions
	// tasks is the interactive admission queue; batch is the second
	// level, serviced only when tasks is empty and shed first under
	// saturation. Each has QueueDepth capacity of its own so a batch
	// backlog can never crowd interactive work out of the queue.
	tasks   chan poolItem
	batch   chan poolItem
	memo    *cache.Memo[core.Result]
	metrics *Metrics
	faults  *faults.Registry

	// inflight coalesces concurrent submissions of the same MemoKey
	// (singleflight): the first registers its future as the leader, and
	// every identical submission until the leader completes attaches to
	// that future instead of queueing a duplicate execution.
	inflightMu sync.Mutex
	inflight   map[string]*Future

	// submitMu serializes sends on tasks against Close: Submit sends
	// while holding the read lock, so once Close holds the write lock no
	// new task can slip into the queue behind the drain.
	submitMu sync.RWMutex
	closed   bool
	wg       sync.WaitGroup
	// cancel stops all workers' contexts on Close.
	cancel context.CancelFunc
	ctx    context.Context
}

type poolItem struct {
	task Task
	fut  *Future
}

// NewPool starts a pool with opts.Workers workers.
func NewPool(opts PoolOptions) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 2 * time.Minute
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics()
	}
	if opts.Faults == nil {
		opts.Faults = faults.Default()
	}
	p := &Pool{
		opts:     opts,
		tasks:    make(chan poolItem, opts.QueueDepth),
		batch:    make(chan poolItem, opts.QueueDepth),
		metrics:  opts.Metrics,
		faults:   opts.Faults,
		inflight: make(map[string]*Future),
	}
	if opts.MemoCapacity >= 0 {
		capacity := opts.MemoCapacity
		if capacity == 0 {
			capacity = 1024
		}
		p.memo = cache.NewMemo[core.Result](capacity)
		if reg := p.faults; reg != nil {
			p.memo.SetCorruptor(func(key string, r core.Result) (core.Result, bool) {
				if inj := reg.Fire(FaultPointMemoGet); inj != nil && inj.Corrupted {
					r.Cycles ^= 0xDEAD
					r.Verified = false
					return r, true
				}
				return r, false
			})
		}
	}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Workers returns the pool's concurrency.
func (p *Pool) Workers() int { return p.opts.Workers }

// Metrics returns the pool's registry.
func (p *Pool) Metrics() *Metrics { return p.metrics }

// QueueDepth returns the number of tasks waiting for a worker across
// both priority queues.
func (p *Pool) QueueDepth() int { return len(p.tasks) + len(p.batch) }

// QueueDepthFor returns the number of tasks waiting in one priority
// class's queue.
func (p *Pool) QueueDepthFor(pr Priority) int {
	if pr == PriorityBatch {
		return len(p.batch)
	}
	return len(p.tasks)
}

// QueueCap returns the interactive queue's capacity — the shed
// threshold for interactive admissions (the batch queue has the same
// capacity of its own).
func (p *Pool) QueueCap() int { return cap(p.tasks) }

// JobTimeout returns the per-job execution deadline.
func (p *Pool) JobTimeout() time.Duration { return p.opts.JobTimeout }

// MemoHas reports whether key has a memoized result — the budget
// fast-reject probe: a memo hit is served in microseconds, so a
// near-spent budget still covers it.
func (p *Pool) MemoHas(key string) bool {
	if p.memo == nil || key == "" {
		return false
	}
	_, ok := p.memo.Peek(key)
	return ok
}

// Faults returns the fault-injection registry the pool consults (nil
// when chaos is off).
func (p *Pool) Faults() *faults.Registry { return p.faults }

// SeedMemo pre-populates the memo table with a known-good result —
// the journal-replay path restoring terminal cycle counts after a
// restart. It reports false (and stores nothing) when an entry with a
// different cycle count is already present: the simulators are
// deterministic, so a conflicting seed is corruption and the caller
// must count it rather than overwrite the truth.
func (p *Pool) SeedMemo(key string, r core.Result) bool {
	if p.memo == nil || key == "" {
		return true
	}
	if prev, ok := p.memo.Peek(key); ok && prev.Cycles != r.Cycles {
		return false
	}
	p.memo.Put(key, r)
	return true
}

// MemoEntries returns a copy of the memo table (nil when memoization
// is disabled) — the state the durability layer folds into journal
// snapshots.
func (p *Pool) MemoEntries() map[string]core.Result {
	if p.memo == nil {
		return nil
	}
	return p.memo.Entries()
}

// MemoHitRate returns the memo table's hit rate (0 when disabled).
func (p *Pool) MemoHitRate() float64 {
	if p.memo == nil {
		return 0
	}
	return p.memo.HitRate()
}

// Submit enqueues a task and returns its future. It blocks while all
// workers are busy and the queue is full (backpressure), and fails fast
// once the pool is closed.
func (p *Pool) Submit(t Task) (*Future, error) { return p.submit(t, true) }

// TrySubmit enqueues a task without blocking: when every worker is busy
// and the queue is full it sheds the task with ErrOverloaded instead of
// queueing unboundedly — the admission-control entry point.
func (p *Pool) TrySubmit(t Task) (*Future, error) { return p.submit(t, false) }

func (p *Pool) submit(t Task, block bool) (*Future, error) {
	if t.Run == nil {
		return nil, errors.New("svc: task with nil Run")
	}
	p.submitMu.RLock()
	defer p.submitMu.RUnlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	fut := &Future{done: make(chan struct{}), started: make(chan struct{})}

	// Serve memo hits synchronously: no worker slot, no queueing delay.
	// The served copy is verified against the stored entry (Peek
	// bypasses the corruption hook), so a damaged cache read becomes a
	// hard ErrDeterminism, never a silently wrong cycle count.
	if p.memo != nil && t.MemoKey != "" {
		if r, ok := p.memo.Get(t.MemoKey); ok {
			p.metrics.jobQueued()
			if raw, ok := p.memo.Peek(t.MemoKey); !ok || raw.Cycles != r.Cycles || raw.Verified != r.Verified {
				p.metrics.determinismViolation(t.Cell)
				p.metrics.jobFinished(t.Cell, false, false, false, false, 0)
				fut.err = fmt.Errorf("svc: job %q: memoized result failed verification: %w", t.Label, ErrDeterminism)
				close(fut.started)
				close(fut.done)
				return fut, nil
			}
			p.metrics.cacheHit(t.Cell, r.Cycles)
			p.metrics.jobFinished(t.Cell, false, true, false, false, 0)
			fut.res, fut.fromCache = r, true
			close(fut.started)
			close(fut.done)
			return fut, nil
		}
		p.metrics.cacheMiss(t.Cell)
	}

	// Coalesce duplicate in-flight work: if an execution for the same
	// MemoKey is already queued or running, attach to its future rather
	// than running the simulator again. The shared execution's lifetime
	// is the pool's (its context derives from p.ctx, never a waiter's),
	// so one waiter cancelling its Wait cannot poison the rest.
	if t.MemoKey != "" {
		p.inflightMu.Lock()
		if leader, ok := p.inflight[t.MemoKey]; ok {
			p.inflightMu.Unlock()
			p.metrics.jobCoalesced(t.Cell)
			return leader, nil
		}
		p.inflight[t.MemoKey] = fut
		p.inflightMu.Unlock()
	}

	queue := p.tasks
	if t.Priority == PriorityBatch {
		queue = p.batch
	}
	if block {
		p.metrics.jobQueued()
		// May block when the queue is full (backpressure); workers keep
		// draining because Close cannot cancel them until this send's read
		// lock is released.
		queue <- poolItem{task: t, fut: fut}
		return fut, nil
	}
	// Saturation sheds batch first: once the interactive queue is three
	// quarters full the remaining capacity belongs to interactive
	// traffic, so a batch admission is refused even though its own
	// queue still has room.
	if t.Priority == PriorityBatch && len(p.tasks)*4 >= cap(p.tasks)*3 {
		return p.shedTask(t, fut)
	}
	select {
	case queue <- poolItem{task: t, fut: fut}:
		p.metrics.jobQueued()
		return fut, nil
	default:
		return p.shedTask(t, fut)
	}
}

// shedTask refuses one non-blocking admission with ErrOverloaded. The
// registered flight will never execute, so its future is failed too — a
// duplicate submission may have attached to it in the window since
// registration, and it must see the shed rather than wait forever.
func (p *Pool) shedTask(t Task, fut *Future) (*Future, error) {
	p.removeFlight(t.MemoKey, fut)
	fut.err = fmt.Errorf("svc: job %q: %w", t.Label, ErrOverloaded)
	close(fut.started)
	close(fut.done)
	p.metrics.loadShed(t.Priority)
	return nil, fut.err
}

// removeFlight unregisters fut as the in-flight execution for key, if
// it still is; callers do this before completing the future so later
// submissions start fresh instead of attaching to finished work.
func (p *Pool) removeFlight(key string, fut *Future) {
	if key == "" {
		return
	}
	p.inflightMu.Lock()
	if p.inflight[key] == fut {
		delete(p.inflight, key)
	}
	p.inflightMu.Unlock()
}

// Close stops accepting tasks, waits for running workers to finish
// their current job, and fails the futures of tasks still queued.
func (p *Pool) Close() {
	p.submitMu.Lock()
	if p.closed {
		p.submitMu.Unlock()
		return
	}
	p.closed = true
	p.submitMu.Unlock()
	p.cancel()
	p.wg.Wait()
	for _, queue := range []chan poolItem{p.tasks, p.batch} {
	drain:
		for {
			select {
			case item := <-queue:
				item.fut.err = fmt.Errorf("svc: job %q: %w", item.task.Label, ErrPoolClosed)
				p.metrics.jobFinished(item.task.Cell, false, false, false, false, 0)
				p.removeFlight(item.task.MemoKey, item.fut)
				close(item.fut.started)
				close(item.fut.done)
			default:
				break drain
			}
		}
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		// Strict priority: drain every pending interactive task before
		// even looking at the batch queue.
		select {
		case item := <-p.tasks:
			p.execute(item)
			continue
		case <-p.ctx.Done():
			return
		default:
		}
		select {
		case item := <-p.tasks:
			p.execute(item)
		case item := <-p.batch:
			p.execute(item)
		case <-p.ctx.Done():
			return
		}
	}
}

// panicError reports a recovered task panic; it is never transient.
type panicError struct {
	label string
	value any
}

func (e *panicError) Error() string {
	return fmt.Sprintf("svc: job %q panicked: %v", e.label, e.value)
}

// execute runs one task with timeout, panic isolation, transient-error
// retry, and the determinism guard over the memo table.
func (p *Pool) execute(item poolItem) {
	start := time.Now()
	// A task whose deadline budget ran out while it waited is dropped
	// at pickup: the client's deadline has already passed, so running
	// the simulator would burn a worker slot on an answer nobody is
	// waiting for — exactly what the budget exists to prevent.
	if !item.task.Expires.IsZero() && start.After(item.task.Expires) {
		p.metrics.expiredDropped()
		p.removeFlight(item.task.MemoKey, item.fut)
		item.fut.err = fmt.Errorf("svc: job %q: expired in queue: %w", item.task.Label, ErrBudgetExhausted)
		p.metrics.jobFinished(item.task.Cell, false, false, false, false, 0)
		close(item.fut.started)
		close(item.fut.done)
		return
	}
	close(item.fut.started)
	p.metrics.jobStarted()

	timeout := p.opts.JobTimeout
	if !item.task.Expires.IsZero() {
		// Clamp the running deadline to the remaining budget: when it
		// expires mid-run the uninterruptible simulator is abandoned
		// (ErrTimeout) and the slot freed, same as a per-job timeout.
		if until := time.Until(item.task.Expires); until < timeout {
			timeout = until
		}
	}
	ctx, cancel := context.WithTimeout(p.ctx, timeout)
	defer cancel()

	var res core.Result
	var attempt int
	var lastErr error
	attempts, err := p.opts.Retry.Do(ctx, func(ctx context.Context) error {
		attempt++
		if attempt > 1 && item.task.OnRetry != nil {
			item.task.OnRetry(attempt, lastErr)
		}
		r, aerr := p.runAttempt(ctx, item.task)
		if aerr == nil {
			res = r
		}
		lastErr = aerr
		return aerr
	})
	if attempts > 1 {
		p.metrics.jobRetried(item.task.Cell, uint64(attempts-1))
	}
	// The per-job context's only cancellation path (as opposed to
	// deadline) is pool shutdown, so report abandoned in-flight work as
	// ErrPoolClosed — same as tasks still queued at Close.
	if errors.Is(err, context.Canceled) {
		err = fmt.Errorf("svc: job %q: %w", item.task.Label, ErrPoolClosed)
	}

	var pe *panicError
	panicked := errors.As(err, &pe)
	timedOut := errors.Is(err, ErrTimeout)

	if err == nil && p.memo != nil && item.task.MemoKey != "" {
		// Determinism guard: a re-executed (possibly retried) job must
		// reproduce the memoized cycle count for its spec hash bit for
		// bit. The simulators are deterministic, so a mismatch is
		// corruption and is surfaced as a hard error.
		if prev, ok := p.memo.Peek(item.task.MemoKey); ok && prev.Cycles != res.Cycles {
			p.metrics.determinismViolation(item.task.Cell)
			err = fmt.Errorf("svc: job %q: ran to %d cycles but %d are memoized for the same spec: %w",
				item.task.Label, res.Cycles, prev.Cycles, ErrDeterminism)
		} else {
			p.memo.Put(item.task.MemoKey, res)
		}
	}
	if err == nil {
		p.metrics.cyclesRun(res.Cycles)
	}
	elapsed := time.Since(start)
	p.metrics.jobFinished(item.task.Cell, true, err == nil, timedOut, panicked, elapsed)
	if err != nil {
		res = core.Result{}
	}
	// Unregister the flight before publishing the result: once the memo
	// holds the result (above), later submissions are cache hits; in the
	// narrow window between, a fresh execution is correct, a stale
	// attachment is not.
	p.removeFlight(item.task.MemoKey, item.fut)
	item.fut.res, item.fut.err, item.fut.elapsed = res, err, elapsed
	close(item.fut.done)
}

// runAttempt executes one try of the task with panic isolation,
// consulting the execute fault point. The simulator cannot be
// interrupted mid-flight: when ctx ends first the attempt is abandoned
// (its goroutine finishes in the background, the buffered channel lets
// it exit) and the deadline is reported as ErrTimeout.
func (p *Pool) runAttempt(ctx context.Context, t Task) (core.Result, error) {
	type outcome struct {
		res core.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: &panicError{label: t.Label, value: r}}
			}
		}()
		if inj := p.faults.Fire(FaultPointExecute); inj != nil {
			inj.Sleep(ctx.Done())
			if inj.Panicked {
				panic("faults: injected panic at " + FaultPointExecute)
			}
			if inj.Err != nil {
				ch <- outcome{err: fmt.Errorf("svc: job %q: %w", t.Label, inj.Err)}
				return
			}
		}
		res, err := t.Run(ctx)
		ch <- outcome{res: res, err: err}
	}()

	select {
	case out := <-ch:
		return out.res, out.err
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return core.Result{}, fmt.Errorf("svc: job %q: %w", t.Label, ErrTimeout)
		}
		return core.Result{}, fmt.Errorf("svc: job %q: %w", t.Label, ctx.Err())
	}
}
