package svc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sigkern/internal/cache"
	"sigkern/internal/core"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("svc: pool closed")

// ErrTimeout wraps per-job deadline expiries so callers can classify
// them (errors.Is(err, ErrTimeout)).
var ErrTimeout = errors.New("svc: job timed out")

// Task is one unit of work for the pool: a label for diagnostics, an
// optional memoization key, and the function to run. Run receives a
// context that is cancelled on pool shutdown or per-task timeout;
// simulator runs cannot be interrupted mid-flight, so on timeout the
// pool abandons the task (its goroutine finishes in the background and
// the result is discarded) and reports ErrTimeout.
type Task struct {
	Label string
	// MemoKey enables result memoization when non-empty: a hit skips
	// Run entirely, and a successful Run is stored under the key.
	MemoKey string
	Run     func(ctx context.Context) (core.Result, error)
}

// Future is the pending result of a submitted task.
type Future struct {
	done chan struct{}
	res  core.Result
	err  error
	// fromCache is true when the result came from the memo table.
	fromCache bool
	// started is closed when a worker picks the task up.
	started chan struct{}
}

// Wait blocks until the task finishes or ctx is cancelled.
func (f *Future) Wait(ctx context.Context) (core.Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	}
}

// FromCache reports whether the result was served from the memo table.
// Valid only after Wait returns.
func (f *Future) FromCache() bool { return f.fromCache }

// PoolOptions configures a Pool. The zero value is usable: GOMAXPROCS
// workers, a 2-minute per-job timeout, and a 1024-entry memo table.
type PoolOptions struct {
	// Workers is the number of concurrent job slots.
	Workers int
	// JobTimeout bounds one job's execution; <= 0 means 2 minutes.
	JobTimeout time.Duration
	// QueueDepth is the number of tasks that can wait for a worker
	// before Submit blocks (backpressure); <= 0 means 256.
	QueueDepth int
	// MemoCapacity is the memo table size; < 0 disables memoization.
	MemoCapacity int
	// Metrics receives lifecycle events; nil allocates a private one.
	Metrics *Metrics
}

// Pool is a bounded worker pool running simulation tasks with per-job
// timeouts, panic isolation, and optional result memoization. It is
// safe for concurrent use.
type Pool struct {
	opts    PoolOptions
	tasks   chan poolItem
	memo    *cache.Memo[core.Result]
	metrics *Metrics

	// submitMu serializes sends on tasks against Close: Submit sends
	// while holding the read lock, so once Close holds the write lock no
	// new task can slip into the queue behind the drain.
	submitMu sync.RWMutex
	closed   bool
	wg       sync.WaitGroup
	// cancel stops all workers' contexts on Close.
	cancel context.CancelFunc
	ctx    context.Context
}

type poolItem struct {
	task Task
	fut  *Future
}

// NewPool starts a pool with opts.Workers workers.
func NewPool(opts PoolOptions) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 2 * time.Minute
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics()
	}
	p := &Pool{
		opts:    opts,
		tasks:   make(chan poolItem, opts.QueueDepth),
		metrics: opts.Metrics,
	}
	if opts.MemoCapacity >= 0 {
		capacity := opts.MemoCapacity
		if capacity == 0 {
			capacity = 1024
		}
		p.memo = cache.NewMemo[core.Result](capacity)
	}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Workers returns the pool's concurrency.
func (p *Pool) Workers() int { return p.opts.Workers }

// Metrics returns the pool's registry.
func (p *Pool) Metrics() *Metrics { return p.metrics }

// MemoHitRate returns the memo table's hit rate (0 when disabled).
func (p *Pool) MemoHitRate() float64 {
	if p.memo == nil {
		return 0
	}
	return p.memo.HitRate()
}

// Submit enqueues a task and returns its future. It blocks while all
// workers are busy and the queue is full (backpressure), and fails fast
// once the pool is closed.
func (p *Pool) Submit(t Task) (*Future, error) {
	if t.Run == nil {
		return nil, errors.New("svc: task with nil Run")
	}
	p.submitMu.RLock()
	defer p.submitMu.RUnlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	fut := &Future{done: make(chan struct{}), started: make(chan struct{})}
	p.metrics.jobQueued()

	// Serve memo hits synchronously: no worker slot, no queueing delay.
	if p.memo != nil && t.MemoKey != "" {
		if r, ok := p.memo.Get(t.MemoKey); ok {
			p.metrics.cacheHit(r.Cycles)
			p.metrics.jobFinished(false, true, false, false, 0)
			fut.res, fut.fromCache = r, true
			close(fut.started)
			close(fut.done)
			return fut, nil
		}
		p.metrics.cacheMiss()
	}

	// May block when the queue is full (backpressure); workers keep
	// draining because Close cannot cancel them until this send's read
	// lock is released.
	p.tasks <- poolItem{task: t, fut: fut}
	return fut, nil
}

// Close stops accepting tasks, waits for running workers to finish
// their current job, and fails the futures of tasks still queued.
func (p *Pool) Close() {
	p.submitMu.Lock()
	if p.closed {
		p.submitMu.Unlock()
		return
	}
	p.closed = true
	p.submitMu.Unlock()
	p.cancel()
	p.wg.Wait()
	for {
		select {
		case item := <-p.tasks:
			item.fut.err = fmt.Errorf("svc: job %q: %w", item.task.Label, ErrPoolClosed)
			p.metrics.jobFinished(false, false, false, false, 0)
			close(item.fut.started)
			close(item.fut.done)
		default:
			return
		}
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case item := <-p.tasks:
			p.execute(item)
		case <-p.ctx.Done():
			return
		}
	}
}

// execute runs one task with timeout and panic isolation.
func (p *Pool) execute(item poolItem) {
	start := time.Now()
	close(item.fut.started)
	p.metrics.jobStarted()

	ctx, cancel := context.WithTimeout(p.ctx, p.opts.JobTimeout)
	defer cancel()

	type outcome struct {
		res      core.Result
		err      error
		panicked bool
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("svc: job %q panicked: %v", item.task.Label, r), panicked: true}
			}
		}()
		res, err := item.task.Run(ctx)
		ch <- outcome{res: res, err: err}
	}()

	var out outcome
	timedOut := false
	select {
	case out = <-ch:
	case <-ctx.Done():
		// The simulator cannot be interrupted; abandon it. Its goroutine
		// finishes in the background and the buffered channel lets it exit.
		timedOut = errors.Is(ctx.Err(), context.DeadlineExceeded)
		out = outcome{err: fmt.Errorf("svc: job %q: %w", item.task.Label, ErrTimeout)}
		if !timedOut {
			out.err = fmt.Errorf("svc: job %q: %w", item.task.Label, ctx.Err())
		}
	}

	if out.err == nil {
		if p.memo != nil && item.task.MemoKey != "" {
			p.memo.Put(item.task.MemoKey, out.res)
		}
		p.metrics.cyclesRun(out.res.Cycles)
	}
	p.metrics.jobFinished(true, out.err == nil, timedOut, out.panicked, time.Since(start))
	item.fut.res, item.fut.err = out.res, out.err
	close(item.fut.done)
}
