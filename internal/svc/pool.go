package svc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sigkern/internal/cache"
	"sigkern/internal/core"
	"sigkern/internal/faults"
	"sigkern/internal/obs"
	"sigkern/internal/resilience"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("svc: pool closed")

// ErrTimeout wraps per-job deadline expiries so callers can classify
// them (errors.Is(err, ErrTimeout)).
var ErrTimeout = errors.New("svc: job timed out")

// ErrOverloaded is returned by TrySubmit when every worker is busy and
// the queue is full — the load-shedding signal the HTTP layer turns
// into 429 + Retry-After.
var ErrOverloaded = errors.New("svc: overloaded, job shed")

// ErrBudgetExhausted marks work refused — or dropped at worker pickup —
// because the request's remaining deadline budget cannot cover it: the
// client's deadline would expire before the answer could exist, so
// running the job would burn a worker slot for a response nobody is
// waiting for. The HTTP layer serves it as 504 + Retry-After.
var ErrBudgetExhausted = errors.New("svc: deadline budget exhausted")

// ErrDeterminism marks the determinism guard tripping: a simulation
// result disagreed with the memoized result for the same spec hash.
// The simulators are bit-exact, so this is always corruption (an
// injected fault, a memory error, a bug) and is served as a hard error,
// never a silently wrong cycle count.
var ErrDeterminism = errors.New("svc: determinism violation")

// Fault points the pool consults (see internal/faults).
const (
	// FaultPointExecute fires at the start of every execution attempt:
	// transient errors here are absorbed by the retry policy, latency
	// models a slow backend, panics exercise panic isolation.
	FaultPointExecute = "pool.execute"
	// FaultPointMemoGet fires on memo reads: a Corrupt fault damages
	// the served copy, which the determinism guard must catch.
	FaultPointMemoGet = "memo.get"
)

// Task is one unit of work for the pool: a label for diagnostics, an
// optional memoization key, and the function to run. Run receives a
// context that is cancelled on pool shutdown or per-task timeout;
// simulator runs cannot be interrupted mid-flight, so on timeout the
// pool abandons the task (its goroutine finishes in the background and
// the result is discarded) and reports ErrTimeout.
type Task struct {
	Label string
	// MemoKey enables result memoization when non-empty: a hit skips
	// Run entirely, and a successful Run is stored under the key.
	MemoKey string
	// Cell identifies the (machine, kernel) Table 3 cell this task
	// belongs to; per-cell labeled metrics are recorded under it. The
	// zero value records into the unlabeled totals only.
	Cell obs.Labels
	// OnRetry, when set, is called before each re-execution of a task
	// whose previous attempt failed transiently, with the 1-based
	// attempt number about to run and the error that caused the retry.
	// Called from the worker goroutine; must be safe for that.
	OnRetry func(attempt int, err error)
	// Priority selects the admission queue. The zero value is
	// PriorityInteractive: interactive tasks drain first and shed last;
	// batch tasks (PriorityBatch) wait in a second queue that workers
	// only service when no interactive work is pending, and are the
	// first shed under saturation.
	Priority Priority
	// Expires, when non-zero, is the task's deadline-budget expiry: a
	// task still queued past it is failed with ErrBudgetExhausted at
	// worker pickup instead of occupying a slot, and a running task's
	// context deadline is clamped to it.
	Expires time.Time
	Run     func(ctx context.Context) (core.Result, error)

	// Machine, Factory and RunOn together select the machine-reuse
	// execution path: the worker resolves an instance of Machine from
	// its per-worker cache (rewinding it via core.Resettable) or
	// constructs one with Factory on a miss, then invokes RunOn with
	// it. RunOn must be a pure function of the task's spec and the
	// instance — the reuse-sampling determinism guard may execute it a
	// second time on a fresh instance to verify the reused one.
	// Exactly one of Run and RunOn must be set.
	Machine string
	Factory MachineFactory
	// ConfigHash qualifies Machine in the per-worker instance cache:
	// tasks running non-default hardware parameters (config-carrying
	// specs) must never be handed an instance built for a different
	// configuration, so cache entries and reuse-sampling counters are
	// keyed by (Machine, ConfigHash). Empty means paper defaults.
	// Factory must construct instances matching this hash.
	ConfigHash string
	RunOn      func(ctx context.Context, m core.Machine) (core.Result, error)
	// OnStart, when set, is called once from the worker goroutine at
	// pickup, before the first attempt — not per retry, and never for
	// cells answered by the memo or coalescing pre-filter.
	OnStart func()
	// Abort, when non-nil and closed, marks the task's group
	// cancelled: a task still queued is failed with context.Canceled
	// at worker pickup instead of occupying a slot. Running and
	// completed tasks are unaffected — a batch client disconnecting
	// cancels only unstarted cells.
	Abort <-chan struct{}
}

// instanceKey is the per-worker machine-cache key: the machine name
// qualified by the config hash, so instances built under different
// hardware parameters can never be confused. The NUL separator cannot
// occur in either component.
func (t *Task) instanceKey() string { return t.Machine + "\x00" + t.ConfigHash }

// validate checks the task's execution-path invariants before admission.
func (t *Task) validate() error {
	switch {
	case t.Run == nil && t.RunOn == nil:
		return errors.New("svc: task with nil Run")
	case t.Run != nil && t.RunOn != nil:
		return errors.New("svc: task with both Run and RunOn")
	case t.RunOn != nil && (t.Machine == "" || t.Factory == nil):
		return errors.New("svc: RunOn task needs Machine and Factory")
	}
	return nil
}

// Future is the pending result of a submitted task.
type Future struct {
	done chan struct{}
	res  core.Result
	err  error
	// fromCache is true when the result came from the memo table.
	fromCache bool
	// elapsed is the wall-clock execution time (0 for cache hits and
	// never-run tasks).
	elapsed time.Duration
	// started is closed when a worker picks the task up.
	started chan struct{}
}

// Wait blocks until the task finishes or ctx is cancelled.
func (f *Future) Wait(ctx context.Context) (core.Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	}
}

// FromCache reports whether the result was served from the memo table.
// Valid only after Wait returns.
func (f *Future) FromCache() bool { return f.fromCache }

// Elapsed returns the wall-clock time the task spent executing (zero
// for cache hits and tasks that never ran). Valid only after Wait
// returns.
func (f *Future) Elapsed() time.Duration { return f.elapsed }

// PoolOptions configures a Pool. The zero value is usable: GOMAXPROCS
// workers, a 2-minute per-job timeout, a 1024-entry memo table, and the
// default retry policy over transient-classified errors.
type PoolOptions struct {
	// Workers is the number of concurrent job slots.
	Workers int
	// JobTimeout bounds one job's execution including retries; <= 0
	// means 2 minutes.
	JobTimeout time.Duration
	// QueueDepth is the number of tasks that can wait for a worker
	// before Submit blocks (backpressure) and TrySubmit sheds; <= 0
	// means 256.
	QueueDepth int
	// MemoCapacity is the memo table size; < 0 disables memoization.
	MemoCapacity int
	// Metrics receives lifecycle events; nil allocates a private one.
	Metrics *Metrics
	// Retry governs re-execution of attempts that fail with an error
	// classified transient (resilience.IsTransient). The zero value is
	// resilience.DefaultRetry; set MaxAttempts to 1 to disable.
	Retry resilience.RetryPolicy
	// Faults is the fault-injection registry the pool consults; nil
	// means faults.Default() (armed from SIGKERN_FAULTS, usually off).
	Faults *faults.Registry
	// ReuseSampleEvery controls the reuse-sampling determinism guard:
	// every Nth successful execution on a reused machine instance (per
	// worker, per machine, starting with the first) is re-executed on
	// a fresh instance and must reproduce the same cycle count bit for
	// bit; a mismatch is a hard ErrDeterminism and disables instance
	// reuse pool-wide. 0 means the default of 16; negative disables
	// sampling.
	ReuseSampleEvery int
}

// defaultReuseSampleEvery is the reuse-verification sampling interval
// when PoolOptions.ReuseSampleEvery is zero. The first reuse of every
// (worker, machine) instance is always sampled, so a Reset that leaks
// state on every run is caught before a second reused result can ever
// be published.
const defaultReuseSampleEvery = 16

// Pool is a bounded worker pool running simulation tasks with per-job
// timeouts, panic isolation, transient-error retry, and optional result
// memoization guarded for determinism. It is safe for concurrent use.
type Pool struct {
	opts PoolOptions
	// tasks is the interactive admission queue; batch is the second
	// level, serviced only when tasks is empty and shed first under
	// saturation. Each has QueueDepth capacity of its own so a batch
	// backlog can never crowd interactive work out of the queue.
	tasks   chan poolItem
	batch   chan poolItem
	memo    *cache.Memo[core.Result]
	metrics *Metrics
	faults  *faults.Registry

	// inflight coalesces concurrent submissions of the same MemoKey
	// (singleflight): the first registers its future as the leader, and
	// every identical submission until the leader completes attaches to
	// that future instead of queueing a duplicate execution.
	inflightMu sync.Mutex
	inflight   map[string]*Future

	// submitMu serializes sends on tasks against Close: Submit sends
	// while holding the read lock, so once Close holds the write lock no
	// new task can slip into the queue behind the drain.
	submitMu sync.RWMutex
	closed   bool
	// reuseOff quarantines the machine-instance caches: set the moment
	// the reuse-sampling guard observes a cycle mismatch, after which
	// every task gets a fresh factory instance again. One trip costs
	// reuse, never correctness.
	reuseOff atomic.Bool
	wg       sync.WaitGroup
	// cancel stops all workers' contexts on Close.
	cancel context.CancelFunc
	ctx    context.Context
}

type poolItem struct {
	task Task
	fut  *Future
}

// NewPool starts a pool with opts.Workers workers.
func NewPool(opts PoolOptions) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 2 * time.Minute
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics()
	}
	if opts.Faults == nil {
		opts.Faults = faults.Default()
	}
	p := &Pool{
		opts:     opts,
		tasks:    make(chan poolItem, opts.QueueDepth),
		batch:    make(chan poolItem, opts.QueueDepth),
		metrics:  opts.Metrics,
		faults:   opts.Faults,
		inflight: make(map[string]*Future),
	}
	if opts.MemoCapacity >= 0 {
		capacity := opts.MemoCapacity
		if capacity == 0 {
			capacity = 1024
		}
		p.memo = cache.NewMemo[core.Result](capacity)
		if reg := p.faults; reg != nil {
			p.memo.SetCorruptor(func(key string, r core.Result) (core.Result, bool) {
				if inj := reg.Fire(FaultPointMemoGet); inj != nil && inj.Corrupted {
					r.Cycles ^= 0xDEAD
					r.Verified = false
					return r, true
				}
				return r, false
			})
		}
	}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Workers returns the pool's concurrency.
func (p *Pool) Workers() int { return p.opts.Workers }

// Metrics returns the pool's registry.
func (p *Pool) Metrics() *Metrics { return p.metrics }

// QueueDepth returns the number of tasks waiting for a worker across
// both priority queues.
func (p *Pool) QueueDepth() int { return len(p.tasks) + len(p.batch) }

// QueueDepthFor returns the number of tasks waiting in one priority
// class's queue.
func (p *Pool) QueueDepthFor(pr Priority) int {
	if pr == PriorityBatch {
		return len(p.batch)
	}
	return len(p.tasks)
}

// QueueCap returns the interactive queue's capacity — the shed
// threshold for interactive admissions (the batch queue has the same
// capacity of its own).
func (p *Pool) QueueCap() int { return cap(p.tasks) }

// JobTimeout returns the per-job execution deadline.
func (p *Pool) JobTimeout() time.Duration { return p.opts.JobTimeout }

// MemoHas reports whether key has a memoized result — the budget
// fast-reject probe: a memo hit is served in microseconds, so a
// near-spent budget still covers it.
func (p *Pool) MemoHas(key string) bool {
	if p.memo == nil || key == "" {
		return false
	}
	_, ok := p.memo.Peek(key)
	return ok
}

// Faults returns the fault-injection registry the pool consults (nil
// when chaos is off).
func (p *Pool) Faults() *faults.Registry { return p.faults }

// SeedMemo pre-populates the memo table with a known-good result —
// the journal-replay path restoring terminal cycle counts after a
// restart. It reports false (and stores nothing) when an entry with a
// different cycle count is already present: the simulators are
// deterministic, so a conflicting seed is corruption and the caller
// must count it rather than overwrite the truth.
func (p *Pool) SeedMemo(key string, r core.Result) bool {
	if p.memo == nil || key == "" {
		return true
	}
	if prev, ok := p.memo.Peek(key); ok && prev.Cycles != r.Cycles {
		return false
	}
	p.memo.Put(key, r)
	return true
}

// MemoEntries returns a copy of the memo table (nil when memoization
// is disabled) — the state the durability layer folds into journal
// snapshots.
func (p *Pool) MemoEntries() map[string]core.Result {
	if p.memo == nil {
		return nil
	}
	return p.memo.Entries()
}

// MemoHitRate returns the memo table's hit rate (0 when disabled).
func (p *Pool) MemoHitRate() float64 {
	if p.memo == nil {
		return 0
	}
	return p.memo.HitRate()
}

// Submit enqueues a task and returns its future. It blocks while all
// workers are busy and the queue is full (backpressure), and fails fast
// once the pool is closed.
func (p *Pool) Submit(t Task) (*Future, error) { return p.submit(t, true) }

// TrySubmit enqueues a task without blocking: when every worker is busy
// and the queue is full it sheds the task with ErrOverloaded instead of
// queueing unboundedly — the admission-control entry point.
func (p *Pool) TrySubmit(t Task) (*Future, error) { return p.submit(t, false) }

func (p *Pool) submit(t Task, block bool) (*Future, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	p.submitMu.RLock()
	defer p.submitMu.RUnlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	fut, enqueue := p.prepare(t)
	if !enqueue {
		return fut, nil
	}

	queue := p.tasks
	if t.Priority == PriorityBatch {
		queue = p.batch
	}
	if block {
		p.metrics.jobQueued()
		// May block when the queue is full (backpressure); workers keep
		// draining because Close cannot cancel them until this send's read
		// lock is released.
		queue <- poolItem{task: t, fut: fut}
		return fut, nil
	}
	// Saturation sheds batch first: once the interactive queue is three
	// quarters full the remaining capacity belongs to interactive
	// traffic, so a batch admission is refused even though its own
	// queue still has room.
	if t.Priority == PriorityBatch && len(p.tasks)*4 >= cap(p.tasks)*3 {
		return p.shedTask(t, fut)
	}
	select {
	case queue <- poolItem{task: t, fut: fut}:
		p.metrics.jobQueued()
		return fut, nil
	default:
		return p.shedTask(t, fut)
	}
}

// prepare answers the pre-queue half of one admission. A verified memo
// hit or a coalesced attachment to in-flight work completes (or
// returns) the future immediately without occupying a queue slot or a
// worker — enqueue is false. Otherwise the returned future is
// registered as the MemoKey's in-flight leader and the caller must
// queue it or fail it. Called with submitMu read-held.
func (p *Pool) prepare(t Task) (fut *Future, enqueue bool) {
	fut = &Future{done: make(chan struct{}), started: make(chan struct{})}

	// Serve memo hits synchronously: no worker slot, no queueing delay.
	// The served copy is verified against the stored entry (Peek
	// bypasses the corruption hook), so a damaged cache read becomes a
	// hard ErrDeterminism, never a silently wrong cycle count.
	if p.memo != nil && t.MemoKey != "" {
		if r, ok := p.memo.Get(t.MemoKey); ok {
			p.metrics.jobQueued()
			if raw, ok := p.memo.Peek(t.MemoKey); !ok || raw.Cycles != r.Cycles || raw.Verified != r.Verified {
				p.metrics.determinismViolation(t.Cell)
				p.metrics.jobFinished(t.Cell, false, false, false, false, 0)
				fut.err = fmt.Errorf("svc: job %q: memoized result failed verification: %w", t.Label, ErrDeterminism)
				close(fut.started)
				close(fut.done)
				return fut, false
			}
			p.metrics.cacheHit(t.Cell, r.Cycles)
			p.metrics.jobFinished(t.Cell, false, true, false, false, 0)
			fut.res, fut.fromCache = r, true
			close(fut.started)
			close(fut.done)
			return fut, false
		}
		p.metrics.cacheMiss(t.Cell)
	}

	// Coalesce duplicate in-flight work: if an execution for the same
	// MemoKey is already queued or running, attach to its future rather
	// than running the simulator again. The shared execution's lifetime
	// is the pool's (its context derives from p.ctx, never a waiter's),
	// so one waiter cancelling its Wait cannot poison the rest.
	if t.MemoKey != "" {
		p.inflightMu.Lock()
		if leader, ok := p.inflight[t.MemoKey]; ok {
			p.inflightMu.Unlock()
			p.metrics.jobCoalesced(t.Cell)
			return leader, false
		}
		p.inflight[t.MemoKey] = fut
		p.inflightMu.Unlock()
	}
	return fut, true
}

// SubmitBatch admits a group of tasks as one batch. The memo/coalescing
// pre-filter answers cached and duplicate cells synchronously — they
// never occupy a queue slot or a worker — and the remaining cold cells
// are fed to the admission queues in waves: one lock acquisition and
// free-slot scan per wave rather than one send (and one shed decision)
// per task. The returned futures are index-aligned with tasks, and all
// of them eventually complete: cells not yet queued when ctx is
// cancelled fail with ctx.Err(), and queued cells whose Task.Abort
// channel closes are dropped at worker pickup. SubmitBatch itself never
// blocks on queue capacity; the feeder applies backpressure in the
// background.
func (p *Pool) SubmitBatch(ctx context.Context, tasks []Task) ([]*Future, error) {
	for i := range tasks {
		if err := tasks[i].validate(); err != nil {
			return nil, fmt.Errorf("svc: batch cell %d: %w", i, err)
		}
	}
	futs := make([]*Future, len(tasks))
	var pend []poolItem
	p.submitMu.RLock()
	if p.closed {
		p.submitMu.RUnlock()
		return nil, ErrPoolClosed
	}
	for i := range tasks {
		fut, enqueue := p.prepare(tasks[i])
		futs[i] = fut
		if enqueue {
			pend = append(pend, poolItem{task: tasks[i], fut: fut})
		}
	}
	p.submitMu.RUnlock()
	if len(pend) > 0 {
		go p.feedBatch(ctx, pend)
	}
	return futs, nil
}

// feedBatch drains one batch's cold cells into the admission queues in
// waves. Each wave takes the submit lock once and fills every free slot
// without blocking; only when the queue is completely full does it fall
// back to a single blocking send — the same backpressure point Submit
// uses (workers keep draining because Close cannot cancel them until
// the send's read lock is released). Pool close and ctx cancellation
// both terminate the feeder, failing the cells that never reached a
// queue.
func (p *Pool) feedBatch(ctx context.Context, pend []poolItem) {
	queueFor := func(t Task) chan poolItem {
		if t.Priority == PriorityBatch {
			return p.batch
		}
		return p.tasks
	}
	for len(pend) > 0 {
		if err := ctx.Err(); err != nil {
			p.failPending(pend, err)
			return
		}
		p.submitMu.RLock()
		if p.closed {
			p.submitMu.RUnlock()
			p.failPending(pend, ErrPoolClosed)
			return
		}
		sent := 0
	fill:
		for sent < len(pend) {
			select {
			case queueFor(pend[sent].task) <- pend[sent]:
				p.metrics.jobQueued()
				sent++
			default:
				break fill
			}
		}
		if sent == 0 {
			select {
			case queueFor(pend[0].task) <- pend[0]:
				p.metrics.jobQueued()
				sent = 1
			case <-ctx.Done():
				p.submitMu.RUnlock()
				p.failPending(pend, ctx.Err())
				return
			}
		}
		p.submitMu.RUnlock()
		pend = pend[sent:]
	}
}

// failPending fails batch cells that never reached an admission queue.
func (p *Pool) failPending(items []poolItem, cause error) {
	for _, item := range items {
		p.removeFlight(item.task.MemoKey, item.fut)
		item.fut.err = fmt.Errorf("svc: job %q: %w", item.task.Label, cause)
		p.metrics.jobFinished(item.task.Cell, false, false, false, false, 0)
		close(item.fut.started)
		close(item.fut.done)
	}
}

// shedTask refuses one non-blocking admission with ErrOverloaded. The
// registered flight will never execute, so its future is failed too — a
// duplicate submission may have attached to it in the window since
// registration, and it must see the shed rather than wait forever.
func (p *Pool) shedTask(t Task, fut *Future) (*Future, error) {
	p.removeFlight(t.MemoKey, fut)
	fut.err = fmt.Errorf("svc: job %q: %w", t.Label, ErrOverloaded)
	close(fut.started)
	close(fut.done)
	p.metrics.loadShed(t.Priority)
	return nil, fut.err
}

// removeFlight unregisters fut as the in-flight execution for key, if
// it still is; callers do this before completing the future so later
// submissions start fresh instead of attaching to finished work.
func (p *Pool) removeFlight(key string, fut *Future) {
	if key == "" {
		return
	}
	p.inflightMu.Lock()
	if p.inflight[key] == fut {
		delete(p.inflight, key)
	}
	p.inflightMu.Unlock()
}

// Close stops accepting tasks, waits for running workers to finish
// their current job, and fails the futures of tasks still queued.
func (p *Pool) Close() {
	p.submitMu.Lock()
	if p.closed {
		p.submitMu.Unlock()
		return
	}
	p.closed = true
	p.submitMu.Unlock()
	p.cancel()
	p.wg.Wait()
	for _, queue := range []chan poolItem{p.tasks, p.batch} {
	drain:
		for {
			select {
			case item := <-queue:
				item.fut.err = fmt.Errorf("svc: job %q: %w", item.task.Label, ErrPoolClosed)
				p.metrics.jobFinished(item.task.Cell, false, false, false, false, 0)
				p.removeFlight(item.task.MemoKey, item.fut)
				close(item.fut.started)
				close(item.fut.done)
			default:
				break drain
			}
		}
	}
}

// workerState is one worker's private execution state: the machine
// instance cache (simulator instances keyed by machine name plus config
// hash — see Task.instanceKey — reused
// across jobs so a 1,000-cell grid pays construction once per worker
// and machine instead of once per cell) and the per-machine counters
// that drive reuse-determinism sampling. Owned by the worker goroutine
// and never shared, so reuse needs no locking — with one hazard: an
// abandoned attempt (timeout) keeps running on its instance in the
// background, so that entry is evicted rather than handed to the next
// task.
type workerState struct {
	machines map[string]core.Machine
	reuses   map[string]uint64
}

func newWorkerState() *workerState {
	return &workerState{
		machines: make(map[string]core.Machine),
		reuses:   make(map[string]uint64),
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	ws := newWorkerState()
	for {
		// Strict priority: drain every pending interactive task before
		// even looking at the batch queue.
		select {
		case item := <-p.tasks:
			p.execute(item, ws)
			continue
		case <-p.ctx.Done():
			return
		default:
		}
		select {
		case item := <-p.tasks:
			p.execute(item, ws)
		case item := <-p.batch:
			p.execute(item, ws)
		case <-p.ctx.Done():
			return
		}
	}
}

// panicError reports a recovered task panic; it is never transient.
type panicError struct {
	label string
	value any
}

func (e *panicError) Error() string {
	return fmt.Sprintf("svc: job %q panicked: %v", e.label, e.value)
}

// execute runs one task with timeout, panic isolation, transient-error
// retry, and the determinism guard over the memo table.
func (p *Pool) execute(item poolItem, ws *workerState) {
	start := time.Now()
	// A task whose deadline budget ran out while it waited is dropped
	// at pickup: the client's deadline has already passed, so running
	// the simulator would burn a worker slot on an answer nobody is
	// waiting for — exactly what the budget exists to prevent.
	if !item.task.Expires.IsZero() && start.After(item.task.Expires) {
		p.metrics.expiredDropped()
		p.removeFlight(item.task.MemoKey, item.fut)
		item.fut.err = fmt.Errorf("svc: job %q: expired in queue: %w", item.task.Label, ErrBudgetExhausted)
		p.metrics.jobFinished(item.task.Cell, false, false, false, false, 0)
		close(item.fut.started)
		close(item.fut.done)
		return
	}
	// A cell of a cancelled batch is dropped at pickup the same way:
	// the group's client is gone, so only cells that already started
	// run to completion.
	if item.task.Abort != nil {
		select {
		case <-item.task.Abort:
			p.removeFlight(item.task.MemoKey, item.fut)
			item.fut.err = fmt.Errorf("svc: job %q: batch cancelled in queue: %w", item.task.Label, context.Canceled)
			p.metrics.jobFinished(item.task.Cell, false, false, false, false, 0)
			close(item.fut.started)
			close(item.fut.done)
			return
		default:
		}
	}
	close(item.fut.started)
	p.metrics.jobStarted()
	if item.task.OnStart != nil {
		item.task.OnStart()
	}

	timeout := p.opts.JobTimeout
	if !item.task.Expires.IsZero() {
		// Clamp the running deadline to the remaining budget: when it
		// expires mid-run the uninterruptible simulator is abandoned
		// (ErrTimeout) and the slot freed, same as a per-job timeout.
		if until := time.Until(item.task.Expires); until < timeout {
			timeout = until
		}
	}
	ctx, cancel := context.WithTimeout(p.ctx, timeout)
	defer cancel()

	var res core.Result
	var attempt int
	var lastErr error
	var reused bool
	attempts, err := p.opts.Retry.Do(ctx, func(ctx context.Context) error {
		attempt++
		if attempt > 1 && item.task.OnRetry != nil {
			item.task.OnRetry(attempt, lastErr)
		}
		r, onReused, aerr := p.runAttempt(ctx, item.task, ws)
		if aerr == nil {
			res = r
			reused = onReused
		}
		lastErr = aerr
		return aerr
	})
	if attempts > 1 {
		p.metrics.jobRetried(item.task.Cell, uint64(attempts-1))
	}
	// The per-job context's only cancellation path (as opposed to
	// deadline) is pool shutdown, so report abandoned in-flight work as
	// ErrPoolClosed — same as tasks still queued at Close.
	if errors.Is(err, context.Canceled) {
		err = fmt.Errorf("svc: job %q: %w", item.task.Label, ErrPoolClosed)
	}

	var pe *panicError
	panicked := errors.As(err, &pe)
	timedOut := errors.Is(err, ErrTimeout)

	// Reuse-sampling determinism guard: a sampled cell served by a
	// reused instance is re-executed on a fresh factory instance and the
	// two cycle counts compared bit for bit. The paper machines rewind
	// completely (every kernel entry resets), so a mismatch means a
	// Reset that leaked state — surfaced as a hard ErrDeterminism, with
	// reuse quarantined pool-wide, never a silently wrong number.
	if err == nil && reused && p.sampleReuse(ws, item.task.instanceKey()) {
		if verr := p.verifyReuse(ctx, item.task, res); verr != nil {
			err = verr
			p.reuseOff.Store(true)
			p.evictMachine(ws, item.task.instanceKey())
		}
	}

	if err == nil && p.memo != nil && item.task.MemoKey != "" {
		// Determinism guard: a re-executed (possibly retried) job must
		// reproduce the memoized cycle count for its spec hash bit for
		// bit. The simulators are deterministic, so a mismatch is
		// corruption and is surfaced as a hard error.
		if prev, ok := p.memo.Peek(item.task.MemoKey); ok && prev.Cycles != res.Cycles {
			p.metrics.determinismViolation(item.task.Cell)
			err = fmt.Errorf("svc: job %q: ran to %d cycles but %d are memoized for the same spec: %w",
				item.task.Label, res.Cycles, prev.Cycles, ErrDeterminism)
		} else {
			p.memo.Put(item.task.MemoKey, res)
		}
	}
	if err == nil {
		p.metrics.cyclesRun(res.Cycles)
	}
	elapsed := time.Since(start)
	p.metrics.jobFinished(item.task.Cell, true, err == nil, timedOut, panicked, elapsed)
	if err != nil {
		res = core.Result{}
	}
	// Unregister the flight before publishing the result: once the memo
	// holds the result (above), later submissions are cache hits; in the
	// narrow window between, a fresh execution is correct, a stale
	// attachment is not.
	p.removeFlight(item.task.MemoKey, item.fut)
	item.fut.res, item.fut.err, item.fut.elapsed = res, err, elapsed
	close(item.fut.done)
}

// runAttempt executes one try of the task with panic isolation,
// consulting the execute fault point. The simulator cannot be
// interrupted mid-flight: when ctx ends first the attempt is abandoned
// (its goroutine finishes in the background, the buffered channel lets
// it exit) and the deadline is reported as ErrTimeout. reused reports
// whether a RunOn attempt executed on a cached machine instance.
func (p *Pool) runAttempt(ctx context.Context, t Task, ws *workerState) (core.Result, bool, error) {
	var m core.Machine
	var reused bool
	if t.RunOn != nil {
		var err error
		m, reused, err = p.resolveMachine(t, ws)
		if err != nil {
			return core.Result{}, false, fmt.Errorf("svc: job %q: %w", t.Label, err)
		}
	}
	type outcome struct {
		res core.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: &panicError{label: t.Label, value: r}}
			}
		}()
		if inj := p.faults.Fire(FaultPointExecute); inj != nil {
			inj.Sleep(ctx.Done())
			if inj.Panicked {
				panic("faults: injected panic at " + FaultPointExecute)
			}
			if inj.Err != nil {
				ch <- outcome{err: fmt.Errorf("svc: job %q: %w", t.Label, inj.Err)}
				return
			}
		}
		var res core.Result
		var err error
		if t.RunOn != nil {
			res, err = t.RunOn(ctx, m)
		} else {
			res, err = t.Run(ctx)
		}
		ch <- outcome{res: res, err: err}
	}()

	select {
	case out := <-ch:
		if t.RunOn != nil {
			if out.err == nil {
				p.cacheMachine(ws, t.instanceKey(), m)
			} else {
				// A failed or panicked attempt leaves the instance in an
				// unknown state; drop it rather than hand it to the next
				// task.
				p.evictMachine(ws, t.instanceKey())
			}
		}
		return out.res, reused, out.err
	case <-ctx.Done():
		if t.RunOn != nil {
			// The abandoned attempt keeps running on m in the
			// background; the instance must never be reused while
			// another goroutine may still be mutating it.
			p.evictMachine(ws, t.instanceKey())
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return core.Result{}, reused, fmt.Errorf("svc: job %q: %w", t.Label, ErrTimeout)
		}
		return core.Result{}, reused, fmt.Errorf("svc: job %q: %w", t.Label, ctx.Err())
	}
}

// resolveMachine hands the attempt a simulator instance: the worker's
// cached one (rewound via core.Resettable) when it has run this machine
// before, a freshly constructed one otherwise. Instances that do not
// implement core.Resettable are never cached — those machines are
// rebuilt per job exactly as before the cache existed — and once the
// reuse quarantine has tripped every task gets a fresh instance.
func (p *Pool) resolveMachine(t Task, ws *workerState) (core.Machine, bool, error) {
	key := t.instanceKey()
	if cached, ok := ws.machines[key]; ok && !p.reuseOff.Load() {
		if r, isReset := cached.(core.Resettable); isReset {
			r.Reset()
			p.metrics.machineReused()
			return cached, true, nil
		}
		delete(ws.machines, key)
	}
	m, err := t.Factory(t.Machine)
	if err != nil {
		return nil, false, err
	}
	p.metrics.machineBuilt()
	return m, false, nil
}

// cacheMachine stores a cleanly used instance for the next job on this
// worker under its (machine, config-hash) key; non-Resettable machines
// and quarantined pools skip the cache.
func (p *Pool) cacheMachine(ws *workerState, key string, m core.Machine) {
	if p.reuseOff.Load() {
		return
	}
	if _, ok := m.(core.Resettable); ok {
		ws.machines[key] = m
	}
}

// evictMachine drops a worker's cached instance whose state is no
// longer trustworthy (abandoned attempt, failed run, determinism trip).
func (p *Pool) evictMachine(ws *workerState, key string) {
	if _, ok := ws.machines[key]; ok {
		delete(ws.machines, key)
		p.metrics.machineEvicted()
	}
}

// sampleReuse deterministically picks reused-instance executions for
// fresh-instance verification: per worker and (machine, config-hash)
// instance, the first reuse and every ReuseSampleEvery-th after it — so
// a config-varying batch samples each configuration's instances
// independently.
func (p *Pool) sampleReuse(ws *workerState, key string) bool {
	every := p.opts.ReuseSampleEvery
	if every < 0 {
		return false
	}
	if every == 0 {
		every = defaultReuseSampleEvery
	}
	n := ws.reuses[key]
	ws.reuses[key] = n + 1
	return n%uint64(every) == 0
}

// verifyReuse re-executes the task on a fresh factory instance and
// compares simulated cycles with the reused-instance result. Only a
// cycle mismatch fails the job; a factory error or a failed fresh run
// is inconclusive and changes nothing — the retry policy and the memo
// guard still protect the primary result. RunOn is documented pure, so
// re-invoking it performs no duplicate side effects.
func (p *Pool) verifyReuse(ctx context.Context, t Task, got core.Result) error {
	p.metrics.reuseChecked()
	fresh, err := t.Factory(t.Machine)
	if err != nil {
		return nil
	}
	var vres core.Result
	verr := func() (rerr error) {
		defer func() {
			if r := recover(); r != nil {
				rerr = &panicError{label: t.Label, value: r}
			}
		}()
		var e error
		vres, e = t.RunOn(ctx, fresh)
		return e
	}()
	if verr != nil {
		return nil
	}
	if vres.Cycles != got.Cycles {
		p.metrics.determinismViolation(t.Cell)
		return fmt.Errorf("svc: job %q: reused instance ran to %d cycles but a fresh instance runs to %d: %w",
			t.Label, got.Cycles, vres.Cycles, ErrDeterminism)
	}
	return nil
}
