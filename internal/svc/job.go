// Package svc is the simulation service layer between the machine
// models and every front end: a typed simulation-job model, a bounded
// worker pool with per-job timeouts and panic isolation, a result
// memoization table keyed by a canonical hash of the job spec, and an
// in-process metrics registry. Command simserved exposes it over HTTP;
// cmd/sweep and cmd/sigstudy route their batch execution through the
// same pool so sweeps run machine-parallel instead of serially.
package svc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/machines"
	"sigkern/internal/obs"
	"sigkern/internal/roofline"
)

// JobSpec names one simulation: a machine, a kernel, and the workload to
// run it on. A nil Workload means the paper workload. The spec is the
// unit of memoization: two specs with the same canonical hash are the
// same simulation and the second is served from cache.
type JobSpec struct {
	Machine string        `json:"machine"`
	Kernel  core.KernelID `json:"kernel"`
	// Workload overrides the paper workload when present. Only the spec
	// of the requested kernel matters for the run, but the whole
	// workload participates in the hash so normalization stays simple.
	Workload *core.Workload `json:"workload,omitempty"`
	// Config overrides the machine's hardware parameters when present (a
	// machines.ConfigSet-shaped delta; partial sections merge over paper
	// defaults at decode time). It participates in the canonical hash,
	// so two specs differing only in hardware are different jobs.
	// Normalize reduces it to canonical form — sections equal to the
	// paper default are dropped and only the section for this spec's
	// machine is kept — so a spec with no override, or one spelling out
	// the defaults, hashes byte-identically to a legacy spec.
	Config *machines.ConfigSet `json:"config,omitempty"`
}

// ConfigHash returns the identity hash of the spec's config override:
// machines.ConfigSet.Hash of the override, or the empty string when the
// spec runs paper defaults. It keys the per-worker machine-reuse cache
// alongside the machine name, so a reused instance can never carry the
// wrong hardware parameters.
func (s JobSpec) ConfigHash() string {
	if s.Config == nil {
		return ""
	}
	return s.Config.Hash()
}

// Normalize validates the spec against the known machines and kernels
// and fills in the paper workload, so that hashing and execution see
// one canonical form.
func (s JobSpec) Normalize() (JobSpec, error) {
	// Name-only validation: constructing a machine allocates simulator
	// state (caches, DRAM banks), which the submission hot path — every
	// request, including memo hits — must not pay.
	if err := machines.Valid(s.Machine); err != nil {
		return JobSpec{}, err
	}
	valid := false
	for _, k := range core.Kernels() {
		if s.Kernel == k {
			valid = true
			break
		}
	}
	if !valid {
		return JobSpec{}, fmt.Errorf("svc: unknown kernel %q (want one of %v)", s.Kernel, core.Kernels())
	}
	if s.Workload == nil {
		w := core.PaperWorkload()
		s.Workload = &w
	}
	if err := s.Workload.Validate(); err != nil {
		return JobSpec{}, err
	}
	if s.Config != nil {
		if err := s.Config.Validate(); err != nil {
			return JobSpec{}, fmt.Errorf("svc: config override: %w", err)
		}
		canon := s.Config.Canonical()
		// Keep only the section this spec's machine reads: overrides for
		// other machines cannot change the result, so they must not
		// change the identity either.
		var kept machines.ConfigSet
		switch s.Machine {
		case "PPC", "AltiVec":
			kept.PPC = canon.PPC
		case "VIRAM":
			kept.VIRAM = canon.VIRAM
		case "Imagine":
			kept.Imagine = canon.Imagine
		case "Raw":
			kept.Raw = canon.Raw
		}
		if kept.Empty() {
			s.Config = nil
		} else {
			s.Config = &kept
		}
	}
	return s, nil
}

// Hash returns the canonical hash of the spec: SHA-256 over its JSON
// encoding (struct fields marshal in declaration order, so the encoding
// is deterministic). The spec should be normalized first so that an
// explicit paper workload and an omitted one hash identically.
func (s JobSpec) Hash() (string, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("svc: hashing job spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// State is a job's lifecycle position.
type State string

// The job lifecycle: Queued -> Running -> one of the terminal states.
// Cache hits go straight from Queued to Done.
const (
	Queued  State = "queued"
	Running State = "running"
	Done    State = "done"
	Failed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed }

// Job is one tracked simulation request. Fields are snapshots: the
// service hands out copies, never its internal pointer.
type Job struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
	// Hash is the canonical spec hash (the memoization key).
	Hash string `json:"hash"`
	// IdemKey is the idempotency key the job was admitted under (the
	// Idempotency-Key header, or the spec hash when the service is
	// durable): resubmitting it returns this job instead of new work.
	IdemKey string `json:"idempotency_key,omitempty"`
	State   State  `json:"state"`
	// Tier records which quality tier answered the job: "simulate" for
	// the pool-run bit-deterministic simulation, "estimate" for the
	// synchronous analytic roofline bound. Jobs journaled before tiers
	// existed replay with an empty Tier, which reads as simulate.
	// ?tier=auto is resolved before the job exists, so "auto" never
	// appears here.
	Tier Tier `json:"tier,omitempty"`
	// Priority is the admission class the job was submitted under
	// (empty reads as interactive, the default).
	Priority Priority `json:"priority,omitempty"`
	// Degraded is true when this answer was served from the estimate
	// tier because the brownout controller was engaged — the client
	// asked ?tier=auto for a simulation and got the analytic bound
	// instead. Responses also carry an X-Degraded: brownout header.
	Degraded bool `json:"degraded,omitempty"`
	// FromCache is true when the result was served from the memo table
	// without running the simulator.
	FromCache bool         `json:"from_cache,omitempty"`
	Result    *core.Result `json:"result,omitempty"`
	// Estimate carries the full analytic breakdown (compute bound,
	// memory bound, intensity) on estimate-tier jobs; nil on simulated
	// ones.
	Estimate  *roofline.Estimate `json:"estimate,omitempty"`
	Error     string             `json:"error,omitempty"`
	Submitted time.Time          `json:"submitted"`
	Started   time.Time          `json:"started"`
	Finished  time.Time          `json:"finished"`
	// Trace is the job's span-style lifecycle record: timestamped
	// accepted/queued/started/retried/terminal transitions, served by
	// GET /v1/jobs/{id}/trace and persisted in journal snapshots so it
	// survives a restart. Job-list snapshots omit it.
	Trace []obs.Event `json:"trace,omitempty"`
	// interrupted marks a job whose failure was the process shutting
	// down (ErrPoolClosed), not the work itself: the durability layer
	// journals no terminal state for it and snapshots it as still
	// queued, so a restart re-enqueues it instead of replaying a
	// failure the client never caused.
	interrupted bool
	// groupCommit marks a member of a batch group: its post-acceptance
	// journal appends skip the per-record fsync and ride the group's
	// amortized Sync instead (see journalEventLocked).
	groupCommit bool
}

// clone returns a copy safe to hand outside the registry lock: the
// trace slice is deep-copied (withTrace) or dropped, so a later append
// under the lock can never share memory with a caller's snapshot.
func (j *Job) clone(withTrace bool) Job {
	cp := *j
	cp.Trace = nil
	if withTrace && len(j.Trace) > 0 {
		cp.Trace = append([]obs.Event(nil), j.Trace...)
	}
	return cp
}

// Latency returns the queue-to-finish duration for terminal jobs and 0
// otherwise.
func (j Job) Latency() time.Duration {
	if !j.State.Terminal() || j.Finished.IsZero() {
		return 0
	}
	return j.Finished.Sub(j.Submitted)
}

// MachineFactory constructs a fresh machine instance by name. The
// machine models are stateful and not safe for concurrent use, so every
// job gets its own instance. The default factory is machines.ByName
// (paper configurations).
type MachineFactory func(name string) (core.Machine, error)

// runSpec executes a normalized spec on a fresh machine from factory.
func runSpec(factory MachineFactory, spec JobSpec) (core.Result, error) {
	m, err := factory(spec.Machine)
	if err != nil {
		return core.Result{}, err
	}
	return core.Run(m, spec.Kernel, *spec.Workload)
}
