package svc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/machines"
)

// TestDSEExpand pins the expansion contract: deltas first, then the
// axes' row-major cross product, base-only when neither is given, and
// Indices relabeling for the gateway split.
func TestDSEExpand(t *testing.T) {
	base := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}

	t.Run("empty is the base point", func(t *testing.T) {
		designs, err := DSERequest{Base: base}.Expand()
		if err != nil {
			t.Fatal(err)
		}
		if len(designs) != 1 || designs[0].Label != "base" || designs[0].Spec.Config != nil {
			t.Fatalf("designs = %+v", designs)
		}
	})

	t.Run("axes cross row-major", func(t *testing.T) {
		req := DSERequest{Base: base, Axes: []DSEAxis{
			{Param: "viram.Lanes", Values: []int{4, 8}},
			{Param: "viram.MVL", Values: []int{32, 64, 128}},
		}}
		designs, err := req.Expand()
		if err != nil {
			t.Fatal(err)
		}
		if len(designs) != 6 {
			t.Fatalf("point count = %d, want 6", len(designs))
		}
		// First axis slowest: lanes=4 covers the first three points.
		if designs[0].Label != "viram.Lanes=4 viram.MVL=32" {
			t.Fatalf("label[0] = %q", designs[0].Label)
		}
		if designs[5].Label != "viram.Lanes=8 viram.MVL=128" {
			t.Fatalf("label[5] = %q", designs[5].Label)
		}
		for i, d := range designs {
			if d.Index != i {
				t.Fatalf("index[%d] = %d", i, d.Index)
			}
			if d.Spec.Config == nil || d.Spec.Config.VIRAM == nil {
				t.Fatalf("point %d has no VIRAM section", i)
			}
		}
		// The axis expansion scales the co-dependent parameters, not just
		// the named field.
		cfg := designs[0].Spec.Config.VIRAM
		if cfg.Lanes != 4 || cfg.FPLanes != 4 || cfg.DRAM.SeqWordsPerCycle != 4 || cfg.DRAM.AddrGens != 2 {
			t.Fatalf("lanes=4 expansion = %+v", cfg)
		}
		if cfg.MVL != 32 {
			t.Fatalf("MVL = %d, want 32", cfg.MVL)
		}
	})

	t.Run("deltas precede axes and Indices relabel", func(t *testing.T) {
		req := DSERequest{
			Base:    base,
			Deltas:  []machines.ConfigSet{{}},
			Axes:    []DSEAxis{{Param: "viram.MVL", Values: []int{128}}},
			Indices: []int{7, 9},
		}
		designs, err := req.Expand()
		if err != nil {
			t.Fatal(err)
		}
		if len(designs) != 2 || designs[0].Index != 7 || designs[1].Index != 9 {
			t.Fatalf("designs = %+v", designs)
		}
		if designs[0].Spec.Config != nil {
			t.Fatalf("empty delta kept a config: %+v", designs[0].Spec.Config)
		}
		if _, err := (DSERequest{Base: base, Indices: []int{1, 2}}).Expand(); err == nil {
			t.Fatal("mismatched Indices length accepted")
		}
	})

	t.Run("errors", func(t *testing.T) {
		if _, err := (DSERequest{Base: base, Axes: []DSEAxis{{Param: "viram.Stride", Values: []int{1}}}}).Expand(); err == nil || !strings.Contains(err.Error(), "unknown sweep axis") {
			t.Fatalf("unknown axis error = %v", err)
		}
		if _, err := (DSERequest{Base: base, Axes: []DSEAxis{{Param: "viram.Lanes"}}}).Expand(); err == nil || !strings.Contains(err.Error(), "no values") {
			t.Fatalf("empty axis error = %v", err)
		}
		if _, err := (DSERequest{Base: base, Axes: []DSEAxis{{Param: "viram.Lanes", Values: []int{0}}}}).Expand(); err == nil {
			t.Fatal("lanes=0 accepted")
		}
		// The cap must trip in O(axes), before the cross product is
		// materialized: three 100-value axes nominally expand to 10^6.
		big := make([]int, 100)
		for i := range big {
			big[i] = i + 1
		}
		over := DSERequest{Base: base, Axes: []DSEAxis{
			{Param: "viram.Lanes", Values: big},
			{Param: "viram.MVL", Values: big},
			{Param: "imagine.Clusters", Values: big},
		}}
		if _, err := over.Expand(); !errors.Is(err, ErrDSETooLarge) {
			t.Fatalf("oversize error = %v", err)
		}
	})
}

// TestParetoFrontier pins dominance: a point survives unless another is
// at least as good on both coordinates and strictly better on one.
func TestParetoFrontier(t *testing.T) {
	pts := []DSEFrontierPoint{
		{Index: 0, Cycles: 100, Area: 10},
		{Index: 1, Cycles: 80, Area: 20},  // frontier
		{Index: 2, Cycles: 90, Area: 25},  // dominated by 1
		{Index: 3, Cycles: 100, Area: 15}, // dominated by 0
		{Index: 4, Cycles: 60, Area: 40},  // frontier
	}
	got := ParetoFrontier(pts)
	want := []int{0, 1, 4} // sorted by ascending area
	if len(got) != len(want) {
		t.Fatalf("frontier = %+v", got)
	}
	for i, idx := range want {
		if got[i].Index != idx {
			t.Fatalf("frontier[%d].Index = %d, want %d (%+v)", i, got[i].Index, idx, got)
		}
	}
	// Exact ties on both coordinates all survive.
	ties := ParetoFrontier([]DSEFrontierPoint{{Index: 0, Cycles: 5, Area: 5}, {Index: 1, Cycles: 5, Area: 5}})
	if len(ties) != 2 {
		t.Fatalf("tied points = %+v", ties)
	}
	if ParetoFrontier(nil) != nil {
		t.Fatal("empty frontier not nil")
	}
}

// postDSE posts a DSERequest and returns the response; the caller owns
// resp.Body.
func postDSE(t *testing.T, url string, req DSERequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/dse", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readDSEStream decodes a /v1/dse NDJSON response into its point lines
// plus the final summary.
func readDSEStream(t *testing.T, body io.Reader) (points []DSEPoint, sum DSESummary) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	sawSummary := false
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if sawSummary {
			t.Fatalf("line after summary: %s", raw)
		}
		var probe struct {
			Index  *int `json:"index"`
			Points *int `json:"points"`
			Done   bool `json:"done"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", raw, err)
		}
		if probe.Points != nil && probe.Index == nil {
			if err := json.Unmarshal(raw, &sum); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		var pt DSEPoint
		if err := json.Unmarshal(raw, &pt); err != nil {
			t.Fatalf("bad point line %q: %v", raw, err)
		}
		points = append(points, pt)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return points, sum
}

// TestHTTPDSEBaseMatchesPaperCell is the acceptance identity: an
// exploration with no deltas and no axes runs exactly the base spec,
// and for a default base its cycles are bit-identical to the paper
// cell /v1/tables/3 reports.
func TestHTTPDSEBaseMatchesPaperCell(t *testing.T) {
	_, srv := newTestServer(t)

	resp := postDSE(t, srv.URL, DSERequest{Base: JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-DSE-Points"); got != "1" {
		t.Fatalf("X-DSE-Points = %q", got)
	}
	points, sum := readDSEStream(t, resp.Body)
	if len(points) != 1 || sum.Points != 1 || sum.Failed != 0 {
		t.Fatalf("points %+v summary %+v", points, sum)
	}
	pt := points[0]
	if pt.State != Done || pt.Label != "base" || pt.Config != nil {
		t.Fatalf("point = %+v", pt)
	}

	var td TableData
	getJSON(t, srv.URL+"/v1/tables/3", &td)
	want := td.Cycles["VIRAM"][core.CornerTurn]
	if want == 0 || pt.Cycles != want {
		t.Fatalf("dse cycles = %d, table 3 cell = %d", pt.Cycles, want)
	}
	if len(sum.Frontier) != 1 || sum.Frontier[0].Cycles != want {
		t.Fatalf("frontier = %+v", sum.Frontier)
	}
}

// TestHTTPDSELanesSweep is the acceptance sweep: VIRAM lanes 2/4/8/16
// over the paper corner turn returns four distinct, monotonically
// improving cycle counts, a non-empty frontier, and — because the
// lanes=8 point is the paper default — a config that normalizes away
// entirely, making that point hash-identical to a legacy spec.
func TestHTTPDSELanesSweep(t *testing.T) {
	_, srv := newTestServer(t)

	// Prime the memo with the legacy (config-free) spec: if the lanes=8
	// point's identity really collapses to it, the sweep serves that
	// point from cache.
	legacy, _ := json.Marshal(JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn})
	jresp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	var legacyJob Job
	if err := json.NewDecoder(jresp.Body).Decode(&legacyJob); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if legacyJob.State != Done || legacyJob.Result == nil {
		t.Fatalf("legacy job = %+v", legacyJob)
	}

	resp := postDSE(t, srv.URL, DSERequest{
		Base: JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn},
		Axes: []DSEAxis{{Param: "viram.Lanes", Values: []int{2, 4, 8, 16}}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	points, sum := readDSEStream(t, resp.Body)
	if len(points) != 4 || sum.Failed != 0 {
		t.Fatalf("points %d failed %d", len(points), sum.Failed)
	}
	byIndex := make(map[int]DSEPoint, 4)
	for _, pt := range points {
		if pt.State != Done {
			t.Fatalf("point %+v not done", pt)
		}
		byIndex[pt.Index] = pt
	}
	var prev uint64
	for i := 0; i < 4; i++ {
		pt, ok := byIndex[i]
		if !ok {
			t.Fatalf("missing point %d", i)
		}
		if i > 0 && pt.Cycles >= prev {
			t.Fatalf("cycles not strictly improving at %s: %d then %d", pt.Label, prev, pt.Cycles)
		}
		prev = pt.Cycles
		if pt.Area <= 0 || pt.AreaDesc == "" {
			t.Fatalf("point %s has no area proxy: %+v", pt.Label, pt)
		}
	}
	// Lanes=8 is the paper part: its delta cancels against the defaults,
	// so the point carries no config, matches the legacy run bit for
	// bit, and was served from its memo entry.
	p8 := byIndex[2]
	if p8.Config != nil {
		t.Fatalf("lanes=8 config survived normalization: %+v", p8.Config)
	}
	if p8.Cycles != legacyJob.Result.Cycles {
		t.Fatalf("lanes=8 cycles %d != legacy %d", p8.Cycles, legacyJob.Result.Cycles)
	}
	if !p8.FromCache {
		t.Fatal("lanes=8 point missed the legacy memo entry")
	}
	if len(sum.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	// The frontier is sorted by ascending area and never dominated.
	for i := 1; i < len(sum.Frontier); i++ {
		if sum.Frontier[i].Area < sum.Frontier[i-1].Area {
			t.Fatalf("frontier not sorted by area: %+v", sum.Frontier)
		}
		if sum.Frontier[i].Cycles >= sum.Frontier[i-1].Cycles {
			t.Fatalf("frontier point dominated: %+v", sum.Frontier)
		}
	}
}

// TestHTTPDSEErrors pins the endpoint's refusal statuses.
func TestHTTPDSEErrors(t *testing.T) {
	_, srv := newTestServer(t)

	t.Run("unknown axis is 400", func(t *testing.T) {
		resp := postDSE(t, srv.URL, DSERequest{
			Base: JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn},
			Axes: []DSEAxis{{Param: "viram.Bogus", Values: []int{1}}},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("over the point cap is 413", func(t *testing.T) {
		vals := make([]int, MaxDSEPoints+1)
		for i := range vals {
			vals[i] = i + 1
		}
		resp := postDSE(t, srv.URL, DSERequest{
			Base: JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn},
			Axes: []DSEAxis{{Param: "viram.MVL", Values: vals}},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", resp.StatusCode)
		}
	})

	t.Run("bad base machine is 400 with the point label", func(t *testing.T) {
		resp := postDSE(t, srv.URL, DSERequest{Base: JobSpec{Machine: "Pentium", Kernel: core.CornerTurn}})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		var pe ParamError
		if err := json.NewDecoder(resp.Body).Decode(&pe); err != nil {
			t.Fatal(err)
		}
		if pe.Parameter != "point" || pe.Value != "base" {
			t.Fatalf("ParamError = %+v", pe)
		}
	})

	t.Run("unknown body field is 400", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/v1/dse", "application/json",
			strings.NewReader(`{"base":{"machine":"VIRAM","kernel":"corner-turn"},"axess":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}
