package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"sigkern/internal/machines"
)

// ErrDSETooLarge reports an exploration expanding past MaxDSEPoints;
// the HTTP layers map it to 413.
var ErrDSETooLarge = errors.New("svc: exploration exceeds the point cap")

// MaxDSEPoints caps one design-space exploration's expanded point
// count — the 413 threshold of POST /v1/dse. It is deliberately far
// below MaxBatchCells: a sweep's value is a readable frontier, and the
// pool admission still treats the fan-out as one batch group.
const MaxDSEPoints = 512

// DSEAxis is one named sweep dimension of a design-space exploration:
// a hardware parameter and the values to try. Axes are conveniences
// over raw config deltas — each value expands to a semantically
// complete ConfigSet delta, scaling the co-dependent parameters a
// naive single-field override would miss (a VIRAM lane scales its FP
// datapath and its share of DRAM address/data bandwidth with it).
// Multiple axes form a cross product, in request order; when two axes
// write the same field the later axis wins.
type DSEAxis struct {
	// Param names the swept parameter; see dseAxisDefs for the
	// supported set ("viram.Lanes", "viram.MVL", "imagine.Clusters",
	// "raw.Mesh", "ppc.IssueWidth").
	Param string `json:"param"`
	// Values are the parameter settings to explore.
	Values []int `json:"values"`
}

// DSERequest is the body of POST /v1/dse: one base spec plus the
// design points to explore around it, as explicit config deltas and/or
// named sweep axes. With neither, the exploration has exactly one
// point — the base spec itself, which for a default base reproduces
// the paper cell bit for bit.
type DSERequest struct {
	Base JobSpec `json:"base"`
	// Deltas are explicit per-point config overrides. Each delta
	// REPLACES the base spec's config for its point (partial sections
	// merge over paper defaults, not over the base's override); an
	// empty delta object means paper defaults.
	Deltas []machines.ConfigSet `json:"deltas,omitempty"`
	// Axes expand to the cross product of their values, appended after
	// Deltas.
	Axes []DSEAxis `json:"axes,omitempty"`
	// Indices relabels the expanded points (len must equal the point
	// count): the cluster gateway's split/merge plumbing, so a shard's
	// point lines carry the gateway's global indices. Single-node
	// clients omit it.
	Indices []int `json:"indices,omitempty"`
}

// DSEDesign is one expanded design point before execution.
type DSEDesign struct {
	// Index is the point's position in the request's expansion (or its
	// entry in DSERequest.Indices when the gateway relabeled it).
	Index int
	// Label is a human-readable identity: "base", "delta[2]", or
	// "viram.Lanes=8 raw.Mesh=2" for axis points.
	Label string
	// Spec is the runnable spec: the base with Config replaced by the
	// point's delta. Not yet normalized.
	Spec JobSpec
}

// dseAxisDefs maps axis names to their delta expansions. Every
// expansion returns a ConfigSet-shaped JSON object; expansions of the
// axes in one point are deep-merged in request order before decoding
// over the paper defaults.
var dseAxisDefs = map[string]func(v int) (map[string]any, error){
	// viram.Lanes scales the whole vector datapath, the way VIRAM's
	// design space actually varies (the paper's part is 8 x 64-bit
	// lanes): the FP lane count tracks the lane count, and the embedded
	// DRAM's data/address bandwidth scales with it — n words per cycle
	// of sequential bandwidth and one address generator per lane pair,
	// matching the paper default at n=8 (8 wide, 4 generators) exactly.
	// A bare Lanes override would be inert on memory-bound kernels and
	// invalid below the default FP width; this expansion keeps the
	// sweep physical.
	"viram.Lanes": func(n int) (map[string]any, error) {
		if n < 1 {
			return nil, fmt.Errorf("svc: viram.Lanes must be >= 1, got %d", n)
		}
		return map[string]any{"viram": map[string]any{
			"Lanes":   n,
			"FPLanes": n,
			"DRAM": map[string]any{
				"SeqWordsPerCycle": n,
				"AddrGens":         max(1, n/2),
			},
		}}, nil
	},
	"viram.MVL": func(n int) (map[string]any, error) {
		if n < 1 {
			return nil, fmt.Errorf("svc: viram.MVL must be >= 1, got %d", n)
		}
		return map[string]any{"viram": map[string]any{"MVL": n}}, nil
	},
	"imagine.Clusters": func(n int) (map[string]any, error) {
		if n < 1 {
			return nil, fmt.Errorf("svc: imagine.Clusters must be >= 1, got %d", n)
		}
		return map[string]any{"imagine": map[string]any{"Clusters": n}}, nil
	},
	// raw.Mesh sweeps a square n x n tile grid.
	"raw.Mesh": func(n int) (map[string]any, error) {
		if n < 1 {
			return nil, fmt.Errorf("svc: raw.Mesh must be >= 1, got %d", n)
		}
		return map[string]any{"raw": map[string]any{
			"Mesh": map[string]any{"Width": n, "Height": n},
		}}, nil
	},
	"ppc.IssueWidth": func(n int) (map[string]any, error) {
		if n < 1 {
			return nil, fmt.Errorf("svc: ppc.IssueWidth must be >= 1, got %d", n)
		}
		return map[string]any{"ppc": map[string]any{"IssueWidth": n}}, nil
	},
}

// DSEAxisParams lists the supported axis names (sorted), for error
// messages and docs.
func DSEAxisParams() []string {
	out := make([]string, 0, len(dseAxisDefs))
	for k := range dseAxisDefs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// deepMerge merges src into dst recursively: nested maps merge,
// anything else overwrites.
func deepMerge(dst, src map[string]any) {
	for k, sv := range src {
		if sm, ok := sv.(map[string]any); ok {
			if dm, ok := dst[k].(map[string]any); ok {
				deepMerge(dm, sm)
				continue
			}
		}
		dst[k] = sv
	}
}

// Expand turns the request into its concrete design points: the
// explicit deltas first, then the axes' cross product. Axis deltas are
// built as JSON and decoded through ConfigSet's strict merge-over-
// defaults unmarshaler, so they get exactly the semantics of a
// hand-written delta.
func (r DSERequest) Expand() ([]DSEDesign, error) {
	var points []DSEDesign
	add := func(label string, delta *machines.ConfigSet) {
		spec := r.Base
		spec.Config = delta
		points = append(points, DSEDesign{Index: len(points), Label: label, Spec: spec})
	}
	for i := range r.Deltas {
		d := r.Deltas[i]
		if d.Empty() {
			add(fmt.Sprintf("delta[%d]", i), nil)
		} else {
			add(fmt.Sprintf("delta[%d]", i), &d)
		}
	}
	if len(r.Axes) > 0 {
		// Check the nominal point count before materializing anything: a
		// hostile cross product must be refused in O(axes), not built.
		prod := 1
		for _, ax := range r.Axes {
			if _, ok := dseAxisDefs[ax.Param]; !ok {
				return nil, fmt.Errorf("svc: unknown sweep axis %q (want one of %v)", ax.Param, DSEAxisParams())
			}
			if len(ax.Values) == 0 {
				return nil, fmt.Errorf("svc: sweep axis %q has no values", ax.Param)
			}
			prod *= len(ax.Values)
			if n := len(r.Deltas) + prod; n > MaxDSEPoints {
				return nil, fmt.Errorf("%w: %d points (max %d)", ErrDSETooLarge, n, MaxDSEPoints)
			}
		}
		// Cross product, row-major: the first axis varies slowest.
		combo := make([]int, len(r.Axes))
		for {
			merged := map[string]any{}
			label := ""
			for ai, ax := range r.Axes {
				v := ax.Values[combo[ai]]
				m, err := dseAxisDefs[ax.Param](v)
				if err != nil {
					return nil, err
				}
				deepMerge(merged, m)
				if label != "" {
					label += " "
				}
				label += fmt.Sprintf("%s=%d", ax.Param, v)
			}
			data, err := json.Marshal(merged)
			if err != nil {
				return nil, fmt.Errorf("svc: encoding axis delta %s: %w", label, err)
			}
			var delta machines.ConfigSet
			if err := json.Unmarshal(data, &delta); err != nil {
				return nil, fmt.Errorf("svc: axis delta %s: %w", label, err)
			}
			add(label, &delta)
			// Odometer increment over the combo vector.
			ai := len(combo) - 1
			for ai >= 0 {
				combo[ai]++
				if combo[ai] < len(r.Axes[ai].Values) {
					break
				}
				combo[ai] = 0
				ai--
			}
			if ai < 0 {
				break
			}
		}
	}
	if len(points) == 0 {
		// No deltas, no axes: explore exactly the base spec. A default
		// base reproduces the paper cell bit for bit.
		add("base", r.Base.Config)
	}
	if len(points) > MaxDSEPoints {
		return nil, fmt.Errorf("%w: %d points (max %d)", ErrDSETooLarge, len(points), MaxDSEPoints)
	}
	if len(r.Indices) > 0 {
		if len(r.Indices) != len(points) {
			return nil, fmt.Errorf("svc: %d indices for %d points", len(r.Indices), len(points))
		}
		for i := range points {
			points[i].Index = r.Indices[i]
		}
	}
	return points, nil
}

// DSEPoint is one completed design point on the /v1/dse NDJSON stream.
type DSEPoint struct {
	Index int    `json:"index"`
	Label string `json:"label,omitempty"`
	// Config is the point's canonical config override (null for paper
	// defaults) — what the job actually ran with, after normalization.
	Config *machines.ConfigSet `json:"config,omitempty"`
	State  State               `json:"state"`
	// Cycles is the simulated cycle count (done points only) — bit-
	// identical to a single-job submission of the same spec.
	Cycles uint64 `json:"cycles,omitempty"`
	// Area is the machine's area proxy under the point's config, and
	// AreaDesc the formula (see machines.ConfigSet.AreaProxy).
	Area      float64 `json:"area,omitempty"`
	AreaDesc  string  `json:"area_desc,omitempty"`
	FromCache bool    `json:"from_cache,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// DSESummary is the stream's trailer: counts plus the Pareto frontier
// over the completed points.
type DSESummary struct {
	Done     bool   `json:"done"`
	Points   int    `json:"points"`
	Failed   int    `json:"failed"`
	Machine  string `json:"machine,omitempty"`
	AreaDesc string `json:"area_desc,omitempty"`
	// Frontier holds the Pareto-optimal points (no other point is at
	// least as good on both cycles and area and strictly better on
	// one), sorted by ascending area.
	Frontier []DSEFrontierPoint `json:"frontier"`
}

// DSEFrontierPoint is one Pareto-optimal design point.
type DSEFrontierPoint struct {
	Index  int     `json:"index"`
	Label  string  `json:"label,omitempty"`
	Cycles uint64  `json:"cycles"`
	Area   float64 `json:"area"`
}

// ParetoFrontier returns the points minimal in (cycles, area): a point
// survives unless some other point is <= on both coordinates and < on
// at least one. Ties on both coordinates all survive (they are the
// same design trade-off, e.g. a cache hit and its twin). Sorted by
// ascending area, then cycles, then index.
func ParetoFrontier(points []DSEFrontierPoint) []DSEFrontierPoint {
	var out []DSEFrontierPoint
	for _, p := range points {
		dominated := false
		for _, q := range points {
			if q.Cycles <= p.Cycles && q.Area <= p.Area &&
				(q.Cycles < p.Cycles || q.Area < p.Area) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Area != out[j].Area {
			return out[i].Area < out[j].Area
		}
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles < out[j].Cycles
		}
		return out[i].Index < out[j].Index
	})
	return out
}
