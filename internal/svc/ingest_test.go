package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/journal"
)

// tearLastSegment appends garbage to the newest WAL segment — the
// shape of a crash mid-append — and returns how many bytes it added.
func tearLastSegment(t *testing.T, dir string) int {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v %v", dir, segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	garbage := []byte{0xDE, 0xAD, 0xBE}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	return len(garbage)
}

// TestExportIngestRoundTrip is the rebalance data path end to end: a
// shard's WAL — torn final segment included — exported read-only,
// folded by RecoverJobs, and ingested into a fresh service must
// reproduce every terminal job ID and result byte-for-byte, rebind
// idempotency keys, and seed the memo so the successor never
// re-simulates work the departed shard finished.
func TestExportIngestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts()
	opts.ShardID = "s1"
	s := openDurable(t, dir, opts)
	w := smallWorkload()
	specs := []JobSpec{
		{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w},
		{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w},
	}
	want := make(map[string][]byte) // job ID -> marshaled result
	var keyed Job
	for i, spec := range specs {
		key := ""
		if i == 0 {
			key = "client-key-0"
		}
		job, _, err := s.AdmitWithKey(key, spec)
		if err != nil {
			t.Fatal(err)
		}
		final, err := s.Wait(context.Background(), job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(final.ID, "s1-j") {
			t.Fatalf("shard ID prefix missing: %q", final.ID)
		}
		data, err := json.Marshal(final.Result)
		if err != nil {
			t.Fatal(err)
		}
		want[final.ID] = data
		if i == 0 {
			keyed = final
		}
	}
	crash(s)
	tearLastSegment(t, dir)

	rec, err := journal.Export(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, memo, st := RecoverJobs(rec)
	if st.Truncations != 1 {
		t.Fatalf("torn tail not surfaced by export: %+v", st)
	}
	if st.JobsRestored != len(specs) || st.ResultsRestored < len(specs) {
		t.Fatalf("recover stats: %+v", st)
	}

	s2dir := t.TempDir()
	opts2 := durableOpts()
	opts2.ShardID = "s2"
	s2 := openDurable(t, s2dir, opts2)
	defer s2.Close()
	ist, err := s2.IngestJobs(jobs, memo)
	if err != nil {
		t.Fatal(err)
	}
	if ist.JobsIngested != len(specs) || ist.Conflicts != 0 || ist.Rejected != 0 {
		t.Fatalf("ingest stats: %+v", ist)
	}

	for id, data := range want {
		got, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s lost in rebalance", id)
		}
		if got.State != Done {
			t.Fatalf("job %s ingested as %s, want done", id, got.State)
		}
		gotData, err := json.Marshal(got.Result)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotData, data) {
			t.Fatalf("job %s result drifted across rebalance:\n  origin    %s\n  successor %s", id, data, gotData)
		}
	}

	// The client's idempotency key crossed over: resubmitting it on the
	// successor finds the original job, not duplicate work.
	replay, replayed, err := s2.AdmitWithKey("client-key-0", keyed.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed || replay.ID != keyed.ID {
		t.Fatalf("idempotent resubmit got %s (replayed=%v), want %s", replay.ID, replayed, keyed.ID)
	}
	// And the memo crossed over: fresh work for a rebalanced spec is a
	// cache hit with the origin shard's exact cycle count.
	fresh, _, err := s2.AdmitWithKey("fresh-key", specs[1])
	if err != nil {
		t.Fatal(err)
	}
	final, err := s2.Wait(context.Background(), fresh.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.FromCache {
		t.Fatalf("rebalanced memo not used: %+v", final)
	}

	// A second ingest of the same payload — the retry after a partial
	// rebalance — is all duplicates, never double work.
	ist2, err := s2.IngestJobs(jobs, memo)
	if err != nil {
		t.Fatal(err)
	}
	if ist2.JobsIngested != 0 || ist2.Duplicates != len(specs) {
		t.Fatalf("re-ingest stats: %+v", ist2)
	}

	// The ingest was journaled: a crash-restart of the successor keeps
	// every rebalanced job and result.
	crash(s2)
	s3 := openDurable(t, s2dir, opts2)
	defer s3.Close()
	for id, data := range want {
		got, ok := s3.Job(id)
		if !ok {
			t.Fatalf("job %s lost in successor restart", id)
		}
		gotData, _ := json.Marshal(got.Result)
		if !bytes.Equal(gotData, data) {
			t.Fatalf("job %s result drifted across successor restart", id)
		}
	}
}

// TestIngestRefusesConflictingResults: an imported result that
// disagrees with the local memo for the same spec hash is refused and
// counted — the determinism guard holds across shard boundaries.
func TestIngestRefusesConflictingResults(t *testing.T) {
	s := NewService(durableOpts())
	defer s.Close()
	w := smallWorkload()
	spec, err := JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if !s.pool.SeedMemo(hash, core.Result{Cycles: 111}) {
		t.Fatal("local seed refused")
	}
	bad := core.Result{Cycles: 222}
	jobs := []Job{{
		ID:     "sX-j000001-deadbeef",
		Spec:   spec,
		Hash:   hash,
		State:  Done,
		Result: &bad,
	}}
	st, err := s.IngestJobs(jobs, map[string]core.Result{hash: bad})
	if err != nil {
		t.Fatal(err)
	}
	if st.Conflicts != 2 || st.Rejected != 1 || st.JobsIngested != 0 {
		t.Fatalf("conflicting ingest stats: %+v", st)
	}
	if _, ok := s.Job("sX-j000001-deadbeef"); ok {
		t.Fatal("conflicting job was registered")
	}
}

// TestReplayEndpoint drives the ingest over HTTP the way the gateway
// does.
func TestReplayEndpoint(t *testing.T) {
	s := NewService(durableOpts())
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	w := smallWorkload()
	spec, err := JobSpec{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	res := core.Result{Machine: "AltiVec", Kernel: core.BeamSteering, Cycles: 12345}
	payload, err := json.Marshal(ReplayRequest{
		Jobs: []Job{{ID: "s9-j000001-" + hash[:8], Spec: spec, Hash: hash, State: Done, Result: &res}},
		Memo: map[string]core.Result{hash: res},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/replay", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status %d", resp.StatusCode)
	}
	var st IngestStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.JobsIngested != 1 || st.ResultsSeeded != 1 {
		t.Fatalf("replay stats: %+v", st)
	}
	if job, ok := s.Job("s9-j000001-" + hash[:8]); !ok || job.State != Done || job.Result.Cycles != 12345 {
		t.Fatalf("replayed job missing or wrong: %+v ok=%v", job, ok)
	}
}

// TestReadyzDrainSplitsFromHealthz: /readyz answers 503 for a draining
// process while /healthz — liveness, body unchanged — stays 200, so a
// gateway stops routing without the prober declaring the shard dead.
func TestReadyzDrainSplitsFromHealthz(t *testing.T) {
	opts := durableOpts()
	opts.ShardID = "s1"
	s := NewService(opts)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/readyz"); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("fresh readyz: %d %v", code, body)
	}

	s.SetDraining(true)
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable || body["ready"] != false || body["reason"] != "draining" {
		t.Fatalf("draining readyz: %d %v", code, body)
	}
	// Liveness is untouched by drain: same 200, same body shape as
	// before the split (status/degraded/workers/queue fields).
	code, health := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("draining healthz went %d, want 200", code)
	}
	for _, key := range []string{"status", "degraded", "workers", "queue_depth", "queue_cap", "time"} {
		if _, ok := health[key]; !ok {
			t.Fatalf("healthz body lost field %q: %v", key, health)
		}
	}
	if health["status"] != "ok" || health["degraded"] != false {
		t.Fatalf("drain leaked into liveness: %v", health)
	}

	s.SetDraining(false)
	if code, body := get("/readyz"); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("undrained readyz: %d %v", code, body)
	}
}
