package svc

import (
	"context"
	"fmt"
	"time"

	"sigkern/internal/cache"
	"sigkern/internal/core"
	"sigkern/internal/kernels/matmul"
	"sigkern/internal/kernels/pfb"
	"sigkern/internal/obs"
	"sigkern/internal/resilience"
	"sigkern/internal/roofline"
)

// Tier selects a job's quality tier: a full simulation (the default,
// bit-deterministic, milliseconds to seconds) or an analytic roofline
// estimate (a lower bound, microseconds, no simulator state built).
type Tier string

// The quality tiers of POST /v1/jobs?tier=. TierAuto is never stored
// on a job: the brownout controller resolves it to simulate or
// estimate exactly once per request (Service.ResolveTier), so one
// response can never mix tiers.
const (
	TierSimulate Tier = "simulate"
	TierEstimate Tier = "estimate"
	TierAuto     Tier = "auto"
)

// ParseTier maps the ?tier= query value onto a Tier. Empty means
// simulate, the pre-tier behavior.
func ParseTier(v string) (Tier, error) {
	switch Tier(v) {
	case "", TierSimulate:
		return TierSimulate, nil
	case TierEstimate:
		return TierEstimate, nil
	case TierAuto:
		return TierAuto, nil
	}
	return "", fmt.Errorf("svc: unknown tier %q (want %q, %q, or %q)", v, TierAuto, TierEstimate, TierSimulate)
}

// estimateMemoCapacity bounds the estimate tier's own memo table. The
// namespace is structural — a separate cache.Memo instance — so
// estimate entries can never collide with (or evict) simulated results
// stored under the same spec hash.
const estimateMemoCapacity = 4096

// Estimate answers a job spec from the analytic roofline model:
// normalize, hash, probe the estimate memo, and synthesize a terminal
// Job — no pool admission, no registry entry, no journal append. The
// returned job is Done before the caller sees it, carries the model's
// cycle bound in Result, and is not retrievable by ID later (nothing
// durable happened on its behalf).
func (s *Service) Estimate(spec JobSpec) (Job, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return Job{}, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return Job{}, err
	}
	submitted := time.Now()
	est, cached := s.estimates.Get(hash)
	if !cached {
		est, err = roofline.ForJob(norm.Machine, norm.Kernel, *norm.Workload)
		if err != nil {
			return Job{}, err
		}
		s.estimates.Put(hash, est)
	}
	s.Metrics().estimateServed(obs.Labels{Machine: norm.Machine, Kernel: string(norm.Kernel)})
	e := est
	res := core.Result{
		Machine: norm.Machine,
		Kernel:  norm.Kernel,
		Cycles:  est.Cycles,
		Ops:     est.Ops,
		Words:   est.Words,
		Notes:   []string{fmt.Sprintf("analytic roofline estimate (%s-bound); not simulated", est.Bound)},
	}
	return Job{
		ID:        "est-" + hash[:12],
		Spec:      norm,
		Hash:      hash,
		State:     Done,
		Tier:      TierEstimate,
		FromCache: cached,
		Result:    &res,
		Estimate:  &e,
		Submitted: submitted,
		Finished:  time.Now(),
	}, nil
}

// recordModelDrift compares one freshly simulated result against the
// analytic model for the same spec and publishes the ratio: the
// per-cell model-error gauge always, and a drift alert counter when the
// ratio leaves the cell's envelope. A simulator drifting from its own
// lower bound (ratio < 1, or far above the known overhead ceiling) is a
// correctness alarm, and this is what makes it fire without anyone
// asking for a report. Specs whose machine has no Table 1 row (custom
// factories) have no model to drift from and are skipped.
func (s *Service) recordModelDrift(spec JobSpec, res core.Result) {
	est, err := roofline.ForJob(spec.Machine, spec.Kernel, *spec.Workload)
	if err != nil || est.Cycles == 0 {
		return
	}
	lo, hi := roofline.EnvelopeFor(spec.Machine, spec.Kernel)
	ratio := float64(res.Cycles) / float64(est.Cycles)
	cell := obs.Labels{Machine: spec.Machine, Kernel: string(spec.Kernel)}
	s.Metrics().modelObserved(cell, ratio, ratio >= lo && ratio <= hi)
}

// RooflineData is the GET /v1/roofline payload: the full
// predicted-cycles grid — every Table 1 machine crossed with every
// kernel that declares metadata — with per-cell model-vs-simulated
// error where a simulation ran. The paper-kernel cells regenerate
// Table 4; the extension kernels extend it.
type RooflineData struct {
	Title string          `json:"title"`
	Cells []roofline.Cell `json:"cells"`
}

// pfbRunner is implemented by machines that support the PFB extension
// kernel (all five paper machines do; custom factories may not).
type pfbRunner interface {
	RunPFB(pfb.Workload) (core.Result, error)
}

// Roofline computes the grid. With simulate set, every cell with a
// machine implementation is also run through the pool (memoized, so
// repeat calls are cheap) and annotated with its error ratio; the
// ratios are published to the per-cell model-error gauge so a scrape
// sees the same numbers the report shows. Model-only cells carry just
// the estimate.
func (s *Service) Roofline(ctx context.Context, simulate bool) (*RooflineData, error) {
	w := core.PaperWorkload()
	measured := make(map[string]map[core.KernelID]uint64)
	if simulate {
		sr, err := RunStudyParallel(ctx, s.pool, s.factory, machineNames(), w)
		if err != nil {
			return nil, err
		}
		for _, name := range machineNames() {
			measured[name] = make(map[core.KernelID]uint64)
			for _, k := range core.Kernels() {
				if r, ok := sr.Result(name, k); ok {
					measured[name][k] = r.Cycles
				}
			}
		}
		if err := s.runExtensionCells(ctx, measured); err != nil {
			return nil, err
		}
	}
	cells, err := roofline.Grid(w, measured)
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		if c.Simulated {
			s.Metrics().modelObserved(obs.Labels{Machine: c.Machine, Kernel: string(c.Kernel)},
				c.ErrorRatio, c.WithinEnvelope)
		}
	}
	return &RooflineData{
		Title: "Roofline: analytic model vs simulation (Table 4, regenerated and extended)",
		Cells: cells,
	}, nil
}

// runExtensionCells simulates the extension kernels with a machine
// implementation (matmul and pfb; equalize and fft stay model-only) and
// folds the cycle counts into measured. Tasks are memoized under a
// "roofline-ext:" namespace — extension runs are not job-API specs, so
// their keys must never collide with spec hashes.
func (s *Service) runExtensionCells(ctx context.Context, measured map[string]map[core.KernelID]uint64) error {
	type cell struct {
		machine string
		kernel  core.KernelID
		fut     *Future
	}
	var cells []cell
	for _, name := range machineNames() {
		name := name
		// The probe instance only answers capability checks; each task
		// run builds its own. The factory consults the chaos fault point,
		// so construction is retried like any transient failure.
		var probe core.Machine
		if _, err := resilience.DefaultRetry().Do(ctx, func(context.Context) error {
			var ferr error
			probe, ferr = s.factory(name)
			return ferr
		}); err != nil {
			return err
		}
		submit := func(k core.KernelID, run func(core.Machine) (core.Result, error)) error {
			fut, err := s.pool.Submit(Task{
				Label:   fmt.Sprintf("%s/%s", name, k),
				MemoKey: fmt.Sprintf("roofline-ext:%s:%s", name, k),
				Cell:    obs.Labels{Machine: name, Kernel: string(k)},
				Run: func(context.Context) (core.Result, error) {
					m, err := s.factory(name)
					if err != nil {
						return core.Result{}, err
					}
					return run(m)
				},
			})
			if err != nil {
				return err
			}
			cells = append(cells, cell{machine: name, kernel: k, fut: fut})
			return nil
		}
		if _, ok := probe.(core.MatMulRunner); ok {
			if err := submit(core.MatMul, func(m core.Machine) (core.Result, error) {
				return m.(core.MatMulRunner).RunMatMul(matmul.DefaultSpec())
			}); err != nil {
				return err
			}
		}
		if _, ok := probe.(pfbRunner); ok {
			if err := submit(roofline.PFB, func(m core.Machine) (core.Result, error) {
				return m.(pfbRunner).RunPFB(pfb.DefaultWorkload())
			}); err != nil {
				return err
			}
		}
	}
	for _, c := range cells {
		r, err := c.fut.Wait(ctx)
		if err != nil {
			return fmt.Errorf("svc: %s on %s: %w", c.kernel, c.machine, err)
		}
		if measured[c.machine] == nil {
			measured[c.machine] = make(map[core.KernelID]uint64)
		}
		measured[c.machine][c.kernel] = r.Cycles
	}
	return nil
}

// newEstimateMemo builds the estimate tier's private memo table.
func newEstimateMemo() *cache.Memo[roofline.Estimate] {
	return cache.NewMemo[roofline.Estimate](estimateMemoCapacity)
}
