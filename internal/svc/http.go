package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/journal"
	"sigkern/internal/obs"
	"sigkern/internal/report"
	"sigkern/internal/resilience"
)

// maxBodyBytes bounds request bodies; job specs are small.
const maxBodyBytes = 1 << 20

// maxRequestTimeout clamps client-supplied ?timeout= values.
const maxRequestTimeout = 10 * time.Minute

// DefaultPageLimit and MaxPageLimit bound GET /v1/jobs pages: the
// registry holds up to MaxJobs (4096 by default) jobs, far too many
// for one unbounded response.
const (
	DefaultPageLimit = 256
	MaxPageLimit     = 1000
)

// StatusClientClosedRequest is the nginx-convention 499 status used
// when the client went away mid-request; Go's net/http cannot actually
// deliver it to a disconnected client, but it makes logs and tests
// unambiguous about who aborted.
const StatusClientClosedRequest = 499

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs            submit a job (JobSpec JSON); ?wait=1 blocks,
//	                         ?timeout=30s bounds the wait. Saturation is
//	                         shed with 429 + Retry-After; an open machine
//	                         breaker answers 503 + Retry-After.
//	                         ?tier=estimate answers synchronously from
//	                         the analytic roofline model (µs, no pool
//	                         admission, no journal append); ?tier=auto
//	                         lets the brownout controller pick — degraded
//	                         answers carry Degraded:true and X-Degraded:
//	                         brownout. ?priority=batch queues behind (and
//	                         is shed before) interactive work. An
//	                         X-Deadline-Budget header bounds the whole
//	                         attempt: admission fails fast with 504 when
//	                         the remaining budget cannot cover the
//	                         predicted queue drain, and a queued job whose
//	                         budget expires is dropped at pickup, never
//	                         burning a worker slot. Bad parameter values
//	                         are 400 with a structured ParamError body.
//	POST /v1/batch           submit a whole grid as one group. The body
//	                         is either NDJSON (one JobSpec per line,
//	                         optional "index" field echoed back) or,
//	                         with Content-Type: application/json, a
//	                         compact grid form {machines, kernels,
//	                         workloads} expanded row-major server-side.
//	                         Admission (deadline budget, breakers) is
//	                         checked once for the group; results stream
//	                         back as application/x-ndjson in completion
//	                         order, each line a job snapshot with its
//	                         cell index, then a final summary line.
//	                         Malformed lines are 400 with the 1-based
//	                         line number; more than MaxBatchCells cells
//	                         or a body over 16 MiB is 413. Disconnecting
//	                         cancels only cells that have not started.
//	POST /v1/dse             design-space exploration: one base spec
//	                         plus config deltas and/or named sweep axes
//	                         (see DSERequest), expanded server-side and
//	                         admitted as one batch group. Per-point
//	                         results stream back as application/x-ndjson
//	                         in completion order; the final summary line
//	                         carries the Pareto frontier over simulated
//	                         cycles vs the machine's area proxy. More
//	                         than MaxDSEPoints points is 413.
//	GET  /v1/jobs            list tracked jobs
//	GET  /v1/jobs/{id}       one job's status and result
//	GET  /v1/jobs/{id}/trace the job's lifecycle trace (span events)
//	GET  /v1/tables/3        regenerate the paper's Table 3 (?format=text)
//	GET  /v1/roofline        the predicted-cycles grid with per-cell
//	                         model-vs-simulated error (regenerated and
//	                         extended Table 4); ?sim=0 skips simulation,
//	                         ?format=text renders the report table
//	GET  /metrics            metrics: flat text (default), ?format=prometheus,
//	                         or ?format=json
//	GET  /healthz            liveness: queue depth, breaker states, degraded
//	                         flag (503 while degraded, same body)
//	GET  /readyz             readiness: 503 while draining or degraded, so a
//	                         gateway stops routing new work without the
//	                         prober declaring the process dead
//	POST /v1/replay          cluster rebalance ingest: jobs + memoized
//	                         results recovered from a departed shard's
//	                         journal, folded into this service
//
// Every response carries an X-Request-Id (echoed from the request, or
// generated); the handler logs each request through the service's
// structured logger when one is configured.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/dse", s.handleDSE)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/tables/3", s.handleTable3)
	mux.HandleFunc("GET /v1/roofline", s.handleRoofline)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/replay", s.handleReplay)
	return obs.Instrument(s.logger, mux)
}

// ParamError is the structured 400 body for a rejected query
// parameter: the offending parameter and value, and the accepted
// values, as machine-readable fields next to the human message.
type ParamError struct {
	Error     string   `json:"error"`
	Parameter string   `json:"parameter"`
	Value     string   `json:"value"`
	Want      []string `json:"want"`
}

type httpError struct {
	status int
	msg    string
}

func (e httpError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps service errors onto HTTP statuses: explicit
// httpErrors pass through; deadline expiry is the gateway's fault
// (504); a cancelled context means the client hung up (499); a job
// evicted from the registry is gone (410); a closed pool is 503;
// everything else is 500.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, ErrTimeout), errors.Is(err, ErrBudgetExhausted):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = StatusClientClosedRequest
	case errors.Is(err, ErrJobEvicted):
		status = http.StatusGone
	case errors.Is(err, ErrPoolClosed), errors.Is(err, ErrDurability):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// retryAfter estimates how long a shed client should back off: the
// work queued ahead of its priority class drained at the pool's recent
// executed-job p50 latency per worker, floored at one second so the
// header is always actionable. Interactive clients wait only behind
// the interactive queue (they jump batch); batch clients wait behind
// both. Two deliberate choices for the overload path this runs on: the
// p50 comes from the executed-job window (µs-scale cache hits must not
// collapse the drain estimate exactly when the queue is full of real
// simulator work), and it is a cached atomic read refreshed at most
// once a second (never a copy-and-sort of the full window per shed
// response).
func (s *Service) retryAfter(pr Priority) time.Duration {
	p50 := s.Metrics().ExecP50().Seconds()
	if p50 <= 0 {
		p50 = 0.1
	}
	workers := s.pool.Workers()
	if workers < 1 {
		workers = 1
	}
	depth := s.pool.QueueDepthFor(PriorityInteractive)
	if pr == PriorityBatch {
		depth += s.pool.QueueDepthFor(PriorityBatch)
	}
	est := time.Duration(float64(depth) * p50 / float64(workers) * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	return est
}

// setRetryAfter writes the Retry-After header as integral seconds,
// rounded up.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, httpError{http.StatusBadRequest, "bad job spec: " + err.Error()})
		return
	}
	timeoutParam := r.URL.Query().Get("timeout")
	reqTimeout, err := resilience.ParseTimeout(timeoutParam, maxRequestTimeout)
	if err != nil {
		// Structured like every other rejected parameter: the offending
		// value and the accepted shape as machine-readable fields.
		writeJSON(w, http.StatusBadRequest, ParamError{
			Error:     err.Error(),
			Parameter: "timeout",
			Value:     timeoutParam,
			Want:      []string{"a Go duration, e.g. 30s or 2m, at most " + maxRequestTimeout.String()},
		})
		return
	}
	prParam := r.URL.Query().Get("priority")
	priority, err := ParsePriority(prParam)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ParamError{
			Error:     err.Error(),
			Parameter: "priority",
			Value:     prParam,
			Want:      []string{string(PriorityBatch), string(PriorityInteractive)},
		})
		return
	}
	// The deadline budget is what remains of the caller's end-to-end
	// deadline — set by the gateway (decremented across reroutes) or the
	// client directly. Absent, the wait timeout doubles as the budget —
	// a client waiting 30s has no use for an answer admitted later —
	// plus a grace second so the budget can never beat the wait itself
	// to the deadline: the client's expiry must surface as the wait's
	// 504, not as a job the budget clamp killed a poll tick earlier.
	budgetHdr := r.Header.Get("X-Deadline-Budget")
	budget, err := resilience.ParseTimeout(budgetHdr, maxRequestTimeout)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ParamError{
			Error:     err.Error(),
			Parameter: "X-Deadline-Budget",
			Value:     budgetHdr,
			Want:      []string{"a Go duration, e.g. 5s or 500ms, at most " + maxRequestTimeout.String()},
		})
		return
	}
	if budget <= 0 && reqTimeout > 0 {
		budget = reqTimeout + time.Second
	}
	tierParam := r.URL.Query().Get("tier")
	tier, err := ParseTier(tierParam)
	if err != nil {
		// A structured body, not just a message: clients selecting a tier
		// programmatically get the offending parameter and the accepted
		// values as fields.
		writeJSON(w, http.StatusBadRequest, ParamError{
			Error:     err.Error(),
			Parameter: "tier",
			Value:     tierParam,
			Want:      []string{string(TierAuto), string(TierEstimate), string(TierSimulate)},
		})
		return
	}
	// Resolve ?tier=auto exactly once, here: the brownout controller may
	// flip at any instant, and a response assembled from two resolutions
	// could mix a simulated status with an estimated result.
	tier, degraded := s.ResolveTier(tier)
	if tier == TierEstimate {
		// The estimate tier is synchronous and microsecond-cheap: no pool
		// admission, no journal append, no job registration — the answer
		// is complete before the response is written, so ?wait= and
		// Idempotency-Key have nothing to do.
		job, err := s.Estimate(spec)
		if err != nil {
			writeError(w, httpError{http.StatusBadRequest, err.Error()})
			return
		}
		if degraded {
			// The client asked ?tier=auto for a simulation and got the
			// analytic bound: flag it in the body and the header so no
			// degraded answer is ever mistaken for a simulated one.
			job.Degraded = true
			w.Header().Set("X-Degraded", "brownout")
			s.Metrics().brownoutServed()
		}
		writeJSON(w, http.StatusOK, job)
		return
	}

	job, replayed, err := s.AdmitWith(AdmitOptions{
		IdemKey:  r.Header.Get("Idempotency-Key"),
		Priority: priority,
		Budget:   budget,
	}, spec)
	if replayed {
		// The key (or, on a durable service, the spec hash) is already
		// bound to a job — typically a client retrying after a crash or
		// timeout. Serve the original instead of duplicate work.
		w.Header().Set("Idempotency-Replayed", "true")
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			setRetryAfter(w, s.retryAfter(priority))
			writeError(w, httpError{http.StatusTooManyRequests, err.Error()})
		case errors.Is(err, ErrBudgetExhausted):
			// The remaining budget cannot cover the predicted queue drain:
			// fail fast with the same status a slow timeout would have
			// produced, plus a Retry-After so the client resubmits when
			// the queue has drained rather than immediately.
			setRetryAfter(w, s.retryAfter(priority))
			writeError(w, httpError{http.StatusGatewayTimeout, err.Error()})
		case errors.Is(err, resilience.ErrBreakerOpen):
			ra := s.breakers.Get(spec.Machine).RetryAfter()
			if ra <= 0 {
				ra = time.Second
			}
			setRetryAfter(w, ra)
			writeError(w, httpError{http.StatusServiceUnavailable, err.Error()})
		case job.ID == "":
			// Rejected before registration (bad machine, kernel, workload).
			writeError(w, httpError{http.StatusBadRequest, err.Error()})
		default:
			writeError(w, err) // registered but not enqueued (pool closed)
		}
		return
	}
	if wantWait(r) {
		waitFor := reqTimeout
		if budget > 0 && (waitFor <= 0 || budget < waitFor) {
			waitFor = budget
		}
		ctx, cancel := resilience.WithTimeout(r.Context(), waitFor)
		defer cancel()
		final, werr := s.Wait(ctx, job.ID)
		if werr != nil {
			writeError(w, werr)
			return
		}
		writeJSON(w, http.StatusOK, final)
		return
	}
	status := http.StatusAccepted
	if job.State.Terminal() {
		status = http.StatusOK // cache hit: done before the response
	}
	writeJSON(w, status, job)
}

func wantWait(r *http.Request) bool {
	v := strings.ToLower(r.URL.Query().Get("wait"))
	return v == "1" || v == "true" || v == "yes"
}

// JobListPage is the GET /v1/jobs response: one page of jobs in
// submission order plus the cursor for the next page.
type JobListPage struct {
	Jobs  []Job `json:"jobs"`
	Count int   `json:"count"`
	Total int   `json:"total"`
	// NextAfter, when present, is the ?after= cursor for the next
	// page; absent on the last page.
	NextAfter string `json:"next_after,omitempty"`
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := DefaultPageLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, httpError{http.StatusBadRequest, fmt.Sprintf("bad limit %q: want a positive integer", v)})
			return
		}
		if n > MaxPageLimit {
			n = MaxPageLimit
		}
		limit = n
	}
	jobs, next, total, err := s.JobsPage(q.Get("after"), limit)
	if err != nil {
		writeError(w, httpError{http.StatusBadRequest, err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, JobListPage{Jobs: jobs, Count: len(jobs), Total: total, NextAfter: next})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		if s.wasEvicted(id) {
			writeError(w, httpError{http.StatusGone, fmt.Sprintf("job %q evicted from registry", id)})
			return
		}
		writeError(w, httpError{http.StatusNotFound, fmt.Sprintf("unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleTable3(w http.ResponseWriter, r *http.Request) {
	td, err := s.Table3(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	if strings.EqualFold(r.URL.Query().Get("format"), "text") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := report.Table(w, td.Title, td.Headers, td.Rows); err != nil {
			writeError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, td)
}

// handleRoofline serves the predicted-cycles grid. ?sim=0 (or false/no)
// answers model-only without touching the pool; the default also runs
// every simulatable cell (memoized) and annotates model error.
func (s *Service) handleRoofline(w http.ResponseWriter, r *http.Request) {
	simulate := true
	simParam := r.URL.Query().Get("sim")
	switch strings.ToLower(simParam) {
	case "", "1", "true", "yes":
	case "0", "false", "no":
		simulate = false
	default:
		writeJSON(w, http.StatusBadRequest, ParamError{
			Error:     fmt.Sprintf("svc: bad sim value %q", simParam),
			Parameter: "sim",
			Value:     simParam,
			Want:      []string{"0", "1", "false", "true", "no", "yes"},
		})
		return
	}
	rd, err := s.Roofline(r.Context(), simulate)
	if err != nil {
		writeError(w, err)
		return
	}
	if strings.EqualFold(r.URL.Query().Get("format"), "text") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := report.RenderRoofline(w, rd.Title, rd.Cells); err != nil {
			writeError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, rd)
}

// TraceResponse is the GET /v1/jobs/{id}/trace payload.
type TraceResponse struct {
	ID     string      `json:"id"`
	State  State       `json:"state"`
	Events []obs.Event `json:"events"`
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, state, ok := s.JobTrace(id)
	if !ok {
		if s.wasEvicted(id) {
			writeError(w, httpError{http.StatusGone, fmt.Sprintf("job %q evicted from registry", id)})
			return
		}
		writeError(w, httpError{http.StatusNotFound, fmt.Sprintf("unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{ID: id, State: state, Events: events})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := strings.ToLower(r.URL.Query().Get("format")); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.Metrics().Snapshot().WriteText(w)
	case "prometheus", "prom":
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = s.Metrics().WritePrometheus(w)
	case "json":
		writeJSON(w, http.StatusOK, s.Metrics().Snapshot())
	default:
		writeError(w, httpError{http.StatusBadRequest,
			fmt.Sprintf("unknown metrics format %q (want text, prometheus, or json)", format)})
	}
}

// Health is the /healthz payload: admission and breaker visibility for
// load balancers and chaos drivers.
type Health struct {
	Status   string `json:"status"` // "ok" or "degraded"
	Degraded bool   `json:"degraded"`
	Workers  int    `json:"workers"`
	// QueueDepth/QueueCap expose admission headroom; shedding begins
	// when depth reaches cap.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Breakers maps machine name -> circuit state for every backend
	// exercised so far.
	Breakers map[string]resilience.BreakerState `json:"breakers,omitempty"`
	// Brownout reports the ?tier=auto admission controller: whether it
	// is currently serving degraded (estimate-tier) answers, and how
	// often it has flipped. Informational — a browned-out service is
	// still answering, so brownout alone does not degrade /healthz.
	Brownout resilience.BrownoutStats `json:"brownout"`
	// Faults reports fired fault-injection counts when chaos is armed.
	Faults map[string]uint64 `json:"faults_fired,omitempty"`
	// ConfigHash identifies the hardware config-set this process was
	// started with (machines.ConfigSet.Hash of the -config file, or the
	// paper-default hash). The cluster gateway compares it across shards:
	// two shards answering the same spec hash with different hardware
	// would silently disagree on cycles.
	ConfigHash string `json:"config_hash,omitempty"`
	// Journal reports the durability state when the service journals
	// (nil otherwise): append lag, last-fsync age, truncated-frame
	// counts, and what startup replay restored.
	Journal *JournalHealth `json:"journal,omitempty"`
	Time    string         `json:"time"`
}

// JournalHealth is the /healthz durability section.
type JournalHealth struct {
	journal.Stats
	// AppendErrors counts lifecycle transitions the journal failed to
	// persist; non-zero degrades the service.
	AppendErrors uint64      `json:"append_errors"`
	Replay       ReplayStats `json:"replay"`
}

// Healthz assembles the health snapshot: degraded when the queue is at
// least 80% full or any breaker is not closed.
func (s *Service) Healthz() Health {
	h := Health{
		Status:     "ok",
		Workers:    s.pool.Workers(),
		QueueDepth: s.pool.QueueDepth(),
		QueueCap:   s.pool.QueueCap(),
		Breakers:   s.breakers.States(),
		Faults:     s.pool.Faults().Snapshot(),
		ConfigHash: s.configHash,
		Time:       time.Now().UTC().Format(time.RFC3339),
	}
	// Feed the brownout controller from the health probe too: a service
	// receiving only ?tier=simulate traffic still keeps the controller's
	// view (and the brownout gauge) current.
	s.Metrics().setBrownoutActive(s.brownout.Observe(s.brownoutInputs()))
	h.Brownout = s.brownout.Stats()
	if s.journal != nil {
		h.Journal = &JournalHealth{
			Stats:        s.journal.Stats(),
			AppendErrors: s.Metrics().JournalAppendErrors(),
			Replay:       s.ReplayStats(),
		}
		if h.Journal.AppendErrors > 0 {
			h.Degraded = true
		}
	}
	if h.QueueCap > 0 && h.QueueDepth*5 >= h.QueueCap*4 {
		h.Degraded = true
	}
	for _, st := range h.Breakers {
		if st != resilience.Closed {
			h.Degraded = true
		}
	}
	if h.Degraded {
		h.Status = "degraded"
	}
	return h
}

// handleHealthz answers 200 when healthy and 503 when degraded — the
// same JSON body either way — so load balancers acting on the status
// code alone pull a degraded replica out of rotation.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Healthz()
	status := http.StatusOK
	if h.Degraded {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// Readiness is the GET /readyz payload: liveness minus the states
// where new work should go elsewhere. A draining process (SIGTERM
// received, finishing in-flight jobs) and a degraded one are both
// not-ready; only drain leaves /healthz untouched, which is the point
// of the split — a gateway stops routing to a draining shard without
// the health prober declaring it dead.
type Readiness struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	Degraded bool `json:"degraded"`
	// Brownout is true while ?tier=auto requests are being answered
	// from the estimate tier. A browned-out shard stays ready — it is
	// answering, just at reduced fidelity — so gateways keep routing to
	// it instead of concentrating load on the remaining shards.
	Brownout bool   `json:"brownout,omitempty"`
	Shard    string `json:"shard,omitempty"`
	// ConfigHash identifies the hardware config-set this process was
	// started with; the gateway's prober records it and refuses to route
	// while ready shards disagree (a split-config cluster would return
	// different cycles for the same job depending on routing).
	ConfigHash string `json:"config_hash,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// Readiness assembles the readiness snapshot.
func (s *Service) Readiness() Readiness {
	rd := Readiness{
		Draining:   s.Draining(),
		Degraded:   s.Healthz().Degraded,
		Brownout:   s.Metrics().BrownoutActive(),
		Shard:      s.shardID,
		ConfigHash: s.configHash,
	}
	switch {
	case rd.Draining:
		rd.Reason = "draining"
	case rd.Degraded:
		rd.Reason = "degraded"
	default:
		rd.Ready = true
	}
	return rd
}

// handleReadyz answers 200 when the service should receive new work
// and 503 when it should not (draining or degraded), with the same
// JSON body either way. /healthz keeps its liveness semantics and its
// body unchanged.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := s.Readiness()
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}

// maxReplayBodyBytes bounds POST /v1/replay bodies: a rebalance ships
// a whole registry (up to MaxJobs jobs plus the memo table), far
// bigger than one job spec.
const maxReplayBodyBytes = 64 << 20

// ReplayRequest is the POST /v1/replay body: jobs and memoized
// results recovered from a departed shard's journal (journal.Export +
// RecoverJobs), shipped here by the gateway's rebalance path.
type ReplayRequest struct {
	Jobs []Job                  `json:"jobs,omitempty"`
	Memo map[string]core.Result `json:"memo,omitempty"`
}

// handleReplay folds a rebalance payload into the service via
// IngestJobs. A journal append failure mid-ingest answers 503 with
// the partial stats — the rebalance must be driven again; everything
// that landed dedups on the retry.
func (s *Service) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReplayBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, httpError{http.StatusBadRequest, "bad replay payload: " + err.Error()})
		return
	}
	st, err := s.IngestJobs(req.Jobs, req.Memo)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": err.Error(),
			"stats": st,
		})
		return
	}
	writeJSON(w, http.StatusOK, st)
}
