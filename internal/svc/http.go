package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"sigkern/internal/report"
)

// maxBodyBytes bounds request bodies; job specs are small.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs        submit a job (JobSpec JSON); ?wait=1 blocks
//	GET  /v1/jobs        list tracked jobs
//	GET  /v1/jobs/{id}   one job's status and result
//	GET  /v1/tables/3    regenerate the paper's Table 3 (?format=text)
//	GET  /metrics        flat-text metrics
//	GET  /healthz        liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/tables/3", s.handleTable3)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

type httpError struct {
	status int
	msg    string
}

func (e httpError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he httpError
	if errors.As(err, &he) {
		status = he.status
	} else if errors.Is(err, ErrPoolClosed) {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, httpError{http.StatusBadRequest, "bad job spec: " + err.Error()})
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		if job.ID == "" {
			// Rejected before registration (bad machine, kernel, workload).
			writeError(w, httpError{http.StatusBadRequest, err.Error()})
		} else {
			writeError(w, err) // registered but not enqueued (pool closed)
		}
		return
	}
	if wantWait(r) {
		final, werr := s.Wait(r.Context(), job.ID)
		if werr != nil {
			writeError(w, werr)
			return
		}
		writeJSON(w, http.StatusOK, final)
		return
	}
	status := http.StatusAccepted
	if job.State.Terminal() {
		status = http.StatusOK // cache hit: done before the response
	}
	writeJSON(w, status, job)
}

func wantWait(r *http.Request) bool {
	v := strings.ToLower(r.URL.Query().Get("wait"))
	return v == "1" || v == "true" || v == "yes"
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, httpError{http.StatusNotFound, fmt.Sprintf("unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleTable3(w http.ResponseWriter, r *http.Request) {
	td, err := s.Table3(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	if strings.EqualFold(r.URL.Query().Get("format"), "text") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := report.Table(w, td.Title, td.Headers, td.Rows); err != nil {
			writeError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, td)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.Metrics().Snapshot().WriteText(w)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.pool.Workers(),
		"time":    time.Now().UTC().Format(time.RFC3339),
	})
}
