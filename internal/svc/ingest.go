package svc

import (
	"encoding/json"
	"sort"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/journal"
	"sigkern/internal/obs"
)

// sortedMemoKeys returns the memo map's keys in sorted order so
// seeding (and its conflict accounting) is deterministic run to run.
func sortedMemoKeys(m map[string]core.Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// foldState is the pure half of journal replay: a job registry
// reconstructed from recovered journal state with no live service
// behind it. Startup recovery folds a journal.Open recovery and adopts
// the result; cluster rebalance folds a departed shard's exported log
// (journal.Export) and ships the jobs to its hash-ring successor
// instead.
type foldState struct {
	seq          uint64
	jobs         map[string]*Job
	order        []string
	idem         map[string]string
	evicted      map[string]bool
	evictedOrder []string
	// memo accumulates terminal cycle counts keyed by canonical spec
	// hash, with the same first-writer-wins determinism guard the pool
	// memo applies; memoOrder keeps seeding deterministic.
	memo      map[string]core.Result
	memoOrder []string
	stats     ReplayStats
}

// foldRecovery folds a journal recovery — snapshot first, then the log
// records appended after it — into a standalone registry. It never
// fails: bad records are counted and skipped, conflicting results are
// refused and counted.
func foldRecovery(rec *journal.Recovery) *foldState {
	f := &foldState{
		jobs:    make(map[string]*Job),
		idem:    make(map[string]string),
		evicted: make(map[string]bool),
		memo:    make(map[string]core.Result),
		stats: ReplayStats{
			SnapshotLoaded:  rec.Stats.SnapshotLoaded,
			SnapshotCorrupt: rec.Stats.SnapshotCorrupt,
			SegmentsRead:    rec.Stats.SegmentsRead,
			Truncations:     rec.Stats.Truncations,
			TruncatedBytes:  rec.Stats.TruncatedBytes,
		},
	}
	if rec.Snapshot != nil {
		var snap serviceSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			f.stats.SnapshotLoaded = false
			f.stats.SnapshotCorrupt = true
		} else {
			f.seq = snap.Seq
			for i := range snap.Jobs {
				cp := snap.Jobs[i]
				f.jobs[cp.ID] = &cp
				f.order = append(f.order, cp.ID)
				if cp.IdemKey != "" {
					f.idem[cp.IdemKey] = cp.ID
				}
				f.stats.JobsRestored++
			}
			for _, id := range snap.Evicted {
				f.evicted[id] = true
				f.evictedOrder = append(f.evictedOrder, id)
			}
			for _, k := range sortedMemoKeys(snap.Memo) {
				f.seedMemo(k, snap.Memo[k])
			}
		}
	}
	for _, raw := range rec.Records {
		var ev jobEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			f.stats.BadRecords++
			continue
		}
		f.apply(ev)
	}
	return f
}

// seedMemo folds one terminal result into the memo under the
// determinism guard: a hash already bound to a different cycle count
// is corruption, counted and refused — first writer wins, never a
// wrong number.
func (f *foldState) seedMemo(hash string, r core.Result) {
	if prev, ok := f.memo[hash]; ok {
		if prev.Cycles != r.Cycles {
			f.stats.Conflicts++
			return
		}
	} else {
		f.memoOrder = append(f.memoOrder, hash)
	}
	f.memo[hash] = r
	f.stats.ResultsRestored++
}

// apply folds one log record into the registry.
func (f *foldState) apply(ev jobEvent) {
	f.stats.RecordsApplied++
	switch ev.Type {
	case eventAccepted:
		if ev.ID == "" || ev.Spec == nil {
			f.stats.BadRecords++
			return
		}
		if _, exists := f.jobs[ev.ID]; exists {
			return // duplicate append (e.g. replayed twice); first wins
		}
		if ev.Seq > f.seq {
			f.seq = ev.Seq
		}
		j := &Job{
			ID:        ev.ID,
			Spec:      *ev.Spec,
			Hash:      ev.Hash,
			IdemKey:   ev.IdemKey,
			State:     Queued,
			Submitted: ev.Time,
			// Log-record replay reconstructs the lifecycle trace from
			// the journaled transitions (acceptance implies queueing:
			// both were durable before the client heard about the job).
			Trace: []obs.Event{
				{Name: obs.EventAccepted, Time: ev.Time},
				{Name: obs.EventQueued, Time: ev.Time},
			},
		}
		f.jobs[j.ID] = j
		f.order = append(f.order, j.ID)
		if j.IdemKey != "" {
			f.idem[j.IdemKey] = j.ID
		}
		f.stats.JobsRestored++
	case eventBatch:
		// One group-commit frame restores every member under its
		// original ID. Members fold exactly like individually accepted
		// jobs (duplicates first-win, the record's Seq advances the
		// counter once), so the rest of the log — started/done/failed
		// events for members — applies unchanged. Replayed members stay
		// groupCommit: their re-run transitions keep riding amortized
		// syncs.
		if len(ev.Batch) == 0 {
			f.stats.BadRecords++
			return
		}
		if ev.Seq > f.seq {
			f.seq = ev.Seq
		}
		for _, m := range ev.Batch {
			if m.ID == "" {
				f.stats.BadRecords++
				continue
			}
			if _, exists := f.jobs[m.ID]; exists {
				continue
			}
			j := &Job{
				ID:        m.ID,
				Spec:      m.Spec,
				Hash:      m.Hash,
				State:     Queued,
				Submitted: ev.Time,
				Trace: []obs.Event{
					{Name: obs.EventAccepted, Time: ev.Time, Note: "batch"},
					{Name: obs.EventQueued, Time: ev.Time},
				},
				groupCommit: true,
			}
			f.jobs[j.ID] = j
			f.order = append(f.order, j.ID)
			f.stats.JobsRestored++
		}
	case eventStarted:
		if j, ok := f.jobs[ev.ID]; ok && !j.State.Terminal() {
			j.State = Running
			j.Started = ev.Time
			j.Trace = append(j.Trace, obs.Event{Name: obs.EventStarted, Time: ev.Time})
		}
	case eventDone:
		if ev.Result == nil {
			f.stats.BadRecords++
			return
		}
		// Seed the memo even when the job itself is unknown (its
		// acceptance may sit behind a truncated frame): the cycle
		// count is still good and still saves a re-simulation.
		if ev.Hash != "" {
			f.seedMemo(ev.Hash, *ev.Result)
		}
		if j, ok := f.jobs[ev.ID]; ok && !j.State.Terminal() {
			j.State = Done
			j.Result = ev.Result
			j.FromCache = ev.FromCache
			j.Finished = ev.Time
			note := ""
			if ev.FromCache {
				note = "cache hit"
			}
			j.Trace = append(j.Trace, obs.Event{Name: obs.EventDone, Time: ev.Time, Note: note})
		}
	case eventFailed:
		if j, ok := f.jobs[ev.ID]; ok && !j.State.Terminal() {
			j.State = Failed
			j.Error = ev.Error
			j.Finished = ev.Time
			j.Trace = append(j.Trace, obs.Event{Name: obs.EventFailed, Time: ev.Time, Note: ev.Error})
		}
	case eventAborted:
		if j, ok := f.jobs[ev.ID]; ok {
			delete(f.jobs, ev.ID)
			if j.IdemKey != "" && f.idem[j.IdemKey] == ev.ID {
				delete(f.idem, j.IdemKey)
			}
			f.removeFromOrder(ev.ID)
		}
	case eventEvicted:
		if j, ok := f.jobs[ev.ID]; ok {
			delete(f.jobs, ev.ID)
			if j.IdemKey != "" && f.idem[j.IdemKey] == ev.ID {
				delete(f.idem, j.IdemKey)
			}
			f.removeFromOrder(ev.ID)
			f.evicted[ev.ID] = true
			f.evictedOrder = append(f.evictedOrder, ev.ID)
		}
	default:
		f.stats.BadRecords++
	}
}

func (f *foldState) removeFromOrder(id string) {
	for i, jid := range f.order {
		if jid == id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			return
		}
	}
}

// RecoverJobs folds an exported journal recovery (journal.Export) into
// the jobs and memoized results it describes, with no live service:
// the gateway-side half of cluster rebalance. Jobs come back in
// submission order with their lifecycle traces; memo maps canonical
// spec hash -> cycle count for every terminal result in the log,
// including results whose job was since evicted. Stats carries the
// same accounting a startup replay of the log would report.
func RecoverJobs(rec *journal.Recovery) ([]Job, map[string]core.Result, ReplayStats) {
	f := foldRecovery(rec)
	jobs := make([]Job, 0, len(f.order))
	for _, id := range f.order {
		jobs = append(jobs, f.jobs[id].clone(true))
	}
	memo := make(map[string]core.Result, len(f.memo))
	for k, v := range f.memo {
		memo[k] = v
	}
	return jobs, memo, f.stats
}

// IngestStats describes what one IngestJobs call folded in.
type IngestStats struct {
	// JobsIngested jobs entered the registry under their original IDs;
	// Requeued of those were non-terminal and are running again here.
	JobsIngested int `json:"jobs_ingested"`
	Requeued     int `json:"requeued"`
	// ResultsSeeded terminal cycle counts from the memo argument joined
	// this shard's memo table.
	ResultsSeeded int `json:"results_seeded"`
	// Duplicates were already present (same job ID, an evicted ID, or a
	// live job under the same idempotency key) — the usual case when a
	// rerouted client already resubmitted the work here.
	Duplicates int `json:"duplicates,omitempty"`
	// Conflicts are results that disagreed with an already-seeded cycle
	// count for the same spec hash: corruption surfaced by the
	// determinism guard. The conflicting import is refused, never
	// served.
	Conflicts int `json:"conflicts,omitempty"`
	// Rejected jobs were malformed (empty ID, invalid spec, terminal
	// without a result) or carried a conflicting result.
	Rejected int `json:"rejected,omitempty"`
}

// IngestJobs folds jobs and memoized results recovered from another
// shard's journal (RecoverJobs) into this service: the receiving half
// of cluster rebalance. Jobs keep their original IDs and idempotency
// keys, so a client polling a rebalanced job ID — or blindly
// resubmitting its key — finds the original work here. Terminal jobs
// are registered as-is and their results seeded into the memo under
// the determinism guard; non-terminal jobs are re-enqueued. Everything
// ingested is journaled to this shard's own log before the call
// returns, so a subsequent crash here does not lose the handoff. On a
// journal append failure the ingest stops (ErrDurability); the stats
// report what landed before the failure and the rebalance must be
// driven again — already-ingested jobs dedup as Duplicates.
func (s *Service) IngestJobs(jobs []Job, memo map[string]core.Result) (IngestStats, error) {
	var st IngestStats
	for _, k := range sortedMemoKeys(memo) {
		if s.pool.SeedMemo(k, memo[k]) {
			st.ResultsSeeded++
		} else {
			st.Conflicts++
		}
	}
	type requeue struct {
		id   string
		spec JobSpec
		hash string
	}
	var rq []requeue
	flush := func() error {
		for _, r := range rq {
			if err := s.enqueue(r.id, r.spec, r.hash); err != nil {
				s.finish(r.id, core.Result{}, false, err)
				continue
			}
			st.Requeued++
		}
		return nil
	}

	s.mu.Lock()
	for i := range jobs {
		j := jobs[i]
		if j.ID == "" {
			st.Rejected++
			continue
		}
		norm, err := j.Spec.Normalize()
		if err != nil {
			st.Rejected++
			continue
		}
		if _, live := s.jobs[j.ID]; live || s.evicted[j.ID] {
			st.Duplicates++
			continue
		}
		if j.IdemKey != "" {
			if id, ok := s.idem[j.IdemKey]; ok {
				if _, live := s.jobs[id]; live {
					// The key is already bound to live work here — a
					// rerouted client got there first. That job answers.
					st.Duplicates++
					continue
				}
				delete(s.idem, j.IdemKey)
			}
		}
		cp := j
		cp.Spec = norm
		if cp.Hash == "" {
			if cp.Hash, err = norm.Hash(); err != nil {
				st.Rejected++
				continue
			}
		}
		cp.Trace = append([]obs.Event(nil), j.Trace...)
		switch {
		case cp.State == Done:
			if cp.Result == nil {
				st.Rejected++
				continue
			}
			// The determinism guard arbitrates imports too: a result that
			// disagrees with this shard's memo for the same hash is
			// refused outright rather than registered and served.
			if !s.pool.SeedMemo(cp.Hash, *cp.Result) {
				st.Conflicts++
				st.Rejected++
				continue
			}
		case cp.State == Failed:
			// Registered as-is: the failure already happened and was
			// already reported; re-running it here would duplicate work
			// the origin shard completed.
		default:
			cp.State = Queued
			cp.Result = nil
			cp.FromCache = false
			cp.Error = ""
			cp.Started, cp.Finished = time.Time{}, time.Time{}
			cp.Trace = append(cp.Trace, obs.Event{Name: obs.EventRequeued, Time: time.Now(), Note: "rebalance ingest"})
		}
		if jerr := s.journalAcceptedLocked(&cp); jerr != nil {
			s.mu.Unlock()
			_ = flush()
			return st, jerr
		}
		s.jobs[cp.ID] = &cp
		s.order = append(s.order, cp.ID)
		if cp.IdemKey != "" {
			s.idem[cp.IdemKey] = cp.ID
		}
		st.JobsIngested++
		switch cp.State {
		case Done:
			s.journalEventLocked(eventDone, &cp)
		case Failed:
			s.journalEventLocked(eventFailed, &cp)
		default:
			rq = append(rq, requeue{id: cp.ID, spec: norm, hash: cp.Hash})
		}
	}
	s.evictLocked()
	s.mu.Unlock()
	_ = flush()
	return st, nil
}
