package svc

import (
	"context"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/machines"
)

// lanesDelta returns a VIRAM config override with the lanes datapath
// scaled to n (the viram.Lanes axis expansion, spelled by hand).
func lanesDelta(t *testing.T, n int) *machines.ConfigSet {
	t.Helper()
	set := machines.DefaultConfigSet()
	v := *set.VIRAM
	v.Lanes = n
	v.FPLanes = n
	v.DRAM.SeqWordsPerCycle = n
	v.DRAM.AddrGens = n / 2
	if v.DRAM.AddrGens < 1 {
		v.DRAM.AddrGens = 1
	}
	return &machines.ConfigSet{VIRAM: &v}
}

// TestSpecConfigHashIdentity pins the tentpole's identity contract at
// the spec level: no override, a default-equal override, and an
// override for a machine the spec does not run all hash byte-identical
// to a legacy spec; a real override hashes distinctly.
func TestSpecConfigHashIdentity(t *testing.T) {
	base := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}
	legacy, err := base.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	legacyHash, err := legacy.Hash()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("default-equal override collapses", func(t *testing.T) {
		spec := base
		set := machines.DefaultConfigSet()
		spec.Config = &set
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if norm.Config != nil {
			t.Fatalf("default-equal config survived: %+v", norm.Config)
		}
		h, _ := norm.Hash()
		if h != legacyHash {
			t.Fatalf("hash %s != legacy %s", h, legacyHash)
		}
	})

	t.Run("irrelevant section collapses", func(t *testing.T) {
		spec := base
		ppcCfg := *machines.DefaultConfigSet().PPC
		ppcCfg.IssueWidth = 4
		spec.Config = &machines.ConfigSet{PPC: &ppcCfg}
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if norm.Config != nil {
			t.Fatalf("PPC override survived on a VIRAM spec: %+v", norm.Config)
		}
		h, _ := norm.Hash()
		if h != legacyHash {
			t.Fatalf("hash %s != legacy %s", h, legacyHash)
		}
	})

	t.Run("real override hashes distinctly", func(t *testing.T) {
		spec := base
		spec.Config = lanesDelta(t, 4)
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if norm.Config == nil {
			t.Fatal("real override normalized away")
		}
		h, _ := norm.Hash()
		if h == legacyHash {
			t.Fatal("lanes=4 override hashed like the paper default")
		}
		other := base
		other.Config = lanesDelta(t, 2)
		onorm, _ := other.Normalize()
		oh, _ := onorm.Hash()
		if oh == h || oh == legacyHash {
			t.Fatalf("lanes=2 hash %s collides", oh)
		}
	})
}

// TestNoCrossConfigCacheHits is the wrong-config regression suite: the
// same (machine, kernel, workload) under different hardware configs
// must never share a memo entry, join the same coalesce group, or —
// the PR 9 hazard — reuse a cached per-worker machine instance built
// for other hardware. One worker forces every job through the same
// reuse cache; run under -race this is also the config path's data-race
// check.
func TestNoCrossConfigCacheHits(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{
		Workers: 1,
		// Sample aggressively: every reuse re-runs on a fresh instance
		// and compares cycles, so a key collision across configs would
		// surface as ErrDeterminism, not a silent wrong answer.
		ReuseSampleEvery: 2,
		JobTimeout:       time.Minute,
	}})
	defer s.Close()

	configs := []*machines.ConfigSet{nil, lanesDelta(t, 2), lanesDelta(t, 16)}
	const rounds = 6

	// One batch interleaving the three hardware variants through the one
	// worker — the reuse cache is the batch fast path, so this drives
	// the exact PR 9 hazard: each round uses a fresh workload (no memo
	// short-circuit), and the same config recurs across rounds so cached
	// instances are really reused while the variants alternate.
	var specs []JobSpec
	for round := 0; round < rounds; round++ {
		for ci := range configs {
			w := smallWorkload()
			w.CornerTurn.Cols = 32 * (round + 1)
			specs = append(specs, JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w, Config: configs[ci]})
		}
	}
	run, err := s.SubmitBatch(context.Background(), specs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cycles := make([]uint64, len(specs))
	for br := range run.Results() {
		if br.State != Done || br.Result == nil {
			t.Fatalf("cell %d: state %s error %q", br.Index, br.State, br.Error)
		}
		cycles[br.Index] = br.Result.Cycles
	}

	// Within every round the three hardware variants ran the same
	// workload: a cross-config memo hit, coalesce join, or reuse-cache
	// collision would collapse two of the three cycle counts.
	for round := 0; round < rounds; round++ {
		a, b, c := cycles[3*round], cycles[3*round+1], cycles[3*round+2]
		if a == b || a == c || b == c {
			t.Fatalf("round %d: config variants share cycle counts: %d %d %d", round, a, b, c)
		}
	}

	// The determinism guard re-ran sampled reuses on fresh instances and
	// compared cycles: a reuse-cache key collision across configs would
	// have tripped it, failing those jobs. Zero trips plus reuses > 0
	// means instances were actually reused — under the composed
	// (machine, config-hash) key, never across hardware.
	snap := s.Metrics().Snapshot()
	if snap.Determinism != 0 {
		t.Fatalf("determinism guard tripped %d times", snap.Determinism)
	}
	if snap.MachineReuses == 0 {
		t.Fatal("no machine instance was ever reused; the test exercised nothing")
	}
}

// TestDurableReplayRestoresConfigJob: a config-carrying job's spec —
// override included — rides the WAL, so a crash and replay restores
// the job with bit-identical cycles and re-seeds the memo under the
// config-aware hash.
func TestDurableReplayRestoresConfigJob(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, durableOpts())
	w := smallWorkload()
	spec := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w, Config: lanesDelta(t, 2)}

	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	legacy := spec
	legacy.Config = nil
	legacyJob, err := s.Submit(legacy)
	if err != nil {
		t.Fatal(err)
	}
	legacyDone, err := s.Wait(context.Background(), legacyJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if legacyDone.Result.Cycles == done.Result.Cycles {
		t.Fatalf("override did not change cycles (%d)", done.Result.Cycles)
	}
	crash(s)

	s2 := openDurable(t, dir, durableOpts())
	defer s2.Close()
	got, ok := s2.Job(done.ID)
	if !ok {
		t.Fatalf("config job %s lost in the crash", done.ID)
	}
	if got.State != Done || got.Result == nil || got.Result.Cycles != done.Result.Cycles {
		t.Fatalf("replayed as %+v, want cycles %d", got, done.Result.Cycles)
	}
	if got.Spec.Config == nil || got.Spec.ConfigHash() != spec.Config.Hash() {
		t.Fatalf("replayed spec lost its config: %+v", got.Spec)
	}
	// The memo came back under the config-aware hash: resubmitting both
	// variants is served from cache with their own — distinct — cycles.
	again, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	againDone, err := s2.Wait(context.Background(), again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !againDone.FromCache && againDone.ID == "" {
		t.Fatalf("resubmit = %+v", againDone)
	}
	if againDone.Result.Cycles != done.Result.Cycles {
		t.Fatalf("config resubmit cycles %d, want %d", againDone.Result.Cycles, done.Result.Cycles)
	}
	legacyAgain, err := s2.Submit(legacy)
	if err != nil {
		t.Fatal(err)
	}
	legacyAgainDone, err := s2.Wait(context.Background(), legacyAgain.ID)
	if err != nil {
		t.Fatal(err)
	}
	if legacyAgainDone.Result.Cycles != legacyDone.Result.Cycles {
		t.Fatalf("legacy resubmit cycles %d, want %d", legacyAgainDone.Result.Cycles, legacyDone.Result.Cycles)
	}
}
