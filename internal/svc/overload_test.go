package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/obs"
	"sigkern/internal/resilience"
)

func postJobRaw(t *testing.T, url string, spec JobSpec, hdr map[string]string) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeParamError asserts a 400 with a structured ParamError naming
// the parameter.
func decodeParamError(t *testing.T, resp *http.Response, param string) ParamError {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var pe ParamError
	if err := json.NewDecoder(resp.Body).Decode(&pe); err != nil {
		t.Fatal(err)
	}
	if pe.Parameter != param {
		t.Fatalf("ParamError names %q, want %q", pe.Parameter, param)
	}
	if pe.Error == "" || len(pe.Want) == 0 {
		t.Fatalf("ParamError missing message or accepted values: %+v", pe)
	}
	return pe
}

// TestTimeoutParamError is the satellite regression: a bad ?timeout=
// must answer the same structured 400 body every other rejected
// parameter gets, not a bare message.
func TestTimeoutParamError(t *testing.T) {
	_, srv := newTestServer(t)
	spec := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}

	resp := postJobRaw(t, srv.URL+"/v1/jobs?timeout=bogus", spec, nil)
	pe := decodeParamError(t, resp, "timeout")
	if pe.Value != "bogus" {
		t.Fatalf("ParamError value %q, want the offending input", pe.Value)
	}

	resp = postJobRaw(t, srv.URL+"/v1/jobs?timeout=-5s", spec, nil)
	decodeParamError(t, resp, "timeout")
}

func TestPriorityParamError(t *testing.T) {
	_, srv := newTestServer(t)
	resp := postJobRaw(t, srv.URL+"/v1/jobs?priority=urgent", JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}, nil)
	pe := decodeParamError(t, resp, "priority")
	if len(pe.Want) != 2 || pe.Want[0] != "batch" || pe.Want[1] != "interactive" {
		t.Fatalf("ParamError offers %v, want [batch interactive]", pe.Want)
	}
}

func TestBudgetHeaderValidation(t *testing.T) {
	_, srv := newTestServer(t)
	resp := postJobRaw(t, srv.URL+"/v1/jobs", JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn},
		map[string]string{"X-Deadline-Budget": "soon"})
	decodeParamError(t, resp, "X-Deadline-Budget")
}

// TestPoolPriorityAdmission pins the two-level queue's contract: with
// one gated worker, queued interactive tasks all run before any queued
// batch task, regardless of submission order.
func TestPoolPriorityAdmission(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 16, MemoCapacity: -1})
	defer p.Close()

	gate := make(chan struct{})
	gateFut, err := p.Submit(Task{Label: "gate", Run: func(ctx context.Context) (core.Result, error) {
		<-gate
		return core.Result{}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	mk := func(label string, pr Priority) Task {
		return Task{Label: label, Priority: pr, Run: func(context.Context) (core.Result, error) {
			mu.Lock()
			order = append(order, label)
			mu.Unlock()
			return core.Result{}, nil
		}}
	}
	// Batch submitted FIRST: strict priority, not FIFO, must decide.
	var futs []*Future
	for i := 0; i < 3; i++ {
		f, err := p.Submit(mk(fmt.Sprintf("batch-%d", i), PriorityBatch))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for i := 0; i < 3; i++ {
		f, err := p.Submit(mk(fmt.Sprintf("inter-%d", i), PriorityInteractive))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := gateFut.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("ran %d tasks, want 6", len(order))
	}
	for i, label := range order[:3] {
		if label[:5] != "inter" {
			t.Fatalf("position %d ran %q: batch overtook queued interactive work (order %v)", i, label, order)
		}
	}
}

// TestBatchShedsBeforeInteractive: once the interactive queue is 3/4
// full, non-blocking batch admissions shed immediately — the batch
// queue's own headroom must not keep absorbing work that would starve
// the next interactive burst.
func TestBatchShedsBeforeInteractive(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 4, MemoCapacity: -1})
	defer p.Close()

	gate := make(chan struct{})
	defer close(gate)
	running := make(chan struct{})
	if _, err := p.Submit(Task{Label: "gate", Run: func(ctx context.Context) (core.Result, error) {
		close(running)
		<-gate
		return core.Result{}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the gate up so it no longer occupies
	// a queue slot, then fill the interactive queue to exactly 3/4.
	<-running
	for i := 0; i < 3; i++ {
		if _, err := p.Submit(Task{Label: "fill", Run: func(context.Context) (core.Result, error) {
			return core.Result{}, nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := p.TrySubmit(Task{Label: "late-batch", Priority: PriorityBatch,
		Run: func(context.Context) (core.Result, error) { return core.Result{}, nil }})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch admission at 3/4 interactive occupancy: err = %v, want ErrOverloaded", err)
	}
	snap := p.Metrics().Snapshot()
	if snap.ShedBatch != 1 {
		t.Fatalf("jobs_shed_batch = %d, want 1", snap.ShedBatch)
	}
	// Interactive still has the last slot.
	if _, err := p.TrySubmit(Task{Label: "late-inter",
		Run: func(context.Context) (core.Result, error) { return core.Result{}, nil }}); err != nil {
		t.Fatalf("interactive admission with one slot left: %v", err)
	}
}

// seedExecWindow plants synthetic executed-job latencies so the cached
// p99 reads as roughly lat.
func seedExecWindow(m *Metrics, lat time.Duration, n int) {
	cell := obs.Labels{Machine: "VIRAM", Kernel: string(core.CornerTurn)}
	for i := 0; i < n; i++ {
		m.jobStarted()
		m.jobFinished(cell, true, true, false, false, lat)
	}
	m.invalidateExecQuantiles()
}

// TestBudgetFastReject: when the remaining budget cannot cover even
// one executed-job p99, admission fails fast with ErrBudgetExhausted
// instead of queueing a job that is already dead.
func TestBudgetFastReject(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 1, QueueDepth: 8, MemoCapacity: -1}})
	defer s.Close()
	seedExecWindow(s.Metrics(), 10*time.Second, 32)

	_, _, err := s.AdmitWith(AdmitOptions{Budget: time.Second}, JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("admit with 1s budget against a 10s p99: err = %v, want ErrBudgetExhausted", err)
	}
	if got := s.Metrics().Snapshot().BudgetRejected; got != 1 {
		t.Fatalf("budget_rejected = %d, want 1", got)
	}
	// A generous budget admits.
	job, _, err := s.AdmitWith(AdmitOptions{Budget: time.Minute}, JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
}

// TestBudgetFastRejectSparesMemoHits: a memoized spec is answered in
// microseconds no matter how deep the queue is, so the fast-reject
// must not bounce it.
func TestBudgetFastRejectSparesMemoHits(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 1, QueueDepth: 8}})
	defer s.Close()

	// Run the spec once so the memo holds it.
	job, _, err := s.AdmitWith(AdmitOptions{}, JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	seedExecWindow(s.Metrics(), 10*time.Second, 32)
	if _, _, err := s.AdmitWith(AdmitOptions{Budget: time.Millisecond},
		JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}); err != nil {
		t.Fatalf("memoized spec bounced by budget fast-reject: %v", err)
	}
}

// TestExpiredJobNeverExecutes: a queued job whose deadline budget runs
// out before a worker picks it up is dropped at pickup — its Run must
// never fire, and the drop is counted.
func TestExpiredJobNeverExecutes(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 8, MemoCapacity: -1})
	defer p.Close()

	gate := make(chan struct{})
	gateFut, err := p.Submit(Task{Label: "gate", Run: func(ctx context.Context) (core.Result, error) {
		<-gate
		return core.Result{}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Bool
	doomed, err := p.Submit(Task{
		Label:   "doomed",
		Expires: time.Now().Add(50 * time.Millisecond),
		Run: func(context.Context) (core.Result, error) {
			ran.Store(true)
			return core.Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the worker until the budget is long gone.
	time.Sleep(150 * time.Millisecond)
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := gateFut.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	_, werr := doomed.Wait(ctx)
	if !errors.Is(werr, ErrBudgetExhausted) {
		t.Fatalf("expired job: err = %v, want ErrBudgetExhausted", werr)
	}
	if ran.Load() {
		t.Fatal("expired job's Run fired: it burned a worker slot")
	}
	if got := p.Metrics().Snapshot().ExpiredDropped; got != 1 {
		t.Fatalf("expired_jobs_dropped = %d, want 1", got)
	}
}

// TestBrownoutFlapNoMixedTiers hammers ?tier=auto while another
// goroutine flips the brownout controller as fast as it can. Run under
// -race by `make overload-soak`. The invariant: every response is
// internally consistent — a degraded body means estimate tier AND the
// X-Degraded header, a simulate body means neither. A response
// assembled from two controller reads would violate the pairing.
func TestBrownoutFlapNoMixedTiers(t *testing.T) {
	s := NewService(Options{
		Pool:     PoolOptions{Workers: 4, JobTimeout: time.Minute, MemoCapacity: -1},
		Brownout: resilience.BrownoutConfig{MinHold: time.Nanosecond},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Close()

	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		full := resilience.BrownoutInputs{QueueDepth: 8, QueueCap: 8}
		empty := resilience.BrownoutInputs{QueueDepth: 0, QueueCap: 8}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			in := empty
			if i%2 == 0 {
				in = full
			}
			s.brownout.Observe(in)
		}
	}()

	spec := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}
	var wg sync.WaitGroup
	var violations atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp := postJobRaw(t, srv.URL+"/v1/jobs?tier=auto&wait=1&timeout=30s", spec, nil)
				var job Job
				err := json.NewDecoder(resp.Body).Decode(&job)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					violations.Add(1)
					continue
				}
				headerDegraded := resp.Header.Get("X-Degraded") == "brownout"
				switch {
				case job.Degraded != headerDegraded:
					violations.Add(1)
				case job.Degraded && job.Tier != TierEstimate:
					violations.Add(1)
				case !job.Degraded && job.Tier != TierSimulate && job.Tier != "":
					violations.Add(1)
				case job.Tier == TierAuto:
					violations.Add(1) // auto must never survive resolution
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	flapper.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d responses mixed tiers or mislabeled degradation", n)
	}
}
