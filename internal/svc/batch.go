package svc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/machines"
	"sigkern/internal/obs"
)

// MaxBatchCells is the documented cap on cells per batch group — the
// 413 threshold of POST /v1/batch. It matches the registry's default
// MaxJobs bound: one batch can never evict more history than a full
// registry would anyway.
const MaxBatchCells = 4096

// batchSyncEvery is the group-commit fsync stride: member terminal
// transitions are appended to the journal without an immediate fsync,
// and the batch driver syncs once per this many completions (and once
// at group end). A crash inside a stride loses only those unsynced
// transitions; replay re-runs the affected members from the group's
// accepted record and the deterministic simulators reproduce the same
// cycle counts.
const batchSyncEvery = 32

// ErrBatchTooLarge is returned by Service.SubmitBatch when a group
// exceeds MaxBatchCells; the HTTP layer serves it as 413.
var ErrBatchTooLarge = fmt.Errorf("svc: batch exceeds %d cells", MaxBatchCells)

// ErrBatchEmpty is returned for a batch with no cells.
var ErrBatchEmpty = errors.New("svc: empty batch")

// BatchSpecError reports the first invalid spec in a batch by its
// 0-based index, so the HTTP layer can point the client at the exact
// NDJSON line.
type BatchSpecError struct {
	Index int
	Err   error
}

func (e *BatchSpecError) Error() string {
	return fmt.Sprintf("svc: batch cell %d: %v", e.Index, e.Err)
}

func (e *BatchSpecError) Unwrap() error { return e.Err }

// BatchOptions configures one batch group admission.
type BatchOptions struct {
	// Priority is the admission class for every cell. The zero value
	// is PriorityInteractive; grid sweeps should use PriorityBatch so
	// they queue behind (and shed before) request traffic.
	Priority Priority
	// Budget, when positive, is the group's deadline budget: one
	// drain-estimate check admits or refuses the whole group, and every
	// cell inherits the expiry (cells still queued past it are dropped
	// at worker pickup).
	Budget time.Duration
}

// BatchResult is one completed cell, delivered in completion order.
type BatchResult struct {
	// Index is the cell's 0-based position in the submitted group.
	Index int `json:"index"`
	Job
}

// BatchGrid is the compact grid-expansion form: the cross product
// machines × kernels × workloads, in row-major order (machines outer,
// kernels middle, workloads inner). Empty Machines or Kernels default
// to the five paper machines and the three paper kernels; empty
// Workloads means the paper workload.
type BatchGrid struct {
	Machines  []string         `json:"machines,omitempty"`
	Kernels   []core.KernelID  `json:"kernels,omitempty"`
	Workloads []*core.Workload `json:"workloads,omitempty"`
}

// Expand returns the grid's cells as job specs. Validation happens at
// admission, per cell, so an invalid machine name still reports the
// exact cell index.
func (g BatchGrid) Expand() []JobSpec {
	ms := g.Machines
	if len(ms) == 0 {
		ms = machines.Names()
	}
	ks := g.Kernels
	if len(ks) == 0 {
		ks = core.Kernels()
	}
	ws := g.Workloads
	if len(ws) == 0 {
		ws = []*core.Workload{nil}
	}
	specs := make([]JobSpec, 0, len(ms)*len(ks)*len(ws))
	for _, m := range ms {
		for _, k := range ks {
			for _, w := range ws {
				specs = append(specs, JobSpec{Machine: m, Kernel: k, Workload: w})
			}
		}
	}
	return specs
}

// BatchRun is a running batch group: the acceptance snapshots of every
// member job plus a stream of completions.
type BatchRun struct {
	jobs    []Job
	results chan BatchResult
	abort   chan struct{}
	cancel  sync.Once
	metrics *Metrics
}

// Jobs returns the members' acceptance snapshots, index-aligned with
// the submitted specs.
func (b *BatchRun) Jobs() []Job { return b.jobs }

// Results streams completed cells in completion order; the channel is
// closed after the last cell. The channel is buffered for the whole
// group, so an abandoned consumer never wedges the workers.
func (b *BatchRun) Results() <-chan BatchResult { return b.results }

// Cancel stops the group's unstarted cells: queued cells are dropped at
// worker pickup with context.Canceled, running cells finish normally,
// and completed cells are unaffected. Safe to call more than once.
func (b *BatchRun) Cancel() {
	b.cancel.Do(func() {
		close(b.abort)
		if b.metrics != nil {
			b.metrics.batchCancelled()
		}
	})
}

// SubmitBatch admits a group of specs as one unit — the service half of
// the grid fast path. One admission covers the group: a single
// deadline-budget drain check, one breaker probe per distinct machine
// (not per cell), one registry lock hold for all member registrations,
// and one CRC32C journal record (one fsync) making every member's
// acceptance durable. Cells execute through Pool.SubmitBatch, so cached
// and duplicate cells never occupy a worker slot and cold cells run on
// per-worker reused machine instances. ctx cancellation (or
// BatchRun.Cancel) stops cells that have not started; everything
// already running completes and is journaled.
//
// Unlike the single-job path, batch cells take no Idempotency-Key and
// register none: duplicate simulations are suppressed by the memo table
// and in-flight coalescing, which serve the same purpose without a
// per-cell registry lookup.
func (s *Service) SubmitBatch(ctx context.Context, specs []JobSpec, opts BatchOptions) (*BatchRun, error) {
	if len(specs) == 0 {
		return nil, ErrBatchEmpty
	}
	if len(specs) > MaxBatchCells {
		return nil, ErrBatchTooLarge
	}
	norms := make([]JobSpec, len(specs))
	hashes := make([]string, len(specs))
	for i, spec := range specs {
		norm, err := spec.Normalize()
		if err != nil {
			return nil, &BatchSpecError{Index: i, Err: err}
		}
		hash, err := norm.Hash()
		if err != nil {
			return nil, &BatchSpecError{Index: i, Err: err}
		}
		norms[i], hashes[i] = norm, hash
	}

	// One deadline-budget check for the whole group: either the queue
	// can drain a new admission within the budget or the group is
	// refused now, instead of queueing cells doomed to expire one by
	// one.
	if opts.Budget > 0 {
		if est := s.drainEstimate(opts.Priority); est > opts.Budget {
			s.Metrics().budgetRejected()
			return nil, fmt.Errorf("svc: batch of %d: remaining budget %s below drain estimate %s: %w",
				len(specs), opts.Budget, est, ErrBudgetExhausted)
		}
	}

	// One breaker probe per distinct machine in the group. Outcomes are
	// recorded once per machine at group end: a machine with any genuine
	// execution failure records failure, one that only executed
	// successfully records success, and one that never exercised its
	// backend (all cache hits, or only cancellations) releases the probe.
	type outcome struct {
		executed bool
		failed   bool
	}
	breakers := make(map[string]*outcome)
	for _, norm := range norms {
		if _, ok := breakers[norm.Machine]; ok {
			continue
		}
		if err := s.breakers.Get(norm.Machine).Allow(); err != nil {
			s.Metrics().breakerRejected()
			for name := range breakers {
				s.breakers.Get(name).Cancel()
			}
			return nil, fmt.Errorf("svc: machine %s: %w", norm.Machine, err)
		}
		breakers[norm.Machine] = &outcome{}
	}
	releaseBreakers := func() {
		for name := range breakers {
			s.breakers.Get(name).Cancel()
		}
	}

	// Register every member under one lock hold and journal the whole
	// group's acceptance as one record. A journal failure rolls all of
	// it back — a durable service must not accept work it cannot
	// promise to remember, and a group is accepted whole or not at all.
	now := time.Now()
	members := make([]*Job, len(specs))
	s.mu.Lock()
	for i := range norms {
		s.seq++
		j := &Job{
			ID:          fmt.Sprintf("%sj%06d-%s", s.idPrefix, s.seq, hashes[i][:8]),
			Spec:        norms[i],
			Hash:        hashes[i],
			State:       Queued,
			Tier:        TierSimulate,
			Priority:    opts.Priority,
			Submitted:   now,
			groupCommit: s.journal != nil,
		}
		j.Trace = append(make([]obs.Event, 0, 4),
			obs.Event{Name: obs.EventAccepted, Time: now, Note: "batch"},
			obs.Event{Name: obs.EventQueued, Time: now})
		members[i] = j
	}
	if err := s.journalBatchAcceptedLocked(members); err != nil {
		s.seq -= uint64(len(members))
		s.mu.Unlock()
		releaseBreakers()
		return nil, err
	}
	for _, j := range members {
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	s.evictLocked()
	s.mu.Unlock()
	s.Metrics().batchAccepted(len(specs))

	run := &BatchRun{
		jobs:    make([]Job, len(specs)),
		results: make(chan BatchResult, len(specs)),
		abort:   make(chan struct{}),
		metrics: s.Metrics(),
	}
	for i, j := range members {
		run.jobs[i] = j.clone(false)
	}

	tasks := make([]Task, len(specs))
	for i := range norms {
		i := i
		norm := norms[i]
		id := members[i].ID
		tasks[i] = Task{
			Label:    fmt.Sprintf("%s/%s", norm.Machine, norm.Kernel),
			MemoKey:  hashes[i],
			Cell:     obs.Labels{Machine: norm.Machine, Kernel: string(norm.Kernel)},
			Priority: opts.Priority,
			OnStart:  func() { s.markRunning(id) },
			OnRetry: func(attempt int, err error) {
				s.traceEvent(id, obs.EventRetried, fmt.Sprintf("attempt %d: %v", attempt, err))
			},
			// The machine-reuse path: the worker resolves an instance
			// from its cache and RunOn is a pure function of (spec,
			// instance), so the reuse-sampling guard may re-run it on a
			// fresh instance for verification. Config-carrying cells get
			// a per-spec factory and a config hash that keys the reuse
			// cache, so a design-space batch can never hand a cell an
			// instance built for different hardware.
			Machine:    norm.Machine,
			Factory:    s.factoryFor(norm),
			ConfigHash: norm.ConfigHash(),
			RunOn: func(_ context.Context, m core.Machine) (core.Result, error) {
				return core.Run(m, norm.Kernel, *norm.Workload)
			},
			Abort: run.abort,
		}
		if opts.Budget > 0 {
			tasks[i].Expires = now.Add(opts.Budget)
		}
	}
	futs, err := s.pool.SubmitBatch(ctx, tasks)
	if err != nil {
		// Registered but never enqueued (pool closed or an invalid
		// task): fail every member so the registry reaches a terminal —
		// or, on shutdown, re-enqueueable — state.
		for _, j := range members {
			s.finish(j.ID, core.Result{}, false, err)
		}
		s.syncJournal()
		releaseBreakers()
		return nil, err
	}

	var (
		mu        sync.Mutex // guards breaker outcomes
		wg        sync.WaitGroup
		completed atomic.Uint64
	)
	for i := range futs {
		i := i
		fut := futs[i]
		id := members[i].ID
		machine := norms[i].Machine
		s.wg.Add(1)
		wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer wg.Done()
			res, werr := fut.Wait(context.Background())
			s.finish(id, res, fut.FromCache(), werr)
			if werr == nil && !fut.FromCache() {
				s.recordModelDrift(norms[i], res)
			}
			mu.Lock()
			o := breakers[machine]
			switch {
			case werr == nil && !fut.FromCache():
				o.executed = true
			case werr != nil && !errors.Is(werr, ErrBudgetExhausted) &&
				!errors.Is(werr, context.Canceled) && !errors.Is(werr, ErrPoolClosed):
				o.executed, o.failed = true, true
			}
			mu.Unlock()
			// Amortized group commit: fsync the deferred terminal
			// appends once per stride instead of once per cell.
			if completed.Add(1)%batchSyncEvery == 0 {
				s.syncJournal()
			}
			run.results <- BatchResult{Index: i, Job: s.snapshot(id)}
		}()
	}
	go func() {
		wg.Wait()
		s.syncJournal()
		for name, o := range breakers {
			br := s.breakers.Get(name)
			switch {
			case o.failed:
				br.Record(false)
			case o.executed:
				br.Record(true)
			default:
				br.Cancel()
			}
		}
		close(run.results)
	}()
	return run, nil
}

// syncJournal flushes deferred group-commit appends to disk; a no-op
// without a journal. Failures count like any other append error (and
// degrade /healthz) — the in-memory state is still correct.
func (s *Service) syncJournal() {
	if s.journal == nil {
		return
	}
	if err := s.journal.Sync(); err != nil {
		s.Metrics().journalAppendError()
	}
}
