package svc

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/journal"
)

func durableOpts() Options {
	return Options{Pool: PoolOptions{Workers: 4, JobTimeout: time.Minute}}
}

func openDurable(t *testing.T, dir string, opts Options) *Service {
	t.Helper()
	s, err := OpenDurable(opts, journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// crash abandons a durable service the way SIGKILL would: the pool
// stops but the journal is neither snapshotted nor closed, so the
// next open must recover from the raw log.
func crash(s *Service) {
	s.pool.Close()
	s.wg.Wait()
}

// TestDurableCrashReplayRestoresResults kills a durable service after
// jobs finish and reopens its journal: the terminal jobs come back
// under their original IDs with bit-identical cycle counts, the memo
// table is re-seeded, and an idempotent resubmit finds the original
// job instead of doing the work again.
func TestDurableCrashReplayRestoresResults(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, durableOpts())
	w := smallWorkload()
	specA := JobSpec{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w}
	specB := JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w}

	jobA, err := s.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := s.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	doneA, err := s.Wait(context.Background(), jobA.ID)
	if err != nil {
		t.Fatal(err)
	}
	doneB, err := s.Wait(context.Background(), jobB.ID)
	if err != nil {
		t.Fatal(err)
	}
	crash(s)

	s2 := openDurable(t, dir, durableOpts())
	defer s2.Close()
	st := s2.ReplayStats()
	if st.JobsRestored != 2 || st.ResultsRestored < 2 {
		t.Fatalf("replay stats: %+v", st)
	}
	for _, want := range []Job{doneA, doneB} {
		got, ok := s2.Job(want.ID)
		if !ok {
			t.Fatalf("job %s lost in the crash", want.ID)
		}
		if got.State != Done || got.Result == nil || got.Result.Cycles != want.Result.Cycles {
			t.Fatalf("job %s replayed as %+v, want cycles %d", want.ID, got, want.Result.Cycles)
		}
	}

	// A blind retry of the same spec (no explicit key) finds the
	// original job: on a durable service the spec hash is the key.
	replay, replayed, err := s2.AdmitWithKey("", specA)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed || replay.ID != jobA.ID {
		t.Fatalf("resubmit got %s (replayed=%v), want original %s", replay.ID, replayed, jobA.ID)
	}
	// A genuinely new job for the same spec is served from the
	// restored memo table without re-simulating.
	fresh, replayed, err := s2.AdmitWithKey("fresh-key", specA)
	if err != nil {
		t.Fatal(err)
	}
	if replayed || fresh.ID == jobA.ID {
		t.Fatalf("explicit new key replayed old job: %+v", fresh)
	}
	final, err := s2.Wait(context.Background(), fresh.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.FromCache || final.Result.Cycles != doneA.Result.Cycles {
		t.Fatalf("restored memo not used: %+v", final)
	}
}

// TestDurableCrashRequeuesUnfinishedJobs crashes while a job is still
// executing: the journal holds its acceptance but no terminal state,
// so the restarted service runs it again to completion.
func TestDurableCrashRequeuesUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	factory, release := blockingFactory()
	opts := durableOpts()
	opts.Factory = factory
	s := openDurable(t, dir, opts)

	w := smallWorkload()
	spec := JobSpec{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w}
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, job.ID, Running)
	crash(s)
	release()

	s2 := openDurable(t, dir, durableOpts())
	defer s2.Close()
	if st := s2.ReplayStats(); st.Requeued != 1 {
		t.Fatalf("replay stats: %+v", st)
	}
	final, err := s2.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done || final.Result == nil {
		t.Fatalf("requeued job: %+v", final)
	}
	// Determinism: the re-execution must match a fresh run of the spec.
	ref, _, err := s2.AdmitWithKey("ref", spec)
	if err != nil {
		t.Fatal(err)
	}
	refFinal, err := s2.Wait(context.Background(), ref.ID)
	if err != nil {
		t.Fatal(err)
	}
	if refFinal.Result.Cycles != final.Result.Cycles {
		t.Fatalf("requeued run %d cycles, reference %d", final.Result.Cycles, refFinal.Result.Cycles)
	}
}

// TestDurableDrainSnapshotsAndCompacts closes a durable service
// cleanly: the journal compacts into a snapshot, and a restart
// restores from the snapshot with zero log records to replay.
func TestDurableDrainSnapshotsAndCompacts(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, durableOpts())
	w := smallWorkload()
	job, err := s.Submit(JobSpec{Machine: "PPC", Kernel: core.BeamSteering, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openDurable(t, dir, durableOpts())
	defer s2.Close()
	st := s2.ReplayStats()
	if !st.SnapshotLoaded || st.RecordsApplied != 0 || st.JobsRestored != 1 || st.ResultsRestored < 1 {
		t.Fatalf("post-drain replay: %+v", st)
	}
	got, ok := s2.Job(job.ID)
	if !ok || got.State != Done || got.Result.Cycles != done.Result.Cycles {
		t.Fatalf("snapshot restore: %+v", got)
	}
}

// TestDurableDrainRequeuesInterrupted drains while a job is mid-
// flight: the shutdown fails it in memory (ErrPoolClosed), but the
// snapshot persists it as still queued, so the next process finishes
// it — a deploy restart never turns accepted work into an error.
func TestDurableDrainRequeuesInterrupted(t *testing.T) {
	dir := t.TempDir()
	factory, release := blockingFactory()
	opts := durableOpts()
	opts.Factory = factory
	s := openDurable(t, dir, opts)

	w := smallWorkload()
	job, err := s.Submit(JobSpec{Machine: "AltiVec", Kernel: core.CornerTurn, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, job.ID, Running)
	s.Close() // graceful drain: snapshot + compact
	release()

	s2 := openDurable(t, dir, durableOpts())
	defer s2.Close()
	st := s2.ReplayStats()
	if !st.SnapshotLoaded || st.Requeued != 1 {
		t.Fatalf("drain-interrupted replay: %+v", st)
	}
	final, err := s2.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done || final.Result == nil {
		t.Fatalf("interrupted job after restart: %+v", final)
	}
}

// TestDurableTornTailRecovery appends garbage to the live segment —
// the on-disk shape of a crash mid-write: recovery truncates at the
// first bad frame, counts it, and every completed record still
// replays.
func TestDurableTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, durableOpts())
	w := smallWorkload()
	job, err := s.Submit(JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	crash(s)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openDurable(t, dir, durableOpts())
	defer s2.Close()
	st := s2.ReplayStats()
	if st.Truncations != 1 || st.JobsRestored != 1 {
		t.Fatalf("torn-tail replay: %+v", st)
	}
	got, ok := s2.Job(job.ID)
	if !ok || got.Result == nil || got.Result.Cycles != done.Result.Cycles {
		t.Fatalf("torn tail lost completed work: %+v", got)
	}
	// The loss is surfaced on the health endpoint, not hidden.
	h := s2.Healthz()
	if h.Journal == nil || h.Journal.Replay.Truncations != 1 {
		t.Fatalf("healthz hides the truncation: %+v", h.Journal)
	}
}

// TestDurableEvictionSurvivesCrash: jobs evicted before the crash
// stay evicted after it (Wait says gone, not unknown), and the
// registry bound holds.
func TestDurableEvictionSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts()
	opts.MaxJobs = 2
	s := openDurable(t, dir, opts)
	w := smallWorkload()
	var ids []string
	for _, spec := range []JobSpec{
		{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "AltiVec", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "PPC", Kernel: core.BeamSteering, Workload: &w},
	} {
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), job.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	if !s.wasEvicted(ids[0]) {
		t.Fatalf("oldest job not evicted at MaxJobs=2")
	}
	crash(s)

	s2 := openDurable(t, dir, opts)
	defer s2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := s2.Wait(ctx, ids[0]); !errors.Is(err, ErrJobEvicted) {
		t.Fatalf("evicted job after restart: %v", err)
	}
	for _, id := range ids[1:] {
		if got, ok := s2.Job(id); !ok || got.State != Done {
			t.Fatalf("live job %s after restart: %+v ok=%v", id, got, ok)
		}
	}
}

// TestIdempotencyKeys covers the dedup matrix: explicit keys dedup on
// any service; the spec-hash fallback dedups only on a durable one,
// preserving one-job-per-submit for batch drivers without a journal.
func TestIdempotencyKeys(t *testing.T) {
	w := smallWorkload()
	spec := JobSpec{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w}

	t.Run("explicit key dedups everywhere", func(t *testing.T) {
		s := NewService(durableOpts())
		defer s.Close()
		first, replayed, err := s.AdmitWithKey("k1", spec)
		if err != nil || replayed {
			t.Fatalf("first admit: %v replayed=%v", err, replayed)
		}
		second, replayed, err := s.AdmitWithKey("k1", spec)
		if err != nil || !replayed || second.ID != first.ID {
			t.Fatalf("second admit: %v replayed=%v id=%s want %s", err, replayed, second.ID, first.ID)
		}
	})
	t.Run("no key no journal no dedup", func(t *testing.T) {
		s := NewService(durableOpts())
		defer s.Close()
		first, _, err := s.AdmitWithKey("", spec)
		if err != nil {
			t.Fatal(err)
		}
		second, replayed, err := s.AdmitWithKey("", spec)
		if err != nil || replayed || second.ID == first.ID {
			t.Fatalf("memory-only service deduped: %v replayed=%v", err, replayed)
		}
	})
	t.Run("durable falls back to spec hash", func(t *testing.T) {
		s := openDurable(t, t.TempDir(), durableOpts())
		defer s.Close()
		first, _, err := s.AdmitWithKey("", spec)
		if err != nil {
			t.Fatal(err)
		}
		second, replayed, err := s.AdmitWithKey("", spec)
		if err != nil || !replayed || second.ID != first.ID {
			t.Fatalf("durable spec-hash dedup: %v replayed=%v id=%s want %s", err, replayed, second.ID, first.ID)
		}
	})
}
