package svc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/machines"
)

// Options configures a Service. The zero value is usable.
type Options struct {
	Pool PoolOptions
	// Factory builds fresh machine instances per job; nil means
	// machines.ByName (the paper configurations).
	Factory MachineFactory
	// MaxJobs bounds the job registry; once exceeded the oldest
	// terminal jobs are evicted. <= 0 means 4096.
	MaxJobs int
}

// Service is the simulation job-queue service: it tracks submitted jobs
// by ID, runs them on the pool, and answers status queries. It is safe
// for concurrent use.
type Service struct {
	pool    *Pool
	factory MachineFactory
	maxJobs int

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for eviction and listing
	seq   uint64
}

// NewService starts a service and its pool.
func NewService(opts Options) *Service {
	if opts.Factory == nil {
		opts.Factory = machines.ByName
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 4096
	}
	return &Service{
		pool:    NewPool(opts.Pool),
		factory: opts.Factory,
		maxJobs: opts.MaxJobs,
		jobs:    make(map[string]*Job),
	}
}

// Pool returns the service's worker pool.
func (s *Service) Pool() *Pool { return s.pool }

// Metrics returns the service's registry.
func (s *Service) Metrics() *Metrics { return s.pool.Metrics() }

// Close shuts the pool down after draining running jobs.
func (s *Service) Close() { s.pool.Close() }

// Submit normalizes, registers, and enqueues one job, returning a
// snapshot of its initial state. Cache hits come back already Done.
func (s *Service) Submit(spec JobSpec) (Job, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return Job{}, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return Job{}, err
	}

	s.mu.Lock()
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("j%06d-%s", s.seq, hash[:8]),
		Spec:      norm,
		Hash:      hash,
		State:     Queued,
		Submitted: time.Now(),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.evictLocked()
	s.mu.Unlock()

	fut, err := s.pool.Submit(Task{
		Label:   fmt.Sprintf("%s/%s", norm.Machine, norm.Kernel),
		MemoKey: hash,
		Run: func(context.Context) (core.Result, error) {
			s.markRunning(job.ID)
			return runSpec(s.factory, norm)
		},
	})
	if err != nil {
		s.finish(job.ID, core.Result{}, false, err)
		return s.snapshot(job.ID), err
	}
	go func() {
		res, err := fut.Wait(context.Background())
		s.finish(job.ID, res, fut.FromCache(), err)
	}()
	return s.snapshot(job.ID), nil
}

// Job returns a snapshot of the job with the given ID.
func (s *Service) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns snapshots of every tracked job in submission order.
func (s *Service) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, *j)
		}
	}
	return out
}

// Wait blocks until the job reaches a terminal state or ctx ends, and
// returns the final snapshot.
func (s *Service) Wait(ctx context.Context, id string) (Job, error) {
	// Poll-free would need a per-job channel; jobs are seconds-long, so
	// a short poll keeps the registry simple.
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		j, ok := s.Job(id)
		if !ok {
			return Job{}, fmt.Errorf("svc: unknown job %q", id)
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-tick.C:
		}
	}
}

func (s *Service) markRunning(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && j.State == Queued {
		j.State = Running
		j.Started = time.Now()
	}
}

func (s *Service) finish(id string, res core.Result, fromCache bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.State.Terminal() {
		return
	}
	j.Finished = time.Now()
	j.FromCache = fromCache
	if err != nil {
		j.State = Failed
		j.Error = err.Error()
		return
	}
	j.State = Done
	r := res
	j.Result = &r
}

func (s *Service) snapshot(id string) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return *j
	}
	return Job{}
}

// evictLocked drops the oldest terminal jobs once the registry exceeds
// MaxJobs. Non-terminal jobs are never evicted.
func (s *Service) evictLocked() {
	if len(s.order) <= s.maxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.maxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.State.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Table3 regenerates the paper's Table 3 by fanning every (machine,
// kernel) pair of the paper workload out across the pool. Rows are in
// the paper's machine order, columns in kernel order; cycle counts are
// identical to a serial core.RunStudy (and so to `sigstudy -csv`, the
// input of cmd/compare).
func (s *Service) Table3(ctx context.Context) (*TableData, error) {
	sr, err := RunStudyParallel(ctx, s.pool, s.factory, machineNames(), core.PaperWorkload())
	if err != nil {
		return nil, err
	}
	return table3Data(sr), nil
}

// TableData is a rendered table plus the raw cycle counts behind it.
type TableData struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	// Cycles maps machine -> kernel -> simulated cycles.
	Cycles map[string]map[core.KernelID]uint64 `json:"cycles"`
}

func table3Data(sr *core.StudyResults) *TableData {
	td := &TableData{
		Title:   "Table 3. Experimental results (cycles in 10^3)",
		Headers: []string{"Machine"},
		Cycles:  make(map[string]map[core.KernelID]uint64),
	}
	for _, k := range core.Kernels() {
		td.Headers = append(td.Headers, k.Title())
	}
	for _, name := range sr.MachineNames() {
		row := []string{name}
		td.Cycles[name] = make(map[core.KernelID]uint64)
		for _, k := range core.Kernels() {
			r, ok := sr.Result(name, k)
			if !ok {
				continue
			}
			row = append(row, fmt.Sprintf("%.0f", r.KCycles()))
			td.Cycles[name][k] = r.Cycles
		}
		td.Rows = append(td.Rows, row)
	}
	return td
}

// machineNames returns the five study machines in paper order.
func machineNames() []string {
	var names []string
	for _, m := range machines.All() {
		names = append(names, m.Name())
	}
	return names
}

// RunStudyParallel executes every (machine, kernel) pair of the
// workload through the pool — the concurrent counterpart of
// core.RunStudy. Each job runs on a fresh machine instance from
// factory, so results are bit-identical to the serial study.
func RunStudyParallel(ctx context.Context, p *Pool, factory MachineFactory, names []string, w core.Workload) (*core.StudyResults, error) {
	if factory == nil {
		factory = machines.ByName
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	// Metadata instances: used only for Name/Params, never run.
	ms := make([]core.Machine, len(names))
	for i, name := range names {
		m, err := factory(name)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}

	type cell struct {
		machine string
		kernel  core.KernelID
		fut     *Future
	}
	var cells []cell
	for _, name := range names {
		for _, k := range core.Kernels() {
			name, k := name, k
			spec := JobSpec{Machine: name, Kernel: k, Workload: &w}
			// Memoize under the spec hash. The hash does not cover the
			// factory's machine configurations, so memoization assumes
			// one factory per pool — which Service and the CLI drivers
			// guarantee by construction.
			key := ""
			if h, err := spec.Hash(); err == nil {
				key = h
			}
			fut, err := p.Submit(Task{
				Label:   fmt.Sprintf("%s/%s", name, k),
				MemoKey: key,
				Run: func(context.Context) (core.Result, error) {
					return runSpec(factory, spec)
				},
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{machine: name, kernel: k, fut: fut})
		}
	}
	results := make(map[string]map[core.KernelID]core.Result)
	for _, c := range cells {
		r, err := c.fut.Wait(ctx)
		if err != nil {
			return nil, fmt.Errorf("svc: %s on %s: %w", c.kernel, c.machine, err)
		}
		if results[c.machine] == nil {
			results[c.machine] = make(map[core.KernelID]core.Result)
		}
		results[c.machine][c.kernel] = r
	}
	return core.NewStudyResults(ms, w, results)
}
