package svc

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"sigkern/internal/cache"
	"sigkern/internal/core"
	"sigkern/internal/faults"
	"sigkern/internal/journal"
	"sigkern/internal/machines"
	"sigkern/internal/obs"
	"sigkern/internal/resilience"
	"sigkern/internal/roofline"
)

// ErrJobEvicted is returned by Wait when the asked-for job existed but
// was dropped from the registry by terminal-job eviction — distinct
// from an ID that was never issued, so clients can tell "poll later
// with a fresh submit" from "bogus ID".
var ErrJobEvicted = errors.New("svc: job evicted from registry")

// Options configures a Service. The zero value is usable.
type Options struct {
	Pool PoolOptions
	// Factory builds fresh machine instances per job; nil means
	// machines.ByName (the paper configurations). The factory is
	// wrapped with the machines.FaultPoint chaos hook when a fault
	// registry is active.
	Factory MachineFactory
	// MaxJobs bounds the job registry; once exceeded the oldest
	// terminal jobs are evicted. <= 0 means 4096.
	MaxJobs int
	// Breaker configures the per-machine-backend circuit breakers; the
	// zero value uses resilience defaults (5 consecutive failures trip
	// a 5s open interval).
	Breaker resilience.BreakerConfig
	// Brownout configures the ?tier=auto hysteresis controller. Zero
	// fields take the resilience defaults, except the latency signal:
	// EnterExecP99 defaults to half the pool's per-job timeout (and
	// ExitExecP99 to half of that), so a service whose executed p99
	// approaches its own deadline starts degrading before it starts
	// timing out.
	Brownout resilience.BrownoutConfig
	// Logger receives structured request logs from the HTTP layer
	// (method, path, status, duration, request ID). nil disables
	// access logging; request-ID propagation stays on either way.
	Logger *slog.Logger
	// ShardID names this instance in a cluster. When set, issued job
	// IDs gain a "<shard>-" prefix (s1-j000042-<hash8>) so a gateway
	// can route status polls back to the issuing shard and rebalanced
	// jobs can never collide with the successor's own counter. Empty —
	// the default — keeps the single-node ID format byte-identical.
	ShardID string
	// ConfigHash is the identity hash of the process-wide machine
	// configuration (machines.ConfigSet.Hash of the -config file).
	// /healthz and /readyz report it so a cluster gateway can refuse to
	// route across shards running different hardware parameters. Empty
	// means machines.DefaultConfigHash() — paper defaults.
	ConfigHash string
}

// Service is the simulation job-queue service: it tracks submitted jobs
// by ID, runs them on the pool behind per-machine circuit breakers, and
// answers status queries. It is safe for concurrent use.
type Service struct {
	pool     *Pool
	factory  MachineFactory
	maxJobs  int
	breakers *resilience.BreakerSet
	logger   *slog.Logger
	// journal, when set, is the write-ahead log every job lifecycle
	// transition is appended to (see OpenDurable); nil means the
	// registry is memory-only, the pre-durability behavior.
	journal *journal.Journal
	// estimates is the estimate tier's own memo namespace: a separate
	// table from the pool's simulated-result memo, so the two tiers can
	// never serve each other's numbers for the same spec hash.
	estimates *cache.Memo[roofline.Estimate]
	// brownout decides, per ?tier=auto request, whether to degrade to
	// the estimate tier (see ResolveTier).
	brownout *resilience.Brownout
	// shardID/idPrefix carry the cluster identity (Options.ShardID);
	// empty on a single-node service.
	shardID  string
	idPrefix string
	// configHash identifies the process-wide machine configuration
	// (Options.ConfigHash); configHashes of per-spec overrides are
	// computed per job, not here.
	configHash string
	// chaos wraps per-spec config factories with the same fault point as
	// the default factory, so chaos runs cover config-carrying jobs too.
	chaos *faults.Registry
	// draining flips when the process has been told to stop accepting
	// new work (SIGTERM) but is still finishing what it has: /readyz
	// answers 503 while /healthz — liveness — stays 200.
	draining atomic.Bool
	// wg tracks the per-job completion goroutines so Close can drain
	// them before snapshotting final state.
	wg sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for eviction and listing
	// evicted remembers (bounded) IDs dropped by evictLocked so Wait
	// can report eviction distinctly from never-issued IDs.
	evicted      map[string]bool
	evictedOrder []string
	// idem maps idempotency keys to live job IDs: resubmitting a key
	// returns the original job instead of duplicate work.
	idem   map[string]string
	seq    uint64
	replay ReplayStats
}

// NewService starts a service and its pool.
func NewService(opts Options) *Service {
	if opts.Factory == nil {
		opts.Factory = machines.ByName
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 4096
	}
	if opts.Pool.Faults == nil {
		opts.Pool.Faults = faults.Default()
	}
	prefix := ""
	if opts.ShardID != "" {
		prefix = opts.ShardID + "-"
	}
	if opts.ConfigHash == "" {
		opts.ConfigHash = machines.DefaultConfigHash()
	}
	pool := NewPool(opts.Pool)
	bc := opts.Brownout
	if bc.EnterExecP99 <= 0 {
		bc.EnterExecP99 = pool.JobTimeout() / 2
	}
	if bc.ExitExecP99 <= 0 {
		bc.ExitExecP99 = bc.EnterExecP99 / 2
	}
	return &Service{
		pool:       pool,
		factory:    machines.ChaosFactory(opts.Pool.Faults, opts.Factory),
		maxJobs:    opts.MaxJobs,
		breakers:   resilience.NewBreakerSet(opts.Breaker),
		logger:     opts.Logger,
		shardID:    opts.ShardID,
		idPrefix:   prefix,
		configHash: opts.ConfigHash,
		chaos:      opts.Pool.Faults,
		estimates:  newEstimateMemo(),
		brownout:   resilience.NewBrownout(bc),
		jobs:       make(map[string]*Job),
		evicted:    make(map[string]bool),
		idem:       make(map[string]string),
	}
}

// ShardID returns the cluster identity this service was configured
// with ("" on a single-node service).
func (s *Service) ShardID() string { return s.shardID }

// ConfigHash returns the identity hash of the process-wide machine
// configuration set — what /healthz and /readyz report.
func (s *Service) ConfigHash() string { return s.configHash }

// factoryFor returns the machine factory for one normalized spec: the
// process factory for paper-default specs, or a per-spec factory over
// the spec's config override, wrapped with the same chaos fault point
// as the default one. The spec must be normalized (its config
// validated) first.
func (s *Service) factoryFor(spec JobSpec) MachineFactory {
	if spec.Config == nil {
		return s.factory
	}
	cfg := *spec.Config
	return machines.ChaosFactory(s.chaos, cfg.Machine)
}

// SetDraining marks the service as draining (or not). A draining
// service still answers every endpoint — it is alive — but /readyz
// reports 503 so routers stop sending it new work while in-flight
// jobs finish.
func (s *Service) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether SetDraining(true) has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Pool returns the service's worker pool.
func (s *Service) Pool() *Pool { return s.pool }

// Metrics returns the service's registry.
func (s *Service) Metrics() *Metrics { return s.pool.Metrics() }

// Breakers returns the per-machine circuit breakers.
func (s *Service) Breakers() *resilience.BreakerSet { return s.breakers }

// Close shuts the pool down after draining running jobs. A durable
// service then folds its final state — including jobs the shutdown
// interrupted, persisted as still queued — into a journal snapshot,
// compacts, and closes the journal, so the next OpenDurable restores
// from the snapshot and re-enqueues the interrupted work.
func (s *Service) Close() {
	s.pool.Close()
	s.wg.Wait()
	if s.journal != nil {
		_ = s.Checkpoint()
		_ = s.journal.Close()
	}
}

// Submit normalizes, registers, and enqueues one job, returning a
// snapshot of its initial state. Cache hits come back already Done.
// Submit blocks for a queue slot when the pool is saturated
// (backpressure); batch drivers want that.
func (s *Service) Submit(spec JobSpec) (Job, error) {
	j, _, err := s.submit(AdmitOptions{}, spec, true)
	return j, err
}

// Admit is Submit with load shedding instead of backpressure: when
// every worker is busy and the queue is full the job is refused with
// ErrOverloaded (HTTP 429 upstairs), and when the machine's circuit
// breaker is open it is refused with resilience.ErrBreakerOpen (503).
// The serving layer uses Admit so saturation never queues unboundedly.
func (s *Service) Admit(spec JobSpec) (Job, error) {
	j, _, err := s.submit(AdmitOptions{}, spec, false)
	return j, err
}

// AdmitWithKey is Admit under an idempotency key: when the key is
// already bound to a live job — including one restored by journal
// replay after a crash — that job's snapshot is returned (replayed =
// true) instead of duplicate work. An empty key falls back to the
// canonical spec hash on a durable service, so a blind client retry
// of the same spec after a crash finds its original job; without a
// journal an empty key means no deduplication, preserving the
// one-job-per-submit behavior batch drivers rely on.
func (s *Service) AdmitWithKey(key string, spec JobSpec) (job Job, replayed bool, err error) {
	return s.submit(AdmitOptions{IdemKey: key}, spec, false)
}

// AdmitOptions carries the per-request admission qualifiers of
// AdmitWith. The zero value is AdmitWithKey's behavior: no key,
// interactive priority, no deadline budget.
type AdmitOptions struct {
	// IdemKey deduplicates resubmissions (see AdmitWithKey).
	IdemKey string
	// Priority selects the admission class; empty means interactive.
	Priority Priority
	// Budget, when positive, is the client's remaining deadline budget:
	// the admission is refused fast with ErrBudgetExhausted when the
	// executed-job drain estimate says the job could not finish inside
	// it, and an admitted job that outlives the budget in the queue is
	// dropped at worker pickup instead of occupying a slot. Memo hits
	// and idempotent replays are exempt — they answer in microseconds
	// regardless of pool pressure.
	Budget time.Duration
}

// AdmitWith is AdmitWithKey plus priority class and deadline budget —
// the full admission-control entry point the HTTP layer uses.
func (s *Service) AdmitWith(opts AdmitOptions, spec JobSpec) (job Job, replayed bool, err error) {
	return s.submit(opts, spec, false)
}

func (s *Service) submit(opts AdmitOptions, spec JobSpec, block bool) (Job, bool, error) {
	idemKey := opts.IdemKey
	norm, err := spec.Normalize()
	if err != nil {
		return Job{}, false, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return Job{}, false, err
	}
	key := idemKey
	if key == "" && s.journal != nil {
		key = hash
	}

	// Deadline-budget fast-reject: when the remaining budget cannot
	// cover the executed-job drain estimate, refuse now (504 upstairs)
	// instead of queueing work that is doomed to expire. Memo hits and
	// idempotent replays are exempt — they answer in microseconds no
	// matter how deep the queue is.
	if !block && opts.Budget > 0 && !s.pool.MemoHas(hash) && !s.idemLive(key) {
		if est := s.drainEstimate(opts.Priority); est > opts.Budget {
			s.pool.Metrics().budgetRejected()
			return Job{}, false, fmt.Errorf("svc: %s/%s: remaining budget %s below drain estimate %s: %w",
				norm.Machine, norm.Kernel, opts.Budget, est, ErrBudgetExhausted)
		}
	}

	breaker := s.breakers.Get(norm.Machine)
	if !block {
		if err := breaker.Allow(); err != nil {
			s.pool.Metrics().breakerRejected()
			return Job{}, false, fmt.Errorf("svc: machine %s: %w", norm.Machine, err)
		}
	}

	s.mu.Lock()
	if key != "" {
		if id, ok := s.idem[key]; ok {
			if j, live := s.jobs[id]; live {
				cp := j.clone(true)
				s.mu.Unlock()
				if !block {
					// The admitted slot was never used: an idempotent
					// replay exercises no backend.
					breaker.Cancel()
				}
				return cp, true, nil
			}
			delete(s.idem, key) // bound to an evicted job; issue fresh work
		}
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("%sj%06d-%s", s.idPrefix, s.seq, hash[:8]),
		Spec:      norm,
		Hash:      hash,
		IdemKey:   key,
		State:     Queued,
		Tier:      TierSimulate,
		Priority:  opts.Priority,
		Submitted: time.Now(),
	}
	// One backing array sized for the common accepted→queued→started→done
	// lifecycle; only retries grow it.
	job.Trace = append(make([]obs.Event, 0, 4), obs.Event{Name: obs.EventAccepted, Time: job.Submitted})
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if key != "" {
		s.idem[key] = job.ID
	}
	// Acceptance is journaled before the client hears about the job;
	// if the journal cannot persist it, the job is refused — a durable
	// service must not accept work it cannot promise to remember.
	if jerr := s.journalAcceptedLocked(job); jerr != nil {
		delete(s.jobs, job.ID)
		s.order = s.order[:len(s.order)-1]
		if key != "" {
			delete(s.idem, key)
		}
		s.mu.Unlock()
		if !block {
			breaker.Cancel()
		}
		return Job{}, false, jerr
	}
	// The queued event lands before the pool sees the task so a cache
	// hit's completion goroutine can never write its terminal event
	// first and leave the trace out of order.
	job.Trace = append(job.Trace, obs.Event{Name: obs.EventQueued, Time: time.Now()})
	s.evictLocked()
	s.mu.Unlock()

	task := Task{
		Label:    fmt.Sprintf("%s/%s", norm.Machine, norm.Kernel),
		MemoKey:  hash,
		Cell:     obs.Labels{Machine: norm.Machine, Kernel: string(norm.Kernel)},
		Priority: opts.Priority,
		OnRetry: func(attempt int, err error) {
			s.traceEvent(job.ID, obs.EventRetried, fmt.Sprintf("attempt %d: %v", attempt, err))
		},
		Run: func(context.Context) (core.Result, error) {
			s.markRunning(job.ID)
			return runSpec(s.factoryFor(norm), norm)
		},
	}
	if opts.Budget > 0 {
		task.Expires = time.Now().Add(opts.Budget)
	}
	var fut *Future
	if block {
		fut, err = s.pool.Submit(task)
	} else {
		fut, err = s.pool.TrySubmit(task)
	}
	if err != nil {
		if !block {
			// The job never reached a worker: the backend was not
			// exercised, so the breaker learns nothing from a shed — but
			// the admitted slot must be released, or a shed probe would
			// wedge a half-open breaker until restart.
			breaker.Cancel()
			s.drop(job.ID)
			return Job{}, false, err
		}
		s.finish(job.ID, core.Result{}, false, err)
		return s.snapshot(job.ID), false, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		res, werr := fut.Wait(context.Background())
		if !block {
			// Pair the Allow above with exactly one outcome report: a
			// memo hit never exercised the backend, so its slot is
			// released without evidence — and so is a job dropped in
			// the queue because its deadline budget ran out, which
			// says nothing about the machine backend's health.
			if fut.FromCache() || errors.Is(werr, ErrBudgetExhausted) {
				breaker.Cancel()
			} else {
				breaker.Record(werr == nil)
			}
		}
		s.finish(job.ID, res, fut.FromCache(), werr)
		// Every fresh execution is checked against the analytic model it
		// should never undercut; cache hits were checked when they ran.
		if werr == nil && !fut.FromCache() {
			s.recordModelDrift(norm, res)
		}
	}()
	return s.snapshot(job.ID), false, nil
}

// idemLive reports whether key is bound to a live job — an admission
// that would be answered by idempotent replay, instantly, regardless of
// pool pressure.
func (s *Service) idemLive(key string) bool {
	if key == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.idem[key]
	if !ok {
		return false
	}
	_, live := s.jobs[id]
	return live
}

// drainEstimate predicts how long a newly admitted job of the given
// priority waits before finishing: the jobs queued ahead of it drained
// in worker-wide waves, each wave costing the rolling executed-job p99
// (the pessimistic end of the dual-window latency split — a budget
// check that used the p50 would admit half its jobs into expiry).
// Batch waits behind both queues (strict priority); interactive only
// behind its own. A cold window (p99 == 0) estimates zero, so a fresh
// service never rejects on budget.
func (s *Service) drainEstimate(pr Priority) time.Duration {
	p99 := s.Metrics().ExecP99()
	if p99 <= 0 {
		return 0
	}
	depth := s.pool.QueueDepthFor(PriorityInteractive)
	if pr == PriorityBatch {
		depth += s.pool.QueueDepthFor(PriorityBatch)
	}
	workers := s.pool.Workers()
	if workers < 1 {
		workers = 1
	}
	waves := depth/workers + 1
	return time.Duration(waves) * p99
}

// brownoutInputs assembles the controller's pressure reading: the
// interactive queue's occupancy (batch backlog must not brown the
// service out — interactive work jumps ahead of it anyway), the
// executed-job p99, and the number of non-closed machine breakers.
func (s *Service) brownoutInputs() resilience.BrownoutInputs {
	open := 0
	for _, st := range s.breakers.States() {
		if st != resilience.Closed {
			open++
		}
	}
	return resilience.BrownoutInputs{
		QueueDepth:   s.pool.QueueDepthFor(PriorityInteractive),
		QueueCap:     s.pool.QueueCap(),
		ExecP99:      s.Metrics().ExecP99(),
		BreakersOpen: open,
	}
}

// ResolveTier resolves a parsed tier exactly once per request:
// explicit tiers pass through untouched; TierAuto consults the
// brownout controller and comes back as either TierSimulate (healthy)
// or TierEstimate with degraded = true (browned out). Callers must
// hold onto the returned tier for the rest of the request — never
// re-resolve — so a controller flip mid-request cannot mix tiers
// within one response.
func (s *Service) ResolveTier(t Tier) (tier Tier, degraded bool) {
	if t != TierAuto {
		return t, false
	}
	active := s.brownout.Observe(s.brownoutInputs())
	s.Metrics().setBrownoutActive(active)
	if active {
		return TierEstimate, true
	}
	return TierSimulate, false
}

// BrownoutStats exposes the ?tier=auto controller's state (health
// endpoints and tests).
func (s *Service) BrownoutStats() resilience.BrownoutStats { return s.brownout.Stats() }

// drop removes an unstarted job that was shed at admission, telling
// the journal to forget it too (the client was told 429, so replaying
// it after a crash would be duplicate work nobody asked for).
func (s *Service) drop(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	delete(s.jobs, id)
	if j.IdemKey != "" && s.idem[j.IdemKey] == id {
		delete(s.idem, j.IdemKey)
	}
	s.removeFromOrderLocked(id)
	s.journalEventLocked(eventAborted, j)
}

// removeFromOrderLocked drops one ID from the submission-order slice.
func (s *Service) removeFromOrderLocked(id string) {
	for i, jid := range s.order {
		if jid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// traceEvent appends one lifecycle event to a live job's trace.
func (s *Service) traceEvent(id, name, note string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		j.Trace = append(j.Trace, obs.Event{Name: name, Time: time.Now(), Note: note})
	}
}

// Job returns a snapshot of the job with the given ID.
func (s *Service) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.clone(true), true
}

// JobTrace returns a copy of the job's lifecycle trace and its current
// state.
func (s *Service) JobTrace(id string) ([]obs.Event, State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, "", false
	}
	return append([]obs.Event(nil), j.Trace...), j.State, true
}

// Jobs returns snapshots of every tracked job in submission order.
// List snapshots omit the lifecycle trace; fetch a single job (or its
// trace endpoint) for the events.
func (s *Service) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.clone(false))
		}
	}
	return out
}

// JobsPage returns up to limit jobs in submission order, starting
// just after the job with ID after (empty starts from the oldest).
// next is the cursor for the following page ("" when this page ends
// the list) and total the registry size. An unknown cursor — e.g. one
// whose job has since been evicted — is an error so clients restart
// their scan instead of silently skipping a gap.
func (s *Service) JobsPage(after string, limit int) (jobs []Job, next string, total int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	total = len(s.order)
	start := 0
	if after != "" {
		found := false
		for i, id := range s.order {
			if id == after {
				start, found = i+1, true
				break
			}
		}
		if !found {
			return nil, "", total, fmt.Errorf("svc: unknown cursor %q", after)
		}
	}
	if limit <= 0 {
		limit = DefaultPageLimit
	}
	end := start + limit
	if end > total {
		end = total
	}
	jobs = make([]Job, 0, end-start)
	for _, id := range s.order[start:end] {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j.clone(false))
		}
	}
	if end < total && len(jobs) > 0 {
		next = jobs[len(jobs)-1].ID
	}
	return jobs, next, total, nil
}

// wasEvicted reports whether id was dropped by terminal-job eviction.
func (s *Service) wasEvicted(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted[id]
}

// Wait blocks until the job reaches a terminal state or ctx ends, and
// returns the final snapshot. A job dropped by registry eviction is
// reported as ErrJobEvicted, distinct from a never-issued ID.
func (s *Service) Wait(ctx context.Context, id string) (Job, error) {
	// Poll-free would need a per-job channel; jobs are seconds-long, so
	// a short poll keeps the registry simple.
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		j, ok := s.Job(id)
		if !ok {
			if s.wasEvicted(id) {
				return Job{}, fmt.Errorf("svc: job %q: %w", id, ErrJobEvicted)
			}
			return Job{}, fmt.Errorf("svc: unknown job %q", id)
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-tick.C:
		}
	}
}

func (s *Service) markRunning(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && j.State == Queued {
		j.State = Running
		j.Started = time.Now()
		j.Trace = append(j.Trace, obs.Event{Name: obs.EventStarted, Time: j.Started})
		s.journalEventLocked(eventStarted, j)
	}
}

func (s *Service) finish(id string, res core.Result, fromCache bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.State.Terminal() {
		return
	}
	j.Finished = time.Now()
	j.FromCache = fromCache
	if err != nil {
		j.State = Failed
		j.Error = err.Error()
		if errors.Is(err, ErrPoolClosed) {
			// The shutdown, not the work, failed this job: journal no
			// terminal state so a restart re-enqueues it.
			j.interrupted = true
			return
		}
		j.Trace = append(j.Trace, obs.Event{Name: obs.EventFailed, Time: j.Finished, Note: j.Error})
		s.journalEventLocked(eventFailed, j)
		return
	}
	j.State = Done
	r := res
	j.Result = &r
	note := ""
	if fromCache {
		note = "cache hit"
	}
	j.Trace = append(j.Trace, obs.Event{Name: obs.EventDone, Time: j.Finished, Note: note})
	s.journalEventLocked(eventDone, j)
}

func (s *Service) snapshot(id string) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.clone(true)
	}
	return Job{}
}

// evictLocked drops the oldest terminal jobs once the registry exceeds
// MaxJobs, remembering their IDs (bounded) so Wait can tell eviction
// apart from an unknown ID. Non-terminal jobs are never evicted.
func (s *Service) evictLocked() {
	if len(s.order) <= s.maxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.maxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.State.Terminal() {
			delete(s.jobs, id)
			if j.IdemKey != "" && s.idem[j.IdemKey] == id {
				delete(s.idem, j.IdemKey)
			}
			s.evicted[id] = true
			s.evictedOrder = append(s.evictedOrder, id)
			s.journalEventLocked(eventEvicted, j)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	// Bound the eviction memory too: forget the oldest evicted IDs once
	// it outgrows the registry itself.
	for len(s.evictedOrder) > s.maxJobs {
		delete(s.evicted, s.evictedOrder[0])
		s.evictedOrder = s.evictedOrder[1:]
	}
}

// Table3 regenerates the paper's Table 3 by fanning every (machine,
// kernel) pair of the paper workload out across the pool. Rows are in
// the paper's machine order, columns in kernel order; cycle counts are
// identical to a serial core.RunStudy (and so to `sigstudy -csv`, the
// input of cmd/compare).
func (s *Service) Table3(ctx context.Context) (*TableData, error) {
	sr, err := RunStudyParallel(ctx, s.pool, s.factory, machineNames(), core.PaperWorkload())
	if err != nil {
		return nil, err
	}
	return table3Data(sr), nil
}

// TableData is a rendered table plus the raw cycle counts behind it.
type TableData struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	// Cycles maps machine -> kernel -> simulated cycles.
	Cycles map[string]map[core.KernelID]uint64 `json:"cycles"`
}

func table3Data(sr *core.StudyResults) *TableData {
	td := &TableData{
		Title:   "Table 3. Experimental results (cycles in 10^3)",
		Headers: []string{"Machine"},
		Cycles:  make(map[string]map[core.KernelID]uint64),
	}
	for _, k := range core.Kernels() {
		td.Headers = append(td.Headers, k.Title())
	}
	for _, name := range sr.MachineNames() {
		row := []string{name}
		td.Cycles[name] = make(map[core.KernelID]uint64)
		for _, k := range core.Kernels() {
			r, ok := sr.Result(name, k)
			if !ok {
				continue
			}
			row = append(row, fmt.Sprintf("%.0f", r.KCycles()))
			td.Cycles[name][k] = r.Cycles
		}
		td.Rows = append(td.Rows, row)
	}
	return td
}

// machineNames returns the five study machines in paper order.
func machineNames() []string { return machines.Names() }

// RunStudyParallel executes every (machine, kernel) pair of the
// workload through the pool — the concurrent counterpart of
// core.RunStudy. Each job runs on a fresh machine instance from
// factory, so results are bit-identical to the serial study. Cells are
// admitted at interactive priority (the default): callers like the
// HTTP table endpoints sit on the request path.
func RunStudyParallel(ctx context.Context, p *Pool, factory MachineFactory, names []string, w core.Workload) (*core.StudyResults, error) {
	return runStudy(ctx, p, factory, names, w, PriorityInteractive)
}

// RunStudyBatch is RunStudyParallel at batch priority: cells queue
// behind (and are shed before) interactive work. The offline drivers —
// cmd/sigstudy, cmd/sweep — use this so a study fan-out sharing a pool
// with a live service never starves request traffic.
func RunStudyBatch(ctx context.Context, p *Pool, factory MachineFactory, names []string, w core.Workload) (*core.StudyResults, error) {
	return runStudy(ctx, p, factory, names, w, PriorityBatch)
}

func runStudy(ctx context.Context, p *Pool, factory MachineFactory, names []string, w core.Workload, pr Priority) (*core.StudyResults, error) {
	if factory == nil {
		factory = machines.ByName
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	// Metadata instances: used only for Name/Params, never run. The
	// factory consults a chaos fault point, so builds are retried like
	// any other transient failure.
	ms := make([]core.Machine, len(names))
	for i, name := range names {
		name := name
		var m core.Machine
		if _, err := resilience.DefaultRetry().Do(ctx, func(context.Context) error {
			var ferr error
			m, ferr = factory(name)
			return ferr
		}); err != nil {
			return nil, err
		}
		ms[i] = m
	}

	// The whole grid goes through SubmitBatch in one group: one queue
	// reservation per wave, memo/coalescing pre-filter up front, and
	// per-worker machine reuse across cells of the same machine.
	type cell struct {
		machine string
		kernel  core.KernelID
	}
	var cells []cell
	var tasks []Task
	for _, name := range names {
		for _, k := range core.Kernels() {
			name, k := name, k
			spec := JobSpec{Machine: name, Kernel: k, Workload: &w}
			// Memoize under the spec hash, which covers per-spec config
			// overrides (these study specs carry none). The hash does not
			// cover a process-wide -config factory — per-process
			// memoization keeps that consistent, and the cluster gateway
			// refuses to route across shards whose config hashes differ.
			key := ""
			if h, err := spec.Hash(); err == nil {
				key = h
			}
			cells = append(cells, cell{machine: name, kernel: k})
			tasks = append(tasks, Task{
				Label:    fmt.Sprintf("%s/%s", name, k),
				MemoKey:  key,
				Priority: pr,
				Machine:  name,
				Factory:  factory,
				RunOn: func(_ context.Context, m core.Machine) (core.Result, error) {
					return core.Run(m, k, w)
				},
			})
		}
	}
	futs, err := p.SubmitBatch(ctx, tasks)
	if err != nil {
		return nil, err
	}
	results := make(map[string]map[core.KernelID]core.Result)
	for i, c := range cells {
		r, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, fmt.Errorf("svc: %s on %s: %w", c.kernel, c.machine, err)
		}
		if results[c.machine] == nil {
			results[c.machine] = make(map[core.KernelID]core.Result)
		}
		results[c.machine][c.kernel] = r
	}
	return core.NewStudyResults(ms, w, results)
}
