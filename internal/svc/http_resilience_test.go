package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/machines"
)

// blockingFactory returns a MachineFactory that parks every build on the
// returned gate until release is called (idempotent). Factory calls run
// inside the task goroutine, so this holds worker slots at will.
func blockingFactory() (MachineFactory, func()) {
	gate := make(chan struct{})
	var once sync.Once
	factory := func(name string) (core.Machine, error) {
		<-gate
		return machines.ByName(name)
	}
	return factory, func() { once.Do(func() { close(gate) }) }
}

func postJob(t *testing.T, url string, spec JobSpec) (*http.Response, Job) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	_ = json.NewDecoder(resp.Body).Decode(&job)
	return resp, job
}

func waitForState(t *testing.T, s *Service, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := s.Job(id); ok && j.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := s.Job(id)
	t.Fatalf("job %s stuck in %s, want %s", id, j.State, want)
}

// TestHTTPShedsWith429WhenSaturated is the admission-control acceptance
// check: a saturated daemon answers POST /v1/jobs with 429 and an
// actionable Retry-After instead of queueing unboundedly, and /healthz
// reports the degradation.
func TestHTTPShedsWith429WhenSaturated(t *testing.T) {
	factory, release := blockingFactory()
	s := NewService(Options{
		Pool:    PoolOptions{Workers: 1, QueueDepth: 1, JobTimeout: time.Minute},
		Factory: factory,
	})
	srv := httptest.NewServer(s.Handler())
	defer func() {
		srv.Close()
		release()
		s.Close()
	}()

	w := smallWorkload()
	// Distinct specs so no submission is served from the memo table.
	running := JobSpec{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w}
	queued := JobSpec{Machine: "AltiVec", Kernel: core.CornerTurn, Workload: &w}
	shed := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}

	resp, first := postJob(t, srv.URL+"/v1/jobs", running)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	// The worker must pick the first job up before the second can be the
	// one occupying the single queue slot.
	waitForState(t, s, first.ID, Running)

	resp, second := postJob(t, srv.URL+"/v1/jobs", queued)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-slot submit: %d", resp.StatusCode)
	}

	resp, _ = postJob(t, srv.URL+"/v1/jobs", shed)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want integral seconds >= 1", resp.Header.Get("Retry-After"))
	}
	if snap := s.Metrics().Snapshot(); snap.Shed != 1 {
		t.Fatalf("shed not metered: %+v", snap)
	}

	// The full queue degrades health (depth 1 of cap 1 is >= 80%), and
	// a degraded service answers 503 so load balancers can act on the
	// status code alone.
	var h Health
	if resp := getJSON(t, srv.URL+"/healthz", &h); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d, want 503 while degraded", resp.StatusCode)
	}
	if !h.Degraded || h.Status != "degraded" || h.QueueDepth != 1 || h.QueueCap != 1 || h.Workers != 1 {
		t.Fatalf("health under saturation: %+v", h)
	}

	release()
	for _, id := range []string{first.ID, second.ID} {
		final, err := s.Wait(context.Background(), id)
		if err != nil || final.State != Done {
			t.Fatalf("job %s after release: %+v err %v", id, final, err)
		}
	}
}

// TestHTTPWaitTimeoutReturns504 proves a client-supplied ?timeout=
// bounds the synchronous wait and expires as 504, not as a hung request
// or a 500.
func TestHTTPWaitTimeoutReturns504(t *testing.T) {
	factory, release := blockingFactory()
	s := NewService(Options{
		Pool:    PoolOptions{Workers: 1, JobTimeout: time.Minute},
		Factory: factory,
	})
	srv := httptest.NewServer(s.Handler())
	defer func() {
		srv.Close()
		release()
		s.Close()
	}()

	w := smallWorkload()
	spec := JobSpec{Machine: "PPC", Kernel: core.BeamSteering, Workload: &w}
	body, _ := json.Marshal(spec)
	begin := time.Now()
	resp, err := http.Post(srv.URL+"/v1/jobs?wait=1&timeout=100ms", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired wait: %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("timeout not honored: waited %v", elapsed)
	}
}

func TestHTTPRejectsBadTimeout(t *testing.T) {
	_, srv := newTestServer(t)
	for _, q := range []string{"timeout=bogus", "timeout=-5s", "timeout=0s"} {
		resp, err := http.Post(srv.URL+"/v1/jobs?wait=1&"+q, "application/json",
			bytes.NewReader([]byte(`{"machine":"PPC","kernel":"cslc"}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestWriteErrorStatusMapping pins the error -> status translation:
// deadline expiry is the gateway's fault (504), a cancelled context
// means the client hung up (499), an evicted job is gone (410, same as
// handleJob's answer for the identical condition), a closed pool is
// 503.
func TestWriteErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{ErrTimeout, http.StatusGatewayTimeout},
		{errors.New("wrapped: " + context.DeadlineExceeded.Error()), http.StatusInternalServerError},
		{context.Canceled, StatusClientClosedRequest},
		{ErrJobEvicted, http.StatusGone},
		{fmt.Errorf("svc: job %q: %w", "j000001-deadbeef", ErrJobEvicted), http.StatusGone},
		{ErrPoolClosed, http.StatusServiceUnavailable},
		{httpError{http.StatusTeapot, "custom"}, http.StatusTeapot},
		{errors.New("anything else"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, c.err)
		if rec.Code != c.want {
			t.Errorf("writeError(%v) = %d, want %d", c.err, rec.Code, c.want)
		}
		var payload map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil || payload["error"] == "" {
			t.Errorf("writeError(%v) body %q not an error envelope", c.err, rec.Body.String())
		}
	}
}

// TestHTTPEvictedJobGone proves an ID dropped by registry eviction
// answers 410 Gone, distinct from 404 for a never-issued ID.
func TestHTTPEvictedJobGone(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 2, JobTimeout: time.Minute}, MaxJobs: 2})
	srv := httptest.NewServer(s.Handler())
	defer func() {
		srv.Close()
		s.Close()
	}()
	w := smallWorkload()
	var first string
	for i, spec := range []JobSpec{
		{Machine: "PPC", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "AltiVec", Kernel: core.CornerTurn, Workload: &w},
		{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w},
	} {
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), job.ID); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = job.ID
		}
	}
	if resp := getJSON(t, srv.URL+"/v1/jobs/"+first, nil); resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted job: %d, want 410", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/v1/jobs/never-issued", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}
}
