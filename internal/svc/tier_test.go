package svc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/journal"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/roofline"
)

// postTier submits spec with the given raw ?tier= value and decodes the
// response body into out (a *Job or *ParamError, caller's choice).
func postTier(t *testing.T, url, tier string, spec JobSpec, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	u := url + "/v1/jobs"
	if tier != "" {
		u += "?tier=" + tier
	}
	resp, err := http.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: %v", u, err)
		}
	}
	return resp
}

// TestHTTPTierValidation covers the three submission paths of the tier
// parameter: an unknown value is a structured 400, while the default
// and an explicit ?tier=simulate both run the pre-tier simulate flow.
func TestHTTPTierValidation(t *testing.T) {
	_, srv := newTestServer(t)
	w := smallWorkload()
	spec := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn, Workload: &w}

	var pe ParamError
	resp := postTier(t, srv.URL, "premium", spec, &pe)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tier: status %d, want 400", resp.StatusCode)
	}
	if pe.Parameter != "tier" || pe.Value != "premium" {
		t.Fatalf("error body identifies %q=%q, want tier=premium", pe.Parameter, pe.Value)
	}
	if len(pe.Want) != 3 || pe.Want[0] != "auto" || pe.Want[1] != "estimate" || pe.Want[2] != "simulate" {
		t.Fatalf("error body offers %v", pe.Want)
	}
	if !strings.Contains(pe.Error, "premium") {
		t.Fatalf("error message %q does not name the bad value", pe.Error)
	}

	// Tier casing is strict: query values are protocol tokens.
	resp = postTier(t, srv.URL, "ESTIMATE", spec, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("uppercase tier: status %d, want 400", resp.StatusCode)
	}

	for _, tier := range []string{"", "simulate"} {
		var job Job
		resp := postTier(t, srv.URL, tier, spec, &job)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("tier=%q: status %d", tier, resp.StatusCode)
		}
		if job.Tier != TierSimulate {
			t.Fatalf("tier=%q: job tier %q, want simulate", tier, job.Tier)
		}
		// Simulated jobs are registered and retrievable by ID.
		var got Job
		if resp := getJSON(t, srv.URL+"/v1/jobs/"+job.ID, &got); resp.StatusCode != http.StatusOK {
			t.Fatalf("tier=%q: job %s not registered (status %d)", tier, job.ID, resp.StatusCode)
		}
	}
}

// TestHTTPEstimateTier pins the estimate tier's contract: a synchronous
// 200 carrying the analytic roofline bound, with no pool admission and
// no registry entry.
func TestHTTPEstimateTier(t *testing.T) {
	s, srv := newTestServer(t)
	spec := JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn}

	var job Job
	resp := postTier(t, srv.URL, "estimate", spec, &job)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if job.Tier != TierEstimate || job.State != Done {
		t.Fatalf("job tier=%q state=%q, want estimate/done", job.Tier, job.State)
	}
	if !strings.HasPrefix(job.ID, "est-") {
		t.Fatalf("estimate job ID %q", job.ID)
	}
	want, err := roofline.ForJob("VIRAM", core.CornerTurn, core.PaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if job.Result == nil || job.Result.Cycles != want.Cycles {
		t.Fatalf("estimate result %+v, want %d cycles", job.Result, want.Cycles)
	}
	if job.Estimate == nil || job.Estimate.Cycles != want.Cycles || job.Estimate.Bound != want.Bound {
		t.Fatalf("estimate breakdown %+v, want %+v", job.Estimate, want)
	}
	if job.FromCache {
		t.Fatal("first estimate claims a cache hit")
	}

	// Nothing was admitted, registered, or journaled on its behalf.
	if n := len(s.Jobs()); n != 0 {
		t.Fatalf("estimate left %d jobs in the registry", n)
	}
	if resp := getJSON(t, srv.URL+"/v1/jobs/"+job.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET estimate ID: status %d, want 404", resp.StatusCode)
	}
	snap := s.Metrics().Snapshot()
	if snap.Queued != 0 {
		t.Fatalf("estimate admitted %d jobs to the pool", snap.Queued)
	}
	if snap.Estimates != 1 {
		t.Fatalf("estimates served = %d, want 1", snap.Estimates)
	}

	// The repeat answer comes from the estimate memo.
	var again Job
	if resp := postTier(t, srv.URL, "estimate", spec, &again); resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	if !again.FromCache || again.Result.Cycles != want.Cycles {
		t.Fatalf("repeat estimate fromCache=%t cycles=%d", again.FromCache, again.Result.Cycles)
	}

	// A spec the validator rejects is a plain 400.
	if resp := postTier(t, srv.URL, "estimate", JobSpec{Machine: "G5", Kernel: core.CornerTurn}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad machine estimate: status %d, want 400", resp.StatusCode)
	}
}

// TestEstimateNoJournalAppend proves the tier's durability contract on
// a journaling service: estimates append nothing to the WAL, while the
// same spec submitted at the simulate tier does.
func TestEstimateNoJournalAppend(t *testing.T) {
	s, err := OpenDurable(Options{Pool: PoolOptions{Workers: 2, JobTimeout: time.Minute}},
		journal.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := smallWorkload()
	spec := JobSpec{Machine: "Raw", Kernel: core.BeamSteering, Workload: &w}

	before := s.journal.Stats().Appended
	if _, err := s.Estimate(spec); err != nil {
		t.Fatal(err)
	}
	if got := s.journal.Stats().Appended; got != before {
		t.Fatalf("estimate appended %d journal records", got-before)
	}

	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(t.Context(), job.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.journal.Stats().Appended; got <= before {
		t.Fatal("simulate-tier control appended nothing; the assertion above proves nothing")
	}
}

// driftMachine completes every kernel instantly with a fixed cycle
// count far below the analytic lower bound — a broken simulator the
// drift alert must catch.
type driftMachine struct{ name string }

func (m driftMachine) Name() string        { return m.name }
func (m driftMachine) Params() core.Params { return core.Params{ClockMHz: 1} }
func (m driftMachine) RunCornerTurn(cornerturn.Spec) (core.Result, error) {
	return core.Result{Machine: m.name, Kernel: core.CornerTurn, Cycles: 4242, Verified: true}, nil
}
func (m driftMachine) RunCSLC(cslc.Spec) (core.Result, error) {
	return core.Result{Machine: m.name, Kernel: core.CSLC, Cycles: 4242, Verified: true}, nil
}
func (m driftMachine) RunBeamSteering(beamsteer.Spec) (core.Result, error) {
	return core.Result{Machine: m.name, Kernel: core.BeamSteering, Cycles: 4242, Verified: true}, nil
}

// TestModelDriftAlert perturbs the simulator behind a real machine name
// and checks that completing a job fires the drift alert: 4242 cycles
// is far under the VIRAM corner-turn analytic bound, a result a correct
// simulator cannot produce.
func TestModelDriftAlert(t *testing.T) {
	s := NewService(Options{
		Pool:    PoolOptions{Workers: 2, JobTimeout: time.Minute},
		Factory: func(name string) (core.Machine, error) { return driftMachine{name: name}, nil },
	})
	job, err := s.Submit(JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(t.Context(), job.ID); err != nil {
		t.Fatal(err)
	}
	s.Close() // drain the completion goroutine that records drift
	if got := s.Metrics().ModelDriftAlerts(); got != 1 {
		t.Fatalf("drift alerts = %d, want 1", got)
	}
	if snap := s.Metrics().Snapshot(); snap.ModelDrift != 1 {
		t.Fatalf("snapshot drift = %d, want 1", snap.ModelDrift)
	}
	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`simserved_cell_model_drift_total{machine="VIRAM",kernel="corner-turn"} 1`,
		`simserved_cell_model_error_ratio{machine="VIRAM",kernel="corner-turn"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestNoDriftOnHealthySimulator is the control: the real VIRAM
// simulator lands inside its envelope, so completing the same job fires
// nothing and the published ratio is the known Table 4 value (~1.5).
func TestNoDriftOnHealthySimulator(t *testing.T) {
	s := NewService(Options{Pool: PoolOptions{Workers: 2, JobTimeout: time.Minute}})
	job, err := s.Submit(JobSpec{Machine: "VIRAM", Kernel: core.CornerTurn})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(t.Context(), job.ID); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if got := s.Metrics().ModelDriftAlerts(); got != 0 {
		t.Fatalf("healthy simulator fired %d drift alerts", got)
	}
	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `simserved_cell_model_error_ratio{machine="VIRAM",kernel="corner-turn"} 1.5`) {
		t.Errorf("healthy ratio gauge not exposed:\n%s",
			grepLines(buf.String(), "model_error_ratio"))
	}
}

// grepLines returns the lines of s containing substr, for test
// diagnostics.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
