package svc

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/perfmodel"
	"sigkern/internal/roofline"
)

// TestHTTPRooflineGrid is the endpoint's acceptance check: the grid's
// corner-turn cells are bit-identical to the perfmodel Table 4
// expectations, every kernel with declared metadata appears, and the
// simulated cells carry their model error.
func TestHTTPRooflineGrid(t *testing.T) {
	s, srv := newTestServer(t)

	var rd RooflineData
	if resp := getJSON(t, srv.URL+"/v1/roofline", &rd); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	wantCells := len(perfmodel.Table1()) * len(roofline.GridKernels())
	if len(rd.Cells) != wantCells {
		t.Fatalf("%d cells, want %d", len(rd.Cells), wantCells)
	}

	cell := make(map[string]map[core.KernelID]roofline.Cell)
	for _, c := range rd.Cells {
		if cell[c.Machine] == nil {
			cell[c.Machine] = make(map[core.KernelID]roofline.Cell)
		}
		cell[c.Machine][c.Kernel] = c
	}

	w := core.PaperWorkload()
	for _, tp := range perfmodel.Table1() {
		ct := cell[tp.Machine][core.CornerTurn]
		if want := perfmodel.ExpectedCornerTurn(tp, w.CornerTurn); ct.PeakCycles != want {
			t.Errorf("%s corner-turn peak = %d, want %d (bit-identity)", tp.Machine, ct.PeakCycles, want)
		}
		if want := perfmodel.ExpectedCornerTurnStrided(tp, w.CornerTurn); ct.Cycles != want {
			t.Errorf("%s corner-turn refined = %d, want %d (bit-identity)", tp.Machine, ct.Cycles, want)
		}
		// Every paper-kernel cell simulated, with its error populated and
		// inside the envelope (real simulators, real bounds).
		for _, k := range core.Kernels() {
			c := cell[tp.Machine][k]
			if !c.Simulated || c.SimCycles == 0 || c.ErrorRatio <= 0 {
				t.Errorf("%s/%s: no simulation attached: %+v", tp.Machine, k, c)
				continue
			}
			if !c.WithinEnvelope {
				t.Errorf("%s/%s: ratio %.3f outside [%v, %v]", tp.Machine, k, c.ErrorRatio, c.EnvelopeLo, c.EnvelopeHi)
			}
		}
		// Extension kernels with a machine implementation are simulated
		// too; equalize and fft stay model-only.
		for _, k := range []core.KernelID{core.MatMul, roofline.PFB} {
			if c := cell[tp.Machine][k]; !c.Simulated {
				t.Errorf("%s/%s: extension cell not simulated", tp.Machine, k)
			}
		}
		for _, k := range []core.KernelID{roofline.Equalize, roofline.FFT} {
			c := cell[tp.Machine][k]
			if c.Simulated {
				t.Errorf("%s/%s: model-only cell claims a simulation", tp.Machine, k)
			}
			if c.Cycles == 0 {
				t.Errorf("%s/%s: zero model prediction", tp.Machine, k)
			}
		}
	}

	// The grid's error ratios are published to the per-cell gauge.
	snap := s.Metrics().Snapshot()
	if snap.ModelDrift != 0 {
		t.Fatalf("healthy grid fired %d drift alerts", snap.ModelDrift)
	}
	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `simserved_cell_model_error_ratio{machine="VIRAM",kernel="corner-turn"}`) {
		t.Error("grid ratios not exposed as gauges")
	}

	// Text rendering: the report table with the error column.
	resp, err := http.Get(srv.URL + "/v1/roofline?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{"Sim/Model", "corner-turn", "VIRAM", "pfb", "equalize"} {
		if !strings.Contains(text, want) {
			t.Errorf("text grid missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "DRIFT") {
		t.Errorf("healthy grid renders DRIFT:\n%s", text)
	}
}

// TestHTTPRooflineModelOnly covers ?sim=0: the grid comes back without
// touching the pool, and a bad sim value is a structured 400.
func TestHTTPRooflineModelOnly(t *testing.T) {
	s, srv := newTestServer(t)

	var rd RooflineData
	if resp := getJSON(t, srv.URL+"/v1/roofline?sim=0", &rd); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, c := range rd.Cells {
		if c.Simulated {
			t.Fatalf("%s/%s simulated under ?sim=0", c.Machine, c.Kernel)
		}
		if c.Cycles == 0 {
			t.Fatalf("%s/%s: zero model prediction", c.Machine, c.Kernel)
		}
	}
	if snap := s.Metrics().Snapshot(); snap.Queued != 0 {
		t.Fatalf("model-only grid admitted %d pool jobs", snap.Queued)
	}

	var pe ParamError
	resp := getJSON(t, srv.URL+"/v1/roofline?sim=maybe", &pe)
	if resp.StatusCode != http.StatusBadRequest || pe.Parameter != "sim" {
		t.Fatalf("bad sim: status %d body %+v", resp.StatusCode, pe)
	}
}
