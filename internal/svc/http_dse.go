package svc

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"sigkern/internal/machines"
	"sigkern/internal/resilience"
)

// handleDSE serves POST /v1/dse: one base spec plus config deltas
// and/or sweep axes, expanded into design points and admitted through
// the batch fast path as a single group. Per-point results stream back
// as NDJSON in completion order; the trailer carries the Pareto
// frontier over (cycles, area proxy). See Handler for the wire
// contract.
func (s *Service) handleDSE(w http.ResponseWriter, r *http.Request) {
	prParam := r.URL.Query().Get("priority")
	priority, err := ParsePriority(prParam)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ParamError{
			Error:     err.Error(),
			Parameter: "priority",
			Value:     prParam,
			Want:      []string{string(PriorityBatch), string(PriorityInteractive)},
		})
		return
	}
	budgetHdr := r.Header.Get("X-Deadline-Budget")
	budget, err := resilience.ParseTimeout(budgetHdr, maxRequestTimeout)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ParamError{
			Error:     err.Error(),
			Parameter: "X-Deadline-Budget",
			Value:     budgetHdr,
			Want:      []string{"a Go duration, e.g. 5s or 500ms, at most " + maxRequestTimeout.String()},
		})
		return
	}

	var req DSERequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if isBodyTooLarge(err) {
			writeError(w, httpError{http.StatusRequestEntityTooLarge,
				"dse body exceeds " + strconv.Itoa(maxBatchBodyBytes) + " bytes"})
			return
		}
		writeError(w, httpError{http.StatusBadRequest, "bad dse request: " + err.Error()})
		return
	}
	designs, err := req.Expand()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDSETooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, httpError{status, err.Error()})
		return
	}

	specs := make([]JobSpec, len(designs))
	for i, d := range designs {
		specs[i] = d.Spec
	}
	run, err := s.SubmitBatch(r.Context(), specs, BatchOptions{Priority: priority, Budget: budget})
	if err != nil {
		var bse *BatchSpecError
		switch {
		case errors.As(err, &bse):
			// Point the client at the offending design point, by its
			// expansion label rather than a line number — axis points have
			// no line in the request body.
			writeJSON(w, http.StatusBadRequest, ParamError{
				Error:     err.Error(),
				Parameter: "point",
				Value:     designs[bse.Index].Label,
				Want:      []string{"a valid base spec and config deltas"},
			})
		case errors.Is(err, ErrBatchTooLarge):
			writeError(w, httpError{http.StatusRequestEntityTooLarge, err.Error()})
		case errors.Is(err, ErrBatchEmpty):
			writeError(w, httpError{http.StatusBadRequest, err.Error()})
		case errors.Is(err, ErrBudgetExhausted):
			setRetryAfter(w, s.retryAfter(priority))
			writeError(w, httpError{http.StatusGatewayTimeout, err.Error()})
		case errors.Is(err, resilience.ErrBreakerOpen):
			setRetryAfter(w, time.Second)
			writeError(w, httpError{http.StatusServiceUnavailable, err.Error()})
		default:
			writeError(w, err) // durability or pool closed: 503
		}
		return
	}

	// Stream points as they complete; a disconnect cancels only points
	// that have not started, exactly like /v1/batch.
	stopCancel := context.AfterFunc(r.Context(), run.Cancel)
	defer stopCancel()
	w.Header().Set("Content-Type", ndjsonContentType)
	w.Header().Set("X-DSE-Points", strconv.Itoa(len(designs)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	summary := DSESummary{Points: len(designs), Machine: req.Base.Machine}
	var frontier []DSEFrontierPoint
	for br := range run.Results() {
		design := designs[br.Index]
		pt := DSEPoint{
			Index:     design.Index,
			Label:     design.Label,
			Config:    br.Spec.Config,
			State:     br.State,
			FromCache: br.FromCache,
			Error:     br.Error,
		}
		// The area proxy depends only on the point's (normalized) config,
		// so failed points still report where they sit on the area axis.
		cs := machines.ConfigSet{}
		if br.Spec.Config != nil {
			cs = *br.Spec.Config
		}
		if area, desc, aerr := cs.AreaProxy(br.Spec.Machine); aerr == nil {
			pt.Area = area
			pt.AreaDesc = desc
			summary.AreaDesc = desc
		}
		if br.State == Done && br.Result != nil {
			pt.Cycles = br.Result.Cycles
			frontier = append(frontier, DSEFrontierPoint{
				Index:  pt.Index,
				Label:  pt.Label,
				Cycles: pt.Cycles,
				Area:   pt.Area,
			})
		} else {
			summary.Failed++
		}
		_ = enc.Encode(pt)
		if flusher != nil {
			flusher.Flush()
		}
	}
	summary.Done = true
	summary.Frontier = ParetoFrontier(frontier)
	_ = enc.Encode(summary)
	if flusher != nil {
		flusher.Flush()
	}
}
