package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/machines"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := NewService(Options{Pool: PoolOptions{Workers: 8, JobTimeout: 5 * time.Minute}})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

// TestHTTPTable3MatchesSerialStudy is the acceptance check: the service
// endpoint regenerates Table 3 with cycle counts identical to the
// serial study (the numbers `sigstudy -csv` writes and cmd/compare
// diffs).
func TestHTTPTable3MatchesSerialStudy(t *testing.T) {
	_, srv := newTestServer(t)

	var td TableData
	resp := getJSON(t, srv.URL+"/v1/tables/3", &td)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	sr, err := core.RunStudy(machines.All(), core.PaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	names := sr.MachineNames()
	if len(td.Rows) != len(names) {
		t.Fatalf("%d rows, want %d", len(td.Rows), len(names))
	}
	for i, name := range names {
		if td.Rows[i][0] != name {
			t.Fatalf("row %d is %q, want %q (paper order)", i, td.Rows[i][0], name)
		}
		for _, k := range core.Kernels() {
			want, _ := sr.Result(name, k)
			if got := td.Cycles[name][k]; got != want.Cycles {
				t.Errorf("%s/%s: service %d cycles, serial study %d", name, k, got, want.Cycles)
			}
		}
	}

	// The text rendering is the same table cmd/sigstudy prints.
	tresp, err := http.Get(srv.URL + "/v1/tables/3?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	text, _ := io.ReadAll(tresp.Body)
	if !strings.Contains(string(text), "Table 3. Experimental results") {
		t.Fatalf("text table:\n%s", text)
	}
}

// TestHTTPSubmitAllPairs posts one job per (machine, kernel) pair of
// the paper study — the acceptance criterion that the daemon serves
// POST /v1/jobs for all five machines and all three kernels.
func TestHTTPSubmitAllPairs(t *testing.T) {
	s, srv := newTestServer(t)

	// Warm the memo with the full grid so the 15 posted jobs come back
	// quickly (and exercise the cache path).
	if _, err := s.Table3(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, m := range machines.All() {
		for _, k := range core.Kernels() {
			body, _ := json.Marshal(JobSpec{Machine: m.Name(), Kernel: k})
			resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var job Job
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: status %d (%s)", m.Name(), k, resp.StatusCode, job.Error)
			}
			if job.State != Done || job.Result == nil || job.Result.Cycles == 0 {
				t.Fatalf("%s/%s: job %+v", m.Name(), k, job)
			}
			if !job.FromCache {
				t.Errorf("%s/%s: expected memo hit after Table3 warm-up", m.Name(), k)
			}

			// The job is queryable by ID afterwards.
			var byID Job
			gresp := getJSON(t, srv.URL+"/v1/jobs/"+job.ID, &byID)
			if gresp.StatusCode != http.StatusOK || byID.ID != job.ID {
				t.Fatalf("GET by id: %d %+v", gresp.StatusCode, byID)
			}
		}
	}

	var list struct {
		Jobs []Job `json:"jobs"`
	}
	getJSON(t, srv.URL+"/v1/jobs", &list)
	if len(list.Jobs) != len(machines.All())*len(core.Kernels()) {
		t.Fatalf("%d jobs listed", len(list.Jobs))
	}
}

func TestHTTPErrorsAndProbes(t *testing.T) {
	_, srv := newTestServer(t)

	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d", resp.StatusCode)
	}

	// Unknown machine.
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"machine":"Cray-1","kernel":"cslc"}`))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(apiErr["error"], "Cray-1") {
		t.Fatalf("unknown machine: %d %v", resp.StatusCode, apiErr)
	}

	// Unknown job ID.
	if resp := getJSON(t, srv.URL+"/v1/jobs/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}

	// Probes.
	var health map[string]any
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mtext, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"simserved_jobs_queued_total", "simserved_cache_hit_rate"} {
		if !strings.Contains(string(mtext), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mtext)
		}
	}
}

// TestHTTPAsyncLifecycle submits without wait and polls the job to a
// terminal state, the way a remote client would.
func TestHTTPAsyncLifecycle(t *testing.T) {
	_, srv := newTestServer(t)
	body, _ := json.Marshal(JobSpec{Machine: "AltiVec", Kernel: core.BeamSteering})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var cur Job
		getJSON(t, srv.URL+"/v1/jobs/"+job.ID, &cur)
		if cur.State.Terminal() {
			if cur.State != Done {
				t.Fatalf("job failed: %s", cur.Error)
			}
			if cur.Latency() <= 0 {
				t.Fatalf("no latency recorded: %+v", cur)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", job.ID, cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func BenchmarkServiceMemoHit(b *testing.B) {
	s := NewService(Options{Pool: PoolOptions{Workers: 4, JobTimeout: time.Minute}})
	defer s.Close()
	w := smallWorkload()
	spec := JobSpec{Machine: "AltiVec", Kernel: core.BeamSteering, Workload: &w}
	job, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), job.ID); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), j.ID); err != nil {
			b.Fatal(err)
		}
	}
}
