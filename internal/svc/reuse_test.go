// Machine-reuse tests: the per-worker instance cache must be invisible
// in results — a reused instance either reproduces a fresh instance's
// cycles bit-identically or the determinism guard turns the run into a
// hard error. Never a silently wrong count.
package svc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
)

// leakyMachine is a stub core.Machine whose runs accumulate state: the
// first run after construction (or an honest Reset) costs 100 cycles,
// and every leaked prior run adds 10. With leak=true its Reset is a
// no-op — the exact failure mode the reuse determinism guard exists to
// catch.
type leakyMachine struct {
	name string
	runs uint64
	leak bool
}

func (m *leakyMachine) Name() string        { return m.name }
func (m *leakyMachine) Params() core.Params { return core.Params{} }

func (m *leakyMachine) run() (core.Result, error) {
	m.runs++
	return core.Result{Cycles: 100 + (m.runs-1)*10, Verified: true}, nil
}

func (m *leakyMachine) RunCornerTurn(cornerturn.Spec) (core.Result, error)  { return m.run() }
func (m *leakyMachine) RunCSLC(cslc.Spec) (core.Result, error)              { return m.run() }
func (m *leakyMachine) RunBeamSteering(beamsteer.Spec) (core.Result, error) { return m.run() }

func (m *leakyMachine) Reset() {
	if !m.leak {
		m.runs = 0
	}
}

func leakyFactory(leak bool) MachineFactory {
	return func(name string) (core.Machine, error) {
		return &leakyMachine{name: name, leak: leak}, nil
	}
}

func reuseTask(label string, factory MachineFactory) Task {
	return Task{
		Label:   label,
		Machine: "leaky",
		Factory: factory,
		RunOn: func(_ context.Context, m core.Machine) (core.Result, error) {
			return m.RunCornerTurn(cornerturn.Spec{})
		},
	}
}

// TestLeakyResetTripsDeterminismGuard drives a machine whose Reset
// leaks state through the reuse path with every reused cell sampled:
// the guard must answer ErrDeterminism, and no future may ever carry
// the leaked (wrong) cycle count as a success.
func TestLeakyResetTripsDeterminismGuard(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, JobTimeout: time.Minute, MemoCapacity: -1, ReuseSampleEvery: 1})
	defer p.Close()
	factory := leakyFactory(true)

	tripped := false
	for i := 0; i < 6; i++ {
		fut, err := p.Submit(reuseTask(fmt.Sprintf("leak-%d", i), factory))
		if err != nil {
			t.Fatal(err)
		}
		res, werr := fut.Wait(context.Background())
		switch {
		case werr == nil:
			// A success must be a fresh-instance-identical run: the
			// leaked 110+ counts may never escape as answers.
			if res.Cycles != 100 {
				t.Fatalf("cell %d: wrong cycles %d served as success", i, res.Cycles)
			}
		case errors.Is(werr, ErrDeterminism):
			tripped = true
		default:
			t.Fatalf("cell %d: unexpected error %v", i, werr)
		}
	}
	if !tripped {
		t.Fatal("leaky Reset never tripped ErrDeterminism")
	}
	snap := p.Metrics().Snapshot()
	if snap.Determinism == 0 {
		t.Fatalf("determinism violation not metered: %+v", snap)
	}
	if snap.ReuseChecks == 0 {
		t.Fatalf("no reuse verification ran: %+v", snap)
	}

	// The quarantine: after a trip, instance reuse is off pool-wide, so
	// every further cell runs fresh and correct.
	for i := 0; i < 3; i++ {
		fut, err := p.Submit(reuseTask(fmt.Sprintf("post-%d", i), factory))
		if err != nil {
			t.Fatal(err)
		}
		res, werr := fut.Wait(context.Background())
		if werr != nil {
			t.Fatalf("post-quarantine cell %d: %v", i, werr)
		}
		if res.Cycles != 100 {
			t.Fatalf("post-quarantine cell %d: cycles = %d, want 100", i, res.Cycles)
		}
	}
}

// TestHonestResetReusesInstances proves the fast path engages: with a
// contract-honoring Reset, later cells reuse the worker's cached
// instance, sampling re-verifies them against fresh instances, and
// every answer matches a fresh run.
func TestHonestResetReusesInstances(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, JobTimeout: time.Minute, MemoCapacity: -1, ReuseSampleEvery: 1})
	defer p.Close()
	factory := leakyFactory(false)

	for i := 0; i < 5; i++ {
		fut, err := p.Submit(reuseTask(fmt.Sprintf("honest-%d", i), factory))
		if err != nil {
			t.Fatal(err)
		}
		res, werr := fut.Wait(context.Background())
		if werr != nil {
			t.Fatalf("cell %d: %v", i, werr)
		}
		if res.Cycles != 100 {
			t.Fatalf("cell %d: cycles = %d, want 100", i, res.Cycles)
		}
	}
	snap := p.Metrics().Snapshot()
	if snap.MachineReuses == 0 {
		t.Fatalf("no instance was reused: %+v", snap)
	}
	if snap.ReuseChecks == 0 {
		t.Fatalf("sampling never verified a reuse: %+v", snap)
	}
	if snap.Determinism != 0 {
		t.Fatalf("honest reset tripped the guard: %+v", snap)
	}
}

// TestReuseSamplingStride checks the sampling contract: the first
// reuse per (worker, machine) is always verified, later ones only on
// the stride.
func TestReuseSamplingStride(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, JobTimeout: time.Minute, MemoCapacity: -1, ReuseSampleEvery: 4})
	defer p.Close()
	factory := leakyFactory(false)
	for i := 0; i < 9; i++ {
		fut, err := p.Submit(reuseTask(fmt.Sprintf("stride-%d", i), factory))
		if err != nil {
			t.Fatal(err)
		}
		if _, werr := fut.Wait(context.Background()); werr != nil {
			t.Fatal(werr)
		}
	}
	snap := p.Metrics().Snapshot()
	// 9 cells on one worker: 1 build + 8 reuses, sampled at reuse 0 and
	// 4 (stride 4) = exactly 2 verification runs.
	if snap.MachineReuses != 8 {
		t.Fatalf("reuses = %d, want 8: %+v", snap.MachineReuses, snap)
	}
	if snap.ReuseChecks != 2 {
		t.Fatalf("reuse checks = %d, want 2: %+v", snap.ReuseChecks, snap)
	}
}

// TestReuseUnderCoalescedDuplicates floods a multi-worker pool with
// duplicate and distinct specs through SubmitBatch — coalescing,
// memoization, and the per-worker instance caches all active at once —
// and checks under -race that every answer is the fresh-run count.
func TestReuseUnderCoalescedDuplicates(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 8, JobTimeout: time.Minute, ReuseSampleEvery: 2})
	defer p.Close()

	var built atomic.Uint64
	factory := func(name string) (core.Machine, error) {
		built.Add(1)
		return &leakyMachine{name: name, leak: false}, nil
	}

	const cells = 160
	tasks := make([]Task, cells)
	for i := range tasks {
		// 4 machine names x 8 distinct memo keys, so every key appears
		// 5 times: coalescing and memo hits race with cache reuse.
		machine := fmt.Sprintf("m%d", i%4)
		tasks[i] = Task{
			Label:   fmt.Sprintf("dup-%d", i),
			MemoKey: fmt.Sprintf("%s/k%d", machine, i%32),
			Machine: machine,
			Factory: factory,
			RunOn: func(_ context.Context, m core.Machine) (core.Result, error) {
				return m.RunCornerTurn(cornerturn.Spec{})
			},
		}
	}
	futs, err := p.SubmitBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, fut := range futs {
		res, werr := fut.Wait(context.Background())
		if werr != nil {
			t.Fatalf("cell %d: %v", i, werr)
		}
		if res.Cycles != 100 {
			t.Fatalf("cell %d: cycles = %d, want 100", i, res.Cycles)
		}
	}
	snap := p.Metrics().Snapshot()
	if snap.Determinism != 0 {
		t.Fatalf("determinism violations under duplicates: %+v", snap)
	}
	// Coalescing + memoization must leave at most one execution per
	// distinct key, and the caches keep builds below executions.
	if got := built.Load(); got > cells {
		t.Fatalf("factory ran %d times for %d cells", got, cells)
	}
}

// TestReuseDisabledBySampleEveryNegative pins the opt-out: a negative
// stride disables verification sampling but reuse still happens.
func TestReuseDisabledBySampleEveryNegative(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, JobTimeout: time.Minute, MemoCapacity: -1, ReuseSampleEvery: -1})
	defer p.Close()
	factory := leakyFactory(false)
	for i := 0; i < 4; i++ {
		fut, err := p.Submit(reuseTask(fmt.Sprintf("nosample-%d", i), factory))
		if err != nil {
			t.Fatal(err)
		}
		if _, werr := fut.Wait(context.Background()); werr != nil {
			t.Fatal(werr)
		}
	}
	snap := p.Metrics().Snapshot()
	if snap.MachineReuses == 0 {
		t.Fatalf("reuse disabled entirely: %+v", snap)
	}
	if snap.ReuseChecks != 0 {
		t.Fatalf("sampling ran with a negative stride: %+v", snap)
	}
}
