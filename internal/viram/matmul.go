package viram

import (
	"sigkern/internal/core"
	"sigkern/internal/kernels/matmul"
)

// RunMatMul implements core.MatMulRunner: a rank-1-update formulation in
// which each C row chunk stays in a vector register while the K loop
// streams B rows past it — the classic vectorization, unit-stride
// throughout, so the kernel is bound by ALU0's FP rate rather than the
// address generators.
func (m *Machine) RunMatMul(spec matmul.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := matmul.VerifyBlocked(spec); err != nil {
		return core.Result{}, err
	}

	m.reset()
	aBase := m.alloc(spec.M * spec.K)
	bBase := m.alloc(spec.K * spec.N)
	cBase := m.alloc(spec.M * spec.N)
	p := m.newProg()
	colChunks := chunks(spec.N, m.cfg.MVL)
	for i := 0; i < spec.M; i++ {
		j0 := 0
		for _, vl := range colChunks {
			// C chunk lives in v0 for the whole K loop.
			p.load(vl, cBase+i*spec.N+j0, 0)
			for k := 0; k < spec.K; k++ {
				// Scalar A element folded as the multiplier.
				p.load(vl, bBase+k*spec.N+j0, 1)
				p.fmul(vl, 2, 1)    // b * a(scalar)
				p.fadd(vl, 0, 0, 2) // accumulate into the C chunk
			}
			p.store(vl, cBase+i*spec.N+j0, 0)
			p.scalar(2)
			_ = aBase
			j0 += vl
		}
	}
	res := m.exec(p.insts)
	m.finishProg(p)
	return core.Result{
		Machine:   m.Name(),
		Kernel:    core.MatMul,
		Cycles:    res.Cycles,
		Breakdown: res.Breakdown,
		Stats:     res.Stats,
		Ops:       spec.Flops(),
		// B streams past every output row (one word per MAC — vector
		// registers hold C, not B), plus C in/out and the A scalars.
		Words:    spec.MACs() + 2*uint64(spec.M)*uint64(spec.N) + uint64(spec.M)*uint64(spec.K),
		Verified: true,
	}, nil
}
