package viram

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/pfb"
)

// RunPFB implements the extension channelizer: vectorized across frames
// (the natural VIRAM batching — every vector lane computes the same
// branch of a different frame), with the per-branch FIR reading strided
// across the frame dimension and the cross-branch FFT running as a
// radix-4 transform over branch planes.
func (m *Machine) RunPFB(w pfb.Workload) (core.Result, error) {
	if err := w.ValidateWorkload(); err != nil {
		return core.Result{}, err
	}
	if fft.BestRadix(w.Channels) != fft.Radix4 {
		return core.Result{}, fmt.Errorf(
			"viram: channel count %d is not a power of four; the cross-branch transform is emitted radix-4", w.Channels)
	}
	if err := w.Verify(); err != nil {
		return core.Result{}, err
	}

	m.reset()
	ch := w.Channels
	inRe := m.alloc(w.Samples)
	inIm := m.alloc(w.Samples)
	brRe := m.alloc(ch * m.cfg.MVL)
	brIm := m.alloc(ch * m.cfg.MVL)
	outRe := m.alloc(w.FrameCount() * ch)
	outIm := m.alloc(w.FrameCount() * ch)

	p := m.newProg()
	f0 := 0
	for _, vl := range chunks(w.FrameCount(), m.cfg.MVL) {
		// FIR: branch p of frames f0..f0+vl-1. Sample index is
		// (f*ch + p + t*ch); across frames the stride is ch words.
		for br := 0; br < ch; br++ {
			for t := 0; t < w.Taps; t++ {
				base := f0*ch + br + t*ch
				p.loadStride(vl, inRe+base, ch, 1)
				p.loadStride(vl, inIm+base, ch, 2)
				// Real coefficient (scalar broadcast) times complex data,
				// accumulated into v0 (re) and v3 (im).
				p.fmul(vl, 4, 1)
				p.fadd(vl, 0, 0, 4)
				p.fmul(vl, 5, 2)
				p.fadd(vl, 3, 3, 5)
			}
			p.store(vl, brRe+br*vl, 0)
			p.store(vl, brIm+br*vl, 3)
			p.scalar(2)
		}
		// Cross-branch FFT: 64 = 4^3, a pure radix-4 transform over the
		// branch planes (digit reversal included).
		m.emitRadix4Half(p, ch, vl, brRe, brIm)
		// Emit the frame's channels to the output arrays.
		for c := 0; c < ch; c++ {
			p.load(vl, brRe+c*vl, 6)
			p.store(vl, outRe+f0*ch+c*vl, 6)
			p.load(vl, brIm+c*vl, 7)
			p.store(vl, outIm+f0*ch+c*vl, 7)
			if c%8 == 0 {
				p.scalar(2)
			}
		}
		f0 += vl
	}
	res := m.exec(p.insts)
	m.finishProg(p)
	return core.Result{
		Machine:   m.Name(),
		Kernel:    core.KernelID("pfb"),
		Cycles:    res.Cycles,
		Breakdown: res.Breakdown,
		Stats:     res.Stats,
		Ops:       w.TotalOps(),
		Words:     2*uint64(w.Samples)*uint64(w.Taps) + 2*uint64(w.FrameCount())*uint64(w.Channels),
		Verified:  true,
	}, nil
}
