package viram

import (
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
)

var _ core.Machine = (*Machine)(nil)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Lanes = 0 },
		func(c *Config) { c.FPLanes = 0 },
		func(c *Config) { c.FPLanes = c.Lanes + 1 },
		func(c *Config) { c.MVL = 0 },
		func(c *Config) { c.StartupALU = -1 },
		func(c *Config) { c.TLBEntries = 0 },
		func(c *Config) { c.DRAM.Banks = 0 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestExecChainingSerializesDependents(t *testing.T) {
	m := New(DefaultConfig())
	// A short dependent integer chain: with VL=8 each op occupies its ALU
	// for a single cycle, so chain startup dominates. Independent ops
	// spread over both integer ALUs; dependent ones wait for chaining.
	var indep, dep []Inst
	for i := 0; i < 8; i++ {
		indep = append(indep, Inst{Op: VAddI, VL: 8, Dst: i + 1, Src1: -1, Src2: -1})
		dep = append(dep, Inst{Op: VAddI, VL: 8, Dst: i + 1, Src1: i, Src2: -1})
	}
	rIndep := m.exec(indep)
	rDep := m.exec(dep)
	if rDep.Cycles <= rIndep.Cycles {
		t.Fatalf("dependent chain (%d) not slower than independent ops (%d)",
			rDep.Cycles, rIndep.Cycles)
	}
	// The gap must be roughly one startup per dependence edge.
	if rDep.Cycles < rIndep.Cycles+7*uint64(m.cfg.StartupALU)/2 {
		t.Fatalf("chain gap too small: dep %d vs indep %d", rDep.Cycles, rIndep.Cycles)
	}
}

func TestExecLoadToUseChaining(t *testing.T) {
	m := New(DefaultConfig())
	load := Inst{Op: VLoad, VL: 64, Base: 0, Stride: 1, Dst: 1, Src1: -1, Src2: -1}
	useDep := Inst{Op: VAddF, VL: 64, Dst: 2, Src1: 1, Src2: -1}
	useIndep := Inst{Op: VAddF, VL: 64, Dst: 2, Src1: -1, Src2: -1}
	rDep := m.exec([]Inst{load, useDep})
	m.reset()
	rIndep := m.exec([]Inst{load, useIndep})
	if rDep.Cycles <= rIndep.Cycles {
		t.Fatalf("load-to-use chain (%d) not slower than independent (%d)",
			rDep.Cycles, rIndep.Cycles)
	}
}

func TestExecIntOpsUseBothALUs(t *testing.T) {
	m := New(DefaultConfig())
	vl := 64
	var fp, in []Inst
	for i := 0; i < 16; i++ {
		fp = append(fp, Inst{Op: VAddF, VL: vl, Dst: 1, Src1: -1, Src2: -1})
		in = append(in, Inst{Op: VAddI, VL: vl, Dst: 1, Src1: -1, Src2: -1})
	}
	rf := m.exec(fp)
	ri := m.exec(in)
	// Integer ops spread over both ALUs while FP is confined to ALU0, so
	// the integer stream must run close to twice as fast.
	if ri.Cycles*3 > rf.Cycles*2 || ri.Cycles >= rf.Cycles {
		t.Fatalf("int/FP stream ratio off: int %d vs fp %d, want ~2x faster", ri.Cycles, rf.Cycles)
	}
}

func TestExecVLExceedsMVLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VL > MVL did not panic")
		}
	}()
	m := New(DefaultConfig())
	m.exec([]Inst{{Op: VAddF, VL: 65, Dst: 0, Src1: -1, Src2: -1}})
}

func TestExecRegisterRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range register did not panic")
		}
	}()
	m := New(DefaultConfig())
	m.exec([]Inst{{Op: VAddF, VL: 8, Dst: 40, Src1: -1, Src2: -1}})
}

func TestTLBMissesOnLargeWalk(t *testing.T) {
	tl := newTLB(4, 8<<10) // 4 entries, 8 KB pages = 2K words
	// First walk: 8 distinct pages, all miss.
	if got := tl.touch(0, 2048, 8); got != 8 {
		t.Fatalf("cold walk misses = %d, want 8", got)
	}
	// Immediate rewalk of the last 4 pages: all hit.
	if got := tl.touch(4*2048, 2048, 4); got != 0 {
		t.Fatalf("warm walk misses = %d, want 0", got)
	}
	// Unit-stride walk within one page: at most one miss.
	tl.reset()
	if got := tl.touch(0, 1, 64); got != 1 {
		t.Fatalf("unit walk misses = %d, want 1", got)
	}
}

func TestCornerTurnCycles(t *testing.T) {
	m := New(DefaultConfig())
	r, err := m.RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatal("result not verified")
	}
	// Paper: 554k cycles. The model must land in the same regime and
	// above the 262k-cycle peak-bandwidth bound.
	if r.Cycles < 300_000 || r.Cycles > 900_000 {
		t.Fatalf("corner turn cycles = %d, want ~554k (300k-900k band)", r.Cycles)
	}
	// Memory must dominate: this kernel measures bandwidth.
	if f := r.Breakdown.Fraction("memory"); f < 0.5 {
		t.Fatalf("memory fraction = %.2f, want > 0.5 (%s)", f, r.Breakdown.String())
	}
}

func TestCornerTurnPaddingAblation(t *testing.T) {
	// Without row padding the strided walk hammers a few DRAM banks; the
	// paper adds padding precisely to avoid this.
	cfg := DefaultConfig()
	cfg.PadWords = 0
	unpadded := New(cfg)
	padded := New(DefaultConfig())
	ru, err := unpadded.RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := padded.RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ru.Cycles <= rp.Cycles {
		t.Fatalf("unpadded (%d) not slower than padded (%d)", ru.Cycles, rp.Cycles)
	}
}

func TestBeamSteeringCycles(t *testing.T) {
	m := New(DefaultConfig())
	r, err := m.RunBeamSteering(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 35k cycles with a 56% memory lower bound.
	if r.Cycles < 20_000 || r.Cycles > 60_000 {
		t.Fatalf("beam steering cycles = %d, want ~35k (20k-60k band)", r.Cycles)
	}
	f := r.Breakdown.Fraction("memory")
	if f < 0.35 || f > 0.85 {
		t.Fatalf("memory fraction = %.2f, want ~0.56 (%s)", f, r.Breakdown.String())
	}
}

func TestCSLCCycles(t *testing.T) {
	m := New(DefaultConfig())
	r, err := m.RunCSLC(cslc.PaperSpec(fft.MixedRadix42))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 424k cycles.
	if r.Cycles < 250_000 || r.Cycles > 900_000 {
		t.Fatalf("CSLC cycles = %d, want ~424k (250k-900k band)", r.Cycles)
	}
	if r.OpsPerCycle() <= 1 {
		t.Fatalf("CSLC ops/cycle = %.2f, want > 1 (vector execution)", r.OpsPerCycle())
	}
}

func TestParamsMatchTable2(t *testing.T) {
	p := New(DefaultConfig()).Params()
	if p.ClockMHz != 200 || p.ALUs != 16 || p.PeakGFLOPS != 3.2 {
		t.Fatalf("Table 2 row mismatch: %+v", p)
	}
}

func TestAddressGeneratorAblation(t *testing.T) {
	// More address generators -> faster strided corner turn, up to the
	// sequential limit. This is the paper's "24% due to a limitation in
	// strided load performance imposed by the number of address
	// generators".
	base := DefaultConfig()
	fast := DefaultConfig()
	fast.DRAM.AddrGens = 8
	rb, err := New(base).RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := New(fast).RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rf.Cycles >= rb.Cycles {
		t.Fatalf("8 address generators (%d) not faster than 4 (%d)", rf.Cycles, rb.Cycles)
	}
}

func TestTracerObservesEveryInstruction(t *testing.T) {
	m := New(DefaultConfig())
	var got []TraceEntry
	m.SetTracer(func(e TraceEntry) { got = append(got, e) })
	prog := []Inst{
		{Op: VLoad, VL: 64, Base: 0, Stride: 1, Dst: 1, Src1: -1, Src2: -1},
		{Op: VAddF, VL: 64, Dst: 2, Src1: 1, Src2: -1},
		{Op: VStore, VL: 64, Base: 64, Stride: 1, Dst: -1, Src1: 2, Src2: -1},
	}
	m.exec(prog)
	if len(got) != len(prog) {
		t.Fatalf("traced %d entries, want %d", len(got), len(prog))
	}
	if got[0].Unit != "VMU" || got[1].Unit != "VALU0" {
		t.Fatalf("units: %s, %s", got[0].Unit, got[1].Unit)
	}
	// Starts are monotone within a dependency chain.
	if !(got[0].Start <= got[1].Start && got[1].Start <= got[2].Start) {
		t.Fatalf("starts not monotone: %d %d %d", got[0].Start, got[1].Start, got[2].Start)
	}
	// Tracing must not perturb timing.
	m2 := New(DefaultConfig())
	r2 := m2.exec(prog)
	m.SetTracer(nil)
	m.reset()
	r1 := m.exec(prog)
	if r1.Cycles != r2.Cycles {
		t.Fatalf("tracing changed timing: %d vs %d", r1.Cycles, r2.Cycles)
	}
}

func TestOpNames(t *testing.T) {
	if OpName(VLoad) != "vld" || OpName(VFMA) != "vfma" || OpName(Scalar) != "scalar" {
		t.Fatal("mnemonics wrong")
	}
	if OpName(Op(99)) != "op99" {
		t.Fatalf("unknown op name: %s", OpName(Op(99)))
	}
}

func TestAddressRangeValidation(t *testing.T) {
	m := New(DefaultConfig())
	m.reset()
	m.alloc(1024)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-heap access did not panic")
		}
	}()
	m.exec([]Inst{{Op: VLoad, VL: 64, Base: 4096, Stride: 1, Dst: 0, Src1: -1, Src2: -1}})
}

func TestCornerTurnPermuteVariant(t *testing.T) {
	// The permute formulation trades strided loads for ALU0 permutes and
	// strided stores; it must not beat the paper's strided-load version
	// (which is why the implementers chose strided loads), but it stays
	// within the same regime.
	m := New(DefaultConfig())
	strided, err := m.RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	perm, err := m.RunCornerTurnPermute(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if perm.Cycles < strided.Cycles*8/10 {
		t.Fatalf("permute variant (%d) dramatically beats strided (%d); the paper's choice would be wrong",
			perm.Cycles, strided.Cycles)
	}
	if perm.Cycles > strided.Cycles*3 {
		t.Fatalf("permute variant (%d) implausibly slow vs strided (%d)", perm.Cycles, strided.Cycles)
	}
}
