package viram

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/testsig"
)

// prog is a small builder for vector instruction streams. Register
// operands default to "none" so a forgotten field cannot silently alias
// vector register zero.
type prog struct {
	insts []Inst
}

func (p *prog) emit(in Inst) { p.insts = append(p.insts, in) }

func (p *prog) load(vl, base, dst int) {
	p.emit(Inst{Op: VLoad, VL: vl, Base: base, Stride: 1, Dst: dst, Src1: -1, Src2: -1})
}

func (p *prog) loadStride(vl, base, stride, dst int) {
	p.emit(Inst{Op: VLoadStride, VL: vl, Base: base, Stride: stride, Dst: dst, Src1: -1, Src2: -1})
}

func (p *prog) store(vl, base, src int) {
	p.emit(Inst{Op: VStore, VL: vl, Base: base, Stride: 1, Dst: -1, Src1: src, Src2: -1})
}

func (p *prog) fmul(vl, dst, src int) {
	p.emit(Inst{Op: VMulF, VL: vl, Dst: dst, Src1: src, Src2: -1})
}

func (p *prog) fadd(vl, dst, a, b int) {
	p.emit(Inst{Op: VAddF, VL: vl, Dst: dst, Src1: a, Src2: b})
}

func (p *prog) iadd(vl, dst, a, b int) {
	p.emit(Inst{Op: VAddI, VL: vl, Dst: dst, Src1: a, Src2: b})
}

func (p *prog) shift(vl, dst, src int) {
	p.emit(Inst{Op: VShift, VL: vl, Dst: dst, Src1: src, Src2: -1})
}

func (p *prog) scalar(cost int) {
	p.emit(Inst{Op: Scalar, Cost: cost, Dst: -1, Src1: -1, Src2: -1})
}

// chunks splits n elements into vector-length pieces of at most mvl.
// Callers iterating the same split repeatedly should hoist the call out
// of their loops; the split depends only on (n, mvl).
func chunks(n, mvl int) []int {
	var out []int
	for n > 0 {
		c := mvl
		if n < c {
			c = n
		}
		out = append(out, c)
		n -= c
	}
	return out
}

// newProg returns the machine's reusable program builder, emptied. The
// instruction backing is handed back by finishProg so its capacity
// carries over to the next kernel run.
func (m *Machine) newProg() *prog {
	return &prog{insts: m.progBuf[:0]}
}

// finishProg returns p's backing array to the machine for reuse.
func (m *Machine) finishProg(p *prog) { m.progBuf = p.insts }

// instArena hands out fixed-capacity []Inst chunks carved from one
// backing array, so per-butterfly bundle construction does not allocate.
// When a request outgrows the backing a larger one is allocated; chunks
// already handed out keep referencing the old array, which stays live
// (and correct) until they are consumed.
type instArena struct{ buf []Inst }

// take returns an empty slice with capacity exactly n that appends in
// place within the arena backing.
func (a *instArena) take(n int) []Inst {
	if len(a.buf)+n > cap(a.buf) {
		grow := 2 * cap(a.buf)
		if grow < n {
			grow = n
		}
		if grow < 1024 {
			grow = 1024
		}
		a.buf = make([]Inst, 0, grow)
	}
	s := a.buf[len(a.buf):len(a.buf):len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return s
}

// reset recycles the backing. Only call once every chunk handed out
// since the last reset has been consumed (copied into a program).
func (a *instArena) reset() { a.buf = a.buf[:0] }

// RunCornerTurn implements core.Machine. The program follows the paper's
// VIRAM algorithm: strided loads of matrix columns (with row padding to
// spread DRAM banks) staged through vector registers, sequential stores
// to the destination.
func (m *Machine) RunCornerTurn(spec cornerturn.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	// Functional half: perform and verify the real transpose.
	if err := cornerturn.VerifySynthetic(spec.Rows, spec.Cols, func(dst, src *testsig.Matrix) error {
		return cornerturn.TransposeBlocked(dst, src, spec.BlockSize)
	}); err != nil {
		return core.Result{}, fmt.Errorf("viram: corner turn: %w", err)
	}

	// Timing half: emit and execute the vector program.
	m.reset()
	srcStride := spec.Cols + m.cfg.PadWords
	srcBase := m.alloc(spec.Rows * srcStride)
	dstBase := m.alloc(spec.Rows * spec.Cols)
	p := m.newProg()
	rowChunks := chunks(spec.Rows, m.cfg.MVL)
	for c := 0; c < spec.Cols; c++ {
		r0 := 0
		for _, vl := range rowChunks {
			p.loadStride(vl, srcBase+r0*srcStride+c, srcStride, 0)
			p.store(vl, dstBase+c*spec.Rows+r0, 0)
			p.scalar(2)
			r0 += vl
		}
	}
	res := m.exec(p.insts)
	m.finishProg(p)

	return core.Result{
		Machine:   m.Name(),
		Kernel:    core.CornerTurn,
		Cycles:    res.Cycles,
		Breakdown: res.Breakdown,
		Stats:     res.Stats,
		Ops:       2 * spec.Words(),
		Words:     2 * spec.Words(),
		Verified:  true,
	}, nil
}

// RunCornerTurnPermute is the alternative corner-turn formulation the
// paper's implementation rejected: unit-stride loads at the full
// 8-word-per-cycle datapath, with the transpose done by in-register
// permutes (as AltiVec does) instead of strided address generation. The
// permutes execute on ALU0 only, so what the memory system gains the
// (single) permute-capable unit gives back — the quantitative case for
// the strided-load-plus-padding design the paper describes.
func (m *Machine) RunCornerTurnPermute(spec cornerturn.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := cornerturn.VerifySynthetic(spec.Rows, spec.Cols, func(dst, src *testsig.Matrix) error {
		return cornerturn.TransposeBlocked(dst, src, spec.BlockSize)
	}); err != nil {
		return core.Result{}, fmt.Errorf("viram: corner turn: %w", err)
	}

	m.reset()
	srcBase := m.alloc(spec.Rows * spec.Cols)
	dstBase := m.alloc(spec.Rows * spec.Cols)
	p := m.newProg()
	// Process 8x64 panels: eight unit-stride row loads fill v0..v7, a
	// permute network reassembles 64 8-element column groups, and eight
	// stores emit them. Each element passes through one permute slot.
	const panelRows = 8
	colChunks := chunks(spec.Cols, m.cfg.MVL)
	for r0 := 0; r0 < spec.Rows; r0 += panelRows {
		c0 := 0
		for _, vl := range colChunks {
			for r := 0; r < panelRows && r0+r < spec.Rows; r++ {
				p.load(vl, srcBase+(r0+r)*spec.Cols+c0, r)
			}
			// Transpose the panel in registers: one permute pass per
			// source register (vl elements each, ALU0 only).
			for r := 0; r < panelRows && r0+r < spec.Rows; r++ {
				p.emit(Inst{Op: VPerm, VL: vl, Dst: 8 + r, Src1: r, Src2: -1})
			}
			// Store the transposed groups: the destination addresses are
			// short sequential runs at column-major positions; each store
			// covers one source row's worth, strided by the destination
			// row length.
			for r := 0; r < panelRows && r0+r < spec.Rows; r++ {
				p.emit(Inst{Op: VStoreStride, VL: vl,
					Base: dstBase + c0*spec.Rows + r0 + r, Stride: spec.Rows,
					Dst: -1, Src1: 8 + r, Src2: -1})
			}
			p.scalar(2)
			c0 += vl
		}
	}
	res := m.exec(p.insts)
	m.finishProg(p)
	return core.Result{
		Machine:   m.Name(),
		Kernel:    core.CornerTurn,
		Cycles:    res.Cycles,
		Breakdown: res.Breakdown,
		Stats:     res.Stats,
		Ops:       2 * spec.Words(),
		Words:     2 * spec.Words(),
		Verified:  true,
		Notes:     []string{"permute variant: unit-stride loads, in-register transpose, strided stores"},
	}, nil
}

// RunBeamSteering implements core.Machine: the inner loop is
// hand-vectorized over elements, with the direction/dwell terms folded
// into a scalar ahead of the loop, as the paper describes ("the data is
// fed to the vector unit, which computes output data").
func (m *Machine) RunBeamSteering(spec beamsteer.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	tables := testsig.NewBeamTables(spec.Elements, spec.Directions, spec.Dwells, 7)
	out, err := beamsteer.Steer(spec, tables)
	if err != nil {
		return core.Result{}, err
	}
	// Verify a sample of outputs against the independent single-output
	// formula.
	for _, probe := range [][3]int{{0, 0, 0}, {spec.Dwells - 1, spec.Directions - 1, spec.Elements - 1}, {spec.Dwells / 2, 0, spec.Elements / 2}} {
		dw, d, e := probe[0], probe[1], probe[2]
		if out[dw][d][e] != beamsteer.SteerOne(spec, tables, dw, d, e) {
			return core.Result{}, fmt.Errorf("viram: beam steering output mismatch at %v", probe)
		}
	}

	m.reset()
	calBase := m.alloc(spec.Elements)
	gradBase := m.alloc(spec.Elements)
	outBase := m.alloc(spec.Elements * spec.Directions * spec.Dwells)
	p := m.newProg()
	outAddr := outBase
	elemChunks := chunks(spec.Elements, m.cfg.MVL)
	for dw := 0; dw < spec.Dwells; dw++ {
		for d := 0; d < spec.Directions; d++ {
			// Fold steer[d] + dwellBase[dw] + rounding into a scalar.
			p.scalar(3)
			e0 := 0
			for _, vl := range elemChunks {
				p.load(vl, calBase+e0, 0)
				p.load(vl, gradBase+e0, 1)
				p.iadd(vl, 2, 0, 1)
				p.iadd(vl, 3, 2, -1) // + folded scalar
				p.shift(vl, 4, 3)
				p.store(vl, outAddr+e0, 4)
				p.scalar(2)
				e0 += vl
			}
			outAddr += spec.Elements
		}
	}
	res := m.exec(p.insts)
	m.finishProg(p)

	return core.Result{
		Machine:   m.Name(),
		Kernel:    core.BeamSteering,
		Cycles:    res.Cycles,
		Breakdown: res.Breakdown,
		Stats:     res.Stats,
		Ops:       spec.Outputs() * spec.OpsPerOutput(),
		Words:     spec.Outputs() * spec.MemPerOutput(),
		Verified:  true,
	}, nil
}

// RunCSLC implements core.Machine. Per the paper, VIRAM runs the
// hand-optimized mixed radix-4/radix-2 FFT; the vectorization is across
// sub-bands (vector length = number of simultaneous transforms), with
// the samples held in separate real/imaginary planes so butterflies use
// unit-stride accesses and twiddles are scalar broadcasts.
func (m *Machine) RunCSLC(spec cslc.Spec) (core.Result, error) {
	// The paper's hand-optimized choice for N=128 is the mixed radix-4/2
	// plan; other lengths take the best decomposition available.
	spec.Radix = fft.BestRadix(spec.FFTSize)
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := m.verifyCSLC(spec); err != nil {
		return core.Result{}, err
	}

	m.reset()
	p := m.newProg()
	n := spec.FFTSize
	// Plane buffers (reused across strips, as a real implementation
	// would): input planes, working planes, half planes.
	chRe := m.alloc(spec.Samples)
	chIm := m.alloc(spec.Samples)
	workRe := m.alloc(n * m.cfg.MVL)
	workIm := m.alloc(n * m.cfg.MVL)
	evenRe := m.alloc(n / 2 * m.cfg.MVL)
	evenIm := m.alloc(n / 2 * m.cfg.MVL)
	oddRe := m.alloc(n / 2 * m.cfg.MVL)
	oddIm := m.alloc(n / 2 * m.cfg.MVL)
	outRe := m.alloc(n * m.cfg.MVL)
	outIm := m.alloc(n * m.cfg.MVL)

	strips := chunks(spec.SubBands, m.cfg.MVL)

	// Forward transforms: every channel, every strip of sub-bands.
	for ch := 0; ch < spec.Channels(); ch++ {
		for _, vl := range strips {
			m.emitExtract(p, spec, vl, chRe, chIm, workRe, workIm)
			m.emitFFT(p, n, vl, workRe, workIm, evenRe, evenIm, oddRe, oddIm, outRe, outIm, false)
		}
	}
	// Weight application: each main channel, each strip.
	for mc := 0; mc < spec.MainChannels; mc++ {
		for _, vl := range strips {
			m.emitWeightApply(p, spec, vl, workRe, workIm)
		}
	}
	// Inverse transforms: each main channel, each strip.
	for mc := 0; mc < spec.MainChannels; mc++ {
		for _, vl := range strips {
			m.emitFFT(p, n, vl, workRe, workIm, evenRe, evenIm, oddRe, oddIm, outRe, outIm, true)
		}
	}
	res := m.exec(p.insts)
	m.finishProg(p)

	counts, err := spec.TotalCounts()
	if err != nil {
		return core.Result{}, err
	}
	return core.Result{
		Machine:   m.Name(),
		Kernel:    core.CSLC,
		Cycles:    res.Cycles,
		Breakdown: res.Breakdown,
		Stats:     res.Stats,
		Ops:       counts.Flops(),
		Words:     counts.Loads + counts.Stores,
		Verified:  true,
	}, nil
}

// verifyCSLC runs the functional pipeline on the synthetic scene and
// proves it against the naive-DFT reference and a cancellation-depth
// check.
func (m *Machine) verifyCSLC(spec cslc.Spec) error {
	scene := testsig.DefaultScene(spec.Samples)
	scene.AuxCoupling = scene.AuxCoupling[:spec.AuxChannels]
	channels := scene.Channels(spec.MainChannels)
	w, err := cslc.EstimateWeights(spec, channels)
	if err != nil {
		return err
	}
	out, err := cslc.Run(spec, channels, w)
	if err != nil {
		return err
	}
	probe := []int{0, spec.SubBands / 2, spec.SubBands - 1}
	return cslc.VerifyAgainstNaive(spec, channels, w, out, probe)
}

// emitExtract emits the sub-band gather: for each sample row, a strided
// load across the strip's bands (stride = hop) into the working plane.
func (m *Machine) emitExtract(p *prog, spec cslc.Spec, vl, chRe, chIm, workRe, workIm int) {
	hop := spec.Hop()
	if hop == 0 {
		hop = 1
	}
	for s := 0; s < spec.FFTSize; s++ {
		p.loadStride(vl, chRe+s, hop, 0)
		p.store(vl, workRe+s*vl, 0)
		p.loadStride(vl, chIm+s, hop, 1)
		p.store(vl, workIm+s*vl, 1)
		if s%8 == 0 {
			p.scalar(2)
		}
	}
}

// emitFFT emits one strip's mixed radix-4/2 transform: even/odd
// deinterleave, digit-reversal of each half, three radix-4 stages per
// half, and the final radix-2 combine. When inverse is set a 1/N scaling
// pass is appended. Addresses follow the plane layout (row s of a plane
// holds sample s across the strip's bands).
func (m *Machine) emitFFT(p *prog, n, vl, workRe, workIm, evenRe, evenIm, oddRe, oddIm, outRe, outIm int, inverse bool) {
	if fft.BestRadix(n) == fft.Radix4 {
		// Power-of-four length: a pure radix-4 transform in place over
		// the working planes, then copy-out and optional scaling.
		m.emitRadix4Half(p, n, vl, workRe, workIm)
		for s := 0; s < n; s++ {
			p.load(vl, workRe+s*vl, 0)
			p.store(vl, outRe+s*vl, 0)
			p.load(vl, workIm+s*vl, 1)
			p.store(vl, outIm+s*vl, 1)
			if s%8 == 0 {
				p.scalar(2)
			}
		}
		if inverse {
			for s := 0; s < n; s++ {
				p.load(vl, outRe+s*vl, 0)
				p.fmul(vl, 1, 0)
				p.store(vl, outRe+s*vl, 1)
				p.load(vl, outIm+s*vl, 2)
				p.fmul(vl, 3, 2)
				p.store(vl, outIm+s*vl, 3)
				if s%8 == 0 {
					p.scalar(2)
				}
			}
		}
		return
	}
	half := n / 2
	// Deinterleave even/odd samples (the radix-2 DIT split).
	for s := 0; s < half; s++ {
		p.load(vl, workRe+2*s*vl, 0)
		p.store(vl, evenRe+s*vl, 0)
		p.load(vl, workIm+2*s*vl, 1)
		p.store(vl, evenIm+s*vl, 1)
		p.load(vl, workRe+(2*s+1)*vl, 2)
		p.store(vl, oddRe+s*vl, 2)
		p.load(vl, workIm+(2*s+1)*vl, 3)
		p.store(vl, oddIm+s*vl, 3)
		if s%8 == 0 {
			p.scalar(2)
		}
	}
	for _, base := range [][2]int{{evenRe, evenIm}, {oddRe, oddIm}} {
		m.emitRadix4Half(p, half, vl, base[0], base[1])
	}
	// Final radix-2 combine into the output planes, software-pipelined
	// one butterfly deep so the next loads overlap the previous stores.
	// Bundle instruction slices come from the machine arena (sizes are
	// fixed per butterfly: 4 loads, 11 computes, 4 stores).
	bundles := m.bundles[:0]
	for k := 0; k < half; k++ {
		b := bundle{}
		bp := prog{insts: m.arena.take(4)}
		bp.load(vl, evenRe+k*vl, 0)
		bp.load(vl, evenIm+k*vl, 1)
		bp.load(vl, oddRe+k*vl, 2)
		bp.load(vl, oddIm+k*vl, 3)
		b.loads = bp.insts
		bp = prog{insts: m.arena.take(11)}
		// t = odd * w^k (scalar twiddle).
		m.emitCMulScalar(&bp, vl, 2, 3, 4, 5, 30, 31)
		bp.fadd(vl, 6, 0, 4) // out[k]
		bp.fadd(vl, 7, 1, 5)
		bp.fadd(vl, 8, 0, 4) // out[k+half] (subtract: same slot cost)
		bp.fadd(vl, 9, 1, 5)
		bp.scalar(2)
		b.computes = bp.insts
		bp = prog{insts: m.arena.take(4)}
		bp.store(vl, outRe+k*vl, 6)
		bp.store(vl, outIm+k*vl, 7)
		bp.store(vl, outRe+(k+half)*vl, 8)
		bp.store(vl, outIm+(k+half)*vl, 9)
		b.stores = bp.insts
		bundles = append(bundles, b)
	}
	pipelineBundles(p, bundles)
	m.bundles = bundles
	m.arena.reset()
	if inverse {
		for s := 0; s < n; s++ {
			p.load(vl, outRe+s*vl, 0)
			p.fmul(vl, 1, 0)
			p.store(vl, outRe+s*vl, 1)
			p.load(vl, outIm+s*vl, 2)
			p.fmul(vl, 3, 2)
			p.store(vl, outIm+s*vl, 3)
			if s%8 == 0 {
				p.scalar(2)
			}
		}
	}
}

// emitRadix4Half emits the digit-reversal and the radix-4 stages of one
// half-length transform over a plane pair.
func (m *Machine) emitRadix4Half(p *prog, n, vl, re, im int) {
	// Digit-reversal reorder: one load+store per displaced sample row.
	digits := 0
	for t := n; t > 1; t >>= 2 {
		digits++
	}
	rev := func(i int) int {
		r := 0
		for d := 0; d < digits; d++ {
			r = (r << 2) | (i & 3)
			i >>= 2
		}
		return r
	}
	for s := 0; s < n; s++ {
		if j := rev(s); j > s {
			p.load(vl, re+s*vl, 0)
			p.load(vl, re+j*vl, 1)
			p.store(vl, re+j*vl, 0)
			p.store(vl, re+s*vl, 1)
			p.load(vl, im+s*vl, 2)
			p.load(vl, im+j*vl, 3)
			p.store(vl, im+j*vl, 2)
			p.store(vl, im+s*vl, 3)
			p.scalar(2)
		}
	}
	// Radix-4 stages, software-pipelined one butterfly deep per stage.
	// The bundle list and its instruction slices are machine scratch,
	// recycled per stage once pipelineBundles has copied them out.
	for size := 4; size <= n; size <<= 2 {
		quarter := size / 4
		bundles := m.bundles[:0]
		for start := 0; start < n; start += size {
			for k := 0; k < quarter; k++ {
				bundles = append(bundles, m.radix4BflyBundle(vl, re, im, start+k, quarter))
			}
		}
		pipelineBundles(p, bundles)
		m.bundles = bundles
		m.arena.reset()
	}
}

// bundle groups one butterfly's instructions by phase so pipelineBundles
// can overlap the memory unit with the arithmetic units across
// butterflies, the way a hand-scheduled vector loop does.
type bundle struct {
	loads, computes, stores []Inst
}

// pipelineBundles emits bundles with the stores deferred one butterfly:
// loads(k+1) issue before stores(k), and the deferred stores are
// interleaved into the compute sequence so both units stay fed through
// the finite dispatch queue — the shape a hand-scheduled vector loop has.
func pipelineBundles(p *prog, bundles []bundle) {
	var pending []Inst
	for _, b := range bundles {
		p.insts = append(p.insts, b.loads...)
		p.insts = appendInterleaved(p.insts, b.computes, pending)
		pending = b.stores
	}
	p.insts = append(p.insts, pending...)
}

// appendInterleaved appends the two instruction sequences to dst merged
// proportionally, preserving each sequence's internal order. Writing
// straight into the destination program avoids a temporary per merge.
func appendInterleaved(dst []Inst, a, b []Inst) []Inst {
	if len(b) == 0 {
		return append(dst, a...)
	}
	ai, bi := 0, 0
	for ai < len(a) || bi < len(b) {
		// Emit from whichever sequence is proportionally behind.
		if bi*len(a) <= ai*len(b) && bi < len(b) {
			dst = append(dst, b[bi])
			bi++
		} else {
			dst = append(dst, a[ai])
			ai++
		}
	}
	return dst
}

// radix4BflyBundle builds one radix-4 butterfly over plane rows i, i+q,
// i+2q, i+3q (scalar twiddles, complex arithmetic on vector registers).
func (m *Machine) radix4BflyBundle(vl, re, im, i, q int) bundle {
	a := func(plane, idx int) int { return plane + idx*vl }
	var b bundle
	// Arena-backed phase slices: 8 loads, 35 computes (3 complex
	// multiplies x 6, 16 adds, 1 scalar), 8 stores per butterfly.
	bp := prog{insts: m.arena.take(8)}
	// Loads: four complex operands.
	bp.load(vl, a(re, i), 0)
	bp.load(vl, a(im, i), 1)
	bp.load(vl, a(re, i+q), 2)
	bp.load(vl, a(im, i+q), 3)
	bp.load(vl, a(re, i+2*q), 4)
	bp.load(vl, a(im, i+2*q), 5)
	bp.load(vl, a(re, i+3*q), 6)
	bp.load(vl, a(im, i+3*q), 7)
	b.loads = bp.insts
	bp = prog{insts: m.arena.take(35)}
	// Three scalar-twiddle complex multiplies (b, c, d).
	for j := 0; j < 3; j++ {
		sr, si := 2+2*j, 3+2*j
		dr, di := 8+2*j, 9+2*j
		m.emitCMulScalar(&bp, vl, sr, si, dr, di, 30, 31)
	}
	// Complex add/sub tree: apc, amc, bpd, bmd then the four outputs.
	bp.fadd(vl, 14, 0, 10) // apc re (a + c')
	bp.fadd(vl, 15, 1, 11) // apc im
	bp.fadd(vl, 16, 0, 10) // amc re
	bp.fadd(vl, 17, 1, 11) // amc im
	bp.fadd(vl, 18, 8, 12) // bpd re
	bp.fadd(vl, 19, 9, 13) // bpd im
	bp.fadd(vl, 20, 8, 12) // bmd re
	bp.fadd(vl, 21, 9, 13) // bmd im
	bp.fadd(vl, 22, 14, 18)
	bp.fadd(vl, 23, 15, 19)
	bp.fadd(vl, 24, 16, 21)
	bp.fadd(vl, 25, 17, 20)
	bp.fadd(vl, 26, 14, 18)
	bp.fadd(vl, 27, 15, 19)
	bp.fadd(vl, 28, 16, 21)
	bp.fadd(vl, 29, 17, 20)
	bp.scalar(2)
	b.computes = bp.insts
	bp = prog{insts: m.arena.take(8)}
	// Stores: four complex results.
	bp.store(vl, a(re, i), 22)
	bp.store(vl, a(im, i), 23)
	bp.store(vl, a(re, i+q), 24)
	bp.store(vl, a(im, i+q), 25)
	bp.store(vl, a(re, i+2*q), 26)
	bp.store(vl, a(im, i+2*q), 27)
	bp.store(vl, a(re, i+3*q), 28)
	bp.store(vl, a(im, i+3*q), 29)
	b.stores = bp.insts
	return b
}

// emitCMulScalar emits a scalar-twiddle complex multiply: six FP slots
// (four multiplies, two adds), the VIRAM sequence without fused
// multiply-add. t1 and t2 are scratch registers.
func (m *Machine) emitCMulScalar(p *prog, vl, srcRe, srcIm, dstRe, dstIm, t1, t2 int) {
	p.fmul(vl, t1, srcRe)
	p.fmul(vl, t2, srcIm)
	p.fadd(vl, dstRe, t1, t2)
	p.fmul(vl, t1, srcRe)
	p.fmul(vl, t2, srcIm)
	p.fadd(vl, dstIm, t1, t2)
}

// emitWeightApply emits the per-bin weight stage for one main-channel
// strip: out[bin] = main[bin] - sum_a w[a][bin]*aux_a[bin], with the
// weights scalar per bin and the band dimension vectorized.
func (m *Machine) emitWeightApply(p *prog, spec cslc.Spec, vl, workRe, workIm int) {
	for k := 0; k < spec.FFTSize; k++ {
		p.load(vl, workRe+k*vl, 0) // main re
		p.load(vl, workIm+k*vl, 1) // main im
		for a := 0; a < spec.AuxChannels; a++ {
			p.load(vl, workRe+(spec.FFTSize+k)*vl, 2)
			p.load(vl, workIm+(spec.FFTSize+k)*vl, 3)
			// acc -= w * aux: a scalar-weight complex multiply and a
			// complex subtract (subtracts cost add slots).
			m.emitCMulScalar(p, vl, 2, 3, 4, 5, 30, 31)
			p.fadd(vl, 0, 0, 4)
			p.fadd(vl, 1, 1, 5)
		}
		p.store(vl, workRe+k*vl, 0)
		p.store(vl, workIm+k*vl, 1)
		p.scalar(2)
	}
}
