// Package viram models the Berkeley VIRAM processor-in-memory chip: a
// vector unit fused with on-chip DRAM. The model captures the properties
// the paper's analysis turns on:
//
//   - a 256-bit datapath to DRAM: 8 sequential 32-bit words per cycle,
//     but only 4 address generators, so strided and indexed accesses run
//     at half rate (Section 4.2: "24% are due to a limitation in strided
//     load performance imposed by the number of address generators");
//   - two vector arithmetic units of which only ALU0 executes vector
//     floating point (Section 4.3: "performance on the FFT is reduced by
//     a factor of 1.52");
//   - banked on-chip DRAM with visible precharge on strided streams and
//     a TLB (Section 4.2: "21% of the total cycles are overhead due to
//     DRAM pre-charge cycles ... and TLB misses");
//   - vector startup and chaining latency (Section 4.4: "waiting for the
//     results from previous vector operations").
//
// Execution is an in-order, one-instruction-per-cycle issue scoreboard
// with chaining: a dependent vector instruction may begin once the
// producer's first elements emerge (producer start + startup latency).
// Kernel implementations generate real vector instruction streams whose
// counts derive from the same loop structures as the functional kernels.
package viram

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/dram"
	"sigkern/internal/sim"
)

// Op is a vector (or scalar bookkeeping) operation.
type Op int

// The VIRAM vector ISA subset used by the kernels.
const (
	// VLoad is a unit-stride vector load.
	VLoad Op = iota
	// VLoadStride is a strided vector load (address-generator limited).
	VLoadStride
	// VStore is a unit-stride vector store.
	VStore
	// VStoreStride is a strided vector store.
	VStoreStride
	// VAddF and VMulF are vector single-precision FP add/multiply
	// (ALU0 only).
	VAddF
	VMulF
	// VFMA is a fused multiply-add (ALU0 only, counts two flops).
	VFMA
	// VAddI and VShift are vector integer ops (either ALU).
	VAddI
	VShift
	// VPerm is an element shuffle (ALU0 only in this implementation, as
	// in the chip: "some operations are allowed to execute on ALU0 only").
	VPerm
	// Scalar is scalar-core bookkeeping (loop control, address setup)
	// with an explicit cycle cost.
	Scalar
)

// Inst is one instruction of a kernel's vector program.
type Inst struct {
	Op Op
	// VL is the vector length in 32-bit elements.
	VL int
	// Base and Stride give word addresses for memory operations.
	Base, Stride int
	// Dst, Src1, Src2 are vector register numbers; -1 means none (or a
	// scalar operand).
	Dst, Src1, Src2 int
	// Cost is the cycle cost of a Scalar op.
	Cost int
}

// Config parameterizes the machine model.
type Config struct {
	Name     string
	ClockMHz float64
	// Lanes is the 32-bit element throughput per cycle of an integer
	// vector unit (8: the 256-bit datapath).
	Lanes int
	// FPLanes is the per-cycle FP element throughput of ALU0, the only
	// unit that executes vector FP (8 lanes; the asymmetry costs the FFT
	// a factor of ~1.5 versus a hypothetical dual-FP-unit chip).
	FPLanes int
	// MVL is the maximum vector length in 32-bit elements (the 8 KB
	// register file holds 32 registers of 64 elements).
	MVL int
	// VRegs is the architectural vector register count.
	VRegs int
	// StartupALU and StartupMem are the pipeline-fill latencies before a
	// dependent instruction can chain.
	StartupALU, StartupMem int
	// IssueQueue is the depth of the vector instruction queue between the
	// scalar core and the vector unit: dispatch runs ahead of execution
	// by at most this many instructions, which is what lets memory and
	// arithmetic instructions overlap despite in-order dispatch.
	IssueQueue int
	// PadWords is the row padding applied to the corner-turn matrix to
	// avoid DRAM bank conflicts (the paper: "strided load operations
	// with padding added to the matrix rows").
	PadWords int
	// TLBEntries, TLBPageBytes and TLBMissPenalty model the address
	// translation overhead visible on large strided walks.
	TLBEntries, TLBPageBytes int
	TLBMissPenalty           uint64
	// DRAM is the on-chip DRAM configuration.
	DRAM dram.Config
}

// DefaultConfig returns the model of the chip described in the paper.
func DefaultConfig() Config {
	return Config{
		Name:       "VIRAM",
		ClockMHz:   200,
		Lanes:      8,
		FPLanes:    8,
		MVL:        64,
		VRegs:      32,
		StartupALU: 8,
		StartupMem: 10,
		IssueQueue: 8,
		PadWords:   8,
		TLBEntries: 48, TLBPageBytes: 64 << 10, TLBMissPenalty: 2,
		DRAM: dram.VIRAMDRAM(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Lanes <= 0 || c.FPLanes <= 0 || c.FPLanes > c.Lanes:
		return fmt.Errorf("viram: lanes %d / FP lanes %d", c.Lanes, c.FPLanes)
	case c.MVL <= 0 || c.VRegs <= 0:
		return fmt.Errorf("viram: MVL %d / VRegs %d", c.MVL, c.VRegs)
	case c.StartupALU < 0 || c.StartupMem < 0:
		return fmt.Errorf("viram: negative startup")
	case c.IssueQueue <= 0:
		return fmt.Errorf("viram: IssueQueue %d", c.IssueQueue)
	case c.TLBEntries <= 0 || c.TLBPageBytes <= 0:
		return fmt.Errorf("viram: TLB %d entries / %d-byte pages", c.TLBEntries, c.TLBPageBytes)
	}
	return c.DRAM.Validate()
}

// TraceEntry records one instruction's scheduling outcome when a tracer
// is attached: dispatch and start cycles, executing unit, and duration.
type TraceEntry struct {
	Index    int
	Op       Op
	VL       int
	Unit     string
	Dispatch uint64
	Start    uint64
	Duration uint64
}

// Machine is one VIRAM instance. It is not safe for concurrent use.
type Machine struct {
	cfg    Config
	mem    *dram.Controller
	tlb    *tlb
	heap   int // bump allocator for kernel address spaces (words)
	tracer func(TraceEntry)

	// Program-construction scratch, reused across kernel runs. A Machine
	// is single-threaded by contract, so reuse needs no locking; the
	// buffers keep their capacity between runs so steady-state program
	// generation does not allocate per instruction or per butterfly.
	progBuf []Inst
	arena   instArena
	bundles []bundle
}

// SetTracer attaches a per-instruction trace callback (nil detaches).
// Tracing does not perturb timing.
func (m *Machine) SetTracer(fn func(TraceEntry)) { m.tracer = fn }

// unitNames maps scoreboard units to display names for traces.
var unitNames = [...]string{"VMU", "VALU0", "VALU1", "SCALAR"}

// OpName returns a mnemonic for an opcode.
func OpName(op Op) string {
	names := map[Op]string{
		VLoad: "vld", VLoadStride: "vlds", VStore: "vst", VStoreStride: "vsts",
		VAddF: "vaddf", VMulF: "vmulf", VFMA: "vfma", VAddI: "vaddi",
		VShift: "vsh", VPerm: "vperm", Scalar: "scalar",
	}
	if n, ok := names[op]; ok {
		return n
	}
	return fmt.Sprintf("op%d", int(op))
}

// New returns a machine for cfg, panicking on invalid configuration.
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Machine{
		cfg: cfg,
		mem: dram.NewController(cfg.DRAM),
		tlb: newTLB(cfg.TLBEntries, cfg.TLBPageBytes),
	}
}

// Name implements core.Machine.
func (m *Machine) Name() string { return m.cfg.Name }

// Params implements core.Machine with the paper's Table 2 row.
func (m *Machine) Params() core.Params {
	return core.Params{
		ClockMHz:    m.cfg.ClockMHz,
		ALUs:        16, // two vector units x eight 32-bit lanes
		PeakGFLOPS:  3.2,
		Description: "processor-in-memory vector chip, 13 MB on-chip DRAM",
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Reset implements core.Resettable: it rewinds all simulation state so
// the instance can be reused across jobs with bit-identical cycle
// counts. Every kernel entry point performs the same rewind, so this is
// a public contract over the existing mechanism, not a new one. The
// program-construction scratch (progBuf, arena, bundles) is
// intentionally untouched — it is overwritten from scratch by every
// kernel build and never feeds cycle accounting.
func (m *Machine) Reset() { m.reset() }

// reset rewinds simulation state between kernel runs.
func (m *Machine) reset() {
	m.mem.Reset()
	m.tlb.reset()
	m.heap = 0
}

// alloc reserves words of the on-chip DRAM address space (word address).
func (m *Machine) alloc(words int) int {
	base := m.heap
	m.heap += words
	// Round to a DRAM row so arrays do not share open-row state.
	row := m.cfg.DRAM.RowWords
	m.heap = (m.heap + row - 1) / row * row
	return base
}

// ExecResult is the timing outcome of one vector program.
type ExecResult struct {
	Cycles    uint64
	Breakdown sim.Breakdown
	Stats     sim.Stats
}

// exec runs the scoreboard over a vector program. The three functional
// units are the memory unit and the two arithmetic units; chaining lets
// a consumer start `startup` cycles after its producer.
func (m *Machine) exec(prog []Inst) ExecResult {
	const (
		unitMem = iota
		unitALU0
		unitALU1
		unitScalar
		numUnits
	)
	var (
		unitFree   [numUnits]uint64
		chainReady = make([]uint64, m.cfg.VRegs)
		dispatch   uint64
		end        uint64
		res        ExecResult
	)
	busy := make([]uint64, numUnits)
	// starts holds the execution-start cycles of the last IssueQueue
	// instructions: dispatch may run ahead of execution by at most the
	// queue depth.
	starts := make([]uint64, m.cfg.IssueQueue)

	for i := range prog {
		in := &prog[i]
		if in.VL > m.cfg.MVL {
			panic(fmt.Sprintf("viram: VL %d exceeds MVL %d", in.VL, m.cfg.MVL))
		}
		// Select the executing unit.
		var unit int
		var dur, startup uint64
		switch in.Op {
		case VLoad, VStore, VLoadStride, VStoreStride:
			unit = unitMem
			startup = uint64(m.cfg.StartupMem)
		case VAddF, VMulF, VFMA, VPerm:
			unit = unitALU0
			startup = uint64(m.cfg.StartupALU)
		case VAddI, VShift:
			// Integer ops run on whichever ALU frees first.
			unit = unitALU0
			if unitFree[unitALU1] < unitFree[unitALU0] {
				unit = unitALU1
			}
			startup = uint64(m.cfg.StartupALU)
		case Scalar:
			unit = unitScalar
			startup = 0
		default:
			panic(fmt.Sprintf("viram: unknown op %d", in.Op))
		}

		// Dispatch: program order, one instruction per cycle, bounded by
		// the queue depth (an instruction cannot dispatch until the one
		// IssueQueue slots ahead of it has started executing).
		if i > 0 {
			dispatch++
		}
		if i >= m.cfg.IssueQueue && starts[i%m.cfg.IssueQueue] > dispatch {
			res.Stats.Inc("stall_queue", starts[i%m.cfg.IssueQueue]-dispatch)
			dispatch = starts[i%m.cfg.IssueQueue]
		}
		// Execution start: unit availability and chaining.
		t := dispatch
		tUnit := t
		if unitFree[unit] > tUnit {
			tUnit = unitFree[unit]
		}
		res.Stats.Inc("stall_unit", tUnit-t)
		tDep := tUnit
		for _, src := range []int{in.Src1, in.Src2} {
			if src >= 0 && chainReady[src] > tDep {
				tDep = chainReady[src]
			}
		}
		res.Stats.Inc("stall_dep", tDep-tUnit)
		t = tDep
		starts[i%m.cfg.IssueQueue] = t

		// Duration.
		switch in.Op {
		case VLoad, VStore, VLoadStride, VStoreStride:
			m.checkAddressRange(in)
			m.mem.SyncTo(t)
			req := dram.Request{Base: in.Base, Stride: in.Stride, Count: in.VL,
				Write: in.Op == VStore || in.Op == VStoreStride}
			if req.Stride == 0 {
				req.Stride = 1
			}
			sr := m.mem.Stream(req)
			dur = sr.Cycles
			misses := m.tlb.touch(in.Base, req.Stride, in.VL)
			penalty := misses * m.cfg.TLBMissPenalty
			dur += penalty
			res.Stats.Inc("tlb_misses", misses)
			res.Stats.Inc("dram_row_misses", sr.RowMisses)
			res.Stats.Inc("dram_conflict_stalls", sr.ConflictStalls)
			res.Stats.Inc("mem_words", sr.Words)
			res.Breakdown.Add("memory", dur)
		case VAddF, VMulF, VPerm:
			dur = sim.CeilDiv(uint64(in.VL), uint64(m.cfg.FPLanes))
			res.Breakdown.Add("compute", dur)
			if in.Op != VPerm {
				res.Stats.Inc("flops", uint64(in.VL))
			}
		case VFMA:
			dur = sim.CeilDiv(uint64(in.VL), uint64(m.cfg.FPLanes))
			res.Breakdown.Add("compute", dur)
			res.Stats.Inc("flops", 2*uint64(in.VL))
		case VAddI, VShift:
			dur = sim.CeilDiv(uint64(in.VL), uint64(m.cfg.Lanes))
			res.Breakdown.Add("compute", dur)
			res.Stats.Inc("intops", uint64(in.VL))
		case Scalar:
			dur = uint64(in.Cost)
			res.Breakdown.Add("scalar", dur)
		}

		if m.tracer != nil {
			m.tracer(TraceEntry{
				Index: i, Op: in.Op, VL: in.VL, Unit: unitNames[unit],
				Dispatch: dispatch, Start: t, Duration: dur,
			})
		}
		unitFree[unit] = t + dur
		busy[unit] += dur
		if in.Dst >= 0 {
			if in.Dst >= m.cfg.VRegs {
				panic(fmt.Sprintf("viram: register v%d out of range", in.Dst))
			}
			chainReady[in.Dst] = t + startup
		}
		if done := t + startup + dur; done > end {
			end = done
		}
		res.Stats.Inc("instructions", 1)
	}
	res.Cycles = end
	res.Stats.Inc("mem_unit_busy", busy[unitMem])
	res.Stats.Inc("alu0_busy", busy[unitALU0])
	res.Stats.Inc("alu1_busy", busy[unitALU1])
	if slack := end - busy[unitMem]; end > busy[unitMem] {
		res.Breakdown.Add("startup+wait", slackOrZero(slack, res.Breakdown))
	}
	return res
}

// checkAddressRange panics when a kernel program touches memory outside
// what the machine allocated — the assertion that catches program-
// generator bugs before they become silent mis-timings. Programs run
// directly against a machine with no allocations (unit tests) skip it.
func (m *Machine) checkAddressRange(in *Inst) {
	if m.heap == 0 {
		return
	}
	if in.Base < 0 {
		panic(fmt.Sprintf("viram: negative address %d", in.Base))
	}
	stride := in.Stride
	if stride == 0 {
		stride = 1
	}
	last := in.Base + (in.VL-1)*stride
	hi := in.Base
	if last > hi {
		hi = last
	}
	if hi >= m.heap {
		panic(fmt.Sprintf("viram: access at word %d beyond allocated heap %d", hi, m.heap))
	}
}

// slackOrZero attributes the cycles not covered by any accounted busy
// category to startup/wait, clamping at zero.
func slackOrZero(slack uint64, b sim.Breakdown) uint64 {
	accounted := b.Get("compute") + b.Get("scalar")
	if accounted >= slack {
		return 0
	}
	return slack - accounted
}

// tlb is a small fully-associative LRU translation buffer.
type tlb struct {
	entries   int
	pageWords int
	pages     map[int]uint64
	tick      uint64
}

func newTLB(entries, pageBytes int) *tlb {
	return &tlb{entries: entries, pageWords: pageBytes / 4, pages: make(map[int]uint64)}
}

func (t *tlb) reset() {
	t.pages = make(map[int]uint64)
	t.tick = 0
}

// touch visits the pages of a strided access and returns the miss count.
func (t *tlb) touch(base, stride, count int) uint64 {
	var misses uint64
	last := -1
	for i := 0; i < count; i++ {
		page := (base + i*stride) / t.pageWords
		if page == last {
			continue
		}
		last = page
		t.tick++
		if _, ok := t.pages[page]; ok {
			t.pages[page] = t.tick
			continue
		}
		misses++
		if len(t.pages) >= t.entries {
			// Evict the least recently used page.
			var victim int
			var oldest uint64 = ^uint64(0)
			for p, when := range t.pages {
				if when < oldest {
					oldest = when
					victim = p
				}
			}
			delete(t.pages, victim)
		}
		t.pages[page] = t.tick
	}
	return misses
}
