// Package dram implements a banked DRAM timing model with open-row
// tracking, precharge/activate penalties, and address-generator-limited
// strided access, as needed to reproduce the memory behaviour described
// in the paper:
//
//   - VIRAM's on-chip DRAM: two wings of four banks, a 256-bit datapath
//     (8 sequential 32-bit words per cycle) but only four address
//     generators (4 strided/indexed words per cycle), with visible
//     precharge overhead on strided streams.
//   - Imagine's and Raw's off-chip memory: one word per cycle per
//     memory controller/port, with streaming controllers that reorder
//     accesses to avoid bank conflicts.
//
// The model is cycle-driven at word granularity: every word of a stream
// request is assigned a serve cycle subject to (a) the per-cycle issue
// width, and (b) per-bank availability (a bank that must precharge and
// activate a new row is busy for TRP+TRCD cycles).
package dram

import (
	"errors"
	"fmt"

	"sigkern/internal/sim"
)

// Config describes one DRAM array and its controller.
type Config struct {
	// Name labels the array in stats ("viram-dram", "raw-port3", ...).
	Name string
	// Banks is the total number of independent banks (wings x banks/wing).
	Banks int
	// RowWords is the number of 32-bit words in one row of one bank.
	RowWords int
	// TRP is the precharge time in processor cycles.
	TRP int
	// TRCD is the row activate (RAS-to-CAS) time in processor cycles.
	TRCD int
	// CAS is the column access latency in processor cycles; it determines
	// the unhidden latency of the first word of a stream.
	CAS int
	// SeqWordsPerCycle is the peak sequential (unit-stride) words
	// transferred per cycle.
	SeqWordsPerCycle int
	// AddrGens is the number of address generators: the maximum strided
	// or indexed words issued per cycle.
	AddrGens int
	// InterleaveWords is the bank-interleave granularity in words; 0
	// means row-granular interleaving (banks switch every RowWords).
	// VIRAM interleaves at the 256-bit access granularity (8 words) so
	// strided streams rotate across all banks.
	InterleaveWords int
	// Reorder models a streaming memory controller (Imagine) that
	// reorders pending accesses to avoid bank conflicts: when set,
	// strided streams behave like sequential ones at AddrGens words per
	// cycle and row activates overlap.
	Reorder bool
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Banks <= 0:
		return errors.New("dram: Banks must be positive")
	case c.RowWords <= 0:
		return errors.New("dram: RowWords must be positive")
	case c.SeqWordsPerCycle <= 0:
		return errors.New("dram: SeqWordsPerCycle must be positive")
	case c.AddrGens <= 0:
		return errors.New("dram: AddrGens must be positive")
	case c.TRP < 0 || c.TRCD < 0 || c.CAS < 0:
		return errors.New("dram: negative timing parameter")
	}
	return nil
}

// VIRAMDRAM returns the on-chip DRAM of the VIRAM chip: 2 wings x 4
// banks, 256-bit datapath (8 words/cycle sequential), 4 address
// generators. On-chip timing is short in 200 MHz processor cycles.
func VIRAMDRAM() Config {
	return Config{
		Name:             "viram-dram",
		Banks:            8,
		RowWords:         512, // 2 KB rows
		TRP:              1,
		TRCD:             1,
		CAS:              4,
		SeqWordsPerCycle: 8,
		AddrGens:         4,
		InterleaveWords:  8,
	}
}

// ImagineChannel returns one of Imagine's two off-chip memory channels:
// one word per cycle, with a reordering stream controller.
func ImagineChannel(i int) Config {
	return Config{
		Name:             fmt.Sprintf("imagine-mc%d", i),
		Banks:            4,
		RowWords:         512,
		TRP:              6,
		TRCD:             6,
		CAS:              12,
		SeqWordsPerCycle: 1,
		AddrGens:         1,
		Reorder:          true,
	}
}

// RawPort returns one of Raw's peripheral DRAM ports: one word per cycle
// streaming.
func RawPort(i int) Config {
	return Config{
		Name:             fmt.Sprintf("raw-port%d", i),
		Banks:            4,
		RowWords:         512,
		TRP:              6,
		TRCD:             6,
		CAS:              12,
		SeqWordsPerCycle: 1,
		AddrGens:         1,
		Reorder:          true,
	}
}

// PPCDRAM returns the main-memory array behind the PowerPC G4's caches.
// Timing is in 1 GHz processor cycles, so latencies are long.
func PPCDRAM() Config {
	return Config{
		Name:             "ppc-dram",
		Banks:            4,
		RowWords:         512,
		TRP:              30,
		TRCD:             30,
		CAS:              80,
		SeqWordsPerCycle: 1,
		AddrGens:         1,
	}
}

// Request describes one stream access: Count words starting at word
// address Base with the given word stride. If Indices is non-nil the
// request is an indexed (gather/scatter) access and Base/Stride are
// ignored.
type Request struct {
	Base    int
	Stride  int
	Count   int
	Write   bool
	Indices []int
}

// StreamResult reports the timing of one stream request.
type StreamResult struct {
	// Cycles is the number of cycles from first issue to last word served.
	Cycles uint64
	// StartLatency is the unhidden latency before the first word arrives
	// (CAS + activate); callers decide whether their machine hides it.
	StartLatency uint64
	// RowMisses counts accesses that required precharge + activate.
	RowMisses uint64
	// ConflictStalls counts cycles lost waiting for busy banks beyond the
	// issue-width limit.
	ConflictStalls uint64
	// Words is the number of words transferred.
	Words uint64
}

// Controller simulates one DRAM array. It is not safe for concurrent use.
type Controller struct {
	cfg      Config
	openRow  []int    // open row per bank, -1 = closed
	bankFree []uint64 // cycle at which each bank can accept a new activate
	clock    sim.Clock
	stats    sim.Stats
}

// NewController returns a controller for cfg. It panics if cfg is invalid,
// since configurations are compile-time constants in this repository.
func NewController(cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{cfg: cfg}
	c.Reset()
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reset closes all rows and rewinds the clock.
func (c *Controller) Reset() {
	c.openRow = make([]int, c.cfg.Banks)
	c.bankFree = make([]uint64, c.cfg.Banks)
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	c.clock.Reset()
	c.stats = sim.Stats{}
}

// Stats returns accumulated event counters.
func (c *Controller) Stats() sim.Stats { return c.stats }

// Now returns the controller's current cycle.
func (c *Controller) Now() uint64 { return c.clock.Now() }

// SyncTo advances the controller clock to machine time t (never
// backward). Machine models call it before issuing a stream whose start
// is determined by the pipeline rather than by the previous DRAM access.
func (c *Controller) SyncTo(t uint64) { c.clock.AdvanceTo(t) }

// bankAndRow decodes a word address into (bank, row). Banks are
// interleaved every InterleaveWords words (RowWords when unset); a "row"
// is the stripe of RowWords*Banks contiguous words whose per-bank slices
// occupy one DRAM row each.
func (c *Controller) bankAndRow(addr int) (bank, row int) {
	if addr < 0 {
		addr = -addr
	}
	il := c.cfg.InterleaveWords
	if il == 0 {
		il = c.cfg.RowWords
	}
	bank = (addr / il) % c.cfg.Banks
	row = addr / (c.cfg.RowWords * c.cfg.Banks)
	return bank, row
}

// issueWidth returns how many words of this request may issue per cycle.
func (c *Controller) issueWidth(strided bool) int {
	if strided && !c.cfg.Reorder {
		if c.cfg.AddrGens < c.cfg.SeqWordsPerCycle {
			return c.cfg.AddrGens
		}
	}
	return c.cfg.SeqWordsPerCycle
}

// rowCycle is the bank occupancy of one precharge + activate sequence.
func (c *Controller) rowCycle() uint64 {
	return uint64(c.cfg.TRP + c.cfg.TRCD)
}

// queueDepth is the number of outstanding word accesses the controller
// tracks; when completions fall this far behind, issue stalls
// (backpressure). Sixteen matches a modest access queue.
const queueDepth = 16

// Stream executes one stream request and advances the controller clock to
// the completion cycle. The returned result covers only this request.
//
// The model separates issue throughput from completion latency: addresses
// issue at the width permitted by the address generators (or the full
// datapath for unit strides); a word that opens a new DRAM row completes
// TRP+TRCD later and occupies its bank for that long, so accesses that
// revisit a busy bank are pushed out and, through the bounded request
// queue, eventually stall issue. A reordering stream controller (Imagine,
// Raw ports) hides activate latency entirely by scheduling around it.
func (c *Controller) Stream(req Request) StreamResult {
	n := req.Count
	if req.Indices != nil {
		n = len(req.Indices)
	}
	if n == 0 {
		return StreamResult{}
	}
	if req.Indices == nil && req.Stride == 0 {
		panic("dram: zero stride with no indices")
	}

	strided := req.Indices != nil || req.Stride != 1
	width := c.issueWidth(strided)
	start := c.clock.Now()
	issue := start
	var res StreamResult
	res.Words = uint64(n)
	res.StartLatency = uint64(c.cfg.CAS + c.cfg.TRCD)

	var ring [queueDepth]uint64
	inSlot := 0
	finish := start
	for i := 0; i < n; i++ {
		addr := req.Base + i*req.Stride
		if req.Indices != nil {
			addr = req.Indices[i]
		}
		bank, row := c.bankAndRow(addr)

		// Backpressure: the queue holds at most queueDepth outstanding
		// accesses.
		if i >= queueDepth && ring[i%queueDepth] > issue {
			res.ConflictStalls += ring[i%queueDepth] - issue
			issue = ring[i%queueDepth]
		}

		serve := issue
		if c.openRow[bank] != row {
			res.RowMisses++
			c.stats.Inc("row_misses", 1)
			if c.cfg.Reorder {
				// The streaming controller schedules around activates;
				// the bank is refreshed in the background.
				c.bankFree[bank] = serve + c.rowCycle()
			} else {
				rowStart := serve
				if c.bankFree[bank] > rowStart {
					res.ConflictStalls += c.bankFree[bank] - rowStart
					rowStart = c.bankFree[bank]
				}
				serve = rowStart + c.rowCycle()
				c.bankFree[bank] = serve
			}
			c.openRow[bank] = row
		}

		ring[i%queueDepth] = serve
		if serve > finish {
			finish = serve
		}
		// Advance the issue slot: width words per cycle.
		inSlot++
		if inSlot == width {
			inSlot = 0
			issue++
		}
		if req.Write {
			c.stats.Inc("words_written", 1)
		} else {
			c.stats.Inc("words_read", 1)
		}
	}
	end := finish + 1
	res.Cycles = end - start
	c.clock.AdvanceTo(end)
	c.stats.Inc("stream_requests", 1)
	c.stats.Inc("busy_cycles", res.Cycles)
	return res
}

// LineFetch models a cache-line fill of lineWords words at word address
// addr: the full row activate + CAS latency plus the burst transfer. It
// returns the total latency in cycles. Used by the PPC and Raw cache
// models, where each miss is an isolated access rather than a stream.
func (c *Controller) LineFetch(addr, lineWords int) uint64 {
	bank, row := c.bankAndRow(addr)
	lat := uint64(c.cfg.CAS)
	if c.openRow[bank] != row {
		lat += uint64(c.cfg.TRP + c.cfg.TRCD)
		c.openRow[bank] = row
		c.stats.Inc("row_misses", 1)
	}
	lat += sim.CeilDiv(uint64(lineWords), uint64(c.cfg.SeqWordsPerCycle))
	c.stats.Inc("line_fetches", 1)
	c.stats.Inc("words_read", uint64(lineWords))
	return lat
}

// PeakSeqBandwidth returns the theoretical minimum cycles to move n words
// at full sequential bandwidth — the Section 2.5 performance-model number.
func (c *Controller) PeakSeqBandwidth(n uint64) uint64 {
	return sim.CeilDiv(n, uint64(c.cfg.SeqWordsPerCycle))
}

// PeakStridedBandwidth returns the theoretical minimum cycles to move n
// strided words given the address-generator limit.
func (c *Controller) PeakStridedBandwidth(n uint64) uint64 {
	return sim.CeilDiv(n, uint64(c.issueWidth(true)))
}
