package dram

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := VIRAMDRAM()
	if err := good.Validate(); err != nil {
		t.Fatalf("VIRAMDRAM invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Banks = 0 },
		func(c *Config) { c.RowWords = 0 },
		func(c *Config) { c.SeqWordsPerCycle = 0 },
		func(c *Config) { c.AddrGens = 0 },
		func(c *Config) { c.TRP = -1 },
	}
	for i, mutate := range cases {
		c := VIRAMDRAM()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed validation", i)
		}
	}
}

func TestNewControllerPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewController with invalid config did not panic")
		}
	}()
	NewController(Config{})
}

func TestSequentialStreamNearPeak(t *testing.T) {
	c := NewController(VIRAMDRAM())
	const n = 1 << 16 // 64K words
	res := c.Stream(Request{Base: 0, Stride: 1, Count: n})
	peak := c.PeakSeqBandwidth(n)
	if res.Cycles < peak {
		t.Fatalf("sequential stream beat peak bandwidth: %d < %d", res.Cycles, peak)
	}
	// Row activates on a long unit-stride stream must be almost entirely
	// hidden: within 5% of peak.
	if float64(res.Cycles) > 1.05*float64(peak) {
		t.Fatalf("sequential stream too slow: %d cycles vs peak %d", res.Cycles, peak)
	}
}

func TestStridedStreamLimitedByAddressGenerators(t *testing.T) {
	c := NewController(VIRAMDRAM())
	const n = 1 << 14
	// Large stride: every access a new row, as in a column walk.
	res := c.Stream(Request{Base: 0, Stride: 1025, Count: n})
	seqPeak := c.PeakSeqBandwidth(n)         // 8 words/cycle
	stridedPeak := c.PeakStridedBandwidth(n) // 4 words/cycle
	if res.Cycles < stridedPeak {
		t.Fatalf("strided stream beat address-generator limit: %d < %d", res.Cycles, stridedPeak)
	}
	if res.Cycles <= seqPeak {
		t.Fatalf("strided stream as fast as sequential: %d <= %d", res.Cycles, seqPeak)
	}
}

func TestStridedSlowerThanSequentialSameWords(t *testing.T) {
	cSeq := NewController(VIRAMDRAM())
	cStr := NewController(VIRAMDRAM())
	const n = 8192
	seq := cSeq.Stream(Request{Stride: 1, Count: n})
	str := cStr.Stream(Request{Stride: 513, Count: n})
	if str.Cycles <= seq.Cycles {
		t.Fatalf("strided (%d) not slower than sequential (%d)", str.Cycles, seq.Cycles)
	}
}

func TestRowMissesCounted(t *testing.T) {
	c := NewController(VIRAMDRAM())
	cfg := c.Config()
	// Walk one word per row within a single bank: stride = RowWords*Banks.
	res := c.Stream(Request{Stride: cfg.RowWords * cfg.Banks, Count: 64})
	if res.RowMisses != 64 {
		t.Fatalf("RowMisses = %d, want 64 (every access a new row in the same bank)", res.RowMisses)
	}
	if res.ConflictStalls == 0 {
		t.Fatal("expected conflict stalls when hammering a single bank")
	}
}

func TestReorderControllerHidesStridedPenalty(t *testing.T) {
	plain := ImagineChannel(0)
	plain.Reorder = false
	cr := NewController(ImagineChannel(0))
	cp := NewController(plain)
	const n = 8192
	rr := cr.Stream(Request{Stride: 1025, Count: n})
	rp := cp.Stream(Request{Stride: 1025, Count: n})
	if rr.Cycles > rp.Cycles {
		t.Fatalf("reordering controller slower than plain: %d > %d", rr.Cycles, rp.Cycles)
	}
	peak := cr.PeakSeqBandwidth(n)
	if float64(rr.Cycles) > 1.05*float64(peak) {
		t.Fatalf("reordering controller did not reach streaming bandwidth: %d vs peak %d", rr.Cycles, peak)
	}
}

func TestIndexedGather(t *testing.T) {
	c := NewController(VIRAMDRAM())
	idx := make([]int, 1024)
	for i := range idx {
		idx[i] = (i * 7919) % (1 << 20)
	}
	res := c.Stream(Request{Indices: idx})
	if res.Words != 1024 {
		t.Fatalf("Words = %d, want 1024", res.Words)
	}
	if res.Cycles < c.PeakStridedBandwidth(1024) {
		t.Fatal("gather beat the address-generator limit")
	}
}

func TestEmptyStream(t *testing.T) {
	c := NewController(VIRAMDRAM())
	res := c.Stream(Request{Stride: 1, Count: 0})
	if res.Cycles != 0 || res.Words != 0 {
		t.Fatalf("empty stream: %+v", res)
	}
}

func TestZeroStrideWithoutIndicesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero stride did not panic")
		}
	}()
	NewController(VIRAMDRAM()).Stream(Request{Stride: 0, Count: 4})
}

func TestClockAdvancesAcrossStreams(t *testing.T) {
	c := NewController(VIRAMDRAM())
	r1 := c.Stream(Request{Stride: 1, Count: 1024})
	t1 := c.Now()
	if t1 != r1.Cycles {
		t.Fatalf("clock %d != first stream cycles %d", t1, r1.Cycles)
	}
	r2 := c.Stream(Request{Stride: 1, Count: 1024})
	if c.Now() != t1+r2.Cycles {
		t.Fatalf("clock %d != %d + %d", c.Now(), t1, r2.Cycles)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	c := NewController(VIRAMDRAM())
	c.Stream(Request{Stride: 513, Count: 4096})
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("clock after reset = %d", c.Now())
	}
	if got := c.Stats().Get("words_read"); got != 0 {
		t.Fatalf("stats after reset: words_read = %d", got)
	}
}

func TestLineFetchLatency(t *testing.T) {
	c := NewController(PPCDRAM())
	cfg := c.Config()
	lat1 := c.LineFetch(0, 8)
	// First access: closed row -> precharge+activate+CAS+burst.
	want := uint64(cfg.TRP + cfg.TRCD + cfg.CAS + 8/cfg.SeqWordsPerCycle)
	if lat1 != want {
		t.Fatalf("cold LineFetch = %d, want %d", lat1, want)
	}
	// Second access to the same row: open-row hit, no activate.
	lat2 := c.LineFetch(8, 8)
	if lat2 >= lat1 {
		t.Fatalf("open-row LineFetch %d not faster than cold %d", lat2, lat1)
	}
}

func TestPeakBandwidthHelpers(t *testing.T) {
	c := NewController(VIRAMDRAM())
	if got := c.PeakSeqBandwidth(1 << 20); got != 1<<20/8 {
		t.Fatalf("PeakSeqBandwidth = %d", got)
	}
	if got := c.PeakStridedBandwidth(1 << 20); got != 1<<20/4 {
		t.Fatalf("PeakStridedBandwidth = %d", got)
	}
}

// Property: for any positive count and stride, cycles are at least the
// issue-width bound and words always equal the request count.
func TestStreamLowerBoundProperty(t *testing.T) {
	c := NewController(VIRAMDRAM())
	f := func(count uint16, stride uint16) bool {
		n := int(count)%4096 + 1
		s := int(stride)%2048 + 1
		c.Reset()
		res := c.Stream(Request{Stride: s, Count: n})
		if res.Words != uint64(n) {
			return false
		}
		var lower uint64
		if s == 1 {
			lower = c.PeakSeqBandwidth(uint64(n))
		} else {
			lower = c.PeakStridedBandwidth(uint64(n))
		}
		return res.Cycles >= lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: doubling the word count never reduces total cycles.
func TestStreamMonotoneInCount(t *testing.T) {
	f := func(count uint16, stride uint8) bool {
		n := int(count)%2048 + 1
		s := int(stride)%512 + 1
		c1 := NewController(VIRAMDRAM())
		c2 := NewController(VIRAMDRAM())
		r1 := c1.Stream(Request{Stride: s, Count: n})
		r2 := c2.Stream(Request{Stride: s, Count: 2 * n})
		return r2.Cycles >= r1.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSequentialStream1M(b *testing.B) {
	c := NewController(VIRAMDRAM())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.Stream(Request{Stride: 1, Count: 1 << 20})
	}
}

func BenchmarkStridedStream1M(b *testing.B) {
	c := NewController(VIRAMDRAM())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.Stream(Request{Stride: 1025, Count: 1 << 20})
	}
}
