package faults

import (
	"testing"
	"time"
)

// fireSeq records which of n Fire calls at point trigger.
func fireSeq(r *Registry, point string, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Fire(point) != nil
	}
	return out
}

func TestNilRegistryNeverFires(t *testing.T) {
	var r *Registry
	if inj := r.Fire("pool.execute"); inj != nil {
		t.Fatalf("nil registry fired: %+v", inj)
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil snapshot: %v", got)
	}
	if calls, fired := r.Counter("x", Transient); calls != 0 || fired != 0 {
		t.Fatalf("nil counter: %d %d", calls, fired)
	}
	var inj *Injection
	inj.Sleep(nil) // must not panic
}

func TestDeterministicFiringSequence(t *testing.T) {
	arm := func() *Registry {
		r := New(42)
		if err := r.Arm(Fault{Point: "p", Kind: Transient, Probability: 0.3}); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := fireSeq(arm(), "p", 200)
	b := fireSeq(arm(), "p", 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at call %d", i)
		}
	}
	// A different seed gives a different sequence (with overwhelming
	// probability over 200 draws at p=0.3).
	r2 := New(43)
	if err := r2.Arm(Fault{Point: "p", Kind: Transient, Probability: 0.3}); err != nil {
		t.Fatal(err)
	}
	c := fireSeq(r2, "p", 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical firing sequences")
	}
}

func TestProbabilityExtremes(t *testing.T) {
	r := New(7)
	if err := r.Arm(Fault{Point: "always", Kind: Transient, Probability: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Arm(Fault{Point: "never", Kind: Transient, Probability: 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if inj := r.Fire("always"); inj == nil || inj.Err == nil {
			t.Fatalf("call %d: p=1 did not fire an error", i)
		}
		if inj := r.Fire("never"); inj != nil {
			t.Fatalf("call %d: p=0 fired", i)
		}
	}
	if _, fired := r.Counter("always", Transient); fired != 50 {
		t.Fatalf("fired = %d, want 50", fired)
	}
}

func TestFiringLimit(t *testing.T) {
	r := New(1)
	if err := r.Arm(Fault{Point: "p", Kind: Transient, Probability: 1, Limit: 3}); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 10; i++ {
		if r.Fire("p") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want limit 3", fired)
	}
}

func TestTransientErrorClassification(t *testing.T) {
	r := New(1)
	if err := r.Arm(Fault{Point: "p", Kind: Transient, Probability: 1}); err != nil {
		t.Fatal(err)
	}
	inj := r.Fire("p")
	if inj == nil || inj.Err == nil {
		t.Fatal("no injected error")
	}
	var tr interface{ Transient() bool }
	if ok := errorsAs(inj.Err, &tr); !ok || !tr.Transient() {
		t.Fatalf("injected error %v not classified transient", inj.Err)
	}
}

// errorsAs is a local, interface-targeted errors.As to keep the test
// independent of the resilience package.
func errorsAs(err error, target *interface{ Transient() bool }) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok {
			*target = t
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestLatencyAndPanicAndCorrupt(t *testing.T) {
	r := New(9)
	if err := r.Arm(Fault{Point: "p", Kind: Latency, Probability: 1, Delay: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := r.Arm(Fault{Point: "p", Kind: Panic, Probability: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Arm(Fault{Point: "q", Kind: Corrupt, Probability: 1}); err != nil {
		t.Fatal(err)
	}
	inj := r.Fire("p")
	if inj == nil || inj.Delay != 5*time.Millisecond || !inj.Panicked {
		t.Fatalf("combined injection: %+v", inj)
	}
	start := time.Now()
	inj.Sleep(nil)
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("Sleep returned too early")
	}
	// Sleep aborts promptly on done.
	done := make(chan struct{})
	close(done)
	long := &Injection{Delay: time.Minute}
	start = time.Now()
	long.Sleep(done)
	if time.Since(start) > time.Second {
		t.Fatal("Sleep ignored done")
	}
	if q := r.Fire("q"); q == nil || !q.Corrupted {
		t.Fatalf("corrupt injection: %+v", q)
	}
}

func TestArmValidation(t *testing.T) {
	r := New(1)
	for _, bad := range []Fault{
		{Point: "", Kind: Transient, Probability: 0.5},
		{Point: "p", Kind: "meltdown", Probability: 0.5},
		{Point: "p", Kind: Transient, Probability: -0.1},
		{Point: "p", Kind: Transient, Probability: 1.1},
	} {
		if err := r.Arm(bad); err == nil {
			t.Errorf("Arm(%+v) accepted", bad)
		}
	}
}

func TestParseSpec(t *testing.T) {
	r, err := ParseSpec("pool.execute:transient:0.2:200,pool.execute:latency:0.1:2ms,memo.get:corrupt:1", 42)
	if err != nil {
		t.Fatal(err)
	}
	armed := r.Armed()
	if len(armed) != 3 {
		t.Fatalf("armed %d faults, want 3: %+v", len(armed), armed)
	}
	byKey := map[string]Fault{}
	for _, f := range armed {
		byKey[f.Point+"/"+string(f.Kind)] = f
	}
	if f := byKey["pool.execute/transient"]; f.Probability != 0.2 || f.Limit != 200 {
		t.Fatalf("transient entry: %+v", f)
	}
	if f := byKey["pool.execute/latency"]; f.Delay != 2*time.Millisecond {
		t.Fatalf("latency entry: %+v", f)
	}
	if f := byKey["memo.get/corrupt"]; f.Probability != 1 {
		t.Fatalf("corrupt entry: %+v", f)
	}

	if r, err := ParseSpec("", 1); err != nil || r != nil {
		t.Fatalf("empty spec: %v %v", r, err)
	}
	for _, bad := range []string{"p", "p:transient", "p:transient:nope", "p:transient:0.5:what", "p:nuke:0.5"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSnapshotCounts(t *testing.T) {
	r := New(3)
	if err := r.Arm(Fault{Point: "p", Kind: Transient, Probability: 1, Limit: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Fire("p")
	}
	snap := r.Snapshot()
	if snap["p/transient"] != 2 {
		t.Fatalf("snapshot: %v", snap)
	}
}
