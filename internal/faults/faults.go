// Package faults is a deterministic, seedable fault-injection registry
// for chaos testing the simulation service. Code under test declares
// named fault points ("pool.execute", "memo.get", "machines.factory")
// and calls Fire at each; the registry decides — from a seeded PRNG
// stream per armed fault, so runs are reproducible — whether to inject
// a transient error, a latency spike, a panic, or a memo corruption.
//
// A nil *Registry is valid and injects nothing, so production paths pay
// one nil check when chaos is off. The process-wide Default registry is
// armed from the SIGKERN_FAULTS / SIGKERN_FAULTS_SEED environment
// variables (see ParseSpec), which is how `make chaos` runs the whole
// test suite under a fixed fault seed.
package faults

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sigkern/internal/sim"
)

// Kind names a class of injected fault.
type Kind string

// The fault kinds. Transient yields an error that the resilience layer
// classifies as retryable; Latency sleeps; Panic panics in the caller;
// Corrupt asks the caller to corrupt the value it was about to return
// (the memo read path uses it to serve a damaged result, which the
// service's determinism guard must catch).
const (
	Transient Kind = "transient"
	Latency   Kind = "latency"
	Panic     Kind = "panic"
	Corrupt   Kind = "corrupt"
)

// valid reports whether k is a known kind.
func (k Kind) valid() bool {
	switch k {
	case Transient, Latency, Panic, Corrupt:
		return true
	}
	return false
}

// Fault arms one failure mode at one point.
type Fault struct {
	// Point is the fault-point name the caller fires.
	Point string
	// Kind selects the failure mode.
	Kind Kind
	// Probability is the per-call firing chance in [0, 1].
	Probability float64
	// Limit caps the number of firings; 0 means unlimited. A capped
	// fault lets chaos runs bound their worst case (e.g. "at most 200
	// injected errors over the suite").
	Limit uint64
	// Delay is the injected latency for Latency faults; <= 0 means 1ms.
	Delay time.Duration
}

// validate checks the fault's fields.
func (f Fault) validate() error {
	if f.Point == "" {
		return fmt.Errorf("faults: fault with empty point")
	}
	if !f.Kind.valid() {
		return fmt.Errorf("faults: unknown kind %q at %q", f.Kind, f.Point)
	}
	if f.Probability < 0 || f.Probability > 1 {
		return fmt.Errorf("faults: probability %v at %q out of [0,1]", f.Probability, f.Point)
	}
	return nil
}

// armed is one registered fault plus its private PRNG stream and firing
// counters. Each armed fault draws from its own generator — seeded from
// the registry seed and the (point, kind) name — so one point's draw
// sequence does not depend on what else is armed or fired.
type armed struct {
	fault Fault
	rng   *sim.PRNG
	calls uint64
	fired uint64
}

// Registry holds armed faults and serves Fire calls. It is safe for
// concurrent use; a nil Registry never fires.
type Registry struct {
	mu     sync.Mutex
	seed   uint64
	points map[string][]*armed
}

// New returns an empty registry whose PRNG streams derive from seed.
func New(seed uint64) *Registry {
	return &Registry{seed: seed, points: make(map[string][]*armed)}
}

// Arm registers a fault. Multiple faults may share a point; every armed
// fault is evaluated on each Fire.
func (r *Registry) Arm(f Fault) error {
	if err := f.validate(); err != nil {
		return err
	}
	if f.Kind == Latency && f.Delay <= 0 {
		f.Delay = time.Millisecond
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points[f.Point] = append(r.points[f.Point], &armed{
		fault: f,
		rng:   sim.NewPRNG(r.seed ^ nameHash(f.Point+"/"+string(f.Kind))),
	})
	return nil
}

// nameHash is FNV-1a over s, used to give each armed fault an
// independent deterministic stream.
func nameHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Injection is the outcome of one Fire call: the set of faults that
// triggered. Delay accumulates across triggered latency faults; at most
// one of Err / Panicked / Corrupted is meaningful per fire (evaluated
// in that priority order by the caller).
type Injection struct {
	// Delay is injected latency the caller should sleep before acting.
	Delay time.Duration
	// Err is a transient error to return in place of the real work.
	Err error
	// Panicked asks the caller to panic (exercising panic isolation).
	Panicked bool
	// Corrupted asks the caller to damage the value it returns.
	Corrupted bool
}

// injectedError is the transient error type produced by Transient
// faults. It implements the Transient() classification interface that
// internal/resilience recognizes, without either package importing the
// other.
type injectedError struct{ point string }

func (e *injectedError) Error() string {
	return fmt.Sprintf("faults: injected transient error at %q", e.point)
}

// Transient marks the error retryable for resilience.IsTransient.
func (e *injectedError) Transient() bool { return true }

// Fire evaluates every fault armed at point and reports what, if
// anything, triggered. It returns nil when nothing fired (including on
// a nil registry or unknown point), so hot paths stay cheap.
func (r *Registry) Fire(point string) *Injection {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.points[point]
	if len(list) == 0 {
		return nil
	}
	var inj *Injection
	for _, a := range list {
		a.calls++
		if a.fault.Limit > 0 && a.fired >= a.fault.Limit {
			continue
		}
		if a.rng.Float64() >= a.fault.Probability {
			continue
		}
		a.fired++
		if inj == nil {
			inj = &Injection{}
		}
		switch a.fault.Kind {
		case Latency:
			inj.Delay += a.fault.Delay
		case Transient:
			if inj.Err == nil {
				inj.Err = &injectedError{point: point}
			}
		case Panic:
			inj.Panicked = true
		case Corrupt:
			inj.Corrupted = true
		}
	}
	return inj
}

// Sleep blocks for the injection's delay (if any), returning early when
// done is closed/cancelled. It is nil-safe.
func (i *Injection) Sleep(done <-chan struct{}) {
	if i == nil || i.Delay <= 0 {
		return
	}
	t := time.NewTimer(i.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

// Counter reports (calls, fired) for the fault armed at (point, kind);
// zero for unknown pairs or a nil registry.
func (r *Registry) Counter(point string, kind Kind) (calls, fired uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.points[point] {
		if a.fault.Kind == kind {
			calls += a.calls
			fired += a.fired
		}
	}
	return calls, fired
}

// Snapshot returns "point/kind" -> fired counts for every armed fault,
// in sorted key order — the shape /healthz and tests want.
func (r *Registry) Snapshot() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64)
	for point, list := range r.points {
		for _, a := range list {
			out[point+"/"+string(a.fault.Kind)] += a.fired
		}
	}
	return out
}

// Armed returns the registered faults in (point, kind) order.
func (r *Registry) Armed() []Fault {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Fault
	for _, list := range r.points {
		for _, a := range list {
			out = append(out, a.fault)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Point != out[j].Point {
			return out[i].Point < out[j].Point
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// ParseSpec parses a comma-separated fault list into a registry:
//
//	point:kind:probability[:param[:param]]
//
// where kind is transient|latency|panic|corrupt, probability is in
// [0,1], and each optional param is either a duration (the latency
// delay, e.g. "2ms") or an integer (the firing limit). Example:
//
//	pool.execute:transient:0.2:200,pool.execute:latency:0.1:2ms
//
// An empty spec returns a nil registry (chaos off).
func ParseSpec(spec string, seed uint64) (*Registry, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	r := New(seed)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		fields := strings.Split(entry, ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("faults: entry %q: want point:kind:probability", entry)
		}
		prob, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("faults: entry %q: bad probability: %w", entry, err)
		}
		f := Fault{Point: fields[0], Kind: Kind(fields[1]), Probability: prob}
		for _, param := range fields[3:] {
			if d, derr := time.ParseDuration(param); derr == nil {
				f.Delay = d
			} else if n, nerr := strconv.ParseUint(param, 10, 64); nerr == nil {
				f.Limit = n
			} else {
				return nil, fmt.Errorf("faults: entry %q: param %q is neither duration nor count", entry, param)
			}
		}
		if err := r.Arm(f); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Environment variables arming the Default registry.
const (
	EnvSpec = "SIGKERN_FAULTS"
	EnvSeed = "SIGKERN_FAULTS_SEED"
)

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry armed from SIGKERN_FAULTS
// (ParseSpec grammar) with seed SIGKERN_FAULTS_SEED (default 1). It is
// nil — chaos off — when the spec variable is unset or empty; a
// malformed spec is reported once on stderr and treated as unset, so a
// typo in a chaos run cannot silently disable a production binary.
func Default() *Registry {
	defaultOnce.Do(func() {
		spec := os.Getenv(EnvSpec)
		var seed uint64 = 1
		if s := os.Getenv(EnvSeed); s != "" {
			if n, err := strconv.ParseUint(s, 10, 64); err == nil {
				seed = n
			}
		}
		reg, err := ParseSpec(spec, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: ignoring %s: %v\n", EnvSpec, err)
			return
		}
		defaultReg = reg
	})
	return defaultReg
}
