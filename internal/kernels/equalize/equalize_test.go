package equalize

import (
	"math"
	"math/cmplx"
	"testing"

	"sigkern/internal/sim"
)

func signal(n int, seed uint64) []complex128 {
	p := sim.NewPRNG(seed)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(p.Float64()*2-1, p.Float64()*2-1)
	}
	return x
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Spec{{Beams: 0, Taps: 4}, {Beams: 2, Taps: 0}} {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %+v passed", s)
		}
	}
}

func TestNewBankRejectsBadInputs(t *testing.T) {
	if _, err := NewBank(DefaultSpec(), []float64{0.1}); err == nil {
		t.Fatal("rho length mismatch accepted")
	}
	if _, err := NewBank(Spec{Beams: 1, Taps: 4}, []float64{1.5}); err == nil {
		t.Fatal("non-invertible channel accepted")
	}
}

func TestEqualizerInvertsChannel(t *testing.T) {
	spec := Spec{Beams: 2, Taps: 16}
	rho := []float64{0.4, -0.3}
	bank, err := NewBank(spec, rho)
	if err != nil {
		t.Fatal(err)
	}
	for beam := 0; beam < spec.Beams; beam++ {
		x := signal(512, uint64(beam)+1)
		y := Channel(rho[beam], x)
		eq, err := bank.Apply(beam, y, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Residual relative to the signal power: the truncated inverse
		// leaves rho^Taps of energy (~0.4^16 ~ 4e-7).
		var sig float64
		for _, v := range x {
			sig += real(v)*real(v) + imag(v)*imag(v)
		}
		sig /= float64(len(x))
		res := ResidualPower(x, eq, 0, 0)
		if res > 1e-6*sig {
			t.Fatalf("beam %d: residual %g vs signal %g", beam, res, sig)
		}
	}
}

func TestPhaseRotationApplied(t *testing.T) {
	bank, err := NewBank(Spec{Beams: 1, Taps: 1}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	x := []complex128{1, complex(0, 1)}
	// Phase command 1<<18 with LSB 2*pi/2^20 = pi/2 rotation... use
	// phase = 1<<18, lsb = 2*pi/2^20 -> angle = pi/2.
	lsb := 2 * math.Pi / float64(1<<20)
	eq, err := bank.Apply(0, x, 1<<18, lsb)
	if err != nil {
		t.Fatal(err)
	}
	want0 := complex(0, 1) // 1 rotated by pi/2
	if cmplx.Abs(eq[0]-want0) > 1e-12 {
		t.Fatalf("eq[0] = %v, want %v", eq[0], want0)
	}
	// Rotation preserves energy.
	if math.Abs(cmplx.Abs(eq[1])-1) > 1e-12 {
		t.Fatal("rotation changed magnitude")
	}
}

func TestApplyRejectsBadBeam(t *testing.T) {
	bank, err := NewBank(DefaultSpec(), []float64{0.1, 0.2, 0.1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank.Apply(7, signal(8, 1), 0, 0); err == nil {
		t.Fatal("out-of-range beam accepted")
	}
}

func TestOpsPerSample(t *testing.T) {
	if got := (Spec{Beams: 1, Taps: 8}).OpsPerSample(); got != 70 {
		t.Fatalf("OpsPerSample = %d, want 70 (8 complex MACs + rotation)", got)
	}
}
