// Package equalize implements per-beam equalization, the stage the paper
// names as the consumer of beam steering's output ("stream its outputs
// to the following kernel (e.g., per-beam equalization)"). Each beam has
// a complex FIR that flattens the channel response; the phase commands
// from beam steering rotate the equalized output toward the beam's
// direction.
package equalize

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Spec describes one equalizer bank.
type Spec struct {
	// Beams is the number of simultaneous beams.
	Beams int
	// Taps is the per-beam FIR length.
	Taps int
}

// DefaultSpec matches the paper's beam count (4 directions per dwell)
// with a short 8-tap equalizer.
func DefaultSpec() Spec { return Spec{Beams: 4, Taps: 8} }

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Beams <= 0 || s.Taps <= 0 {
		return fmt.Errorf("equalize: %d beams x %d taps", s.Beams, s.Taps)
	}
	return nil
}

// Bank holds per-beam FIR coefficients. Coeffs[beam][tap].
type Bank struct {
	spec   Spec
	Coeffs [][]complex128
}

// NewBank builds an equalizer whose beam b inverts the simple exponential
// channel model channel_b(z) = 1 + rho_b z^-1 (truncated geometric
// inverse), a standard test channel.
func NewBank(spec Spec, rho []float64) (*Bank, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(rho) != spec.Beams {
		return nil, fmt.Errorf("equalize: %d rho values for %d beams", len(rho), spec.Beams)
	}
	b := &Bank{spec: spec, Coeffs: make([][]complex128, spec.Beams)}
	for beam := 0; beam < spec.Beams; beam++ {
		if math.Abs(rho[beam]) >= 1 {
			return nil, fmt.Errorf("equalize: beam %d channel not invertible (|rho| = %v)", beam, math.Abs(rho[beam]))
		}
		c := make([]complex128, spec.Taps)
		// (1 + rho z^-1)^-1 = sum (-rho)^k z^-k.
		for k := 0; k < spec.Taps; k++ {
			c[k] = complex(math.Pow(-rho[beam], float64(k)), 0)
		}
		b.Coeffs[beam] = c
	}
	return b, nil
}

// Spec returns the bank's configuration.
func (b *Bank) Spec() Spec { return b.spec }

// Channel applies the test channel for a beam: y[n] = x[n] + rho x[n-1].
func Channel(rho float64, x []complex128) []complex128 {
	y := make([]complex128, len(x))
	var prev complex128
	for i, v := range x {
		y[i] = v + complex(rho, 0)*prev
		prev = v
	}
	return y
}

// Apply equalizes one beam's sample stream and applies its phase command
// (a fixed-point phase from the beam-steering kernel, scaled by phaseLSB
// radians per unit).
func (b *Bank) Apply(beam int, x []complex128, phase int32, phaseLSB float64) ([]complex128, error) {
	if beam < 0 || beam >= b.spec.Beams {
		return nil, fmt.Errorf("equalize: beam %d out of range", beam)
	}
	rot := cmplx.Exp(complex(0, float64(phase)*phaseLSB))
	c := b.Coeffs[beam]
	out := make([]complex128, len(x))
	for n := range x {
		var acc complex128
		for k := 0; k < len(c) && k <= n; k++ {
			acc += c[k] * x[n-k]
		}
		out[n] = acc * rot
	}
	return out, nil
}

// ResidualPower measures how far eq is from the (phase-rotated) original
// x: the mean squared error after removing the known rotation. A good
// equalizer drives this far below the signal power.
func ResidualPower(x, eq []complex128, phase int32, phaseLSB float64) float64 {
	rot := cmplx.Exp(complex(0, float64(phase)*phaseLSB))
	var mse float64
	for i := range x {
		d := eq[i] - x[i]*rot
		mse += real(d)*real(d) + imag(d)*imag(d)
	}
	return mse / float64(len(x))
}

// OpsPerSample returns real operations per output sample: Taps complex
// MACs plus the final rotation.
func (s Spec) OpsPerSample() uint64 { return uint64(8*s.Taps) + 6 }

// WordsPerSample returns streaming memory traffic per sample in 32-bit
// words: one complex sample in and one out (two words each). The short
// per-beam coefficient vectors stay resident and are excluded.
func (s Spec) WordsPerSample() uint64 { return 4 }
