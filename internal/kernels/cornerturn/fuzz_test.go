package cornerturn

import (
	"testing"

	"sigkern/internal/kernels/testsig"
)

// FuzzTransposeVariants checks that all transpose variants agree with
// the reference on arbitrary shapes and block sizes.
func FuzzTransposeVariants(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(4), uint64(1))
	f.Add(uint8(33), uint8(17), uint8(7), uint64(2))
	f.Add(uint8(1), uint8(64), uint8(16), uint64(3))
	f.Fuzz(func(t *testing.T, rows, cols, block uint8, seed uint64) {
		r := int(rows)%48 + 1
		c := int(cols)%48 + 1
		b := int(block)%16 + 1
		src := testsig.NewMatrix(r, c, seed)
		ref := testsig.ZeroMatrix(c, r)
		if err := Transpose(ref, src); err != nil {
			t.Fatal(err)
		}
		blocked := testsig.ZeroMatrix(c, r)
		if err := TransposeBlocked(blocked, src, b); err != nil {
			t.Fatal(err)
		}
		if !blocked.Equal(ref) {
			t.Fatalf("blocked transpose differs at %dx%d block %d", r, c, b)
		}
		strips := testsig.ZeroMatrix(c, r)
		if err := TransposeStrips(strips, src, b); err != nil {
			t.Fatal(err)
		}
		if !strips.Equal(ref) {
			t.Fatalf("strip transpose differs at %dx%d strips %d", r, c, b)
		}
	})
}
