// Package cornerturn implements the corner-turn kernel: an out-of-place
// matrix transpose of 32-bit elements, the pure memory-bandwidth test of
// the paper ("the data in the source matrix is transposed and stored in
// the destination matrix"). The paper's operand is 1024 x 1024 x 4 bytes:
// larger than Imagine's 128 KB SRF and Raw's 2 MB of on-chip SRAM, but
// smaller than VIRAM's 13 MB on-chip DRAM.
//
// Three functional variants are provided: the naive transpose (the
// reference), a cache-blocked transpose (what the PPC and VIRAM use), and
// a strip transpose that mirrors Imagine's multi-row-strip streaming
// formulation. All produce identical results; they differ only in access
// order, which is what the machine models account for.
package cornerturn

import (
	"fmt"

	"sigkern/internal/kernels/testsig"
)

// Spec describes one corner-turn problem instance.
type Spec struct {
	Rows, Cols int
	// BlockSize is the tile edge for blocked variants (16 on VIRAM,
	// 64 on Raw per the paper).
	BlockSize int
}

// PaperSpec returns the paper's 1024 x 1024 x 4-byte instance.
func PaperSpec() Spec { return Spec{Rows: 1024, Cols: 1024, BlockSize: 16} }

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Rows <= 0 || s.Cols <= 0 {
		return fmt.Errorf("cornerturn: non-positive dimensions %dx%d", s.Rows, s.Cols)
	}
	if s.BlockSize <= 0 {
		return fmt.Errorf("cornerturn: non-positive block size %d", s.BlockSize)
	}
	return nil
}

// Words returns the number of 32-bit elements moved (one read and one
// write each).
func (s Spec) Words() uint64 { return uint64(s.Rows) * uint64(s.Cols) }

// MoveOps returns the instruction-issue cost of the transpose: one load
// and one store per element, with no arithmetic between them. On
// machines without wide memory operations this issue rate, not the
// memory system, can be the binding bound (Raw in the paper's Table 4).
func (s Spec) MoveOps() uint64 { return 2 * s.Words() }

// Transpose computes dst = src^T with a simple doubly nested loop. It is
// the golden reference. dst must be Cols x Rows when src is Rows x Cols.
func Transpose(dst, src *testsig.Matrix) error {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		return fmt.Errorf("cornerturn: dst %dx%d incompatible with src %dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols)
	}
	for r := 0; r < src.Rows; r++ {
		row := src.Data[r*src.Cols : (r+1)*src.Cols]
		for c, v := range row {
			dst.Data[c*dst.Cols+r] = v
		}
	}
	return nil
}

// TransposeBlocked computes dst = src^T in block x block tiles, the
// access order used by cache-based machines and by VIRAM's vector-
// register staging. Dimensions need not be multiples of block.
func TransposeBlocked(dst, src *testsig.Matrix, block int) error {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		return fmt.Errorf("cornerturn: dst %dx%d incompatible with src %dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols)
	}
	if block <= 0 {
		return fmt.Errorf("cornerturn: block size %d", block)
	}
	for r0 := 0; r0 < src.Rows; r0 += block {
		r1 := min(r0+block, src.Rows)
		for c0 := 0; c0 < src.Cols; c0 += block {
			c1 := min(c0+block, src.Cols)
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					dst.Data[c*dst.Cols+r] = src.Data[r*src.Cols+c]
				}
			}
		}
	}
	return nil
}

// TransposeStrips computes dst = src^T by reading `strips` row-strips at
// a time and interleaving them into column-major output order — the
// Imagine formulation ("we divide the matrix into multi-row strips ...
// four input streams and one output stream").
func TransposeStrips(dst, src *testsig.Matrix, strips int) error {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		return fmt.Errorf("cornerturn: dst %dx%d incompatible with src %dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols)
	}
	if strips <= 0 {
		return fmt.Errorf("cornerturn: strip count %d", strips)
	}
	for r0 := 0; r0 < src.Rows; r0 += strips {
		r1 := min(r0+strips, src.Rows)
		// The clusters route strip elements into output order: for each
		// column, emit the strip's elements contiguously.
		for c := 0; c < src.Cols; c++ {
			for r := r0; r < r1; r++ {
				dst.Data[c*dst.Cols+r] = src.Data[r*src.Cols+c]
			}
		}
	}
	return nil
}

// VerifySynthetic proves one transpose formulation on pooled synthetic
// operands: it fills a deterministic rows x cols source, runs transpose
// into a cols x rows destination, and compares checksums against the
// naive reference. Machine models call this before timing a corner
// turn; the matrices come from (and return to) the testsig pool, so
// steady-state verification allocates nothing matrix-sized.
func VerifySynthetic(rows, cols int, transpose func(dst, src *testsig.Matrix) error) error {
	src := testsig.GetMatrix(rows, cols)
	defer src.Release()
	src.Fill(1)
	dst := testsig.GetMatrix(cols, rows)
	defer dst.Release()
	dst.Zero()
	if err := transpose(dst, src); err != nil {
		return err
	}
	ref := testsig.GetMatrix(cols, rows)
	defer ref.Release()
	ref.Zero()
	if err := Transpose(ref, src); err != nil {
		return err
	}
	if Checksum(dst) != Checksum(ref) {
		return fmt.Errorf("cornerturn: output mismatch against reference")
	}
	return nil
}

// Checksum returns an order-independent-free (position-sensitive) FNV-1a
// digest of the matrix contents, used by machine models to prove their
// functional output matches the reference without holding both copies.
func Checksum(m *testsig.Matrix) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(uint32(m.Rows))) * prime
	h = (h ^ uint64(uint32(m.Cols))) * prime
	for _, v := range m.Data {
		h = (h ^ uint64(uint32(v))) * prime
	}
	return h
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
