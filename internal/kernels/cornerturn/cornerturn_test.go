package cornerturn

import (
	"testing"
	"testing/quick"

	"sigkern/internal/kernels/testsig"
)

func TestPaperSpec(t *testing.T) {
	s := PaperSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Words() != 1<<20 {
		t.Fatalf("paper matrix words = %d, want 1M", s.Words())
	}
	// The paper's sizing argument: bigger than the 128 KB SRF and Raw's
	// 2 MB SRAM, smaller than VIRAM's 13 MB DRAM.
	bytes := s.Words() * 4
	if bytes <= 128<<10 || bytes <= 2<<20 || bytes >= 13<<20 {
		t.Fatalf("matrix bytes %d violate the paper's sizing constraints", bytes)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Rows: 0, Cols: 4, BlockSize: 2},
		{Rows: 4, Cols: -1, BlockSize: 2},
		{Rows: 4, Cols: 4, BlockSize: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d passed validation", i)
		}
	}
}

func TestTransposeSmallKnown(t *testing.T) {
	src := testsig.ZeroMatrix(2, 3)
	v := int32(1)
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			src.Set(r, c, v)
			v++
		}
	}
	dst := testsig.ZeroMatrix(3, 2)
	if err := Transpose(dst, src); err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 4, 2, 5, 3, 6}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("dst.Data = %v, want %v", dst.Data, want)
		}
	}
}

func TestTransposeShapeMismatch(t *testing.T) {
	src := testsig.NewMatrix(4, 8, 1)
	bad := testsig.ZeroMatrix(4, 8)
	if err := Transpose(bad, src); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
	if err := TransposeBlocked(bad, src, 2); err == nil {
		t.Fatal("blocked: shape mismatch not rejected")
	}
	if err := TransposeStrips(bad, src, 2); err == nil {
		t.Fatal("strips: shape mismatch not rejected")
	}
}

func TestVariantsAgree(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {16, 32}, {33, 17}, {64, 64}, {100, 7}} {
		src := testsig.NewMatrix(dims[0], dims[1], uint64(dims[0]*1000+dims[1]))
		ref := testsig.ZeroMatrix(dims[1], dims[0])
		if err := Transpose(ref, src); err != nil {
			t.Fatal(err)
		}
		for _, block := range []int{1, 4, 16, 100} {
			got := testsig.ZeroMatrix(dims[1], dims[0])
			if err := TransposeBlocked(got, src, block); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref) {
				t.Fatalf("%dx%d block=%d: blocked transpose differs", dims[0], dims[1], block)
			}
		}
		for _, strips := range []int{1, 4, 5} {
			got := testsig.ZeroMatrix(dims[1], dims[0])
			if err := TransposeStrips(got, src, strips); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref) {
				t.Fatalf("%dx%d strips=%d: strip transpose differs", dims[0], dims[1], strips)
			}
		}
	}
}

// Property: transpose is an involution — T(T(x)) == x.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(rseed uint64, rdim, cdim uint8) bool {
		rows := int(rdim)%32 + 1
		cols := int(cdim)%32 + 1
		src := testsig.NewMatrix(rows, cols, rseed)
		once := testsig.ZeroMatrix(cols, rows)
		twice := testsig.ZeroMatrix(rows, cols)
		if err := Transpose(once, src); err != nil {
			return false
		}
		if err := Transpose(twice, once); err != nil {
			return false
		}
		return twice.Equal(src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: element (r,c) of the source appears at (c,r) of the result.
func TestTransposeElementMapProperty(t *testing.T) {
	src := testsig.NewMatrix(16, 24, 3)
	dst := testsig.ZeroMatrix(24, 16)
	if err := TransposeBlocked(dst, src, 5); err != nil {
		t.Fatal(err)
	}
	f := func(ri, ci uint8) bool {
		r := int(ri) % 16
		c := int(ci) % 24
		return dst.At(c, r) == src.At(r, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsDifferences(t *testing.T) {
	a := testsig.NewMatrix(8, 8, 1)
	b := testsig.NewMatrix(8, 8, 1)
	if Checksum(a) != Checksum(b) {
		t.Fatal("identical matrices have different checksums")
	}
	b.Set(3, 3, b.At(3, 3)+1)
	if Checksum(a) == Checksum(b) {
		t.Fatal("modified matrix has identical checksum")
	}
	// Shape must matter even with identical data.
	c := &testsig.Matrix{Rows: 4, Cols: 16, Data: a.Data}
	if Checksum(a) == Checksum(c) {
		t.Fatal("reshaped matrix has identical checksum")
	}
}

func TestChecksumPositionSensitive(t *testing.T) {
	a := testsig.ZeroMatrix(2, 2)
	a.Set(0, 0, 1)
	b := testsig.ZeroMatrix(2, 2)
	b.Set(1, 1, 1)
	if Checksum(a) == Checksum(b) {
		t.Fatal("checksum ignores element position")
	}
}

func BenchmarkTransposeNaive1024(b *testing.B) {
	src := testsig.NewMatrix(1024, 1024, 1)
	dst := testsig.ZeroMatrix(1024, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Transpose(dst, src)
	}
}

func BenchmarkTransposeBlocked1024(b *testing.B) {
	src := testsig.NewMatrix(1024, 1024, 1)
	dst := testsig.ZeroMatrix(1024, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = TransposeBlocked(dst, src, 64)
	}
}
