package cslc_test

import (
	"fmt"
	"math"

	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/testsig"
)

// Example runs the full canceller on a jammed synthetic scene and
// reports the cancellation depth — the kernel's domain-level output.
func Example() {
	spec := cslc.Spec{
		MainChannels: 2, AuxChannels: 2,
		Samples: 1024, SubBands: 15, FFTSize: 128,
		Radix: fft.MixedRadix42,
	}
	scene := testsig.DefaultScene(spec.Samples)
	channels := scene.Channels(spec.MainChannels)

	weights, err := cslc.EstimateWeights(spec, channels)
	if err != nil {
		panic(err)
	}
	cancelled, err := cslc.Run(spec, channels, weights)
	if err != nil {
		panic(err)
	}
	passthrough, err := cslc.Run(spec, channels, cslc.NewWeights(spec))
	if err != nil {
		panic(err)
	}
	depth := 10 * math.Log10(cslc.TotalPower(passthrough.Cancelled[0])/
		cslc.TotalPower(cancelled.Cancelled[0]))
	fmt.Printf("cancellation depth exceeds 30 dB: %v\n", depth > 30)
	// Output:
	// cancellation depth exceeds 30 dB: true
}
