// Package cslc implements the coherent side-lobe canceller kernel: the
// radar pipeline that removes jammer interference received through a
// radar's antenna side lobes. Per the paper, the kernel "consists of
// FFTs, a weight application (multiplication) stage, and IFFTs", with
// four input channels (two main, two auxiliary), 8K samples per channel
// per processing interval, partitioned into 73 overlapping sub-bands of
// 128 samples each, all in single-precision complex arithmetic.
//
// The pipeline implemented here:
//
//  1. Sub-band extraction: 73 overlapping 128-sample windows per channel.
//  2. Forward FFT of every window (radix per machine: mixed radix-4/2 on
//     VIRAM and Imagine, radix-2 on Raw).
//  3. Weight application per main channel and frequency bin:
//     out[bin] = main[bin] - sum_a w[a][bin] * aux_a[bin].
//  4. Inverse FFT of each cancelled sub-band back to the time domain.
//
// Weight estimation (per-bin least squares over the sub-band ensemble,
// with diagonal loading) is provided for the end-to-end radar example;
// the paper's timed kernel applies precomputed weights, and the machine
// models time exactly that.
package cslc

import (
	"fmt"

	"sigkern/internal/kernels/fft"
)

// Spec describes one CSLC problem instance.
type Spec struct {
	// MainChannels and AuxChannels count the input channels (2 + 2).
	MainChannels, AuxChannels int
	// Samples is the per-channel samples per processing interval (8192).
	Samples int
	// SubBands is the number of overlapping sub-bands (73).
	SubBands int
	// FFTSize is the per-sub-band transform length (128).
	FFTSize int
	// Radix selects the FFT decomposition (the per-machine choice).
	Radix fft.Radix
}

// PaperSpec returns the paper's instance with the given FFT radix.
func PaperSpec(radix fft.Radix) Spec {
	return Spec{MainChannels: 2, AuxChannels: 2, Samples: 8192, SubBands: 73, FFTSize: 128, Radix: radix}
}

// Validate reports whether the spec is realizable.
func (s Spec) Validate() error {
	if s.MainChannels <= 0 || s.AuxChannels < 0 {
		return fmt.Errorf("cslc: channel counts %d/%d", s.MainChannels, s.AuxChannels)
	}
	if s.Samples < s.FFTSize || s.FFTSize < 2 {
		return fmt.Errorf("cslc: %d samples with FFT size %d", s.Samples, s.FFTSize)
	}
	if s.SubBands < 1 {
		return fmt.Errorf("cslc: %d sub-bands", s.SubBands)
	}
	if s.SubBands > 1 && s.Hop() < 1 {
		return fmt.Errorf("cslc: %d sub-bands do not fit in %d samples", s.SubBands, s.Samples)
	}
	if _, err := fft.NewPlan(s.FFTSize, s.Radix, false); err != nil {
		return err
	}
	return nil
}

// Channels returns the total channel count.
func (s Spec) Channels() int { return s.MainChannels + s.AuxChannels }

// Hop returns the stride between successive sub-band windows. For the
// paper's numbers: (8192-128)/72 = 112 samples, a 16-sample overlap.
func (s Spec) Hop() int {
	if s.SubBands == 1 {
		return 0
	}
	return (s.Samples - s.FFTSize) / (s.SubBands - 1)
}

// ForwardFFTs returns the number of forward transforms per interval.
func (s Spec) ForwardFFTs() uint64 { return uint64(s.Channels()) * uint64(s.SubBands) }

// InverseFFTs returns the number of inverse transforms per interval.
func (s Spec) InverseFFTs() uint64 { return uint64(s.MainChannels) * uint64(s.SubBands) }

// WeightCountsPerBand returns the operation counts of the weight stage
// for one main channel's sub-band: per bin, AuxChannels complex
// multiply-subtracts.
func (s Spec) WeightCountsPerBand() fft.Counts {
	bins := uint64(s.FFTSize)
	aux := uint64(s.AuxChannels)
	return fft.Counts{
		Muls:   4 * aux * bins,         // complex multiply
		Adds:   (2*aux + 2*aux) * bins, // cmul adds + complex subtract
		Loads:  (2 + 4*aux) * bins,     // main + per-aux sample and weight
		Stores: 2 * bins,
	}
}

// TotalCounts returns the operation counts of the full timed pipeline:
// forward FFTs + weight stage + inverse FFTs.
func (s Spec) TotalCounts() (fft.Counts, error) {
	fwd, err := fft.NewPlan(s.FFTSize, s.Radix, false)
	if err != nil {
		return fft.Counts{}, err
	}
	inv, err := fft.NewPlan(s.FFTSize, s.Radix, true)
	if err != nil {
		return fft.Counts{}, err
	}
	c := fwd.Counts().Scale(s.ForwardFFTs())
	c = c.Add(inv.Counts().Scale(s.InverseFFTs()))
	c = c.Add(s.WeightCountsPerBand().Scale(uint64(s.MainChannels) * uint64(s.SubBands)))
	return c, nil
}

// Weights holds the cancellation weights: W[main][aux][bin].
type Weights struct {
	W [][][]complex128
}

// NewWeights allocates a zero weight set for spec. The per-bin rows
// subslice one backing array, so the whole set costs a fixed number of
// allocations regardless of channel counts.
func NewWeights(s Spec) *Weights {
	backing := make([]complex128, s.MainChannels*s.AuxChannels*s.FFTSize)
	w := &Weights{W: make([][][]complex128, s.MainChannels)}
	for m := range w.W {
		w.W[m] = make([][]complex128, s.AuxChannels)
		for a := range w.W[m] {
			w.W[m][a], backing = backing[:s.FFTSize:s.FFTSize], backing[s.FFTSize:]
		}
	}
	return w
}

// ExtractSubBands copies the spec's overlapping windows out of one
// channel's samples.
func ExtractSubBands(s Spec, x []complex128) ([][]complex128, error) {
	if len(x) != s.Samples {
		return nil, fmt.Errorf("cslc: channel has %d samples, spec wants %d", len(x), s.Samples)
	}
	hop := s.Hop()
	// One backing array for all windows: band extraction runs once per
	// channel per interval, and 73 separate 128-sample allocations per
	// call dominated the allocation profile.
	backing := make([]complex128, s.SubBands*s.FFTSize)
	bands := make([][]complex128, s.SubBands)
	for b := 0; b < s.SubBands; b++ {
		start := b * hop
		w := backing[b*s.FFTSize : (b+1)*s.FFTSize : (b+1)*s.FFTSize]
		copy(w, x[start:start+s.FFTSize])
		bands[b] = w
	}
	return bands, nil
}

// Spectra holds per-channel, per-band frequency-domain data:
// S[channel][band][bin].
type Spectra [][][]complex128

// ForwardTransform FFTs every sub-band of every channel.
func ForwardTransform(s Spec, channels [][]complex128) (Spectra, error) {
	if len(channels) != s.Channels() {
		return nil, fmt.Errorf("cslc: %d channels, spec wants %d", len(channels), s.Channels())
	}
	plan, err := fft.NewPlan(s.FFTSize, s.Radix, false)
	if err != nil {
		return nil, err
	}
	out := make(Spectra, len(channels))
	for ch, x := range channels {
		bands, err := ExtractSubBands(s, x)
		if err != nil {
			return nil, err
		}
		backing := make([]complex128, len(bands)*s.FFTSize)
		out[ch] = make([][]complex128, len(bands))
		for b, w := range bands {
			spec := backing[b*s.FFTSize : (b+1)*s.FFTSize : (b+1)*s.FFTSize]
			if err := plan.Transform(spec, w); err != nil {
				return nil, err
			}
			out[ch][b] = spec
		}
	}
	return out, nil
}

// ApplyWeights computes the cancelled spectrum of one main channel's
// sub-band: out[bin] = main[bin] - sum_a w[a][bin]*aux[a][band][bin].
func ApplyWeights(mainBand []complex128, auxBands [][]complex128, w [][]complex128) []complex128 {
	out := make([]complex128, len(mainBand))
	applyWeightsInto(out, mainBand, auxBands, w)
	return out
}

// applyWeightsInto is ApplyWeights writing into caller-owned storage.
func applyWeightsInto(out, mainBand []complex128, auxBands [][]complex128, w [][]complex128) {
	copy(out, mainBand)
	for a, aux := range auxBands {
		wa := w[a]
		for k := range out {
			out[k] -= wa[k] * aux[k]
		}
	}
}

// Output is the result of one CSLC interval.
type Output struct {
	// Cancelled[main][band][t] is the cancelled time-domain sub-band.
	Cancelled [][][]complex128
	// CancelledSpectra[main][band][bin] is the frequency-domain view.
	CancelledSpectra [][][]complex128
}

// Run executes the full timed pipeline on the channel set (mains first,
// then aux), applying the given weights.
func Run(s Spec, channels [][]complex128, w *Weights) (*Output, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	spectra, err := ForwardTransform(s, channels)
	if err != nil {
		return nil, err
	}
	inv, err := fft.NewPlan(s.FFTSize, s.Radix, true)
	if err != nil {
		return nil, err
	}
	out := &Output{
		Cancelled:        make([][][]complex128, s.MainChannels),
		CancelledSpectra: make([][][]complex128, s.MainChannels),
	}
	auxSpectra := spectra[s.MainChannels:]
	auxBands := make([][]complex128, s.AuxChannels)
	for m := 0; m < s.MainChannels; m++ {
		// Bulk backings for the channel's time- and frequency-domain
		// outputs (2 allocations instead of 2 per sub-band).
		tdBacking := make([]complex128, s.SubBands*s.FFTSize)
		fdBacking := make([]complex128, s.SubBands*s.FFTSize)
		out.Cancelled[m] = make([][]complex128, s.SubBands)
		out.CancelledSpectra[m] = make([][]complex128, s.SubBands)
		for b := 0; b < s.SubBands; b++ {
			for a := 0; a < s.AuxChannels; a++ {
				auxBands[a] = auxSpectra[a][b]
			}
			spec := fdBacking[b*s.FFTSize : (b+1)*s.FFTSize : (b+1)*s.FFTSize]
			applyWeightsInto(spec, spectra[m][b], auxBands, w.W[m])
			out.CancelledSpectra[m][b] = spec
			td := tdBacking[b*s.FFTSize : (b+1)*s.FFTSize : (b+1)*s.FFTSize]
			if err := inv.Transform(td, spec); err != nil {
				return nil, err
			}
			out.Cancelled[m][b] = td
		}
	}
	return out, nil
}

// EstimateWeights computes per-bin least-squares weights from the
// channels themselves: for each main channel and bin, solve
//
//	min_w  sum_bands |main[band][bin] - sum_a w_a aux_a[band][bin]|^2
//
// via the normal equations with diagonal loading (the ensemble over 73
// sub-bands provides the averaging a real canceller gets from training
// data). This is the adaptive half of a real CSLC; the paper times only
// the application half.
func EstimateWeights(s Spec, channels [][]complex128) (*Weights, error) {
	spectra, err := ForwardTransform(s, channels)
	if err != nil {
		return nil, err
	}
	if s.AuxChannels > 2 {
		return nil, fmt.Errorf("cslc: EstimateWeights supports at most 2 aux channels, got %d", s.AuxChannels)
	}
	w := NewWeights(s)
	auxSpectra := spectra[s.MainChannels:]
	for m := 0; m < s.MainChannels; m++ {
		for k := 0; k < s.FFTSize; k++ {
			switch s.AuxChannels {
			case 0:
				// Nothing to estimate.
			case 1:
				var num, den complex128
				for b := 0; b < s.SubBands; b++ {
					a0 := auxSpectra[0][b][k]
					num += conj(a0) * spectra[m][b][k]
					den += conj(a0) * a0
				}
				den += loading(real(den))
				w.W[m][0][k] = num / den
			case 2:
				var r00, r01, r11, p0, p1 complex128
				for b := 0; b < s.SubBands; b++ {
					a0 := auxSpectra[0][b][k]
					a1 := auxSpectra[1][b][k]
					mn := spectra[m][b][k]
					r00 += conj(a0) * a0
					r01 += conj(a0) * a1
					r11 += conj(a1) * a1
					p0 += conj(a0) * mn
					p1 += conj(a1) * mn
				}
				d := loading(real(r00) + real(r11))
				r00 += d
				r11 += d
				det := r00*r11 - r01*conj(r01)
				w.W[m][0][k] = (r11*p0 - r01*p1) / det
				w.W[m][1][k] = (r00*p1 - conj(r01)*p0) / det
			}
		}
	}
	return w, nil
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// loading returns the diagonal-loading term for a correlation trace.
func loading(trace float64) complex128 {
	return complex(1e-4*trace+1e-12, 0)
}

// VerifyAgainstNaive recomputes the pipeline for the selected sub-bands
// with the O(N^2) naive DFT/IDFT and compares against out. Machine models
// call it to prove their functional results against an implementation
// that shares no code with the fast path. It returns the first
// discrepancy found.
func VerifyAgainstNaive(s Spec, channels [][]complex128, w *Weights, out *Output, bands []int) error {
	for m := 0; m < s.MainChannels; m++ {
		for _, b := range bands {
			if b < 0 || b >= s.SubBands {
				return fmt.Errorf("cslc: verify band %d out of range", b)
			}
			start := b * s.Hop()
			mainSpec := fft.NaiveDFT(channels[m][start : start+s.FFTSize])
			cancelled := make([]complex128, s.FFTSize)
			copy(cancelled, mainSpec)
			for a := 0; a < s.AuxChannels; a++ {
				auxSpec := fft.NaiveDFT(channels[s.MainChannels+a][start : start+s.FFTSize])
				for k := range cancelled {
					cancelled[k] -= w.W[m][a][k] * auxSpec[k]
				}
			}
			ref := fft.NaiveIDFT(cancelled)
			got := out.Cancelled[m][b]
			for i := range ref {
				d := ref[i] - got[i]
				if real(d)*real(d)+imag(d)*imag(d) > 1e-12 {
					return fmt.Errorf("cslc: main %d band %d sample %d: got %v, want %v",
						m, b, i, got[i], ref[i])
				}
			}
		}
	}
	return nil
}

// TotalPower sums the mean power of every band of one main channel's
// output; used to measure cancellation depth.
func TotalPower(bands [][]complex128) float64 {
	var s float64
	var n int
	for _, b := range bands {
		for _, v := range b {
			s += real(v)*real(v) + imag(v)*imag(v)
		}
		n += len(b)
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
