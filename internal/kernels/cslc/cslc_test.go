package cslc

import (
	"math"
	"testing"

	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/testsig"
)

func TestPaperSpec(t *testing.T) {
	s := PaperSpec(fft.MixedRadix42)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Hop() != 112 {
		t.Fatalf("hop = %d, want 112 ((8192-128)/72)", s.Hop())
	}
	if s.ForwardFFTs() != 4*73 {
		t.Fatalf("forward FFTs = %d, want 292", s.ForwardFFTs())
	}
	if s.InverseFFTs() != 2*73 {
		t.Fatalf("inverse FFTs = %d, want 146", s.InverseFFTs())
	}
	// Last window must end exactly at or before the sample count.
	if end := (s.SubBands-1)*s.Hop() + s.FFTSize; end > s.Samples {
		t.Fatalf("last window ends at %d > %d samples", end, s.Samples)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{MainChannels: 0, AuxChannels: 2, Samples: 8192, SubBands: 73, FFTSize: 128, Radix: fft.Radix2},
		{MainChannels: 2, AuxChannels: 2, Samples: 64, SubBands: 73, FFTSize: 128, Radix: fft.Radix2},
		{MainChannels: 2, AuxChannels: 2, Samples: 8192, SubBands: 0, FFTSize: 128, Radix: fft.Radix2},
		{MainChannels: 2, AuxChannels: 2, Samples: 8192, SubBands: 73, FFTSize: 128, Radix: fft.Radix4}, // 128 != 4^k
		{MainChannels: 2, AuxChannels: 2, Samples: 130, SubBands: 100, FFTSize: 128, Radix: fft.Radix2}, // hop 0
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d passed validation", i)
		}
	}
}

func TestExtractSubBandsOverlap(t *testing.T) {
	s := PaperSpec(fft.Radix2)
	x := make([]complex128, s.Samples)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	bands, err := ExtractSubBands(s, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 73 {
		t.Fatalf("bands = %d", len(bands))
	}
	// Band b starts at b*112; check window contents and the 16-sample
	// overlap between consecutive windows.
	for b, w := range bands {
		if real(w[0]) != float64(b*112) {
			t.Fatalf("band %d starts at %v, want %d", b, w[0], b*112)
		}
	}
	for i := 0; i < 16; i++ {
		if bands[0][112+i] != bands[1][i] {
			t.Fatal("overlap mismatch between consecutive bands")
		}
	}
}

func TestExtractSubBandsWrongLength(t *testing.T) {
	s := PaperSpec(fft.Radix2)
	if _, err := ExtractSubBands(s, make([]complex128, 100)); err == nil {
		t.Fatal("wrong-length channel not rejected")
	}
}

func smallSpec(radix fft.Radix) Spec {
	return Spec{MainChannels: 2, AuxChannels: 2, Samples: 1024, SubBands: 15, FFTSize: 128, Radix: radix}
}

func TestRunEndToEndCancelsJammer(t *testing.T) {
	s := smallSpec(fft.MixedRadix42)
	scene := testsig.DefaultScene(s.Samples)
	channels := scene.Channels(s.MainChannels)
	w, err := EstimateWeights(s, channels)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(s, channels, w)
	if err != nil {
		t.Fatal(err)
	}
	// Cancellation depth: cancelled output power must be far below the
	// uncancelled main-channel power (jammer-dominated), yet above zero
	// (the target survives).
	zero := NewWeights(s)
	ref, err := Run(s, channels, zero)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < s.MainChannels; m++ {
		before := TotalPower(flatten(ref.Cancelled[m]))
		after := TotalPower(flatten(out.Cancelled[m]))
		depthDB := 10 * math.Log10(before/after)
		if depthDB < 20 {
			t.Fatalf("main %d: cancellation depth %.1f dB, want >= 20 dB", m, depthDB)
		}
		if after <= 0 {
			t.Fatalf("main %d: cancelled output is exactly zero; target destroyed", m)
		}
	}
}

func TestRunPreservesTarget(t *testing.T) {
	s := smallSpec(fft.MixedRadix42)
	scene := testsig.DefaultScene(s.Samples)
	// Jammer-free scene: weights estimated on a jammed scene must pass an
	// (almost) clean target through. Build a clean scene for reference.
	clean := scene
	clean.JammerAmp = 0
	cleanCh := clean.Channels(s.MainChannels)
	jammedCh := scene.Channels(s.MainChannels)
	w, err := EstimateWeights(s, jammedCh)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(s, jammedCh, w)
	if err != nil {
		t.Fatal(err)
	}
	zero := NewWeights(s)
	cleanOut, err := Run(s, cleanCh, zero)
	if err != nil {
		t.Fatal(err)
	}
	// Compare cancelled output to the clean target: within 6 dB of power.
	pc := TotalPower(flatten(cleanOut.Cancelled[0]))
	po := TotalPower(flatten(out.Cancelled[0]))
	ratio := po / pc
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("cancelled/clean power ratio = %.3f, want within 6 dB of 1", ratio)
	}
}

func TestZeroWeightsIdentity(t *testing.T) {
	s := smallSpec(fft.Radix2)
	scene := testsig.DefaultScene(s.Samples)
	channels := scene.Channels(s.MainChannels)
	out, err := Run(s, channels, NewWeights(s))
	if err != nil {
		t.Fatal(err)
	}
	// With zero weights the pipeline is FFT then IFFT: each cancelled
	// band must reproduce its input window.
	bands, _ := ExtractSubBands(s, channels[0])
	for b := range bands {
		for i := range bands[b] {
			if d := absC(out.Cancelled[0][b][i] - bands[b][i]); d > 1e-9 {
				t.Fatalf("band %d sample %d differs by %g", b, i, d)
			}
		}
	}
}

func TestRadixChoiceDoesNotChangeResults(t *testing.T) {
	s2 := smallSpec(fft.Radix2)
	sm := smallSpec(fft.MixedRadix42)
	scene := testsig.DefaultScene(s2.Samples)
	channels := scene.Channels(2)
	w, err := EstimateWeights(s2, channels)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Run(s2, channels, w)
	if err != nil {
		t.Fatal(err)
	}
	om, err := Run(sm, channels, w)
	if err != nil {
		t.Fatal(err)
	}
	for b := range o2.Cancelled[0] {
		for i := range o2.Cancelled[0][b] {
			if d := absC(o2.Cancelled[0][b][i] - om.Cancelled[0][b][i]); d > 1e-9 {
				t.Fatalf("radix-2 vs mixed differ at band %d sample %d by %g", b, i, d)
			}
		}
	}
}

func TestApplyWeightsKnown(t *testing.T) {
	main := []complex128{complex(2, 0), complex(0, 2)}
	aux := [][]complex128{{complex(1, 0), complex(1, 0)}}
	w := [][]complex128{{complex(1, 0), complex(0, 1)}}
	out := ApplyWeights(main, aux, w)
	if out[0] != complex(1, 0) {
		t.Fatalf("out[0] = %v, want 1", out[0])
	}
	if out[1] != complex(0, 1) {
		t.Fatalf("out[1] = %v, want i", out[1])
	}
}

func TestTotalCountsConsistency(t *testing.T) {
	s := PaperSpec(fft.Radix2)
	c, err := s.TotalCounts()
	if err != nil {
		t.Fatal(err)
	}
	// ~2M flops for the full interval: 438 transforms x 4480 flops plus
	// the weight stage. Sanity-check the magnitude.
	if c.Flops() < 1_500_000 || c.Flops() > 4_000_000 {
		t.Fatalf("paper-spec radix-2 flops = %d, want ~2-3M", c.Flops())
	}
	// The mixed-radix plan must do fewer operations.
	sm := PaperSpec(fft.MixedRadix42)
	cm, err := sm.TotalCounts()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Flops() >= c.Flops() {
		t.Fatalf("mixed radix (%d flops) not cheaper than radix-2 (%d)", cm.Flops(), c.Flops())
	}
}

func TestEstimateWeightsSingleAux(t *testing.T) {
	s := Spec{MainChannels: 1, AuxChannels: 1, Samples: 1024, SubBands: 15, FFTSize: 128, Radix: fft.Radix2}
	scene := testsig.DefaultScene(s.Samples)
	scene.AuxCoupling = scene.AuxCoupling[:1]
	channels := scene.Channels(1)
	w, err := EstimateWeights(s, channels)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(s, channels, w)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(s, channels, NewWeights(s))
	if err != nil {
		t.Fatal(err)
	}
	depth := TotalPower(flatten(ref.Cancelled[0])) / TotalPower(flatten(out.Cancelled[0]))
	if 10*math.Log10(depth) < 20 {
		t.Fatalf("single-aux cancellation depth %.1f dB, want >= 20", 10*math.Log10(depth))
	}
}

func flatten(bands [][]complex128) [][]complex128 { return bands }

func absC(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func BenchmarkCSLCPaperIntervalFunctional(b *testing.B) {
	s := PaperSpec(fft.MixedRadix42)
	scene := testsig.DefaultScene(s.Samples)
	channels := scene.Channels(s.MainChannels)
	w, err := EstimateWeights(s, channels)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s, channels, w); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSinglePrecisionPipelineMatchesDouble(t *testing.T) {
	s := smallSpec(fft.MixedRadix42)
	scene := testsig.DefaultScene(s.Samples)
	channels := scene.Channels(s.MainChannels)
	w, err := EstimateWeights(s, channels)
	if err != nil {
		t.Fatal(err)
	}
	d64, err := Run(s, channels, w)
	if err != nil {
		t.Fatal(err)
	}
	d32, err := RunSinglePrecision(s, channels, w)
	if err != nil {
		t.Fatal(err)
	}
	// Sample-wise agreement to single-precision accuracy (relative to
	// the jammer-scale inputs).
	for b := range d64.Cancelled[0] {
		for i := range d64.Cancelled[0][b] {
			if diff := absC(d64.Cancelled[0][b][i] - d32.Cancelled[0][b][i]); diff > 1e-3 {
				t.Fatalf("band %d sample %d differs by %g between precisions", b, i, diff)
			}
		}
	}
}

func TestSinglePrecisionStillCancels(t *testing.T) {
	// The canceller must survive float32 round-off: cancellation depth
	// stays above 20 dB, the operating regime of the paper's machines.
	s := smallSpec(fft.Radix2)
	scene := testsig.DefaultScene(s.Samples)
	channels := scene.Channels(s.MainChannels)
	w, err := EstimateWeights(s, channels)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunSinglePrecision(s, channels, w)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunSinglePrecision(s, channels, NewWeights(s))
	if err != nil {
		t.Fatal(err)
	}
	depth := TotalPower(ref.Cancelled[0]) / TotalPower(out.Cancelled[0])
	if 10*math.Log10(depth) < 20 {
		t.Fatalf("single-precision cancellation depth %.1f dB, want >= 20", 10*math.Log10(depth))
	}
}

func TestSinglePrecisionRejectsBadInput(t *testing.T) {
	s := smallSpec(fft.Radix2)
	w := NewWeights(s)
	if _, err := RunSinglePrecision(s, make([][]complex128, 1), w); err == nil {
		t.Fatal("wrong channel count accepted")
	}
	bad := make([][]complex128, s.Channels())
	for i := range bad {
		bad[i] = make([]complex128, 10)
	}
	if _, err := RunSinglePrecision(s, bad, w); err == nil {
		t.Fatal("short channels accepted")
	}
}
