package cslc

import (
	"fmt"

	"sigkern/internal/kernels/fft"
)

// plans bundles the forward and inverse transforms of one spec.
type plans struct {
	forward, inverse *fft.Plan
}

func newPlans(s Spec) (plans, error) {
	fwd, err := fft.NewPlan(s.FFTSize, s.Radix, false)
	if err != nil {
		return plans{}, err
	}
	inv, err := fft.NewPlan(s.FFTSize, s.Radix, true)
	if err != nil {
		return plans{}, err
	}
	return plans{forward: fwd, inverse: inv}, nil
}

// RunSinglePrecision executes the timed pipeline entirely in 32-bit
// complex arithmetic — the precision the paper's machines actually used
// ("All computations are done using single-precision floating-point
// operations"). Inputs and weights are rounded to float32 on entry; the
// output is widened back to complex128 for comparison against the
// double-precision pipeline.
func RunSinglePrecision(s Spec, channels [][]complex128, w *Weights) (*Output, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(channels) != s.Channels() {
		return nil, fmt.Errorf("cslc: %d channels, spec wants %d", len(channels), s.Channels())
	}
	fwd, err := newPlans(s)
	if err != nil {
		return nil, err
	}

	// Narrow the weights once.
	w32 := make([][][]complex64, s.MainChannels)
	for m := range w32 {
		w32[m] = make([][]complex64, s.AuxChannels)
		for a := range w32[m] {
			w32[m][a] = make([]complex64, s.FFTSize)
			for k, v := range w.W[m][a] {
				w32[m][a][k] = complex64(v)
			}
		}
	}

	// Forward-transform every channel's sub-bands in float32.
	spectra := make([][][]complex64, s.Channels())
	hop := s.Hop()
	for ch, x := range channels {
		if len(x) != s.Samples {
			return nil, fmt.Errorf("cslc: channel %d has %d samples", ch, len(x))
		}
		spectra[ch] = make([][]complex64, s.SubBands)
		for b := 0; b < s.SubBands; b++ {
			win := make([]complex64, s.FFTSize)
			for i := 0; i < s.FFTSize; i++ {
				win[i] = complex64(x[b*hop+i])
			}
			spec := make([]complex64, s.FFTSize)
			if err := fwd.forward.Transform32(spec, win); err != nil {
				return nil, err
			}
			spectra[ch][b] = spec
		}
	}

	out := &Output{
		Cancelled:        make([][][]complex128, s.MainChannels),
		CancelledSpectra: make([][][]complex128, s.MainChannels),
	}
	aux := spectra[s.MainChannels:]
	for m := 0; m < s.MainChannels; m++ {
		out.Cancelled[m] = make([][]complex128, s.SubBands)
		out.CancelledSpectra[m] = make([][]complex128, s.SubBands)
		for b := 0; b < s.SubBands; b++ {
			spec := make([]complex64, s.FFTSize)
			copy(spec, spectra[m][b])
			for a := 0; a < s.AuxChannels; a++ {
				wa := w32[m][a]
				ab := aux[a][b]
				for k := range spec {
					spec[k] -= wa[k] * ab[k]
				}
			}
			td := make([]complex64, s.FFTSize)
			if err := fwd.inverse.Transform32(td, spec); err != nil {
				return nil, err
			}
			out.CancelledSpectra[m][b] = widen(spec)
			out.Cancelled[m][b] = widen(td)
		}
	}
	return out, nil
}

func widen(x []complex64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex128(v)
	}
	return out
}
