// Package matmul implements dense matrix multiplication, the extension
// kernel the paper points at through its Raw citation ("Several kernels
// including matrix multiplication are implemented on Raw and the results
// are reported in [16]"). Unlike the three headline kernels it has high
// arithmetic intensity (2K ops per output word), so it probes the
// machines' compute organization rather than their memory systems.
//
// Data is float64 holding small integers, so every machine's functional
// result is exact and comparable by checksum.
package matmul

import (
	"fmt"

	"sigkern/internal/sim"
)

// Spec describes one multiplication C[MxN] = A[MxK] * B[KxN].
type Spec struct {
	M, N, K int
	// BlockSize is the tile edge used by blocked implementations.
	BlockSize int
}

// DefaultSpec returns the 256x256x256 instance used by the extension
// experiments: 16.8M multiply-adds, large enough that blocking matters
// and small enough to simulate in seconds.
func DefaultSpec() Spec { return Spec{M: 256, N: 256, K: 256, BlockSize: 64} }

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.M <= 0 || s.N <= 0 || s.K <= 0 {
		return fmt.Errorf("matmul: dimensions %dx%dx%d", s.M, s.N, s.K)
	}
	if s.BlockSize <= 0 {
		return fmt.Errorf("matmul: block size %d", s.BlockSize)
	}
	return nil
}

// MACs returns the multiply-add count.
func (s Spec) MACs() uint64 { return uint64(s.M) * uint64(s.N) * uint64(s.K) }

// Flops returns the real-operation count (a MAC is a multiply and an add).
func (s Spec) Flops() uint64 { return 2 * s.MACs() }

// MinWords returns the compulsory memory traffic in 32-bit words: each
// operand read once and the product written once, the floor a blocked
// implementation with perfect reuse approaches. With the default spec
// the arithmetic intensity Flops/MinWords is ~170, so the analytic
// bound is compute-side on every machine.
func (s Spec) MinWords() uint64 {
	return uint64(s.M)*uint64(s.K) + uint64(s.K)*uint64(s.N) + uint64(s.M)*uint64(s.N)
}

// Mat is a dense row-major float64 matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a Rows x Cols matrix of small deterministic integers
// (|v| <= 8), so products of 256-term dot products stay exactly
// representable.
func NewMat(rows, cols int, seed uint64) *Mat {
	p := sim.NewPRNG(seed)
	m := &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
	for i := range m.Data {
		m.Data[i] = float64(p.Intn(17) - 8)
	}
	return m
}

// ZeroMat returns an all-zero matrix.
func ZeroMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set writes element (r, c).
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Multiply computes dst = a*b with the naive triple loop; it is the
// golden reference.
func Multiply(dst, a, b *Mat) error {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		return fmt.Errorf("matmul: shapes %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range crow {
			crow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return nil
}

// MultiplyBlocked computes dst = a*b in block x block tiles, the access
// order the cache-based and tile-based machines use.
func MultiplyBlocked(dst, a, b *Mat, block int) error {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		return fmt.Errorf("matmul: shapes %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols)
	}
	if block <= 0 {
		return fmt.Errorf("matmul: block %d", block)
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i0 := 0; i0 < a.Rows; i0 += block {
		i1 := min(i0+block, a.Rows)
		for k0 := 0; k0 < a.Cols; k0 += block {
			k1 := min(k0+block, a.Cols)
			for j0 := 0; j0 < b.Cols; j0 += block {
				j1 := min(j0+block, b.Cols)
				for i := i0; i < i1; i++ {
					for k := k0; k < k1; k++ {
						av := a.At(i, k)
						if av == 0 {
							continue
						}
						for j := j0; j < j1; j++ {
							dst.Data[i*dst.Cols+j] += av * b.At(k, j)
						}
					}
				}
			}
		}
	}
	return nil
}

// Checksum digests a matrix for cross-machine verification. Values are
// integers by construction, so the digest is exact.
func Checksum(m *Mat) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(uint32(m.Rows))) * prime
	h = (h ^ uint64(uint32(m.Cols))) * prime
	for _, v := range m.Data {
		h = (h ^ uint64(int64(v))) * prime
	}
	return h
}

// VerifyBlocked runs the functional multiply for a spec and proves the
// blocked variant against the naive reference; machine models call it as
// their functional-verification step.
func VerifyBlocked(spec Spec) error {
	a := NewMat(spec.M, spec.K, 1)
	b := NewMat(spec.K, spec.N, 2)
	ref := ZeroMat(spec.M, spec.N)
	if err := Multiply(ref, a, b); err != nil {
		return err
	}
	got := ZeroMat(spec.M, spec.N)
	if err := MultiplyBlocked(got, a, b, spec.BlockSize); err != nil {
		return err
	}
	if Checksum(got) != Checksum(ref) {
		return fmt.Errorf("matmul: blocked result does not match reference")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
