package matmul

import (
	"testing"
	"testing/quick"
)

func TestDefaultSpec(t *testing.T) {
	s := DefaultSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MACs() != 256*256*256 {
		t.Fatalf("MACs = %d", s.MACs())
	}
	if s.Flops() != 2*s.MACs() {
		t.Fatal("Flops != 2*MACs")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{M: 0, N: 2, K: 2, BlockSize: 2},
		{M: 2, N: 2, K: -1, BlockSize: 2},
		{M: 2, N: 2, K: 2, BlockSize: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d passed", i)
		}
	}
}

func TestMultiplyKnown(t *testing.T) {
	a := ZeroMat(2, 3)
	b := ZeroMat(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	vals := []float64{1, 2, 3, 4, 5, 6}
	copy(a.Data, vals)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := ZeroMat(2, 2)
	if err := Multiply(c, a, b); err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c = %v, want %v", c.Data, want)
		}
	}
}

func TestMultiplyShapeMismatch(t *testing.T) {
	if err := Multiply(ZeroMat(2, 2), ZeroMat(2, 3), ZeroMat(2, 2)); err == nil {
		t.Fatal("inner mismatch accepted")
	}
	if err := MultiplyBlocked(ZeroMat(3, 2), ZeroMat(2, 3), ZeroMat(3, 2), 2); err == nil {
		t.Fatal("output mismatch accepted")
	}
}

func TestBlockedMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{8, 8, 8}, {16, 8, 24}, {33, 17, 9}} {
		a := NewMat(dims[0], dims[2], 1)
		b := NewMat(dims[2], dims[1], 2)
		ref := ZeroMat(dims[0], dims[1])
		if err := Multiply(ref, a, b); err != nil {
			t.Fatal(err)
		}
		for _, block := range []int{1, 4, 7, 64} {
			got := ZeroMat(dims[0], dims[1])
			if err := MultiplyBlocked(got, a, b, block); err != nil {
				t.Fatal(err)
			}
			if Checksum(got) != Checksum(ref) {
				t.Fatalf("dims %v block %d: blocked result differs", dims, block)
			}
		}
	}
}

// Property: (A*B)*e_j equals A*(B*e_j) — associativity against a basis
// vector, checked without a second full multiply.
func TestMultiplyColumnProperty(t *testing.T) {
	a := NewMat(12, 9, 3)
	b := NewMat(9, 7, 4)
	c := ZeroMat(12, 7)
	if err := Multiply(c, a, b); err != nil {
		t.Fatal(err)
	}
	f := func(ji uint8) bool {
		j := int(ji) % 7
		// Column j of C must equal A * (column j of B).
		for i := 0; i < 12; i++ {
			var want float64
			for k := 0; k < 9; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if c.At(i, j) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: multiplying by the identity is the identity.
func TestMultiplyIdentityProperty(t *testing.T) {
	a := NewMat(10, 10, 5)
	id := ZeroMat(10, 10)
	for i := 0; i < 10; i++ {
		id.Set(i, i, 1)
	}
	c := ZeroMat(10, 10)
	if err := Multiply(c, a, id); err != nil {
		t.Fatal(err)
	}
	if Checksum(c) != Checksum(a) {
		t.Fatal("A*I != A")
	}
}

func TestChecksumSensitivity(t *testing.T) {
	a := NewMat(8, 8, 1)
	b := NewMat(8, 8, 1)
	if Checksum(a) != Checksum(b) {
		t.Fatal("identical matrices differ")
	}
	b.Set(0, 0, b.At(0, 0)+1)
	if Checksum(a) == Checksum(b) {
		t.Fatal("changed matrix has same checksum")
	}
}

func BenchmarkMultiplyBlocked256(b *testing.B) {
	a := NewMat(256, 256, 1)
	bb := NewMat(256, 256, 2)
	c := ZeroMat(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := MultiplyBlocked(c, a, bb, 64); err != nil {
			b.Fatal(err)
		}
	}
}
