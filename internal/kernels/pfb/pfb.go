// Package pfb implements a polyphase filter bank channelizer — the
// kernel the paper names as the stage that would precede beam steering
// in a real radar pipeline ("the beam steering kernel would stream its
// inputs from the proceeding kernel in the application (e.g., a
// poly-phase filter bank)").
//
// The channelizer splits a wideband stream into Channels equally spaced
// sub-bands: the input is commutated into Channels polyphase branches,
// each branch runs a Taps-long FIR drawn from a windowed-sinc prototype,
// and an FFT across branches produces one output frame per Channels
// input samples.
package pfb

import (
	"fmt"
	"math"

	"sigkern/internal/kernels/fft"
)

// Spec describes one channelizer.
type Spec struct {
	// Channels is the number of output sub-bands (a power of two, for
	// the FFT across branches).
	Channels int
	// Taps is the FIR length per polyphase branch; the prototype filter
	// has Channels*Taps coefficients.
	Taps int
}

// DefaultSpec returns the channelizer used by the pipeline example:
// 64 channels, 8 taps per branch (a 512-tap prototype).
func DefaultSpec() Spec { return Spec{Channels: 64, Taps: 8} }

// Validate reports whether the spec is realizable.
func (s Spec) Validate() error {
	if s.Channels < 2 || s.Taps < 1 {
		return fmt.Errorf("pfb: %d channels x %d taps", s.Channels, s.Taps)
	}
	if s.Channels&(s.Channels-1) != 0 {
		return fmt.Errorf("pfb: %d channels not a power of two", s.Channels)
	}
	return nil
}

// PrototypeLen returns the prototype filter length.
func (s Spec) PrototypeLen() int { return s.Channels * s.Taps }

// OpsPerFrame returns the real operations per output frame: the FIR
// (4 real ops per complex-sample MAC against a real coefficient) plus
// the cross-branch FFT.
func (s Spec) OpsPerFrame() uint64 {
	fir := uint64(4 * s.Channels * s.Taps)
	plan := fft.MustPlan(s.Channels, fft.Radix2, false)
	return fir + plan.Counts().Flops()
}

// Workload describes a timed channelizer run: the spec plus the input
// length in samples.
type Workload struct {
	Spec
	// Samples is the wideband input length (Channels*1024 by default:
	// about a thousand output frames).
	Samples int
}

// DefaultWorkload returns the timing workload used by the extension
// experiments.
func DefaultWorkload() Workload {
	s := DefaultSpec()
	return Workload{Spec: s, Samples: s.Channels * 1024}
}

// ValidateWorkload checks the spec and that at least one frame fits.
func (w Workload) ValidateWorkload() error {
	if err := w.Spec.Validate(); err != nil {
		return err
	}
	if w.Samples < w.PrototypeLen() {
		return fmt.Errorf("pfb: %d samples shorter than the %d-tap prototype",
			w.Samples, w.PrototypeLen())
	}
	return nil
}

// FrameCount returns the frames the workload produces.
func (w Workload) FrameCount() int {
	return (w.Samples-w.PrototypeLen())/w.Channels + 1
}

// TotalOps returns the workload's real-operation count.
func (w Workload) TotalOps() uint64 {
	return uint64(w.FrameCount()) * w.OpsPerFrame()
}

// Words returns the workload's streaming memory traffic in 32-bit
// words: every complex input sample read once (two words) and every
// complex output-frame bin written once (two words). The prototype
// coefficients are reused across frames and excluded, matching the
// compulsory-traffic convention of the analytic model.
func (w Workload) Words() uint64 {
	in := 2 * uint64(w.Samples)
	out := 2 * uint64(w.FrameCount()) * uint64(w.Channels)
	return in + out
}

// Verify channelizes a deterministic two-tone input and proves the fast
// path against DirectFrame on a sample of frames; machine models use it
// as their functional-verification step.
func (w Workload) Verify() error {
	b, err := New(w.Spec)
	if err != nil {
		return err
	}
	x := make([]complex128, w.Samples)
	f1 := (float64(w.Channels/4) + 0.2) / float64(w.Channels)
	f2 := float64(w.Channels/2) / float64(w.Channels)
	for i := range x {
		a1 := 2 * math.Pi * f1 * float64(i)
		a2 := 2 * math.Pi * f2 * float64(i)
		x[i] = complex(math.Cos(a1)+0.5*math.Cos(a2), math.Sin(a1)+0.5*math.Sin(a2))
	}
	frames, err := b.Process(x)
	if err != nil {
		return err
	}
	for _, f := range []int{0, len(frames) / 2, len(frames) - 1} {
		want, err := b.DirectFrame(x, f)
		if err != nil {
			return err
		}
		for c := range want {
			d := frames[f][c] - want[c]
			if real(d)*real(d)+imag(d)*imag(d) > 1e-16 {
				return fmt.Errorf("pfb: frame %d channel %d mismatch", f, c)
			}
		}
	}
	return nil
}

// Bank is a configured channelizer. It is not safe for concurrent use.
type Bank struct {
	spec  Spec
	proto []float64 // prototype filter, windowed sinc
	plan  *fft.Plan
}

// New builds a channelizer with a Hann-windowed sinc prototype whose
// cutoff is half a channel width.
func New(spec Spec) (*Bank, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.PrototypeLen()
	proto := make([]float64, n)
	cutoff := 1.0 / float64(spec.Channels)
	for i := 0; i < n; i++ {
		t := float64(i) - float64(n-1)/2
		// sinc(cutoff * t), normalized so each branch sums to ~1.
		var s float64
		if t == 0 {
			s = cutoff
		} else {
			s = math.Sin(math.Pi*cutoff*t) / (math.Pi * t)
		}
		w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		proto[i] = s * w * float64(spec.Channels)
	}
	plan, err := fft.NewPlan(spec.Channels, fft.Radix2, false)
	if err != nil {
		return nil, err
	}
	return &Bank{spec: spec, proto: proto, plan: plan}, nil
}

// Spec returns the bank's configuration.
func (b *Bank) Spec() Spec { return b.spec }

// Frames returns how many output frames Process will produce for n input
// samples.
func (b *Bank) Frames(n int) int {
	usable := n - b.spec.PrototypeLen()
	if usable < 0 {
		return 0
	}
	return usable/b.spec.Channels + 1
}

// Process channelizes x: the result is indexed [frame][channel].
func (b *Bank) Process(x []complex128) ([][]complex128, error) {
	m := b.spec.Channels
	taps := b.spec.Taps
	frames := b.Frames(len(x))
	if frames == 0 {
		return nil, fmt.Errorf("pfb: need at least %d samples, got %d", b.spec.PrototypeLen(), len(x))
	}
	out := make([][]complex128, frames)
	branch := make([]complex128, m)
	for f := 0; f < frames; f++ {
		base := f * m
		// Polyphase FIR: branch p filters the samples x[base+p],
		// x[base+p+M], ... with every M-th prototype coefficient.
		for p := 0; p < m; p++ {
			var acc complex128
			for t := 0; t < taps; t++ {
				acc += x[base+p+t*m] * complex(b.proto[p+t*m], 0)
			}
			branch[p] = acc
		}
		frame := make([]complex128, m)
		if err := b.plan.Transform(frame, branch); err != nil {
			return nil, err
		}
		out[f] = frame
	}
	return out, nil
}

// ChannelOf returns the output channel a normalized frequency f in
// [0, 1) lands in.
func (b *Bank) ChannelOf(f float64) int {
	c := int(math.Mod(f, 1)*float64(b.spec.Channels) + 0.5)
	return c % b.spec.Channels
}

// DirectFrame computes one frame by the defining formula (no polyphase
// factorization): channel c of frame f is
// sum_i proto[i] * x[f*M+i] * exp(-2*pi*j*c*((f*M+i) offset))
// restricted to the branch structure. It is the golden reference for
// Process and is O(M^2 * taps).
func (b *Bank) DirectFrame(x []complex128, f int) ([]complex128, error) {
	m := b.spec.Channels
	if (f+b.spec.Taps)*m > len(x)+m-1 {
		return nil, fmt.Errorf("pfb: frame %d out of range", f)
	}
	base := f * m
	// Branch sums, then an explicit DFT (the reference avoids the fast
	// transform path entirely).
	branch := make([]complex128, m)
	for p := 0; p < m; p++ {
		var acc complex128
		for t := 0; t < b.spec.Taps; t++ {
			acc += x[base+p+t*m] * complex(b.proto[p+t*m], 0)
		}
		branch[p] = acc
	}
	return fft.NaiveDFT(branch), nil
}
