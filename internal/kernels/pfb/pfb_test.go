package pfb

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Channels: 0, Taps: 4},
		{Channels: 3, Taps: 4}, // not a power of two
		{Channels: 8, Taps: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d passed", i)
		}
	}
}

func tone(n int, f float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * f * float64(i)
		x[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	return x
}

func TestProcessMatchesDirect(t *testing.T) {
	b, err := New(Spec{Channels: 16, Taps: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := tone(16*12, 0.13)
	got, err := b.Process(x)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 3; f++ {
		want, err := b.DirectFrame(x, f)
		if err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if cmplx.Abs(got[f][c]-want[c]) > 1e-9 {
				t.Fatalf("frame %d channel %d: %v vs %v", f, c, got[f][c], want[c])
			}
		}
	}
}

func TestToneLandsInItsChannel(t *testing.T) {
	b, err := New(DefaultSpec()) // 64 channels
	if err != nil {
		t.Fatal(err)
	}
	// A tone centred in channel 9.
	f := (9.0 + 0.0) / 64.0
	x := tone(64*40, f)
	frames, err := b.Process(x)
	if err != nil {
		t.Fatal(err)
	}
	// Use a steady-state frame (after the filter fills).
	frame := frames[len(frames)/2]
	want := b.ChannelOf(f)
	best, bestMag := 0, 0.0
	var total float64
	for c, v := range frame {
		mag := cmplx.Abs(v)
		total += mag * mag
		if mag > bestMag {
			best, bestMag = c, mag
		}
	}
	if best != want {
		t.Fatalf("tone at f=%.4f peaked in channel %d, want %d", f, best, want)
	}
	// Channel selectivity: the peak channel holds nearly all the energy.
	if frac := bestMag * bestMag / total; frac < 0.9 {
		t.Fatalf("peak channel holds %.2f of energy, want > 0.9", frac)
	}
}

func TestChannelSeparation(t *testing.T) {
	// Two tones in different channels must not leak into each other.
	b, err := New(Spec{Channels: 32, Taps: 8})
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := 5.0/32.0, 19.0/32.0
	x1 := tone(32*40, f1)
	x2 := tone(32*40, f2)
	x := make([]complex128, len(x1))
	for i := range x {
		x[i] = x1[i] + 2*x2[i]
	}
	frames, err := b.Process(x)
	if err != nil {
		t.Fatal(err)
	}
	frame := frames[len(frames)/2]
	c1, c2 := b.ChannelOf(f1), b.ChannelOf(f2)
	m1, m2 := cmplx.Abs(frame[c1]), cmplx.Abs(frame[c2])
	if m1 < 1e-3 || m2 < 1e-3 {
		t.Fatalf("tones missing from their channels: %g, %g", m1, m2)
	}
	// Amplitude ratio preserved (~2x) within filter ripple.
	if r := m2 / m1; r < 1.6 || r > 2.4 {
		t.Fatalf("amplitude ratio %.2f, want ~2", r)
	}
	// A far-away channel is quiet.
	far := (c1 + 10) % 32
	if far == c2 {
		far = (far + 3) % 32
	}
	if leak := cmplx.Abs(frame[far]); leak > 0.05*m1 {
		t.Fatalf("leakage %.4f into channel %d", leak, far)
	}
}

func TestFramesAccounting(t *testing.T) {
	b, err := New(Spec{Channels: 8, Taps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Frames(31) != 0 {
		t.Fatal("short input should produce no frames")
	}
	if got := b.Frames(32); got != 1 {
		t.Fatalf("Frames(32) = %d, want 1", got)
	}
	if got := b.Frames(48); got != 3 {
		t.Fatalf("Frames(48) = %d, want 3", got)
	}
	if _, err := b.Process(make([]complex128, 10)); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestOpsPerFrame(t *testing.T) {
	s := Spec{Channels: 64, Taps: 8}
	ops := s.OpsPerFrame()
	// FIR: 4*64*8 = 2048; FFT-64 radix-2: (64/2)*6 butterflies * 10 = 1920.
	if ops != 2048+1920 {
		t.Fatalf("OpsPerFrame = %d, want 3968", ops)
	}
}

func BenchmarkProcess64x8(b *testing.B) {
	bank, err := New(DefaultSpec())
	if err != nil {
		b.Fatal(err)
	}
	x := tone(64*256, 0.21)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bank.Process(x); err != nil {
			b.Fatal(err)
		}
	}
}
