// Package testsig generates the deterministic synthetic workloads that
// stand in for the paper's radar data: matrices for the corner turn,
// multi-channel sampled signals with injected jammers for the CSLC, and
// calibration tables for beam steering.
//
// The paper's kernels ran on classified/unavailable radar data sets; all
// three kernels are data-oblivious (control flow never depends on sample
// values), so deterministic synthetic data exercises identical code
// paths. Seeds are fixed so every experiment is reproducible bit-for-bit.
package testsig

import (
	"math"
	"sync"

	"sigkern/internal/sim"
)

// Matrix is a dense row-major matrix of 32-bit elements, the corner-turn
// operand ("1024 x 1024 with 4-byte elements").
type Matrix struct {
	Rows, Cols int
	Data       []int32
}

// NewMatrix returns a Rows x Cols matrix filled with a deterministic
// pattern derived from seed.
func NewMatrix(rows, cols int, seed uint64) *Matrix {
	m := &Matrix{Rows: rows, Cols: cols, Data: make([]int32, rows*cols)}
	m.Fill(seed)
	return m
}

// ZeroMatrix returns an all-zero Rows x Cols matrix.
func ZeroMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]int32, rows*cols)}
}

// matrixPool recycles matrix backings between simulator runs: every
// corner-turn run stages three multi-megabyte matrices that would
// otherwise be reallocated per job.
var matrixPool = sync.Pool{New: func() any { return new(Matrix) }}

// GetMatrix returns a Rows x Cols matrix drawn from the pool; its
// contents are unspecified (call Fill or Zero before reading). Release
// it when done to recycle the backing.
func GetMatrix(rows, cols int) *Matrix {
	m := matrixPool.Get().(*Matrix)
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]int32, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// Release returns the matrix to the pool. The caller must not touch it
// (or any slice of its Data) afterwards.
func (m *Matrix) Release() { matrixPool.Put(m) }

// Fill overwrites the matrix with the deterministic pattern derived
// from seed (the same pattern NewMatrix produces).
func (m *Matrix) Fill(seed uint64) {
	p := sim.NewPRNG(seed)
	for i := range m.Data {
		m.Data[i] = int32(p.Uint64())
	}
}

// Zero overwrites every element with zero.
func (m *Matrix) Zero() {
	clear(m.Data)
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) int32 { return m.Data[r*m.Cols+c] }

// Set writes element (r, c).
func (m *Matrix) Set(r, c int, v int32) { m.Data[r*m.Cols+c] = v }

// Bytes returns the matrix footprint in bytes.
func (m *Matrix) Bytes() int { return len(m.Data) * 4 }

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if m.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// RadarScene describes the synthetic CSLC input: a desired target return
// plus jammer interference, received on main and auxiliary channels.
type RadarScene struct {
	// Samples per channel (8192 in the paper).
	Samples int
	// TargetFreq and JammerFreq are normalized frequencies in (0, 0.5).
	TargetFreq, JammerFreq float64
	// TargetAmp and JammerAmp are linear amplitudes.
	TargetAmp, JammerAmp float64
	// NoiseAmp is the per-channel white-noise amplitude.
	NoiseAmp float64
	// AuxCoupling is the complex gain of the jammer as seen on each
	// auxiliary channel relative to the main channels (what the canceller
	// must estimate implicitly through its weights).
	AuxCoupling []complex128
	// Seed drives the deterministic noise generator.
	Seed uint64
}

// DefaultScene returns the scene used throughout the examples: a weak
// target 40 dB below a strong jammer, the regime where a side-lobe
// canceller matters.
func DefaultScene(samples int) RadarScene {
	return RadarScene{
		Samples:    samples,
		TargetFreq: 0.11, JammerFreq: 0.27,
		TargetAmp: 0.01, JammerAmp: 1.0, NoiseAmp: 0.001,
		AuxCoupling: []complex128{complex(0.8, 0.3), complex(-0.5, 0.6)},
		Seed:        1,
	}
}

// Channels synthesizes the channel set: nMain main channels (target +
// jammer + noise) followed by len(AuxCoupling) auxiliary channels
// (coupled jammer + noise, no target — the aux antennas point at the
// jammer, not the target).
func (s RadarScene) Channels(nMain int) [][]complex128 {
	p := sim.NewPRNG(s.Seed)
	nAux := len(s.AuxCoupling)
	chans := make([][]complex128, nMain+nAux)
	backing := make([]complex128, (nMain+nAux)*s.Samples)
	for i := range chans {
		chans[i], backing = backing[:s.Samples:s.Samples], backing[s.Samples:]
	}
	for t := 0; t < s.Samples; t++ {
		jr, ji := math.Sincos(2 * math.Pi * s.JammerFreq * float64(t))
		jam := complex(ji, jr) * complex(s.JammerAmp, 0)
		tr, ti := math.Sincos(2 * math.Pi * s.TargetFreq * float64(t))
		tgt := complex(ti, tr) * complex(s.TargetAmp, 0)
		for m := 0; m < nMain; m++ {
			noise := complex(p.NormFloat64(), p.NormFloat64()) * complex(s.NoiseAmp, 0)
			chans[m][t] = tgt + jam + noise
		}
		for a, g := range s.AuxCoupling {
			noise := complex(p.NormFloat64(), p.NormFloat64()) * complex(s.NoiseAmp, 0)
			chans[nMain+a][t] = jam*g + noise
		}
	}
	return chans
}

// Power returns the mean squared magnitude of x.
func Power(x []complex128) float64 {
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s / float64(len(x))
}

// BeamTables holds the calibration tables that beam steering reads: one
// entry per antenna element and one per steering direction. "Large tables
// are used for calibration tables" — these are the memory-bandwidth
// stressors of the kernel.
type BeamTables struct {
	// ElementCal is the per-element phase calibration (fixed-point).
	// It is the first of the kernel's two per-output table reads.
	ElementCal []int32
	// ElementGrad is the per-element phase-gradient trim, the second
	// per-output table read.
	ElementGrad []int32
	// DirSteer is the per-direction steering phase offset (small,
	// register-resident during the inner loop).
	DirSteer []int32
	// DwellBase is the per-dwell base phase (register-resident).
	DwellBase []int32
}

// NewBeamTables builds deterministic tables for the given geometry.
func NewBeamTables(elements, directions, dwells int, seed uint64) *BeamTables {
	p := sim.NewPRNG(seed)
	t := &BeamTables{
		ElementCal:  make([]int32, elements),
		ElementGrad: make([]int32, elements),
		DirSteer:    make([]int32, directions),
		DwellBase:   make([]int32, dwells),
	}
	for i := range t.ElementCal {
		t.ElementCal[i] = int32(p.Uint64() & 0xFFFF)
	}
	for i := range t.ElementGrad {
		t.ElementGrad[i] = int32(p.Uint64() & 0xFFF)
	}
	for i := range t.DirSteer {
		t.DirSteer[i] = int32(p.Uint64() & 0xFFFFF)
	}
	for i := range t.DwellBase {
		t.DwellBase[i] = int32(p.Uint64() & 0xFFFF)
	}
	return t
}
