package testsig

import (
	"math"
	"testing"
)

func TestNewMatrixDeterministic(t *testing.T) {
	a := NewMatrix(16, 16, 5)
	b := NewMatrix(16, 16, 5)
	if !a.Equal(b) {
		t.Fatal("same seed produced different matrices")
	}
	c := NewMatrix(16, 16, 6)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := ZeroMatrix(3, 5)
	m.Set(2, 4, 42)
	if m.At(2, 4) != 42 {
		t.Fatalf("At(2,4) = %d", m.At(2, 4))
	}
	if m.Bytes() != 3*5*4 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestMatrixEqualShape(t *testing.T) {
	a := ZeroMatrix(2, 3)
	b := ZeroMatrix(3, 2)
	if a.Equal(b) {
		t.Fatal("different shapes compared equal")
	}
}

func TestSceneChannels(t *testing.T) {
	s := DefaultScene(1024)
	ch := s.Channels(2)
	if len(ch) != 4 {
		t.Fatalf("channels = %d, want 2 main + 2 aux", len(ch))
	}
	for i, c := range ch {
		if len(c) != 1024 {
			t.Fatalf("channel %d has %d samples", i, len(c))
		}
	}
	// Main channels are jammer-dominated (jammer amp 1 vs target 0.01).
	mainPow := Power(ch[0])
	if mainPow < 0.5 || mainPow > 2 {
		t.Fatalf("main power = %v, want ~1 (jammer dominated)", mainPow)
	}
	// Aux channels carry the coupled jammer: power ~ |g|^2.
	g := s.AuxCoupling[0]
	want := real(g)*real(g) + imag(g)*imag(g)
	if p := Power(ch[2]); math.Abs(p-want) > 0.2*want+0.01 {
		t.Fatalf("aux0 power = %v, want ~%v", p, want)
	}
}

func TestSceneDeterministic(t *testing.T) {
	a := DefaultScene(256).Channels(2)
	b := DefaultScene(256).Channels(2)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("scene generation not deterministic")
			}
		}
	}
}

func TestPower(t *testing.T) {
	x := []complex128{complex(3, 4), complex(0, 0)}
	if p := Power(x); p != 12.5 {
		t.Fatalf("Power = %v, want 12.5", p)
	}
}

func TestNewBeamTablesSizes(t *testing.T) {
	tb := NewBeamTables(1608, 4, 8, 7)
	if len(tb.ElementCal) != 1608 || len(tb.DirSteer) != 4 || len(tb.DwellBase) != 8 {
		t.Fatalf("table sizes %d/%d/%d", len(tb.ElementCal), len(tb.DirSteer), len(tb.DwellBase))
	}
	tb2 := NewBeamTables(1608, 4, 8, 7)
	for i := range tb.ElementCal {
		if tb.ElementCal[i] != tb2.ElementCal[i] {
			t.Fatal("tables not deterministic")
		}
	}
}
