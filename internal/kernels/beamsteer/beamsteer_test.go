package beamsteer

import (
	"testing"
	"testing/quick"

	"sigkern/internal/kernels/testsig"
)

func tables(spec Spec) *testsig.BeamTables {
	return testsig.NewBeamTables(spec.Elements, spec.Directions, spec.Dwells, 7)
}

func TestPaperSpec(t *testing.T) {
	s := PaperSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Elements != 1608 || s.Directions != 4 {
		t.Fatalf("paper geometry wrong: %+v", s)
	}
	if s.Outputs() != 1608*4*8 {
		t.Fatalf("Outputs = %d", s.Outputs())
	}
	if s.OpsPerOutput() != 6 || s.MemPerOutput() != 3 {
		t.Fatal("per-output op mix does not match the paper (5 adds + 1 shift, 2R+1W)")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Elements: 0, Directions: 4, Dwells: 1},
		{Elements: 4, Directions: 0, Dwells: 1},
		{Elements: 4, Directions: 4, Dwells: 0},
		{Elements: 4, Directions: 4, Dwells: 1, ShiftBits: 40},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d passed validation", i)
		}
	}
}

func TestSteerShape(t *testing.T) {
	s := Spec{Elements: 10, Directions: 3, Dwells: 2, ShiftBits: 1}
	out, err := Steer(s, tables(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 3 || len(out[0][0]) != 10 {
		t.Fatalf("shape = %d/%d/%d", len(out), len(out[0]), len(out[0][0]))
	}
}

func TestSteerTablesTooSmall(t *testing.T) {
	s := Spec{Elements: 10, Directions: 3, Dwells: 2}
	small := testsig.NewBeamTables(5, 3, 2, 1)
	if _, err := Steer(s, small); err == nil {
		t.Fatal("undersized tables not rejected")
	}
}

func TestSteerMatchesSteerOne(t *testing.T) {
	s := Spec{Elements: 32, Directions: 4, Dwells: 3, ShiftBits: 2, Rounding: 2}
	tb := tables(s)
	out, err := Steer(s, tb)
	if err != nil {
		t.Fatal(err)
	}
	for dw := 0; dw < s.Dwells; dw++ {
		for d := 0; d < s.Directions; d++ {
			for e := 0; e < s.Elements; e++ {
				if got, want := out[dw][d][e], SteerOne(s, tb, dw, d, e); got != want {
					t.Fatalf("out[%d][%d][%d] = %d, want %d", dw, d, e, got, want)
				}
			}
		}
	}
}

func TestKnownValue(t *testing.T) {
	s := Spec{Elements: 1, Directions: 1, Dwells: 1, ShiftBits: 1, Rounding: 1}
	tb := &testsig.BeamTables{
		ElementCal: []int32{100}, ElementGrad: []int32{10},
		DirSteer: []int32{200}, DwellBase: []int32{50},
	}
	out, err := Steer(s, tb)
	if err != nil {
		t.Fatal(err)
	}
	// (100+10+200+50+1) >> 1 = 361 >> 1 = 180.
	if out[0][0][0] != 180 {
		t.Fatalf("value = %d, want 180", out[0][0][0])
	}
}

// Property: the per-element phase difference within one beam equals the
// difference of the element tables — direction and dwell terms cancel.
func TestGradientProperty(t *testing.T) {
	s := Spec{Elements: 64, Directions: 2, Dwells: 2, ShiftBits: 0}
	tb := tables(s)
	out, err := Steer(s, tb)
	if err != nil {
		t.Fatal(err)
	}
	f := func(ei, di, dwi uint8) bool {
		e := int(ei)%(s.Elements-1) + 1
		d := int(di) % s.Directions
		dw := int(dwi) % s.Dwells
		diff := out[dw][d][e] - out[dw][d][e-1]
		tabDiff := (tb.ElementCal[e] + tb.ElementGrad[e]) -
			(tb.ElementCal[e-1] + tb.ElementGrad[e-1])
		return diff == tabDiff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: two directions with equal steer entries give equal beams.
func TestDirectionSeparationProperty(t *testing.T) {
	s := Spec{Elements: 16, Directions: 2, Dwells: 1, ShiftBits: 0}
	tb := tables(s)
	tb.DirSteer[1] = tb.DirSteer[0]
	out, err := Steer(s, tb)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < s.Elements; e++ {
		if out[0][0][e] != out[0][1][e] {
			t.Fatal("equal steering entries produced different beams")
		}
	}
}

func TestChecksumSensitivity(t *testing.T) {
	s := Spec{Elements: 8, Directions: 2, Dwells: 2, ShiftBits: 0}
	tb := tables(s)
	a, _ := Steer(s, tb)
	b, _ := Steer(s, tb)
	if Checksum(a) != Checksum(b) {
		t.Fatal("deterministic steer gave different checksums")
	}
	b[1][1][3]++
	if Checksum(a) == Checksum(b) {
		t.Fatal("checksum missed a changed output")
	}
}

func BenchmarkSteerPaperSpec(b *testing.B) {
	s := PaperSpec()
	tb := testsig.NewBeamTables(s.Elements, s.Directions, s.Dwells, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Steer(s, tb); err != nil {
			b.Fatal(err)
		}
	}
}
