// Package beamsteer implements the beam-steering kernel: computing the
// phase command for every element of a phased-array antenna, for every
// steering direction, every dwell. Per the paper the kernel performs
// "2 reads and 1 write" and "5 additions and 1 shift" per output datum,
// with the reads hitting large per-element calibration tables — so it
// stresses memory bandwidth and latency rather than arithmetic.
//
// The concrete arithmetic realizes exactly that operation mix. Per
// output, with the direction/dwell terms held in registers:
//
//	t1  = cal[e] + grad[e]        // add 1; the two table reads
//	t2  = t1 + steer[d]           // add 2
//	t3  = t2 + dwellBase[dw]      // add 3
//	t4  = t3 + rounding           // add 4
//	out = t4 >> ShiftBits         // shift; then 1 table write
//	e++                           // add 5 (induction)
package beamsteer

import (
	"fmt"

	"sigkern/internal/kernels/testsig"
)

// Spec describes one beam-steering problem instance.
type Spec struct {
	// Elements is the number of antenna elements (1608 in the paper).
	Elements int
	// Directions is the number of beams steered per dwell (4).
	Directions int
	// Dwells is the number of dwells in one processing interval. The
	// paper does not state it; 8 makes the published per-machine cycle
	// breakdowns internally consistent (see DESIGN.md).
	Dwells int
	// ShiftBits is the fixed-point scaling shift applied to each phase.
	ShiftBits uint
	// Rounding is the fixed-point rounding constant.
	Rounding int32
}

// PaperSpec returns the paper's instance: 1608 elements, 4 directions,
// 8 dwells.
func PaperSpec() Spec {
	return Spec{Elements: 1608, Directions: 4, Dwells: 8, ShiftBits: 2, Rounding: 2}
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Elements <= 0 || s.Directions <= 0 || s.Dwells <= 0 {
		return fmt.Errorf("beamsteer: non-positive geometry %d/%d/%d",
			s.Elements, s.Directions, s.Dwells)
	}
	if s.ShiftBits > 31 {
		return fmt.Errorf("beamsteer: shift %d out of range", s.ShiftBits)
	}
	return nil
}

// Outputs returns the number of phase outputs per processing interval.
func (s Spec) Outputs() uint64 {
	return uint64(s.Elements) * uint64(s.Directions) * uint64(s.Dwells)
}

// OpsPerOutput returns the arithmetic operation count per output
// (5 adds + 1 shift, induction included).
func (s Spec) OpsPerOutput() uint64 { return 6 }

// MemPerOutput returns the memory accesses per output (2 reads + 1 write).
func (s Spec) MemPerOutput() uint64 { return 3 }

// Steer computes every phase output. The result is indexed
// [dwell][direction][element]. It is the golden reference implementation;
// machine models run the same arithmetic in their own access orders.
func Steer(spec Spec, tables *testsig.BeamTables) ([][][]int32, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(tables.ElementCal) < spec.Elements ||
		len(tables.ElementGrad) < spec.Elements ||
		len(tables.DirSteer) < spec.Directions ||
		len(tables.DwellBase) < spec.Dwells {
		return nil, fmt.Errorf("beamsteer: tables too small for spec (%d/%d/%d/%d)",
			len(tables.ElementCal), len(tables.ElementGrad),
			len(tables.DirSteer), len(tables.DwellBase))
	}
	out := make([][][]int32, spec.Dwells)
	for dw := 0; dw < spec.Dwells; dw++ {
		out[dw] = make([][]int32, spec.Directions)
		for d := 0; d < spec.Directions; d++ {
			out[dw][d] = make([]int32, spec.Elements)
			reg := tables.DirSteer[d] + tables.DwellBase[dw] + spec.Rounding
			for e := 0; e < spec.Elements; e++ {
				t1 := tables.ElementCal[e] + tables.ElementGrad[e]
				out[dw][d][e] = (t1 + reg) >> spec.ShiftBits
			}
		}
	}
	return out, nil
}

// SteerOne computes a single output; used by tests and by machine models
// that verify single lanes.
func SteerOne(spec Spec, tables *testsig.BeamTables, dw, d, e int) int32 {
	t := tables.ElementCal[e] + tables.ElementGrad[e] +
		tables.DirSteer[d] + tables.DwellBase[dw] + spec.Rounding
	return t >> spec.ShiftBits
}

// Checksum digests the full output cube for cross-machine verification.
func Checksum(out [][][]int32) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, dw := range out {
		for _, dir := range dw {
			for _, v := range dir {
				h = (h ^ uint64(uint32(v))) * prime
			}
		}
	}
	return h
}
