package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

// FuzzTransformParseval checks the energy identity and round trip on
// arbitrary inputs. The seeds run in every `go test`; `go test -fuzz`
// explores further.
func FuzzTransformParseval(f *testing.F) {
	f.Add(uint64(1), int16(4), int16(-3))
	f.Add(uint64(99), int16(0), int16(0))
	f.Add(uint64(12345), int16(32000), int16(-32000))
	fwd := MustPlan(128, MixedRadix42, false)
	inv := MustPlan(128, MixedRadix42, true)
	f.Fuzz(func(t *testing.T, seed uint64, re, im int16) {
		x := randomSignal(128, seed)
		// Inject one adversarial sample.
		x[int(seed%128)] = complex(float64(re)/256, float64(im)/256)
		X := make([]complex128, 128)
		if err := fwd.Transform(X, x); err != nil {
			t.Fatal(err)
		}
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		if math.Abs(et-ef/128) > 1e-6*(1+et) {
			t.Fatalf("Parseval violated: time %g vs freq/N %g", et, ef/128)
		}
		back := make([]complex128, 128)
		if err := inv.Transform(back, X); err != nil {
			t.Fatal(err)
		}
		for i := range back {
			if cmplx.Abs(back[i]-x[i]) > 1e-8*(1+cmplx.Abs(x[i])) {
				t.Fatalf("round trip diverged at %d", i)
			}
		}
	})
}
