// Package fft implements the fast Fourier transforms used by the CSLC
// kernel: radix-2, radix-4 (for power-of-four lengths), and the
// mixed-radix decomposition the paper uses for N=128 ("three radix-4
// stages and one radix-2 stage"). It also exposes exact operation counts
// per plan, which the machine timing models consume, and a naive O(N^2)
// DFT as the golden reference for tests.
//
// The radix choice mirrors the paper's platform-specific decisions: the
// hand-optimized VIRAM and Imagine implementations use the mixed
// radix-4/radix-2 plan (fewer operations), while Raw uses plain radix-2
// because the radix-4 inner loop spilled registers on the tile processor
// ("the number of operations ... in the radix-2 FFT is about 1.5x the
// number in the radix-4 FFT").
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Radix selects the FFT decomposition.
type Radix int

const (
	// Radix2 is the classic radix-2 decimation-in-time FFT.
	Radix2 Radix = 2
	// Radix4 is a radix-4 decimation-in-time FFT; N must be a power of 4.
	Radix4 Radix = 4
	// MixedRadix42 handles N = 2 * 4^k with one radix-2 split over two
	// radix-4 sub-transforms — the paper's 128-point plan.
	MixedRadix42 Radix = 42
)

// String returns a human-readable radix name.
func (r Radix) String() string {
	switch r {
	case Radix2:
		return "radix-2"
	case Radix4:
		return "radix-4"
	case MixedRadix42:
		return "mixed radix-4/2"
	default:
		return fmt.Sprintf("radix(%d)", int(r))
	}
}

// BestRadix returns the cheapest decomposition this package implements
// for a power-of-two length: radix-4 when n is a power of four, the
// mixed radix-4/2 plan when n is twice a power of four (the paper's
// N=128 case), and radix-2 otherwise.
func BestRadix(n int) Radix {
	if n < 2 || n&(n-1) != 0 {
		return Radix2
	}
	log2n := 0
	for t := n; t > 1; t >>= 1 {
		log2n++
	}
	if log2n%2 == 0 {
		return Radix4
	}
	if n >= 8 {
		return MixedRadix42
	}
	return Radix2
}

// Counts tallies the real-arithmetic and memory operations of one
// transform. Machine models use these to generate instruction streams.
type Counts struct {
	// Adds and Muls are real floating-point additions/subtractions and
	// multiplications.
	Adds, Muls uint64
	// Loads and Stores are 32-bit word accesses (each complex sample is
	// two words).
	Loads, Stores uint64
	// Shuffles counts data-reordering element moves (bit/digit reversal
	// and butterfly exchanges), which cost instructions on vector and
	// stream machines even though they do no arithmetic.
	Shuffles uint64
}

// Flops returns total real floating-point operations.
func (c Counts) Flops() uint64 { return c.Adds + c.Muls }

// Add returns the element-wise sum of two Counts.
func (c Counts) Add(o Counts) Counts {
	return Counts{
		Adds: c.Adds + o.Adds, Muls: c.Muls + o.Muls,
		Loads: c.Loads + o.Loads, Stores: c.Stores + o.Stores,
		Shuffles: c.Shuffles + o.Shuffles,
	}
}

// Scale returns the Counts multiplied by n.
func (c Counts) Scale(n uint64) Counts {
	return Counts{
		Adds: c.Adds * n, Muls: c.Muls * n,
		Loads: c.Loads * n, Stores: c.Stores * n,
		Shuffles: c.Shuffles * n,
	}
}

// Plan holds precomputed twiddle factors for one transform length,
// direction, and radix. A Plan is immutable after construction and safe
// for concurrent Transform calls; NewPlan returns a shared cached
// instance per (n, radix, inverse), so the trigonometric tables are
// computed once per shape no matter how many simulator runs ask.
type Plan struct {
	n       int
	radix   Radix
	inverse bool
	tw      []complex128 // forward twiddles w^k = exp(-2*pi*i*k/n)
	subTw   []complex128 // mixed-radix sub-transform twiddles (period n/2)
	counts  Counts
}

// planKey indexes the immutable-plan cache.
type planKey struct {
	n       int
	radix   Radix
	inverse bool
}

var planCache sync.Map // planKey -> *Plan

// mixedScratch pools the even/odd deinterleave buffers of the mixed
// radix-4/2 transform (one 2*(n/2) slice per in-flight Transform).
var mixedScratch = sync.Pool{New: func() any { return new([]complex128) }}

// NewPlan builds a plan for length n. It returns an error when n is not
// compatible with the radix (radix-2: power of two; radix-4: power of
// four; mixed: 2 * power of four).
func NewPlan(n int, radix Radix, inverse bool) (*Plan, error) {
	if n < 2 {
		return nil, fmt.Errorf("fft: length %d too short", n)
	}
	if bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("fft: length %d not a power of two", n)
	}
	log2n := bits.TrailingZeros(uint(n))
	switch radix {
	case Radix2:
	case Radix4:
		if log2n%2 != 0 {
			return nil, fmt.Errorf("fft: length %d not a power of 4 for %s", n, radix)
		}
	case MixedRadix42:
		if log2n%2 != 1 {
			return nil, fmt.Errorf("fft: length %d not 2*4^k for %s", n, radix)
		}
	default:
		return nil, fmt.Errorf("fft: unknown radix %d", int(radix))
	}
	key := planKey{n: n, radix: radix, inverse: inverse}
	if cached, ok := planCache.Load(key); ok {
		return cached.(*Plan), nil
	}
	p := &Plan{n: n, radix: radix, inverse: inverse}
	p.tw = make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		ang := sign * 2 * math.Pi * float64(k) / float64(n)
		p.tw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	if radix == MixedRadix42 {
		// Sub-transform twiddles have period n/2; sample every other
		// entry of the full table once instead of per Transform.
		p.subTw = make([]complex128, n/2)
		for k := range p.subTw {
			p.subTw[k] = p.tw[2*k]
		}
	}
	p.counts = p.countOps()
	// Two racing builders compute bit-identical tables; keep the first.
	shared, _ := planCache.LoadOrStore(key, p)
	return shared.(*Plan), nil
}

// MustPlan is NewPlan for known-good constant arguments; it panics on error.
func MustPlan(n int, radix Radix, inverse bool) *Plan {
	p, err := NewPlan(n, radix, inverse)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Radix returns the plan's decomposition.
func (p *Plan) Radix() Radix { return p.radix }

// Inverse reports whether the plan computes the inverse transform.
func (p *Plan) Inverse() bool { return p.inverse }

// Counts returns the exact operation counts of one transform.
func (p *Plan) Counts() Counts { return p.counts }

// Transform computes the DFT of src into dst (which may alias src). The
// inverse plan applies the conventional 1/N scaling. It returns an error
// if the slice lengths do not match the plan.
func (p *Plan) Transform(dst, src []complex128) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("fft: plan length %d, got src %d dst %d", p.n, len(src), len(dst))
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	switch p.radix {
	case Radix2:
		p.radix2(dst)
	case Radix4:
		p.radix4(dst, p.tw, p.n)
	case MixedRadix42:
		p.mixed(dst)
	}
	if p.inverse {
		s := complex(1/float64(p.n), 0)
		for i := range dst {
			dst[i] *= s
		}
	}
	return nil
}

// bitReverse permutes x by bit reversal in place.
func bitReverse(x []complex128) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// radix2 runs the iterative radix-2 DIT transform in place.
func (p *Plan) radix2(x []complex128) {
	n := len(x)
	bitReverse(x)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := p.tw[k*step]
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// digitReverse4 permutes x by base-4 digit reversal in place.
func digitReverse4(x []complex128) {
	n := len(x)
	digits := bits.TrailingZeros(uint(n)) / 2
	rev := func(i int) int {
		r := 0
		for d := 0; d < digits; d++ {
			r = (r << 2) | (i & 3)
			i >>= 2
		}
		return r
	}
	for i := 0; i < n; i++ {
		if j := rev(i); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// radix4 runs an iterative radix-4 DIT transform in place over x of
// length m, using twiddles tw defined over period twN (twN >= m and
// m divides twN).
func (p *Plan) radix4(x []complex128, tw []complex128, twN int) {
	m := len(x)
	digitReverse4(x)
	imSign := complex(0, -1) // multiply by -j for the forward transform
	if p.inverse {
		imSign = complex(0, 1)
	}
	for size := 4; size <= m; size <<= 2 {
		quarter := size / 4
		step := twN / size
		for start := 0; start < m; start += size {
			for k := 0; k < quarter; k++ {
				w1 := tw[(k*step)%twN]
				w2 := tw[(2*k*step)%twN]
				w3 := tw[(3*k*step)%twN]
				a := x[start+k]
				b := x[start+k+quarter] * w1
				c := x[start+k+2*quarter] * w2
				d := x[start+k+3*quarter] * w3
				apc := a + c
				amc := a - c
				bpd := b + d
				bmd := (b - d) * imSign
				x[start+k] = apc + bpd
				x[start+k+quarter] = amc + bmd
				x[start+k+2*quarter] = apc - bpd
				x[start+k+3*quarter] = amc - bmd
			}
		}
	}
}

// mixed computes N = 2*4^k via one radix-2 DIT split whose two halves are
// radix-4 transforms, matching the paper's three-radix-4-stages-plus-one-
// radix-2-stage plan for N=128.
func (p *Plan) mixed(x []complex128) {
	n := len(x)
	half := n / 2
	buf := mixedScratch.Get().(*[]complex128)
	if cap(*buf) < n {
		*buf = make([]complex128, n)
	}
	scratch := (*buf)[:n]
	even, odd := scratch[:half], scratch[half:]
	for i := 0; i < half; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	p.radix4(even, p.subTw, half)
	p.radix4(odd, p.subTw, half)
	for k := 0; k < half; k++ {
		t := odd[k] * p.tw[k]
		x[k] = even[k] + t
		x[k+half] = even[k] - t
	}
	mixedScratch.Put(buf)
}

// countOps walks the plan's loop structure and returns exact operation
// counts. Complex multiply = 4 real muls + 2 real adds; complex add = 2
// real adds. Multiplications by unit twiddles are counted (the paper's
// kernels were hand-scheduled but still execute those slots on SIMD
// machines).
func (p *Plan) countOps() Counts {
	var c Counts
	n := uint64(p.n)
	switch p.radix {
	case Radix2:
		stages := uint64(bits.TrailingZeros(uint(p.n)))
		bflies := (n / 2) * stages
		c.Muls = 4 * bflies
		c.Adds = 2*bflies + 4*bflies // cmul adds + 2 complex adds
		c.Loads = 4 * bflies         // two complex operands
		c.Stores = 4 * bflies
		c.Shuffles = n // bit reversal moves
	case Radix4:
		stages := uint64(bits.TrailingZeros(uint(p.n))) / 2
		bflies := (n / 4) * stages
		// 3 cmuls + 8 complex add/sub per radix-4 butterfly.
		c.Muls = 12 * bflies
		c.Adds = 6*bflies + 16*bflies
		c.Loads = 8 * bflies
		c.Stores = 8 * bflies
		c.Shuffles = n
	case MixedRadix42:
		sub, err := NewPlan(p.n/2, Radix4, p.inverse)
		if err != nil {
			panic(err)
		}
		c = sub.Counts().Scale(2)
		half := n / 2
		// Final radix-2 combine: one cmul + 2 complex adds per pair.
		c.Muls += 4 * half
		c.Adds += 2*half + 4*half
		c.Loads += 4 * half
		c.Stores += 4 * half
		c.Shuffles += n // the even/odd deinterleave
	}
	if p.inverse {
		// 1/N scaling: one real mul per real component.
		c.Muls += 2 * n
		c.Loads += 2 * n
		c.Stores += 2 * n
	}
	return c
}

// NaiveDFT computes the O(N^2) discrete Fourier transform; it is the
// golden reference for tests.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k*t) / float64(n)
			sum += x[t] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = sum
	}
	return out
}

// NaiveIDFT computes the O(N^2) inverse DFT with 1/N scaling.
func NaiveIDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := 2 * math.Pi * float64(k*t) / float64(n)
			sum += x[t] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = sum / complex(float64(n), 0)
	}
	return out
}
