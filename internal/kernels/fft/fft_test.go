package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"sigkern/internal/sim"
)

const tol = 1e-9

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func randomSignal(n int, seed uint64) []complex128 {
	p := sim.NewPRNG(seed)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(p.Float64()*2-1, p.Float64()*2-1)
	}
	return x
}

func TestNewPlanLengthValidation(t *testing.T) {
	cases := []struct {
		n     int
		radix Radix
		ok    bool
	}{
		{128, Radix2, true},
		{128, Radix4, false}, // 128 is not a power of 4
		{128, MixedRadix42, true},
		{64, Radix4, true},
		{64, MixedRadix42, false}, // 64 = 4^3, not 2*4^k
		{100, Radix2, false},      // not a power of two
		{1, Radix2, false},
		{2, Radix2, true},
		{128, Radix(3), false},
	}
	for _, c := range cases {
		_, err := NewPlan(c.n, c.radix, false)
		if (err == nil) != c.ok {
			t.Errorf("NewPlan(%d, %s): err=%v, want ok=%v", c.n, c.radix, err, c.ok)
		}
	}
}

func TestAllRadicesMatchNaiveDFT(t *testing.T) {
	for _, tc := range []struct {
		n     int
		radix Radix
	}{
		{8, Radix2}, {128, Radix2}, {256, Radix2},
		{16, Radix4}, {64, Radix4}, {256, Radix4},
		{8, MixedRadix42}, {32, MixedRadix42}, {128, MixedRadix42},
	} {
		p := MustPlan(tc.n, tc.radix, false)
		x := randomSignal(tc.n, uint64(tc.n)*7+uint64(tc.radix))
		want := NaiveDFT(x)
		got := make([]complex128, tc.n)
		if err := p.Transform(got, x); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(got, want); e > 1e-8 {
			t.Errorf("N=%d %s: max error %g vs naive DFT", tc.n, tc.radix, e)
		}
	}
}

func TestRadicesAgreeWithEachOther(t *testing.T) {
	x := randomSignal(128, 99)
	r2 := make([]complex128, 128)
	mx := make([]complex128, 128)
	if err := MustPlan(128, Radix2, false).Transform(r2, x); err != nil {
		t.Fatal(err)
	}
	if err := MustPlan(128, MixedRadix42, false).Transform(mx, x); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(r2, mx); e > tol {
		t.Fatalf("radix-2 and mixed plans disagree by %g", e)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, radix := range []Radix{Radix2, MixedRadix42} {
		fwd := MustPlan(128, radix, false)
		inv := MustPlan(128, radix, true)
		x := randomSignal(128, 5)
		f := make([]complex128, 128)
		back := make([]complex128, 128)
		if err := fwd.Transform(f, x); err != nil {
			t.Fatal(err)
		}
		if err := inv.Transform(back, f); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(back, x); e > tol {
			t.Errorf("%s: IFFT(FFT(x)) error %g", radix, e)
		}
	}
}

func TestInverseMatchesNaiveIDFT(t *testing.T) {
	x := randomSignal(64, 17)
	want := NaiveIDFT(x)
	got := make([]complex128, 64)
	if err := MustPlan(64, Radix4, true).Transform(got, x); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(got, want); e > 1e-9 {
		t.Fatalf("inverse radix-4 error %g vs naive IDFT", e)
	}
}

func TestImpulseGivesFlatSpectrum(t *testing.T) {
	x := make([]complex128, 128)
	x[0] = 1
	got := make([]complex128, 128)
	if err := MustPlan(128, MixedRadix42, false).Transform(got, x); err != nil {
		t.Fatal(err)
	}
	for k, v := range got {
		if cmplx.Abs(v-1) > tol {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestSingleToneLandsInOneBin(t *testing.T) {
	const n, bin = 128, 9
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * float64(bin*i) / float64(n)
		x[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	got := make([]complex128, n)
	if err := MustPlan(n, MixedRadix42, false).Transform(got, x); err != nil {
		t.Fatal(err)
	}
	for k, v := range got {
		want := complex(0, 0)
		if k == bin {
			want = complex(n, 0)
		}
		if cmplx.Abs(v-want) > 1e-8 {
			t.Fatalf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestTransformInPlaceAliasing(t *testing.T) {
	x := randomSignal(64, 3)
	want := NaiveDFT(x)
	buf := append([]complex128(nil), x...)
	if err := MustPlan(64, Radix2, false).Transform(buf, buf); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(buf, want); e > 1e-8 {
		t.Fatalf("in-place transform error %g", e)
	}
}

func TestTransformLengthMismatch(t *testing.T) {
	p := MustPlan(64, Radix2, false)
	if err := p.Transform(make([]complex128, 64), make([]complex128, 32)); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if err := p.Transform(make([]complex128, 32), make([]complex128, 64)); err == nil {
		t.Fatal("dst length mismatch not rejected")
	}
}

// Parseval's theorem: sum |x|^2 == (1/N) sum |X|^2.
func TestParsevalProperty(t *testing.T) {
	p := MustPlan(128, MixedRadix42, false)
	f := func(seed uint64) bool {
		x := randomSignal(128, seed)
		X := make([]complex128, 128)
		if err := p.Transform(X, x); err != nil {
			return false
		}
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		return math.Abs(et-ef/128) < 1e-6*(1+et)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Linearity: FFT(a*x + y) == a*FFT(x) + FFT(y).
func TestLinearityProperty(t *testing.T) {
	p := MustPlan(64, Radix4, false)
	f := func(seed uint64, scale int8) bool {
		a := complex(float64(scale)/16, 0)
		x := randomSignal(64, seed)
		y := randomSignal(64, seed+1)
		z := make([]complex128, 64)
		for i := range z {
			z[i] = a*x[i] + y[i]
		}
		X := make([]complex128, 64)
		Y := make([]complex128, 64)
		Z := make([]complex128, 64)
		_ = p.Transform(X, x)
		_ = p.Transform(Y, y)
		_ = p.Transform(Z, z)
		for i := range Z {
			if cmplx.Abs(Z[i]-(a*X[i]+Y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOpCountsRadix2Formula(t *testing.T) {
	p := MustPlan(128, Radix2, false)
	c := p.Counts()
	// (N/2)*log2(N) = 448 butterflies, 10 flops each.
	if got := c.Flops(); got != 4480 {
		t.Fatalf("radix-2 128-pt flops = %d, want 4480", got)
	}
	if c.Loads != 4*448 || c.Stores != 4*448 {
		t.Fatalf("radix-2 loads/stores = %d/%d", c.Loads, c.Stores)
	}
}

func TestRadix2CostsAbout1_5xRadix4(t *testing.T) {
	// The paper: "The number of operations (including loads and stores)
	// in the radix-2 FFT is about 1.5 the number in the radix-4 FFT."
	r2 := MustPlan(128, Radix2, false).Counts()
	r4 := MustPlan(128, MixedRadix42, false).Counts()
	tot2 := r2.Flops() + r2.Loads + r2.Stores
	tot4 := r4.Flops() + r4.Loads + r4.Stores
	ratio := float64(tot2) / float64(tot4)
	if ratio < 1.2 || ratio > 1.6 {
		t.Fatalf("radix-2/radix-4 op ratio = %.2f, want ~1.5", ratio)
	}
}

func TestInversePlanCountsIncludeScaling(t *testing.T) {
	fwd := MustPlan(128, Radix2, false).Counts()
	inv := MustPlan(128, Radix2, true).Counts()
	if inv.Muls != fwd.Muls+2*128 {
		t.Fatalf("inverse muls = %d, want %d", inv.Muls, fwd.Muls+2*128)
	}
}

func TestCountsAddScale(t *testing.T) {
	a := Counts{Adds: 1, Muls: 2, Loads: 3, Stores: 4, Shuffles: 5}
	b := a.Add(a)
	if b != a.Scale(2) {
		t.Fatalf("Add/Scale mismatch: %+v vs %+v", b, a.Scale(2))
	}
}

func BenchmarkFFT128Radix2(b *testing.B) {
	p := MustPlan(128, Radix2, false)
	x := randomSignal(128, 1)
	dst := make([]complex128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Transform(dst, x)
	}
}

func BenchmarkFFT128Mixed(b *testing.B) {
	p := MustPlan(128, MixedRadix42, false)
	x := randomSignal(128, 1)
	dst := make([]complex128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Transform(dst, x)
	}
}

func TestBestRadix(t *testing.T) {
	cases := map[int]Radix{
		2: Radix2, 4: Radix4, 8: MixedRadix42, 16: Radix4,
		32: MixedRadix42, 64: Radix4, 128: MixedRadix42,
		256: Radix4, 512: MixedRadix42, 100: Radix2, 0: Radix2,
	}
	for n, want := range cases {
		if got := BestRadix(n); got != want {
			t.Errorf("BestRadix(%d) = %v, want %v", n, got, want)
		}
		if n >= 2 && n&(n-1) == 0 {
			if _, err := NewPlan(n, BestRadix(n), false); err != nil {
				t.Errorf("BestRadix(%d) plan invalid: %v", n, err)
			}
		}
	}
}
