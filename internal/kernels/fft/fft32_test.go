package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

func to32(x []complex128) []complex64 {
	out := make([]complex64, len(x))
	for i, v := range x {
		out[i] = complex64(v)
	}
	return out
}

func maxErr32(a []complex64, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(complex128(a[i]) - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestTransform32MatchesDoublePrecision(t *testing.T) {
	for _, tc := range []struct {
		n     int
		radix Radix
	}{
		{8, Radix2}, {128, Radix2}, {64, Radix4}, {128, MixedRadix42}, {32, MixedRadix42},
	} {
		p := MustPlan(tc.n, tc.radix, false)
		x := randomSignal(tc.n, uint64(tc.n)+uint64(tc.radix))
		ref := make([]complex128, tc.n)
		if err := p.Transform(ref, x); err != nil {
			t.Fatal(err)
		}
		got := make([]complex64, tc.n)
		if err := p.Transform32(got, to32(x)); err != nil {
			t.Fatal(err)
		}
		// Single precision: ~1e-7 relative error times sqrt(N) growth.
		scale := 0.0
		for _, v := range ref {
			if a := cmplx.Abs(v); a > scale {
				scale = a
			}
		}
		if e := maxErr32(got, ref); e > 1e-4*(1+scale) {
			t.Errorf("N=%d %s: single-precision error %g (scale %g)", tc.n, tc.radix, e, scale)
		}
	}
}

func TestTransform32RoundTrip(t *testing.T) {
	for _, radix := range []Radix{Radix2, MixedRadix42} {
		fwd := MustPlan(128, radix, false)
		inv := MustPlan(128, radix, true)
		x := to32(randomSignal(128, 77))
		f := make([]complex64, 128)
		back := make([]complex64, 128)
		if err := fwd.Transform32(f, x); err != nil {
			t.Fatal(err)
		}
		if err := inv.Transform32(back, f); err != nil {
			t.Fatal(err)
		}
		for i := range back {
			d := complex128(back[i] - x[i])
			if cmplx.Abs(d) > 1e-4 {
				t.Fatalf("%s: round trip error %g at %d", radix, cmplx.Abs(d), i)
			}
		}
	}
}

func TestTransform32LengthMismatch(t *testing.T) {
	p := MustPlan(64, Radix2, false)
	if err := p.Transform32(make([]complex64, 64), make([]complex64, 32)); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

func TestTransform32InPlace(t *testing.T) {
	p := MustPlan(64, Radix4, false)
	x := randomSignal(64, 5)
	ref := make([]complex128, 64)
	if err := p.Transform(ref, x); err != nil {
		t.Fatal(err)
	}
	buf := to32(x)
	if err := p.Transform32(buf, buf); err != nil {
		t.Fatal(err)
	}
	if e := maxErr32(buf, ref); e > 1e-3 {
		t.Fatalf("in-place single-precision error %g", e)
	}
}

func TestSinglePrecisionErrorGrowthIsBounded(t *testing.T) {
	// The 128-point transform's round-off must stay near machine epsilon
	// times sqrt(N log N) — the well-conditioned FFT property that makes
	// single precision acceptable for the paper's CSLC.
	p := MustPlan(128, MixedRadix42, false)
	worst := 0.0
	for seed := uint64(0); seed < 20; seed++ {
		x := randomSignal(128, seed)
		ref := make([]complex128, 128)
		_ = p.Transform(ref, x)
		got := make([]complex64, 128)
		_ = p.Transform32(got, to32(x))
		var num, den float64
		for i := range ref {
			num += cmplx.Abs(complex128(got[i])-ref[i]) * cmplx.Abs(complex128(got[i])-ref[i])
			den += cmplx.Abs(ref[i]) * cmplx.Abs(ref[i])
		}
		if rel := math.Sqrt(num / den); rel > worst {
			worst = rel
		}
	}
	if worst > 5e-6 {
		t.Fatalf("relative RMS error %g, want < 5e-6 for a 128-point FFT", worst)
	}
}

func BenchmarkFFT128Mixed32(b *testing.B) {
	p := MustPlan(128, MixedRadix42, false)
	x := to32(randomSignal(128, 1))
	dst := make([]complex64, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Transform32(dst, x)
	}
}
