package fft_test

import (
	"fmt"
	"math"
	"math/cmplx"

	"sigkern/internal/kernels/fft"
)

// ExamplePlan_Transform shows the paper's 128-point plan (three radix-4
// stages plus one radix-2 stage) resolving a pure tone into its bin.
func ExamplePlan_Transform() {
	const n, bin = 128, 5
	plan := fft.MustPlan(n, fft.MixedRadix42, false)
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * float64(bin*i) / float64(n)
		x[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	X := make([]complex128, n)
	if err := plan.Transform(X, x); err != nil {
		panic(err)
	}
	fmt.Printf("|X[%d]| = %.0f\n", bin, cmplx.Abs(X[bin]))
	fmt.Printf("|X[%d]| < 1e-9: %v\n", bin+1, cmplx.Abs(X[bin+1]) < 1e-9)
	// Output:
	// |X[5]| = 128
	// |X[6]| < 1e-9: true
}

// ExamplePlan_Counts shows the operation accounting the machine timing
// models consume — including the paper's radix-2 vs radix-4 comparison.
func ExamplePlan_Counts() {
	r2 := fft.MustPlan(128, fft.Radix2, false).Counts()
	r4 := fft.MustPlan(128, fft.MixedRadix42, false).Counts()
	fmt.Printf("radix-2: %d flops, %d loads+stores\n", r2.Flops(), r2.Loads+r2.Stores)
	fmt.Printf("mixed radix-4/2: %d flops, %d loads+stores\n", r4.Flops(), r4.Loads+r4.Stores)
	ratio := float64(r2.Flops()+r2.Loads+r2.Stores) / float64(r4.Flops()+r4.Loads+r4.Stores)
	fmt.Printf("op ratio ~1.5x: %v\n", ratio > 1.3 && ratio < 1.6)
	// Output:
	// radix-2: 4480 flops, 3584 loads+stores
	// mixed radix-4/2: 3904 flops, 2048 loads+stores
	// op ratio ~1.5x: true
}
