package fft

import "fmt"

// Transform32 computes the plan's transform on single-precision complex
// data, the arithmetic width the paper's kernels actually use ("All
// computations are done using single-precision floating-point
// operations"). Twiddles are rounded to float32 before use so the
// round-off behaviour matches a real single-precision implementation;
// the complex128 Transform remains the high-precision reference.
func (p *Plan) Transform32(dst, src []complex64) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("fft: plan length %d, got src %d dst %d", p.n, len(src), len(dst))
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	tw := p.tw32()
	switch p.radix {
	case Radix2:
		radix2_32(dst, tw)
	case Radix4:
		p.radix4_32(dst, tw, p.n)
	case MixedRadix42:
		p.mixed32(dst, tw)
	}
	if p.inverse {
		s := complex(1/float32(p.n), 0)
		for i := range dst {
			dst[i] *= s
		}
	}
	return nil
}

// tw32 returns the twiddle table rounded to single precision.
func (p *Plan) tw32() []complex64 {
	out := make([]complex64, len(p.tw))
	for i, w := range p.tw {
		out[i] = complex64(w)
	}
	return out
}

// bitReverse32 permutes x by bit reversal in place.
func bitReverse32(x []complex64) {
	n := len(x)
	j := 0
	for i := 0; i < n-1; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
}

func radix2_32(x []complex64, tw []complex64) {
	n := len(x)
	bitReverse32(x)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*step]
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

func (p *Plan) radix4_32(x []complex64, tw []complex64, twN int) {
	m := len(x)
	digitReverse4_32(x)
	imSign := complex64(complex(0, -1))
	if p.inverse {
		imSign = complex(0, 1)
	}
	for size := 4; size <= m; size <<= 2 {
		quarter := size / 4
		step := twN / size
		for start := 0; start < m; start += size {
			for k := 0; k < quarter; k++ {
				w1 := tw[(k*step)%twN]
				w2 := tw[(2*k*step)%twN]
				w3 := tw[(3*k*step)%twN]
				a := x[start+k]
				b := x[start+k+quarter] * w1
				c := x[start+k+2*quarter] * w2
				d := x[start+k+3*quarter] * w3
				apc := a + c
				amc := a - c
				bpd := b + d
				bmd := (b - d) * imSign
				x[start+k] = apc + bpd
				x[start+k+quarter] = amc + bmd
				x[start+k+2*quarter] = apc - bpd
				x[start+k+3*quarter] = amc - bmd
			}
		}
	}
}

func digitReverse4_32(x []complex64) {
	n := len(x)
	digits := 0
	for t := n; t > 1; t >>= 2 {
		digits++
	}
	rev := func(i int) int {
		r := 0
		for d := 0; d < digits; d++ {
			r = (r << 2) | (i & 3)
			i >>= 2
		}
		return r
	}
	for i := 0; i < n; i++ {
		if j := rev(i); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

func (p *Plan) mixed32(x []complex64, tw []complex64) {
	n := len(x)
	half := n / 2
	even := make([]complex64, half)
	odd := make([]complex64, half)
	for i := 0; i < half; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	subTw := make([]complex64, half)
	for k := 0; k < half; k++ {
		subTw[k] = tw[2*k]
	}
	p.radix4_32(even, subTw, half)
	p.radix4_32(odd, subTw, half)
	for k := 0; k < half; k++ {
		t := odd[k] * tw[k]
		x[k] = even[k] + t
		x[k+half] = even[k] - t
	}
}
