package noc

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := RawMesh().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Width: 0, Height: 4, BaseLatency: 3, HopLatency: 1, MinPacketWords: 4},
		{Width: 4, Height: 4, BaseLatency: 0, HopLatency: 1, MinPacketWords: 4},
		{Width: 4, Height: 4, BaseLatency: 3, HopLatency: -1, MinPacketWords: 4},
		{Width: 4, Height: 4, BaseLatency: 3, HopLatency: 1, MinPacketWords: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestXYAndTileAtRoundTrip(t *testing.T) {
	m := NewMesh(RawMesh())
	for tile := 0; tile < m.Tiles(); tile++ {
		x, y := m.XY(tile)
		if m.TileAt(x, y) != tile {
			t.Fatalf("round trip failed for tile %d", tile)
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	m := NewMesh(RawMesh())
	if h := m.Hops(m.TileAt(0, 0), m.TileAt(3, 3)); h != 6 {
		t.Fatalf("corner-to-corner hops = %d, want 6", h)
	}
	if h := m.Hops(5, 5); h != 0 {
		t.Fatalf("self hops = %d, want 0", h)
	}
	if h := m.Hops(m.TileAt(1, 1), m.TileAt(2, 1)); h != 1 {
		t.Fatalf("neighbour hops = %d, want 1", h)
	}
}

func TestStaticLatencyMatchesPaper(t *testing.T) {
	m := NewMesh(RawMesh())
	// "latency of three cycles between nearest neighbor tiles" ...
	if lat := m.StaticLatency(0, 1); lat != 3 {
		t.Fatalf("nearest-neighbour latency = %d, want 3", lat)
	}
	// "... one additional cycle of latency for each hop".
	if lat := m.StaticLatency(m.TileAt(0, 0), m.TileAt(3, 0)); lat != 5 {
		t.Fatalf("3-hop latency = %d, want 5", lat)
	}
	if lat := m.StaticLatency(m.TileAt(0, 0), m.TileAt(3, 3)); lat != 8 {
		t.Fatalf("6-hop latency = %d, want 8", lat)
	}
}

func TestSendStaticPipelines(t *testing.T) {
	m := NewMesh(RawMesh())
	// 100 words between neighbours: head latency 3, then 1 word/cycle.
	arrive := m.SendStatic(0, 1, 100, 0)
	if arrive != 3+99 {
		t.Fatalf("100-word stream arrives at %d, want 102", arrive)
	}
}

func TestSendStaticContentionSerializes(t *testing.T) {
	m := NewMesh(RawMesh())
	// Two streams share the link 0->1.
	a := m.SendStatic(0, 1, 50, 0)
	b := m.SendStatic(0, 1, 50, 0)
	if b <= a {
		t.Fatalf("contending stream not delayed: %d <= %d", b, a)
	}
	if m.Stats().Get("static_link_stalls") == 0 {
		t.Fatal("no link stalls recorded under contention")
	}
	// Disjoint routes do not contend.
	m.Reset()
	m.SendStatic(m.TileAt(0, 0), m.TileAt(1, 0), 50, 0)
	c := m.SendStatic(m.TileAt(0, 1), m.TileAt(1, 1), 50, 0)
	if c != 3+49 {
		t.Fatalf("disjoint stream delayed: arrives %d", c)
	}
}

func TestSendStaticZeroWords(t *testing.T) {
	m := NewMesh(RawMesh())
	if got := m.SendStatic(0, 5, 0, 7); got != 7 {
		t.Fatalf("zero-word send returned %d, want start cycle 7", got)
	}
}

func TestPacketPadding(t *testing.T) {
	m := NewMesh(RawMesh())
	// 1 payload word + 1 header = 2 < MinPacketWords 4: padded.
	if got := m.PacketCycles(1); got != 4 {
		t.Fatalf("PacketCycles(1) = %d, want 4 (padded)", got)
	}
	if got := m.PacketCycles(8); got != 9 {
		t.Fatalf("PacketCycles(8) = %d, want 9 (header+payload)", got)
	}
}

func TestDynamicSlowerThanStatic(t *testing.T) {
	ms := NewMesh(RawMesh())
	md := NewMesh(RawMesh())
	from, to := ms.TileAt(0, 0), ms.TileAt(3, 3)
	s := ms.SendStatic(from, to, 8, 0)
	d := md.SendPacket(from, to, 8, 0)
	if d <= s {
		t.Fatalf("dynamic packet (%d) not slower than static stream (%d)", d, s)
	}
}

func TestSendPacketSameTile(t *testing.T) {
	m := NewMesh(RawMesh())
	if got := m.SendPacket(3, 3, 2, 10); got <= 10 {
		t.Fatalf("same-tile packet arrived at start: %d", got)
	}
}

func TestPortTileOnBoundary(t *testing.T) {
	m := NewMesh(RawMesh())
	if m.PortCount() != 16 {
		t.Fatalf("PortCount = %d, want 16", m.PortCount())
	}
	seen := map[int]int{}
	for p := 0; p < m.PortCount(); p++ {
		tile := m.PortTile(p)
		x, y := m.XY(tile)
		if x != 0 && x != 3 && y != 0 && y != 3 {
			t.Fatalf("port %d attaches to interior tile %d", p, tile)
		}
		seen[tile]++
	}
	// 16 ports over 12 boundary tiles: corners host two ports.
	if len(seen) != 12 {
		t.Fatalf("ports attach to %d distinct tiles, want 12", len(seen))
	}
}

func TestPortTileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PortTile(99) did not panic")
		}
	}()
	NewMesh(RawMesh()).PortTile(99)
}

func TestTileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XY(16) did not panic")
		}
	}()
	NewMesh(RawMesh()).XY(16)
}

// Property: static latency is symmetric and obeys the base+hop formula.
func TestStaticLatencyProperty(t *testing.T) {
	m := NewMesh(RawMesh())
	f := func(a, b uint8) bool {
		from, to := int(a)%16, int(b)%16
		l1 := m.StaticLatency(from, to)
		l2 := m.StaticLatency(to, from)
		if l1 != l2 {
			return false
		}
		h := m.Hops(from, to)
		if h == 0 {
			return l1 == 1
		}
		return l1 == uint64(3+(h-1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: arrival is never before start + contention-free latency.
func TestSendStaticLowerBoundProperty(t *testing.T) {
	f := func(pairs []uint8, words uint8) bool {
		m := NewMesh(RawMesh())
		w := int(words)%64 + 1
		for i := 0; i+1 < len(pairs); i += 2 {
			from, to := int(pairs[i])%16, int(pairs[i+1])%16
			arrive := m.SendStatic(from, to, w, 0)
			if arrive < m.StaticLatency(from, to)+uint64(w-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
