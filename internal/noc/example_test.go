package noc_test

import (
	"fmt"

	"sigkern/internal/noc"
)

// Example shows the Raw static network's latency law: three cycles
// between nearest neighbours plus one per additional hop (Section 2.3 of
// the paper).
func Example() {
	m := noc.NewMesh(noc.RawMesh())
	corner := m.TileAt(0, 0)
	for _, to := range []struct {
		x, y int
	}{{1, 0}, {3, 0}, {3, 3}} {
		t := m.TileAt(to.x, to.y)
		fmt.Printf("(0,0)->(%d,%d): %d hops, latency %d\n",
			to.x, to.y, m.Hops(corner, t), m.StaticLatency(corner, t))
	}
	// Output:
	// (0,0)->(1,0): 1 hops, latency 3
	// (0,0)->(3,0): 3 hops, latency 5
	// (0,0)->(3,3): 6 hops, latency 8
}
