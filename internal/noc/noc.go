// Package noc models Raw's on-chip networks: a 2-D mesh with a static
// (scalar-operand) network routed by per-tile switch processors, and a
// dynamic packet network used for cache misses.
//
// Timing follows the paper's description: the static network delivers one
// word per cycle per link with a three-cycle latency between nearest
// neighbours and one additional cycle per extra hop. Routes are
// dimension-ordered (X then Y); each link carries one word per cycle and
// contention is modeled with per-link reservations, so two streams that
// share a link serialize. The dynamic network moves packets (header +
// payload, padded to a minimum size) with per-hop store-and-forward
// latency.
package noc

import (
	"errors"
	"fmt"

	"sigkern/internal/sim"
)

// Config describes a mesh.
type Config struct {
	// Width and Height give the tile grid dimensions.
	Width, Height int
	// BaseLatency is the static-network latency between nearest
	// neighbours (3 on Raw).
	BaseLatency int
	// HopLatency is the additional latency per hop beyond the first (1).
	HopLatency int
	// MinPacketWords is the dynamic network's minimum packet size
	// including the header; smaller messages are padded (the paper:
	// "if the data is smaller than a packet, dummy data is added").
	MinPacketWords int
	// HeaderWords is the dynamic-network per-packet header size.
	HeaderWords int
}

// Validate reports whether the mesh is realizable.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return errors.New("noc: mesh dimensions must be positive")
	case c.BaseLatency < 1:
		return errors.New("noc: BaseLatency must be at least 1")
	case c.HopLatency < 0:
		return errors.New("noc: negative HopLatency")
	case c.MinPacketWords < 1 || c.HeaderWords < 0:
		return errors.New("noc: invalid packet parameters")
	}
	return nil
}

// RawMesh returns the 4x4 Raw configuration.
func RawMesh() Config {
	return Config{Width: 4, Height: 4, BaseLatency: 3, HopLatency: 1, MinPacketWords: 4, HeaderWords: 1}
}

// link identifies one directed mesh link (or a port attachment).
type link struct {
	from, to int
}

// Mesh is a simulated mesh network. It is not safe for concurrent use.
type Mesh struct {
	cfg      Config
	linkFree map[link]uint64
	stats    sim.Stats
	// routeBuf is the reusable backing for route: routes are consumed
	// before the next call (the mesh is single-threaded by contract),
	// and cache fills route millions of packets per kernel.
	routeBuf []link
}

// NewMesh returns a mesh for cfg, panicking on invalid configuration.
func NewMesh(cfg Config) *Mesh {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Mesh{cfg: cfg, linkFree: make(map[link]uint64)}
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Tiles returns the tile count.
func (m *Mesh) Tiles() int { return m.cfg.Width * m.cfg.Height }

// Reset clears all link reservations and statistics.
func (m *Mesh) Reset() {
	m.linkFree = make(map[link]uint64)
	m.stats = sim.Stats{}
}

// Stats returns accumulated counters.
func (m *Mesh) Stats() sim.Stats { return m.stats }

// XY returns tile t's coordinates.
func (m *Mesh) XY(t int) (x, y int) {
	m.checkTile(t)
	return t % m.cfg.Width, t / m.cfg.Width
}

// TileAt returns the tile index at (x, y).
func (m *Mesh) TileAt(x, y int) int {
	if x < 0 || x >= m.cfg.Width || y < 0 || y >= m.cfg.Height {
		panic(fmt.Sprintf("noc: coordinates (%d,%d) outside %dx%d mesh", x, y, m.cfg.Width, m.cfg.Height))
	}
	return y*m.cfg.Width + x
}

func (m *Mesh) checkTile(t int) {
	if t < 0 || t >= m.Tiles() {
		panic(fmt.Sprintf("noc: tile %d outside %dx%d mesh", t, m.cfg.Width, m.cfg.Height))
	}
}

// Hops returns the Manhattan distance between two tiles.
func (m *Mesh) Hops(from, to int) int {
	fx, fy := m.XY(from)
	tx, ty := m.XY(to)
	dx, dy := tx-fx, ty-fy
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// route returns the dimension-ordered (X then Y) list of links from one
// tile to another. The route is empty when from == to. The returned
// slice aliases a mesh-owned buffer valid until the next route call.
func (m *Mesh) route(from, to int) []link {
	fx, fy := m.XY(from)
	tx, ty := m.XY(to)
	links := m.routeBuf[:0]
	cur := from
	for x := fx; x != tx; {
		step := 1
		if tx < x {
			step = -1
		}
		next := m.TileAt(x+step, fy)
		links = append(links, link{cur, next})
		cur = next
		x += step
	}
	for y := fy; y != ty; {
		step := 1
		if ty < y {
			step = -1
		}
		next := m.TileAt(tx, y+step)
		links = append(links, link{cur, next})
		cur = next
		y += step
	}
	m.routeBuf = links
	return links
}

// StaticLatency returns the contention-free static-network latency for a
// single word between two tiles: BaseLatency for nearest neighbours plus
// HopLatency per additional hop. Same-tile transfers cost one cycle.
func (m *Mesh) StaticLatency(from, to int) uint64 {
	h := m.Hops(from, to)
	if h == 0 {
		return 1
	}
	return uint64(m.cfg.BaseLatency + (h-1)*m.cfg.HopLatency)
}

// SendStatic routes words over the static network starting no earlier
// than cycle start and returns the cycle at which the last word arrives.
// The stream is pipelined: one word per cycle enters the route once every
// link along it is free, and words follow head latency StaticLatency.
func (m *Mesh) SendStatic(from, to, words int, start uint64) uint64 {
	if words <= 0 {
		return start
	}
	links := m.route(from, to)
	// The stream can begin once every link on the route is free
	// (a switch-processor route is configured end-to-end).
	begin := start
	for _, l := range links {
		if f := m.linkFree[l]; f > begin {
			m.stats.Inc("static_link_stalls", f-begin)
			begin = f
		}
	}
	// Each link is then occupied for the duration of the stream.
	for _, l := range links {
		m.linkFree[l] = begin + uint64(words)
	}
	m.stats.Inc("static_words", uint64(words))
	return begin + m.StaticLatency(from, to) + uint64(words-1)
}

// PacketCycles returns the size in flits (words on the wire) of a
// dynamic-network message carrying payloadWords.
func (m *Mesh) PacketCycles(payloadWords int) int {
	w := payloadWords + m.cfg.HeaderWords
	if w < m.cfg.MinPacketWords {
		w = m.cfg.MinPacketWords
	}
	return w
}

// SendPacket sends one dynamic-network packet and returns the arrival
// cycle of its last flit. Dynamic routing is store-and-forward per hop,
// so it is slower than the static network for the same payload — the
// reason the paper's optimized kernels prefer the static network.
func (m *Mesh) SendPacket(from, to, payloadWords int, start uint64) uint64 {
	links := m.route(from, to)
	flits := uint64(m.PacketCycles(payloadWords))
	t := start
	for _, l := range links {
		if f := m.linkFree[l]; f > t {
			m.stats.Inc("dynamic_link_stalls", f-t)
			t = f
		}
		m.linkFree[l] = t + flits
		t += flits // store-and-forward: the whole packet crosses the link
	}
	if len(links) == 0 {
		t += flits
	}
	m.stats.Inc("packets", 1)
	m.stats.Inc("dynamic_words", flits)
	return t
}

// PortCount returns the number of peripheral memory ports (one per
// peripheral network connection; 16 on the 4x4 Raw chip, 4 per side).
func (m *Mesh) PortCount() int { return 2*m.cfg.Width + 2*m.cfg.Height }

// PortTile returns the boundary tile to which peripheral port p attaches.
// Ports are numbered clockwise: top row (left to right), right column
// (top to bottom), bottom row (right to left), left column (bottom to top).
func (m *Mesh) PortTile(p int) int {
	w, h := m.cfg.Width, m.cfg.Height
	if p < 0 || p >= m.PortCount() {
		panic(fmt.Sprintf("noc: port %d outside 0..%d", p, m.PortCount()-1))
	}
	switch {
	case p < w: // top
		return m.TileAt(p, 0)
	case p < w+h: // right
		return m.TileAt(w-1, p-w)
	case p < 2*w+h: // bottom
		return m.TileAt(w-1-(p-w-h), h-1)
	default: // left
		return m.TileAt(0, h-1-(p-2*w-h))
	}
}
