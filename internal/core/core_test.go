package core

import (
	"errors"
	"math"
	"testing"

	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
)

// fakeMachine returns canned results, for framework tests.
type fakeMachine struct {
	name   string
	clock  float64
	cycles map[KernelID]uint64
	fail   bool
	unver  bool
}

func (f *fakeMachine) Name() string { return f.name }
func (f *fakeMachine) Params() Params {
	return Params{ClockMHz: f.clock, ALUs: 1, PeakGFLOPS: 1}
}

func (f *fakeMachine) run(k KernelID) (Result, error) {
	if f.fail {
		return Result{}, errors.New("boom")
	}
	return Result{
		Machine: f.name, Kernel: k, Cycles: f.cycles[k],
		Ops: 1, Words: 1, Verified: !f.unver,
	}, nil
}

func (f *fakeMachine) RunCornerTurn(cornerturn.Spec) (Result, error)  { return f.run(CornerTurn) }
func (f *fakeMachine) RunCSLC(cslc.Spec) (Result, error)              { return f.run(CSLC) }
func (f *fakeMachine) RunBeamSteering(beamsteer.Spec) (Result, error) { return f.run(BeamSteering) }

func twoMachines() []Machine {
	return []Machine{
		&fakeMachine{name: "base", clock: 1000, cycles: map[KernelID]uint64{
			CornerTurn: 1000, CSLC: 2000, BeamSteering: 100}},
		&fakeMachine{name: "fast", clock: 200, cycles: map[KernelID]uint64{
			CornerTurn: 100, CSLC: 100, BeamSteering: 10}},
	}
}

func TestKernelsAndTitles(t *testing.T) {
	ks := Kernels()
	if len(ks) != 3 {
		t.Fatalf("Kernels() = %v", ks)
	}
	if CornerTurn.Title() != "Corner Turn" || CSLC.Title() != "CSLC" {
		t.Fatal("kernel titles wrong")
	}
	if KernelID("x").Title() != "x" {
		t.Fatal("unknown kernel title fallback")
	}
}

func TestPaperWorkloadValid(t *testing.T) {
	if err := PaperWorkload().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PaperWorkload()
	bad.Beam.Elements = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestRunDispatch(t *testing.T) {
	m := twoMachines()[0]
	w := PaperWorkload()
	for _, k := range Kernels() {
		r, err := Run(m, k, w)
		if err != nil {
			t.Fatal(err)
		}
		if r.Kernel != k {
			t.Fatalf("dispatched kernel %s, want %s", r.Kernel, k)
		}
	}
	if _, err := Run(m, KernelID("nope"), w); err == nil {
		t.Fatal("unknown kernel dispatched")
	}
}

func TestRunStudyAndSpeedups(t *testing.T) {
	sr, err := RunStudy(twoMachines(), PaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.SpeedupCycles("base", "fast", CornerTurn); got != 10 {
		t.Fatalf("cycle speedup = %v, want 10", got)
	}
	// Time speedup: base at 1000 MHz (1000 cycles = 1 us), fast at 200
	// MHz (100 cycles = 0.5 us): speedup 2.
	if got := sr.SpeedupTime("base", "fast", CornerTurn); math.Abs(got-2) > 1e-12 {
		t.Fatalf("time speedup = %v, want 2", got)
	}
	if got := sr.BestMachine(CSLC); got != "fast" {
		t.Fatalf("best = %s", got)
	}
	// Geometric mean over speedups 10, 20, 10 = cbrt(2000) ~ 12.6.
	g := sr.GeometricMeanSpeedup("base", "fast", false)
	if math.Abs(g-math.Cbrt(2000)) > 1e-9 {
		t.Fatalf("geomean = %v", g)
	}
}

func TestRunStudyErrors(t *testing.T) {
	if _, err := RunStudy(nil, PaperWorkload()); err == nil {
		t.Fatal("empty machine list accepted")
	}
	failing := []Machine{&fakeMachine{name: "bad", clock: 1, fail: true}}
	if _, err := RunStudy(failing, PaperWorkload()); err == nil {
		t.Fatal("failing machine accepted")
	}
	unverified := []Machine{&fakeMachine{name: "u", clock: 1, unver: true,
		cycles: map[KernelID]uint64{CornerTurn: 1, CSLC: 1, BeamSteering: 1}}}
	if _, err := RunStudy(unverified, PaperWorkload()); err == nil {
		t.Fatal("unverified result accepted")
	}
	bad := PaperWorkload()
	bad.CornerTurn.Rows = 0
	if _, err := RunStudy(twoMachines(), bad); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Cycles: 2000, Ops: 4000}
	if r.KCycles() != 2 {
		t.Fatalf("KCycles = %v", r.KCycles())
	}
	if r.OpsPerCycle() != 2 {
		t.Fatalf("OpsPerCycle = %v", r.OpsPerCycle())
	}
	if (Result{}).OpsPerCycle() != 0 {
		t.Fatal("zero-cycle OpsPerCycle should be 0")
	}
	// 2000 cycles at 200 MHz = 10 us = 0.01 ms.
	if ms := r.TimeMS(200); math.Abs(ms-0.01) > 1e-12 {
		t.Fatalf("TimeMS = %v", ms)
	}
}

func TestResultLookupMiss(t *testing.T) {
	sr, err := RunStudy(twoMachines(), PaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sr.Result("nope", CSLC); ok {
		t.Fatal("lookup of unknown machine succeeded")
	}
	if _, ok := sr.Result("base", KernelID("nope")); ok {
		t.Fatal("lookup of unknown kernel succeeded")
	}
	if names := sr.MachineNames(); len(names) != 2 || names[0] != "base" {
		t.Fatalf("MachineNames = %v", names)
	}
}

func TestSpeedupPanicsOnUnknownMachine(t *testing.T) {
	sr, err := RunStudy(twoMachines(), PaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SpeedupTime with unknown machine did not panic")
		}
	}()
	sr.SpeedupTime("base", "nope", CSLC)
}
