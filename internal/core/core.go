// Package core defines the comparative-study framework that is the
// paper's contribution: a common set of kernel specifications, a Machine
// abstraction implemented by every architecture model, cycle-count
// results with breakdowns, and the speedup computations behind Table 3
// and Figures 8 and 9.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/matmul"
	"sigkern/internal/sim"
)

// KernelID names one of the paper's three kernels.
type KernelID string

// The three kernels of the study, in the paper's order.
const (
	CornerTurn   KernelID = "corner-turn"
	CSLC         KernelID = "cslc"
	BeamSteering KernelID = "beam-steering"
)

// MatMul is the extension kernel (dense matrix multiply, from the Raw
// related work the paper cites); it is not part of the paper's Table 3
// and therefore not in Kernels().
const MatMul KernelID = "matmul"

// Kernels lists the study's kernels in presentation order.
func Kernels() []KernelID { return []KernelID{CornerTurn, CSLC, BeamSteering} }

// Title returns the kernel's display name as used in the paper's tables.
func (k KernelID) Title() string {
	switch k {
	case CornerTurn:
		return "Corner Turn"
	case CSLC:
		return "CSLC"
	case BeamSteering:
		return "Beam Steering"
	default:
		return string(k)
	}
}

// Workload bundles the concrete kernel instances of one study run. The
// CSLC radix is chosen per machine (the paper used mixed radix-4/2 on
// VIRAM and Imagine but radix-2 on Raw), so CSLC carries the base spec
// and machines override Radix.
type Workload struct {
	CornerTurn cornerturn.Spec
	CSLC       cslc.Spec
	Beam       beamsteer.Spec
}

// PaperWorkload returns the exact instances evaluated in the paper.
func PaperWorkload() Workload {
	return Workload{
		CornerTurn: cornerturn.PaperSpec(),
		CSLC:       cslc.PaperSpec(fft.MixedRadix42),
		Beam:       beamsteer.PaperSpec(),
	}
}

// Validate checks every kernel spec.
func (w Workload) Validate() error {
	if err := w.CornerTurn.Validate(); err != nil {
		return err
	}
	if err := w.CSLC.Validate(); err != nil {
		return err
	}
	return w.Beam.Validate()
}

// Params holds the Table 2 row for one machine.
type Params struct {
	// ClockMHz is the implementation clock rate.
	ClockMHz float64
	// ALUs is the number of arithmetic units.
	ALUs int
	// PeakGFLOPS is the peak single-precision floating-point rate.
	PeakGFLOPS float64
	// Description summarizes the architecture for reports.
	Description string
}

// Result reports one kernel execution on one machine model.
type Result struct {
	Machine string
	Kernel  KernelID
	// Cycles is the simulated cycle count (the Table 3 quantity).
	Cycles uint64
	// Breakdown attributes cycles to causes (memory, compute, startup,
	// stalls, ...), mirroring the paper's Section 4 percentages.
	Breakdown sim.Breakdown
	// Stats carries event counters from the underlying simulators.
	Stats sim.Stats
	// Ops is the number of useful operations performed.
	Ops uint64
	// Words is the number of 32-bit words moved to/from memory.
	Words uint64
	// Verified is true when the machine's functional output was checked
	// against the golden kernel reference during the run.
	Verified bool
	// Notes carries qualitative observations (e.g. the Raw load-balance
	// extrapolation).
	Notes []string
}

// KCycles returns cycles in thousands, the unit of the paper's Table 3.
func (r Result) KCycles() float64 { return float64(r.Cycles) / 1e3 }

// OpsPerCycle returns achieved useful operations per cycle.
func (r Result) OpsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Cycles)
}

// TimeMS returns wall-clock milliseconds at the given clock rate.
func (r Result) TimeMS(clockMHz float64) float64 {
	return float64(r.Cycles) / (clockMHz * 1e3)
}

// MatMulRunner is implemented by machines that also support the
// extension matrix-multiply kernel.
type MatMulRunner interface {
	RunMatMul(spec matmul.Spec) (Result, error)
}

// Resettable is implemented by machine models whose instances may be
// reused across jobs. Reset rewinds every piece of simulation state —
// memory timelines, cache contents, accounting counters — to the
// just-constructed state, so a reused instance produces bit-identical
// cycle counts to a fresh one. Every kernel entry point performs the
// same rewind on entry; the exported contract exists so executors that
// cache instances can assert the capability up front, and so tests can
// verify the rewind stays complete as models grow state.
type Resettable interface {
	Reset()
}

// Machine is one architecture model: it can run the three kernels and
// report simulated cycles.
type Machine interface {
	// Name returns the machine's display name ("VIRAM", "Imagine", ...).
	Name() string
	// Params returns the Table 2 parameters.
	Params() Params
	// RunCornerTurn, RunCSLC and RunBeamSteering execute the kernels
	// functionally while accounting cycles.
	RunCornerTurn(spec cornerturn.Spec) (Result, error)
	RunCSLC(spec cslc.Spec) (Result, error)
	RunBeamSteering(spec beamsteer.Spec) (Result, error)
}

// Run dispatches kernel k of workload w on machine m.
func Run(m Machine, k KernelID, w Workload) (Result, error) {
	switch k {
	case CornerTurn:
		return m.RunCornerTurn(w.CornerTurn)
	case CSLC:
		return m.RunCSLC(w.CSLC)
	case BeamSteering:
		return m.RunBeamSteering(w.Beam)
	default:
		return Result{}, fmt.Errorf("core: unknown kernel %q", k)
	}
}

// StudyResults holds every (machine, kernel) result of one study run.
type StudyResults struct {
	Workload Workload
	machines []Machine
	results  map[string]map[KernelID]Result
}

// RunStudy executes every kernel of the workload on every machine. A
// failed run aborts the study; partial tables would be misleading.
func RunStudy(machines []Machine, w Workload) (*StudyResults, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	results := make(map[string]map[KernelID]Result)
	for _, m := range machines {
		results[m.Name()] = make(map[KernelID]Result)
		for _, k := range Kernels() {
			r, err := Run(m, k, w)
			if err != nil {
				return nil, fmt.Errorf("core: %s on %s: %w", k, m.Name(), err)
			}
			results[m.Name()][k] = r
		}
	}
	return NewStudyResults(machines, w, results)
}

// NewStudyResults assembles study results computed elsewhere — e.g. by
// a concurrent runner fanning (machine, kernel) pairs across a worker
// pool — enforcing the same completeness and functional-verification
// invariants as RunStudy.
func NewStudyResults(machines []Machine, w Workload, results map[string]map[KernelID]Result) (*StudyResults, error) {
	if len(machines) == 0 {
		return nil, errors.New("core: no machines")
	}
	sr := &StudyResults{
		Workload: w,
		machines: machines,
		results:  make(map[string]map[KernelID]Result),
	}
	for _, m := range machines {
		sr.results[m.Name()] = make(map[KernelID]Result)
		for _, k := range Kernels() {
			r, ok := results[m.Name()][k]
			if !ok {
				return nil, fmt.Errorf("core: missing result %s/%s", m.Name(), k)
			}
			if !r.Verified {
				return nil, fmt.Errorf("core: %s on %s: result not functionally verified", k, m.Name())
			}
			sr.results[m.Name()][k] = r
		}
	}
	return sr, nil
}

// Machines returns the machines in study order.
func (s *StudyResults) Machines() []Machine { return s.machines }

// MachineNames returns the display names in study order.
func (s *StudyResults) MachineNames() []string {
	names := make([]string, len(s.machines))
	for i, m := range s.machines {
		names[i] = m.Name()
	}
	return names
}

// Result returns the result for (machine, kernel); ok is false when the
// pair was not part of the study.
func (s *StudyResults) Result(machine string, k KernelID) (Result, bool) {
	mr, ok := s.results[machine]
	if !ok {
		return Result{}, false
	}
	r, ok := mr[k]
	return r, ok
}

// mustResult panics on a missing pair; internal helpers use it after
// RunStudy guaranteed completeness.
func (s *StudyResults) mustResult(machine string, k KernelID) Result {
	r, ok := s.Result(machine, k)
	if !ok {
		panic(fmt.Sprintf("core: missing result %s/%s", machine, k))
	}
	return r
}

// SpeedupCycles returns the Figure 8 quantity: baseline cycles divided by
// machine cycles for kernel k.
func (s *StudyResults) SpeedupCycles(baseline, machine string, k KernelID) float64 {
	b := s.mustResult(baseline, k)
	m := s.mustResult(machine, k)
	if m.Cycles == 0 {
		return 0
	}
	return float64(b.Cycles) / float64(m.Cycles)
}

// SpeedupTime returns the Figure 9 quantity: baseline execution time
// divided by machine execution time at each machine's own clock rate.
func (s *StudyResults) SpeedupTime(baseline, machine string, k KernelID) float64 {
	var bm, mm Machine
	for _, m := range s.machines {
		switch m.Name() {
		case baseline:
			bm = m
		case machine:
			mm = m
		}
	}
	if bm == nil || mm == nil {
		panic(fmt.Sprintf("core: unknown machine in speedup: %s or %s", baseline, machine))
	}
	b := s.mustResult(baseline, k)
	m := s.mustResult(machine, k)
	bt := b.TimeMS(bm.Params().ClockMHz)
	mt := m.TimeMS(mm.Params().ClockMHz)
	if mt == 0 {
		return 0
	}
	return bt / mt
}

// GeometricMeanSpeedup aggregates speedups over all kernels, the way the
// EEMBC comparison in the paper's Section 2.1 aggregates benchmarks.
func (s *StudyResults) GeometricMeanSpeedup(baseline, machine string, timeDomain bool) float64 {
	prod := 1.0
	ks := Kernels()
	for _, k := range ks {
		if timeDomain {
			prod *= s.SpeedupTime(baseline, machine, k)
		} else {
			prod *= s.SpeedupCycles(baseline, machine, k)
		}
	}
	return math.Pow(prod, 1/float64(len(ks)))
}

// BestMachine returns the machine with the fewest cycles on kernel k.
func (s *StudyResults) BestMachine(k KernelID) string {
	type entry struct {
		name   string
		cycles uint64
	}
	var entries []entry
	for _, m := range s.machines {
		entries = append(entries, entry{m.Name(), s.mustResult(m.Name(), k).Cycles})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].cycles != entries[j].cycles {
			return entries[i].cycles < entries[j].cycles
		}
		return entries[i].name < entries[j].name
	})
	return entries[0].name
}
