// Package study implements the design-space sweeps around the paper's
// fixed measurement points: the excursions its analysis gestures at
// (address-generator counts, tile counts, descriptor registers, dwell
// density, matrix size) as structured, testable experiments.
package study

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/imagine"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/machines"
	"sigkern/internal/rawsim"
	"sigkern/internal/viram"
)

// Point is one sweep sample: a label for the swept value and the
// simulated cycles per machine.
type Point struct {
	Label  string
	Cycles map[string]uint64
}

// MatrixSizes sweeps the corner-turn matrix edge across every machine.
func MatrixSizes(sizes []int) ([]Point, error) {
	var out []Point
	for _, n := range sizes {
		spec := cornerturn.Spec{Rows: n, Cols: n, BlockSize: 16}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		p := Point{Label: fmt.Sprintf("%dx%d", n, n), Cycles: map[string]uint64{}}
		for _, m := range machines.All() {
			r, err := m.RunCornerTurn(spec)
			if err != nil {
				return nil, fmt.Errorf("study: %s at %d: %w", m.Name(), n, err)
			}
			p.Cycles[m.Name()] = r.Cycles
		}
		out = append(out, p)
	}
	return out, nil
}

// VIRAMAddrGens sweeps the number of VIRAM address generators on the
// corner turn (the paper's 24% strided-limit factor).
func VIRAMAddrGens(gens []int) ([]Point, error) {
	var out []Point
	for _, g := range gens {
		cfg := viram.DefaultConfig()
		cfg.DRAM.AddrGens = g
		r, err := viram.New(cfg).RunCornerTurn(cornerturn.PaperSpec())
		if err != nil {
			return nil, err
		}
		out = append(out, Point{
			Label:  fmt.Sprintf("%d", g),
			Cycles: map[string]uint64{"VIRAM": r.Cycles},
		})
	}
	return out, nil
}

// RawTiles sweeps the Raw mesh edge on the corner turn. The shape this
// produces is the perimeter-versus-area story: tiles (and issue slots)
// grow with the mesh area but DRAM ports only with its perimeter, so the
// kernel flips from issue-bound below 4x4 to port-bound above it.
func RawTiles(edges []int) ([]Point, error) {
	var out []Point
	for _, e := range edges {
		cfg := rawsim.DefaultConfig()
		cfg.Mesh.Width, cfg.Mesh.Height = e, e
		r, err := rawsim.New(cfg).RunCornerTurn(cornerturn.PaperSpec())
		if err != nil {
			return nil, err
		}
		out = append(out, Point{
			Label:  fmt.Sprintf("%dx%d", e, e),
			Cycles: map[string]uint64{"Raw": r.Cycles},
		})
	}
	return out, nil
}

// ImagineDescriptors sweeps the stream-descriptor-register count on the
// fully software-pipelined corner turn.
func ImagineDescriptors(counts []int) ([]Point, error) {
	var out []Point
	for _, n := range counts {
		cfg := imagine.DefaultConfig()
		cfg.StreamDescRegs = n
		cfg.FullPipelining = true
		r, err := imagine.New(cfg).RunCornerTurn(cornerturn.PaperSpec())
		if err != nil {
			return nil, err
		}
		out = append(out, Point{
			Label:  fmt.Sprintf("%d", n),
			Cycles: map[string]uint64{"Imagine": r.Cycles},
		})
	}
	return out, nil
}

// BeamDwells sweeps the beam-steering dwell count across every machine.
func BeamDwells(dwells []int) ([]Point, error) {
	var out []Point
	for _, d := range dwells {
		spec := beamsteer.PaperSpec()
		spec.Dwells = d
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		p := Point{Label: fmt.Sprintf("%d", d), Cycles: map[string]uint64{}}
		for _, m := range machines.All() {
			r, err := m.RunBeamSteering(spec)
			if err != nil {
				return nil, err
			}
			p.Cycles[m.Name()] = r.Cycles
		}
		out = append(out, p)
	}
	return out, nil
}

// CSLCFFTSizes sweeps the CSLC sub-band transform length across every
// machine, holding the total sample count fixed (fewer, longer bands as
// the FFT grows). The paper fixes N=128; the sweep shows how each
// machine's CSLC cost moves as the working set and the per-transform
// startup change.
func CSLCFFTSizes(sizes []int) ([]Point, error) {
	var out []Point
	for _, n := range sizes {
		spec := cslc.PaperSpec(fft.BestRadix(n))
		spec.FFTSize = n
		// Keep roughly the paper's band overlap: bands span the samples
		// with a hop of 7/8 of the window.
		spec.SubBands = (spec.Samples-n)/(n*7/8) + 1
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		p := Point{Label: fmt.Sprintf("%d-pt x %d bands", n, spec.SubBands), Cycles: map[string]uint64{}}
		for _, m := range machines.All() {
			r, err := m.RunCSLC(spec)
			if err != nil {
				return nil, fmt.Errorf("study: %s at N=%d: %w", m.Name(), n, err)
			}
			p.Cycles[m.Name()] = r.Cycles
		}
		out = append(out, p)
	}
	return out, nil
}

// EqualClockSpeedups answers the paper's closing speculation — "if the
// same level of design effort were applied to these research
// architectures, we would expect much higher clock rates" — by reporting
// speedups over the baseline when every machine is normalized to the
// same clock. At equal clocks the time ratio equals the cycle ratio, so
// this is Figure 8 recast as wall-clock.
func EqualClockSpeedups(sr *core.StudyResults, baseline string) (map[string]map[core.KernelID]float64, error) {
	out := make(map[string]map[core.KernelID]float64)
	for _, name := range sr.MachineNames() {
		if name == baseline {
			continue
		}
		out[name] = make(map[core.KernelID]float64)
		for _, k := range core.Kernels() {
			s := sr.SpeedupCycles(baseline, name, k)
			if s <= 0 {
				return nil, fmt.Errorf("study: non-positive speedup for %s/%s", name, k)
			}
			out[name][k] = s
		}
	}
	return out, nil
}
