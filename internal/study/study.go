// Package study implements the design-space sweeps around the paper's
// fixed measurement points: the excursions its analysis gestures at
// (address-generator counts, tile counts, descriptor registers, dwell
// density, matrix size) as structured, testable experiments.
//
// Sweeps execute through the simulation service's worker pool
// (internal/svc), so the (point, machine) grid runs machine-parallel;
// the Sweeper type controls concurrency. The package-level functions
// keep the original serial-equivalent API (results are identical either
// way: every simulation runs on a fresh machine instance).
package study

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sigkern/internal/core"
	"sigkern/internal/imagine"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/machines"
	"sigkern/internal/rawsim"
	"sigkern/internal/svc"
	"sigkern/internal/viram"
)

// Point is one sweep sample: a label for the swept value and the
// simulated cycles per machine.
type Point struct {
	Label  string
	Cycles map[string]uint64
}

// Sweeper executes sweeps with configurable concurrency.
type Sweeper struct {
	// Concurrency is the number of simulations in flight at once;
	// <= 0 means 1 (serial).
	Concurrency int
	// Pool, when set, runs the sweep on an existing pool (e.g. the
	// simulation service's) instead of a private one, sharing its
	// metrics and memoization; Concurrency is then ignored.
	Pool *svc.Pool
	// Completed, when set, is a checkpoint of cells from a previous run:
	// verified cells are served from it without re-simulating, which is
	// how an interrupted sweep resumes. Unverified cells re-run.
	Completed *Checkpoint
	// OnCell, when set, is invoked once per freshly simulated cell (not
	// for cells served from Completed), serially from the collection
	// loop, in submission order, with the cell's wall-clock execution
	// time. Drivers use it to checkpoint progress and report per-cell
	// metrics.
	OnCell func(label, machine string, r core.Result, elapsed time.Duration)
}

// machineRun is one simulation of a sweep point: a column name and the
// function producing its cycles. Each run constructs its own machine,
// so runs are independent and safe to execute concurrently.
type machineRun struct {
	machine string
	run     func() (core.Result, error)
}

// pointRuns is one sweep point's label and simulations.
type pointRuns struct {
	label string
	runs  []machineRun
}

// sweep fans every (point, machine) simulation across the pool and
// reassembles points in order.
func (s Sweeper) sweep(points []pointRuns) ([]Point, error) {
	pool := s.Pool
	if pool == nil {
		workers := s.Concurrency
		if workers <= 0 {
			workers = 1
		}
		// Sweeps are batch work: no memo (each cell runs once) and a
		// generous per-simulation deadline.
		pool = svc.NewPool(svc.PoolOptions{
			Workers:      workers,
			JobTimeout:   time.Hour,
			MemoCapacity: -1,
		})
		defer pool.Close()
	}
	out := make([]Point, len(points))
	for i, p := range points {
		out[i] = Point{Label: p.label, Cycles: map[string]uint64{}}
	}
	// The whole sweep goes to the pool as one batch group: one queue
	// reservation per wave instead of a blocking Submit per cell. Cells
	// stay plain Run tasks — sweep closures bake in per-point machine
	// configurations, so two cells named "VIRAM" may be different
	// machines and must not share a reused instance.
	type cell struct {
		point, run int
	}
	var cells []cell
	var tasks []svc.Task
	for pi, p := range points {
		for ri, mr := range p.runs {
			// Resume: a verified cell from a previous run's checkpoint is
			// served as-is; everything else (including unverified cells)
			// re-simulates.
			if s.Completed != nil {
				if c, ok := s.Completed.Lookup(p.label, mr.machine); ok && c.Verified {
					out[pi].Cycles[mr.machine] = c.Cycles
					continue
				}
			}
			run := mr.run
			cells = append(cells, cell{point: pi, run: ri})
			tasks = append(tasks, svc.Task{
				Label:    fmt.Sprintf("%s @ %s", mr.machine, p.label),
				Priority: svc.PriorityBatch,
				Run: func(context.Context) (core.Result, error) {
					return run()
				},
			})
		}
	}
	futs, err := pool.SubmitBatch(context.Background(), tasks)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		label, machine := points[c.point].label, points[c.point].runs[c.run].machine
		r, err := futs[i].Wait(context.Background())
		if err != nil {
			return nil, fmt.Errorf("study: %s: %w", machine, err)
		}
		out[c.point].Cycles[machine] = r.Cycles
		if s.OnCell != nil {
			s.OnCell(label, machine, r, futs[i].Elapsed())
		}
	}
	return out, nil
}

// allMachineRuns builds one run per study machine, each on a fresh
// instance.
func allMachineRuns(run func(m core.Machine) (core.Result, error)) []machineRun {
	var runs []machineRun
	for _, m := range machines.All() {
		name := m.Name()
		runs = append(runs, machineRun{machine: name, run: func() (core.Result, error) {
			m, err := machines.ByName(name)
			if err != nil {
				return core.Result{}, err
			}
			return run(m)
		}})
	}
	return runs
}

// MachineColumns returns the union of machine names across the points
// in the study's canonical order (the paper's machine order), with any
// other names appended alphabetically — a fixed, deterministic column
// ordering for sweep tables.
func MachineColumns(pts []Point) []string {
	present := map[string]bool{}
	for _, p := range pts {
		for name := range p.Cycles {
			present[name] = true
		}
	}
	var cols []string
	for _, m := range machines.All() {
		if present[m.Name()] {
			cols = append(cols, m.Name())
			delete(present, m.Name())
		}
	}
	var rest []string
	for name := range present {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	return append(cols, rest...)
}

// MatrixSizes sweeps the corner-turn matrix edge across every machine.
func MatrixSizes(sizes []int) ([]Point, error) { return Sweeper{}.MatrixSizes(sizes) }

// MatrixSizes sweeps the corner-turn matrix edge across every machine.
func (s Sweeper) MatrixSizes(sizes []int) ([]Point, error) {
	var points []pointRuns
	for _, n := range sizes {
		spec := cornerturn.Spec{Rows: n, Cols: n, BlockSize: 16}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		points = append(points, pointRuns{
			label: fmt.Sprintf("%dx%d", n, n),
			runs: allMachineRuns(func(m core.Machine) (core.Result, error) {
				return m.RunCornerTurn(spec)
			}),
		})
	}
	return s.sweep(points)
}

// VIRAMAddrGens sweeps the number of VIRAM address generators on the
// corner turn (the paper's 24% strided-limit factor).
func VIRAMAddrGens(gens []int) ([]Point, error) { return Sweeper{}.VIRAMAddrGens(gens) }

// VIRAMAddrGens sweeps the number of VIRAM address generators on the
// corner turn (the paper's 24% strided-limit factor).
func (s Sweeper) VIRAMAddrGens(gens []int) ([]Point, error) {
	var points []pointRuns
	for _, g := range gens {
		g := g
		points = append(points, pointRuns{
			label: fmt.Sprintf("%d", g),
			runs: []machineRun{{machine: "VIRAM", run: func() (core.Result, error) {
				cfg := viram.DefaultConfig()
				cfg.DRAM.AddrGens = g
				return viram.New(cfg).RunCornerTurn(cornerturn.PaperSpec())
			}}},
		})
	}
	return s.sweep(points)
}

// RawTiles sweeps the Raw mesh edge on the corner turn. The shape this
// produces is the perimeter-versus-area story: tiles (and issue slots)
// grow with the mesh area but DRAM ports only with its perimeter, so the
// kernel flips from issue-bound below 4x4 to port-bound above it.
func RawTiles(edges []int) ([]Point, error) { return Sweeper{}.RawTiles(edges) }

// RawTiles sweeps the Raw mesh edge on the corner turn.
func (s Sweeper) RawTiles(edges []int) ([]Point, error) {
	var points []pointRuns
	for _, e := range edges {
		e := e
		points = append(points, pointRuns{
			label: fmt.Sprintf("%dx%d", e, e),
			runs: []machineRun{{machine: "Raw", run: func() (core.Result, error) {
				cfg := rawsim.DefaultConfig()
				cfg.Mesh.Width, cfg.Mesh.Height = e, e
				return rawsim.New(cfg).RunCornerTurn(cornerturn.PaperSpec())
			}}},
		})
	}
	return s.sweep(points)
}

// ImagineDescriptors sweeps the stream-descriptor-register count on the
// fully software-pipelined corner turn.
func ImagineDescriptors(counts []int) ([]Point, error) { return Sweeper{}.ImagineDescriptors(counts) }

// ImagineDescriptors sweeps the stream-descriptor-register count on the
// fully software-pipelined corner turn.
func (s Sweeper) ImagineDescriptors(counts []int) ([]Point, error) {
	var points []pointRuns
	for _, n := range counts {
		n := n
		points = append(points, pointRuns{
			label: fmt.Sprintf("%d", n),
			runs: []machineRun{{machine: "Imagine", run: func() (core.Result, error) {
				cfg := imagine.DefaultConfig()
				cfg.StreamDescRegs = n
				cfg.FullPipelining = true
				return imagine.New(cfg).RunCornerTurn(cornerturn.PaperSpec())
			}}},
		})
	}
	return s.sweep(points)
}

// BeamDwells sweeps the beam-steering dwell count across every machine.
func BeamDwells(dwells []int) ([]Point, error) { return Sweeper{}.BeamDwells(dwells) }

// BeamDwells sweeps the beam-steering dwell count across every machine.
func (s Sweeper) BeamDwells(dwells []int) ([]Point, error) {
	var points []pointRuns
	for _, d := range dwells {
		spec := beamsteer.PaperSpec()
		spec.Dwells = d
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		points = append(points, pointRuns{
			label: fmt.Sprintf("%d", d),
			runs: allMachineRuns(func(m core.Machine) (core.Result, error) {
				return m.RunBeamSteering(spec)
			}),
		})
	}
	return s.sweep(points)
}

// CSLCFFTSizes sweeps the CSLC sub-band transform length across every
// machine, holding the total sample count fixed (fewer, longer bands as
// the FFT grows). The paper fixes N=128; the sweep shows how each
// machine's CSLC cost moves as the working set and the per-transform
// startup change.
func CSLCFFTSizes(sizes []int) ([]Point, error) { return Sweeper{}.CSLCFFTSizes(sizes) }

// CSLCFFTSizes sweeps the CSLC sub-band transform length across every
// machine.
func (s Sweeper) CSLCFFTSizes(sizes []int) ([]Point, error) {
	var points []pointRuns
	for _, n := range sizes {
		spec := cslc.PaperSpec(fft.BestRadix(n))
		spec.FFTSize = n
		// Keep roughly the paper's band overlap: bands span the samples
		// with a hop of 7/8 of the window.
		if hop := n * 7 / 8; hop > 0 {
			spec.SubBands = (spec.Samples-n)/hop + 1
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("study: FFT size %d: %w", n, err)
		}
		points = append(points, pointRuns{
			label: fmt.Sprintf("%d-pt x %d bands", n, spec.SubBands),
			runs: allMachineRuns(func(m core.Machine) (core.Result, error) {
				return m.RunCSLC(spec)
			}),
		})
	}
	return s.sweep(points)
}

// EqualClockSpeedups answers the paper's closing speculation — "if the
// same level of design effort were applied to these research
// architectures, we would expect much higher clock rates" — by reporting
// speedups over the baseline when every machine is normalized to the
// same clock. At equal clocks the time ratio equals the cycle ratio, so
// this is Figure 8 recast as wall-clock.
func EqualClockSpeedups(sr *core.StudyResults, baseline string) (map[string]map[core.KernelID]float64, error) {
	out := make(map[string]map[core.KernelID]float64)
	for _, name := range sr.MachineNames() {
		if name == baseline {
			continue
		}
		out[name] = make(map[core.KernelID]float64)
		for _, k := range core.Kernels() {
			s := sr.SpeedupCycles(baseline, name, k)
			if s <= 0 {
				return nil, fmt.Errorf("study: non-positive speedup for %s/%s", name, k)
			}
			out[name][k] = s
		}
	}
	return out, nil
}
