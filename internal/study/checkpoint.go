package study

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"sigkern/internal/core"
)

// Cell is one completed sweep cell in a checkpoint: the point label, the
// machine column, and the cycles it simulated. Verified records whether
// the simulator checked its functional output against the golden kernel
// reference; only verified cells are trusted enough to skip on resume.
// ElapsedMS is the wall-clock simulation time of the cell (0 for cells
// restored from an older checkpoint or served from cache).
type Cell struct {
	Label     string  `json:"label"`
	Machine   string  `json:"machine"`
	Cycles    uint64  `json:"cycles"`
	Verified  bool    `json:"verified"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// Checkpoint is a crash-safe record of completed sweep cells. A sweep
// driver saves it after cells complete and reloads it with -resume, so a
// killed sweep restarts from where it died instead of from scratch.
// Cells are keyed by (label, machine); re-adding a cell overwrites it.
// Checkpoint is safe for concurrent use.
type Checkpoint struct {
	mu    sync.Mutex
	sweep string
	cells []Cell
	index map[string]int // (label \x00 machine) -> cells offset

	// Save is called after every completed cell and re-encodes the whole
	// grid each time, so the encoder and its buffer are kept on the
	// checkpoint and reused instead of re-allocated per save. saveMu
	// serialises saves (protecting buf/enc and the temp+rename dance)
	// without holding mu across file I/O and fsyncs.
	saveMu sync.Mutex
	buf    bytes.Buffer
	enc    *json.Encoder
}

// checkpointFile is the JSON shape on disk.
type checkpointFile struct {
	// Sweep names the sweep kind (e.g. "matrix") so a checkpoint cannot
	// silently resume a different sweep's grid.
	Sweep string `json:"sweep"`
	Cells []Cell `json:"cells"`
}

// NewCheckpoint returns an empty checkpoint for the named sweep.
func NewCheckpoint(sweep string) *Checkpoint {
	return &Checkpoint{sweep: sweep, index: make(map[string]int)}
}

func cellKey(label, machine string) string { return label + "\x00" + machine }

// Sweep returns the sweep kind this checkpoint belongs to.
func (c *Checkpoint) Sweep() string { return c.sweep }

// Len returns the number of recorded cells.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// Add records one completed cell, overwriting any previous record for
// the same (label, machine).
func (c *Checkpoint) Add(label, machine string, r core.Result, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cell := Cell{
		Label: label, Machine: machine,
		Cycles: r.Cycles, Verified: r.Verified,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if i, ok := c.index[cellKey(label, machine)]; ok {
		c.cells[i] = cell
		return
	}
	c.index[cellKey(label, machine)] = len(c.cells)
	c.cells = append(c.cells, cell)
}

// MachineSummary aggregates a checkpoint's cells for one machine — the
// per-cell metrics block a sweep driver prints alongside its table.
type MachineSummary struct {
	Machine string
	Cells   int
	// VerifiedCells counts cells whose functional output was checked.
	VerifiedCells int
	// KCycles is the summed simulated cycles, in thousands.
	KCycles float64
	// WallMS is the summed wall-clock simulation time in milliseconds
	// (cells restored from an older checkpoint contribute 0).
	WallMS float64
}

// Summary aggregates the recorded cells per machine, sorted by machine
// name.
func (c *Checkpoint) Summary() []MachineSummary {
	c.mu.Lock()
	byMachine := make(map[string]*MachineSummary)
	for _, cell := range c.cells {
		ms, ok := byMachine[cell.Machine]
		if !ok {
			ms = &MachineSummary{Machine: cell.Machine}
			byMachine[cell.Machine] = ms
		}
		ms.Cells++
		if cell.Verified {
			ms.VerifiedCells++
		}
		ms.KCycles += float64(cell.Cycles) / 1e3
		ms.WallMS += cell.ElapsedMS
	}
	c.mu.Unlock()
	out := make([]MachineSummary, 0, len(byMachine))
	for _, ms := range byMachine {
		out = append(out, *ms)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// Lookup returns the recorded cell for (label, machine). Callers decide
// what to trust; the sweeper only skips cells with Verified set.
func (c *Checkpoint) Lookup(label, machine string) (Cell, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[cellKey(label, machine)]
	if !ok {
		return Cell{}, false
	}
	return c.cells[i], true
}

// Save writes the checkpoint to path atomically: a temp file in the same
// directory is fsynced and renamed over the target, and the directory is
// fsynced after the rename, so a crash or power loss mid-save leaves
// either the old checkpoint or the new one, never a torn file.
func (c *Checkpoint) Save(path string) error {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	if c.enc == nil {
		c.enc = json.NewEncoder(&c.buf)
		c.enc.SetIndent("", "  ")
	}
	c.buf.Reset()
	c.mu.Lock()
	err := c.enc.Encode(checkpointFile{Sweep: c.sweep, Cells: c.cells})
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("study: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.json")
	if err != nil {
		return fmt.Errorf("study: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(c.buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("study: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("study: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("study: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("study: commit checkpoint: %w", err)
	}
	// Fsync the directory so the rename itself survives power loss; the
	// file fsync above only made the temp file's contents durable.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("study: open checkpoint dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("study: sync checkpoint dir: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by Save. A missing file is
// reported as-is (errors.Is(err, fs.ErrNotExist)) so drivers can treat
// "nothing to resume" separately from a corrupt checkpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("study: corrupt checkpoint %s: %w", path, err)
	}
	c := &Checkpoint{
		sweep: f.Sweep,
		cells: make([]Cell, 0, len(f.Cells)),
		index: make(map[string]int, len(f.Cells)),
	}
	for _, cell := range f.Cells {
		c.index[cellKey(cell.Label, cell.Machine)] = len(c.cells)
		c.cells = append(c.cells, cell)
	}
	return c, nil
}
