package study

import (
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/machines"
)

func TestMatrixSizesScaleRoughlyQuadratically(t *testing.T) {
	pts, err := MatrixSizes([]int{256, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, name := range []string{"PPC", "AltiVec", "VIRAM", "Imagine", "Raw"} {
		small := pts[0].Cycles[name]
		big := pts[1].Cycles[name]
		if small == 0 || big == 0 {
			t.Fatalf("%s: missing cycles", name)
		}
		ratio := float64(big) / float64(small)
		// 4x the elements: between 3x and 6x the cycles (startup effects
		// and cache behaviour bend it).
		if ratio < 3 || ratio > 6 {
			t.Errorf("%s: 512/256 cycle ratio = %.2f, want ~4", name, ratio)
		}
	}
}

func TestVIRAMAddrGensMonotone(t *testing.T) {
	pts, err := VIRAMAddrGens([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Cycles["VIRAM"] >= pts[i-1].Cycles["VIRAM"] {
			t.Fatalf("more address generators did not help: %v -> %v",
				pts[i-1].Cycles, pts[i].Cycles)
		}
	}
}

func TestRawTilesPerimeterVsArea(t *testing.T) {
	pts, err := RawTiles([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	c2 := pts[0].Cycles["Raw"]
	c4 := pts[1].Cycles["Raw"]
	c8 := pts[2].Cycles["Raw"]
	// Issue-bound region: 4x4 is much faster than 2x2.
	if float64(c2)/float64(c4) < 2.5 {
		t.Fatalf("2x2 (%d) to 4x4 (%d) gain too small", c2, c4)
	}
	// Port-bound region: 8x8 does NOT extend the scaling — ports grow
	// with the perimeter while tiles grow with the area.
	if c8 < c4 {
		t.Fatalf("8x8 (%d) beat 4x4 (%d); the corner turn should be port-bound", c8, c4)
	}
}

func TestImagineDescriptorsNeverHurt(t *testing.T) {
	pts, err := ImagineDescriptors([]int{2, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Cycles["Imagine"] > pts[i-1].Cycles["Imagine"] {
			t.Fatalf("more descriptors slowed the corner turn: %v -> %v",
				pts[i-1].Cycles, pts[i].Cycles)
		}
	}
}

func TestBeamDwellsLinear(t *testing.T) {
	pts, err := BeamDwells([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for name, c4 := range pts[0].Cycles {
		c8 := pts[1].Cycles[name]
		ratio := float64(c8) / float64(c4)
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("%s: 8/4 dwell ratio = %.2f, want ~2 (linear)", name, ratio)
		}
	}
}

func TestEqualClockSpeedups(t *testing.T) {
	sr, err := core.RunStudy(machines.All(), core.PaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	eq, err := EqualClockSpeedups(sr, machines.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(eq) != 4 { // PPC, VIRAM, Imagine, Raw
		t.Fatalf("%d machines in equal-clock view", len(eq))
	}
	// At equal clock, every research chip beats the baseline on every
	// kernel — the paper's technology-scaling conclusion.
	for _, name := range []string{"VIRAM", "Imagine", "Raw"} {
		for _, k := range core.Kernels() {
			if eq[name][k] <= 1 {
				t.Errorf("%s/%s equal-clock speedup %.2f <= 1", name, k, eq[name][k])
			}
		}
	}
}

func TestCSLCFFTSizeCrossover(t *testing.T) {
	// The paper notes that "the small size of the FFT reduces the amount
	// of software pipelining and increases start-up overheads" on
	// Imagine. The sweep exposes the crossover: at 32-point transforms
	// the per-kernel dispatch cost hands the win to VIRAM (which
	// vectorizes across bands, indifferent to transform length); from the
	// paper's 128-point size upward, Imagine leads.
	pts, err := CSLCFFTSizes([]int{32, 128, 512})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Cycles["VIRAM"] >= pts[0].Cycles["Imagine"] {
		t.Errorf("32-pt: VIRAM (%d) should beat startup-bound Imagine (%d)",
			pts[0].Cycles["VIRAM"], pts[0].Cycles["Imagine"])
	}
	for _, p := range pts[1:] {
		if p.Cycles["Imagine"] >= p.Cycles["VIRAM"] {
			t.Errorf("%s: Imagine (%d) not ahead of VIRAM (%d)",
				p.Label, p.Cycles["Imagine"], p.Cycles["VIRAM"])
		}
	}
	// Longer transforms amortize per-FFT startup on Imagine: the 512-pt
	// point costs less than the 32-pt point despite equal sample counts.
	if pts[2].Cycles["Imagine"] >= pts[0].Cycles["Imagine"] {
		t.Errorf("Imagine startup not amortized: %v", pts)
	}
}

func TestSweeperConcurrencyMatchesSerial(t *testing.T) {
	serial, err := Sweeper{Concurrency: 1}.BeamDwells([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweeper{Concurrency: 8}.BeamDwells([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("point counts differ: %d vs %d", len(serial), len(parallel))
	}
	// Every job runs on a fresh machine instance, so concurrency must
	// not change a single cycle count.
	for i := range serial {
		if serial[i].Label != parallel[i].Label {
			t.Fatalf("point %d: label %q vs %q", i, serial[i].Label, parallel[i].Label)
		}
		for name, c := range serial[i].Cycles {
			if pc := parallel[i].Cycles[name]; pc != c {
				t.Errorf("%s @ %s: serial %d cycles, parallel %d", name, serial[i].Label, c, pc)
			}
		}
	}
}

func TestSweepInvalidSpecs(t *testing.T) {
	sw := Sweeper{Concurrency: 2}
	tests := []struct {
		name string
		run  func() ([]Point, error)
	}{
		{"non-power-of-two FFT size", func() ([]Point, error) { return sw.CSLCFFTSizes([]int{100}) }},
		{"FFT size below minimum", func() ([]Point, error) { return sw.CSLCFFTSizes([]int{1}) }},
		{"zero dwells", func() ([]Point, error) { return sw.BeamDwells([]int{0}) }},
		{"negative dwells", func() ([]Point, error) { return sw.BeamDwells([]int{-3}) }},
		{"zero matrix edge", func() ([]Point, error) { return sw.MatrixSizes([]int{0}) }},
		{"negative matrix edge", func() ([]Point, error) { return sw.MatrixSizes([]int{-16}) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pts, err := tc.run()
			if err == nil {
				t.Fatalf("want error, got %d points", len(pts))
			}
		})
	}
}

func TestMachineColumnsPaperOrder(t *testing.T) {
	pts := []Point{{
		Label: "x",
		Cycles: map[string]uint64{
			"Raw": 1, "PPC": 1, "VIRAM": 1, "Imagine": 1, "AltiVec": 1,
		},
	}}
	got := MachineColumns(pts)
	want := []string{"PPC", "AltiVec", "VIRAM", "Imagine", "Raw"}
	if len(got) != len(want) {
		t.Fatalf("columns %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("columns %v, want %v", got, want)
		}
	}
	// Names outside the study sort alphabetically after the paper order.
	pts[0].Cycles["Zeta"] = 1
	pts[0].Cycles["Alpha"] = 1
	got = MachineColumns(pts)
	if got[5] != "Alpha" || got[6] != "Zeta" {
		t.Fatalf("extra columns not sorted: %v", got)
	}
}
