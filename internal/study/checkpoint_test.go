package study

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sigkern/internal/core"
)

// countingPoints builds a 2-point x 2-machine grid whose runs return
// deterministic cycles and count their invocations, so tests can prove
// which cells actually re-simulated.
func countingPoints(calls *atomic.Int64) []pointRuns {
	cellRun := func(cycles uint64) func() (core.Result, error) {
		return func() (core.Result, error) {
			calls.Add(1)
			return core.Result{Cycles: cycles, Verified: true}, nil
		}
	}
	return []pointRuns{
		{label: "p0", runs: []machineRun{
			{machine: "A", run: cellRun(100)},
			{machine: "B", run: cellRun(200)},
		}},
		{label: "p1", runs: []machineRun{
			{machine: "A", run: cellRun(300)},
			{machine: "B", run: cellRun(400)},
		}},
	}
}

// TestSweepResumesFromCheckpoint is the crash-safety acceptance check:
// a sweep interrupted after some cells resumes from its checkpoint,
// re-simulating only the missing cells, and the assembled points are
// identical to an uninterrupted run.
func TestSweepResumesFromCheckpoint(t *testing.T) {
	var fullCalls atomic.Int64
	want, err := Sweeper{}.sweep(countingPoints(&fullCalls))
	if err != nil {
		t.Fatal(err)
	}
	if fullCalls.Load() != 4 {
		t.Fatalf("full sweep ran %d cells, want 4", fullCalls.Load())
	}

	// The "crashed" run completed p0 before dying.
	cp := NewCheckpoint("test")
	cp.Add("p0", "A", core.Result{Cycles: 100, Verified: true}, 0)
	cp.Add("p0", "B", core.Result{Cycles: 200, Verified: true}, 0)

	var resumedCalls atomic.Int64
	var cellsSeen []string
	got, err := Sweeper{
		Completed: cp,
		OnCell: func(label, machine string, r core.Result, elapsed time.Duration) {
			cellsSeen = append(cellsSeen, label+"/"+machine)
			cp.Add(label, machine, r, elapsed)
		},
	}.sweep(countingPoints(&resumedCalls))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed sweep differs:\nfull:    %+v\nresumed: %+v", want, got)
	}
	if resumedCalls.Load() != 2 {
		t.Fatalf("resumed sweep ran %d cells, want 2 (p0 was checkpointed)", resumedCalls.Load())
	}
	// OnCell fires only for freshly simulated cells, and the checkpoint
	// now holds the whole grid.
	if !reflect.DeepEqual(cellsSeen, []string{"p1/A", "p1/B"}) {
		t.Fatalf("OnCell saw %v", cellsSeen)
	}
	if cp.Len() != 4 {
		t.Fatalf("checkpoint holds %d cells, want 4", cp.Len())
	}
}

// TestSweepReRunsUnverifiedCheckpointCells proves resume only trusts
// cells whose functional output was verified; anything else re-runs.
func TestSweepReRunsUnverifiedCheckpointCells(t *testing.T) {
	cp := NewCheckpoint("test")
	cp.Add("p0", "A", core.Result{Cycles: 999999, Verified: false}, 0)

	var calls atomic.Int64
	got, err := Sweeper{Completed: cp}.sweep(countingPoints(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("ran %d cells, want 4 (unverified cell must re-run)", calls.Load())
	}
	if got[0].Cycles["A"] != 100 {
		t.Fatalf("unverified checkpoint cycles served: %d", got[0].Cycles["A"])
	}
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	cp := NewCheckpoint("matrix")
	cp.Add("256x256", "VIRAM", core.Result{Cycles: 123, Verified: true}, 0)
	cp.Add("256x256", "Raw", core.Result{Cycles: 456, Verified: false}, 0)
	// Overwrite is keyed by (label, machine).
	cp.Add("256x256", "VIRAM", core.Result{Cycles: 124, Verified: true}, 0)
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sweep() != "matrix" || loaded.Len() != 2 {
		t.Fatalf("loaded sweep=%q len=%d", loaded.Sweep(), loaded.Len())
	}
	cell, ok := loaded.Lookup("256x256", "VIRAM")
	if !ok || cell.Cycles != 124 || !cell.Verified {
		t.Fatalf("VIRAM cell: %+v ok=%v", cell, ok)
	}
	if cell, _ := loaded.Lookup("256x256", "Raw"); cell.Verified {
		t.Fatalf("Raw cell verified flag not preserved: %+v", cell)
	}
	if _, ok := loaded.Lookup("512x512", "VIRAM"); ok {
		t.Fatal("phantom cell")
	}

	// The atomic save leaves no temp litter behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".checkpoint-") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

func TestLoadCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCheckpoint(filepath.Join(dir, "absent.json")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
	bad := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(bad, []byte(`{"sweep":"matrix","cells":[{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bad); err == nil || errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("corrupt file: %v", err)
	}
}
