package report

import (
	"fmt"
	"io"

	"sigkern/internal/roofline"
)

// rooflineRows renders the grid cells into table rows: one row per
// (machine, kernel) cell, machines in Table 1 order as produced by
// roofline.Grid. Model-only cells leave the simulation columns blank.
func rooflineRows(cells []roofline.Cell) [][]string {
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		sim, ratio, ok := "-", "-", "-"
		if c.Simulated {
			sim = KCycles(c.SimCycles)
			ratio = fmt.Sprintf("%.2f", c.ErrorRatio)
			if c.WithinEnvelope {
				ok = "yes"
			} else {
				ok = "DRIFT"
			}
		}
		rows = append(rows, []string{
			c.Machine,
			string(c.Kernel),
			c.Bound,
			KCycles(c.PeakCycles),
			KCycles(c.Cycles),
			sim,
			ratio,
			fmt.Sprintf("[%.0f, %.0f]", c.EnvelopeLo, c.EnvelopeHi),
			ok,
		})
	}
	return rows
}

// rooflineHeaders labels the grid columns; the model columns are the
// paper's Table 4 "peak" and "strided" expectations, the ratio its
// "measured/expected" column.
var rooflineHeaders = []string{
	"Machine", "Kernel", "Bound", "Peak model", "Model", "Simulated", "Sim/Model", "Envelope", "OK",
}

// RenderRoofline writes the predicted-cycles grid — the regenerated and
// extended Table 4 — as an aligned text table. Cycle columns are in
// kilocycles like the paper's tables; cells outside their model-error
// envelope render DRIFT in the OK column.
func RenderRoofline(w io.Writer, title string, cells []roofline.Cell) error {
	return Table(w, title, rooflineHeaders, rooflineRows(cells))
}

// RooflineCSV writes the grid in CSV with raw cycle counts (not the
// kilocycle reporting unit), for downstream tooling.
func RooflineCSV(w io.Writer, cells []roofline.Cell) error {
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		sim, ratio, within := "", "", ""
		if c.Simulated {
			sim = fmt.Sprintf("%d", c.SimCycles)
			ratio = fmt.Sprintf("%.4f", c.ErrorRatio)
			within = fmt.Sprintf("%t", c.WithinEnvelope)
		}
		rows = append(rows, []string{
			c.Machine,
			string(c.Kernel),
			c.Bound,
			fmt.Sprintf("%d", c.ComputeBound),
			fmt.Sprintf("%d", c.MemBound),
			fmt.Sprintf("%d", c.PeakCycles),
			fmt.Sprintf("%d", c.Cycles),
			sim,
			ratio,
			fmt.Sprintf("%g", c.EnvelopeLo),
			fmt.Sprintf("%g", c.EnvelopeHi),
			within,
		})
	}
	headers := []string{
		"machine", "kernel", "bound", "compute_bound_cycles", "memory_bound_cycles",
		"peak_cycles", "cycles", "simulated_cycles", "error_ratio",
		"envelope_lo", "envelope_hi", "within_envelope",
	}
	return CSV(w, headers, rows)
}
