// Package report renders the study's tables and figures as aligned text
// tables, log-scale text bar charts (Figures 8 and 9 use log axes in the
// paper), and CSV for downstream plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table writes an aligned ASCII table with a header row.
func Table(w io.Writer, title string, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		if len(row) != len(headers) {
			return fmt.Errorf("report: row has %d cells, header has %d", len(row), len(headers))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(headers); err != nil {
		return err
	}
	var sep []string
	for _, width := range widths {
		sep = append(sep, strings.Repeat("-", width))
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// BarSeries is one group of bars in a chart: a label (kernel name) and
// one value per series (machine).
type BarSeries struct {
	Label  string
	Values []float64
}

// LogBarChart renders grouped horizontal bars on a log10 axis, the text
// analogue of the paper's Figures 8 and 9. Values must be positive.
func LogBarChart(w io.Writer, title string, series []string, groups []BarSeries, width int) error {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	for _, g := range groups {
		if len(g.Values) != len(series) {
			return fmt.Errorf("report: group %q has %d values, want %d", g.Label, len(g.Values), len(series))
		}
		for _, v := range g.Values {
			if v <= 0 {
				return fmt.Errorf("report: non-positive value %v in %q (log axis)", v, g.Label)
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s (log scale, full bar = %.1f)\n", title, maxV); err != nil {
		return err
	}
	nameW := 0
	for _, s := range series {
		if len(s) > nameW {
			nameW = len(s)
		}
	}
	logMax := math.Log10(maxV * 1.001)
	// The axis spans from 1 (bar length 0) to maxV (full width); values
	// below 1 get a minimal bar.
	for _, g := range groups {
		if _, err := fmt.Fprintf(w, "%s\n", g.Label); err != nil {
			return err
		}
		for i, s := range series {
			v := g.Values[i]
			frac := 0.0
			if logMax > 0 && v > 1 {
				frac = math.Log10(v) / logMax
			}
			n := int(frac*float64(width) + 0.5)
			if n < 1 {
				n = 1
			}
			bar := strings.Repeat("#", n)
			if _, err := fmt.Fprintf(w, "  %-*s |%-*s %8.2f\n", nameW, s, width, bar, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// CSV writes rows as comma-separated values with a header. Cells
// containing commas or quotes are quoted.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	all := append([][]string{headers}, rows...)
	for _, row := range all {
		if len(row) != len(headers) {
			return fmt.Errorf("report: csv row has %d cells, want %d", len(row), len(headers))
		}
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// KCycles formats a cycle count in the paper's Table 3 unit (thousands).
func KCycles(c uint64) string {
	return fmt.Sprintf("%.0f", float64(c)/1e3)
}

// Speedup formats a speedup factor.
func Speedup(s float64) string {
	if s >= 100 {
		return fmt.Sprintf("%.0f", s)
	}
	return fmt.Sprintf("%.1f", s)
}

// ResultRow is one parsed line of a StudyCSV file.
type ResultRow struct {
	Machine string
	Kernel  string
	Cycles  uint64
}

// ParseStudyCSV reads the CSV written by StudyCSV back into rows. It
// understands only the subset CSV emits (quoted cells never appear in
// machine or kernel names).
func ParseStudyCSV(r io.Reader) ([]ResultRow, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		return nil, fmt.Errorf("report: CSV has no data rows")
	}
	header := strings.Split(lines[0], ",")
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, need := range []string{"machine", "kernel", "cycles"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("report: CSV missing %q column", need)
		}
	}
	var rows []ResultRow
	for n, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != len(header) {
			return nil, fmt.Errorf("report: CSV line %d has %d cells, want %d", n+2, len(cells), len(header))
		}
		var cycles uint64
		if _, err := fmt.Sscanf(cells[col["cycles"]], "%d", &cycles); err != nil {
			return nil, fmt.Errorf("report: CSV line %d: bad cycles %q", n+2, cells[col["cycles"]])
		}
		rows = append(rows, ResultRow{
			Machine: cells[col["machine"]],
			Kernel:  cells[col["kernel"]],
			Cycles:  cycles,
		})
	}
	return rows, nil
}
