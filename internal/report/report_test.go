package report

import (
	"bytes"
	"strings"
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, "Title", []string{"A", "Long header"},
		[][]string{{"x", "1"}, {"longer cell", "2"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "A ") || !strings.Contains(lines[1], "Long header") {
		t.Fatalf("header line %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator line %q", lines[2])
	}
	// Columns align: "1" and "2" start at the same offset.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "2") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRowWidthMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Table(&buf, "", []string{"A"}, [][]string{{"x", "y"}}); err == nil {
		t.Fatal("mismatched row accepted")
	}
}

func TestLogBarChartScaling(t *testing.T) {
	var buf bytes.Buffer
	err := LogBarChart(&buf, "Chart", []string{"m1", "m2"},
		[]BarSeries{{Label: "k", Values: []float64{10, 1000}}}, 40)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Log scale: 1000 gets a full bar (40), 10 gets a third (13-14).
	var short, long int
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "m1") {
			short = strings.Count(line, "#")
		}
		if strings.Contains(line, "m2") {
			long = strings.Count(line, "#")
		}
	}
	if long < 39 || long > 41 {
		t.Fatalf("full bar = %d, want ~40", long)
	}
	if short < 12 || short > 15 {
		t.Fatalf("log bar for 10 = %d, want ~13 (one third of 40)", short)
	}
}

func TestLogBarChartRejectsNonPositive(t *testing.T) {
	var buf bytes.Buffer
	err := LogBarChart(&buf, "c", []string{"m"},
		[]BarSeries{{Label: "k", Values: []float64{0}}}, 20)
	if err == nil {
		t.Fatal("zero value accepted on log axis")
	}
	err = LogBarChart(&buf, "c", []string{"m"},
		[]BarSeries{{Label: "k", Values: []float64{1, 2}}}, 20)
	if err == nil {
		t.Fatal("mismatched series length accepted")
	}
}

func TestCSVEscaping(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"a", "b"}, [][]string{{`x,y`, `he said "hi"`}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
	if err := CSV(&buf, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("mismatched CSV row accepted")
	}
}

func TestFormatters(t *testing.T) {
	if KCycles(554_000) != "554" {
		t.Fatalf("KCycles = %q", KCycles(554_000))
	}
	if Speedup(8.25) != "8.2" {
		t.Fatalf("Speedup(8.25) = %q", Speedup(8.25))
	}
	if Speedup(201) != "201" {
		t.Fatalf("Speedup(201) = %q", Speedup(201))
	}
}

func TestParseStudyCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	headers := []string{"machine", "kernel", "cycles", "kcycles", "ops", "ops_per_cycle", "words"}
	rows := [][]string{
		{"VIRAM", "cslc", "480000", "480", "1", "1", "1"},
		{"Raw", "corner-turn", "147564", "148", "1", "1", "1"},
	}
	if err := CSV(&buf, headers, rows); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseStudyCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 {
		t.Fatalf("%d rows", len(parsed))
	}
	if parsed[0].Machine != "VIRAM" || parsed[0].Cycles != 480000 {
		t.Fatalf("row 0 = %+v", parsed[0])
	}
	if parsed[1].Kernel != "corner-turn" {
		t.Fatalf("row 1 = %+v", parsed[1])
	}
}

func TestParseStudyCSVErrors(t *testing.T) {
	cases := []string{
		"",                           // empty
		"machine,kernel\nv,c",        // missing cycles column
		"machine,kernel,cycles\na,b", // short row
		"machine,kernel,cycles\na,b,notanumber",
	}
	for i, c := range cases {
		if _, err := ParseStudyCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHTMLReportStructure(t *testing.T) {
	sr := fakeStudy(t)
	var buf bytes.Buffer
	if err := HTMLReport(&buf, sr, "base"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Table 1", "Table 2", "Table 3",
		"Figure 8", "Figure 9", "<svg", "</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Escaping: no raw machine name should break out of a tag.
	if strings.Contains(out, "<fast>") {
		t.Error("unescaped content in HTML")
	}
}

// fakeStudy builds a minimal two-machine study for report tests.
func fakeStudy(t *testing.T) *core.StudyResults {
	t.Helper()
	sr, err := core.RunStudy([]core.Machine{
		&stubMachine{name: "base", clock: 1000, scale: 10},
		&stubMachine{name: "fast", clock: 300, scale: 1},
	}, core.PaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

type stubMachine struct {
	name  string
	clock float64
	scale uint64
}

func (s *stubMachine) Name() string { return s.name }
func (s *stubMachine) Params() core.Params {
	return core.Params{ClockMHz: s.clock, ALUs: 1, PeakGFLOPS: 1}
}
func (s *stubMachine) result(k core.KernelID, base uint64) (core.Result, error) {
	r := core.Result{Machine: s.name, Kernel: k, Cycles: base * s.scale,
		Ops: 1, Words: 1, Verified: true}
	r.Breakdown.Add("compute", base*s.scale)
	return r, nil
}
func (s *stubMachine) RunCornerTurn(cornerturn.Spec) (core.Result, error) {
	return s.result(core.CornerTurn, 1000)
}
func (s *stubMachine) RunCSLC(cslc.Spec) (core.Result, error) {
	return s.result(core.CSLC, 2000)
}
func (s *stubMachine) RunBeamSteering(beamsteer.Spec) (core.Result, error) {
	return s.result(core.BeamSteering, 100)
}
