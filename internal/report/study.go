package report

import (
	"fmt"
	"io"

	"sigkern/internal/core"
	"sigkern/internal/perfmodel"
)

// RenderTable1 writes the paper's Table 1: peak throughput in 32-bit
// words per cycle.
func RenderTable1(w io.Writer) error {
	var rows [][]string
	for _, t := range perfmodel.Table1() {
		rows = append(rows, []string{
			t.Machine,
			fmt.Sprintf("%.0f", t.OnChipRW),
			fmt.Sprintf("%.0f", t.OffChipRW),
			fmt.Sprintf("%.0f", t.Compute),
		})
	}
	return Table(w, "Table 1. Peak throughput (32-bit words per cycle)",
		[]string{"Machine", "On-chip R/W", "Off-chip R/W", "Computation"}, rows)
}

// RenderTable2 writes the paper's Table 2: processor parameters.
func RenderTable2(w io.Writer, machines []core.Machine) error {
	var rows [][]string
	for _, m := range machines {
		p := m.Params()
		rows = append(rows, []string{
			m.Name(),
			fmt.Sprintf("%.0f", p.ClockMHz),
			fmt.Sprintf("%d", p.ALUs),
			fmt.Sprintf("%.2f", p.PeakGFLOPS),
		})
	}
	return Table(w, "Table 2. Processor parameters",
		[]string{"Machine", "Clock (MHz)", "# of ALUs", "Peak GFLOPS"}, rows)
}

// RenderTable3 writes the paper's Table 3: experimental results in
// thousands of cycles.
func RenderTable3(w io.Writer, sr *core.StudyResults) error {
	var rows [][]string
	for _, name := range sr.MachineNames() {
		row := []string{name}
		for _, k := range core.Kernels() {
			r, ok := sr.Result(name, k)
			if !ok {
				return fmt.Errorf("report: missing result %s/%s", name, k)
			}
			row = append(row, KCycles(r.Cycles))
		}
		rows = append(rows, row)
	}
	headers := []string{"Machine"}
	for _, k := range core.Kernels() {
		headers = append(headers, k.Title())
	}
	return Table(w, "Table 3. Experimental results (cycles in 10^3)", headers, rows)
}

// RenderTable4 writes the reconstructed Table 4: the Section 2.5
// performance model's expected corner-turn cycles against the simulated
// measurement.
func RenderTable4(w io.Writer, sr *core.StudyResults) error {
	measured := make(map[string]uint64)
	for _, t := range perfmodel.Table1() {
		if r, ok := sr.Result(t.Machine, core.CornerTurn); ok {
			measured[t.Machine] = r.Cycles
		}
	}
	rows4, err := perfmodel.Table4(sr.Workload.CornerTurn, measured)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, r := range rows4 {
		rows = append(rows, []string{
			r.Machine,
			KCycles(r.Expected),
			KCycles(r.Strided),
			KCycles(r.Measured),
			fmt.Sprintf("%.2fx", r.Ratio()),
		})
	}
	return Table(w,
		"Table 4. Corner turn: performance-model expectation vs. measured (cycles in 10^3; reconstructed)",
		[]string{"Machine", "Peak model", "Strided model", "Measured", "Measured/peak"}, rows)
}

// speedupGroups builds the Figure 8/9 bar groups: one group per kernel,
// one bar per non-baseline machine.
func speedupGroups(sr *core.StudyResults, baseline string, timeDomain bool) ([]string, []BarSeries, error) {
	var series []string
	for _, name := range sr.MachineNames() {
		if name != baseline {
			series = append(series, name)
		}
	}
	var groups []BarSeries
	for _, k := range core.Kernels() {
		g := BarSeries{Label: k.Title()}
		for _, name := range series {
			var s float64
			if timeDomain {
				s = sr.SpeedupTime(baseline, name, k)
			} else {
				s = sr.SpeedupCycles(baseline, name, k)
			}
			if s <= 0 {
				return nil, nil, fmt.Errorf("report: non-positive speedup for %s/%s", name, k)
			}
			g.Values = append(g.Values, s)
		}
		groups = append(groups, g)
	}
	return series, groups, nil
}

// RenderFigure8 writes the paper's Figure 8: speedup over the baseline
// in cycle counts, on a log axis.
func RenderFigure8(w io.Writer, sr *core.StudyResults, baseline string) error {
	series, groups, err := speedupGroups(sr, baseline, false)
	if err != nil {
		return err
	}
	return LogBarChart(w,
		fmt.Sprintf("Figure 8. Speedup compared with %s (cycles)", baseline),
		series, groups, 50)
}

// RenderFigure9 writes the paper's Figure 9: speedup over the baseline
// in execution time at each machine's own clock rate, on a log axis.
func RenderFigure9(w io.Writer, sr *core.StudyResults, baseline string) error {
	series, groups, err := speedupGroups(sr, baseline, true)
	if err != nil {
		return err
	}
	return LogBarChart(w,
		fmt.Sprintf("Figure 9. Speedup compared with %s (execution time at real clock rates)", baseline),
		series, groups, 50)
}

// RenderGeoMeans writes the geometric-mean speedup over the baseline per
// machine, in both cycle and time domains — the aggregate view the paper
// uses for its EEMBC comparison in Section 2.1.
func RenderGeoMeans(w io.Writer, sr *core.StudyResults, baseline string) error {
	var rows [][]string
	for _, name := range sr.MachineNames() {
		if name == baseline {
			continue
		}
		rows = append(rows, []string{
			name,
			Speedup(sr.GeometricMeanSpeedup(baseline, name, false)),
			Speedup(sr.GeometricMeanSpeedup(baseline, name, true)),
		})
	}
	return Table(w,
		fmt.Sprintf("Geometric-mean speedup over %s across the three kernels", baseline),
		[]string{"Machine", "cycles", "time"}, rows)
}

// RenderBreakdowns writes each result's cycle breakdown, mirroring the
// paper's Section 4 percentage analyses.
func RenderBreakdowns(w io.Writer, sr *core.StudyResults) error {
	for _, k := range core.Kernels() {
		if _, err := fmt.Fprintf(w, "%s cycle breakdowns:\n", k.Title()); err != nil {
			return err
		}
		for _, name := range sr.MachineNames() {
			r, ok := sr.Result(name, k)
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "  %-8s %s\n", name, r.Breakdown.String()); err != nil {
				return err
			}
			for _, note := range r.Notes {
				if _, err := fmt.Fprintf(w, "           note: %s\n", note); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// StudyCSV emits every (machine, kernel) result as CSV rows.
func StudyCSV(w io.Writer, sr *core.StudyResults) error {
	headers := []string{"machine", "kernel", "cycles", "kcycles", "ops", "ops_per_cycle", "words"}
	var rows [][]string
	for _, name := range sr.MachineNames() {
		for _, k := range core.Kernels() {
			r, ok := sr.Result(name, k)
			if !ok {
				return fmt.Errorf("report: missing result %s/%s", name, k)
			}
			rows = append(rows, []string{
				name, string(k),
				fmt.Sprintf("%d", r.Cycles),
				KCycles(r.Cycles),
				fmt.Sprintf("%d", r.Ops),
				fmt.Sprintf("%.3f", r.OpsPerCycle()),
				fmt.Sprintf("%d", r.Words),
			})
		}
	}
	return CSV(w, headers, rows)
}
