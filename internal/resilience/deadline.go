package resilience

import (
	"context"
	"fmt"
	"time"
)

// WithTimeout derives a context bounded by d when d > 0, clamped so a
// tighter parent deadline always wins — the deadline-propagation helper
// the HTTP layer uses for ?timeout= query parameters. The returned
// cancel must always be called; with d <= 0 it is a no-op cancel over
// the parent.
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	if parent, ok := ctx.Deadline(); ok && time.Until(parent) < d {
		// Parent is already tighter; inherit it.
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// ParseTimeout parses a request timeout string (Go duration syntax,
// e.g. "250ms", "30s"): empty means none (0), and values are clamped
// into (0, max] so a client cannot demand an unbounded or absurd wait.
func ParseTimeout(s string, max time.Duration) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("resilience: bad timeout %q: %w", s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("resilience: timeout %q must be positive", s)
	}
	if max > 0 && d > max {
		d = max
	}
	return d, nil
}

// Remaining returns the time left before ctx's deadline, or def when it
// has none — the budget a retry loop can still spend.
func Remaining(ctx context.Context, def time.Duration) time.Duration {
	if dl, ok := ctx.Deadline(); ok {
		return time.Until(dl)
	}
	return def
}
