package resilience

import (
	"sync"
	"time"
)

// Brownout defaults: enter degraded service when the admission queue is
// three-quarters full, leave only once it has drained below one quarter,
// and never flip twice within the hold interval. The asymmetric
// thresholds plus the dwell are what keep a load level that hovers at
// the boundary from flapping the service between tiers.
const (
	DefaultBrownoutEnterFrac = 0.75
	DefaultBrownoutExitFrac  = 0.25
	DefaultBrownoutMinHold   = 2 * time.Second
)

// BrownoutInputs is one observation of service pressure: admission-queue
// occupancy, the executed-job p99 (the dual-window latency split's
// simulator-only signal), and how many circuit breakers are not closed.
type BrownoutInputs struct {
	// QueueDepth / QueueCap describe the admission queue feeding the
	// workers; QueueCap <= 0 disables the queue signal.
	QueueDepth int
	QueueCap   int
	// ExecP99 is the rolling executed-job p99 latency; 0 (cold window)
	// never triggers the latency signal.
	ExecP99 time.Duration
	// BreakersOpen counts circuit breakers that are not Closed. Any
	// non-closed breaker is treated as pressure: it both enters brownout
	// and blocks exit.
	BreakersOpen int
}

// BrownoutConfig tunes the hysteresis controller. The zero value uses
// the defaults above with the latency signal disabled.
type BrownoutConfig struct {
	// EnterQueueFrac is the queue occupancy (depth/cap) at or above
	// which brownout engages; ExitQueueFrac is the occupancy the queue
	// must drain to (inclusive) before brownout can clear. Enter must
	// exceed Exit or every observation near the boundary would flap.
	EnterQueueFrac float64
	ExitQueueFrac  float64
	// EnterExecP99 engages brownout when the executed-job p99 reaches
	// it; ExitExecP99 is the level p99 must fall back to (inclusive)
	// before clearing. <= 0 disables the latency signal.
	EnterExecP99 time.Duration
	ExitExecP99  time.Duration
	// MinHold is the dwell: once the controller flips, it holds that
	// verdict for at least MinHold regardless of the inputs. The very
	// first engagement is exempt — a fresh controller must be able to
	// brown out immediately.
	MinHold time.Duration
	// Now is the clock (tests inject a fake one); nil means time.Now.
	Now func() time.Time
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.EnterQueueFrac <= 0 {
		c.EnterQueueFrac = DefaultBrownoutEnterFrac
	}
	if c.ExitQueueFrac <= 0 {
		c.ExitQueueFrac = DefaultBrownoutExitFrac
	}
	if c.MinHold <= 0 {
		c.MinHold = DefaultBrownoutMinHold
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// BrownoutStats is a point-in-time view of the controller.
type BrownoutStats struct {
	Active bool `json:"active"`
	// Flips counts verdict changes since construction (both directions).
	Flips uint64 `json:"flips"`
	// Since is when the current verdict took effect (zero before the
	// first flip).
	Since time.Time `json:"since"`
}

// Brownout is the hysteresis admission controller behind ?tier=auto:
// it watches queue depth, executed-job p99, and breaker state, and
// decides whether the service should degrade to the analytic estimate
// tier. Enter and exit thresholds are deliberately far apart, and a
// minimum hold time separates flips, so load hovering at one threshold
// cannot oscillate the service between full simulation and estimates.
// Safe for concurrent use.
type Brownout struct {
	cfg BrownoutConfig

	mu       sync.Mutex
	active   bool
	lastFlip time.Time
	flips    uint64
}

// NewBrownout builds a controller; zero-value fields of cfg take the
// package defaults.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	return &Brownout{cfg: cfg.withDefaults()}
}

// Observe folds one pressure reading into the controller and returns
// the current verdict: true means browned out (serve the estimate
// tier). Each caller must resolve its request from this single return
// value — re-reading Active mid-request could see a different verdict.
func (b *Brownout) Observe(in BrownoutInputs) bool {
	enter := false
	exit := true
	if in.QueueCap > 0 {
		frac := float64(in.QueueDepth) / float64(in.QueueCap)
		if frac >= b.cfg.EnterQueueFrac {
			enter = true
		}
		if frac > b.cfg.ExitQueueFrac {
			exit = false
		}
	}
	if b.cfg.EnterExecP99 > 0 && in.ExecP99 >= b.cfg.EnterExecP99 {
		enter = true
	}
	if b.cfg.ExitExecP99 > 0 && in.ExecP99 > b.cfg.ExitExecP99 {
		exit = false
	}
	if in.BreakersOpen > 0 {
		enter = true
		exit = false
	}

	now := b.cfg.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.active && enter:
		// First engagement is exempt from the dwell; later re-entries
		// honor it so a flap at the enter threshold stays bounded.
		if b.lastFlip.IsZero() || now.Sub(b.lastFlip) >= b.cfg.MinHold {
			b.active = true
			b.lastFlip = now
			b.flips++
		}
	case b.active && exit:
		if now.Sub(b.lastFlip) >= b.cfg.MinHold {
			b.active = false
			b.lastFlip = now
			b.flips++
		}
	}
	return b.active
}

// Active returns the current verdict without folding in a new
// observation.
func (b *Brownout) Active() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// Stats returns a snapshot of the controller.
func (b *Brownout) Stats() BrownoutStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BrownoutStats{Active: b.active, Flips: b.flips, Since: b.lastFlip}
}
