package resilience

import (
	"sync"
	"testing"
	"time"
)

// brownoutClock hands the brownout controller a deterministic, manually
// advanced time source.
type brownoutClock struct {
	mu sync.Mutex
	t  time.Time
}

func newBrownoutClock() *brownoutClock {
	return &brownoutClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *brownoutClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *brownoutClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBrownoutHysteresis(t *testing.T) {
	clk := newBrownoutClock()
	b := NewBrownout(BrownoutConfig{MinHold: time.Second, Now: clk.Now})

	if b.Observe(BrownoutInputs{QueueDepth: 0, QueueCap: 8}) {
		t.Fatal("idle service browned out")
	}
	// 6/8 = 0.75 meets the default enter fraction; the first engagement
	// is exempt from the dwell.
	if !b.Observe(BrownoutInputs{QueueDepth: 6, QueueCap: 8}) {
		t.Fatal("queue at enter threshold did not engage brownout")
	}
	// In the hysteresis band (between exit and enter): verdict holds.
	clk.Advance(2 * time.Second)
	if !b.Observe(BrownoutInputs{QueueDepth: 4, QueueCap: 8}) {
		t.Fatal("brownout cleared inside the hysteresis band")
	}
	// 2/8 = 0.25 is at the exit fraction (inclusive) and the dwell has
	// passed: clear.
	clk.Advance(2 * time.Second)
	if b.Observe(BrownoutInputs{QueueDepth: 2, QueueCap: 8}) {
		t.Fatal("drained queue did not clear brownout")
	}
	st := b.Stats()
	if st.Flips != 2 || st.Active {
		t.Fatalf("stats = %+v, want 2 flips, inactive", st)
	}
}

func TestBrownoutDwellBlocksFlapping(t *testing.T) {
	clk := newBrownoutClock()
	b := NewBrownout(BrownoutConfig{MinHold: 10 * time.Second, Now: clk.Now})

	full := BrownoutInputs{QueueDepth: 8, QueueCap: 8}
	empty := BrownoutInputs{QueueDepth: 0, QueueCap: 8}
	if !b.Observe(full) {
		t.Fatal("full queue did not engage brownout")
	}
	// Oscillate the inputs hard inside the dwell: the verdict must not
	// move, in either direction.
	for i := 0; i < 20; i++ {
		clk.Advance(100 * time.Millisecond)
		in := empty
		if i%2 == 0 {
			in = full
		}
		if !b.Observe(in) {
			t.Fatalf("observation %d flipped the verdict inside the dwell", i)
		}
	}
	if got := b.Stats().Flips; got != 1 {
		t.Fatalf("flips = %d inside dwell, want 1", got)
	}
	clk.Advance(10 * time.Second)
	if b.Observe(empty) {
		t.Fatal("empty queue after dwell did not clear brownout")
	}
}

func TestBrownoutExecP99Signal(t *testing.T) {
	clk := newBrownoutClock()
	b := NewBrownout(BrownoutConfig{
		EnterExecP99: 100 * time.Millisecond,
		ExitExecP99:  50 * time.Millisecond,
		MinHold:      time.Second,
		Now:          clk.Now,
	})
	if b.Observe(BrownoutInputs{ExecP99: 99 * time.Millisecond}) {
		t.Fatal("p99 below enter threshold engaged brownout")
	}
	if !b.Observe(BrownoutInputs{ExecP99: 100 * time.Millisecond}) {
		t.Fatal("p99 at enter threshold did not engage brownout")
	}
	clk.Advance(2 * time.Second)
	if !b.Observe(BrownoutInputs{ExecP99: 80 * time.Millisecond}) {
		t.Fatal("p99 above exit threshold cleared brownout")
	}
	clk.Advance(2 * time.Second)
	if b.Observe(BrownoutInputs{ExecP99: 50 * time.Millisecond}) {
		t.Fatal("p99 at exit threshold did not clear brownout")
	}
}

func TestBrownoutBreakerSignal(t *testing.T) {
	clk := newBrownoutClock()
	b := NewBrownout(BrownoutConfig{MinHold: time.Second, Now: clk.Now})
	if !b.Observe(BrownoutInputs{QueueCap: 8, BreakersOpen: 1}) {
		t.Fatal("open breaker did not engage brownout")
	}
	// The breaker blocks exit even with an empty queue.
	clk.Advance(2 * time.Second)
	if !b.Observe(BrownoutInputs{QueueCap: 8, BreakersOpen: 1}) {
		t.Fatal("brownout cleared while a breaker was open")
	}
	if b.Observe(BrownoutInputs{QueueCap: 8}) {
		t.Fatal("brownout held after the breaker closed")
	}
}

func TestBrownoutColdSignalsNeverEngage(t *testing.T) {
	b := NewBrownout(BrownoutConfig{})
	// No queue (cap 0), cold latency window, closed breakers: every
	// signal disabled — the controller must stay off.
	for i := 0; i < 10; i++ {
		if b.Observe(BrownoutInputs{}) {
			t.Fatal("controller engaged with every signal disabled")
		}
	}
}
