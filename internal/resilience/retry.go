// Package resilience provides the failure-handling primitives the
// simulation service composes around the (deterministic) simulators:
// transient-error classification, retry with exponential backoff and
// jitter, a per-backend circuit breaker, and deadline-propagation
// helpers. The simulators themselves are pure and never fail
// transiently; transient errors enter the system from the environment —
// fault injection (internal/faults), cancelled contexts, saturated
// queues — and this package decides which of them are worth retrying.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// transientMarker classifies errors without coupling packages: any
// error (anywhere in the Unwrap chain) exposing Transient() true is
// retryable. internal/faults' injected errors implement it.
type transientMarker interface{ Transient() bool }

// transientError wraps an error to mark it retryable.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true. A nil err stays
// nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is classified retryable: some error
// in its unwrap tree exposes Transient() true. The walk covers both
// single-error wrapping and errors.Join aggregates (Unwrap() []error) —
// any transient branch makes the whole error retryable. Context
// cancellation and deadline expiry are never transient — retrying work
// whose caller has given up only wastes a worker.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return markedTransient(err)
}

// markedTransient walks err's full unwrap tree; the first marker found
// on a branch decides for that branch.
func markedTransient(err error) bool {
	if err == nil {
		return false
	}
	if m, ok := err.(transientMarker); ok {
		return m.Transient()
	}
	switch u := err.(type) {
	case interface{ Unwrap() error }:
		return markedTransient(u.Unwrap())
	case interface{ Unwrap() []error }:
		for _, e := range u.Unwrap() {
			if markedTransient(e) {
				return true
			}
		}
	}
	return false
}

// RetryPolicy configures Do: capped exponential backoff with full
// jitter, a bounded attempt count, and context awareness. The zero
// value is usable (DefaultRetry's parameters).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included);
	// <= 0 means 5. MaxAttempts 1 disables retries.
	MaxAttempts int
	// BaseDelay is the first backoff; <= 0 means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <= 0 means 100ms.
	MaxDelay time.Duration
	// Multiplier grows the backoff between attempts; < 1 means 2.
	Multiplier float64
	// Jitter in [0, 1] is the fraction of each delay drawn uniformly at
	// random (full jitter at 1 spreads retry storms); < 0 means 0.5.
	Jitter float64
	// Sleep substitutes the backoff sleep in tests; nil uses a real,
	// context-aware timer.
	Sleep func(ctx context.Context, d time.Duration)
}

// DefaultRetry is the service's retry policy: five attempts, 1ms base
// doubling to a 100ms cap, half jitter. Simulation jobs are
// milliseconds long, so backoff stays in the same order of magnitude.
func DefaultRetry() RetryPolicy { return RetryPolicy{} }

// normalized fills defaulted fields.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	return p
}

// Delay returns the backoff before retry attempt (1-based: attempt 1 is
// the delay after the first failure), jittered.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	p = p.normalized()
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		// Full jitter over the jittered fraction: deterministic cycle
		// counts never depend on retry timing, so a shared global source
		// is fine here.
		d = d*(1-p.Jitter) + rand.Float64()*d*p.Jitter
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, fails non-transiently, exhausts
// MaxAttempts, or ctx ends. It returns the last error; attempts made is
// reported alongside so callers can meter retries.
func (p RetryPolicy) Do(ctx context.Context, op func(ctx context.Context) error) (attempts int, err error) {
	p = p.normalized()
	for attempt := 1; ; attempt++ {
		// Re-check the context before every retry attempt (not only after
		// the backoff sleep): a custom Sleep that ignores cancellation, or
		// a cancellation racing the timer, must not let a dead job burn
		// another attempt of its retry budget.
		if attempt > 1 && ctx.Err() != nil {
			return attempt - 1, fmt.Errorf("resilience: giving up after %d attempts: %w", attempt-1, ctx.Err())
		}
		err = op(ctx)
		if err == nil || attempt >= p.MaxAttempts || !IsTransient(err) {
			return attempt, err
		}
		if ctx.Err() != nil {
			return attempt, fmt.Errorf("resilience: giving up after %d attempts: %w", attempt, ctx.Err())
		}
		delay := p.Delay(attempt)
		if p.Sleep != nil {
			p.Sleep(ctx, delay)
		} else if !sleepCtx(ctx, delay) {
			return attempt, fmt.Errorf("resilience: giving up after %d attempts: %w", attempt, ctx.Err())
		}
	}
}

// sleepCtx sleeps d, returning false if ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
