package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Allow while the breaker rejects calls.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is the circuit's position.
type BreakerState string

// The classic three states: Closed passes everything and counts
// failures; Open rejects everything until the open interval elapses;
// HalfOpen admits a bounded number of probes whose outcomes decide
// between reclosing and reopening.
const (
	Closed   BreakerState = "closed"
	Open     BreakerState = "open"
	HalfOpen BreakerState = "half-open"
)

// BreakerConfig parameterizes a Breaker. The zero value is usable.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open; <= 0 means 5.
	FailureThreshold int
	// OpenInterval is how long the breaker stays open before admitting
	// probes; <= 0 means 5s.
	OpenInterval time.Duration
	// HalfOpenProbes is how many concurrent probe calls half-open
	// admits; <= 0 means 1.
	HalfOpenProbes int
	// Now substitutes the clock in tests; nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) normalized() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenInterval <= 0 {
		c.OpenInterval = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker guarding one backend (one machine model
// in the service). It is safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last tripped
	probes    int       // in-flight probes while half-open
	rejected  uint64
	tripCount uint64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.normalized(), state: Closed}
}

// Allow asks to place one call. It returns ErrBreakerOpen while the
// circuit rejects traffic; on nil the caller must report the outcome
// with Record exactly once.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenInterval {
			b.rejected++
			return fmt.Errorf("%w (retry in %v)", ErrBreakerOpen, b.retryAfterLocked())
		}
		b.state = HalfOpen
		b.probes = 1
		return nil
	default: // HalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			b.rejected++
			return fmt.Errorf("%w (half-open, probes busy)", ErrBreakerOpen)
		}
		b.probes++
		return nil
	}
}

// Cancel releases a call admitted by Allow without reporting an
// outcome — for calls that never exercised the backend (shed by the
// queue, answered from a memo cache), where neither success nor failure
// would be evidence. Without this, an unconsumed half-open probe slot
// would wedge the breaker rejecting traffic until restart.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probes > 0 {
		b.probes--
	}
}

// Record reports the outcome of a call admitted by Allow.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.tripLocked()
		}
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if ok {
			// One good probe recloses the circuit.
			b.state = Closed
			b.failures = 0
			return
		}
		b.tripLocked()
	case Open:
		// A straggler from before the trip; outcomes while open don't
		// move the state machine.
	}
}

// tripLocked opens the circuit.
func (b *Breaker) tripLocked() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probes = 0
	b.tripCount++
}

// State returns the current position, accounting for open-interval
// expiry (an open breaker past its interval reports half-open-eligible
// as Open until the next Allow flips it; callers wanting scheduling
// hints should use RetryAfter).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns how long callers should wait before retrying: zero
// when the breaker admits traffic, the remaining open interval
// otherwise.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	return b.retryAfterLocked()
}

func (b *Breaker) retryAfterLocked() time.Duration {
	rem := b.cfg.OpenInterval - b.cfg.Now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// Stats reports (trips, rejected) counters.
func (b *Breaker) Stats() (trips, rejected uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripCount, b.rejected
}

// BreakerSet keys breakers by backend name, creating them on demand
// with a shared config. It is safe for concurrent use.
type BreakerSet struct {
	cfg BreakerConfig
	mu  sync.Mutex
	m   map[string]*Breaker
}

// NewBreakerSet returns an empty set.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, m: make(map[string]*Breaker)}
}

// Get returns the breaker for name, creating it closed on first use.
func (s *BreakerSet) Get(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = NewBreaker(s.cfg)
		s.m[name] = b
	}
	return b
}

// States returns name -> state for every breaker created so far.
func (s *BreakerSet) States() map[string]BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerState, len(s.m))
	for name, b := range s.m {
		out[name] = b.State()
	}
	return out
}
