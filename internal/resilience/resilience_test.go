package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestIsTransientClassification(t *testing.T) {
	base := errors.New("boom")
	if IsTransient(base) {
		t.Fatal("plain error classified transient")
	}
	if !IsTransient(MarkTransient(base)) {
		t.Fatal("marked error not transient")
	}
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
	// Wrapping preserves the classification and errors.Is identity.
	wrapped := fmt.Errorf("job x: %w", MarkTransient(base))
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient not recognized")
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("errors.Is lost through MarkTransient")
	}
	// Context errors are never transient, even when marked.
	if IsTransient(context.Canceled) || IsTransient(context.DeadlineExceeded) {
		t.Fatal("context errors classified transient")
	}
	if IsTransient(fmt.Errorf("x: %w", context.DeadlineExceeded)) {
		t.Fatal("wrapped deadline classified transient")
	}
}

func TestIsTransientJoinedErrors(t *testing.T) {
	base := errors.New("boom")
	// errors.Join hides markers behind Unwrap() []error; the walk must
	// still find them on any branch.
	if !IsTransient(errors.Join(base, MarkTransient(errors.New("flaky")))) {
		t.Fatal("transient marker lost inside errors.Join")
	}
	if IsTransient(errors.Join(base, errors.New("other"))) {
		t.Fatal("joined permanent errors classified transient")
	}
	if !IsTransient(fmt.Errorf("x: %w", errors.Join(MarkTransient(base)))) {
		t.Fatal("wrapped join lost classification")
	}
	// A joined context error still vetoes retrying: the caller gave up.
	if IsTransient(errors.Join(MarkTransient(base), context.Canceled)) {
		t.Fatal("join containing canceled classified transient")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) {}}
	attempts, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	calls := 0
	perm := errors.New("bad spec")
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) {}}
	attempts, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || attempts != 1 || calls != 1 {
		t.Fatalf("permanent error retried: attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 4, Sleep: func(context.Context, time.Duration) {}}
	attempts, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return MarkTransient(errors.New("always flaky"))
	})
	if err == nil || attempts != 4 || calls != 4 {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
	if !IsTransient(err) {
		t.Fatal("final error lost its classification")
	}
}

func TestRetryHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond}
	attempts, err := p.Do(ctx, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return MarkTransient(errors.New("flaky"))
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if attempts > 3 {
		t.Fatalf("kept retrying after cancel: %d attempts", attempts)
	}
}

func TestRetryDelayGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2, Jitter: 0}
	var got []time.Duration
	for a := 1; a <= 6; a++ {
		got = append(got, p.Delay(a))
	}
	want := []time.Duration{1, 2, 4, 8, 8, 8}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("delay[%d] = %v, want %v", i+1, got[i], want[i]*time.Millisecond)
		}
	}
	// With jitter the delay stays within (1-j)*d .. d.
	pj := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := pj.Delay(1)
		if d < 5*time.Millisecond || d > 10*time.Millisecond {
			t.Fatalf("jittered delay %v out of [5ms, 10ms]", d)
		}
	}
}

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestBreaker(threshold int, open time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	return NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		OpenInterval:     open,
		Now:              clk.Now,
	}), clk
}

func TestBreakerLifecycle(t *testing.T) {
	b, clk := newTestBreaker(3, time.Second)
	if b.State() != Closed {
		t.Fatalf("initial state %s", b.State())
	}
	// Failures below threshold keep it closed; a success resets them.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(false)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatal("success did not reset the failure count")
	}
	// Three consecutive failures trip it open.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(false)
	}
	if b.State() != Open {
		t.Fatalf("state %s after threshold failures", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}
	if ra := b.RetryAfter(); ra <= 0 || ra > time.Second {
		t.Fatalf("RetryAfter = %v", ra)
	}
	// After the open interval, one probe is admitted (half-open) and
	// concurrent calls are rejected.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %s, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("half-open admitted a second probe")
	}
	// Failed probe reopens.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state %s after failed probe", b.State())
	}
	// Next interval: successful probe recloses.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state %s after good probe", b.State())
	}
	trips, rejected := b.Stats()
	if trips != 2 || rejected < 2 {
		t.Fatalf("stats: trips=%d rejected=%d", trips, rejected)
	}
}

// TestBreakerCancelReleasesProbeSlot pins the Allow/Cancel pairing: a
// half-open probe slot taken by a call that never reached the backend
// (shed, cache hit) must be released without deciding the circuit, or
// the breaker wedges rejecting traffic until restart.
func TestBreakerCancelReleasesProbeSlot(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false) // trips open
	clk.advance(time.Second)
	// Half-open: the single probe slot is taken by the first Allow.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("half-open admitted a second probe")
	}
	// Cancel frees the slot without reclosing or reopening.
	b.Cancel()
	if b.State() != HalfOpen {
		t.Fatalf("state %s after cancel, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe slot not released by cancel: %v", err)
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state %s after good probe", b.State())
	}
	// Cancel outside half-open is a no-op.
	b.Cancel()
	if b.State() != Closed {
		t.Fatalf("cancel moved a closed breaker to %s", b.State())
	}
}

func TestBreakerSet(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{FailureThreshold: 1, OpenInterval: time.Hour})
	a := s.Get("VIRAM")
	if s.Get("VIRAM") != a {
		t.Fatal("Get not stable")
	}
	if err := a.Allow(); err != nil {
		t.Fatal(err)
	}
	a.Record(false)
	states := s.States()
	if states["VIRAM"] != Open {
		t.Fatalf("states: %v", states)
	}
	if s.Get("Raw").State() != Closed {
		t.Fatal("unrelated breaker affected")
	}
}

func TestWithTimeout(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), 0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout set a deadline")
	}
	ctx2, cancel2 := WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Fatal("timeout did not set a deadline")
	}
	// A tighter parent wins.
	parent, pcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer pcancel()
	child, ccancel := WithTimeout(parent, time.Hour)
	defer ccancel()
	dl, _ := child.Deadline()
	if time.Until(dl) > time.Second {
		t.Fatalf("child deadline %v looser than parent", time.Until(dl))
	}
}

func TestParseTimeout(t *testing.T) {
	if d, err := ParseTimeout("", time.Minute); err != nil || d != 0 {
		t.Fatalf("empty: %v %v", d, err)
	}
	if d, err := ParseTimeout("250ms", time.Minute); err != nil || d != 250*time.Millisecond {
		t.Fatalf("250ms: %v %v", d, err)
	}
	if d, err := ParseTimeout("2h", time.Minute); err != nil || d != time.Minute {
		t.Fatalf("clamp: %v %v", d, err)
	}
	for _, bad := range []string{"soon", "-5s", "0s"} {
		if _, err := ParseTimeout(bad, time.Minute); err == nil {
			t.Errorf("ParseTimeout(%q) accepted", bad)
		}
	}
}

func TestRemaining(t *testing.T) {
	if d := Remaining(context.Background(), time.Minute); d != time.Minute {
		t.Fatalf("no-deadline remaining %v", d)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if d := Remaining(ctx, time.Minute); d <= 0 || d > time.Second {
		t.Fatalf("deadline remaining %v", d)
	}
}
