package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %d, want 0", c.Now())
	}
	if got := c.Advance(5); got != 5 {
		t.Fatalf("Advance(5) = %d, want 5", got)
	}
	if got := c.Advance(3); got != 8 {
		t.Fatalf("second Advance = %d, want 8", got)
	}
}

func TestClockAdvanceToNeverMovesBackward(t *testing.T) {
	var c Clock
	c.Advance(10)
	if got := c.AdvanceTo(4); got != 10 {
		t.Fatalf("AdvanceTo(4) = %d, want 10 (no backward motion)", got)
	}
	if got := c.AdvanceTo(15); got != 15 {
		t.Fatalf("AdvanceTo(15) = %d, want 15", got)
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(100)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset clock at %d, want 0", c.Now())
	}
}

func TestBreakdownAddGetTotal(t *testing.T) {
	var b Breakdown
	b.Add("memory", 70)
	b.Add("compute", 30)
	b.Add("memory", 10)
	if got := b.Get("memory"); got != 80 {
		t.Fatalf("Get(memory) = %d, want 80", got)
	}
	if got := b.Total(); got != 110 {
		t.Fatalf("Total = %d, want 110", got)
	}
	if got := b.Get("absent"); got != 0 {
		t.Fatalf("Get(absent) = %d, want 0", got)
	}
}

func TestBreakdownFraction(t *testing.T) {
	var b Breakdown
	if f := b.Fraction("x"); f != 0 {
		t.Fatalf("empty breakdown Fraction = %v, want 0", f)
	}
	b.Add("a", 25)
	b.Add("b", 75)
	if f := b.Fraction("b"); math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("Fraction(b) = %v, want 0.75", f)
	}
}

func TestBreakdownCategoriesSorted(t *testing.T) {
	var b Breakdown
	b.Add("zeta", 1)
	b.Add("alpha", 1)
	b.Add("mid", 1)
	got := b.Categories()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Categories = %v, want %v", got, want)
		}
	}
}

func TestBreakdownMergeAndClone(t *testing.T) {
	var a, b Breakdown
	a.Add("x", 5)
	b.Add("x", 7)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 12 || a.Get("y") != 3 {
		t.Fatalf("after merge: x=%d y=%d, want 12 3", a.Get("x"), a.Get("y"))
	}
	c := a.Clone()
	c.Add("x", 100)
	if a.Get("x") != 12 {
		t.Fatalf("Clone is not independent: a.x=%d", a.Get("x"))
	}
}

func TestBreakdownScale(t *testing.T) {
	var b Breakdown
	b.Add("busy", 73)
	b.Scale(64, 73) // the Raw load-balance extrapolation shape
	if got := b.Get("busy"); got != 64 {
		t.Fatalf("Scale(64/73) of 73 = %d, want 64", got)
	}
}

func TestBreakdownScaleZeroDenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale with zero denominator did not panic")
		}
	}()
	var b Breakdown
	b.Add("x", 1)
	b.Scale(1, 0)
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.Add("mem", 90)
	b.Add("cpu", 10)
	s := b.String()
	if !strings.Contains(s, "mem=90 (90.0%)") || !strings.Contains(s, "cpu=10 (10.0%)") {
		t.Fatalf("String = %q", s)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Inc("loads", 4)
	s.Inc("loads", 6)
	s.Inc("stores", 1)
	if s.Get("loads") != 10 {
		t.Fatalf("loads = %d, want 10", s.Get("loads"))
	}
	var other Stats
	other.Inc("loads", 1)
	other.Inc("flops", 2)
	s.Merge(other)
	if s.Get("loads") != 11 || s.Get("flops") != 2 {
		t.Fatalf("after merge: %s", s.String())
	}
	if !strings.Contains(s.String(), "flops=2") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 8, 0}, {1, 8, 1}, {8, 8, 1}, {9, 8, 2}, {16, 8, 2}, {17, 8, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilDiv by zero did not panic")
		}
	}()
	CeilDiv(1, 0)
}

// Property: CeilDiv(a,b)*b >= a and (CeilDiv(a,b)-1)*b < a for a > 0.
func TestCeilDivProperty(t *testing.T) {
	f := func(a uint64, b uint64) bool {
		a %= 1 << 32
		b = b%1024 + 1
		q := CeilDiv(a, b)
		if q*b < a {
			return false
		}
		if a > 0 && (q-1)*b >= a {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPRNGDeterministic(t *testing.T) {
	a := NewPRNG(42)
	b := NewPRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestPRNGZeroSeedRemapped(t *testing.T) {
	p := NewPRNG(0)
	if p.Uint64() == 0 && p.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestPRNGIntnRange(t *testing.T) {
	p := NewPRNG(7)
	for i := 0; i < 1000; i++ {
		v := p.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestPRNGIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewPRNG(1).Intn(0)
}

func TestPRNGFloat64Range(t *testing.T) {
	p := NewPRNG(9)
	for i := 0; i < 1000; i++ {
		v := p.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestPRNGNormFloat64Moments(t *testing.T) {
	p := NewPRNG(11)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := p.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}
