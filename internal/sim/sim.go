// Package sim provides the primitives shared by every machine timing
// model in this repository: a cycle clock, stat counters, cycle-breakdown
// accounting, and a deterministic PRNG for workload generation.
//
// All machine models in internal/viram, internal/imagine, internal/rawsim
// and internal/ppc are "functional + timing" simulators: they perform the
// real data transformation while a cycle-driven engine accounts time.
// This package holds the accounting half.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Clock is a monotonically advancing cycle counter. The zero value is a
// clock at cycle zero, ready to use.
type Clock struct {
	cycle uint64
}

// Now returns the current cycle.
func (c *Clock) Now() uint64 { return c.cycle }

// Advance moves the clock forward by n cycles and returns the new time.
func (c *Clock) Advance(n uint64) uint64 {
	c.cycle += n
	return c.cycle
}

// AdvanceTo moves the clock forward to cycle t. It is a no-op if t is in
// the past; clocks never move backward.
func (c *Clock) AdvanceTo(t uint64) uint64 {
	if t > c.cycle {
		c.cycle = t
	}
	return c.cycle
}

// Reset returns the clock to cycle zero.
func (c *Clock) Reset() { c.cycle = 0 }

// Breakdown attributes simulated cycles to named categories (for example
// "memory", "compute", "startup"). The paper reports such breakdowns for
// every kernel/machine pair, so every simulator in this repository
// produces one. The zero value is ready to use.
type Breakdown struct {
	categories map[string]uint64
}

// Add attributes n cycles to category name.
func (b *Breakdown) Add(name string, n uint64) {
	if b.categories == nil {
		b.categories = make(map[string]uint64)
	}
	b.categories[name] += n
}

// Get returns the cycles attributed to category name.
func (b Breakdown) Get(name string) uint64 { return b.categories[name] }

// Total returns the sum over all categories.
func (b Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b.categories {
		t += v
	}
	return t
}

// Categories returns the category names in sorted order.
func (b Breakdown) Categories() []string {
	names := make([]string, 0, len(b.categories))
	for k := range b.categories {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Fraction returns category name's share of the total, in [0, 1].
// It returns 0 when the breakdown is empty.
func (b Breakdown) Fraction(name string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.categories[name]) / float64(t)
}

// Merge adds every category of other into b.
func (b *Breakdown) Merge(other Breakdown) {
	for k, v := range other.categories {
		b.Add(k, v)
	}
}

// Scale multiplies every category by num/den using integer rounding.
// It is used when a simulator extrapolates (for example Raw's CSLC
// perfect-load-balance extrapolation in the paper).
func (b *Breakdown) Scale(num, den uint64) {
	if den == 0 {
		panic("sim: Breakdown.Scale with zero denominator")
	}
	for k, v := range b.categories {
		b.categories[k] = (v*num + den/2) / den
	}
}

// Clone returns a deep copy.
func (b Breakdown) Clone() Breakdown {
	out := Breakdown{}
	for k, v := range b.categories {
		out.Add(k, v)
	}
	return out
}

// String renders the breakdown as "cat1=N (p%), cat2=M (q%)".
func (b Breakdown) String() string {
	total := b.Total()
	var sb strings.Builder
	for i, name := range b.Categories() {
		if i > 0 {
			sb.WriteString(", ")
		}
		v := b.categories[name]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		fmt.Fprintf(&sb, "%s=%d (%.1f%%)", name, v, pct)
	}
	return sb.String()
}

// Stats is a bag of named event counters (instructions issued, words
// transferred, bank conflicts, ...). The zero value is ready to use.
type Stats struct {
	counters map[string]uint64
}

// Inc adds n to counter name.
func (s *Stats) Inc(name string, n uint64) {
	if s.counters == nil {
		s.counters = make(map[string]uint64)
	}
	s.counters[name] += n
}

// Get returns counter name.
func (s Stats) Get(name string) uint64 { return s.counters[name] }

// Names returns the counter names in sorted order.
func (s Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Merge adds every counter of other into s.
func (s *Stats) Merge(other Stats) {
	for k, v := range other.counters {
		s.Inc(k, v)
	}
}

// String renders the counters as "name=value" pairs.
func (s Stats) String() string {
	var sb strings.Builder
	for i, name := range s.Names() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%d", name, s.counters[name])
	}
	return sb.String()
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b uint64) uint64 {
	if b == 0 {
		panic("sim: CeilDiv by zero")
	}
	return (a + b - 1) / b
}

// PRNG is a small deterministic xorshift64* generator used for workload
// synthesis. It must stay stable across runs so experiments are
// reproducible; do not replace it with math/rand.
type PRNG struct {
	state uint64
}

// NewPRNG returns a generator seeded with seed (0 is remapped to a fixed
// nonzero constant, since xorshift has an all-zero fixed point).
func NewPRNG(seed uint64) *PRNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &PRNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (p *PRNG) Uint64() uint64 {
	x := p.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns an approximately standard-normal variate using the
// sum of 12 uniforms (Irwin–Hall); adequate for synthetic signal noise.
func (p *PRNG) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += p.Float64()
	}
	return s - 6
}
