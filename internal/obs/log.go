package obs

import (
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// NewLogger builds a structured logger writing to w. format is "text"
// or "json" (case-insensitive; anything else falls back to text).
func NewLogger(w io.Writer, format string) *slog.Logger {
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h)
}

// statusWriter captures the status code and bytes written for the
// access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush forwards to the wrapped writer so streaming handlers (the
// NDJSON batch endpoint) keep their per-line flushes through the
// middleware — without this the Flusher assertion fails on the wrapper
// and clients wait on buffered headers.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// Instrument wraps an HTTP handler with request-ID propagation and
// structured access logging: the inbound X-Request-Id (or a generated
// ID) is placed in the request context, echoed on the response, and —
// when logger is non-nil — logged with method, path, status, duration,
// and response size. A nil logger keeps the ID plumbing and skips the
// log line.
func Instrument(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		ctx := WithRequestID(r.Context(), id)
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		if logger != nil {
			logger.LogAttrs(ctx, slog.LevelInfo, "http_request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("duration", time.Since(start)),
				slog.Int("bytes", sw.bytes),
			)
		}
	})
}
