// Package obs is the observability layer shared by the service stack:
// labeled metrics (atomic counters and latency histograms keyed by
// {machine, kernel} — one series per Table 3 cell), a hand-rolled
// Prometheus text-exposition writer, request-ID propagation with an
// HTTP access-log middleware over log/slog, and the span-style
// lifecycle events the job tracer records.
//
// Everything here is stdlib-only and allocation-conscious: metric
// updates on the service hot path are a map read under an RWMutex plus
// an atomic add, never a sort or a lock shared with exposition.
package obs
