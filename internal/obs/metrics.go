package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Labels identifies one (machine, kernel) cell of the paper's Table 3 —
// the label set every per-cell metric series is keyed by. The zero
// value means "unlabeled"; vectors ignore observations made with it so
// internal plumbing (stub tasks, tests) never mints empty-label series.
type Labels struct {
	Machine string
	Kernel  string
}

// IsZero reports whether the label set carries no information.
func (l Labels) IsZero() bool { return l.Machine == "" && l.Kernel == "" }

// Counter is one monotonically increasing series. All methods are
// atomic and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a family of counters keyed by Labels. With is a map
// read under an RWMutex on the hot path; child creation (first
// observation of a cell) takes the write lock once.
type CounterVec struct {
	name string
	help string

	mu       sync.RWMutex
	children map[Labels]*Counter
}

// Name returns the metric family name.
func (v *CounterVec) Name() string { return v.name }

// With returns the counter for l, creating it on first use. The zero
// Labels value returns a shared throwaway counter that is never
// exposed, so unlabeled call sites cost an atomic add and nothing else.
func (v *CounterVec) With(l Labels) *Counter {
	if l.IsZero() {
		return &discard
	}
	v.mu.RLock()
	c, ok := v.children[l]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[l]; ok {
		return c
	}
	c = &Counter{}
	v.children[l] = c
	return c
}

// discard absorbs observations made with zero Labels.
var discard Counter

// Gauge is one instantaneous-value series (a float64 set atomically via
// its bit pattern). All methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a family of gauges keyed by Labels, with the same
// zero-label discard behavior as CounterVec.
type GaugeVec struct {
	name string
	help string

	mu       sync.RWMutex
	children map[Labels]*Gauge
}

// Name returns the metric family name.
func (v *GaugeVec) Name() string { return v.name }

// With returns the gauge for l, creating it on first use. The zero
// Labels value returns a shared throwaway gauge that is never exposed.
func (v *GaugeVec) With(l Labels) *Gauge {
	if l.IsZero() {
		return &discardGauge
	}
	v.mu.RLock()
	g, ok := v.children[l]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[l]; ok {
		return g
	}
	g = &Gauge{}
	v.children[l] = g
	return g
}

// discardGauge absorbs observations made with zero Labels.
var discardGauge Gauge

// Values returns a copy of every (labels, value) pair, sorted by
// machine then kernel for stable exposition.
func (v *GaugeVec) Values() []LabeledValue {
	v.mu.RLock()
	out := make([]LabeledValue, 0, len(v.children))
	for l, g := range v.children {
		out = append(out, LabeledValue{Labels: l, Value: g.Value()})
	}
	v.mu.RUnlock()
	sortLabeled(out)
	return out
}

// Values returns a copy of every (labels, count) pair, sorted by
// machine then kernel for stable exposition.
func (v *CounterVec) Values() []LabeledValue {
	v.mu.RLock()
	out := make([]LabeledValue, 0, len(v.children))
	for l, c := range v.children {
		out = append(out, LabeledValue{Labels: l, Value: float64(c.Value())})
	}
	v.mu.RUnlock()
	sortLabeled(out)
	return out
}

// LabeledValue is one exposed sample of a vector.
type LabeledValue struct {
	Labels Labels
	Value  float64
}

func sortLabeled(s []LabeledValue) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Labels.Machine != s[j].Labels.Machine {
			return s[i].Labels.Machine < s[j].Labels.Machine
		}
		return s[i].Labels.Kernel < s[j].Labels.Kernel
	})
}

// DefBuckets are the default latency histogram bounds in seconds:
// cache hits land in the sub-millisecond buckets, simulator executions
// in the milliseconds-to-minutes range.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is one fixed-bucket latency distribution. Observations are
// two atomic adds plus a binary search over the (immutable) bounds;
// cumulative bucket counts are computed at exposition time.
type Histogram struct {
	bounds   []float64 // upper bounds in seconds, ascending
	counts   []atomic.Uint64
	inf      atomic.Uint64 // observations above the last bound
	count    atomic.Uint64
	sumNanos atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s) // first bound >= s, i.e. the `le` bucket
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values in seconds.
func (h *Histogram) Sum() float64 {
	return time.Duration(h.sumNanos.Load()).Seconds()
}

// Cumulative returns the bucket upper bounds and the cumulative count
// at or below each — the Prometheus `_bucket{le=...}` series, excluding
// the trailing +Inf (which equals Count).
func (h *Histogram) Cumulative() (bounds []float64, cum []uint64) {
	cum = make([]uint64, len(h.bounds))
	var total uint64
	for i := range h.bounds {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return h.bounds, cum
}

// HistogramVec is a family of histograms keyed by Labels, sharing one
// set of bucket bounds.
type HistogramVec struct {
	name   string
	help   string
	bounds []float64

	mu       sync.RWMutex
	children map[Labels]*Histogram
}

// Name returns the metric family name.
func (v *HistogramVec) Name() string { return v.name }

// With returns the histogram for l, creating it on first use. The zero
// Labels value returns an unexposed throwaway, like CounterVec.With.
func (v *HistogramVec) With(l Labels) *Histogram {
	if l.IsZero() {
		return newHistogram(v.bounds)
	}
	v.mu.RLock()
	h, ok := v.children[l]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[l]; ok {
		return h
	}
	h = newHistogram(v.bounds)
	v.children[l] = h
	return h
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// snapshot returns the children sorted by machine then kernel.
func (v *HistogramVec) snapshot() []labeledHistogram {
	v.mu.RLock()
	out := make([]labeledHistogram, 0, len(v.children))
	for l, h := range v.children {
		out = append(out, labeledHistogram{labels: l, hist: h})
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].labels.Machine != out[j].labels.Machine {
			return out[i].labels.Machine < out[j].labels.Machine
		}
		return out[i].labels.Kernel < out[j].labels.Kernel
	})
	return out
}

type labeledHistogram struct {
	labels Labels
	hist   *Histogram
}

// Registry holds metric families for exposition, in registration
// order. Registration happens at service construction; observation is
// lock-free with respect to the registry itself.
type Registry struct {
	mu       sync.Mutex
	counters []*CounterVec
	gauges   []*GaugeVec
	hists    []*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string) *CounterVec {
	v := &CounterVec{name: name, help: help, children: make(map[Labels]*Counter)}
	r.mu.Lock()
	r.counters = append(r.counters, v)
	r.mu.Unlock()
	return v
}

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, children: make(map[Labels]*Gauge)}
	r.mu.Lock()
	r.gauges = append(r.gauges, v)
	r.mu.Unlock()
	return v
}

// NewHistogramVec registers and returns a labeled histogram family.
// nil buckets means DefBuckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	v := &HistogramVec{name: name, help: help, bounds: buckets, children: make(map[Labels]*Histogram)}
	r.mu.Lock()
	r.hists = append(r.hists, v)
	r.mu.Unlock()
	return v
}
