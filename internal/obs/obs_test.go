package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterVecLabeledSeries(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewCounterVec("test_total", "A test counter.")
	v.With(Labels{Machine: "VIRAM", Kernel: "corner-turn"}).Inc()
	v.With(Labels{Machine: "VIRAM", Kernel: "corner-turn"}).Add(2)
	v.With(Labels{Machine: "Imagine", Kernel: "cslc"}).Inc()

	vals := v.Values()
	if len(vals) != 2 {
		t.Fatalf("got %d series, want 2: %+v", len(vals), vals)
	}
	// Sorted by machine then kernel.
	if vals[0].Labels.Machine != "Imagine" || vals[0].Value != 1 {
		t.Fatalf("vals[0] = %+v", vals[0])
	}
	if vals[1].Labels.Machine != "VIRAM" || vals[1].Value != 3 {
		t.Fatalf("vals[1] = %+v", vals[1])
	}
}

func TestCounterVecZeroLabelsDiscarded(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewCounterVec("test_total", "A test counter.")
	v.With(Labels{}).Inc()
	v.With(Labels{}).Add(10)
	if vals := v.Values(); len(vals) != 0 {
		t.Fatalf("zero-label observations minted series: %+v", vals)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty family exposed:\n%s", buf.String())
	}
}

// TestVectorsConcurrent hammers one counter family and one histogram
// family from many goroutines while exposition runs, for the race
// detector's benefit and to check the final totals.
func TestVectorsConcurrent(t *testing.T) {
	reg := NewRegistry()
	cv := reg.NewCounterVec("c_total", "counter")
	hv := reg.NewHistogramVec("h_seconds", "histogram", nil)

	cells := []Labels{
		{Machine: "VIRAM", Kernel: "corner-turn"},
		{Machine: "Imagine", Kernel: "cslc"},
		{Machine: "Raw", Kernel: "beam-steering"},
	}
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l := cells[(seed+i)%len(cells)]
				cv.With(l).Inc()
				hv.With(l).Observe(time.Duration(i%50) * time.Millisecond)
			}
		}(w)
	}
	// Exposition concurrent with the writers must not race.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	var total float64
	for _, lv := range cv.Values() {
		total += lv.Value
	}
	if want := float64(workers * perWorker); total != want {
		t.Fatalf("counter total = %v, want %v", total, want)
	}
	var hTotal uint64
	for _, l := range cells {
		hTotal += hv.With(l).Count()
	}
	if want := uint64(workers * perWorker); hTotal != want {
		t.Fatalf("histogram count = %d, want %d", hTotal, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	h.Observe(5 * time.Millisecond)    // le 0.01
	h.Observe(10 * time.Millisecond)   // le 0.01 (boundary is inclusive)
	h.Observe(50 * time.Millisecond)   // le 0.1
	h.Observe(500 * time.Millisecond)  // le 1
	h.Observe(5000 * time.Millisecond) // +Inf

	bounds, cum := h.Cumulative()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	want := []uint64{2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cum[%d] = %d, want %d (cum=%v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5.565; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestGaugeVec(t *testing.T) {
	reg := NewRegistry()
	gv := reg.NewGaugeVec("ratio", "Model error, per cell.")
	cell := Labels{Machine: "VIRAM", Kernel: "corner-turn"}
	gv.With(cell).Set(1.51)
	gv.With(cell).Set(1.49) // gauges overwrite, not accumulate
	if got := gv.With(cell).Value(); got != 1.49 {
		t.Fatalf("gauge = %v, want 1.49", got)
	}
	// Zero labels are discarded, never exposed.
	gv.With(Labels{}).Set(99)
	vals := gv.Values()
	if len(vals) != 1 || vals[0].Labels != cell || vals[0].Value != 1.49 {
		t.Fatalf("values = %+v", vals)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	cv := reg.NewCounterVec("jobs_total", "Jobs, per cell.")
	gv := reg.NewGaugeVec("err_ratio", "Model error, per cell.")
	hv := reg.NewHistogramVec("lat_seconds", "Latency, per cell.", []float64{0.1, 1})
	cv.With(Labels{Machine: "VIRAM", Kernel: "corner-turn"}).Add(7)
	gv.With(Labels{Machine: "VIRAM", Kernel: "corner-turn"}).Set(1.5)
	hv.With(Labels{Machine: "VIRAM", Kernel: "corner-turn"}).Observe(50 * time.Millisecond)
	hv.With(Labels{Machine: "VIRAM", Kernel: "corner-turn"}).Observe(30 * time.Second)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs, per cell.",
		"# TYPE jobs_total counter",
		`jobs_total{machine="VIRAM",kernel="corner-turn"} 7`,
		"# TYPE err_ratio gauge",
		`err_ratio{machine="VIRAM",kernel="corner-turn"} 1.5`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{machine="VIRAM",kernel="corner-turn",le="0.1"} 1`,
		`lat_seconds_bucket{machine="VIRAM",kernel="corner-turn",le="1"} 1`,
		`lat_seconds_bucket{machine="VIRAM",kernel="corner-turn",le="+Inf"} 2`,
		`lat_seconds_sum{machine="VIRAM",kernel="corner-turn"} 30.05`,
		`lat_seconds_count{machine="VIRAM",kernel="corner-turn"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is `name{labels} value` — a scrape parser's
	// minimal contract: exactly one space separating sample and value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if got := len(strings.Split(line, " ")); got != 2 {
			t.Errorf("sample line has %d fields, want 2: %q", got, line)
		}
	}
}

func TestPromLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	l := Labels{Machine: `a\b"c`, Kernel: "x\ny"}
	if err := WritePromSample(&buf, "m_total", l, "", "", "1"); err != nil {
		t.Fatal(err)
	}
	want := `m_total{machine="a\\b\"c",kernel="x\ny"} 1` + "\n"
	if buf.String() != want {
		t.Fatalf("escaped sample = %q, want %q", buf.String(), want)
	}
}

func TestPromHelpEscaping(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePromHeader(&buf, "m_total", "line1\nline2 \\ end", "counter"); err != nil {
		t.Fatal(err)
	}
	want := "# HELP m_total line1\\nline2 \\\\ end\n# TYPE m_total counter\n"
	if buf.String() != want {
		t.Fatalf("header = %q, want %q", buf.String(), want)
	}
}

func TestRequestIDContext(t *testing.T) {
	if id := RequestID(context.Background()); id != "" {
		t.Fatalf("empty context carries ID %q", id)
	}
	ctx := WithRequestID(context.Background(), "abc123")
	if id := RequestID(ctx); id != "abc123" {
		t.Fatalf("RequestID = %q", id)
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Fatalf("generated IDs: %q, %q", a, b)
	}
}

func TestInstrumentEchoesRequestID(t *testing.T) {
	var seen string
	h := Instrument(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
		w.WriteHeader(http.StatusTeapot)
	}))

	// Client-supplied ID is propagated and echoed verbatim.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "client-id-1")
	h.ServeHTTP(rec, req)
	if seen != "client-id-1" || rec.Header().Get(RequestIDHeader) != "client-id-1" {
		t.Fatalf("ctx=%q header=%q", seen, rec.Header().Get(RequestIDHeader))
	}

	// Absent ID: one is generated, present in both context and header.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen == "" || rec.Header().Get(RequestIDHeader) != seen {
		t.Fatalf("generated ctx=%q header=%q", seen, rec.Header().Get(RequestIDHeader))
	}
}

func TestInstrumentAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "json")
	h := Instrument(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte("nope"))
	}))
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/jobs/zzz", nil)
	req.Header.Set(RequestIDHeader, "rid-9")
	h.ServeHTTP(rec, req)

	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, buf.String())
	}
	if entry["msg"] != "http_request" || entry["request_id"] != "rid-9" ||
		entry["path"] != "/v1/jobs/zzz" || entry["status"] != float64(404) ||
		entry["bytes"] != float64(4) {
		t.Fatalf("log entry: %v", entry)
	}
}

func TestNewLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, "text").Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "msg=hello") || !strings.Contains(buf.String(), "k=v") {
		t.Fatalf("text log: %q", buf.String())
	}
}
