package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text
// exposition format served by /metrics?format=prometheus.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
var escapeLabelValue = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal in help text).
var escapeHelp = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// formatFloat renders a sample value the way Prometheus expects:
// shortest representation that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePromHeader writes the # HELP and # TYPE comment lines for one
// metric family. typ is "counter", "gauge", or "histogram".
func WritePromHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp.Replace(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// WritePromSample writes one sample line, with the cell labels (and
// any extra label pair, e.g. le for histogram buckets) escaped.
func WritePromSample(w io.Writer, name string, l Labels, extraKey, extraVal string, value string) error {
	var sb strings.Builder
	sb.WriteString(name)
	if !l.IsZero() || extraKey != "" {
		sb.WriteByte('{')
		sep := ""
		if !l.IsZero() {
			sb.WriteString(`machine="`)
			sb.WriteString(escapeLabelValue.Replace(l.Machine))
			sb.WriteString(`",kernel="`)
			sb.WriteString(escapeLabelValue.Replace(l.Kernel))
			sb.WriteString(`"`)
			sep = ","
		}
		if extraKey != "" {
			sb.WriteString(sep)
			sb.WriteString(extraKey)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabelValue.Replace(extraVal))
			sb.WriteString(`"`)
		}
		sb.WriteByte('}')
	}
	_, err := fmt.Fprintf(w, "%s %s\n", sb.String(), value)
	return err
}

// WritePromSampleKV writes one sample line with arbitrary label pairs
// (key1, val1, key2, val2, ...), values escaped. It serves families
// whose label set is not the (machine, kernel) cell — e.g. the cluster
// gateway's per-shard series. An odd trailing key is ignored.
func WritePromSampleKV(w io.Writer, name, value string, pairs ...string) error {
	var sb strings.Builder
	sb.WriteString(name)
	if len(pairs) >= 2 {
		sb.WriteByte('{')
		for i := 0; i+1 < len(pairs); i += 2 {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(pairs[i])
			sb.WriteString(`="`)
			sb.WriteString(escapeLabelValue.Replace(pairs[i+1]))
			sb.WriteString(`"`)
		}
		sb.WriteByte('}')
	}
	_, err := fmt.Fprintf(w, "%s %s\n", sb.String(), value)
	return err
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format, families in registration order and series in
// sorted (machine, kernel) order so scrapes are stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := append([]*CounterVec(nil), r.counters...)
	gauges := append([]*GaugeVec(nil), r.gauges...)
	hists := append([]*HistogramVec(nil), r.hists...)
	r.mu.Unlock()

	for _, v := range counters {
		vals := v.Values()
		if len(vals) == 0 {
			continue
		}
		if err := WritePromHeader(w, v.name, v.help, "counter"); err != nil {
			return err
		}
		for _, lv := range vals {
			if err := WritePromSample(w, v.name, lv.Labels, "", "", formatFloat(lv.Value)); err != nil {
				return err
			}
		}
	}
	for _, v := range gauges {
		vals := v.Values()
		if len(vals) == 0 {
			continue
		}
		if err := WritePromHeader(w, v.name, v.help, "gauge"); err != nil {
			return err
		}
		for _, lv := range vals {
			if err := WritePromSample(w, v.name, lv.Labels, "", "", formatFloat(lv.Value)); err != nil {
				return err
			}
		}
	}
	for _, v := range hists {
		children := v.snapshot()
		if len(children) == 0 {
			continue
		}
		if err := WritePromHeader(w, v.name, v.help, "histogram"); err != nil {
			return err
		}
		for _, lh := range children {
			bounds, cum := lh.hist.Cumulative()
			for i, ub := range bounds {
				if err := WritePromSample(w, v.name+"_bucket", lh.labels, "le", formatFloat(ub),
					strconv.FormatUint(cum[i], 10)); err != nil {
					return err
				}
			}
			total := lh.hist.Count()
			if err := WritePromSample(w, v.name+"_bucket", lh.labels, "le", "+Inf",
				strconv.FormatUint(total, 10)); err != nil {
				return err
			}
			if err := WritePromSample(w, v.name+"_sum", lh.labels, "", "", formatFloat(lh.hist.Sum())); err != nil {
				return err
			}
			if err := WritePromSample(w, v.name+"_count", lh.labels, "", "", strconv.FormatUint(total, 10)); err != nil {
				return err
			}
		}
	}
	return nil
}
