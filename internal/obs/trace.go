package obs

import "time"

// Event is one timestamped transition in a job's lifecycle trace — the
// span-style record behind GET /v1/jobs/{id}/trace. Events accumulate
// in order: accepted, queued, started, retried (0..n times), then a
// terminal done/failed; journal replay reconstructs the list for
// restored jobs and appends requeued for work resumed after a crash.
type Event struct {
	Name string    `json:"event"`
	Time time.Time `json:"time"`
	Note string    `json:"note,omitempty"`
}

// Canonical lifecycle event names.
const (
	EventAccepted = "accepted"
	EventQueued   = "queued"
	EventStarted  = "started"
	EventRetried  = "retried"
	EventDone     = "done"
	EventFailed   = "failed"
	EventRequeued = "requeued"
)
