package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// RequestIDHeader is the HTTP header a request ID arrives in and is
// echoed back on: clients that set it get their own ID threaded through
// logs and traces; everyone else gets a generated one.
const RequestIDHeader = "X-Request-Id"

type requestIDKey struct{}

// reqSeq backs the fallback ID when crypto/rand fails (it practically
// cannot; the fallback keeps IDs unique rather than empty).
var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%016x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID carried by ctx ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
