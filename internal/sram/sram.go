// Package sram models on-chip SRAM arrays with a capacity budget and a
// fixed per-cycle port bandwidth. It is used for Imagine's 128 KB stream
// register file (SRF) and for the per-tile memories of Raw.
//
// The SRF model includes block-granular allocation: the paper notes that
// "a stream can start at the start of any SRF 128-byte block", so
// allocations are rounded up to the block size and the allocator fails
// when the working set exceeds capacity — which is exactly the property
// that forces the corner-turn matrix (4 MB) to be processed in strips.
package sram

import (
	"errors"
	"fmt"

	"sigkern/internal/sim"
)

// Config describes one SRAM array.
type Config struct {
	// Name labels the array in diagnostics.
	Name string
	// CapacityBytes is the total capacity.
	CapacityBytes int
	// BlockBytes is the allocation granularity (128 for the Imagine SRF).
	BlockBytes int
	// WordsPerCycle is the per-cycle read or write bandwidth in 32-bit
	// words.
	WordsPerCycle int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.CapacityBytes <= 0:
		return errors.New("sram: CapacityBytes must be positive")
	case c.BlockBytes <= 0:
		return errors.New("sram: BlockBytes must be positive")
	case c.WordsPerCycle <= 0:
		return errors.New("sram: WordsPerCycle must be positive")
	case c.CapacityBytes%c.BlockBytes != 0:
		return fmt.Errorf("sram: capacity %d not a multiple of block size %d",
			c.CapacityBytes, c.BlockBytes)
	}
	return nil
}

// ImagineSRF returns the 128 KB stream register file: 128-byte blocks and
// a 16 word/cycle datapath to the clusters (Table 1's on-chip row).
func ImagineSRF() Config {
	return Config{Name: "imagine-srf", CapacityBytes: 128 << 10, BlockBytes: 128, WordsPerCycle: 16}
}

// RawTileMemory returns one Raw tile's data memory (32 KB of the 128 KB
// per-tile SRAM budget; the rest holds tile and switch instructions),
// single-cycle access, one word per cycle.
func RawTileMemory(tile int) Config {
	return Config{Name: fmt.Sprintf("raw-tile%d-mem", tile), CapacityBytes: 32 << 10, BlockBytes: 4, WordsPerCycle: 1}
}

// Alloc is a live allocation in an Array.
type Alloc struct {
	Name  string
	Bytes int // requested size
	Held  int // rounded to block granularity
}

// Array is an SRAM array with an allocator and bandwidth accounting.
// It is not safe for concurrent use.
type Array struct {
	cfg    Config
	used   int
	allocs map[string]*Alloc
	stats  sim.Stats
}

// New returns an Array for cfg, panicking on an invalid configuration.
func New(cfg Config) *Array {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Array{cfg: cfg, allocs: make(map[string]*Alloc)}
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

// Used returns the bytes currently held (block-rounded).
func (a *Array) Used() int { return a.used }

// Free returns the bytes currently available.
func (a *Array) Free() int { return a.cfg.CapacityBytes - a.used }

// Allocate reserves size bytes under name. It fails when the rounded size
// does not fit or the name is already allocated.
func (a *Array) Allocate(name string, size int) (*Alloc, error) {
	if size <= 0 {
		return nil, fmt.Errorf("sram %s: allocation %q of %d bytes", a.cfg.Name, name, size)
	}
	if _, ok := a.allocs[name]; ok {
		return nil, fmt.Errorf("sram %s: %q already allocated", a.cfg.Name, name)
	}
	held := ((size + a.cfg.BlockBytes - 1) / a.cfg.BlockBytes) * a.cfg.BlockBytes
	if held > a.Free() {
		return nil, fmt.Errorf("sram %s: %q needs %d bytes, only %d free",
			a.cfg.Name, name, held, a.Free())
	}
	al := &Alloc{Name: name, Bytes: size, Held: held}
	a.allocs[name] = al
	a.used += held
	a.stats.Inc("allocations", 1)
	return al, nil
}

// Release frees the allocation under name; unknown names are an error so
// double frees in kernel schedules are caught.
func (a *Array) Release(name string) error {
	al, ok := a.allocs[name]
	if !ok {
		return fmt.Errorf("sram %s: release of unknown allocation %q", a.cfg.Name, name)
	}
	a.used -= al.Held
	delete(a.allocs, name)
	a.stats.Inc("releases", 1)
	return nil
}

// ReleaseAll frees every allocation.
func (a *Array) ReleaseAll() {
	for name := range a.allocs {
		delete(a.allocs, name)
	}
	a.used = 0
}

// TransferCycles returns the cycles to move n words through the array's
// ports at full bandwidth.
func (a *Array) TransferCycles(n uint64) uint64 {
	a.stats.Inc("words_transferred", n)
	return sim.CeilDiv(n, uint64(a.cfg.WordsPerCycle))
}

// Stats returns accumulated counters.
func (a *Array) Stats() sim.Stats { return a.stats }
