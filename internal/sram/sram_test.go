package sram

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := ImagineSRF().Validate(); err != nil {
		t.Fatalf("ImagineSRF invalid: %v", err)
	}
	bad := []Config{
		{CapacityBytes: 0, BlockBytes: 128, WordsPerCycle: 1},
		{CapacityBytes: 1024, BlockBytes: 0, WordsPerCycle: 1},
		{CapacityBytes: 1024, BlockBytes: 128, WordsPerCycle: 0},
		{CapacityBytes: 1000, BlockBytes: 128, WordsPerCycle: 1}, // not multiple
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestAllocateRoundsToBlock(t *testing.T) {
	a := New(ImagineSRF())
	al, err := a.Allocate("s", 100)
	if err != nil {
		t.Fatal(err)
	}
	if al.Held != 128 {
		t.Fatalf("Held = %d, want 128 (block-rounded)", al.Held)
	}
	if a.Used() != 128 {
		t.Fatalf("Used = %d, want 128", a.Used())
	}
}

func TestAllocateOverCapacityFails(t *testing.T) {
	a := New(ImagineSRF())
	if _, err := a.Allocate("big", 128<<10+1); err == nil {
		t.Fatal("allocation over capacity succeeded")
	}
	// The 4 MB corner-turn matrix must NOT fit in the 128 KB SRF: this is
	// the paper's reason for strip-mining the corner turn on Imagine.
	if _, err := a.Allocate("matrix", 4<<20); err == nil {
		t.Fatal("4 MB matrix fit in 128 KB SRF")
	}
}

func TestDuplicateNameFails(t *testing.T) {
	a := New(ImagineSRF())
	if _, err := a.Allocate("x", 256); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Allocate("x", 256); err == nil {
		t.Fatal("duplicate allocation succeeded")
	}
}

func TestReleaseRestoresSpace(t *testing.T) {
	a := New(ImagineSRF())
	free0 := a.Free()
	if _, err := a.Allocate("x", 4096); err != nil {
		t.Fatal(err)
	}
	if err := a.Release("x"); err != nil {
		t.Fatal(err)
	}
	if a.Free() != free0 {
		t.Fatalf("Free = %d after release, want %d", a.Free(), free0)
	}
	if err := a.Release("x"); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestReleaseAll(t *testing.T) {
	a := New(ImagineSRF())
	for _, n := range []string{"a", "b", "c"} {
		if _, err := a.Allocate(n, 1024); err != nil {
			t.Fatal(err)
		}
	}
	a.ReleaseAll()
	if a.Used() != 0 {
		t.Fatalf("Used = %d after ReleaseAll", a.Used())
	}
}

func TestTransferCycles(t *testing.T) {
	a := New(ImagineSRF()) // 16 words/cycle
	if got := a.TransferCycles(160); got != 10 {
		t.Fatalf("TransferCycles(160) = %d, want 10", got)
	}
	if got := a.TransferCycles(1); got != 1 {
		t.Fatalf("TransferCycles(1) = %d, want 1", got)
	}
	if got := a.Stats().Get("words_transferred"); got != 161 {
		t.Fatalf("words_transferred = %d, want 161", got)
	}
}

func TestRawTileMemoryConfig(t *testing.T) {
	c := RawTileMemory(3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.CapacityBytes != 32<<10 {
		t.Fatalf("tile memory capacity = %d, want 32 KB", c.CapacityBytes)
	}
	// A 64x64 word corner-turn block (16 KB) must fit in one tile memory,
	// per the Raw corner-turn algorithm in the paper.
	a := New(c)
	if _, err := a.Allocate("block", 64*64*4); err != nil {
		t.Fatalf("64x64 block does not fit in tile memory: %v", err)
	}
}

// Property: used + free == capacity under any interleaving of allocs.
func TestAccountingInvariant(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := New(ImagineSRF())
		for i, s := range sizes {
			size := int(s)%8192 + 1
			_, _ = a.Allocate(name(i), size)
			if a.Used()+a.Free() != a.Config().CapacityBytes {
				return false
			}
			if a.Used() < 0 || a.Free() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func name(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26%10)) }
