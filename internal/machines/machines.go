// Package machines constructs the study's machine models with their
// paper configurations: the PowerPC G4 baseline (scalar and AltiVec) and
// the three research architectures (VIRAM, Imagine, Raw).
package machines

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/imagine"
	"sigkern/internal/ppc"
	"sigkern/internal/rawsim"
	"sigkern/internal/viram"
)

// Baseline is the name of the speedup baseline used by Figures 8 and 9
// (the paper normalizes to the G4 with AltiVec).
const Baseline = "AltiVec"

// All returns every machine in the paper's Table 3 row order:
// PPC, AltiVec, VIRAM, Imagine, Raw.
func All() []core.Machine {
	return []core.Machine{
		ppc.New(ppc.DefaultConfig(ppc.Scalar)),
		ppc.New(ppc.DefaultConfig(ppc.AltiVec)),
		viram.New(viram.DefaultConfig()),
		imagine.New(imagine.DefaultConfig()),
		rawsim.New(rawsim.DefaultConfig()),
	}
}

// Research returns only the three research architectures.
func Research() []core.Machine {
	return []core.Machine{
		viram.New(viram.DefaultConfig()),
		imagine.New(imagine.DefaultConfig()),
		rawsim.New(rawsim.DefaultConfig()),
	}
}

// Names returns the machine names in Table 3 row order without
// constructing any machine. It must stay in sync with All; the package
// tests assert the correspondence.
func Names() []string {
	return []string{"PPC", "AltiVec", "VIRAM", "Imagine", "Raw"}
}

// Valid reports whether name is a known machine, without the cost of
// building one — machine construction allocates cache and DRAM state,
// which validation hot paths (every job submission) must not pay.
func Valid(name string) error {
	for _, n := range Names() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("machines: unknown machine %q", name)
}

// ByName returns the named machine with its default configuration. Only
// the requested machine is constructed.
func ByName(name string) (core.Machine, error) {
	switch name {
	case "PPC":
		return ppc.New(ppc.DefaultConfig(ppc.Scalar)), nil
	case "AltiVec":
		return ppc.New(ppc.DefaultConfig(ppc.AltiVec)), nil
	case "VIRAM":
		return viram.New(viram.DefaultConfig()), nil
	case "Imagine":
		return imagine.New(imagine.DefaultConfig()), nil
	case "Raw":
		return rawsim.New(rawsim.DefaultConfig()), nil
	}
	return nil, fmt.Errorf("machines: unknown machine %q", name)
}
