// Package machines constructs the study's machine models with their
// paper configurations: the PowerPC G4 baseline (scalar and AltiVec) and
// the three research architectures (VIRAM, Imagine, Raw).
package machines

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/imagine"
	"sigkern/internal/ppc"
	"sigkern/internal/rawsim"
	"sigkern/internal/viram"
)

// Baseline is the name of the speedup baseline used by Figures 8 and 9
// (the paper normalizes to the G4 with AltiVec).
const Baseline = "AltiVec"

// All returns every machine in the paper's Table 3 row order:
// PPC, AltiVec, VIRAM, Imagine, Raw.
func All() []core.Machine {
	return []core.Machine{
		ppc.New(ppc.DefaultConfig(ppc.Scalar)),
		ppc.New(ppc.DefaultConfig(ppc.AltiVec)),
		viram.New(viram.DefaultConfig()),
		imagine.New(imagine.DefaultConfig()),
		rawsim.New(rawsim.DefaultConfig()),
	}
}

// Research returns only the three research architectures.
func Research() []core.Machine {
	return []core.Machine{
		viram.New(viram.DefaultConfig()),
		imagine.New(imagine.DefaultConfig()),
		rawsim.New(rawsim.DefaultConfig()),
	}
}

// ByName returns the named machine with its default configuration.
func ByName(name string) (core.Machine, error) {
	for _, m := range All() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("machines: unknown machine %q", name)
}
