package machines

import (
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/kernels/pfb"
)

// PFBRunner is the extension interface every machine implements.
type pfbRunner interface {
	RunPFB(pfb.Workload) (core.Result, error)
}

func TestEveryMachineRunsPFB(t *testing.T) {
	w := pfb.DefaultWorkload()
	results := map[string]core.Result{}
	for _, m := range All() {
		r, ok := m.(pfbRunner)
		if !ok {
			t.Fatalf("%s does not implement RunPFB", m.Name())
		}
		res, err := r.RunPFB(w)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !res.Verified || res.Cycles == 0 {
			t.Fatalf("%s: bad result %+v", m.Name(), res)
		}
		results[m.Name()] = res
	}
	// Shape: the channelizer is a streaming compute kernel — the three
	// research machines beat both baseline variants in cycles, and the
	// stream machine leads.
	for _, name := range []string{"VIRAM", "Imagine", "Raw"} {
		if results[name].Cycles >= results["AltiVec"].Cycles {
			t.Errorf("%s (%d) not faster than AltiVec (%d)",
				name, results[name].Cycles, results["AltiVec"].Cycles)
		}
	}
	if results["Imagine"].Cycles >= results["Raw"].Cycles {
		t.Errorf("Imagine (%d) should lead Raw (%d) on the streaming channelizer",
			results["Imagine"].Cycles, results["Raw"].Cycles)
	}
	// Nothing exceeds its own ALU peak.
	peaks := map[string]float64{"PPC": 4, "AltiVec": 8, "VIRAM": 16, "Imagine": 48, "Raw": 16}
	for name, r := range results {
		if opc := r.OpsPerCycle(); opc > peaks[name] {
			t.Errorf("%s: %.1f ops/cycle exceeds peak", name, opc)
		}
	}
}

func TestVIRAMPFBRejectsNonPowerOfFourChannels(t *testing.T) {
	w := pfb.Workload{Spec: pfb.Spec{Channels: 32, Taps: 4}, Samples: 32 * 64}
	m, err := ByName("VIRAM")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.(pfbRunner).RunPFB(w); err == nil {
		t.Fatal("32-channel PFB accepted by the radix-4 emitter")
	}
}

func TestPFBRejectsInvalidWorkloads(t *testing.T) {
	bad := pfb.Workload{Spec: pfb.Spec{Channels: 3, Taps: 2}, Samples: 64}
	for _, m := range All() {
		if _, err := m.(pfbRunner).RunPFB(bad); err == nil {
			t.Errorf("%s accepted an invalid PFB workload", m.Name())
		}
	}
	short := pfb.Workload{Spec: pfb.DefaultSpec(), Samples: 10}
	for _, m := range All() {
		if _, err := m.(pfbRunner).RunPFB(short); err == nil {
			t.Errorf("%s accepted a too-short PFB workload", m.Name())
		}
	}
}
