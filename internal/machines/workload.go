package machines

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"sigkern/internal/core"
)

// SaveWorkload writes a workload as indented JSON so an experiment's
// kernel parameters travel with its machine configurations.
func SaveWorkload(path string, w core.Workload) error {
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadWorkload reads a workload written by SaveWorkload (or hand-edited);
// unknown fields are rejected and the result is validated.
func LoadWorkload(path string) (core.Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Workload{}, err
	}
	var w core.Workload
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return core.Workload{}, fmt.Errorf("machines: parsing %s: %w", path, err)
	}
	if err := w.Validate(); err != nil {
		return core.Workload{}, fmt.Errorf("machines: %s: %w", path, err)
	}
	return w, nil
}
