package machines

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/faults"
)

// FaultPoint is the fault-injection point machine factories consult:
// chaos runs can make machine construction fail transiently, stall, or
// panic, modeling a flaky backend coming and going.
const FaultPoint = "machines.factory"

// ChaosFactory wraps a machine factory with the fault point. With a nil
// registry (chaos off) the inner factory is returned unchanged, so the
// production path pays nothing.
func ChaosFactory(reg *faults.Registry, inner func(name string) (core.Machine, error)) func(name string) (core.Machine, error) {
	if reg == nil {
		return inner
	}
	return func(name string) (core.Machine, error) {
		if inj := reg.Fire(FaultPoint); inj != nil {
			inj.Sleep(nil)
			if inj.Panicked {
				panic(fmt.Sprintf("faults: injected panic at %s (%s)", FaultPoint, name))
			}
			if inj.Err != nil {
				return nil, fmt.Errorf("machines: building %q: %w", name, inj.Err)
			}
		}
		return inner(name)
	}
}
