package machines_test

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/machines"
)

// Example runs the full paper study through the public framework and
// reports the per-kernel winners — the headline finding of the paper.
func Example() {
	sr, err := core.RunStudy(machines.All(), core.PaperWorkload())
	if err != nil {
		panic(err)
	}
	for _, k := range core.Kernels() {
		fmt.Printf("%s winner: %s\n", k.Title(), sr.BestMachine(k))
	}
	raw := sr.SpeedupCycles(machines.Baseline, "Raw", core.CornerTurn)
	fmt.Printf("Raw corner-turn speedup over AltiVec exceeds 100x: %v\n", raw > 100)
	// Output:
	// Corner Turn winner: Raw
	// CSLC winner: Imagine
	// Beam Steering winner: Raw
	// Raw corner-turn speedup over AltiVec exceeds 100x: true
}
