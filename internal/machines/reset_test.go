// Reset-contract tests: every paper machine must implement
// core.Resettable, and a reset instance must reproduce a fresh
// instance's cycle counts bit-identically — the property the worker
// pool's machine-reuse fast path rests on.
package machines

import (
	"testing"

	"sigkern/internal/core"
)

func TestAllMachinesResettable(t *testing.T) {
	for _, m := range All() {
		if _, ok := m.(core.Resettable); !ok {
			t.Errorf("%s does not implement core.Resettable", m.Name())
		}
	}
}

// TestResetReproducesFreshRuns runs every kernel on a fresh instance,
// then drives one long-lived instance through the whole kernel set
// twice with a Reset before each run: every reused-instance cycle
// count must equal the fresh instance's exactly.
func TestResetReproducesFreshRuns(t *testing.T) {
	w := core.PaperWorkload()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			fresh := make(map[core.KernelID]core.Result)
			for _, k := range core.Kernels() {
				m, err := ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				r, err := core.Run(m, k, w)
				if err != nil {
					t.Fatal(err)
				}
				fresh[k] = r
			}
			reused, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			rst, ok := reused.(core.Resettable)
			if !ok {
				t.Fatalf("%s not Resettable", name)
			}
			for pass := 0; pass < 2; pass++ {
				for _, k := range core.Kernels() {
					rst.Reset()
					r, err := core.Run(reused, k, w)
					if err != nil {
						t.Fatalf("pass %d %s: %v", pass, k, err)
					}
					if r.Cycles != fresh[k].Cycles {
						t.Fatalf("pass %d %s: reused instance ran to %d cycles, fresh runs to %d",
							pass, k, r.Cycles, fresh[k].Cycles)
					}
				}
			}
		})
	}
}
