package machines

import (
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/kernels/matmul"
)

// TestEveryMachineRunsMatMul: the extension kernel is implemented on all
// five machines through the optional MatMulRunner interface.
func TestEveryMachineRunsMatMul(t *testing.T) {
	spec := matmul.DefaultSpec()
	results := map[string]core.Result{}
	for _, m := range All() {
		mr, ok := m.(core.MatMulRunner)
		if !ok {
			t.Fatalf("%s does not implement MatMulRunner", m.Name())
		}
		r, err := mr.RunMatMul(spec)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !r.Verified || r.Cycles == 0 || r.Kernel != core.MatMul {
			t.Fatalf("%s: bad result %+v", m.Name(), r)
		}
		results[m.Name()] = r
	}

	// Shape expectations for a compute-bound kernel with 16.8M MACs:
	//  - Imagine's 48 ALUs win (near 1 MAC/cycle/cluster x 8 clusters),
	//  - Raw and VIRAM land within an order of magnitude of their peak
	//    compute rates,
	//  - the baseline is slowest in cycle counts and AltiVec beats scalar.
	if results["Imagine"].Cycles >= results["Raw"].Cycles {
		t.Errorf("Imagine (%d) should beat Raw (%d) on matmul",
			results["Imagine"].Cycles, results["Raw"].Cycles)
	}
	if results["Raw"].Cycles >= results["PPC"].Cycles {
		t.Errorf("Raw (%d) should beat scalar PPC (%d)",
			results["Raw"].Cycles, results["PPC"].Cycles)
	}
	if results["AltiVec"].Cycles >= results["PPC"].Cycles {
		t.Errorf("AltiVec (%d) should beat scalar PPC (%d)",
			results["AltiVec"].Cycles, results["PPC"].Cycles)
	}
	// Ops-per-cycle sanity: Imagine should sustain several MACs/cycle;
	// nothing should exceed its own peak ALU count.
	peaks := map[string]float64{"PPC": 4, "AltiVec": 8, "VIRAM": 16, "Imagine": 48, "Raw": 16}
	for name, r := range results {
		opc := r.OpsPerCycle()
		if opc > peaks[name] {
			t.Errorf("%s: %.1f ops/cycle exceeds its %0.f-ALU peak", name, opc, peaks[name])
		}
	}
	if opc := results["Imagine"].OpsPerCycle(); opc < 6 {
		t.Errorf("Imagine matmul at %.1f ops/cycle; the 1-cycle-II loop should sustain more", opc)
	}
}

// TestMatMulComputeBound: unlike the corner turn, matmul must be
// compute-dominated on the research machines.
func TestMatMulComputeBound(t *testing.T) {
	spec := matmul.DefaultSpec()
	for _, m := range Research() {
		r, err := m.(core.MatMulRunner).RunMatMul(spec)
		if err != nil {
			t.Fatal(err)
		}
		comp := r.Breakdown.Get("compute")
		mem := r.Breakdown.Get("memory") + r.Breakdown.Get("load-store")
		if comp <= mem {
			t.Errorf("%s: matmul not compute-bound (%s)", m.Name(), r.Breakdown.String())
		}
	}
}

func TestMatMulRejectsInvalidSpecs(t *testing.T) {
	bad := matmul.Spec{M: 0, N: 4, K: 4, BlockSize: 2}
	for _, m := range All() {
		if _, err := m.(core.MatMulRunner).RunMatMul(bad); err == nil {
			t.Errorf("%s accepted an invalid matmul spec", m.Name())
		}
	}
}
