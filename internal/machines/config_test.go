package machines

import (
	"os"
	"path/filepath"
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/kernels/cornerturn"
)

func TestDefaultConfigSetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "machines.json")
	if err := SaveConfigSet(path, DefaultConfigSet()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfigSet(path)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := loaded.Machines()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("%d machines", len(ms))
	}
	// The round-tripped machines must reproduce the default results.
	def := All()
	for i := range ms {
		rd, err := def[i].RunCornerTurn(cornerturn.PaperSpec())
		if err != nil {
			t.Fatal(err)
		}
		rl, err := ms[i].RunCornerTurn(cornerturn.PaperSpec())
		if err != nil {
			t.Fatal(err)
		}
		if rd.Cycles != rl.Cycles {
			t.Fatalf("%s: round-tripped config changed cycles: %d vs %d",
				def[i].Name(), rd.Cycles, rl.Cycles)
		}
	}
}

func TestConfigSetPartialOverride(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "viram-only.json")
	v := DefaultConfigSet().VIRAM
	v.DRAM.AddrGens = 8
	if err := SaveConfigSet(path, ConfigSet{VIRAM: v}); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfigSet(path)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := loaded.Machines()
	if err != nil {
		t.Fatal(err)
	}
	var modified, baseline core.Machine
	for _, m := range ms {
		if m.Name() == "VIRAM" {
			modified = m
		}
	}
	for _, m := range All() {
		if m.Name() == "VIRAM" {
			baseline = m
		}
	}
	rm, err := modified.RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := baseline.RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rm.Cycles >= rb.Cycles {
		t.Fatalf("8-address-generator override (%d) not faster than default (%d)",
			rm.Cycles, rb.Cycles)
	}
}

func TestLoadConfigSetRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"viram": {"Lanes": 0}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfigSet(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	typo := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(typo, []byte(`{"virammm": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfigSet(typo); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := LoadConfigSet(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "workload.json")
	w := core.PaperWorkload()
	w.Beam.Dwells = 16
	if err := SaveWorkload(path, w); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Beam.Dwells != 16 || loaded.CornerTurn.Rows != 1024 {
		t.Fatalf("round trip lost fields: %+v", loaded)
	}
	// Invalid workloads are rejected on load.
	bad := w
	bad.CSLC.SubBands = 0
	if err := SaveWorkload(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWorkload(path); err == nil {
		t.Fatal("invalid workload accepted")
	}
}
