package machines

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"sigkern/internal/core"
	"sigkern/internal/imagine"
	"sigkern/internal/ppc"
	"sigkern/internal/rawsim"
	"sigkern/internal/viram"
)

// ConfigSet bundles per-machine configuration overrides so an
// experiment's exact hardware parameters can be saved, reloaded, and —
// since configs participate in job identity — hashed. Absent sections
// fall back to the paper defaults; present sections are complete
// configurations (partial JSON sections are merged over the paper
// defaults at decode time, so a section only ever overrides what it
// names).
type ConfigSet struct {
	// PPC configures both baseline variants (the variant field itself is
	// forced per machine when instantiating and never serialized).
	PPC     *ppc.Config     `json:"ppc,omitempty"`
	VIRAM   *viram.Config   `json:"viram,omitempty"`
	Imagine *imagine.Config `json:"imagine,omitempty"`
	Raw     *rawsim.Config  `json:"raw,omitempty"`
}

// DefaultConfigSet returns the paper configuration of every machine.
func DefaultConfigSet() ConfigSet {
	p := ppc.DefaultConfig(ppc.Scalar)
	v := viram.DefaultConfig()
	i := imagine.DefaultConfig()
	r := rawsim.DefaultConfig()
	return ConfigSet{PPC: &p, VIRAM: &v, Imagine: &i, Raw: &r}
}

// UnmarshalJSON decodes a set with merge-over-defaults semantics: each
// present section starts from the paper default and a partial JSON
// object overrides only the fields it names. Unknown section names and
// unknown fields within a section are rejected — typos in hand-edited
// configs must surface instead of silently reverting to defaults.
// (encoding/json's DisallowUnknownFields does not reach into custom
// unmarshalers, so the strictness lives here.)
func (c *ConfigSet) UnmarshalJSON(data []byte) error {
	var sections map[string]json.RawMessage
	if err := json.Unmarshal(data, &sections); err != nil {
		return err
	}
	*c = ConfigSet{}
	for name, raw := range sections {
		switch name {
		case "ppc":
			cfg := ppc.DefaultConfig(ppc.Scalar)
			raw, err := stripPPCVariant(raw)
			if err != nil {
				return err
			}
			if err := strictMerge(raw, &cfg, name); err != nil {
				return err
			}
			c.PPC = &cfg
		case "viram":
			cfg := viram.DefaultConfig()
			if err := strictMerge(raw, &cfg, name); err != nil {
				return err
			}
			c.VIRAM = &cfg
		case "imagine":
			cfg := imagine.DefaultConfig()
			if err := strictMerge(raw, &cfg, name); err != nil {
				return err
			}
			c.Imagine = &cfg
		case "raw":
			cfg := rawsim.DefaultConfig()
			if err := strictMerge(raw, &cfg, name); err != nil {
				return err
			}
			c.Raw = &cfg
		default:
			return fmt.Errorf("machines: unknown config section %q", name)
		}
	}
	return nil
}

// strictMerge decodes a JSON object over an already-defaulted config,
// rejecting unknown fields.
func strictMerge(raw json.RawMessage, into any, section string) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("machines: config section %q: %w", section, err)
	}
	return nil
}

// stripPPCVariant handles the Variant key in a ppc section. The variant
// is fixed per machine row (PPC gets Scalar, AltiVec gets AltiVec), so
// a config cannot change it; older SaveConfigSet files serialized the
// default value anyway, which stays accepted, while any attempt to
// force a non-default variant is rejected with a clear error instead of
// being silently overwritten at instantiation.
func stripPPCVariant(raw json.RawMessage) (json.RawMessage, error) {
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		return nil, fmt.Errorf("machines: config section \"ppc\": %w", err)
	}
	vr, ok := fields["Variant"]
	if !ok {
		return raw, nil
	}
	var v int
	if err := json.Unmarshal(vr, &v); err != nil {
		return nil, fmt.Errorf("machines: config section \"ppc\": Variant: %w", err)
	}
	if v != int(ppc.Scalar) {
		return nil, fmt.Errorf("machines: config section \"ppc\": Variant is fixed per machine row (PPC/AltiVec) and cannot be overridden; remove %q", string(vr))
	}
	delete(fields, "Variant")
	return json.Marshal(fields)
}

// Validate checks every present section.
func (c ConfigSet) Validate() error {
	if c.PPC != nil {
		if err := c.PPC.Validate(); err != nil {
			return err
		}
	}
	if c.VIRAM != nil {
		if err := c.VIRAM.Validate(); err != nil {
			return err
		}
	}
	if c.Imagine != nil {
		if err := c.Imagine.Validate(); err != nil {
			return err
		}
	}
	if c.Raw != nil {
		if err := c.Raw.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Empty reports whether no section is present (every machine at its
// paper default).
func (c ConfigSet) Empty() bool {
	return c.PPC == nil && c.VIRAM == nil && c.Imagine == nil && c.Raw == nil
}

// Canonical returns the set with every section that is byte-equal
// (under JSON serialization) to the paper default dropped. Canonical
// form is what participates in job identity: a set that spells out the
// defaults must hash identically to one that omits them.
func (c ConfigSet) Canonical() ConfigSet {
	var out ConfigSet
	if c.PPC != nil && !jsonEqual(*c.PPC, ppc.DefaultConfig(ppc.Scalar)) {
		cp := *c.PPC
		cp.Variant = ppc.Scalar
		out.PPC = &cp
	}
	if c.VIRAM != nil && !jsonEqual(*c.VIRAM, viram.DefaultConfig()) {
		cp := *c.VIRAM
		out.VIRAM = &cp
	}
	if c.Imagine != nil && !jsonEqual(*c.Imagine, imagine.DefaultConfig()) {
		cp := *c.Imagine
		out.Imagine = &cp
	}
	if c.Raw != nil && !jsonEqual(*c.Raw, rawsim.DefaultConfig()) {
		cp := *c.Raw
		out.Raw = &cp
	}
	return out
}

func jsonEqual(a, b any) bool {
	ja, err := json.Marshal(a)
	if err != nil {
		return false
	}
	jb, err := json.Marshal(b)
	if err != nil {
		return false
	}
	return bytes.Equal(ja, jb)
}

// Hash returns the hex SHA-256 of the canonical set's JSON — the
// configuration component of job identity. The empty set (all paper
// defaults) and a set spelling out the defaults hash identically.
func (c ConfigSet) Hash() string {
	data, err := json.Marshal(c.Canonical())
	if err != nil {
		// Config structs are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("machines: hashing config set: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// DefaultConfigHash is the Hash of the all-defaults set — what a
// process with no -config flag serves.
func DefaultConfigHash() string { return ConfigSet{}.Hash() }

// instantiation returns the concrete config for one machine row, using
// the paper default when the relevant section is absent.
func (c ConfigSet) instantiation(name string) (any, error) {
	switch name {
	case "PPC", "AltiVec":
		cfg := ppc.DefaultConfig(ppc.Scalar)
		if c.PPC != nil {
			cfg = *c.PPC
		}
		if name == "AltiVec" {
			cfg.Variant = ppc.AltiVec
		} else {
			cfg.Variant = ppc.Scalar
		}
		return cfg, nil
	case "VIRAM":
		cfg := viram.DefaultConfig()
		if c.VIRAM != nil {
			cfg = *c.VIRAM
		}
		return cfg, nil
	case "Imagine":
		cfg := imagine.DefaultConfig()
		if c.Imagine != nil {
			cfg = *c.Imagine
		}
		return cfg, nil
	case "Raw":
		cfg := rawsim.DefaultConfig()
		if c.Raw != nil {
			cfg = *c.Raw
		}
		return cfg, nil
	}
	return nil, fmt.Errorf("machines: unknown machine %q", name)
}

// Machine constructs the single named machine from the set, validating
// only the configuration it actually uses. Only that machine is built —
// this is the per-job hot path for config-carrying specs.
func (c ConfigSet) Machine(name string) (core.Machine, error) {
	cfg, err := c.instantiation(name)
	if err != nil {
		return nil, err
	}
	switch cc := cfg.(type) {
	case ppc.Config:
		if err := cc.Validate(); err != nil {
			return nil, err
		}
		return ppc.New(cc), nil
	case viram.Config:
		if err := cc.Validate(); err != nil {
			return nil, err
		}
		return viram.New(cc), nil
	case imagine.Config:
		if err := cc.Validate(); err != nil {
			return nil, err
		}
		return imagine.New(cc), nil
	case rawsim.Config:
		if err := cc.Validate(); err != nil {
			return nil, err
		}
		return rawsim.New(cc), nil
	}
	return nil, fmt.Errorf("machines: unknown machine %q", name)
}

// AreaProxy returns a dimensionless silicon-area stand-in for one
// machine under the set — the second axis of a design-space Pareto
// frontier (cycles vs. area). The proxies deliberately track only the
// dominant scalable resource of each architecture: VIRAM lanes x MVL
// (vector datapath), Imagine clusters x SRF KB (ALU array plus stream
// register file), Raw mesh width x height (tiles), PPC/AltiVec issue
// width x L2 KB. desc names the formula so responses are
// self-describing.
func (c ConfigSet) AreaProxy(name string) (value float64, desc string, err error) {
	cfg, err := c.instantiation(name)
	if err != nil {
		return 0, "", err
	}
	switch cc := cfg.(type) {
	case ppc.Config:
		return float64(cc.IssueWidth) * float64(cc.L2.SizeBytes) / 1024, "IssueWidth x L2 KB", nil
	case viram.Config:
		return float64(cc.Lanes) * float64(cc.MVL), "Lanes x MVL", nil
	case imagine.Config:
		return float64(cc.Clusters) * float64(cc.SRF.CapacityBytes) / 1024, "Clusters x SRF KB", nil
	case rawsim.Config:
		return float64(cc.Mesh.Width) * float64(cc.Mesh.Height), "Mesh tiles", nil
	}
	return 0, "", fmt.Errorf("machines: unknown machine %q", name)
}

// Machines instantiates the five study machines from the set, using
// paper defaults for absent sections.
func (c ConfigSet) Machines() ([]core.Machine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make([]core.Machine, 0, len(Names()))
	for _, name := range Names() {
		m, err := c.Machine(name)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// FactoryFromConfigSet returns a by-name machine constructor over the
// set's configurations — the shape the simulation service's worker pool
// wants, where every job gets a fresh (stateful) machine instance. The
// set is validated exactly once, here; each lookup then constructs only
// the requested machine, so -config deployments pay the same per-job
// cost as default ones.
func FactoryFromConfigSet(set ConfigSet) (func(name string) (core.Machine, error), error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	// Resolve the five instantiation configs up front; the closure does
	// pure construction.
	scalar, _ := set.instantiation("PPC")
	vector, _ := set.instantiation("AltiVec")
	vcfg, _ := set.instantiation("VIRAM")
	icfg, _ := set.instantiation("Imagine")
	rcfg, _ := set.instantiation("Raw")
	return func(name string) (core.Machine, error) {
		switch name {
		case "PPC":
			return ppc.New(scalar.(ppc.Config)), nil
		case "AltiVec":
			return ppc.New(vector.(ppc.Config)), nil
		case "VIRAM":
			return viram.New(vcfg.(viram.Config)), nil
		case "Imagine":
			return imagine.New(icfg.(imagine.Config)), nil
		case "Raw":
			return rawsim.New(rcfg.(rawsim.Config)), nil
		}
		return nil, fmt.Errorf("machines: unknown machine %q", name)
	}, nil
}

// SaveConfigSet writes the set as indented JSON.
func SaveConfigSet(path string, c ConfigSet) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConfigSet reads a set written by SaveConfigSet (or hand-edited).
// Partial sections merge over paper defaults; unknown fields are
// rejected so typos surface instead of silently reverting to defaults.
func LoadConfigSet(path string) (ConfigSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ConfigSet{}, err
	}
	var c ConfigSet
	if err := json.Unmarshal(data, &c); err != nil {
		return ConfigSet{}, fmt.Errorf("machines: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return ConfigSet{}, fmt.Errorf("machines: %s: %w", path, err)
	}
	return c, nil
}
