package machines

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"sigkern/internal/core"
	"sigkern/internal/imagine"
	"sigkern/internal/ppc"
	"sigkern/internal/rawsim"
	"sigkern/internal/viram"
)

// ConfigSet bundles every machine's configuration so an experiment's
// exact hardware parameters can be saved and reloaded. Zero-valued
// sections fall back to the paper defaults.
type ConfigSet struct {
	// PPC configures both baseline variants (the variant field itself is
	// forced per machine when instantiating).
	PPC     *ppc.Config     `json:"ppc,omitempty"`
	VIRAM   *viram.Config   `json:"viram,omitempty"`
	Imagine *imagine.Config `json:"imagine,omitempty"`
	Raw     *rawsim.Config  `json:"raw,omitempty"`
}

// DefaultConfigSet returns the paper configuration of every machine.
func DefaultConfigSet() ConfigSet {
	p := ppc.DefaultConfig(ppc.Scalar)
	v := viram.DefaultConfig()
	i := imagine.DefaultConfig()
	r := rawsim.DefaultConfig()
	return ConfigSet{PPC: &p, VIRAM: &v, Imagine: &i, Raw: &r}
}

// Validate checks every present section.
func (c ConfigSet) Validate() error {
	if c.PPC != nil {
		if err := c.PPC.Validate(); err != nil {
			return err
		}
	}
	if c.VIRAM != nil {
		if err := c.VIRAM.Validate(); err != nil {
			return err
		}
	}
	if c.Imagine != nil {
		if err := c.Imagine.Validate(); err != nil {
			return err
		}
	}
	if c.Raw != nil {
		if err := c.Raw.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Machines instantiates the five study machines from the set, using
// paper defaults for absent sections.
func (c ConfigSet) Machines() ([]core.Machine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	scalar := ppc.DefaultConfig(ppc.Scalar)
	vector := ppc.DefaultConfig(ppc.AltiVec)
	if c.PPC != nil {
		scalar = *c.PPC
		scalar.Variant = ppc.Scalar
		vector = *c.PPC
		vector.Variant = ppc.AltiVec
	}
	vcfg := viram.DefaultConfig()
	if c.VIRAM != nil {
		vcfg = *c.VIRAM
	}
	icfg := imagine.DefaultConfig()
	if c.Imagine != nil {
		icfg = *c.Imagine
	}
	rcfg := rawsim.DefaultConfig()
	if c.Raw != nil {
		rcfg = *c.Raw
	}
	return []core.Machine{
		ppc.New(scalar),
		ppc.New(vector),
		viram.New(vcfg),
		imagine.New(icfg),
		rawsim.New(rcfg),
	}, nil
}

// FactoryFromConfigSet returns a by-name machine constructor over the
// set's configurations — the shape the simulation service's worker pool
// wants, where every job gets a fresh (stateful) machine instance.
func FactoryFromConfigSet(set ConfigSet) func(name string) (core.Machine, error) {
	return func(name string) (core.Machine, error) {
		ms, err := set.Machines()
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			if m.Name() == name {
				return m, nil
			}
		}
		return nil, fmt.Errorf("machines: unknown machine %q", name)
	}
}

// SaveConfigSet writes the set as indented JSON.
func SaveConfigSet(path string, c ConfigSet) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConfigSet reads a set written by SaveConfigSet (or hand-edited).
// Unknown fields are rejected so typos in hand-edited configs surface
// instead of silently reverting to defaults.
func LoadConfigSet(path string) (ConfigSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ConfigSet{}, err
	}
	var c ConfigSet
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return ConfigSet{}, fmt.Errorf("machines: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return ConfigSet{}, fmt.Errorf("machines: %s: %w", path, err)
	}
	return c, nil
}
