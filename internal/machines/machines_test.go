// Cross-machine study tests: these assert the paper's headline shape —
// which architecture wins each kernel, by roughly what factor — using the
// full simulator stack.
package machines

import (
	"bytes"
	"strings"
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/report"
)

// runStudy executes the full paper workload once per test binary.
var studyCache *core.StudyResults

func study(t *testing.T) *core.StudyResults {
	t.Helper()
	if studyCache != nil {
		return studyCache
	}
	sr, err := core.RunStudy(All(), core.PaperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	studyCache = sr
	return sr
}

func TestAllMachinesPresent(t *testing.T) {
	names := map[string]bool{}
	for _, m := range All() {
		names[m.Name()] = true
	}
	for _, want := range []string{"PPC", "AltiVec", "VIRAM", "Imagine", "Raw"} {
		if !names[want] {
			t.Fatalf("machine %s missing from registry", want)
		}
	}
	if len(Research()) != 3 {
		t.Fatalf("Research() returned %d machines", len(Research()))
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("VIRAM")
	if err != nil || m.Name() != "VIRAM" {
		t.Fatalf("ByName(VIRAM) = %v, %v", m, err)
	}
	if _, err := ByName("Pentium"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

// TestTable3Ordering asserts the paper's per-kernel winners:
// corner turn: Raw < VIRAM < Imagine; CSLC: Imagine < Raw < VIRAM;
// beam steering: Raw < VIRAM < Imagine — all far below the baseline.
func TestTable3Ordering(t *testing.T) {
	sr := study(t)
	order := map[core.KernelID][]string{
		core.CornerTurn:   {"Raw", "VIRAM", "Imagine", "AltiVec", "PPC"},
		core.CSLC:         {"Imagine", "Raw", "VIRAM", "AltiVec", "PPC"},
		core.BeamSteering: {"Raw", "VIRAM", "Imagine", "AltiVec", "PPC"},
	}
	for k, names := range order {
		var prev uint64
		for i, name := range names {
			r, ok := sr.Result(name, k)
			if !ok {
				t.Fatalf("missing %s/%s", name, k)
			}
			if i > 0 && r.Cycles <= prev {
				t.Errorf("%s: %s (%d cycles) should be slower than %s (%d)",
					k, name, r.Cycles, names[i-1], prev)
			}
			prev = r.Cycles
		}
		if got := sr.BestMachine(k); got != names[0] {
			t.Errorf("%s: best machine = %s, want %s", k, got, names[0])
		}
	}
}

// TestResearchChipsBeatBaselineBy10xInCycles mirrors the paper's
// conclusion that the research processors provide order-of-magnitude
// cycle-count speedups over the conventional baseline.
func TestResearchChipsBeatBaselineBy10xInCycles(t *testing.T) {
	sr := study(t)
	for _, k := range core.Kernels() {
		for _, name := range []string{"VIRAM", "Imagine", "Raw"} {
			s := sr.SpeedupCycles(Baseline, name, k)
			if s < 3 {
				t.Errorf("%s on %s: cycle speedup %.1f vs %s, want >= 3", k, name, s, Baseline)
			}
		}
		// The per-kernel winner is at least 10x in cycles (paper: "all
		// three architectures provided speedups of more than 20" on the
		// corner turn; CSLC and beam steering winners exceed 25x and 19x).
		best := sr.BestMachine(k)
		if s := sr.SpeedupCycles(Baseline, best, k); s < 10 {
			t.Errorf("%s winner %s: speedup %.1f, want >= 10", k, best, s)
		}
	}
}

// TestClockAdjustedSpeedupsShrink: Figure 9's speedups are smaller than
// Figure 8's because the research chips run at 200-300 MHz against the
// 1 GHz G4.
func TestClockAdjustedSpeedupsShrink(t *testing.T) {
	sr := study(t)
	for _, k := range core.Kernels() {
		for _, name := range []string{"VIRAM", "Imagine", "Raw"} {
			cyc := sr.SpeedupCycles(Baseline, name, k)
			tm := sr.SpeedupTime(Baseline, name, k)
			if tm >= cyc {
				t.Errorf("%s on %s: time speedup %.2f not below cycle speedup %.2f",
					k, name, tm, cyc)
			}
			// Even in wall-clock terms the research chips win every kernel
			// in the paper's Figure 9.
			if tm < 1 {
				t.Errorf("%s on %s: wall-clock slower than baseline (%.2f)", k, name, tm)
			}
		}
	}
}

// TestPaperCycleBands pins each simulated Table 3 entry to a band around
// the paper's published value (generous: the substrate is ours, not the
// authors' testbeds).
func TestPaperCycleBands(t *testing.T) {
	sr := study(t)
	paper := map[string]map[core.KernelID]float64{ // kilocycles
		"PPC":     {core.CornerTurn: 34250, core.CSLC: 29013, core.BeamSteering: 730},
		"AltiVec": {core.CornerTurn: 29288, core.CSLC: 4931, core.BeamSteering: 364},
		"VIRAM":   {core.CornerTurn: 554, core.CSLC: 424, core.BeamSteering: 35},
		"Imagine": {core.CornerTurn: 1439, core.CSLC: 196, core.BeamSteering: 87},
		"Raw":     {core.CornerTurn: 146, core.CSLC: 357, core.BeamSteering: 19},
	}
	// Allowed deviation factor per machine: the G4 CSLC measurement
	// embeds code overheads our model cannot justify (see EXPERIMENTS.md).
	maxFactor := map[string]float64{
		"PPC": 3.0, "AltiVec": 2.2, "VIRAM": 1.6, "Imagine": 1.5, "Raw": 1.5,
	}
	for name, kernels := range paper {
		for k, want := range kernels {
			r, ok := sr.Result(name, k)
			if !ok {
				t.Fatalf("missing %s/%s", name, k)
			}
			got := r.KCycles()
			f := got / want
			if f < 1 {
				f = 1 / f
			}
			if f > maxFactor[name] {
				t.Errorf("%s/%s: %0.f kcycles vs paper %0.f (factor %.2f > %.2f)",
					name, k, got, want, f, maxFactor[name])
			}
		}
	}
}

// TestGeometricMeanSpeedups sanity-checks the aggregate view.
func TestGeometricMeanSpeedups(t *testing.T) {
	sr := study(t)
	for _, name := range []string{"VIRAM", "Imagine", "Raw"} {
		g := sr.GeometricMeanSpeedup(Baseline, name, false)
		if g < 5 {
			t.Errorf("%s geometric-mean cycle speedup = %.1f, want >= 5", name, g)
		}
	}
}

// TestEveryResultVerifiedAndAccounted checks the study invariants: all
// results verified functionally, nonzero cycles, breakdown totals close
// to the cycle count.
func TestEveryResultVerifiedAndAccounted(t *testing.T) {
	sr := study(t)
	for _, name := range sr.MachineNames() {
		for _, k := range core.Kernels() {
			r, _ := sr.Result(name, k)
			if !r.Verified {
				t.Errorf("%s/%s not verified", name, k)
			}
			if r.Cycles == 0 || r.Ops == 0 || r.Words == 0 {
				t.Errorf("%s/%s has zero fields: %+v", name, k, r)
			}
			total := r.Breakdown.Total()
			if total == 0 {
				t.Errorf("%s/%s has empty breakdown", name, k)
			}
		}
	}
}

// TestReportRendering drives the full report path over real results.
func TestReportRendering(t *testing.T) {
	sr := study(t)
	var buf bytes.Buffer
	if err := report.RenderTable1(&buf); err != nil {
		t.Fatal(err)
	}
	if err := report.RenderTable2(&buf, sr.Machines()); err != nil {
		t.Fatal(err)
	}
	if err := report.RenderTable3(&buf, sr); err != nil {
		t.Fatal(err)
	}
	if err := report.RenderTable4(&buf, sr); err != nil {
		t.Fatal(err)
	}
	if err := report.RenderFigure8(&buf, sr, Baseline); err != nil {
		t.Fatal(err)
	}
	if err := report.RenderFigure9(&buf, sr, Baseline); err != nil {
		t.Fatal(err)
	}
	if err := report.RenderBreakdowns(&buf, sr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 8", "Figure 9", "Corner Turn", "CSLC", "Beam Steering",
		"VIRAM", "Imagine", "Raw", "AltiVec",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q", want)
		}
	}
	var csv bytes.Buffer
	if err := report.StudyCSV(&csv, sr); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 16 {
		t.Errorf("CSV has %d lines, want 16 (header + 15 results)", lines)
	}
}

// TestNamesMatchAll pins the static name list (used for cheap
// validation on the submission hot path) to the constructed machines.
func TestNamesMatchAll(t *testing.T) {
	ms := All()
	names := Names()
	if len(ms) != len(names) {
		t.Fatalf("Names() has %d entries, All() has %d", len(names), len(ms))
	}
	for i, m := range ms {
		if m.Name() != names[i] {
			t.Errorf("Names()[%d] = %q, All()[%d].Name() = %q", i, names[i], i, m.Name())
		}
		if err := Valid(names[i]); err != nil {
			t.Errorf("Valid(%q): %v", names[i], err)
		}
		got, err := ByName(names[i])
		if err != nil {
			t.Fatalf("ByName(%q): %v", names[i], err)
		}
		if got.Name() != names[i] {
			t.Errorf("ByName(%q).Name() = %q", names[i], got.Name())
		}
	}
	if err := Valid("Cray"); err == nil {
		t.Error("Valid accepted an unknown machine")
	}
	if _, err := ByName("Cray"); err == nil {
		t.Error("ByName accepted an unknown machine")
	}
}
