package machines

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadConfigSetBytes mirrors LoadConfigSet without the file.
func loadConfigSetBytes(s string) (ConfigSet, error) {
	var c ConfigSet
	if err := json.Unmarshal([]byte(s), &c); err != nil {
		return c, err
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// The factory must validate once at build time and construct only the
// requested machine per lookup — the old implementation built all five
// machines and re-validated the whole set on every call, which showed
// up as ~5x the allocations of machines.ByName.
func TestFactoryFromConfigSetAllocs(t *testing.T) {
	set, err := loadConfigSetBytes(`{"viram": {"MVL": 128}}`)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := FactoryFromConfigSet(set)
	if err != nil {
		t.Fatal(err)
	}
	baseline := testing.AllocsPerRun(50, func() {
		if _, err := ByName("PPC"); err != nil {
			t.Fatal(err)
		}
	})
	configured := testing.AllocsPerRun(50, func() {
		if _, err := factory("PPC"); err != nil {
			t.Fatal(err)
		}
	})
	// Identical construction path — allow a tiny slack for interface
	// plumbing, nothing close to a second machine's worth.
	if configured > baseline+4 {
		t.Fatalf("configured factory allocates %v/op vs ByName %v/op — is it rebuilding the whole set?", configured, baseline)
	}
}

func TestConfigSetHashIdentity(t *testing.T) {
	empty := ConfigSet{}.Hash()
	if got := DefaultConfigSet().Hash(); got != empty {
		t.Fatalf("spelled-out defaults hash %s != empty-set hash %s", got, empty)
	}
	if got := DefaultConfigHash(); got != empty {
		t.Fatalf("DefaultConfigHash %s != empty-set hash %s", got, empty)
	}
	v := DefaultConfigSet().VIRAM
	v.DRAM.AddrGens = 8
	override := ConfigSet{VIRAM: v}
	if override.Hash() == empty {
		t.Fatal("distinct override hashes like the default set")
	}
	v2 := *v
	v2.DRAM.AddrGens = 2
	if (ConfigSet{VIRAM: &v2}).Hash() == override.Hash() {
		t.Fatal("different AddrGens values hash identically")
	}
	// Canonical drops default-equal sections so irrelevant spelled-out
	// defaults cannot perturb identity.
	p := DefaultConfigSet().PPC
	mixed := ConfigSet{PPC: p, VIRAM: v}
	if mixed.Hash() != override.Hash() {
		t.Fatal("default-equal ppc section changed the hash")
	}
	if c := mixed.Canonical(); c.PPC != nil || c.VIRAM == nil {
		t.Fatalf("canonical form wrong: %+v", c)
	}
}

func TestConfigSetPartialSectionMergesOverDefaults(t *testing.T) {
	set, err := loadConfigSetBytes(`{"viram": {"MVL": 128}}`)
	if err != nil {
		t.Fatal(err)
	}
	if set.VIRAM == nil || set.VIRAM.MVL != 128 {
		t.Fatalf("override lost: %+v", set.VIRAM)
	}
	def := DefaultConfigSet().VIRAM
	if set.VIRAM.Lanes != def.Lanes || set.VIRAM.DRAM.AddrGens != def.DRAM.AddrGens {
		t.Fatalf("unmentioned fields did not default: %+v", set.VIRAM)
	}
	// Unknown fields inside a section are still rejected (strictness
	// survives the custom unmarshaler).
	if _, err := loadConfigSetBytes(`{"viram": {"Lannes": 4}}`); err == nil {
		t.Fatal("typo'd field accepted")
	}
}

func TestConfigSetVariantHandling(t *testing.T) {
	// Old SaveConfigSet files carried the default Variant; they must
	// keep loading.
	if _, err := loadConfigSetBytes(`{"ppc": {"Variant": 0}}`); err != nil {
		t.Fatalf("default Variant rejected: %v", err)
	}
	// Forcing a non-default variant was silently ignored before; now it
	// is a clear error.
	_, err := loadConfigSetBytes(`{"ppc": {"Variant": 1}}`)
	if err == nil || !strings.Contains(err.Error(), "Variant") {
		t.Fatalf("non-default Variant not rejected clearly: %v", err)
	}
	// New saves omit the field entirely.
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := SaveConfigSet(path, DefaultConfigSet()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "Variant") {
		t.Fatal("Variant leaked into SaveConfigSet output")
	}
}
