package imagine

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/testsig"
)

// stripRows is the corner-turn strip height: eight rows keep the strip's
// input and output (32 KB each) double-buffered exactly within the
// 128 KB SRF, and produce the paper's "128 eight-word blocks" output
// pattern.
const stripRows = 8

// RunCornerTurn implements core.Machine. The formulation is the paper's:
// the matrix is divided into multi-row strips read as four sequential
// input streams; the clusters route elements into output order; the
// output leaves as one stream of eight-word blocks with non-unit stride.
func (m *Machine) RunCornerTurn(spec cornerturn.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	// Functional half: the strip transpose, verified against the naive
	// reference.
	if err := cornerturn.VerifySynthetic(spec.Rows, spec.Cols, func(dst, src *testsig.Matrix) error {
		return cornerturn.TransposeStrips(dst, src, stripRows)
	}); err != nil {
		return core.Result{}, fmt.Errorf("imagine: corner turn: %w", err)
	}

	m.reset()
	// Strip height: start from the paper's eight rows and halve until the
	// strip's input and output fit double-buffered in the SRF (wider
	// matrices than the paper's need shorter strips).
	rowsPerStrip := stripRows
	for rowsPerStrip > 1 && 2*2*rowsPerStrip*spec.Cols*4 > m.cfg.SRF.CapacityBytes {
		rowsPerStrip /= 2
	}
	if 2*2*rowsPerStrip*spec.Cols*4 > m.cfg.SRF.CapacityBytes {
		return core.Result{}, fmt.Errorf("imagine: a single %d-word row pair exceeds the SRF", spec.Cols)
	}
	route := KernelDesc{
		Name:       "route",
		Iterations: rowsPerStrip * spec.Cols / m.cfg.Clusters,
		// Each element passes through a cluster: receive and forward via
		// the communication port, with one address add.
		AddsPerIter: 1, MulsPerIter: 0, CommPerIter: 2,
	}
	// The paper's implementation could not fully software-pipeline the
	// strip loop ("a limitation induced by the stream descriptor
	// registers prevented full software pipelining"): each strip's
	// output stream is issued in program order before the next strip's
	// loads, leaving ~13% of cycles as unoverlapped cluster work. The
	// FullPipelining flag models the fixed implementation as an ablation.
	var pendingStore uint64
	pendingWords := 0
	for r0 := 0; r0 < spec.Rows; r0 += rowsPerStrip {
		rows := rowsPerStrip
		if r0+rows > spec.Rows {
			rows = spec.Rows - r0
		}
		words := rows * spec.Cols
		// Four simultaneous input streams covering the strip.
		var loadDone uint64
		per := (words + 3) / 4
		for s := 0; s < 4 && s*per < words; s++ {
			n := per
			if s*per+n > words {
				n = words - s*per
			}
			if d := m.memStream(n, 1, false, 0); d > loadDone {
				loadDone = d
			}
		}
		if m.cfg.FullPipelining && pendingWords > 0 {
			// Previous strip's output stream: eight-word blocks, written
			// block-strided.
			m.memStream(pendingWords, spec.Rows, true, pendingStore)
		}
		ready := m.srfStream(words, loadDone)
		k := route
		k.Iterations = words / m.cfg.Clusters
		kDone := m.runKernel(k, ready)
		out := m.srfStream(words, kDone)
		if m.cfg.FullPipelining {
			pendingStore = out
			pendingWords = words
		} else {
			m.memStream(words, spec.Rows, true, out)
		}
	}
	if m.cfg.FullPipelining && pendingWords > 0 {
		m.memStream(pendingWords, spec.Rows, true, pendingStore)
	}
	return m.finish(core.CornerTurn, 2*spec.Words(), 2*spec.Words()), nil
}

// fftKernel returns the parallel-FFT kernel descriptor: one transform
// spread across the eight clusters, butterflies exchanged over the
// inter-cluster network (the implementation the paper measured; see the
// IndependentFFTs ablation for the alternative it describes).
func (m *Machine) fftKernel(spec cslc.Spec, inverse bool) (KernelDesc, error) {
	plan, err := fft.NewPlan(spec.FFTSize, spec.Radix, inverse)
	if err != nil {
		return KernelDesc{}, err
	}
	c := plan.Counts()
	// Butterfly count implied by the plan: distribute over clusters.
	var bflies int
	switch spec.Radix {
	case fft.Radix2:
		bflies = spec.FFTSize / 2 * log2(spec.FFTSize)
	case fft.MixedRadix42:
		bflies = 2*(spec.FFTSize/8)*log4(spec.FFTSize/2) + spec.FFTSize/2
	case fft.Radix4:
		bflies = spec.FFTSize / 4 * log4(spec.FFTSize)
	default:
		return KernelDesc{}, fmt.Errorf("imagine: unsupported radix %v", spec.Radix)
	}
	iters := (bflies + m.cfg.Clusters - 1) / m.cfg.Clusters
	return KernelDesc{
		Name:        plan.Radix().String(),
		Iterations:  iters,
		AddsPerIter: int((c.Adds + uint64(bflies) - 1) / uint64(bflies)),
		MulsPerIter: int((c.Muls + uint64(bflies) - 1) / uint64(bflies)),
		// A butterfly's operands straddle clusters: four complex words
		// cross the inter-cluster switch per butterfly.
		CommPerIter: 8,
	}, nil
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func log4(n int) int {
	l := 0
	for n > 1 {
		n >>= 2
		l++
	}
	return l
}

// RunCSLC implements core.Machine: per sub-band, the four channel FFTs,
// the per-main-channel weight application, the inverse FFTs, and the
// output streams, all software-pipelined across bands through the
// descriptor-limited stream units.
func (m *Machine) RunCSLC(spec cslc.Spec) (core.Result, error) {
	spec.Radix = fft.BestRadix(spec.FFTSize) // mixed radix-4/2 at the paper's N=128
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := verifyCSLC(spec); err != nil {
		return core.Result{}, err
	}

	m.reset()
	bandWords := 2 * spec.FFTSize // complex samples
	fwd, err := m.fftKernel(spec, false)
	if err != nil {
		return core.Result{}, err
	}
	inv, err := m.fftKernel(spec, true)
	if err != nil {
		return core.Result{}, err
	}
	weight := KernelDesc{
		Name:       "weight-apply",
		Iterations: spec.FFTSize / m.cfg.Clusters,
		// Per bin: one complex multiply-subtract per aux channel.
		AddsPerIter: 4 * spec.AuxChannels,
		MulsPerIter: 4 * spec.AuxChannels,
	}
	// Output stores are deferred one band so the next band's loads are
	// never blocked behind stores still waiting on the cluster array.
	var pendingStores []uint64
	for band := 0; band < spec.SubBands; band++ {
		var fftDone []uint64
		for ch := 0; ch < spec.Channels(); ch++ {
			ld := m.memStream(bandWords, 1, false, 0)
			ready := m.srfStream(bandWords, ld)
			fftDone = append(fftDone, m.runKernel(fwd, ready))
		}
		for _, ps := range pendingStores {
			m.memStream(bandWords, 1, true, ps)
		}
		pendingStores = pendingStores[:0]
		allFFT := maxAll(fftDone)
		for mc := 0; mc < spec.MainChannels; mc++ {
			wDone := m.runKernel(weight, allFFT)
			iDone := m.runKernel(inv, wDone)
			pendingStores = append(pendingStores, m.srfStream(bandWords, iDone))
		}
	}
	for _, ps := range pendingStores {
		m.memStream(bandWords, 1, true, ps)
	}
	counts, err := spec.TotalCounts()
	if err != nil {
		return core.Result{}, err
	}
	return m.finish(core.CSLC, counts.Flops(), counts.Loads+counts.Stores), nil
}

// RunCSLCIndependentFFTs is the alternative implementation the paper
// describes but did not complete: "execute independent FFTs in parallel
// to eliminate inter-cluster communication overhead". Each cluster runs
// a whole transform, so kernel invocations cover eight transforms (two
// sub-bands' forward FFTs) with no communication slots, at the cost of
// idle clusters when fewer than eight transforms remain.
func (m *Machine) RunCSLCIndependentFFTs(spec cslc.Spec) (core.Result, error) {
	spec.Radix = fft.MixedRadix42
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := verifyCSLC(spec); err != nil {
		return core.Result{}, err
	}

	m.reset()
	bandWords := 2 * spec.FFTSize
	par, err := m.fftKernel(spec, false)
	if err != nil {
		return core.Result{}, err
	}
	// Whole-FFT-per-cluster: iterations equal the full butterfly count,
	// communication disappears.
	indep := func(k KernelDesc) KernelDesc {
		k.Iterations *= m.cfg.Clusters
		k.CommPerIter = 0
		return k
	}
	fwd := indep(par)
	invPar, err := m.fftKernel(spec, true)
	if err != nil {
		return core.Result{}, err
	}
	inv := indep(invPar)
	weight := KernelDesc{
		Name:        "weight-apply",
		Iterations:  spec.FFTSize / m.cfg.Clusters,
		AddsPerIter: 4 * spec.AuxChannels,
		MulsPerIter: 4 * spec.AuxChannels,
	}
	var pendingStores []uint64
	for band := 0; band < spec.SubBands; band += 2 {
		bands := 2
		if band+1 >= spec.SubBands {
			bands = 1
		}
		// Load both bands' channels, then one invocation runs all 4*bands
		// forward transforms (one per cluster).
		var loads uint64
		for ch := 0; ch < spec.Channels()*bands; ch++ {
			if d := m.memStream(bandWords, 1, false, 0); d > loads {
				loads = d
			}
		}
		for _, ps := range pendingStores {
			m.memStream(bandWords, 1, true, ps)
		}
		pendingStores = pendingStores[:0]
		ready := m.srfStream(bandWords*spec.Channels()*bands, loads)
		fftDone := m.runKernel(fwd, ready)
		for mc := 0; mc < spec.MainChannels*bands; mc++ {
			fftDone = m.runKernel(weight, fftDone)
		}
		iDone := m.runKernel(inv, fftDone)
		for mc := 0; mc < spec.MainChannels*bands; mc++ {
			pendingStores = append(pendingStores, m.srfStream(bandWords, iDone))
		}
	}
	for _, ps := range pendingStores {
		m.memStream(bandWords, 1, true, ps)
	}
	counts, err := spec.TotalCounts()
	if err != nil {
		return core.Result{}, err
	}
	r := m.finish(core.CSLC, counts.Flops(), counts.Loads+counts.Stores)
	r.Notes = append(r.Notes, "independent-FFTs variant (no inter-cluster communication)")
	return r, nil
}

// verifyCSLC proves the functional pipeline against the naive-DFT
// reference on the synthetic scene.
func verifyCSLC(spec cslc.Spec) error {
	scene := testsig.DefaultScene(spec.Samples)
	scene.AuxCoupling = scene.AuxCoupling[:spec.AuxChannels]
	channels := scene.Channels(spec.MainChannels)
	w, err := cslc.EstimateWeights(spec, channels)
	if err != nil {
		return err
	}
	out, err := cslc.Run(spec, channels, w)
	if err != nil {
		return err
	}
	probe := []int{0, spec.SubBands / 2, spec.SubBands - 1}
	return cslc.VerifyAgainstNaive(spec, channels, w, out, probe)
}

// RunBeamSteering implements core.Machine: per dwell and direction, the
// calibration tables stream from memory into the SRF, the clusters
// compute the phases, and the results stream back. The table streams
// re-read memory every invocation, which is why the paper finds the
// kernel memory-bound ("the load and store operations take 89% of the
// simulation time") and estimates a 2x gain if tables lived in the SRF —
// see the SRFTables ablation option.
func (m *Machine) RunBeamSteering(spec beamsteer.Spec) (core.Result, error) {
	return m.runBeamSteering(spec, false)
}

// RunBeamSteeringSRFTables is the paper's thought experiment: calibration
// tables resident in the SRF after a single initial load.
func (m *Machine) RunBeamSteeringSRFTables(spec beamsteer.Spec) (core.Result, error) {
	return m.runBeamSteering(spec, true)
}

// RunBeamSteeringPipelined models the paper's Section 4.4 scenario: the
// kernel embedded in a signal-processing pipeline, streaming its inputs
// from the preceding kernel (a poly-phase filter bank) and its outputs
// to the following one (per-beam equalization) entirely through the SRF.
// "In such a pipeline the performance of beam steering will not be
// limited by memory bandwidth ... but rather will be limited by
// arithmetic performance."
func (m *Machine) RunBeamSteeringPipelined(spec beamsteer.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	tables := testsig.NewBeamTables(spec.Elements, spec.Directions, spec.Dwells, 7)
	out, err := beamsteer.Steer(spec, tables)
	if err != nil {
		return core.Result{}, err
	}
	if out[0][0][0] != beamsteer.SteerOne(spec, tables, 0, 0, 0) {
		return core.Result{}, fmt.Errorf("imagine: beam steering output mismatch")
	}

	m.reset()
	phase := KernelDesc{
		Name:        "beam-phase",
		Iterations:  (spec.Elements + m.cfg.Clusters - 1) / m.cfg.Clusters,
		AddsPerIter: 6,
	}
	for dw := 0; dw < spec.Dwells; dw++ {
		for d := 0; d < spec.Directions; d++ {
			// Inputs arrive in the SRF from the upstream kernel; outputs
			// leave through the SRF to the downstream kernel. No DRAM.
			ready := m.srfStream(2*spec.Elements, 0)
			kDone := m.runKernel(phase, ready)
			m.srfStream(spec.Elements, kDone)
		}
	}
	r := m.finish(core.BeamSteering,
		spec.Outputs()*spec.OpsPerOutput(), spec.Outputs()*spec.MemPerOutput())
	r.Notes = append(r.Notes, "pipelined mode: inputs and outputs stream through the SRF")
	return r, nil
}

func (m *Machine) runBeamSteering(spec beamsteer.Spec, srfTables bool) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	tables := testsig.NewBeamTables(spec.Elements, spec.Directions, spec.Dwells, 7)
	out, err := beamsteer.Steer(spec, tables)
	if err != nil {
		return core.Result{}, err
	}
	for _, probe := range [][3]int{{0, 0, 0}, {spec.Dwells - 1, spec.Directions - 1, spec.Elements - 1}} {
		dw, d, e := probe[0], probe[1], probe[2]
		if out[dw][d][e] != beamsteer.SteerOne(spec, tables, dw, d, e) {
			return core.Result{}, fmt.Errorf("imagine: beam steering output mismatch at %v", probe)
		}
	}

	m.reset()
	phase := KernelDesc{
		Name:       "beam-phase",
		Iterations: (spec.Elements + m.cfg.Clusters - 1) / m.cfg.Clusters,
		// 5 adds + 1 shift per output; shifts execute on the adders.
		AddsPerIter: 6,
	}
	if srfTables {
		// Single initial table load.
		m.memStream(2*spec.Elements, 1, false, 0)
	}
	// Stores are deferred one invocation so the next table loads issue
	// first and the memory controllers never sit idle behind a store
	// that is still waiting on the cluster array.
	var pendingStore uint64
	havePending := false
	for dw := 0; dw < spec.Dwells; dw++ {
		for d := 0; d < spec.Directions; d++ {
			ready := uint64(0)
			if !srfTables {
				c1 := m.memStream(spec.Elements, 1, false, 0)
				c2 := m.memStream(spec.Elements, 1, false, 0)
				ready = maxAll([]uint64{c1, c2})
			}
			if havePending {
				m.memStream(spec.Elements, 1, true, pendingStore)
			}
			ready = m.srfStream(2*spec.Elements, ready)
			kDone := m.runKernel(phase, ready)
			pendingStore = m.srfStream(spec.Elements, kDone)
			havePending = true
		}
	}
	if havePending {
		m.memStream(spec.Elements, 1, true, pendingStore)
	}
	return m.finish(core.BeamSteering,
		spec.Outputs()*spec.OpsPerOutput(), spec.Outputs()*spec.MemPerOutput()), nil
}

func maxAll(v []uint64) uint64 {
	var m uint64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
