package imagine

import (
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/equalize"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/pfb"
)

var _ core.Machine = (*Machine)(nil)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Clusters = 0 },
		func(c *Config) { c.AddersPerCluster = 0 },
		func(c *Config) { c.MemControllers = 0 },
		func(c *Config) { c.StreamDescRegs = 1 },
		func(c *Config) { c.PipeDepth = -1 },
		func(c *Config) { c.SRF.CapacityBytes = 0 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestInitiationInterval(t *testing.T) {
	m := New(DefaultConfig())
	cases := []struct {
		k    KernelDesc
		want uint64
	}{
		// 3 adders: 6 adds take 2 cycles.
		{KernelDesc{AddsPerIter: 6}, 2},
		// 2 multipliers: 9 muls take 5 cycles.
		{KernelDesc{MulsPerIter: 9}, 5},
		// Communication-bound.
		{KernelDesc{AddsPerIter: 1, CommPerIter: 8}, 8},
		// Divider-bound.
		{KernelDesc{DivsPerIter: 3}, 3},
		// Empty loops still take a cycle.
		{KernelDesc{}, 1},
	}
	for i, c := range cases {
		if got := m.InitiationInterval(c.k); got != c.want {
			t.Errorf("case %d: II = %d, want %d", i, got, c.want)
		}
	}
}

func TestDescriptorPressureThrottles(t *testing.T) {
	few := DefaultConfig()
	few.StreamDescRegs = 2
	many := DefaultConfig()
	many.StreamDescRegs = 64
	mf := New(few)
	mm := New(many)
	// Issue many short streams; with 2 descriptors they serialize in
	// pairs, with 64 they pack both controllers continuously.
	for i := 0; i < 64; i++ {
		mf.memStream(64, 1, false, 0)
		mm.memStream(64, 1, false, 0)
	}
	if mf.stats.Get("descriptor_stalls") == 0 {
		t.Fatal("no descriptor stalls with 2 registers")
	}
	if mm.stats.Get("descriptor_stalls") != 0 {
		t.Fatal("descriptor stalls with 64 registers")
	}
}

func TestMemStreamsBalanceControllers(t *testing.T) {
	m := New(DefaultConfig())
	m.memStream(1000, 1, false, 0)
	m.memStream(1000, 1, false, 0)
	// Two streams on two controllers: both finish around cycle 1000.
	if m.end > 1100 {
		t.Fatalf("two parallel streams finished at %d, want ~1000", m.end)
	}
}

func TestKernelsSerializeOnClusterArray(t *testing.T) {
	m := New(DefaultConfig())
	k := KernelDesc{Iterations: 100, AddsPerIter: 3}
	d1 := m.runKernel(k, 0)
	d2 := m.runKernel(k, 0)
	if d2 <= d1 {
		t.Fatal("second kernel did not wait for the cluster array")
	}
}

func TestCornerTurnCycles(t *testing.T) {
	m := New(DefaultConfig())
	r, err := m.RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 1,439k cycles, 87% memory. Peak-bandwidth bound: 1,048k.
	if r.Cycles < 1_000_000 || r.Cycles > 2_000_000 {
		t.Fatalf("corner turn cycles = %d, want ~1.44M (1M-2M band)", r.Cycles)
	}
	if f := r.Breakdown.Fraction("memory"); f < 0.6 {
		t.Fatalf("memory fraction = %.2f, want high (%s)", f, r.Breakdown.String())
	}
}

func TestCSLCCycles(t *testing.T) {
	m := New(DefaultConfig())
	r, err := m.RunCSLC(cslc.PaperSpec(fft.MixedRadix42))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 196k cycles, ~10 useful ops/cycle.
	if r.Cycles < 120_000 || r.Cycles > 350_000 {
		t.Fatalf("CSLC cycles = %d, want ~196k (120k-350k band)", r.Cycles)
	}
	if opc := r.OpsPerCycle(); opc < 5 || opc > 20 {
		t.Fatalf("CSLC ops/cycle = %.1f, want ~10", opc)
	}
}

func TestBeamSteeringCycles(t *testing.T) {
	m := New(DefaultConfig())
	r, err := m.RunBeamSteering(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 87k cycles, 89% loads/stores.
	if r.Cycles < 60_000 || r.Cycles > 130_000 {
		t.Fatalf("beam steering cycles = %d, want ~87k (60k-130k band)", r.Cycles)
	}
	if f := r.Breakdown.Fraction("memory"); f < 0.6 {
		t.Fatalf("memory fraction = %.2f, want ~0.89 (%s)", f, r.Breakdown.String())
	}
}

func TestBeamSteeringSRFTablesAblation(t *testing.T) {
	// The paper: "If table values were read from the stream register file
	// rather than memory ... performance would be increased by a factor
	// of about two."
	m := New(DefaultConfig())
	base, err := m.RunBeamSteering(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	srf, err := m.RunBeamSteeringSRFTables(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(base.Cycles) / float64(srf.Cycles)
	if ratio < 1.4 || ratio > 3.5 {
		t.Fatalf("SRF-tables speedup = %.2f, want ~2", ratio)
	}
}

func TestParamsMatchTable2(t *testing.T) {
	p := New(DefaultConfig()).Params()
	if p.ClockMHz != 300 || p.ALUs != 48 || p.PeakGFLOPS != 14.4 {
		t.Fatalf("Table 2 row mismatch: %+v", p)
	}
}

func TestCSLCBestOfThreeArchitectures(t *testing.T) {
	// The paper's headline for Imagine: best CSLC because the working set
	// fits the SRF. Cross-machine ordering is asserted in the core study
	// tests; here, check the kernel is compute-dominated, unlike the
	// memory-bound corner turn.
	m := New(DefaultConfig())
	r, err := m.RunCSLC(cslc.PaperSpec(fft.MixedRadix42))
	if err != nil {
		t.Fatal(err)
	}
	if r.Breakdown.Get("compute") <= r.Breakdown.Get("memory") {
		t.Fatalf("CSLC not compute-dominated: %s", r.Breakdown.String())
	}
}

func TestCSLCIndependentFFTsAblation(t *testing.T) {
	// The paper attributes a 30% penalty to inter-cluster communication
	// in the parallel-FFT implementation; the independent variant
	// eliminates it.
	m := New(DefaultConfig())
	par, err := m.RunCSLC(cslc.PaperSpec(fft.MixedRadix42))
	if err != nil {
		t.Fatal(err)
	}
	ind, err := m.RunCSLCIndependentFFTs(cslc.PaperSpec(fft.MixedRadix42))
	if err != nil {
		t.Fatal(err)
	}
	if ind.Cycles >= par.Cycles {
		t.Fatalf("independent FFTs (%d) not faster than parallel (%d)", ind.Cycles, par.Cycles)
	}
	gain := float64(par.Cycles)/float64(ind.Cycles) - 1
	if gain < 0.1 || gain > 0.9 {
		t.Fatalf("independent-FFT gain = %.0f%%, want ~30%%", gain*100)
	}
}

func TestBeamSteeringPipelinedIsComputeBound(t *testing.T) {
	// Section 4.4: inside a pipeline "the performance of beam steering
	// will not be limited by memory bandwidth ... but rather will be
	// limited by arithmetic performance."
	m := New(DefaultConfig())
	isolated, err := m.RunBeamSteering(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	piped, err := m.RunBeamSteeringPipelined(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if piped.Cycles >= isolated.Cycles {
		t.Fatalf("pipelined (%d) not faster than isolated (%d)", piped.Cycles, isolated.Cycles)
	}
	if piped.Breakdown.Get("compute") <= piped.Breakdown.Get("memory") {
		t.Fatalf("pipelined mode not compute-bound: %s", piped.Breakdown.String())
	}
	// The paper expects "a high fraction of its peak performance": the
	// pipelined kernel should beat even the SRF-tables variant.
	srf, err := m.RunBeamSteeringSRFTables(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if piped.Cycles >= srf.Cycles {
		t.Fatalf("pipelined (%d) not faster than SRF-tables (%d)", piped.Cycles, srf.Cycles)
	}
}

func TestPipelineBeatsIsolatedStages(t *testing.T) {
	// The three-stage pipeline keeps intermediates in the SRF, so it
	// must cost less than running the channelizer alone plus the
	// memory-bound isolated beam steering (the Section 4.4 argument).
	m := New(DefaultConfig())
	w := pfb.DefaultWorkload()
	eq := equalize.DefaultSpec()
	pipe, err := m.RunPipeline(w, beamsteer.PaperSpec(), eq)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Cycles == 0 || !pipe.Verified {
		t.Fatalf("bad pipeline result %+v", pipe)
	}
	solo, err := m.RunPFB(w)
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline adds two more stages yet costs at most ~60% more than
	// the channelizer alone — the added stages ride along in the SRF.
	ratio := float64(pipe.Cycles) / float64(solo.Cycles)
	if ratio < 1.0 || ratio > 1.6 {
		t.Fatalf("pipeline/channelizer ratio = %.2f, want 1.0-1.6", ratio)
	}
	// DRAM traffic is input + beams only: far less than the channelizer's
	// own output would have been.
	if pipe.Words >= solo.Words {
		t.Fatalf("pipeline words %d not below channelizer words %d", pipe.Words, solo.Words)
	}
}
