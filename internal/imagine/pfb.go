package imagine

import (
	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/equalize"
	"sigkern/internal/kernels/pfb"
)

// pfbBatchFrames is the number of frames one kernel invocation processes
// (enough iterations to amortize the software-pipeline fill).
const pfbBatchFrames = 64

// RunPFB implements the extension channelizer as a streaming kernel: the
// wideband input streams through the SRF, each cluster computes one
// branch output per iteration (FIR plus its amortized share of the
// cross-branch FFT), and the channelized frames stream back out.
func (m *Machine) RunPFB(w pfb.Workload) (core.Result, error) {
	if err := w.ValidateWorkload(); err != nil {
		return core.Result{}, err
	}
	if err := w.Verify(); err != nil {
		return core.Result{}, err
	}

	m.reset()
	frames := w.FrameCount()
	// Per-iteration operation mix per cluster: one branch output = Taps
	// real-by-complex MACs (2 muls + 2 adds each) plus the FFT share
	// (radix-2 across Channels, divided per element).
	firMuls := 2 * w.Taps
	firAdds := 2 * w.Taps
	fftOps := int(w.OpsPerFrame()-uint64(4*w.Channels*w.Taps)) / w.Channels
	kernel := KernelDesc{
		Name:        "pfb",
		Iterations:  pfbBatchFrames * w.Channels / m.cfg.Clusters,
		AddsPerIter: firAdds + fftOps*3/5,
		MulsPerIter: firMuls + fftOps*2/5,
	}

	var pendingStore uint64
	pendingWords := 0
	for f0 := 0; f0 < frames; f0 += pfbBatchFrames {
		batch := pfbBatchFrames
		if f0+batch > frames {
			batch = frames - f0
		}
		inWords := 2 * batch * w.Channels // new samples for this batch
		ld := m.memStream(inWords, 1, false, 0)
		if pendingWords > 0 {
			m.memStream(pendingWords, 1, true, pendingStore)
		}
		ready := m.srfStream(inWords, ld)
		k := kernel
		k.Iterations = batch * w.Channels / m.cfg.Clusters
		kDone := m.runKernel(k, ready)
		pendingStore = m.srfStream(2*batch*w.Channels, kDone)
		pendingWords = 2 * batch * w.Channels
	}
	if pendingWords > 0 {
		m.memStream(pendingWords, 1, true, pendingStore)
	}
	r := m.finish(core.KernelID("pfb"), w.TotalOps(),
		2*uint64(w.Samples)+2*uint64(frames)*uint64(w.Channels))
	return r, nil
}

// RunPipeline times the paper's Section 4.4 application pipeline on
// Imagine as one schedule: per batch of frames, the channelizer kernel,
// the beam-phase kernel, and the per-beam equalizer kernel run back to
// back on the cluster array with their intermediate streams living in
// the SRF — only the wideband input and the equalized beams touch DRAM.
func (m *Machine) RunPipeline(w pfb.Workload, bs beamsteer.Spec, eq equalize.Spec) (core.Result, error) {
	if err := w.ValidateWorkload(); err != nil {
		return core.Result{}, err
	}
	if err := bs.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := eq.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := w.Verify(); err != nil {
		return core.Result{}, err
	}

	m.reset()
	frames := w.FrameCount()
	fftOps := int(w.OpsPerFrame()-uint64(4*w.Channels*w.Taps)) / w.Channels
	chanKernel := KernelDesc{
		Name:        "pfb",
		AddsPerIter: 2*w.Taps + fftOps*3/5,
		MulsPerIter: 2*w.Taps + fftOps*2/5,
	}
	phaseKernel := KernelDesc{Name: "beam-phase", AddsPerIter: 6}
	// Per equalized sample: Taps complex MACs + the rotation.
	eqKernel := KernelDesc{
		Name:        "equalize",
		AddsPerIter: 4*eq.Taps + 2,
		MulsPerIter: 4*eq.Taps + 4,
	}

	var pendingStore uint64
	pendingWords := 0
	for f0 := 0; f0 < frames; f0 += pfbBatchFrames {
		batch := pfbBatchFrames
		if f0+batch > frames {
			batch = frames - f0
		}
		inWords := 2 * batch * w.Channels
		ld := m.memStream(inWords, 1, false, 0)
		if pendingWords > 0 {
			m.memStream(pendingWords, 1, true, pendingStore)
		}
		ready := m.srfStream(inWords, ld)

		k := chanKernel
		k.Iterations = batch * w.Channels / m.cfg.Clusters
		done := m.runKernel(k, ready)
		done = m.srfStream(2*batch*w.Channels, done)

		k = phaseKernel
		k.Iterations = batch * eq.Beams / m.cfg.Clusters
		if k.Iterations == 0 {
			k.Iterations = 1
		}
		done = m.runKernel(k, done)

		k = eqKernel
		k.Iterations = batch * eq.Beams / m.cfg.Clusters
		if k.Iterations == 0 {
			k.Iterations = 1
		}
		done = m.runKernel(k, done)

		outWords := 2 * batch * eq.Beams
		pendingStore = m.srfStream(outWords, done)
		pendingWords = outWords
	}
	if pendingWords > 0 {
		m.memStream(pendingWords, 1, true, pendingStore)
	}
	ops := w.TotalOps() +
		uint64(frames)*uint64(eq.Beams)*6 +
		uint64(frames)*uint64(eq.Beams)*eq.OpsPerSample()
	r := m.finish(core.KernelID("pipeline"), ops,
		2*uint64(w.Samples)+2*uint64(frames)*uint64(eq.Beams))
	r.Notes = append(r.Notes, "three-stage pipeline: channelize -> steer -> equalize, SRF-resident intermediates")
	return r, nil
}
