// Package imagine models the Stanford Imagine stream processor: eight
// SIMD ALU clusters (three adders, two multipliers, one divider, one
// inter-cluster communication port each) fed from a 128 KB stream
// register file (SRF), with two off-chip memory-stream controllers of
// one word per cycle each.
//
// The model captures the properties the paper's analysis turns on:
//
//   - off-chip bandwidth of 2 words/cycle total (Section 4.2: "87% of
//     the cycles in the Imagine corner turn are due to memory
//     transfers");
//   - stream-descriptor-register pressure: at most StreamDescRegs
//     streams may be in flight, which limits software pipelining
//     (Section 4.2: "a limitation induced by the stream descriptor
//     registers prevented full software pipelining");
//   - VLIW kernel execution on the cluster array with software-pipeline
//     fill/drain overhead that looms large for short kernels
//     (Section 4.3: "the small size of the FFT reduces the amount of
//     software pipelining and increases start-up overheads");
//   - inter-cluster communication for parallel FFTs (Section 4.3:
//     "performance is reduced by 30% because inter-cluster communication
//     is used to perform parallel FFTs").
//
// Execution is an event timeline over three resources — the two memory
// controllers, the SRF ports, and the cluster array — with stream
// descriptors as a counted resource.
package imagine

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/dram"
	"sigkern/internal/sim"
	"sigkern/internal/sram"
)

// Config parameterizes the machine model.
type Config struct {
	Name     string
	ClockMHz float64
	// Clusters is the number of SIMD ALU clusters (8).
	Clusters int
	// AddersPerCluster, MulsPerCluster, DivsPerCluster give the ALU mix
	// (3, 2, 1).
	AddersPerCluster, MulsPerCluster, DivsPerCluster int
	// CommWordsPerCycle is each cluster's inter-cluster communication
	// bandwidth in words per cycle (1).
	CommWordsPerCycle int
	// MemControllers is the number of memory-stream controllers (2).
	MemControllers int
	// StreamDescRegs caps the number of in-flight streams (8).
	StreamDescRegs int
	// PipeDepth is the software-pipeline depth of kernel inner loops:
	// fill/drain costs PipeDepth iterations' worth of initiation
	// intervals per kernel invocation.
	PipeDepth int
	// KernelStartup is the fixed microcontroller dispatch cost per kernel
	// invocation.
	KernelStartup int
	// FullPipelining lifts the stream-descriptor-register limitation that
	// prevented the paper's corner turn from fully overlapping kernel
	// work with memory streams. False reproduces the measured chip.
	FullPipelining bool
	// SRF is the stream register file.
	SRF sram.Config
	// DRAM is the configuration of each memory channel.
	DRAM dram.Config
}

// DefaultConfig returns the model of the chip described in the paper.
func DefaultConfig() Config {
	return Config{
		Name:              "Imagine",
		ClockMHz:          300,
		Clusters:          8,
		AddersPerCluster:  3,
		MulsPerCluster:    2,
		DivsPerCluster:    1,
		CommWordsPerCycle: 1,
		MemControllers:    2,
		StreamDescRegs:    8,
		PipeDepth:         10,
		KernelStartup:     100,
		SRF:               sram.ImagineSRF(),
		DRAM:              dram.ImagineChannel(0),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Clusters <= 0:
		return fmt.Errorf("imagine: %d clusters", c.Clusters)
	case c.AddersPerCluster <= 0 || c.MulsPerCluster <= 0 || c.DivsPerCluster < 0:
		return fmt.Errorf("imagine: ALU mix %d/%d/%d",
			c.AddersPerCluster, c.MulsPerCluster, c.DivsPerCluster)
	case c.CommWordsPerCycle <= 0:
		return fmt.Errorf("imagine: comm bandwidth %d", c.CommWordsPerCycle)
	case c.MemControllers <= 0:
		return fmt.Errorf("imagine: %d memory controllers", c.MemControllers)
	case c.StreamDescRegs < 2:
		return fmt.Errorf("imagine: %d stream descriptor registers", c.StreamDescRegs)
	case c.PipeDepth < 0 || c.KernelStartup < 0:
		return fmt.Errorf("imagine: negative pipeline parameters")
	}
	if err := c.SRF.Validate(); err != nil {
		return err
	}
	return c.DRAM.Validate()
}

// KernelDesc describes one VLIW kernel invocation: the cluster array runs
// Iterations loop iterations, each consuming the listed per-cluster
// operation mix. Imagine processes Clusters elements per iteration.
type KernelDesc struct {
	Name string
	// Iterations is the number of software-pipelined loop iterations.
	Iterations int
	// AddsPerIter, MulsPerIter, DivsPerIter, CommPerIter give each
	// cluster's per-iteration operation counts.
	AddsPerIter, MulsPerIter, DivsPerIter, CommPerIter int
}

// Machine is one Imagine instance. It is not safe for concurrent use.
type Machine struct {
	cfg Config
	mcs []*dram.Controller
	srf *sram.Array

	mcFree      []uint64
	srfFree     uint64
	clusterFree uint64
	inflight    []uint64 // completion times of streams holding descriptors
	end         uint64

	breakdown sim.Breakdown
	stats     sim.Stats
}

// New returns a machine for cfg, panicking on invalid configuration.
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{cfg: cfg, srf: sram.New(cfg.SRF)}
	for i := 0; i < cfg.MemControllers; i++ {
		d := cfg.DRAM
		d.Name = fmt.Sprintf("%s-mc%d", cfg.Name, i)
		m.mcs = append(m.mcs, dram.NewController(d))
	}
	m.reset()
	return m
}

// Name implements core.Machine.
func (m *Machine) Name() string { return m.cfg.Name }

// Params implements core.Machine with the paper's Table 2 row.
func (m *Machine) Params() core.Params {
	return core.Params{
		ClockMHz:    m.cfg.ClockMHz,
		ALUs:        48, // 8 clusters x 6 arithmetic units
		PeakGFLOPS:  14.4,
		Description: "stream processor, 128 KB SRF, 8 SIMD VLIW clusters",
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Reset implements core.Resettable: it rewinds every memory-controller
// timeline, the SRF/cluster availability clocks, and all accounting so
// the instance can be reused across jobs with bit-identical cycle
// counts. Every kernel entry point performs the same rewind on entry.
func (m *Machine) Reset() { m.reset() }

// reset rewinds all timelines between kernel runs.
func (m *Machine) reset() {
	for _, mc := range m.mcs {
		mc.Reset()
	}
	m.mcFree = make([]uint64, m.cfg.MemControllers)
	m.srfFree = 0
	m.clusterFree = 0
	m.inflight = nil
	m.end = 0
	m.breakdown = sim.Breakdown{}
	m.stats = sim.Stats{}
}

// acquireDescriptor blocks until a stream descriptor register is free,
// returning the (possibly delayed) start time.
func (m *Machine) acquireDescriptor(t uint64) uint64 {
	if len(m.inflight) < m.cfg.StreamDescRegs {
		return t
	}
	// Wait for the earliest in-flight stream to complete.
	minIdx := 0
	for i, c := range m.inflight {
		if c < m.inflight[minIdx] {
			minIdx = i
		}
	}
	if m.inflight[minIdx] > t {
		m.stats.Inc("descriptor_stalls", m.inflight[minIdx]-t)
		t = m.inflight[minIdx]
	}
	m.inflight = append(m.inflight[:minIdx], m.inflight[minIdx+1:]...)
	return t
}

// memStream issues one DRAM<->SRF stream of words 32-bit words, starting
// no earlier than ready, and returns its completion time. Streams occupy
// one memory controller for their duration and hold a descriptor.
func (m *Machine) memStream(words int, stride int, write bool, ready uint64) uint64 {
	if words == 0 {
		return ready
	}
	t := m.acquireDescriptor(ready)
	// Pick the controller that frees first.
	mc := 0
	for i := range m.mcFree {
		if m.mcFree[i] < m.mcFree[mc] {
			mc = i
		}
	}
	start := t
	if m.mcFree[mc] > start {
		start = m.mcFree[mc]
	}
	ctl := m.mcs[mc]
	ctl.SyncTo(start)
	if stride == 0 {
		stride = 1
	}
	sr := ctl.Stream(dram.Request{Base: 0, Stride: stride, Count: words, Write: write})
	done := start + sr.Cycles
	m.mcFree[mc] = done
	m.inflight = append(m.inflight, done)
	m.breakdown.Add("memory", sr.Cycles)
	m.stats.Inc("mem_words", uint64(words))
	m.noteEnd(done)
	return done
}

// srfStream accounts an SRF<->cluster transfer (16 words/cycle); these
// are far faster than memory streams but still occupy the SRF ports.
func (m *Machine) srfStream(words int, ready uint64) uint64 {
	if words == 0 {
		return ready
	}
	start := ready
	if m.srfFree > start {
		start = m.srfFree
	}
	dur := m.srf.TransferCycles(uint64(words))
	done := start + dur
	m.srfFree = done
	m.stats.Inc("srf_words", uint64(words))
	m.noteEnd(done)
	return done
}

// InitiationInterval returns the resource-constrained initiation interval
// of a kernel's inner loop on one cluster.
func (m *Machine) InitiationInterval(k KernelDesc) uint64 {
	ii := sim.CeilDiv(uint64(k.AddsPerIter), uint64(m.cfg.AddersPerCluster))
	if v := sim.CeilDiv(uint64(k.MulsPerIter), uint64(m.cfg.MulsPerCluster)); v > ii {
		ii = v
	}
	if k.DivsPerIter > 0 && m.cfg.DivsPerCluster > 0 {
		if v := sim.CeilDiv(uint64(k.DivsPerIter), uint64(m.cfg.DivsPerCluster)); v > ii {
			ii = v
		}
	}
	if v := sim.CeilDiv(uint64(k.CommPerIter), uint64(m.cfg.CommWordsPerCycle)); v > ii {
		ii = v
	}
	if ii == 0 {
		ii = 1
	}
	return ii
}

// kernelCycles returns the cluster-array occupancy of one invocation:
// (iterations + pipeline fill/drain) x II plus the dispatch cost.
func (m *Machine) kernelCycles(k KernelDesc) uint64 {
	ii := m.InitiationInterval(k)
	return uint64(k.Iterations+m.cfg.PipeDepth)*ii + uint64(m.cfg.KernelStartup)
}

// runKernel schedules one kernel invocation after its inputs are ready
// and returns its completion time.
func (m *Machine) runKernel(k KernelDesc, ready uint64) uint64 {
	start := ready
	if m.clusterFree > start {
		start = m.clusterFree
	}
	dur := m.kernelCycles(k)
	done := start + dur
	m.clusterFree = done
	m.breakdown.Add("compute", dur)
	m.stats.Inc("kernel_invocations", 1)
	m.stats.Inc("kernel_cycles", dur)
	ops := uint64(k.Iterations) * uint64(k.AddsPerIter+k.MulsPerIter+k.DivsPerIter) * uint64(m.cfg.Clusters)
	m.stats.Inc("cluster_ops", ops)
	m.noteEnd(done)
	return done
}

func (m *Machine) noteEnd(t uint64) {
	if t > m.end {
		m.end = t
	}
}

// finish assembles a core.Result from the timeline state. Memory and
// compute busy cycles overlap in reality; the residual "other" category
// is whatever the critical path spent outside the busier resource.
func (m *Machine) finish(kernel core.KernelID, ops, words uint64) core.Result {
	total := m.end
	// Normalize the memory category to per-controller occupancy so its
	// fraction of the total is meaningful.
	memBusy := m.breakdown.Get("memory") / uint64(m.cfg.MemControllers)
	b := sim.Breakdown{}
	b.Add("memory", memBusy)
	b.Add("compute", m.breakdown.Get("compute"))
	if busiest := max64(memBusy, m.breakdown.Get("compute")); total > busiest {
		b.Add("other", total-busiest)
	}
	return core.Result{
		Machine:   m.cfg.Name,
		Kernel:    kernel,
		Cycles:    total,
		Breakdown: b,
		Stats:     m.stats,
		Ops:       ops,
		Words:     words,
		Verified:  true,
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
