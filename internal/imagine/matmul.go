package imagine

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/kernels/matmul"
)

// RunMatMul implements core.MatMulRunner: a column-block formulation in
// which a K x blockCols panel of B is resident in the SRF while rows of
// A stream past it, each kernel invocation producing one row of a C
// column block. With one multiply and one add per MAC the inner loop's
// initiation interval is a single cycle — matrix multiply is the kernel
// Imagine's ALU mix was built for.
func (m *Machine) RunMatMul(spec matmul.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := matmul.VerifyBlocked(spec); err != nil {
		return core.Result{}, err
	}

	m.reset()
	// Column block width: the B panel (K x width words) must fit half
	// the SRF, leaving room for A/C double buffering.
	width := m.cfg.SRF.CapacityBytes / 2 / 4 / spec.K
	if width > spec.N {
		width = spec.N
	}
	if width < 1 {
		return core.Result{}, fmt.Errorf("imagine: K=%d too deep for the SRF", spec.K)
	}
	for j0 := 0; j0 < spec.N; j0 += width {
		cols := width
		if j0+cols > spec.N {
			cols = spec.N - j0
		}
		// Load the B panel once per column block.
		panelDone := m.memStream(spec.K*cols, 1, false, 0)
		var pendingStore uint64
		pendingWords := 0
		for i := 0; i < spec.M; i++ {
			rowDone := m.memStream(spec.K, 1, false, 0)
			if pendingWords > 0 {
				m.memStream(pendingWords, 1, true, pendingStore)
			}
			ready := maxAll([]uint64{panelDone, rowDone})
			ready = m.srfStream(spec.K, ready)
			k := KernelDesc{
				Name:       "matmul-row",
				Iterations: spec.K * cols / m.cfg.Clusters,
				// One multiply and one accumulate per MAC per cluster.
				AddsPerIter: 1, MulsPerIter: 1,
			}
			kDone := m.runKernel(k, ready)
			pendingStore = m.srfStream(cols, kDone)
			pendingWords = cols
		}
		if pendingWords > 0 {
			m.memStream(pendingWords, 1, true, pendingStore)
		}
	}
	return m.finish(core.MatMul, spec.Flops(),
		uint64(spec.K)*uint64(spec.N)+uint64(spec.M)*uint64(spec.K)*uint64((spec.N+width-1)/width)+uint64(spec.M)*uint64(spec.N)), nil
}
