// Package ppc models the study's conventional baseline: a 1 GHz
// PowerPC G4 (PowerMac G4) in two variants — plain scalar code and
// hand-inserted AltiVec (4 x 32-bit SIMD) code. The paper measured this
// machine directly (mach_absolute_time on MacOS X); we substitute a
// timing model because the hardware is long gone.
//
// The model is a superscalar cost model plus a simulated two-level cache
// hierarchy over DRAM:
//
//   - instruction throughput: IssueWidth instructions per cycle overall,
//     one load/store port, one scalar FPU (latency FPLatency), one
//     vector unit (4 lanes, latency VecLatency);
//   - per-iteration critical-path serialization: compiled loops rarely
//     reach resource bounds, so each loop supplies its dependence depth;
//   - memory stalls from an L1/L2/DRAM simulation of the kernel's actual
//     access pattern, divided by a small memory-level-parallelism factor.
//
// The published G4 numbers embed real-code overheads (array-of-structs
// complex layout forcing AltiVec permutes, sub-band extraction copies,
// compiler-scheduled rather than hand-scheduled scalar FP). The kernel
// programs below include those instruction expansions explicitly; where
// a residual factor remains it is called out in EXPERIMENTS.md.
package ppc

import (
	"fmt"

	"sigkern/internal/cache"
	"sigkern/internal/core"
	"sigkern/internal/dram"
	"sigkern/internal/sim"
)

// Variant selects scalar or AltiVec code generation.
type Variant int

const (
	// Scalar is plain compiled C.
	Scalar Variant = iota
	// AltiVec uses the 4-wide vector extension.
	AltiVec
)

// String returns the paper's row label for the variant.
func (v Variant) String() string {
	if v == AltiVec {
		return "AltiVec"
	}
	return "PPC"
}

// Config parameterizes the machine model.
type Config struct {
	// Variant is fixed per machine row at instantiation (the PPC row is
	// always Scalar, the AltiVec row always AltiVec), so it is excluded
	// from serialization: a saved config cannot flip a row's variant.
	Variant  Variant `json:"-"`
	ClockMHz float64
	// IssueWidth is the sustained instructions per cycle ceiling.
	IssueWidth int
	// FPLatency and VecLatency are dependent-operation latencies.
	FPLatency, VecLatency int
	// LSPorts is the number of load/store pipes (1 on the G4).
	LSPorts int
	// MLP divides read-miss stall time: the effective number of
	// overlapped outstanding misses (the G4's in-order load queue
	// achieves little).
	MLP float64
	// MLPStore divides write-miss stall time: store misses drain through
	// the store queue and gathering write buffers, so they overlap far
	// better than loads.
	MLPStore float64
	// L1 and L2 configure the cache hierarchy; DRAM the memory behind it.
	L1, L2 cache.Config
	DRAM   dram.Config
}

// DefaultConfig returns the 1 GHz PowerMac G4 model for a variant.
func DefaultConfig(v Variant) Config {
	return Config{
		Variant:    v,
		ClockMHz:   1000,
		IssueWidth: 2,
		FPLatency:  4,
		VecLatency: 4,
		LSPorts:    1,
		MLP:        1.2,
		MLPStore:   3,
		L1:         cache.G4L1(),
		L2:         cache.G4L2(),
		DRAM:       dram.PPCDRAM(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.IssueWidth <= 0 || c.LSPorts <= 0:
		return fmt.Errorf("ppc: issue width %d / LS ports %d", c.IssueWidth, c.LSPorts)
	case c.FPLatency <= 0 || c.VecLatency <= 0:
		return fmt.Errorf("ppc: latencies %d/%d", c.FPLatency, c.VecLatency)
	case c.MLP < 1 || c.MLPStore < 1:
		return fmt.Errorf("ppc: MLP %v / %v", c.MLP, c.MLPStore)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	return c.DRAM.Validate()
}

// Machine is one G4 instance (scalar or AltiVec). It is not safe for
// concurrent use.
type Machine struct {
	cfg       Config
	mem       *dram.Controller
	l2        *cache.Cache
	l1        *cache.Cache
	bk        sim.Breakdown
	st        sim.Stats
	readStall float64 // accumulated raw read-miss latency (pre-MLP)
	writeStal float64 // accumulated raw write-miss latency (pre-MLP)
}

// New returns a machine for cfg, panicking on invalid configuration.
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{cfg: cfg}
	m.mem = dram.NewController(cfg.DRAM)
	m.l2 = cache.New(cfg.L2, cache.NewDRAMBackend(m.mem, cfg.L2.LineBytes))
	m.l1 = cache.New(cfg.L1, m.l2)
	return m
}

// Name implements core.Machine ("PPC" or "AltiVec").
func (m *Machine) Name() string { return m.cfg.Variant.String() }

// Params implements core.Machine with the paper's Table 2 row.
func (m *Machine) Params() core.Params {
	return core.Params{
		ClockMHz:    m.cfg.ClockMHz,
		ALUs:        4,
		PeakGFLOPS:  5,
		Description: "1 GHz PowerPC G4 (PowerMac G4), AltiVec 4x32-bit SIMD",
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Vector reports whether the machine runs AltiVec code.
func (m *Machine) Vector() bool { return m.cfg.Variant == AltiVec }

// Reset implements core.Resettable: it rewinds the cache hierarchy and
// all accounting so the instance can be reused across jobs with
// bit-identical cycle counts. Every kernel entry point performs the
// same rewind on entry.
func (m *Machine) Reset() { m.reset() }

// reset rewinds caches and accounting between kernel runs.
func (m *Machine) reset() {
	m.l1.Reset() // cascades to L2 and DRAM
	m.bk = sim.Breakdown{}
	m.st = sim.Stats{}
	m.readStall = 0
	m.writeStal = 0
}

// loopMix describes one inner loop's per-iteration instruction mix.
type loopMix struct {
	name string
	// iterations of the loop body.
	iters uint64
	// per-iteration instruction classes.
	intOps, fpOps, vecOps, lsOps uint64
	// critical is the per-iteration dependence-chain latency in cycles;
	// the loop cannot run faster than this when the compiler does not
	// software-pipeline across iterations.
	critical uint64
}

// loopCycles returns the loop's compute cycles (memory stalls are
// accounted separately through the cache simulation).
func (m *Machine) loopCycles(l loopMix) uint64 {
	total := l.intOps + l.fpOps + l.vecOps + l.lsOps
	perIter := sim.CeilDiv(total, uint64(m.cfg.IssueWidth))
	if v := l.fpOps; v > perIter { // one scalar FPU
		perIter = v
	}
	if v := l.vecOps; v > perIter { // one vector unit
		perIter = v
	}
	if v := sim.CeilDiv(l.lsOps, uint64(m.cfg.LSPorts)); v > perIter {
		perIter = v
	}
	if l.critical > perIter {
		perIter = l.critical
	}
	cycles := l.iters * perIter
	m.bk.Add("compute", cycles)
	m.st.Inc("instructions", l.iters*total)
	return cycles
}

// access runs one byte-addressed access through the cache hierarchy and
// accumulates the miss stall beyond the L1 hit time.
func (m *Machine) access(addr int, write bool) {
	lat := m.l1.Access(addr, write)
	hit := uint64(m.cfg.L1.HitLatency)
	if lat > hit {
		if write {
			m.writeStal += float64(lat - hit)
		} else {
			m.readStall += float64(lat - hit)
		}
	}
	m.st.Inc("mem_accesses", 1)
}

// memStallCycles converts accumulated miss latency into stall cycles via
// the read and write MLP factors and charges them to the breakdown.
func (m *Machine) memStallCycles() uint64 {
	stall := uint64(m.readStall/m.cfg.MLP + m.writeStal/m.cfg.MLPStore)
	m.bk.Add("memory", stall)
	m.readStall = 0
	m.writeStal = 0
	return stall
}

// result assembles a core.Result.
func (m *Machine) result(kernel core.KernelID, cycles, ops, words uint64) core.Result {
	return core.Result{
		Machine:   m.Name(),
		Kernel:    kernel,
		Cycles:    cycles,
		Breakdown: m.bk,
		Stats:     m.st,
		Ops:       ops,
		Words:     words,
		Verified:  true,
	}
}
