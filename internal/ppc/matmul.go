package ppc

import (
	"sigkern/internal/core"
	"sigkern/internal/kernels/matmul"
)

// RunMatMul implements core.MatMulRunner: the blocked triple loop. The
// cache trace walks the blocked access pattern at line granularity (the
// per-element inner loop hits in L1 by construction once a line is
// resident, so line-level tracing captures exactly the misses).
func (m *Machine) RunMatMul(spec matmul.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := matmul.VerifyBlocked(spec); err != nil {
		return core.Result{}, err
	}

	m.reset()
	const (
		aBase = 0
		bBase = 16 << 20
		cBase = 32 << 20
	)
	block := spec.BlockSize
	line := m.cfg.L1.LineBytes
	// Cache trace: one access per touched line per block pass.
	touch := func(base, row, col, rowLen, rows, cols int, write bool) {
		for r := 0; r < rows; r++ {
			start := base + ((row+r)*rowLen+col)*4
			for o := 0; o < cols*4; o += line {
				m.access(start+o, write)
			}
		}
	}
	for i0 := 0; i0 < spec.M; i0 += block {
		for k0 := 0; k0 < spec.K; k0 += block {
			for j0 := 0; j0 < spec.N; j0 += block {
				touch(aBase, i0, k0, spec.K, minInt(block, spec.M-i0), minInt(block, spec.K-k0), false)
				touch(bBase, k0, j0, spec.N, minInt(block, spec.K-k0), minInt(block, spec.N-j0), false)
				touch(cBase, i0, j0, spec.N, minInt(block, spec.M-i0), minInt(block, spec.N-j0), true)
			}
		}
	}

	var compute uint64
	if m.Vector() {
		// Four MACs per vector multiply-add pair; B rows are unit stride
		// so no permutes; C chunks accumulate in registers.
		compute = m.loopCycles(loopMix{
			name: "vmac", iters: spec.MACs() / 4,
			intOps: 1, vecOps: 2, lsOps: 1, critical: 2,
		})
	} else {
		// Scalar: load B, multiply, accumulate; the j-loop iterations are
		// independent so the FPU pipelines them (resource bound, not
		// latency bound).
		compute = m.loopCycles(loopMix{
			name: "mac", iters: spec.MACs(),
			intOps: 2, fpOps: 2, lsOps: 1, critical: 3,
		})
	}
	cycles := compute + m.memStallCycles()
	words := uint64(spec.M)*uint64(spec.K) + uint64(spec.K)*uint64(spec.N) + 2*uint64(spec.M)*uint64(spec.N)
	return m.result(core.MatMul, cycles, spec.Flops(), words), nil
}
