package ppc

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/testsig"
)

// srcBase/dstBase lay the corner-turn matrices out in the simulated
// byte-address space, separated so they do not alias cache sets
// artificially.
const (
	srcBase = 0
	dstBase = 8 << 20
)

// RunCornerTurn implements core.Machine: a 16x16-blocked transpose. The
// destination's 16 rows within a block are 4 KB apart and therefore map
// to the same L1 set — more rows than ways — so roughly half the
// destination lines are evicted before reuse. That conflict pattern,
// fed through the cache simulation, is what makes the G4 corner turn
// slow, and why AltiVec barely helps ("does not significantly improve
// performance for the corner turn, which is limited by main memory
// bandwidth").
func (m *Machine) RunCornerTurn(spec cornerturn.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := cornerturn.VerifySynthetic(spec.Rows, spec.Cols, func(dst, src *testsig.Matrix) error {
		return cornerturn.TransposeBlocked(dst, src, spec.BlockSize)
	}); err != nil {
		return core.Result{}, fmt.Errorf("ppc: corner turn: %w", err)
	}

	m.reset()
	block := spec.BlockSize
	// Cache trace: the blocked loop nest's actual accesses.
	for r0 := 0; r0 < spec.Rows; r0 += block {
		for c0 := 0; c0 < spec.Cols; c0 += block {
			for r := r0; r < minInt(r0+block, spec.Rows); r++ {
				for c := c0; c < minInt(c0+block, spec.Cols); c++ {
					m.access(srcBase+(r*spec.Cols+c)*4, false)
					m.access(dstBase+(c*spec.Rows+r)*4, true)
				}
			}
		}
	}
	elems := spec.Words()
	var compute uint64
	if m.Vector() {
		// 4x4 sub-tiles: 4 vector loads, 8 merges (vperm), 4 vector
		// stores, plus loop bookkeeping, per 16 elements.
		compute = m.loopCycles(loopMix{
			name: "vtranspose", iters: elems / 16,
			intOps: 6, vecOps: 8, lsOps: 8, critical: 8,
		})
	} else {
		compute = m.loopCycles(loopMix{
			name: "transpose", iters: elems,
			intOps: 4, lsOps: 2, critical: 4,
		})
	}
	cycles := compute + m.memStallCycles()
	return m.result(core.CornerTurn, cycles, 2*elems, 2*elems), nil
}

// RunCSLC implements core.Machine. The scalar variant runs compiled
// radix-2 butterflies whose complex arithmetic serializes through the
// single FPU; the AltiVec variant is the paper's hand-inserted 4-wide
// version, which pays extra permutes for the interleaved complex layout
// but software-pipelines well (the source of the paper's ~6x gain).
func (m *Machine) RunCSLC(spec cslc.Spec) (core.Result, error) {
	spec.Radix = fft.Radix2
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := verifyCSLC(spec); err != nil {
		return core.Result{}, err
	}

	m.reset()
	// Cache trace: sub-band extraction reads each channel's windows from
	// the channel arrays; butterfly working sets are L1-resident after
	// extraction; outputs stream to a result array.
	hop := spec.Hop() * 8 // bytes between window starts (complex64)
	chBytes := spec.Samples * 8
	for ch := 0; ch < spec.Channels(); ch++ {
		base := ch * chBytes
		for b := 0; b < spec.SubBands; b++ {
			for s := 0; s < spec.FFTSize; s++ {
				m.access(base+b*hop+s*8, false)
				m.access(base+b*hop+s*8+4, false)
			}
		}
	}
	outBase := spec.Channels() * chBytes
	for mch := 0; mch < spec.MainChannels; mch++ {
		for b := 0; b < spec.SubBands; b++ {
			for s := 0; s < spec.FFTSize; s++ {
				m.access(outBase+(mch*spec.SubBands+b)*spec.FFTSize*8+s*8, true)
			}
		}
	}

	plan, err := fft.NewPlan(spec.FFTSize, spec.Radix, false)
	if err != nil {
		return core.Result{}, err
	}
	bflies := plan.Counts().Flops() / 10 // radix-2: 10 flops per butterfly
	totalBflies := bflies * (spec.ForwardFFTs() + spec.InverseFFTs())
	weightIters := uint64(spec.MainChannels) * uint64(spec.SubBands) * uint64(spec.FFTSize)

	var compute uint64
	if m.Vector() {
		// Four butterflies per iteration: ~10 vector flops plus permutes
		// for the interleaved re/im layout and alignment. Hand-inserted
		// intrinsics pipeline only partially across iterations — the
		// dependence depth (~30 cycles: the complex multiply-add chain at
		// vector latency, plus permute hops) governs, which is what the
		// paper's measured 6x (not 4x-ideal x scheduling) gain implies.
		vcrit := uint64(6*m.cfg.VecLatency + 6)
		compute = m.loopCycles(loopMix{
			name: "vbutterfly", iters: totalBflies / 4,
			intOps: 4, vecOps: 14, lsOps: 8, critical: vcrit,
		})
		compute += m.loopCycles(loopMix{
			name: "vweight", iters: weightIters / 4,
			intOps: 3, vecOps: 10, lsOps: 7, critical: uint64(3 * m.cfg.VecLatency),
		})
	} else {
		// Compiled complex arithmetic: every butterfly operand round-trips
		// through memory (complex structs, no unrolling), so each of the
		// ~10 FP operations pays load-use plus FPU latency in a serial
		// chain. This depth is calibrated against the published G4
		// measurement; see EXPERIMENTS.md for the residual gap.
		crit := uint64(10*(m.cfg.FPLatency+1) + 5)
		compute = m.loopCycles(loopMix{
			name: "butterfly", iters: totalBflies,
			intOps: 8, fpOps: 10, lsOps: 10, critical: crit,
		})
		compute += m.loopCycles(loopMix{
			name: "weight", iters: weightIters,
			intOps: 6, fpOps: 16, lsOps: 12, critical: uint64(6 * m.cfg.FPLatency),
		})
	}
	// Extraction/repack copies (both variants move every sample twice).
	compute += m.loopCycles(loopMix{
		name: "extract", iters: uint64(spec.Channels()) * uint64(spec.SubBands) * uint64(spec.FFTSize),
		intOps: 2, lsOps: 4, critical: 3,
	})
	cycles := compute + m.memStallCycles()
	counts, err := spec.TotalCounts()
	if err != nil {
		return core.Result{}, err
	}
	return m.result(core.CSLC, cycles, counts.Flops(), counts.Loads+counts.Stores), nil
}

// RunBeamSteering implements core.Machine: the tables are L1-resident
// after the first dwell; the output stream write-misses its way through
// the store queue.
func (m *Machine) RunBeamSteering(spec beamsteer.Spec) (core.Result, error) {
	if err := spec.Validate(); err != nil {
		return core.Result{}, err
	}
	tables := testsig.NewBeamTables(spec.Elements, spec.Directions, spec.Dwells, 7)
	out, err := beamsteer.Steer(spec, tables)
	if err != nil {
		return core.Result{}, err
	}
	for _, probe := range [][3]int{{0, 0, 0}, {spec.Dwells - 1, spec.Directions - 1, spec.Elements - 1}} {
		dw, d, e := probe[0], probe[1], probe[2]
		if out[dw][d][e] != beamsteer.SteerOne(spec, tables, dw, d, e) {
			return core.Result{}, fmt.Errorf("ppc: beam steering output mismatch at %v", probe)
		}
	}

	m.reset()
	calBase, gradBase := 0, spec.Elements*4
	outAddr := 2 * spec.Elements * 4
	for dw := 0; dw < spec.Dwells; dw++ {
		for d := 0; d < spec.Directions; d++ {
			for e := 0; e < spec.Elements; e++ {
				m.access(calBase+e*4, false)
				m.access(gradBase+e*4, false)
				m.access(outAddr, true)
				outAddr += 4
			}
		}
	}
	outputs := spec.Outputs()
	var compute uint64
	if m.Vector() {
		// Table loads need lvx plus alignment permutes; the add chain
		// runs at vector latency.
		compute = m.loopCycles(loopMix{
			name: "vphase", iters: outputs / 4,
			intOps: 2, vecOps: 6, lsOps: 4, critical: 8,
		})
	} else {
		compute = m.loopCycles(loopMix{
			name: "phase", iters: outputs,
			intOps: 8, lsOps: 3, critical: 8,
		})
	}
	cycles := compute + m.memStallCycles()
	return m.result(core.BeamSteering, cycles,
		outputs*spec.OpsPerOutput(), outputs*spec.MemPerOutput()), nil
}

// verifyCSLC proves the functional pipeline against the naive-DFT
// reference on the synthetic scene.
func verifyCSLC(spec cslc.Spec) error {
	scene := testsig.DefaultScene(spec.Samples)
	scene.AuxCoupling = scene.AuxCoupling[:spec.AuxChannels]
	channels := scene.Channels(spec.MainChannels)
	w, err := cslc.EstimateWeights(spec, channels)
	if err != nil {
		return err
	}
	o, err := cslc.Run(spec, channels, w)
	if err != nil {
		return err
	}
	probe := []int{0, spec.SubBands / 2, spec.SubBands - 1}
	return cslc.VerifyAgainstNaive(spec, channels, w, o, probe)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
