package ppc

import (
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/kernels/beamsteer"
	"sigkern/internal/kernels/cornerturn"
	"sigkern/internal/kernels/cslc"
	"sigkern/internal/kernels/fft"
)

var _ core.Machine = (*Machine)(nil)

func TestConfigValidate(t *testing.T) {
	for _, v := range []Variant{Scalar, AltiVec} {
		if err := DefaultConfig(v).Validate(); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
	}
	mutations := []func(*Config){
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.FPLatency = 0 },
		func(c *Config) { c.MLP = 0.5 },
		func(c *Config) { c.MLPStore = 0 },
		func(c *Config) { c.L1.SizeBytes = 0 },
		func(c *Config) { c.DRAM.Banks = 0 },
	}
	for i, mut := range mutations {
		c := DefaultConfig(Scalar)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestVariantNames(t *testing.T) {
	if New(DefaultConfig(Scalar)).Name() != "PPC" {
		t.Fatal("scalar variant name")
	}
	if New(DefaultConfig(AltiVec)).Name() != "AltiVec" {
		t.Fatal("AltiVec variant name")
	}
}

func TestLoopCyclesBounds(t *testing.T) {
	m := New(DefaultConfig(Scalar))
	// Issue-width bound: 8 int ops at width 2 = 4 cycles.
	if got := m.loopCycles(loopMix{iters: 1, intOps: 8}); got != 4 {
		t.Fatalf("issue-bound loop = %d, want 4", got)
	}
	// FPU bound: 6 fp ops on one FPU = 6 cycles (6 > (6)/2).
	if got := m.loopCycles(loopMix{iters: 1, fpOps: 6}); got != 6 {
		t.Fatalf("FPU-bound loop = %d, want 6", got)
	}
	// Critical-path bound dominates everything.
	if got := m.loopCycles(loopMix{iters: 1, intOps: 2, critical: 50}); got != 50 {
		t.Fatalf("latency-bound loop = %d, want 50", got)
	}
	// Iterations multiply.
	if got := m.loopCycles(loopMix{iters: 10, intOps: 2}); got != 10 {
		t.Fatalf("10 iterations = %d, want 10", got)
	}
}

func TestCornerTurnCyclesAndAltiVecBarelyHelps(t *testing.T) {
	sc, err := New(DefaultConfig(Scalar)).RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	av, err := New(DefaultConfig(AltiVec)).RunCornerTurn(cornerturn.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 34.25M scalar, 29.29M AltiVec.
	if sc.Cycles < 20_000_000 || sc.Cycles > 45_000_000 {
		t.Fatalf("scalar corner turn = %d, want ~34M", sc.Cycles)
	}
	// "AltiVec ... does not significantly improve performance for the
	// corner turn": ratio ~1.17.
	ratio := float64(sc.Cycles) / float64(av.Cycles)
	if ratio < 1.0 || ratio > 1.5 {
		t.Fatalf("scalar/AltiVec corner-turn ratio = %.2f, want ~1.17", ratio)
	}
	// Memory-bound on both variants.
	if f := sc.Breakdown.Fraction("memory"); f < 0.6 {
		t.Fatalf("scalar memory fraction = %.2f (%s)", f, sc.Breakdown.String())
	}
}

func TestCSLCAltiVecGainsAboutSix(t *testing.T) {
	sc, err := New(DefaultConfig(Scalar)).RunCSLC(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	av, err := New(DefaultConfig(AltiVec)).RunCSLC(cslc.PaperSpec(fft.Radix2))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "a performance factor of about six for the CSLC".
	ratio := float64(sc.Cycles) / float64(av.Cycles)
	if ratio < 3.5 || ratio > 8 {
		t.Fatalf("scalar/AltiVec CSLC ratio = %.2f, want ~6", ratio)
	}
	// Modeled absolutes land below the published measurement (see
	// EXPERIMENTS.md); assert the modeled band.
	if sc.Cycles < 8_000_000 || sc.Cycles > 32_000_000 {
		t.Fatalf("scalar CSLC = %d, want 8M-32M", sc.Cycles)
	}
	if av.Cycles < 1_500_000 || av.Cycles > 6_000_000 {
		t.Fatalf("AltiVec CSLC = %d, want 1.5M-6M", av.Cycles)
	}
}

func TestBeamSteeringAltiVecGainsAboutTwo(t *testing.T) {
	sc, err := New(DefaultConfig(Scalar)).RunBeamSteering(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	av, err := New(DefaultConfig(AltiVec)).RunBeamSteering(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 730k scalar, 364k AltiVec ("about two for beam steering").
	if sc.Cycles < 450_000 || sc.Cycles > 1_000_000 {
		t.Fatalf("scalar beam steering = %d, want ~730k", sc.Cycles)
	}
	if av.Cycles < 220_000 || av.Cycles > 550_000 {
		t.Fatalf("AltiVec beam steering = %d, want ~364k", av.Cycles)
	}
	ratio := float64(sc.Cycles) / float64(av.Cycles)
	if ratio < 1.5 || ratio > 2.8 {
		t.Fatalf("scalar/AltiVec ratio = %.2f, want ~2", ratio)
	}
}

func TestCornerTurnConflictMisses(t *testing.T) {
	// The 16-row blocks conflict in the L1 (4 KB row stride, 8 ways):
	// the destination write pattern must miss L1 far more often than the
	// 1-in-8 spatial minimum.
	m := New(DefaultConfig(Scalar))
	if _, err := m.RunCornerTurn(cornerturn.PaperSpec()); err != nil {
		t.Fatal(err)
	}
	misses := m.l1.Stats().Get("misses")
	accesses := m.l1.Stats().Get("hits") + misses
	rate := float64(misses) / float64(accesses)
	if rate < 0.15 {
		t.Fatalf("L1 miss rate = %.3f, want conflict-inflated (> 0.15)", rate)
	}
}

func TestParamsMatchTable2(t *testing.T) {
	p := New(DefaultConfig(Scalar)).Params()
	if p.ClockMHz != 1000 || p.ALUs != 4 || p.PeakGFLOPS != 5 {
		t.Fatalf("Table 2 row mismatch: %+v", p)
	}
}

func TestMLPStoreReducesWriteStalls(t *testing.T) {
	cfg := DefaultConfig(Scalar)
	cfg.MLPStore = 1
	slow, err := New(cfg).RunBeamSteering(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := New(DefaultConfig(Scalar)).RunBeamSteering(beamsteer.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles <= fast.Cycles {
		t.Fatalf("MLPStore=1 (%d) not slower than default (%d)", slow.Cycles, fast.Cycles)
	}
}
