package ppc

import (
	"sigkern/internal/core"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/pfb"
)

// RunPFB implements the extension channelizer on the baseline: the input
// streams through the cache once per tap (the polyphase history walk),
// the FIR runs as real-by-complex MACs, and the cross-branch FFT uses
// the same butterfly cost model as the CSLC.
func (m *Machine) RunPFB(w pfb.Workload) (core.Result, error) {
	if err := w.ValidateWorkload(); err != nil {
		return core.Result{}, err
	}
	if err := w.Verify(); err != nil {
		return core.Result{}, err
	}

	m.reset()
	frames := w.FrameCount()
	// Cache trace: each frame reads its new samples and revisits the
	// prototype-length history (resident after the first touch); outputs
	// stream to a result array.
	const outBase = 64 << 20
	for f := 0; f < frames; f++ {
		base := f * w.Channels * 8
		for i := 0; i < w.Channels; i++ {
			m.access(base+i*8, false)
			m.access(base+i*8+4, false)
		}
		for c := 0; c < w.Channels; c++ {
			m.access(outBase+(f*w.Channels+c)*8, true)
		}
	}

	plan, err := fft.NewPlan(w.Channels, fft.Radix2, false)
	if err != nil {
		return core.Result{}, err
	}
	bflies := plan.Counts().Flops() / 10
	macs := uint64(frames) * uint64(w.Channels) * uint64(w.Taps)

	var compute uint64
	if m.Vector() {
		compute = m.loopCycles(loopMix{
			name: "vfir", iters: macs / 4,
			intOps: 1, vecOps: 3, lsOps: 2, critical: 4,
		})
		compute += m.loopCycles(loopMix{
			name: "vbutterfly", iters: uint64(frames) * bflies / 4,
			intOps: 4, vecOps: 14, lsOps: 8, critical: uint64(6*m.cfg.VecLatency + 6),
		})
	} else {
		// The FIR accumulator chains through the FPU.
		compute = m.loopCycles(loopMix{
			name: "fir", iters: macs,
			intOps: 3, fpOps: 4, lsOps: 3, critical: uint64(2 * m.cfg.FPLatency),
		})
		compute += m.loopCycles(loopMix{
			name: "butterfly", iters: uint64(frames) * bflies,
			intOps: 8, fpOps: 10, lsOps: 10, critical: uint64(10*(m.cfg.FPLatency+1) + 5),
		})
	}
	cycles := compute + m.memStallCycles()
	return m.result(core.KernelID("pfb"), cycles, w.TotalOps(),
		2*uint64(w.Samples)+2*uint64(frames)*uint64(w.Channels)), nil
}
