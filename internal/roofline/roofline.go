// Package roofline generalizes the paper's Section 2.5 performance
// model into an analytical roofline engine: every kernel declares its
// resource demands (words moved, operations, strided fraction) and every
// machine contributes its Table 1 peak-throughput row, and the predicted
// execution time is
//
//	cycles = max(compute bound, memory bound)
//
// exactly as the paper computes its Table 4 expectations. The engine
// answers in microseconds — no simulator state is built — which is what
// lets the serving layer offer it as a first-class "estimate" quality
// tier next to full simulation, and what lets the simulators be checked
// continuously against their own analytic model (drift alerting).
//
// The corner-turn, CSLC, and beam-steering bounds computed here are
// bit-identical to perfmodel.ExpectedCornerTurn/ExpectedCSLC/
// ExpectedBeamSteering; the tests assert it. The extension kernels
// (matmul, pfb, equalize, fft) get bounds from the same machinery via
// their declared metadata.
package roofline

import (
	"fmt"

	"sigkern/internal/core"
	"sigkern/internal/kernels/equalize"
	"sigkern/internal/kernels/fft"
	"sigkern/internal/kernels/matmul"
	"sigkern/internal/kernels/pfb"
	"sigkern/internal/perfmodel"
	"sigkern/internal/sim"
)

// Extension kernel identifiers: kernels the analytic model covers that
// are not part of the paper's Table 3 (core.Kernels()). MatMul already
// has a core constant; the pipeline kernels are named here.
const (
	PFB      core.KernelID = "pfb"
	Equalize core.KernelID = "equalize"
	FFT      core.KernelID = "fft"
)

// fftBatch is the transform count behind the FFT extension cell: one
// dwell of 256 range lines, 1024 points each — big enough that the
// per-machine bounds land in the same kilocycle range as the paper
// kernels.
const fftBatch = 256

// fftPoints is the per-transform length of the FFT extension cell.
const fftPoints = 1024

// equalizeSamples is the per-beam sample count behind the equalize
// extension cell, matching the CSLC processing interval (8192 samples).
const equalizeSamples = 8192

// Costs declares one kernel instance's analytical resource demands —
// the per-kernel metadata the roofline model consumes.
type Costs struct {
	// SeqWords is the unit-stride 32-bit-word traffic through the
	// memory level the kernel stresses (perfmodel.KernelBandwidth).
	SeqWords uint64 `json:"seq_words"`
	// StridedWords is the word traffic through strided or indexed
	// accesses; machines with a separate strided path (VIRAM's address
	// generators) bound it by StridedRW instead of the full bandwidth.
	StridedWords uint64 `json:"strided_words,omitempty"`
	// FPOps and IntOps are the real floating-point and integer/issue
	// operation counts; the integer rate differs from Compute on
	// machines with dedicated integer units (VIRAM).
	FPOps  uint64 `json:"fp_ops,omitempty"`
	IntOps uint64 `json:"int_ops,omitempty"`
	// MemNotBinding records that the kernel's working set stays on chip
	// so memory bandwidth is not a binding constraint — the paper's CSLC
	// convention ("the kernel's working set fits on chip everywhere").
	// Word counts still feed the arithmetic-intensity figure.
	MemNotBinding bool `json:"mem_not_binding,omitempty"`
}

// Words returns the total declared word traffic.
func (c Costs) Words() uint64 { return c.SeqWords + c.StridedWords }

// Ops returns the total declared operation count.
func (c Costs) Ops() uint64 { return c.FPOps + c.IntOps }

// Intensity returns the arithmetic intensity in operations per 32-bit
// word — the roofline x-axis. Zero when the kernel moves no words.
func (c Costs) Intensity() float64 {
	if w := c.Words(); w > 0 {
		return float64(c.Ops()) / float64(w)
	}
	return 0
}

// Estimate is one analytic prediction: the compute and memory bounds
// and their max, for one (machine, kernel-instance) pair.
type Estimate struct {
	Machine string        `json:"machine"`
	Kernel  core.KernelID `json:"kernel"`
	// ComputeBound is ops over peak op throughput (FP and integer rated
	// separately), in cycles.
	ComputeBound uint64 `json:"compute_bound_cycles"`
	// PeakMemBound is all declared words over the kernel-level peak
	// bandwidth — the "peak model" column of the paper's Table 4. Zero
	// when memory is not binding.
	PeakMemBound uint64 `json:"peak_memory_bound_cycles,omitempty"`
	// MemBound refines PeakMemBound with the machine's strided-access
	// limit where one exists (the "strided model" column); equal to
	// PeakMemBound otherwise.
	MemBound uint64 `json:"memory_bound_cycles,omitempty"`
	// PeakCycles is max(ComputeBound, PeakMemBound) — bit-identical to
	// perfmodel.ExpectedCornerTurn and friends for the paper kernels.
	PeakCycles uint64 `json:"peak_cycles"`
	// Cycles is max(ComputeBound, MemBound): the tightest analytic
	// bound, and what the estimate tier serves.
	Cycles uint64 `json:"cycles"`
	// Bound names the binding constraint: "compute" or "memory".
	Bound string `json:"bound"`
	// Intensity is the kernel's arithmetic intensity in ops per word.
	Intensity float64 `json:"arithmetic_intensity,omitempty"`
	// Ops and Words echo the declared totals so estimate results carry
	// the same accounting fields as simulated ones.
	Ops   uint64 `json:"ops"`
	Words uint64 `json:"words"`
}

// For computes the roofline estimate for one Table 1 row and one set of
// declared kernel costs.
func For(t perfmodel.Throughput, c Costs) Estimate {
	e := Estimate{
		Machine:   t.Machine,
		Intensity: c.Intensity(),
		Ops:       c.Ops(),
		Words:     c.Words(),
	}
	if c.FPOps > 0 {
		e.ComputeBound += sim.CeilDiv(c.FPOps, uint64(t.Compute))
	}
	if c.IntOps > 0 {
		e.ComputeBound += sim.CeilDiv(c.IntOps, uint64(t.IntRate()))
	}
	if !c.MemNotBinding && c.Words() > 0 {
		bw := uint64(t.KernelBandwidth())
		e.PeakMemBound = sim.CeilDiv(c.Words(), bw)
		e.MemBound = e.PeakMemBound
		if t.StridedRW > 0 && c.StridedWords > 0 {
			e.MemBound = sim.CeilDiv(c.StridedWords, uint64(t.StridedRW)) +
				sim.CeilDiv(c.SeqWords, bw)
		}
	}
	e.PeakCycles = maxU64(e.ComputeBound, e.PeakMemBound)
	e.Cycles = maxU64(e.ComputeBound, e.MemBound)
	e.Bound = "compute"
	if e.MemBound > e.ComputeBound {
		e.Bound = "memory"
	}
	return e
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// CostsFor returns the declared costs of one paper kernel as
// instantiated by the workload.
func CostsFor(k core.KernelID, w core.Workload) (Costs, error) {
	switch k {
	case core.CornerTurn:
		// One strided read and one sequential write per element (the
		// VIRAM formulation reads columns through the address
		// generators), and a load+store instruction pair per word for
		// the issue-rate bound.
		s := w.CornerTurn
		return Costs{
			SeqWords:     s.Words(),
			StridedWords: s.Words(),
			IntOps:       s.MoveOps(),
		}, nil
	case core.CSLC:
		counts, err := w.CSLC.TotalCounts()
		if err != nil {
			return Costs{}, err
		}
		return Costs{
			SeqWords:      counts.Loads + counts.Stores,
			FPOps:         counts.Flops(),
			MemNotBinding: true, // working set fits on chip everywhere
		}, nil
	case core.BeamSteering:
		s := w.Beam
		return Costs{
			SeqWords: s.Outputs() * s.MemPerOutput(),
			IntOps:   s.Outputs() * s.OpsPerOutput(),
		}, nil
	}
	if c, ok := extensionCosts(k); ok {
		return c, nil
	}
	return Costs{}, fmt.Errorf("roofline: no declared metadata for kernel %q", k)
}

// ExtensionKernels lists the non-paper kernels with declared metadata,
// in grid presentation order.
func ExtensionKernels() []core.KernelID {
	return []core.KernelID{core.MatMul, PFB, Equalize, FFT}
}

// extensionCosts returns the declared costs of an extension kernel at
// its default spec (extension cells are not workload-parameterized; the
// job API serves only the paper kernels).
func extensionCosts(k core.KernelID) (Costs, bool) {
	switch k {
	case core.MatMul:
		s := matmul.DefaultSpec()
		return Costs{SeqWords: s.MinWords(), FPOps: s.Flops()}, true
	case PFB:
		w := pfb.DefaultWorkload()
		return Costs{SeqWords: w.Words(), FPOps: w.TotalOps()}, true
	case Equalize:
		s := equalize.DefaultSpec()
		n := uint64(s.Beams) * equalizeSamples
		return Costs{SeqWords: n * s.WordsPerSample(), FPOps: n * s.OpsPerSample()}, true
	case FFT:
		counts := fft.MustPlan(fftPoints, fft.Radix2, false).Counts().Scale(fftBatch)
		return Costs{
			SeqWords:      counts.Loads + counts.Stores,
			FPOps:         counts.Flops(),
			MemNotBinding: true, // each transform's working set fits on chip
		}, true
	}
	return Costs{}, false
}

// ForJob computes the estimate for one (machine, kernel, workload)
// request — the estimate tier's entry point.
func ForJob(machine string, k core.KernelID, w core.Workload) (Estimate, error) {
	t, err := perfmodel.ForMachine(machine)
	if err != nil {
		return Estimate{}, err
	}
	c, err := CostsFor(k, w)
	if err != nil {
		return Estimate{}, err
	}
	e := For(t, c)
	e.Kernel = k
	return e, nil
}
