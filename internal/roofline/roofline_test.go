package roofline

import (
	"testing"

	"sigkern/internal/core"
	"sigkern/internal/perfmodel"
)

// TestMatchesPerfmodel pins the engine to the paper's Section 2.5
// formulas: for every Table 1 machine the generalized roofline bound
// must be bit-identical to the hand-written perfmodel expectations.
func TestMatchesPerfmodel(t *testing.T) {
	w := core.PaperWorkload()
	for _, tp := range perfmodel.Table1() {
		e, err := ForJob(tp.Machine, core.CornerTurn, w)
		if err != nil {
			t.Fatal(err)
		}
		if want := perfmodel.ExpectedCornerTurn(tp, w.CornerTurn); e.PeakCycles != want {
			t.Errorf("%s corner-turn peak = %d, want %d", tp.Machine, e.PeakCycles, want)
		}
		if want := perfmodel.ExpectedCornerTurnStrided(tp, w.CornerTurn); e.Cycles != want {
			t.Errorf("%s corner-turn refined = %d, want %d", tp.Machine, e.Cycles, want)
		}

		e, err = ForJob(tp.Machine, core.CSLC, w)
		if err != nil {
			t.Fatal(err)
		}
		want, err := perfmodel.ExpectedCSLC(tp, w.CSLC)
		if err != nil {
			t.Fatal(err)
		}
		if e.Cycles != want || e.PeakCycles != want {
			t.Errorf("%s cslc = %d/%d, want %d", tp.Machine, e.PeakCycles, e.Cycles, want)
		}
		if e.Bound != "compute" {
			t.Errorf("%s cslc bound = %q, want compute", tp.Machine, e.Bound)
		}

		e, err = ForJob(tp.Machine, core.BeamSteering, w)
		if err != nil {
			t.Fatal(err)
		}
		if want := perfmodel.ExpectedBeamSteering(tp, w.Beam); e.Cycles != want || e.PeakCycles != want {
			t.Errorf("%s beam-steering = %d/%d, want %d", tp.Machine, e.PeakCycles, e.Cycles, want)
		}
	}
}

// paperMeasured is Table 3 (and the extension tables) from
// EXPERIMENTS.md in kilocycles — the simulators' bit-deterministic
// outputs, rounded to the reporting unit.
var paperMeasured = map[string]map[core.KernelID]float64{
	"PPC":     {core.CornerTurn: 28098, core.CSLC: 12211, core.BeamSteering: 659, core.MatMul: 54592, PFB: 17046},
	"AltiVec": {core.CornerTurn: 24624, core.CSLC: 2498, core.BeamSteering: 350, core.MatMul: 12649, PFB: 4126},
	"VIRAM":   {core.CornerTurn: 592, core.CSLC: 480, core.BeamSteering: 44, core.MatMul: 4223, PFB: 583},
	"Imagine": {core.CornerTurn: 1257, core.CSLC: 182, core.BeamSteering: 78, core.MatMul: 2290, PFB: 150},
	"Raw":     {core.CornerTurn: 148, core.CSLC: 381, core.BeamSteering: 20, core.MatMul: 2757, PFB: 564},
}

// TestPaperCellsWithinEnvelope asserts every measured cell — the
// paper's Table 3 plus the extension kernels — lands inside its
// model-error envelope: at or above the analytic lower bound and below
// the per-machine overhead ceiling. This is the automated version of
// the paper's Table 4 validation.
func TestPaperCellsWithinEnvelope(t *testing.T) {
	w := core.PaperWorkload()
	for machine, kernels := range paperMeasured {
		for kernel, kcycles := range kernels {
			e, err := ForJob(machine, kernel, w)
			if err != nil {
				t.Fatalf("%s/%s: %v", machine, kernel, err)
			}
			ratio := kcycles * 1e3 / float64(e.Cycles)
			lo, hi := EnvelopeFor(machine, kernel)
			// The reporting unit rounds down up to 500 cycles; give the
			// lower edge that much slack for cells near the bound.
			loSlack := lo - 500/float64(e.Cycles)
			if ratio < loSlack || ratio > hi {
				t.Errorf("%s/%s: measured/model = %.3f outside [%.2f, %.2f] (model %d cycles)",
					machine, kernel, ratio, lo, hi, e.Cycles)
			}
		}
	}
}

func TestIntensityAndBounds(t *testing.T) {
	w := core.PaperWorkload()
	// Corner turn moves one word per op: intensity 1, memory-bound on
	// the bandwidth-starved machines.
	e, err := ForJob("Imagine", core.CornerTurn, w)
	if err != nil {
		t.Fatal(err)
	}
	if e.Intensity != 1.0 || e.Bound != "memory" {
		t.Fatalf("Imagine corner turn: intensity %.2f bound %s", e.Intensity, e.Bound)
	}
	// MatMul reuses operands ~170x: compute-bound everywhere.
	for _, tp := range perfmodel.Table1() {
		e, err := ForJob(tp.Machine, core.MatMul, w)
		if err != nil {
			t.Fatal(err)
		}
		if e.Bound != "compute" {
			t.Errorf("%s matmul bound = %s, want compute", tp.Machine, e.Bound)
		}
		if e.Intensity < 100 {
			t.Errorf("%s matmul intensity = %.1f, want > 100", tp.Machine, e.Intensity)
		}
	}
}

func TestForJobErrors(t *testing.T) {
	w := core.PaperWorkload()
	if _, err := ForJob("G5", core.CornerTurn, w); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := ForJob("VIRAM", core.KernelID("ray-trace"), w); err == nil {
		t.Fatal("kernel without metadata accepted")
	}
}

func TestGrid(t *testing.T) {
	w := core.PaperWorkload()
	measured := map[string]map[core.KernelID]uint64{
		"VIRAM": {core.CornerTurn: 592_137},
	}
	cells, err := Grid(w, measured)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(perfmodel.Table1()) * len(GridKernels())
	if len(cells) != wantCells {
		t.Fatalf("%d cells, want %d", len(cells), wantCells)
	}
	var simulated int
	for _, c := range cells {
		if c.Cycles == 0 {
			t.Fatalf("%s/%s: zero prediction", c.Machine, c.Kernel)
		}
		if !c.Simulated {
			if c.SimCycles != 0 || c.ErrorRatio != 0 {
				t.Fatalf("%s/%s: model-only cell carries simulation fields", c.Machine, c.Kernel)
			}
			continue
		}
		simulated++
		if c.Machine != "VIRAM" || c.Kernel != core.CornerTurn {
			t.Fatalf("unexpected simulated cell %s/%s", c.Machine, c.Kernel)
		}
		if !c.WithinEnvelope || c.ErrorRatio < 1.0 || c.ErrorRatio > 2.0 {
			t.Fatalf("VIRAM corner turn ratio %.3f, envelope [%v, %v]", c.ErrorRatio, c.EnvelopeLo, c.EnvelopeHi)
		}
	}
	if simulated != 1 {
		t.Fatalf("%d simulated cells, want 1", simulated)
	}
	// Grid order: machines in Table 1 order, kernels paper-first.
	if cells[0].Machine != "PPC" || cells[0].Kernel != core.CornerTurn {
		t.Fatalf("first cell %s/%s", cells[0].Machine, cells[0].Kernel)
	}
}

// TestEstimateCheap pins the hot-path property the estimate tier is
// built on: after the first call warms the shared FFT-plan cache, an
// estimate is pure arithmetic with at most a handful of allocations.
func TestEstimateCheap(t *testing.T) {
	w := core.PaperWorkload()
	if _, err := ForJob("VIRAM", core.CSLC, w); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(100, func() {
		if _, err := ForJob("VIRAM", core.CSLC, w); err != nil {
			t.Fatal(err)
		}
	})
	if n > 4 {
		t.Fatalf("estimate allocates %v per call", n)
	}
}
