package roofline

import (
	"sigkern/internal/core"
	"sigkern/internal/perfmodel"
)

// EnvelopeFor returns the acceptable measured/predicted ratio band for
// one (machine, kernel) cell. The model is a lower bound, so a healthy
// simulator never lands below 1.0; the upper edge is how much real-code
// overhead the paper's own Table 4 shows on top of the peak model:
//
//   - Research machines land within ~1.1-4.2x of their bound (corner
//     turn 1.13-1.51x, the worst case being Imagine's CSLC at 4.2x,
//     dominated by kernel-startup overhead the model excludes). 6x
//     leaves headroom without masking real regressions.
//   - The G4 baselines sit far above the bound (up to ~13x on the
//     corner turn) because the model deliberately excludes memory
//     latency — "these architectures can generally hide memory
//     latency" holds for the research machines, not for a cache-based
//     scalar core missing in L2 every line. 20x bounds even that.
//
// A simulated cell outside its band means the simulator and its own
// analytic model have drifted apart — a correctness alarm, not noise.
func EnvelopeFor(machine string, k core.KernelID) (lo, hi float64) {
	lo = 1.0
	switch machine {
	case "PPC", "AltiVec":
		hi = 20.0
	default:
		hi = 6.0
	}
	return lo, hi
}

// Cell is one entry of the predicted-cycles grid: the analytic estimate
// plus, where a simulation exists, the model-vs-simulated error.
type Cell struct {
	Estimate
	// Simulated reports whether SimCycles/ErrorRatio are populated;
	// model-only cells (no machine implementation for the kernel, or
	// simulation skipped) carry just the estimate.
	Simulated bool `json:"simulated"`
	// SimCycles is the simulator's measurement for this cell.
	SimCycles uint64 `json:"simulated_cycles,omitempty"`
	// ErrorRatio is SimCycles over the refined analytic bound — the
	// regenerated Table 4 "measured/expected" column, extended to every
	// cell.
	ErrorRatio float64 `json:"error_ratio,omitempty"`
	// EnvelopeLo/EnvelopeHi bound the healthy ErrorRatio band and
	// WithinEnvelope reports whether the cell is inside it (always
	// false on model-only cells; check Simulated first).
	EnvelopeLo     float64 `json:"envelope_lo"`
	EnvelopeHi     float64 `json:"envelope_hi"`
	WithinEnvelope bool    `json:"within_envelope,omitempty"`
}

// GridKernels lists every kernel of the grid: the paper's three, then
// the extension kernels with declared metadata.
func GridKernels() []core.KernelID {
	return append(core.Kernels(), ExtensionKernels()...)
}

// Grid computes the full predicted-cycles grid — every Table 1 machine
// crossed with every kernel that declares metadata — attaching
// simulated cycles and error ratios for the cells present in measured
// (machine name -> kernel -> cycles; partial and nil maps are fine).
// This is the regenerated and extended Table 4.
func Grid(w core.Workload, measured map[string]map[core.KernelID]uint64) ([]Cell, error) {
	kernels := GridKernels()
	cells := make([]Cell, 0, len(perfmodel.Table1())*len(kernels))
	for _, t := range perfmodel.Table1() {
		for _, k := range kernels {
			e, err := ForJob(t.Machine, k, w)
			if err != nil {
				return nil, err
			}
			c := Cell{Estimate: e}
			c.EnvelopeLo, c.EnvelopeHi = EnvelopeFor(t.Machine, k)
			if mc, ok := measured[t.Machine][k]; ok && mc > 0 && e.Cycles > 0 {
				c.Simulated = true
				c.SimCycles = mc
				c.ErrorRatio = float64(mc) / float64(e.Cycles)
				c.WithinEnvelope = c.ErrorRatio >= c.EnvelopeLo && c.ErrorRatio <= c.EnvelopeHi
			}
			cells = append(cells, c)
		}
	}
	return cells, nil
}
