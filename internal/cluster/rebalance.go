package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"sigkern/internal/core"
	"sigkern/internal/journal"
	"sigkern/internal/svc"
)

// RebalanceResult describes one completed WAL rebalance: what was
// recovered from the departed shard's journal and what each successor
// ingested.
type RebalanceResult struct {
	Shard string `json:"shard"`
	// Jobs/Results recovered from the exported log; Shipped is the
	// total records (jobs + memo entries) posted to successors.
	Jobs    int             `json:"jobs"`
	Results int             `json:"results"`
	Shipped int             `json:"shipped"`
	Replay  svc.ReplayStats `json:"replay"`
	// Targets maps successor shard -> what it ingested.
	Targets map[string]svc.IngestStats `json:"targets"`
}

// successorFor returns the first shard, in ring order from key, that
// is not the departed shard and is ready (falling back to merely
// alive). Per-key routing on purpose: a rerouted client resubmitting
// the same spec lands on the same successor the rebalance ships the
// original job to, so the idempotency key meets its job.
func (g *Gateway) successorFor(key, departed string) string {
	succ := g.ring.Successors(key)
	for _, name := range succ {
		if name != departed && g.prober.Ready(name) {
			return name
		}
	}
	for _, name := range succ {
		if name != departed && g.prober.Alive(name) {
			return name
		}
	}
	return ""
}

// Rebalance exports the departed shard's journal (read-only — the
// shard may restart and replay its own log later) and replays the
// recovered jobs and memoized results into the hash-ring successors,
// each key to the shard that now owns it. Every job keeps its ID,
// idempotency key, and byte-identical result; successors journal the
// ingest to their own WAL before acknowledging, so the handoff
// survives a second crash.
func (g *Gateway) Rebalance(departed string) (*RebalanceResult, error) {
	dir := g.journals[departed]
	if dir == "" {
		return nil, fmt.Errorf("cluster: no journal directory configured for shard %q", departed)
	}
	rec, err := journal.Export(dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: exporting %s journal: %w", departed, err)
	}
	jobs, memo, stats := svc.RecoverJobs(rec)
	res := &RebalanceResult{
		Shard:   departed,
		Jobs:    len(jobs),
		Results: len(memo),
		Replay:  stats,
		Targets: make(map[string]svc.IngestStats),
	}

	jobsByTarget := make(map[string][]svc.Job)
	for _, j := range jobs {
		key := j.Hash
		if key == "" {
			key = j.ID
		}
		target := g.successorFor(key, departed)
		if target == "" {
			return res, fmt.Errorf("cluster: no live successor for job %s", j.ID)
		}
		jobsByTarget[target] = append(jobsByTarget[target], j)
	}
	memoByTarget := make(map[string]map[string]core.Result)
	for hash, r := range memo {
		target := g.successorFor(hash, departed)
		if target == "" {
			return res, fmt.Errorf("cluster: no live successor for result %s", hash[:8])
		}
		if memoByTarget[target] == nil {
			memoByTarget[target] = make(map[string]core.Result)
		}
		memoByTarget[target][hash] = r
	}

	targets := make(map[string]bool)
	for t := range jobsByTarget {
		targets[t] = true
	}
	for t := range memoByTarget {
		targets[t] = true
	}
	names := make([]string, 0, len(targets))
	for t := range targets {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, target := range names {
		payload, err := json.Marshal(svc.ReplayRequest{
			Jobs: jobsByTarget[target],
			Memo: memoByTarget[target],
		})
		if err != nil {
			return res, fmt.Errorf("cluster: marshal replay for %s: %w", target, err)
		}
		st, err := g.postReplay(target, payload)
		if err != nil {
			return res, fmt.Errorf("cluster: replay into %s: %w", target, err)
		}
		res.Targets[target] = st
		res.Shipped += len(jobsByTarget[target]) + len(memoByTarget[target])
	}
	g.metrics.rebalanceDone(res.Shipped)
	return res, nil
}

func (g *Gateway) postReplay(target string, payload []byte) (svc.IngestStats, error) {
	s, ok := g.shards[target]
	if !ok {
		return svc.IngestStats{}, fmt.Errorf("unknown shard %q", target)
	}
	resp, err := g.client.Post(s.URL+"/v1/replay", "application/json", bytes.NewReader(payload))
	if err != nil {
		g.prober.ObserveFailure(target, err)
		return svc.IngestStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return svc.IngestStats{}, fmt.Errorf("replay status %d", resp.StatusCode)
	}
	var st svc.IngestStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return svc.IngestStats{}, err
	}
	return st, nil
}

// handleRebalance drives Rebalance over HTTP: POST
// /v1/rebalance?shard=NAME. A shard that still answers probes is
// refused with 409 — a live shard replays its own WAL on restart, and
// exporting under its feet would fork its history — unless ?force=1.
func (g *Gateway) handleRebalance(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("shard")
	if name == "" {
		writeGatewayError(w, http.StatusBadRequest, "missing shard parameter")
		return
	}
	if _, ok := g.shards[name]; !ok {
		writeGatewayError(w, http.StatusNotFound, fmt.Sprintf("unknown shard %q", name))
		return
	}
	force := r.URL.Query().Get("force") == "1"
	// Probe right now rather than trusting the last sweep: the operator
	// is asserting this shard is dead, so check.
	g.prober.Sweep()
	if g.prober.Alive(name) && !force {
		writeGatewayError(w, http.StatusConflict,
			fmt.Sprintf("shard %q still answers probes; it will replay its own journal on restart (use force=1 to rebalance anyway)", name))
		return
	}
	res, err := g.Rebalance(name)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "partial": res})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
}
