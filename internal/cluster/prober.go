package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// DefaultProbeInterval is how often the prober sweeps every shard.
const DefaultProbeInterval = 500 * time.Millisecond

// ProbeState is one shard's last probe verdict.
type ProbeState struct {
	// Alive means the process answered HTTP at all — including the 503
	// a degraded or draining shard serves. Only a transport failure
	// (connection refused, timeout) clears it: /healthz's
	// 503-while-degraded semantics mean "pull me from rotation", not
	// "bury me".
	Alive bool `json:"alive"`
	// Ready means /readyz said 200: not draining, not degraded — route
	// new work here.
	Ready bool `json:"ready"`
	// ConfigHash is the hardware config-set hash the shard reported on
	// its last probe (empty until a sweep lands, or for shards predating
	// the field). Two ready shards reporting different hashes would
	// return different cycles for the same job depending on routing, so
	// the gateway refuses to route writes until they agree.
	ConfigHash  string    `json:"config_hash,omitempty"`
	LastError   string    `json:"last_error,omitempty"`
	LastChecked time.Time `json:"last_checked"`
}

// Prober actively probes every shard's /readyz. One endpoint carries
// both signals: any HTTP answer proves liveness, and the status code
// decides readiness (a draining shard answers 503 there while its
// /healthz stays 200, so drain never looks like death).
type Prober struct {
	shards   []Shard
	client   *http.Client
	interval time.Duration
	metrics  *Metrics

	mu    sync.Mutex
	state map[string]ProbeState

	stop chan struct{}
	done chan struct{}
}

// NewProber builds a prober over the shard set. client must have a
// timeout set (the gateway's probe client uses a short one so a hung
// shard reads as dead, not slow).
func NewProber(shards []Shard, interval time.Duration, client *http.Client, m *Metrics) *Prober {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	p := &Prober{
		shards:   append([]Shard(nil), shards...),
		client:   client,
		interval: interval,
		metrics:  m,
		state:    make(map[string]ProbeState, len(shards)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// Shards start optimistically routable so the first requests are
	// not all rejected before the first sweep lands.
	for _, s := range p.shards {
		p.state[s.Name] = ProbeState{Alive: true, Ready: true}
	}
	return p
}

// Start runs one synchronous sweep (so callers boot with real
// verdicts) and then probes on the interval until Stop.
func (p *Prober) Start() {
	p.Sweep()
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.Sweep()
			}
		}
	}()
}

// Stop ends the probe loop.
func (p *Prober) Stop() {
	close(p.stop)
	<-p.done
}

// Sweep probes every shard once, in parallel.
func (p *Prober) Sweep() {
	var wg sync.WaitGroup
	for _, s := range p.shards {
		wg.Add(1)
		go func(s Shard) {
			defer wg.Done()
			p.probe(s)
		}(s)
	}
	wg.Wait()
}

func (p *Prober) probe(s Shard) {
	st := ProbeState{LastChecked: time.Now()}
	resp, err := p.client.Get(s.URL + "/readyz")
	if err != nil {
		st.LastError = err.Error()
	} else {
		// The readiness body carries the shard's config-set hash either
		// way (200 and 503 share the JSON shape); a body that fails to
		// decode just leaves the hash unknown.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		st.Alive = true
		st.Ready = resp.StatusCode == http.StatusOK
		var rd struct {
			ConfigHash string `json:"config_hash"`
		}
		if json.Unmarshal(body, &rd) == nil {
			st.ConfigHash = rd.ConfigHash
		}
		if !st.Ready {
			st.LastError = fmt.Sprintf("readyz status %d", resp.StatusCode)
		}
	}
	p.setState(s.Name, st)
}

func (p *Prober) setState(name string, st ProbeState) {
	p.mu.Lock()
	p.state[name] = st
	p.mu.Unlock()
	if p.metrics != nil {
		p.metrics.setShardState(name, st.Alive, st.Ready)
	}
}

// ObserveFailure records a transport-level failure seen by the proxy
// itself, so routing stops offering a just-died shard before the next
// sweep notices.
func (p *Prober) ObserveFailure(name string, err error) {
	p.mu.Lock()
	st := p.state[name]
	st.Alive = false
	st.Ready = false
	st.LastError = err.Error()
	st.LastChecked = time.Now()
	p.state[name] = st
	p.mu.Unlock()
	if p.metrics != nil {
		p.metrics.setShardState(name, false, false)
	}
}

// Ready reports whether the shard should receive new work.
func (p *Prober) Ready(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state[name].Ready
}

// Alive reports whether the shard's process answered its last probe.
func (p *Prober) Alive(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state[name].Alive
}

// ConfigConsensus returns the hardware config-set hash shared by every
// ready shard that has reported one, and whether the ready shards
// agree. ok=false means a split cluster: two ready shards would answer
// the same spec hash with different hardware, so the result of a job
// would depend on which shard the ring picked — the gateway's write
// paths refuse to route until the verdicts converge. Shards that have
// not reported a hash yet (first sweep pending) do not break consensus.
func (p *Prober) ConfigConsensus() (hash string, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, st := range p.state {
		if !st.Ready || st.ConfigHash == "" {
			continue
		}
		if hash == "" {
			hash = st.ConfigHash
			continue
		}
		if st.ConfigHash != hash {
			return "", false
		}
	}
	return hash, true
}

// States returns a copy of every shard's probe state.
func (p *Prober) States() map[string]ProbeState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]ProbeState, len(p.state))
	for k, v := range p.state {
		out[k] = v
	}
	return out
}
